// Tests for the extension features beyond the paper's prototype:
// replication across providers (§II's availability remark), password
// rotation, autosave ticking, and raw-delta batching via composition.

#include <gtest/gtest.h>

#include <memory>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/util/error.hpp"

namespace privedit::extension {
namespace {

struct Replica {
  cloud::GDocsServer server;
  std::unique_ptr<net::LoopbackTransport> transport;
};

struct ReplicatedStack {
  explicit ReplicatedStack(int n, const std::string& password) {
    for (int i = 0; i < n; ++i) {
      auto replica = std::make_unique<Replica>();
      replica->transport = std::make_unique<net::LoopbackTransport>(
          [server = &replica->server](const net::HttpRequest& r) {
            return server->handle(r);
          },
          &clock, net::LatencyModel{},
          crypto::CtrDrbg::from_seed(100 + static_cast<std::uint64_t>(i)));
      replicas.push_back(std::move(replica));
    }
    std::vector<net::Channel*> channels;
    for (auto& r : replicas) channels.push_back(r->transport.get());
    replicated = std::make_unique<ReplicatedChannel>(
        channels, gdocs_open_validator(password));

    MediatorConfig config;
    config.password = password;
    // Integrity mode: fail-over needs tampering to be *detectable*.
    config.scheme.mode = enc::Mode::kRpc;
    config.rng_factory = seeded_rng_factory(55);
    mediator = std::make_unique<GDocsMediator>(replicated.get(), config,
                                               &clock);
  }

  net::SimClock clock;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::unique_ptr<ReplicatedChannel> replicated;
  std::unique_ptr<GDocsMediator> mediator;
};

TEST(Replication, WritesReachEveryReplica) {
  ReplicatedStack stack(3, "pw");
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, "replicated secret");
  writer.save();

  for (auto& replica : stack.replicas) {
    const auto stored = replica->server.raw_content("doc");
    ASSERT_TRUE(stored.has_value());
    EXPECT_EQ(stored, stack.replicas[0]->server.raw_content("doc"));
    EXPECT_EQ(stored->find("secret"), std::string::npos);
  }
  EXPECT_GE(stack.replicated->counters().writes_broadcast, 2u);
}

TEST(Replication, ReadFailsOverPastTamperedReplica) {
  ReplicatedStack stack(3, "pw");
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, "survives a corrupt provider");
  writer.save();

  // Provider 0 corrupts its copy; provider 1 wipes it entirely.
  std::string bad = *stack.replicas[0]->server.raw_content("doc");
  bad[bad.size() / 2] = bad[bad.size() / 2] == 'A' ? 'B' : 'A';
  stack.replicas[0]->server.set_raw_content("doc", bad);
  stack.replicas[1]->server.set_raw_content("doc", "GARBAGE");

  // A fresh user still opens the document via replica 2.
  MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.rng_factory = seeded_rng_factory(56);
  GDocsMediator mediator2(stack.replicated.get(), config, &stack.clock);
  client::GDocsClient reader(&mediator2, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "survives a corrupt provider");
  EXPECT_GE(stack.replicated->counters().read_failovers, 2u);
}

TEST(Replication, AllReplicasBadIsLoudFailure) {
  ReplicatedStack stack(2, "pw");
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, "soon to be destroyed");
  writer.save();
  stack.replicas[0]->server.set_raw_content("doc", "junk0");
  stack.replicas[1]->server.set_raw_content("doc", "junk1");

  MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.rng_factory = seeded_rng_factory(57);
  GDocsMediator mediator2(stack.replicated.get(), config, &stack.clock);
  client::GDocsClient reader(&mediator2, "doc");
  EXPECT_THROW(reader.open(), Error);
}

TEST(Replication, RejectsEmptyOrNullReplicaSets) {
  EXPECT_THROW(ReplicatedChannel({}, {}), Error);
  EXPECT_THROW(ReplicatedChannel({nullptr}, {}), Error);
}

TEST(PasswordRotation, OldPasswordLockedOutNewWorks) {
  const auto rng = seeded_rng_factory(58);
  enc::SchemeConfig config;
  config.mode = enc::Mode::kRpc;
  DocumentSession session = DocumentSession::create_new("old-pw", config, rng);
  session.encrypt_full("rotate me");

  DocumentSession rotated = rotate_password(session, "new-pw", rng);
  const std::string new_doc = rotated.scheme().ciphertext_doc();
  EXPECT_EQ(rotated.plaintext(), "rotate me");

  EXPECT_EQ(DocumentSession::open("new-pw", new_doc, rng).plaintext(),
            "rotate me");
  EXPECT_THROW(DocumentSession::open("old-pw", new_doc, rng), CryptoError);
  // Mode and parameters carry over.
  EXPECT_EQ(rotated.scheme().header().mode, enc::Mode::kRpc);
  // Fresh salt.
  EXPECT_NE(rotated.scheme().header().salt, session.scheme().header().salt);
}

TEST(Autosave, TicksFireOnIntervalOnlyWhenDirty) {
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(59));
  client::GDocsClient writer(&transport, "doc");
  writer.create();
  writer.set_autosave_interval(30'000'000);  // 30 s, as a web editor would

  writer.insert(0, "typed text");
  EXPECT_FALSE(writer.tick(10'000'000));  // too early
  EXPECT_TRUE(writer.tick(31'000'000));   // due and dirty
  EXPECT_EQ(server.raw_content("doc"), "typed text");
  EXPECT_FALSE(writer.tick(62'000'000));  // due but clean
}

TEST(RawDeltaBatching, ComposedBeforeSending) {
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(60));
  client::GDocsClient writer(&transport, "doc");
  writer.create();
  writer.insert(0, "abcdef");
  writer.save();

  // Three keystroke deltas accumulated between autosaves.
  delta::Delta k1 = delta::Delta::parse("=2\t+X");    // abXcdef
  delta::Delta k2 = delta::Delta::parse("=5\t-1");    // abXcdf
  delta::Delta k3 = delta::Delta::parse("+Y");        // YabXcdf
  writer.queue_raw_delta(k1);
  writer.queue_raw_delta(k2);
  writer.queue_raw_delta(k3);
  writer.replace(0, writer.text().size(), "YabXcdf");
  const std::size_t saves_before = server.counters().delta_saves;
  writer.save();
  EXPECT_EQ(server.counters().delta_saves, saves_before + 1);  // one update
  EXPECT_EQ(server.raw_content("doc"), "YabXcdf");
}

// ----------------------------------------- differential anti-entropy --

TEST(Replication, LaggingReplicaHealsOverBlockDelta) {
  ReplicatedStack stack(3, "pw");
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, std::string(3000, 'r'));
  writer.save();
  const std::string old_copy = *stack.replicas[2]->server.raw_content("doc");
  writer.insert(0, "tiny edit ");
  writer.save();  // delta save: the container evolves incrementally
  const std::string fresh = *stack.replicas[0]->server.raw_content("doc");
  ASSERT_NE(fresh, old_copy);

  // Replica 2 "missed" the second save; anti-entropy must send only the
  // blocks it lacks, and the result must be byte-identical to the donor.
  stack.replicas[2]->server.set_raw_content("doc", old_copy);
  SyncPushStats stats;
  EXPECT_TRUE(push_sync_over(*stack.replicas[2]->transport, "/Doc?docID=doc",
                             fresh, "7", &stats));
  EXPECT_EQ(stats.probes, 1u);
  EXPECT_EQ(stats.delta_pushes, 1u);
  EXPECT_EQ(stats.full_pushes, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_LT(stats.bytes_delta * 4, fresh.size());
  EXPECT_EQ(stack.replicas[2]->server.raw_content("doc").value_or(""), fresh);
  EXPECT_GE(stack.replicas[2]->server.counters().bdelta_syncs, 1u);
}

TEST(Replication, QuarantinedReplicaOnlyHealsViaFullContainer) {
  ReplicatedStack stack(2, "pw");
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, std::string(2000, 'q'));
  writer.save();
  const std::string fresh = *stack.replicas[0]->server.raw_content("doc");

  // Replica 1's copy rots and the integrity subsystem walls it off. Its
  // digests describe rot, so the probe must steer the pusher to the full
  // container — a delta against damage is just rearranged damage.
  std::string rotted = fresh;
  rotted[rotted.size() / 2] ^= 0x01;
  stack.replicas[1]->server.set_raw_content("doc", rotted);
  stack.replicas[1]->server.quarantine("doc");

  SyncPushStats stats;
  EXPECT_TRUE(push_sync_over(*stack.replicas[1]->transport, "/Doc?docID=doc",
                             fresh, "3", &stats));
  EXPECT_EQ(stats.delta_pushes, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);  // the probe itself said "full only"
  EXPECT_EQ(stats.full_pushes, 1u);
  // The validated container is the one exit from quarantine.
  EXPECT_FALSE(stack.replicas[1]->server.is_quarantined("doc"));
  EXPECT_EQ(stack.replicas[1]->server.raw_content("doc").value_or(""), fresh);
}

}  // namespace
}  // namespace privedit::extension
