// Tests for the workload generators.

#include <gtest/gtest.h>

#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"
#include "privedit/workload/corpus.hpp"
#include "privedit/workload/edits.hpp"

namespace privedit::workload {
namespace {

TEST(Corpus, RandomDocumentMeetsLength) {
  Xoshiro256 rng(1);
  for (std::size_t target : {10u, 100u, 500u, 10'000u}) {
    const std::string doc = random_document(rng, target);
    EXPECT_GE(doc.size(), target);
    EXPECT_LT(doc.size(), target + 200);
    EXPECT_EQ(doc.back(), '.');
  }
}

TEST(Corpus, RandomSentenceShape) {
  Xoshiro256 rng(2);
  const std::string s = random_sentence(rng, 5);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(s[0])));
  EXPECT_EQ(s.back(), '.');
  EXPECT_EQ(std::count(s.begin(), s.end(), ' '), 4);
}

TEST(Corpus, RandomStringUniformLengths) {
  Xoshiro256 rng(3);
  const RandomPair p = random_pair(rng, 100, 10'000);
  EXPECT_GE(p.before.size(), 100u);
  EXPECT_LE(p.before.size(), 10'000u);
  EXPECT_GE(p.after.size(), 100u);
  EXPECT_LE(p.after.size(), 10'000u);
  EXPECT_NE(p.before, p.after);
}

TEST(Corpus, Deterministic) {
  Xoshiro256 a(7), b(7);
  EXPECT_EQ(random_document(a, 300), random_document(b, 300));
}

TEST(SentenceEditorTest, StepsProduceValidDeltas) {
  Xoshiro256 rng(4);
  SentenceEditor editor(random_document(rng, 500), &rng);
  for (int i = 0; i < 100; ++i) {
    const std::string before = editor.document();
    const delta::Delta d = editor.step_mixed();
    EXPECT_EQ(d.apply(before), editor.document());
    EXPECT_FALSE(editor.document().empty());
  }
}

TEST(SentenceEditorTest, EachOpKindBehaves) {
  Xoshiro256 rng(5);
  SentenceEditor editor(random_document(rng, 500), &rng);

  const std::string before_replace = editor.document();
  editor.step(MacroOp::kReplaceSentence);
  EXPECT_NE(editor.document(), before_replace);

  const std::size_t before_insert = editor.document().size();
  editor.step(MacroOp::kInsertSentence);
  EXPECT_GT(editor.document().size(), before_insert);

  const std::size_t before_delete = editor.document().size();
  editor.step(MacroOp::kDeleteSentence);
  EXPECT_LT(editor.document().size(), before_delete);
}

TEST(TypingSessionTest, KeystrokesApplyCleanly) {
  Xoshiro256 rng(6);
  TypingSession typing("seed text", &rng);
  for (int i = 0; i < 500; ++i) {
    const std::string before = typing.document();
    const delta::Delta d = typing.keystroke();
    EXPECT_EQ(d.apply(before), typing.document());
    EXPECT_LE(typing.cursor(), typing.document().size());
  }
  // A typing session mostly inserts, so the document grows.
  EXPECT_GT(typing.document().size(), 200u);
}

TEST(CovertDelta, EncodesWithoutChangingSemantics) {
  const std::string doc = "abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz";
  for (char secret : {'a', 'm', 'z'}) {
    const delta::Delta d = covert_ord_delta(doc, 3, 'X', secret);
    const std::string result = d.apply(doc);
    // Net effect: exactly one 'X' inserted at position 3.
    EXPECT_EQ(result, doc.substr(0, 3) + "X" + doc.substr(3));
    // The wire form leaks the ordinal through its length.
    const int ord = secret - 'a' + 1;
    EXPECT_GT(static_cast<int>(d.ops().size()), ord);
  }
}

TEST(CovertDelta, DistinctSecretsDistinctWireForms) {
  const std::string doc(64, 'q');
  const delta::Delta a = covert_ord_delta(doc, 0, 'X', 'b');
  const delta::Delta b = covert_ord_delta(doc, 0, 'X', 'y');
  EXPECT_NE(a.to_wire().size(), b.to_wire().size());
  // ...but both canonicalise/re-diff to the same minimal edit.
  EXPECT_EQ(delta::myers_diff(doc, a.apply(doc)),
            delta::myers_diff(doc, b.apply(doc)));
}

TEST(CovertDelta, RejectsBadArguments) {
  EXPECT_THROW(covert_ord_delta("short", 4, 'X', 'z'), privedit::Error);
  EXPECT_THROW(covert_ord_delta("whatever long enough", 0, 'X', '5'), privedit::Error);
}

}  // namespace
}  // namespace privedit::workload
