// Tests for the delta language (§IV-A), canonicalization (§VI-B
// countermeasure) and the diff algorithms that derive deltas.

#include <gtest/gtest.h>

#include "privedit/delta/delta.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::delta {
namespace {

TEST(Delta, PaperExampleTruncate) {
  // "=2 -5" turns "abcdefg" into "ab".
  const Delta d = Delta::parse("=2\t-5");
  EXPECT_EQ(d.apply("abcdefg"), "ab");
}

TEST(Delta, PaperExampleMixed) {
  // "=2 -3 +uv =2 +w" turns "abcdefg" into "abuvfgw".
  const Delta d = Delta::parse("=2\t-3\t+uv\t=2\t+w");
  EXPECT_EQ(d.apply("abcdefg"), "abuvfgw");
}

TEST(Delta, EmptyDeltaIsIdentity) {
  const Delta d = Delta::parse("");
  EXPECT_EQ(d.apply("hello"), "hello");
  EXPECT_TRUE(d.empty());
}

TEST(Delta, InsertIntoEmptyDocument) {
  const Delta d = Delta::parse("+hello");
  EXPECT_EQ(d.apply(""), "hello");
}

TEST(Delta, TrailingContentPreserved) {
  const Delta d = Delta::parse("+X");
  EXPECT_EQ(d.apply("abc"), "Xabc");
}

TEST(Delta, WireRoundTrip) {
  const char* cases[] = {"=2\t-5", "=2\t-3\t+uv\t=2\t+w", "+hello", "-7",
                         "=1\t+a\t=1\t+b"};
  for (const char* wire : cases) {
    EXPECT_EQ(Delta::parse(wire).to_wire(), wire);
  }
}

TEST(Delta, InsertEscaping) {
  Delta d;
  d.push(Op::insert("a\tb\\c"));
  d.push(Op::retain(1));
  const std::string wire = d.to_wire();
  EXPECT_EQ(wire, "+a\\tb\\\\c\t=1");
  const Delta parsed = Delta::parse(wire);
  ASSERT_EQ(parsed.ops().size(), 2u);
  EXPECT_EQ(parsed.ops()[0].text, "a\tb\\c");
}

TEST(Delta, ParseErrors) {
  EXPECT_THROW(Delta::parse("=x"), ParseError);
  EXPECT_THROW(Delta::parse("~3"), ParseError);
  EXPECT_THROW(Delta::parse("="), ParseError);
  EXPECT_THROW(Delta::parse("-"), ParseError);
  EXPECT_THROW(Delta::parse("+a\\"), ParseError);
  EXPECT_THROW(Delta::parse("+a\\x"), ParseError);
  EXPECT_THROW(Delta::parse("=2=3"), ParseError);
}

TEST(Delta, ApplyOutOfRangeThrows) {
  EXPECT_THROW(Delta::parse("=5").apply("abc"), Error);
  EXPECT_THROW(Delta::parse("-5").apply("abc"), Error);
  EXPECT_THROW(Delta::parse("=2\t-2").apply("abc"), Error);
}

TEST(Delta, NoOpSegmentsAreAccepted) {
  // "=0" and "+<empty>" are legal no-ops on the wire; both must apply as
  // the identity and survive a wire round trip.
  EXPECT_EQ(Delta::parse("=0").apply("abc"), "abc");
  EXPECT_EQ(Delta::parse("+").apply("abc"), "abc");
  EXPECT_EQ(Delta::parse("=0\t+\t=0").apply("abc"), "abc");
  const Delta d = Delta::parse("=0\t+\t-0");
  EXPECT_EQ(Delta::parse(d.to_wire()).apply("xy"), "xy");
  EXPECT_TRUE(d.canonicalized().ops().empty());
}

TEST(Delta, MalformedTabSequences) {
  // Runs of separators and segment boundaries that don't line up with the
  // grammar: bare tabs are tolerated as empty segments, but a count glued
  // to another op is not.
  EXPECT_EQ(Delta::parse("\t").apply("ab"), "ab");
  EXPECT_EQ(Delta::parse("\t\t\t").apply("ab"), "ab");
  EXPECT_EQ(Delta::parse("=1\t\t+z").apply("ab"), "azb");
  EXPECT_EQ(Delta::parse("\t=1").apply("ab"), "ab");
  EXPECT_THROW(Delta::parse("=1=2"), ParseError);
  EXPECT_THROW(Delta::parse("-1-2"), ParseError);
  EXPECT_THROW(Delta::parse("=1 \t=1"), ParseError);
}

TEST(Delta, CountExceedingDocLengthThrows) {
  // Counts inside the parse cap but beyond the document must throw from
  // apply()/invert(), never read out of bounds.
  const std::string doc = "0123456789";
  for (const char* wire : {"=11", "-11", "=5\t-6", "=10\t=1", "=4294967296"}) {
    EXPECT_THROW(Delta::parse(wire).apply(doc), Error) << wire;
    EXPECT_THROW(Delta::parse(wire).invert(doc), Error) << wire;
  }
}

TEST(Delta, SixtyFourBitCountOverflowRejected) {
  // Regression (found by the simulation harness's fuzz seams): a count
  // near SIZE_MAX made `cursor + count` wrap past the bounds check, and
  // apply() then silently duplicated document content via the trailing
  // `doc.substr(cursor)`. Such counts are now rejected at parse time.
  EXPECT_THROW(Delta::parse("=1\t-18446744073709551615"), ParseError);
  EXPECT_THROW(Delta::parse("=18446744073709551615"), ParseError);
  EXPECT_THROW(Delta::parse("-9223372036854775808"), ParseError);
  // Just above the 2^32 per-op cap: rejected. At the cap: parses (and
  // then fails in apply() against any real document).
  EXPECT_THROW(Delta::parse("=4294967297"), ParseError);
  EXPECT_NO_THROW(Delta::parse("=4294967296"));
  EXPECT_THROW(Delta::parse("=4294967296").apply("abc"), Error);
  // Counts wider than the integer type itself are plain parse errors.
  EXPECT_THROW(Delta::parse("=99999999999999999999999999"), ParseError);
}

TEST(Delta, InputSpanAndLengthChange) {
  const Delta d = Delta::parse("=2\t-3\t+uvw\t=1");
  EXPECT_EQ(d.input_span(), 6u);
  EXPECT_EQ(d.length_change(), 0);
  EXPECT_EQ(Delta::parse("+abc").length_change(), 3);
  EXPECT_EQ(Delta::parse("-2").length_change(), -2);
}

TEST(Canonicalize, MergesAdjacentOps) {
  const Delta d = Delta::parse("=1\t=2\t+ab\t+cd\t-1\t-2");
  const Delta canon = d.canonicalized();
  // delete is reordered before the adjacent insert
  EXPECT_EQ(canon.to_wire(), "=3\t-3\t+abcd");
}

TEST(Canonicalize, DropsZeroOps) {
  const Delta d = Delta::parse("=0\t+ab\t-0\t=0");
  EXPECT_EQ(d.canonicalized().to_wire(), "+ab");
}

TEST(Canonicalize, DropsTrailingRetain) {
  const Delta d = Delta::parse("+x\t=5");
  EXPECT_EQ(d.canonicalized().to_wire(), "+x");
}

TEST(Canonicalize, InsertDeleteReordered) {
  // insert-then-delete and delete-then-insert have identical effect;
  // canonical form is delete-first.
  const Delta a = Delta::parse("=2\t+XY\t-3");
  const Delta b = Delta::parse("=2\t-3\t+XY");
  EXPECT_EQ(a.canonicalized(), b.canonicalized());
  EXPECT_EQ(a.apply("abcdefg"), b.apply("abcdefg"));
}

TEST(Canonicalize, PreservesSemantics) {
  Xoshiro256 rng(77);
  const std::string doc = "the quick brown fox jumps over the lazy dog";
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random valid delta over doc.
    Delta d;
    std::size_t cursor = 0;
    while (cursor < doc.size() && rng.below(5) != 0) {
      const auto choice = rng.below(3);
      if (choice == 0) {
        const std::size_t n = 1 + rng.below(doc.size() - cursor);
        d.push(Op::retain(n));
        cursor += n;
      } else if (choice == 1) {
        const std::size_t n = 1 + rng.below(doc.size() - cursor);
        d.push(Op::erase(n));
        cursor += n;
      } else {
        std::string text(1 + rng.below(5), 'x');
        d.push(Op::insert(std::move(text)));
      }
    }
    EXPECT_EQ(d.apply(doc), d.canonicalized().apply(doc)) << d.to_wire();
    EXPECT_TRUE(d.canonicalized().is_canonical());
  }
}

TEST(Canonicalize, CovertChannelExampleCollapses) {
  // §VI-B: a malicious client encodes Ord(q) as q single-char inserts
  // followed by q deletes followed by the real insert. Canonicalisation
  // merges the runs so the op-count no longer reveals Ord(q).
  auto encode_covert = [](int ord) {
    Delta d;
    for (int i = 0; i < ord; ++i) d.push(Op::insert("x"));
    d.push(Op::erase(static_cast<std::size_t>(ord)));
    d.push(Op::insert("q"));
    return d;
  };
  const Delta canon_a = encode_covert(3).canonicalized();
  const Delta canon_b = encode_covert(9).canonicalized();
  // Identical op structure: one delete, one insert (sizes differ only in
  // the merged insert length, which equals the visible edit).
  EXPECT_EQ(canon_a.ops().size(), canon_b.ops().size());
}

TEST(Compose, MatchesSequentialApplication) {
  const std::string doc = "abcdefg";
  const delta::Delta a = Delta::parse("=2\t-3\t+uv\t=2\t+w");  // abuvfgw
  const delta::Delta b = Delta::parse("=1\t-2\t+XY");            // aXYvfgw
  const delta::Delta ab = Delta::compose(a, b);
  EXPECT_EQ(ab.apply(doc), b.apply(a.apply(doc)));
}

TEST(Compose, IdentityAndAnnihilation) {
  const Delta id;
  const Delta ins = Delta::parse("+hello");
  EXPECT_EQ(Delta::compose(id, ins).apply(""), "hello");
  EXPECT_EQ(Delta::compose(ins, id).apply(""), "hello");
  // Insert then delete of the same text cancels entirely.
  const Delta del = Delta::parse("-5");
  EXPECT_TRUE(Delta::compose(ins, del).empty());
}

TEST(Compose, SecondDeletesBeyondFirstsSpan) {
  // b deletes original characters a never touched (implicit tail retain).
  const Delta a = Delta::parse("+X");       // Xabc
  const Delta b = Delta::parse("=2\t-2");  // Xa
  const Delta ab = Delta::compose(a, b);
  EXPECT_EQ(ab.apply("abc"), "Xa");
  EXPECT_EQ(ab.apply("abc"), b.apply(a.apply("abc")));
}

TEST(Compose, BothStreamsEndAtImplicitTail) {
  // Neither delta spells out a retain for the suffix; compose must line up
  // the two implicit tails instead of running off either op list.
  const Delta a = Delta::parse("=1\t+X");   // aXbcd
  const Delta b = Delta::parse("=3\t+Y");   // aXbYcd
  const Delta ab = Delta::compose(a, b);
  EXPECT_EQ(ab.apply("abcd"), "aXbYcd");
  EXPECT_EQ(ab.apply("abcd"), b.apply(a.apply("abcd")));
  EXPECT_TRUE(ab.is_canonical());
}

TEST(Compose, EmptyDeltasBothWays) {
  const Delta id;
  EXPECT_TRUE(Delta::compose(id, id).empty());
  const Delta edit = Delta::parse("=2\t-1\t+Z");
  EXPECT_EQ(Delta::compose(id, edit).apply("abcd"), edit.apply("abcd"));
  EXPECT_EQ(Delta::compose(edit, id).apply("abcd"), edit.apply("abcd"));
}

TEST(Compose, PartialAnnihilationAcrossOpBoundaries) {
  // b's single delete spans the tail of a's first insert, a retained
  // original char, and the head of a's second insert — compose must split
  // all three correctly.
  const Delta a = Delta::parse("+AB\t=1\t+CD");  // ABxCDyz
  const Delta b = Delta::parse("=1\t-3\t=3");    // ADyz
  const Delta ab = Delta::compose(a, b);
  EXPECT_EQ(ab.apply("xyz"), "ADyz");
  EXPECT_EQ(ab.apply("xyz"), b.apply(a.apply("xyz")));
  EXPECT_TRUE(ab.is_canonical());
}

TEST(Compose, DeleteEverythingInserted) {
  // b erases strictly more than a inserted, reaching into the original.
  const Delta a = Delta::parse("+hello\t=3");   // helloabc
  const Delta b = Delta::parse("-6\t=2");       // bc
  const Delta ab = Delta::compose(a, b);
  EXPECT_EQ(ab.apply("abc"), "bc");
  EXPECT_EQ(ab.apply("abc"), b.apply(a.apply("abc")));
}

TEST(Compose, KeystrokeBatching) {
  // Typical autosave batch: type three characters at a moving cursor.
  std::string doc = "hello world";
  const Delta k1 = Delta::parse("=5\t+,");
  const Delta k2 = Delta::parse("=6\t+!");
  const Delta k3 = Delta::parse("=13\t+!");
  Delta batch = Delta::compose(Delta::compose(k1, k2), k3);
  EXPECT_EQ(batch.apply(doc), k3.apply(k2.apply(k1.apply(doc))));
  EXPECT_TRUE(batch.is_canonical());
}

class ComposePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComposePropertyTest, RandomPairsComposeCorrectly) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc;
    const std::size_t len = rng.below(40);
    for (std::size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<char>('a' + rng.below(26)));
    }
    auto random_delta = [&rng](const std::string& base) {
      Delta d;
      std::size_t pos = 0;
      while (pos < base.size() && rng.below(4) != 0) {
        const auto choice = rng.below(3);
        if (choice == 0) {
          const std::size_t n = 1 + rng.below(base.size() - pos);
          d.push(Op::retain(n));
          pos += n;
        } else if (choice == 1) {
          const std::size_t n = 1 + rng.below(base.size() - pos);
          d.push(Op::erase(n));
          pos += n;
        } else {
          d.push(Op::insert(std::string(1 + rng.below(4), 'Z')));
        }
      }
      return d;
    };
    const Delta a = random_delta(doc);
    const std::string mid = a.apply(doc);
    const Delta b = random_delta(mid);
    const std::string expected = b.apply(mid);
    EXPECT_EQ(Delta::compose(a, b).apply(doc), expected)
        << "doc=" << doc << " a=" << a.to_wire() << " b=" << b.to_wire();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposePropertyTest,
                         ::testing::Values(600, 601, 602, 603, 604));

TEST(Transform, ConcurrentNonOverlappingEdits) {
  const std::string doc = "the quick brown fox";
  const Delta a = Delta::parse("=4\t+very ");      // alice inserts at 4
  const Delta b = Delta::parse("=10\t-5\t+red");  // bob recolours the fox
  const Delta a_prime = Delta::transform(a, b, true);
  const Delta b_prime = Delta::transform(b, a, false);
  const std::string via_b = a_prime.apply(b.apply(doc));
  const std::string via_a = b_prime.apply(a.apply(doc));
  EXPECT_EQ(via_a, via_b);
  EXPECT_EQ(via_a, "the very quick red fox");
}

TEST(Transform, SamePositionInsertTieBreak) {
  const std::string doc = "ab";
  const Delta a = Delta::parse("=1\t+X");
  const Delta b = Delta::parse("=1\t+Y");
  const std::string merged =
      Delta::transform(a, b, true).apply(b.apply(doc));
  const std::string merged2 =
      Delta::transform(b, a, false).apply(a.apply(doc));
  EXPECT_EQ(merged, merged2);
  EXPECT_EQ(merged, "aXYb");  // a wins the tie: its insert lands first
}

TEST(Transform, OverlappingDeletesConverge) {
  const std::string doc = "abcdefgh";
  const Delta a = Delta::parse("=2\t-4");  // delete cdef
  const Delta b = Delta::parse("=4\t-4");  // delete efgh
  const std::string via_b =
      Delta::transform(a, b, true).apply(b.apply(doc));
  const std::string via_a =
      Delta::transform(b, a, false).apply(a.apply(doc));
  EXPECT_EQ(via_a, via_b);
  EXPECT_EQ(via_a, "ab");  // union of the deletes
}

TEST(Transform, DeleteUnderConcurrentInsert) {
  const std::string doc = "abcd";
  const Delta a = Delta::parse("-4");       // alice deletes everything
  const Delta b = Delta::parse("=2\t+XY"); // bob inserts in the middle
  const std::string via_b =
      Delta::transform(a, b, true).apply(b.apply(doc));
  const std::string via_a =
      Delta::transform(b, a, false).apply(a.apply(doc));
  EXPECT_EQ(via_a, via_b);
  EXPECT_EQ(via_a, "XY");  // bob's insert survives alice's delete
}

class TransformPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TransformPropertyTest, Tp1ConvergenceOnRandomPairs) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 150; ++trial) {
    std::string doc;
    const std::size_t len = rng.below(30);
    for (std::size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<char>('a' + rng.below(26)));
    }
    auto random_delta = [&rng](std::size_t base_len, char fill) {
      Delta d;
      std::size_t pos = 0;
      while (pos < base_len && rng.below(4) != 0) {
        const auto choice = rng.below(3);
        if (choice == 0) {
          const std::size_t n = 1 + rng.below(base_len - pos);
          d.push(Op::retain(n));
          pos += n;
        } else if (choice == 1) {
          const std::size_t n = 1 + rng.below(base_len - pos);
          d.push(Op::erase(n));
          pos += n;
        } else {
          d.push(Op::insert(std::string(1 + rng.below(4), fill)));
        }
      }
      return d;
    };
    const Delta a = random_delta(doc.size(), 'A');
    const Delta b = random_delta(doc.size(), 'B');
    const std::string via_b =
        Delta::transform(a, b, true).apply(b.apply(doc));
    const std::string via_a =
        Delta::transform(b, a, false).apply(a.apply(doc));
    EXPECT_EQ(via_a, via_b) << "doc=" << doc << " a=" << a.to_wire()
                            << " b=" << b.to_wire();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Values(700, 701, 702, 703, 704));

TEST(Compose, AssociativeUpToApplication) {
  Xoshiro256 rng(950);
  for (int trial = 0; trial < 50; ++trial) {
    std::string doc;
    const std::size_t len = 5 + rng.below(30);
    for (std::size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<char>('a' + rng.below(26)));
    }
    auto random_delta = [&rng](const std::string& base, char fill) {
      Delta d;
      std::size_t pos = 0;
      while (pos < base.size() && rng.below(3) != 0) {
        const auto choice = rng.below(3);
        if (choice == 0) {
          const std::size_t nn = 1 + rng.below(base.size() - pos);
          d.push(Op::retain(nn));
          pos += nn;
        } else if (choice == 1) {
          const std::size_t nn = 1 + rng.below(base.size() - pos);
          d.push(Op::erase(nn));
          pos += nn;
        } else {
          d.push(Op::insert(std::string(1 + rng.below(3), fill)));
        }
      }
      return d;
    };
    const Delta a = random_delta(doc, 'X');
    const std::string d1 = a.apply(doc);
    const Delta b = random_delta(d1, 'Y');
    const std::string d2 = b.apply(d1);
    const Delta c = random_delta(d2, 'Z');
    const std::string expected = c.apply(d2);

    const Delta left = Delta::compose(Delta::compose(a, b), c);
    const Delta right = Delta::compose(a, Delta::compose(b, c));
    EXPECT_EQ(left.apply(doc), expected);
    EXPECT_EQ(right.apply(doc), expected);
    EXPECT_EQ(left.apply(doc), right.apply(doc));
  }
}

TEST(Invert, UndoesEdits) {
  const std::string doc = "abcdefg";
  const Delta d = Delta::parse("=2\t-3\t+uv\t=2\t+w");
  const std::string edited = d.apply(doc);
  const Delta undo = d.invert(doc);
  EXPECT_EQ(undo.apply(edited), doc);
}

TEST(Invert, PropertyOnRandomDeltas) {
  Xoshiro256 rng(900);
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc;
    const std::size_t len = rng.below(50);
    for (std::size_t i = 0; i < len; ++i) {
      doc.push_back(static_cast<char>('a' + rng.below(26)));
    }
    Delta d;
    std::size_t pos = 0;
    while (pos < doc.size() && rng.below(4) != 0) {
      const auto choice = rng.below(3);
      if (choice == 0) {
        const std::size_t n = 1 + rng.below(doc.size() - pos);
        d.push(Op::retain(n));
        pos += n;
      } else if (choice == 1) {
        const std::size_t n = 1 + rng.below(doc.size() - pos);
        d.push(Op::erase(n));
        pos += n;
      } else {
        d.push(Op::insert(std::string(1 + rng.below(4), 'Q')));
      }
    }
    const std::string edited = d.apply(doc);
    EXPECT_EQ(d.invert(doc).apply(edited), doc)
        << "doc=" << doc << " d=" << d.to_wire();
  }
}

TEST(Invert, UndoStack) {
  // A client undo stack: push (delta, inverse) pairs, pop to undo.
  std::string doc = "version zero";
  std::vector<Delta> undo_stack;
  const char* edits[] = {"=8\t-4\t+one", "+v1: ", "=4\t-1\t+2"};
  for (const char* wire : edits) {
    const Delta d = Delta::parse(wire);
    undo_stack.push_back(d.invert(doc));
    doc = d.apply(doc);
  }
  while (!undo_stack.empty()) {
    doc = undo_stack.back().apply(doc);
    undo_stack.pop_back();
  }
  EXPECT_EQ(doc, "version zero");
}

TEST(Invert, OutOfRangeThrows) {
  EXPECT_THROW(Delta::parse("=9").invert("abc"), Error);
  EXPECT_THROW(Delta::parse("-9").invert("abc"), Error);
}

TEST(AffixDiff, BasicCases) {
  EXPECT_EQ(affix_diff("abc", "abc").to_wire(), "");
  EXPECT_EQ(affix_diff("", "abc").to_wire(), "+abc");
  EXPECT_EQ(affix_diff("abc", "").to_wire(), "-3");
  EXPECT_EQ(affix_diff("abcdef", "abXYef").apply("abcdef"), "abXYef");
  EXPECT_EQ(affix_diff("aaa", "aa").apply("aaa"), "aa");
}

TEST(AffixDiff, OverlappingAffixes) {
  // prefix/suffix overlap ("aaa" -> "aaaa") must not double-count.
  EXPECT_EQ(affix_diff("aaa", "aaaa").apply("aaa"), "aaaa");
  EXPECT_EQ(affix_diff("aaaa", "aaa").apply("aaaa"), "aaa");
  EXPECT_EQ(affix_diff("abab", "ab").apply("abab"), "ab");
}

TEST(MyersDiff, ClassicExample) {
  // The canonical ABCABBA -> CBABAC example has edit distance 5.
  const Delta d = myers_diff("ABCABBA", "CBABAC");
  EXPECT_EQ(d.apply("ABCABBA"), "CBABAC");
  std::size_t cost = 0;
  for (const Op& op : d.ops()) {
    if (op.kind != OpKind::kRetain) cost += op.count;
  }
  EXPECT_EQ(cost, 5u);
}

TEST(MyersDiff, EqualAndEmptyInputs) {
  EXPECT_TRUE(myers_diff("same", "same").empty());
  EXPECT_EQ(myers_diff("", "ab").apply(""), "ab");
  EXPECT_EQ(myers_diff("ab", "").apply("ab"), "");
  EXPECT_TRUE(myers_diff("", "").empty());
}

class DiffPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffPropertyTest, ApplyDiffReproducesTarget) {
  Xoshiro256 rng(GetParam());
  const char alphabet[] = "abcd";  // small alphabet forces real interleaving
  for (int trial = 0; trial < 50; ++trial) {
    std::string a, b;
    const std::size_t na = rng.below(60);
    const std::size_t nb = rng.below(60);
    for (std::size_t i = 0; i < na; ++i) a.push_back(alphabet[rng.below(4)]);
    for (std::size_t i = 0; i < nb; ++i) b.push_back(alphabet[rng.below(4)]);

    const Delta m = myers_diff(a, b);
    EXPECT_EQ(m.apply(a), b) << "a=" << a << " b=" << b;
    const Delta f = affix_diff(a, b);
    EXPECT_EQ(f.apply(a), b) << "a=" << a << " b=" << b;

    // Myers is minimal, so its cost never exceeds the affix replace cost.
    auto cost = [](const Delta& d) {
      std::size_t c = 0;
      for (const Op& op : d.ops()) {
        if (op.kind != OpKind::kRetain) c += op.count;
      }
      return c;
    };
    EXPECT_LE(cost(m), cost(f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffPropertyTest,
                         ::testing::Values(100, 200, 300, 400, 500));

TEST(MyersDiff, FallsBackAboveMaxCost) {
  Xoshiro256 rng(12);
  std::string a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(static_cast<char>('a' + rng.below(26)));
    b.push_back(static_cast<char>('a' + rng.below(26)));
  }
  const Delta d = myers_diff(a, b, /*max_cost=*/10);
  EXPECT_EQ(d.apply(a), b);
}

TEST(MyersDiff, EditSessionShapedInputs) {
  // Realistic editing: a few localized changes in a longer document.
  const std::string before =
      "It was the best of times, it was the worst of times, it was the age "
      "of wisdom, it was the age of foolishness.";
  const std::string after =
      "It was the best of days, it was the worst of times, it was the epoch "
      "of wisdom, it was the age of folly.";
  const Delta d = myers_diff(before, after);
  EXPECT_EQ(d.apply(before), after);
  // Edits are local, so most of the document is retained.
  std::size_t retained = 0;
  for (const Op& op : d.ops()) {
    if (op.kind == OpKind::kRetain) retained += op.count;
  }
  EXPECT_GT(retained, before.size() / 2);
}

}  // namespace
}  // namespace privedit::delta
