// Sharded multi-tenant front door (DESIGN.md §13):
//
//  - consistent-hash ring stability: adding/removing one shard remaps only
//    the keys adjacent to its points (≈ docs/N) and NEVER moves a key
//    between two surviving shards;
//  - routing + lifecycle: every document owned by exactly one shard, with
//    byte-identical content across drains, joins, crashes and restarts;
//  - the migration crash matrix: power loss at every router.migrate.*
//    seam, at every occurrence, must leave every document readable from
//    exactly one owner after the router rebuilds on the same data_dir;
//  - tenant quotas: 507 + Retry-After on doc-count/byte exhaustion, usage
//    decrements on delete, accounting survives a provider restart;
//  - mediator transparency: a client_id-stamped mediator editing through
//    the router bills the right tenant and round-trips plaintext.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/shard_router.hpp"
#include "privedit/cloud/tenant.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("privedit-shard-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

net::HttpRequest doc_request(const std::string& doc_id, const FormData& form,
                             const std::string& tenant = "") {
  net::HttpRequest req = net::HttpRequest::post_form(
      "/Doc?docID=" + percent_encode(doc_id), form.encode());
  if (!tenant.empty()) req.headers.set(net::kClientIdHeader, tenant);
  return req;
}

net::HttpResponse create_doc(ShardRouter& router, const std::string& doc_id,
                             const std::string& tenant = "") {
  FormData f;
  f.add("cmd", "create");
  return router.handle(doc_request(doc_id, f, tenant));
}

net::HttpResponse save_doc(ShardRouter& router, const std::string& doc_id,
                           const std::string& content,
                           const std::string& tenant = "") {
  FormData f;
  f.add("session", "1");
  f.add("rev", "0");
  f.add("docContents", content);
  return router.handle(doc_request(doc_id, f, tenant));
}

net::HttpResponse open_doc(ShardRouter& router, const std::string& doc_id) {
  FormData f;
  f.add("cmd", "open");
  return router.handle(doc_request(doc_id, f));
}

net::HttpResponse delete_doc(ShardRouter& router, const std::string& doc_id,
                             const std::string& tenant = "") {
  FormData f;
  f.add("cmd", "delete");
  return router.handle(doc_request(doc_id, f, tenant));
}

std::vector<std::string> shard_ids(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back("s" + std::to_string(i));
  return ids;
}

// ------------------------------------------------------------ hash ring --

TEST(HashRing, OwnerIsDeterministicAcrossInstances) {
  HashRing a(64);
  HashRing b(64);
  for (const std::string& id : shard_ids(5)) {
    a.add(id);
    b.add(id);
  }
  for (int i = 0; i < 200; ++i) {
    const std::string key = "doc" + std::to_string(i);
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

TEST(HashRing, EmptyRingThrows) {
  HashRing ring(8);
  EXPECT_THROW(ring.owner("doc"), Error);
  ring.add("s0");
  EXPECT_EQ(ring.owner("doc"), "s0");
}

// The ring-stability property: removing one shard of N remaps ONLY the
// keys that shard owned (never a key between two survivors), and adding
// one remaps only keys onto the newcomer — in both directions roughly
// docs/N keys, bounded here at 2x to leave room for vnode variance.
TEST(HashRing, RemovingOneShardOnlyRemapsItsOwnKeys) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kDocs = 4000;
  HashRing ring(64);
  for (const std::string& id : shard_ids(kShards)) ring.add(id);

  std::map<std::string, std::string> before;
  for (std::size_t i = 0; i < kDocs; ++i) {
    const std::string key = "doc" + std::to_string(i);
    before[key] = ring.owner(key);
  }

  ring.remove("s3");
  std::size_t remapped = 0;
  for (const auto& [key, old_owner] : before) {
    const std::string& now = ring.owner(key);
    if (now != old_owner) {
      ++remapped;
      EXPECT_EQ(old_owner, "s3")
          << key << " moved between surviving shards " << old_owner << " -> "
          << now;
    }
  }
  EXPECT_GT(remapped, 0u);
  EXPECT_LE(remapped, 2 * kDocs / kShards)
      << "removing one of " << kShards << " shards remapped " << remapped
      << " of " << kDocs << " keys";
}

TEST(HashRing, AddingOneShardOnlyRemapsOntoTheNewcomer) {
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kDocs = 4000;
  HashRing ring(64);
  for (const std::string& id : shard_ids(kShards)) ring.add(id);

  std::map<std::string, std::string> before;
  for (std::size_t i = 0; i < kDocs; ++i) {
    const std::string key = "doc" + std::to_string(i);
    before[key] = ring.owner(key);
  }

  ring.add("s8");
  std::size_t remapped = 0;
  for (const auto& [key, old_owner] : before) {
    const std::string& now = ring.owner(key);
    if (now != old_owner) {
      ++remapped;
      EXPECT_EQ(now, "s8") << key << " moved between surviving shards "
                           << old_owner << " -> " << now;
    }
  }
  EXPECT_GT(remapped, 0u);
  EXPECT_LE(remapped, 2 * kDocs / (kShards + 1));
}

TEST(HashRing, SpreadIsRoughlyUniform) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kDocs = 4000;
  HashRing ring(64);
  for (const std::string& id : shard_ids(kShards)) ring.add(id);
  std::map<std::string, std::size_t> load;
  for (std::size_t i = 0; i < kDocs; ++i) {
    ++load[ring.owner("doc" + std::to_string(i))];
  }
  for (const auto& [id, n] : load) {
    EXPECT_GT(n, kDocs / kShards / 3) << id << " nearly starved";
    EXPECT_LT(n, kDocs / kShards * 3) << id << " overloaded";
  }
}

// -------------------------------------------------------------- routing --

TEST(ShardRouterTest, RoutesEveryDocToItsRingOwnerExactlyOnce) {
  ShardRouter router(shard_ids(4), {});
  for (int i = 0; i < 40; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_TRUE(create_doc(router, doc).ok());
    ASSERT_TRUE(save_doc(router, doc, "content-" + doc).ok());
    const auto owners = router.holders(doc);
    ASSERT_EQ(owners.size(), 1u) << doc;
    EXPECT_EQ(owners[0], router.shard_for(doc));
    EXPECT_EQ(router.raw_content(doc).value_or(""), "content-" + doc);
  }
  EXPECT_EQ(router.document_count(), 40u);
  EXPECT_GE(router.counters().routed, 80u);
}

TEST(ShardRouterTest, RejectsUnknownEndpointAndMissingDocId) {
  ShardRouter router(shard_ids(2), {});
  net::HttpRequest bad = net::HttpRequest::post_form("/Elsewhere", "");
  EXPECT_EQ(router.handle(bad).status, 404);
  net::HttpRequest nodoc = net::HttpRequest::post_form("/Doc", "cmd=create");
  EXPECT_EQ(router.handle(nodoc).status, 400);
  EXPECT_EQ(router.counters().bad_requests, 2u);
}

TEST(ShardRouterTest, RequiresAtLeastOneShard) {
  EXPECT_THROW(ShardRouter({}, {}), Error);
}

// ------------------------------------------------------------ lifecycle --

TEST(ShardRouterTest, DrainAndJoinPreserveEveryDocument) {
  TempDir tmp("lifecycle");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  ShardRouter router(shard_ids(3), cfg);

  std::map<std::string, std::string> expected;
  for (int i = 0; i < 30; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_TRUE(create_doc(router, doc).ok());
    ASSERT_TRUE(save_doc(router, doc, "payload-" + doc).ok());
    expected[doc] = "payload-" + doc;
  }

  router.remove_shard("s1");
  EXPECT_EQ(router.shard_count(), 2u);
  for (const auto& [doc, content] : expected) {
    ASSERT_EQ(router.holders(doc).size(), 1u) << doc << " after drain";
    EXPECT_EQ(router.raw_content(doc).value_or(""), content);
  }
  EXPECT_GT(router.counters().docs_migrated, 0u);

  router.add_shard("s3");
  EXPECT_EQ(router.shard_count(), 3u);
  for (const auto& [doc, content] : expected) {
    ASSERT_EQ(router.holders(doc).size(), 1u) << doc << " after join";
    EXPECT_EQ(router.raw_content(doc).value_or(""), content);
  }
  EXPECT_EQ(router.document_count(), expected.size());
  EXPECT_EQ(router.counters().migrations, 2u);
}

TEST(ShardRouterTest, CannotDrainTheLastShardOrUnknownShards) {
  ShardRouter router(shard_ids(1), {});
  EXPECT_THROW(router.remove_shard("s0"), Error);
  EXPECT_THROW(router.remove_shard("nope"), Error);
  EXPECT_THROW(router.crash_shard("nope"), Error);
  ShardRouter two(shard_ids(2), {});
  EXPECT_THROW(two.add_shard("s0"), Error);  // already present
}

TEST(ShardRouterTest, CrashedShardAnswers503UntilRestart) {
  TempDir tmp("crash");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  cfg.handoff_retry_after_s = 2;
  ShardRouter router(shard_ids(3), cfg);
  ASSERT_TRUE(create_doc(router, "mydoc").ok());
  ASSERT_TRUE(save_doc(router, "mydoc", "survives the crash").ok());

  const std::string owner = router.shard_for("mydoc");
  router.crash_shard(owner);
  const net::HttpResponse refused = open_doc(router, "mydoc");
  EXPECT_EQ(refused.status, 503);
  EXPECT_TRUE(refused.headers.get("Retry-After").has_value());
  EXPECT_GE(router.counters().down_rejections, 1u);

  router.restart_shard(owner);
  const net::HttpResponse resp = open_doc(router, "mydoc");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(FormData::parse(resp.body).get("content").value_or(""),
            "survives the crash");
}

// Draining a crashed shard would migrate nothing (its in-memory table is
// gone) and then abandon everything its durable store still holds — the
// router must refuse and demand a restart first.
TEST(ShardRouterTest, DrainingACrashedShardIsRefused) {
  TempDir tmp("draindown");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  ShardRouter router(shard_ids(3), cfg);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 18; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_TRUE(create_doc(router, doc).ok());
    ASSERT_TRUE(save_doc(router, doc, "keep-" + doc).ok());
    expected[doc] = "keep-" + doc;
  }

  router.crash_shard("s1");
  EXPECT_THROW(router.remove_shard("s1"), Error);
  EXPECT_EQ(router.shard_count(), 3u) << "refused drain must not alter ring";

  // restart → drain is the sanctioned sequence; nothing may be lost.
  router.restart_shard("s1");
  router.remove_shard("s1");
  EXPECT_EQ(router.shard_count(), 2u);
  for (const auto& [doc, content] : expected) {
    ASSERT_EQ(router.holders(doc).size(), 1u) << doc;
    EXPECT_EQ(router.raw_content(doc).value_or(""), content);
  }
}

TEST(ShardRouterTest, MembershipSurvivesRouterRestart) {
  TempDir tmp("membership");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  {
    ShardRouter router(shard_ids(3), cfg);
    ASSERT_TRUE(create_doc(router, "mydoc").ok());
    ASSERT_TRUE(save_doc(router, "mydoc", "durable").ok());
    router.remove_shard("s2");
  }
  // The restart script still believes in 3 shards; the persisted cutover
  // (2 members) must win.
  ShardRouter reborn(shard_ids(3), cfg);
  EXPECT_EQ(reborn.shard_count(), 2u);
  const auto members = reborn.members();
  EXPECT_EQ(std::set<std::string>(members.begin(), members.end()),
            (std::set<std::string>{"s0", "s1"}));
  EXPECT_EQ(reborn.raw_content("mydoc").value_or(""), "durable");
}

// --------------------------------------------------- migration crash(es) --

// Writes to a document mid-handoff are 503'd with Retry-After while reads
// keep hitting the old owner. Crashing the drain before cutover leaves the
// handoff set populated — the deterministic way to observe the window.
TEST(ShardRouterTest, WritesDuringHandoffAre503ReadsStillServed) {
  TempDir tmp("handoff");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  cfg.handoff_retry_after_s = 3;
  ShardRouter router(shard_ids(3), cfg);
  for (int i = 0; i < 24; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_TRUE(create_doc(router, doc).ok());
    ASSERT_TRUE(save_doc(router, doc, "v-" + doc).ok());
  }
  // One of the 24 docs lives on s0 with overwhelming probability.
  std::string moving;
  for (int i = 0; i < 24; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    if (router.shard_for(doc) == "s0") moving = doc;
  }
  ASSERT_FALSE(moving.empty());

  CrashPoints::arm("router.migrate.before_cutover", 1);
  EXPECT_THROW(router.remove_shard("s0"), CrashError);
  CrashPoints::disarm();

  const net::HttpResponse write = save_doc(router, moving, "rejected");
  EXPECT_EQ(write.status, 503);
  EXPECT_EQ(write.headers.get("Retry-After").value_or(""), "3");
  EXPECT_GE(router.counters().handoff_rejections, 1u);

  const net::HttpResponse read = open_doc(router, moving);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(FormData::parse(read.body).get("content").value_or(""),
            "v-" + moving);
}

// A create racing a migration, for a doc id whose ring owner CHANGES with
// the pending cutover, must be fenced: it is in no move plan, so letting
// it land on the old owner would orphan it the moment the ring swaps.
// Creates whose owner is unaffected by the migration keep flowing.
TEST(ShardRouterTest, CreatesInMovedRangesAre503DuringHandoff) {
  TempDir tmp("createfence");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  cfg.handoff_retry_after_s = 2;
  ShardRouter router(shard_ids(3), cfg);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(create_doc(router, "doc" + std::to_string(i)).ok());
  }

  // Crash the drain before cutover: the handoff window stays open, with
  // the ring still routing to s0 — the deterministic way to observe it.
  CrashPoints::arm("router.migrate.before_cutover", 1);
  EXPECT_THROW(router.remove_shard("s0"), CrashError);
  CrashPoints::disarm();

  // Fresh ids (never created): one that currently ring-maps to the
  // draining shard (its owner changes with the target ring) and one that
  // maps to a survivor (its owner is stable across the cutover).
  std::string moving_id, stable_id;
  for (int j = 0; j < 256 && (moving_id.empty() || stable_id.empty()); ++j) {
    const std::string id = "fresh" + std::to_string(j);
    (router.shard_for(id) == "s0" ? moving_id : stable_id) = id;
  }
  ASSERT_FALSE(moving_id.empty());
  ASSERT_FALSE(stable_id.empty());

  const net::HttpResponse fenced = create_doc(router, moving_id);
  EXPECT_EQ(fenced.status, 503);
  EXPECT_EQ(fenced.headers.get("Retry-After").value_or(""), "2");
  EXPECT_GE(router.counters().handoff_rejections, 1u);
  EXPECT_TRUE(create_doc(router, stable_id).ok())
      << "creates outside the moved ranges must not be fenced";
}

// The crash matrix: power loss at every router.migrate.* seam, at every
// occurrence, during a shard drain. A fresh router rebuilt on the same
// data_dir must reconcile whatever the crash left: every document owned by
// exactly one shard, content byte-identical to pre-migration (a drain
// never rewrites content, so pre == post here), zero documents lost.
TEST(ShardRouterTest, EverySeamEveryOccurrenceRecoversWithoutLoss) {
  constexpr const char* kSeams[] = {
      "router.migrate.before_copy",   "router.migrate.copy",
      "router.migrate.before_cutover", "router.migrate.after_cutover",
      "router.migrate.cleanup",
  };
  constexpr int kDocs = 12;
  std::size_t crashes = 0;
  for (const char* seam : kSeams) {
    for (int occurrence = 1; occurrence <= kDocs + 1; ++occurrence) {
      TempDir tmp(std::string("matrix-") +
                  std::to_string(&seam - kSeams) + "-" +
                  std::to_string(occurrence));
      ShardRouterConfig cfg;
      cfg.data_dir = tmp.path.string();
      std::map<std::string, std::string> expected;
      bool crashed = false;
      {
        ShardRouter router(shard_ids(3), cfg);
        for (int i = 0; i < kDocs; ++i) {
          const std::string doc = "doc" + std::to_string(i);
          ASSERT_TRUE(create_doc(router, doc).ok());
          ASSERT_TRUE(save_doc(router, doc, "m-" + doc).ok());
          expected[doc] = "m-" + doc;
        }
        CrashPoints::arm(seam, occurrence);
        try {
          router.remove_shard("s0");
        } catch (const CrashError&) {
          crashed = true;
        }
        CrashPoints::disarm();
      }
      if (!crashed && occurrence > 1) break;  // seam exhausted for this drain
      if (crashed) ++crashes;

      ShardRouter reborn(shard_ids(3), cfg);
      for (const auto& [doc, content] : expected) {
        ASSERT_EQ(reborn.holders(doc).size(), 1u)
            << doc << " after crash at " << seam << "#" << occurrence;
        EXPECT_EQ(reborn.raw_content(doc).value_or(""), content)
            << doc << " diverged after crash at " << seam << "#" << occurrence;
      }
      EXPECT_EQ(reborn.document_count(), expected.size())
          << "document count wrong after crash at " << seam << "#"
          << occurrence;
    }
  }
  EXPECT_GE(crashes, 5u) << "the matrix should actually fire every seam";
}

// A refused adoption push must never delete the stray copy: when the ring
// owner's doc sits behind the quarantine wall (and the stray payload fails
// container validation), the stray file is the only good durable copy —
// recovery keeps it and retries on the next boot instead of losing data.
TEST(ShardRouterTest, RecoveryKeepsStrayCopyWhenAdoptionPushIsRefused) {
  TempDir tmp("straykeep");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  {
    ShardRouter router(shard_ids(1), cfg);
    ASSERT_TRUE(create_doc(router, "d").ok());
    ASSERT_TRUE(save_doc(router, "d", "old-owner-copy").ok());
  }
  // Quarantine the owner's copy durably (scrub would do this on rot) and
  // plant a stray shard directory holding the doc at a higher revision —
  // the shape a crash between drain-copy and cutover leaves behind.
  FileStore(tmp.path.string() + "/shard-s0").set_quarantined("d", true);
  FileStore(tmp.path.string() + "/shard-zz")
      .put("d", Store::Record{"newer-stray-copy", 99});

  {
    ShardRouter reborn(shard_ids(1), cfg);
    // The push was refused by the quarantine wall; the stray must survive.
    FileStore stray(tmp.path.string() + "/shard-zz");
    ASSERT_TRUE(stray.get("d").has_value())
        << "refused adoption deleted the only durable copy";
    EXPECT_EQ(stray.get("d")->content, "newer-stray-copy");
  }

  // Once the wall lifts, the next recovery adopts and drops the stray.
  FileStore(tmp.path.string() + "/shard-s0").set_quarantined("d", false);
  ShardRouter healed(shard_ids(1), cfg);
  EXPECT_EQ(healed.raw_content("d").value_or(""), "newer-stray-copy");
  EXPECT_FALSE(FileStore(tmp.path.string() + "/shard-zz").get("d").has_value());
  EXPECT_GE(healed.counters().strays_dropped, 1u);
}

// -------------------------------------------------------------- tenants --

TEST(TenantQuotaTest, DocCountQuotaRejects507WithRetryAfter) {
  ShardRouter router(shard_ids(2), {});
  router.tenants().set_quota("alice", TenantQuota{.max_docs = 2});

  EXPECT_TRUE(create_doc(router, "a1", "alice").ok());
  EXPECT_TRUE(create_doc(router, "a2", "alice").ok());
  const net::HttpResponse refused = create_doc(router, "a3", "alice");
  EXPECT_EQ(refused.status, 507);
  EXPECT_TRUE(refused.headers.get("Retry-After").has_value());
  // Re-creating an owned doc is not a new doc; other tenants unaffected.
  EXPECT_TRUE(create_doc(router, "a1", "alice").ok());
  EXPECT_TRUE(create_doc(router, "b1", "bob").ok());
  EXPECT_EQ(router.counters().quota_rejections, 1u);
}

TEST(TenantQuotaTest, ByteQuotaRejectsOversizedSaveAnddelete_Decrements) {
  ShardRouter router(shard_ids(2), {});
  router.tenants().set_quota("alice", TenantQuota{.max_bytes = 100});

  ASSERT_TRUE(create_doc(router, "a1", "alice").ok());
  ASSERT_TRUE(save_doc(router, "a1", std::string(60, 'x'), "alice").ok());
  EXPECT_EQ(router.tenants().usage("alice").bytes, 60u);

  // A second doc pushing the projected total over 100 bytes → 507.
  ASSERT_TRUE(create_doc(router, "a2", "alice").ok());
  const net::HttpResponse refused =
      save_doc(router, "a2", std::string(50, 'y'), "alice");
  EXPECT_EQ(refused.status, 507);
  EXPECT_TRUE(refused.headers.get("Retry-After").has_value());
  // Growing an EXISTING doc projects against its current charge, not on
  // top of it: 60 → 90 fits inside 100.
  EXPECT_TRUE(save_doc(router, "a1", std::string(90, 'x'), "alice").ok());
  EXPECT_EQ(router.tenants().usage("alice").bytes, 90u);

  // Deleting the doc releases the charge; the refused save now fits.
  ASSERT_TRUE(delete_doc(router, "a1", "alice").ok());
  EXPECT_EQ(router.tenants().usage("alice").bytes, 0u);
  EXPECT_EQ(router.tenants().usage("alice").docs, 1u);  // a2 remains
  EXPECT_TRUE(save_doc(router, "a2", std::string(50, 'y'), "alice").ok());
}

TEST(TenantQuotaTest, CollaboratorWritesBillTheOwner) {
  ShardRouter router(shard_ids(2), {});
  ASSERT_TRUE(create_doc(router, "shared", "alice").ok());
  ASSERT_TRUE(save_doc(router, "shared", std::string(40, 'z'), "bob").ok());
  EXPECT_EQ(router.tenants().usage("alice").bytes, 40u);
  EXPECT_EQ(router.tenants().usage("bob").bytes, 0u);
  EXPECT_EQ(router.tenants().owner_tenant("shared").value_or(""), "alice");
}

TEST(TenantQuotaTest, MissingHeaderBillsTheAnonTenant) {
  ShardRouter router(shard_ids(2), {});
  ASSERT_TRUE(create_doc(router, "nohdr").ok());
  ASSERT_TRUE(save_doc(router, "nohdr", "abc").ok());
  EXPECT_EQ(router.tenants().usage(kAnonTenant).docs, 1u);
  EXPECT_EQ(router.tenants().usage(kAnonTenant).bytes, 3u);
}

TEST(TenantQuotaTest, AccountingSurvivesProviderRestart) {
  TempDir tmp("tenants");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  {
    ShardRouter router(shard_ids(2), cfg);
    router.tenants().set_quota("alice", TenantQuota{.max_docs = 2});
    ASSERT_TRUE(create_doc(router, "a1", "alice").ok());
    ASSERT_TRUE(save_doc(router, "a1", std::string(33, 'q'), "alice").ok());
    ASSERT_TRUE(create_doc(router, "a2", "alice").ok());
  }
  ShardRouter reborn(shard_ids(2), cfg);
  // Usage is rebuilt from the per-doc ownership records; quotas are policy
  // (re-applied by the operator at boot, like the shard list).
  reborn.tenants().set_quota("alice", TenantQuota{.max_docs = 2});
  EXPECT_EQ(reborn.tenants().usage("alice").docs, 2u);
  EXPECT_EQ(reborn.tenants().usage("alice").bytes, 33u);
  EXPECT_EQ(reborn.tenants().owner_tenant("a1").value_or(""), "alice");
  EXPECT_EQ(create_doc(reborn, "a3", "alice").status, 507);
}

// A rotted ownership record (bad form encoding, missing tenant field,
// non-numeric or overflowing bytes=) must be skipped and counted at boot,
// not take the accounts layer down; the intact records still restore.
TEST(TenantQuotaTest, RestoreSkipsRottedRecordsAndKeepsTheRest) {
  TempDir tmp("tenant-rot");
  const std::string dir = tmp.path.string();
  {
    TenantAccounts accounts;
    accounts.enable_persistence(dir);
    accounts.charge("alice", "good1", 10);
    accounts.charge("bob", "good2", 20);
  }
  {
    // Plant rot next to the good records, one per failure class.
    FileStore raw(dir);
    raw.put("rot-escape", {"tenant=%zz&bytes=5", 0});
    raw.put("rot-no-tenant", {"bytes=5", 0});
    raw.put("rot-nan", {"tenant=carol&bytes=banana", 0});
    raw.put("rot-overflow", {"tenant=carol&bytes=99999999999999999999999", 0});
  }
  TenantAccounts reborn;
  reborn.enable_persistence(dir);
  EXPECT_EQ(reborn.counters().restore_skipped, 4u);
  EXPECT_EQ(reborn.usage("alice").docs, 1u);
  EXPECT_EQ(reborn.usage("alice").bytes, 10u);
  EXPECT_EQ(reborn.usage("bob").bytes, 20u);
  EXPECT_EQ(reborn.owner_tenant("good2").value_or(""), "bob");
  // The skipped documents are simply unbilled, not resurrected.
  EXPECT_FALSE(reborn.owner_tenant("rot-nan").has_value());
  EXPECT_EQ(reborn.usage("carol").docs, 0u);
}

TEST(TenantQuotaTest, OverBudgetTenantHasDeltasRefusedUpFront) {
  ShardRouter router(shard_ids(2), {});
  ASSERT_TRUE(create_doc(router, "a1", "alice").ok());
  ASSERT_TRUE(save_doc(router, "a1", std::string(80, 'x'), "alice").ok());
  // Quota imposed AFTER the usage accrued: alice is now over budget, so
  // even the optimistically-admitted delta path refuses her up front.
  router.tenants().set_quota("alice", TenantQuota{.max_bytes = 50});
  FormData f;
  f.add("session", "1");
  f.add("rev", "1");
  f.add("delta", "=80\t+x");
  const net::HttpResponse refused =
      router.handle(doc_request("a1", f, "alice"));
  EXPECT_EQ(refused.status, 507);
}

TEST(TenantQuotaTest, QuotaChecksRideTheSyncVerb) {
  ShardRouter router(shard_ids(2), {});
  router.tenants().set_quota("alice", TenantQuota{.max_bytes = 10});
  ASSERT_TRUE(create_doc(router, "a1", "alice").ok());
  FormData f;
  f.add("cmd", "sync");
  f.add("rev", "5");
  f.add("content", std::string(64, 'c'));
  EXPECT_EQ(router.handle(doc_request("a1", f, "alice")).status, 507);
}

// cmd=sync creates the target document when absent (the server adopts the
// push wholesale), so it must pass the same doc-count admission as
// cmd=create — otherwise a tenant at max_docs mints documents for free.
TEST(TenantQuotaTest, SyncCannotBypassDocCountQuota) {
  ShardRouter router(shard_ids(2), {});
  router.tenants().set_quota("alice", TenantQuota{.max_docs = 1});
  ASSERT_TRUE(create_doc(router, "a1", "alice").ok());

  FormData f;
  f.add("cmd", "sync");
  f.add("rev", "7");
  f.add("content", "pushed");
  const net::HttpResponse refused = router.handle(doc_request("a2", f, "alice"));
  EXPECT_EQ(refused.status, 507);
  EXPECT_TRUE(refused.headers.get("Retry-After").has_value());
  EXPECT_EQ(router.tenants().usage("alice").docs, 1u)
      << "the refused sync must not be charged";

  // Syncing a document the tenant already owns is not a new document.
  EXPECT_TRUE(router.handle(doc_request("a1", f, "alice")).ok());
  // And a collaborator at their own doc-count ceiling can still sync an
  // EXISTING doc owned by someone else (the owner keeps paying).
  router.tenants().set_quota("bob", TenantQuota{.max_docs = 1});
  ASSERT_TRUE(create_doc(router, "b1", "bob").ok());
  EXPECT_TRUE(router.handle(doc_request("a1", f, "bob")).ok());
}

// ------------------------------------------------- per-shard admission --

TEST(ShardRouterTest, AdmissionBudgetsArePerShard) {
  std::uint64_t now = 0;
  ShardRouterConfig cfg;
  cfg.admission = net::AdmissionConfig{.rate_per_sec = 0.001, .burst = 3.0};
  cfg.admission_now = [&now] { return now; };
  ShardRouter router(shard_ids(2), cfg);

  // Two docs on different shards, same client: exhausting one shard's
  // bucket must not starve the other (independent controllers).
  std::string on_s0, on_s1;
  for (int i = 0; i < 64 && (on_s0.empty() || on_s1.empty()); ++i) {
    const std::string doc = "doc" + std::to_string(i);
    (router.shard_for(doc) == "s0" ? on_s0 : on_s1) = doc;
  }
  ASSERT_FALSE(on_s0.empty());
  ASSERT_FALSE(on_s1.empty());
  ASSERT_TRUE(create_doc(router, on_s0, "alice").ok());

  net::HttpResponse last;
  for (int i = 0; i < 8; ++i) last = open_doc(router, on_s0);
  EXPECT_EQ(last.status, 503) << "s0's bucket should be empty";
  EXPECT_TRUE(create_doc(router, on_s1, "alice").ok())
      << "s1 has its own untouched budget";
}

// ------------------------------------------------ lifecycle vs traffic --

// Live traffic racing drain/join cycles: a request that routed to a shard
// just before remove_shard erased it must keep a valid reference (the
// shared-ownership contract), never touch freed state. Run under
// TSan/ASan this is the use-after-free regression; under a plain build it
// still checks that every doc survives the churn with exactly one owner.
TEST(ShardRouterTest, ConcurrentTrafficSurvivesDrainAndJoinCycles) {
  ShardRouter router(shard_ids(3), {});
  constexpr int kDocs = 24;
  for (int i = 0; i < kDocs; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_TRUE(create_doc(router, doc).ok());
    ASSERT_TRUE(save_doc(router, doc, "orig-" + doc).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&router, t, &stop] {
      // Writers and readers hammer the full doc set; 503s (handoff, down
      // shard) and 404s (read raced a cleanup) are expected under churn —
      // the invariants are checked at quiesce.
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string doc = "doc" + std::to_string(i % kDocs);
        if (t % 2 == 0) {
          save_doc(router, doc, "w-" + doc);
        } else {
          open_doc(router, doc);
        }
      }
    });
  }
  for (int cycle = 0; cycle < 8; ++cycle) {
    router.remove_shard("s1");
    router.add_shard("s1");
  }
  stop.store(true);
  for (std::thread& th : clients) th.join();

  for (int i = 0; i < kDocs; ++i) {
    const std::string doc = "doc" + std::to_string(i);
    ASSERT_EQ(router.holders(doc).size(), 1u) << doc << " after churn";
    const std::string content = router.raw_content(doc).value_or("");
    EXPECT_TRUE(content == "orig-" + doc || content == "w-" + doc)
        << doc << " holds unexpected content: " << content;
  }
}

// ----------------------------------------------- mediator transparency --

TEST(ShardRouterTest, MediatedEditingThroughTheRouterBillsTheTenant) {
  ShardRouter router(shard_ids(3), {});
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&router](const net::HttpRequest& r) { return router.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(77));
  extension::MediatorConfig mc;
  mc.password = "pw";
  mc.scheme.mode = enc::Mode::kRpc;
  mc.scheme.kdf_iterations = 5;
  mc.rng_factory = extension::seeded_rng_factory(78);
  mc.client_id = "alice";
  extension::GDocsMediator mediator(&transport, std::move(mc), &clock);

  const std::string target = "/Doc?docID=meddoc";
  FormData create;
  create.add("cmd", "create");
  ASSERT_TRUE(mediator
                  .round_trip(net::HttpRequest::post_form(target,
                                                          create.encode()))
                  .ok());
  FormData save;
  save.add("session", "1");
  save.add("rev", "0");
  save.add("docContents", "the secret plaintext");
  ASSERT_TRUE(
      mediator.round_trip(net::HttpRequest::post_form(target, save.encode()))
          .ok());

  // The tenant ledger sees alice; the stored bytes are ciphertext.
  EXPECT_EQ(router.tenants().owner_tenant("meddoc").value_or(""), "alice");
  EXPECT_EQ(router.tenants().usage("alice").docs, 1u);
  EXPECT_GT(router.tenants().usage("alice").bytes, 0u);
  const std::string stored = router.raw_content("meddoc").value_or("");
  EXPECT_EQ(stored.find("secret"), std::string::npos);

  // And the round trip decrypts back through the mediator.
  FormData open;
  open.add("cmd", "open");
  const net::HttpResponse resp =
      mediator.round_trip(net::HttpRequest::post_form(target, open.encode()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(FormData::parse(resp.body).get("content").value_or(""),
            "the secret plaintext");
}

// Block-delta saves racing a migration: a bdelta save in flight when the
// document's shard starts draining must hit the handoff fence (503) and
// land EXACTLY ONCE after the router reconciles — never zero times (lost
// write) and never twice (the fenced attempt plus its replay).
TEST(ShardRouterTest, BlockDeltaSaveAcrossDrainLandsExactlyOnce) {
  TempDir tmp("bdeltamig");
  ShardRouterConfig cfg;
  cfg.data_dir = tmp.path.string();
  cfg.handoff_retry_after_s = 1;
  auto router = std::make_unique<ShardRouter>(shard_ids(3), cfg);
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&router](const net::HttpRequest& r) { return router->handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(91));
  extension::MediatorConfig mc;
  mc.password = "pw";
  mc.scheme.mode = enc::Mode::kRpc;
  mc.scheme.kdf_iterations = 5;
  mc.rng_factory = extension::seeded_rng_factory(92);
  mc.client_id = "alice";
  mc.journal_dir = (tmp.path / "journal").string();
  mc.block_delta_saves = true;
  extension::GDocsMediator mediator(&transport, std::move(mc), &clock);

  const std::string target = "/Doc?docID=migdoc";
  auto med_save = [&](std::uint64_t rev, const std::string& text) {
    FormData save;
    save.add("session", "1");
    save.add("rev", std::to_string(rev));
    save.add("docContents", text);
    return mediator.round_trip(net::HttpRequest::post_form(target,
                                                           save.encode()));
  };
  FormData create;
  create.add("cmd", "create");
  ASSERT_TRUE(mediator
                  .round_trip(net::HttpRequest::post_form(target,
                                                          create.encode()))
                  .ok());
  const std::string base = std::string(600, 'a') + " stable tail";
  ASSERT_TRUE(med_save(0, base).ok());  // plain full; ack latches bdelta
  ASSERT_TRUE(med_save(1, "v2 " + base).ok());
  EXPECT_GE(mediator.counters().bdelta_saves, 1u)
      << "the capability latch should make the second save differential";

  const std::string owner = router->shard_for("migdoc");
  const std::uint64_t rev_before =
      router->shard_server(owner).table().find("migdoc")->rev;

  // Open the handoff window deterministically: crash the drain of the
  // doc's owner before cutover, leaving the fence up.
  CrashPoints::arm("router.migrate.before_cutover", 1);
  EXPECT_THROW(router->remove_shard(owner), CrashError);
  CrashPoints::disarm();

  const std::string final_text = "v3 v2 " + base;
  const net::HttpResponse fenced = med_save(rev_before, final_text);
  EXPECT_EQ(fenced.status, 503);  // fenced: refused, not applied
  EXPECT_GE(router->counters().handoff_rejections, 1u);
  EXPECT_EQ(router->shard_server(owner).table().find("migdoc")->rev,
            rev_before)
      << "a fenced save must not have touched the draining shard";

  // Provider reboot on the same data_dir reconciles the torn migration:
  // the document ends up owned exactly once.
  router = std::make_unique<ShardRouter>(shard_ids(3), cfg);
  ASSERT_EQ(router->holders("migdoc").size(), 1u);

  // The retry lands exactly once. Its block-delta anchor (the mediator's
  // ciphertext mirror) ran ahead during the fenced attempt, so the server
  // answers 412 and the documented fallback resends the plain full save —
  // the fence must degrade the encoding, never duplicate the write.
  ASSERT_TRUE(med_save(rev_before, final_text).ok());

  FormData open;
  open.add("cmd", "open");
  const net::HttpResponse reopened =
      mediator.round_trip(net::HttpRequest::post_form(target, open.encode()));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(FormData::parse(reopened.body).get("content").value_or(""),
            final_text);
  const std::string after_owner = router->shard_for("migdoc");
  EXPECT_EQ(router->shard_server(after_owner).table().find("migdoc")->rev,
            rev_before + 1)
      << "the in-flight save must land exactly once across the migration";
}

}  // namespace
}  // namespace privedit::cloud
