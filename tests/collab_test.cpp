// Collaborative editing through the untrusted server (extension beyond the
// paper): the mediator's OT rebase loop against the strict-revision (OCC)
// server. §VII-A reported simultaneous editing as broken and deferred the
// problem to SPORC; this suite shows the privedit stack converging without
// the server ever seeing plaintext.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"
#include "privedit/workload/corpus.hpp"

namespace privedit::extension {
namespace {

struct CollabStack {
  CollabStack() {
    server.set_strict_revisions(true);
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(400));
  }

  MediatorConfig config(std::uint64_t seed) const {
    MediatorConfig c;
    c.password = "collab";
    c.scheme.mode = enc::Mode::kRpc;
    c.scheme.kdf_iterations = 5;
    c.collaborative = true;
    c.rng_factory = seeded_rng_factory(seed);
    return c;
  }

  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
};

TEST(Collaboration, StrictServerRejectsStaleDeltas) {
  cloud::GDocsServer server;
  server.set_strict_revisions(true);
  net::HttpRequest create =
      net::HttpRequest::post_form("/Doc?docID=d", "cmd=create");
  server.handle(create);
  net::HttpRequest first = net::HttpRequest::post_form(
      "/Doc?docID=d", "session=1&rev=0&delta=%2Bfirst");
  EXPECT_TRUE(server.handle(first).ok());
  net::HttpRequest stale = net::HttpRequest::post_form(
      "/Doc?docID=d", "session=2&rev=0&delta=%2Bsecond");
  const net::HttpResponse resp = server.handle(stale);
  EXPECT_EQ(resp.status, 409);
  EXPECT_EQ(server.raw_content("d"), "first");  // not mutated
  const FormData ack = FormData::parse(resp.body);
  EXPECT_EQ(ack.get("contentFromServer"), "first");
}

TEST(Collaboration, ConcurrentEditsConvergeWithoutComplaints) {
  CollabStack stack;
  GDocsMediator alice_ext(stack.transport.get(), stack.config(1),
                          &stack.clock);
  GDocsMediator bob_ext(stack.transport.get(), stack.config(2), &stack.clock);

  client::GDocsClient alice(&alice_ext, "doc");
  alice.create();
  alice.insert(0, "The meeting is at noon. Bring the documents.");
  alice.save();

  client::GDocsClient bob(&bob_ext, "doc");
  bob.open();
  ASSERT_EQ(bob.text(), alice.text());

  // Concurrent, non-overlapping edits: alice prepends, bob appends.
  alice.insert(0, "URGENT: ");
  alice.save();

  bob.insert(bob.text().size(), " Room 4B.");
  bob.save();  // stale revision -> mediator rebases -> client adopts merge

  EXPECT_EQ(bob.conflict_complaints(), 0u);
  EXPECT_EQ(bob.merges(), 1u);
  EXPECT_GE(bob_ext.counters().rebases, 1u);
  EXPECT_EQ(bob.text(),
            "URGENT: The meeting is at noon. Bring the documents. Room 4B.");

  // Alice sees the merged state on her next open; the server saw none of it.
  alice.open();
  EXPECT_EQ(alice.text(), bob.text());
  EXPECT_EQ(stack.server.raw_content("doc")->find("URGENT"),
            std::string::npos);
  EXPECT_EQ(stack.server.raw_content("doc")->find("Room"), std::string::npos);
}

TEST(Collaboration, InterleavedEditWarConverges) {
  CollabStack stack;
  GDocsMediator alice_ext(stack.transport.get(), stack.config(3),
                          &stack.clock);
  GDocsMediator bob_ext(stack.transport.get(), stack.config(4), &stack.clock);

  client::GDocsClient alice(&alice_ext, "doc");
  alice.create();
  Xoshiro256 rng(5);
  const std::string base_text = workload::random_document(rng, 200);
  const std::size_t base_len = base_text.size();
  alice.insert(0, base_text);
  alice.save();
  client::GDocsClient bob(&bob_ext, "doc");
  bob.open();

  // Ten rounds of both editing before either saves.
  for (int round = 0; round < 10; ++round) {
    alice.insert(rng.below(alice.text().size() + 1),
                 "[A" + std::to_string(round) + "]");
    bob.insert(rng.below(bob.text().size() + 1),
               "[B" + std::to_string(round) + "]");
    alice.save();
    bob.save();
    // Bob merged alice's edit; alice catches up by reopening.
    alice.open();
    ASSERT_EQ(alice.text(), bob.text()) << "round " << round;
  }
  EXPECT_EQ(alice.conflict_complaints(), 0u);
  EXPECT_EQ(bob.conflict_complaints(), 0u);

  // No characters were lost or duplicated across the merges: the final
  // length equals the base plus every inserted marker. (Markers may
  // interleave when concurrent inserts land at the same position — that
  // is correct OT behaviour — so we assert conservation, not contiguity.)
  std::size_t inserted = 0;
  for (int round = 0; round < 10; ++round) {
    inserted += std::string("[A" + std::to_string(round) + "]").size();
    inserted += std::string("[B" + std::to_string(round) + "]").size();
  }
  EXPECT_EQ(alice.text().size(), base_len + inserted);
  // Both writers' characters all survive.
  for (char marker : {'A', 'B'}) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(alice.text().begin(), alice.text().end(),
                             marker)),
              10u + static_cast<std::size_t>(std::count(
                        base_text.begin(), base_text.end(), marker)));
  }
}

TEST(Collaboration, NonCollaborativeMediatorStillComplains) {
  // Control: the paper's behaviour (no rebase) against the strict server —
  // bob's save fails loudly instead of merging.
  CollabStack stack;
  MediatorConfig plain_config = stack.config(6);
  plain_config.collaborative = false;
  GDocsMediator alice_ext(stack.transport.get(), stack.config(7),
                          &stack.clock);
  GDocsMediator bob_ext(stack.transport.get(), std::move(plain_config),
                        &stack.clock);

  client::GDocsClient alice(&alice_ext, "doc");
  alice.create();
  alice.insert(0, "shared base text here.");
  alice.save();
  client::GDocsClient bob(&bob_ext, "doc");
  bob.open();

  alice.insert(0, "alice! ");
  alice.save();
  bob.insert(0, "bob! ");
  EXPECT_THROW(bob.save(), ProtocolError);  // 409 surfaces to the client
}

TEST(Collaboration, ThreeWritersEventuallyConverge) {
  CollabStack stack;
  std::vector<std::unique_ptr<GDocsMediator>> exts;
  std::vector<std::unique_ptr<client::GDocsClient>> clients;
  for (int i = 0; i < 3; ++i) {
    exts.push_back(std::make_unique<GDocsMediator>(
        stack.transport.get(), stack.config(10 + static_cast<std::uint64_t>(i)),
        &stack.clock));
  }
  clients.push_back(
      std::make_unique<client::GDocsClient>(exts[0].get(), "doc"));
  clients[0]->create();
  clients[0]->insert(0, "base. base. base. base.");
  clients[0]->save();
  for (int i = 1; i < 3; ++i) {
    clients.push_back(
        std::make_unique<client::GDocsClient>(exts[static_cast<std::size_t>(i)].get(), "doc"));
    clients[static_cast<std::size_t>(i)]->open();
  }

  Xoshiro256 rng(77);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto& c = *clients[static_cast<std::size_t>(i)];
      c.insert(rng.below(c.text().size() + 1),
               "<" + std::to_string(i) + "." + std::to_string(round) + ">");
      c.save();
    }
  }
  // Everyone re-opens and agrees.
  for (auto& c : clients) c->open();
  EXPECT_EQ(clients[0]->text(), clients[1]->text());
  EXPECT_EQ(clients[1]->text(), clients[2]->text());
  // Character conservation: base plus all 15 markers, nothing lost.
  std::size_t inserted = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      inserted += std::string("<" + std::to_string(i) + "." +
                              std::to_string(round) + ">")
                      .size();
    }
  }
  EXPECT_EQ(clients[0]->text().size(),
            std::string("base. base. base. base.").size() + inserted);
  EXPECT_EQ(static_cast<std::size_t>(std::count(clients[0]->text().begin(),
                                                clients[0]->text().end(),
                                                '<')),
            15u);
}

}  // namespace
}  // namespace privedit::extension
