// Tests for the durable provider storage: atomic persistence, restart
// recovery, and the filesystem-level attacker (§II subpoena scenario).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/util/error.hpp"

namespace privedit::cloud {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("privedit_store_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  FileStore store(dir_);
  store.put("doc-1", {"hello\nmultiline\ncontent", 7});
  const auto record = store.get("doc-1");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->content, "hello\nmultiline\ncontent");
  EXPECT_EQ(record->rev, 7u);
  EXPECT_FALSE(store.get("missing").has_value());
}

TEST_F(FileStoreTest, BinaryContentAndOddIds) {
  FileStore store(dir_);
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  const std::string odd_id = "docs/../weird id?&=";
  store.put(odd_id, {binary, 1});
  const auto record = store.get(odd_id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->content, binary);
  // The id is hex-mangled into the filename; no path traversal possible.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().parent_path().string(), dir_);
  }
}

TEST_F(FileStoreTest, OverwriteKeepsLatest) {
  FileStore store(dir_);
  store.put("d", {"v1", 1});
  store.put("d", {"v2", 2});
  EXPECT_EQ(store.get("d")->content, "v2");
  EXPECT_EQ(store.get("d")->rev, 2u);
}

TEST_F(FileStoreTest, LoadAllRecoversEverything) {
  {
    FileStore store(dir_);
    store.put("a", {"alpha", 1});
    store.put("b", {"beta", 2});
    store.remove("a");
    store.put("c", {"gamma", 3});
  }
  FileStore reopened(dir_);
  const auto all = reopened.load_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("b").content, "beta");
  EXPECT_EQ(all.at("c").rev, 3u);
}

TEST_F(FileStoreTest, CorruptFileIsReported) {
  FileStore store(dir_);
  store.put("d", {"fine", 1});
  // Clobber the file with garbage lacking the revision line.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << "no-newline-anywhere";
  }
  EXPECT_THROW(store.get("d"), ParseError);
}

TEST_F(FileStoreTest, ZeroLengthFileIsReportedNotEmptyRecord) {
  FileStore store(dir_);
  store.put("d", {"content", 3});
  // A crash-truncated (zero-byte) file has no revision line: corrupt, not
  // "an empty document at revision 0".
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
  }
  EXPECT_THROW(store.get("d"), ParseError);
}

TEST_F(FileStoreTest, RevisionLineAloneIsCorruptWithoutItsNewline) {
  FileStore store(dir_);
  store.put("d", {"content", 3});
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << "7";  // revision digits but no terminating newline
  }
  EXPECT_THROW(store.get("d"), ParseError);

  // With the newline the same bytes are a valid empty document at rev 7.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << "7\n";
  }
  const auto record = store.get("d");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->rev, 7u);
  EXPECT_TRUE(record->content.empty());
}

TEST_F(FileStoreTest, ConstructorDiscardsStaleTempFilesAndCountsThem) {
  {
    FileStore store(dir_);
    store.put("d", {"durable", 1});
    EXPECT_EQ(store.tmp_swept(), 0u);
  }
  // A crash between temp-write and rename leaves .tmp files behind.
  std::ofstream(dir_ + "/deadbeef.doc.tmp", std::ios::binary) << "torn half";
  std::ofstream(dir_ + "/cafe.doc.tmp", std::ios::binary) << "torn other";
  FileStore reopened(dir_);
  EXPECT_EQ(reopened.tmp_swept(), 2u);
  EXPECT_FALSE(fs::exists(dir_ + "/deadbeef.doc.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/cafe.doc.tmp"));
  EXPECT_EQ(reopened.get("d")->content, "durable");
}

TEST_F(FileStoreTest, ListIncludesCorruptDocsAndLoadAllReportsThem) {
  FileStore store(dir_);
  store.put("good", {"fine", 1});
  store.put("bad", {"fine for now", 1});
  std::ofstream(store.path_for("bad"), std::ios::trunc | std::ios::binary)
      << "no rev line";
  // The corrupt doc stays visible to the walk surface (scrub/fsck need to
  // find it), and tolerant loading reports instead of throwing.
  const auto ids = store.list_doc_ids();
  EXPECT_EQ(ids.size(), 2u);
  std::vector<std::string> corrupt;
  const auto all = store.load_all(&corrupt);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(all.contains("good"));
  EXPECT_EQ(corrupt, std::vector<std::string>{"bad"});
  // The legacy nullptr form skips silently rather than dying.
  EXPECT_EQ(store.load_all().size(), 1u);
}

TEST_F(FileStoreTest, QuarantineMarkersAreDurableAndInvisibleToDocWalk) {
  {
    FileStore store(dir_);
    store.put("d", {"content", 1});
    store.set_quarantined("d", true);
    EXPECT_EQ(store.quarantined(), std::set<std::string>{"d"});
  }
  FileStore reopened(dir_);
  EXPECT_EQ(reopened.quarantined(), std::set<std::string>{"d"});
  // The marker is metadata: the record itself is untouched and the marker
  // file never shows up as a document.
  EXPECT_EQ(reopened.list_doc_ids(), std::vector<std::string>{"d"});
  EXPECT_EQ(reopened.get("d")->content, "content");
  reopened.set_quarantined("d", false);
  EXPECT_TRUE(reopened.quarantined().empty());
  reopened.set_quarantined("never-stored", false);  // no-op, no throw
}

TEST_F(FileStoreTest, ServerSurvivesRestart) {
  // Encrypted editing session against a persistent provider...
  net::SimClock clock;
  extension::MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 10;
  config.rng_factory = extension::seeded_rng_factory(21);
  {
    GDocsServer server;
    server.enable_persistence(dir_);
    net::LoopbackTransport transport(
        [&server](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(20));
    extension::GDocsMediator mediator(&transport, config, &clock);
    client::GDocsClient writer(&mediator, "durable");
    writer.create();
    writer.insert(0, "survives the provider restarting");
    writer.save();
    writer.insert(0, "still ");
    writer.save();
  }  // provider process "crashes"

  // ...provider restarts from disk; a fresh client opens the document.
  GDocsServer reborn;
  reborn.enable_persistence(dir_);
  EXPECT_EQ(reborn.document_count(), 1u);
  net::LoopbackTransport transport(
      [&reborn](const net::HttpRequest& r) { return reborn.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(22));
  extension::GDocsMediator mediator(&transport, config, &clock);
  client::GDocsClient reader(&mediator, "durable");
  reader.open();
  EXPECT_EQ(reader.text(), "still survives the provider restarting");
}

TEST_F(FileStoreTest, FilesystemAttackerSeesOnlyCiphertextAndTamperingIsCaught) {
  net::SimClock clock;
  extension::MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 10;
  config.rng_factory = extension::seeded_rng_factory(31);

  GDocsServer server;
  server.enable_persistence(dir_);
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(30));
  extension::GDocsMediator mediator(&transport, config, &clock);
  client::GDocsClient writer(&mediator, "subpoenaed");
  writer.create();
  writer.insert(0, "grand jury material");
  writer.save();

  // The subpoena delivers the files — doc records and the .audit/ chain
  // sidecars alike — which contain no plaintext.
  for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(blob.find("grand jury"), std::string::npos);
    // An attacker editing the file on disk is caught at next open.
    blob[blob.size() / 2] = blob[blob.size() / 2] == 'A' ? 'B' : 'A';
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << blob;
  }

  GDocsServer reborn;
  reborn.enable_persistence(dir_);
  net::LoopbackTransport transport2(
      [&reborn](const net::HttpRequest& r) { return reborn.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(32));
  extension::GDocsMediator mediator2(&transport2, config, &clock);
  client::GDocsClient reader(&mediator2, "subpoenaed");
  EXPECT_THROW(reader.open(), Error);
}

}  // namespace
}  // namespace privedit::cloud
