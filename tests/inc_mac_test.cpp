// Tests for the incremental MACs of §V-A — including a working
// demonstration of the substitution forgery against the XOR scheme (the
// reason the paper rejects it) and its failure against the hash tree.

#include <gtest/gtest.h>

#include "privedit/crypto/inc_mac.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/random.hpp"

namespace privedit::crypto {
namespace {

std::vector<Bytes> blocks_of(std::initializer_list<const char*> parts) {
  std::vector<Bytes> out;
  for (const char* p : parts) out.push_back(to_bytes(p));
  return out;
}

TEST(XorIncMac, DeterministicAndKeyed) {
  const Bytes key = to_bytes("mac key");
  XorIncMac mac(key);
  const auto blocks = blocks_of({"alpha", "beta", "gamma"});
  EXPECT_EQ(mac.tag(blocks), mac.tag(blocks));
  XorIncMac other(to_bytes("different key"));
  EXPECT_NE(mac.tag(blocks), other.tag(blocks));
  EXPECT_TRUE(mac.verify(blocks, mac.tag(blocks)));
  EXPECT_FALSE(mac.verify(blocks, other.tag(blocks)));
}

TEST(XorIncMac, PositionSensitive) {
  XorIncMac mac(to_bytes("k"));
  const auto ab = blocks_of({"a", "b"});
  const auto ba = blocks_of({"b", "a"});
  EXPECT_NE(mac.tag(ab), mac.tag(ba));
}

TEST(XorIncMac, IncrementalReplaceMatchesRecompute) {
  XorIncMac mac(to_bytes("k"));
  auto blocks = blocks_of({"one", "two", "three", "four"});
  Bytes tag = mac.tag(blocks);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Bytes old_block = blocks[i];
    blocks[i] = to_bytes("replacement" + std::to_string(i));
    tag = mac.update_replace(tag, i, old_block, blocks[i]);
    ASSERT_EQ(tag, mac.tag(blocks)) << "after replace " << i;
  }
}

// §V-A: "the hash-then-sign and XOR schemes are all subject to
// substitution attacks". The attacker holds tags for three legitimately
// authenticated documents and forges a tag for a fourth document no one
// ever authenticated — because XOR tags are linear.
TEST(XorIncMac, SubstitutionForgerySucceeds) {
  XorIncMac mac(to_bytes("victim key"));
  const auto m1 = blocks_of({"pay", "alice"});   // authenticated
  const auto m2 = blocks_of({"pay", "bob"});     // authenticated
  const auto m3 = blocks_of({"fire", "alice"});  // authenticated
  const auto forged = blocks_of({"fire", "bob"});  // NEVER authenticated

  const Bytes t1 = mac.tag(m1);
  const Bytes t2 = mac.tag(m2);
  const Bytes t3 = mac.tag(m3);

  // tag(m1)⊕tag(m2)⊕tag(m3) = term(0,"pay")⊕term(1,"alice") ⊕ ... — the
  // duplicated terms cancel, leaving exactly tag({"fire","bob"}).
  Bytes forged_tag = t1;
  xor_into(forged_tag, t2);
  xor_into(forged_tag, t3);

  EXPECT_TRUE(mac.verify(forged, forged_tag))
      << "the XOR scheme should be forgeable — this is the attack the "
         "paper cites";
}

TEST(TreeIncMac, RootStableAndKeyed) {
  const auto blocks = blocks_of({"alpha", "beta", "gamma", "delta", "eps"});
  const Bytes r1 = TreeIncMac::compute_root(to_bytes("k"), blocks);
  const Bytes r2 = TreeIncMac::compute_root(to_bytes("k"), blocks);
  const Bytes r3 = TreeIncMac::compute_root(to_bytes("other"), blocks);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
  EXPECT_TRUE(TreeIncMac::verify(to_bytes("k"), blocks, r1));
  EXPECT_FALSE(TreeIncMac::verify(to_bytes("k"), blocks, r3));
}

TEST(TreeIncMac, SubstitutionForgeryFails) {
  const Bytes key = to_bytes("victim key");
  const auto m1 = blocks_of({"pay", "alice"});
  const auto m2 = blocks_of({"pay", "bob"});
  const auto m3 = blocks_of({"fire", "alice"});
  const auto forged = blocks_of({"fire", "bob"});

  Bytes combined = TreeIncMac::compute_root(key, m1);
  xor_into(combined, TreeIncMac::compute_root(key, m2));
  xor_into(combined, TreeIncMac::compute_root(key, m3));
  EXPECT_FALSE(TreeIncMac::verify(key, forged, combined));
}

TEST(TreeIncMac, DetectsReorderTruncateExtend) {
  const Bytes key = to_bytes("k");
  const auto blocks = blocks_of({"a", "b", "c", "d"});
  const Bytes root = TreeIncMac::compute_root(key, blocks);
  EXPECT_FALSE(TreeIncMac::verify(key, blocks_of({"b", "a", "c", "d"}), root));
  EXPECT_FALSE(TreeIncMac::verify(key, blocks_of({"a", "b", "c"}), root));
  EXPECT_FALSE(TreeIncMac::verify(key, blocks_of({"a", "b", "c", "d", "d"}),
                                  root));
}

class TreeReplaceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeReplaceTest, IncrementalReplaceMatchesRebuild) {
  const std::size_t n = GetParam();
  const Bytes key = to_bytes("k");
  Xoshiro256 rng(n);
  std::vector<Bytes> blocks;
  for (std::size_t i = 0; i < n; ++i) blocks.push_back(rng.bytes(8));

  TreeIncMac tree(key, blocks);
  for (int round = 0; round < 50; ++round) {
    const std::size_t idx = rng.below(n);
    blocks[idx] = rng.bytes(8);
    tree.replace(idx, blocks[idx]);
    ASSERT_EQ(tree.root(), TreeIncMac::compute_root(key, blocks))
        << "n=" << n << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeReplaceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 64, 100));

TEST(TreeIncMac, EmptyAndSingle) {
  const Bytes key = to_bytes("k");
  const Bytes empty_root = TreeIncMac::compute_root(key, {});
  const Bytes one_root = TreeIncMac::compute_root(key, blocks_of({"x"}));
  EXPECT_NE(empty_root, one_root);
  TreeIncMac tree(key, blocks_of({"x"}));
  tree.replace(0, to_bytes("y"));
  EXPECT_EQ(tree.root(), TreeIncMac::compute_root(key, blocks_of({"y"})));
  EXPECT_THROW(tree.replace(1, to_bytes("z")), Error);
}

TEST(IncMacs, RejectEmptyKeys) {
  EXPECT_THROW(XorIncMac(Bytes{}), CryptoError);
  EXPECT_THROW(TreeIncMac(Bytes{}, {}), CryptoError);
}

// ------------------------------------------------------- AES-CMAC PRF kind

TEST(XorIncMacCmac, RequiresSixteenByteKey) {
  EXPECT_THROW(XorIncMac(to_bytes("short"), PrfKind::kAesCmac), CryptoError);
  EXPECT_THROW(XorIncMac(Bytes(32, 0x01), PrfKind::kAesCmac), CryptoError);
  XorIncMac ok(Bytes(16, 0x01), PrfKind::kAesCmac);
  EXPECT_EQ(ok.tag_size(), XorIncMac::kCmacTagSize);
}

// RFC 4493 known answers, reached through term(): the per-position term is
// CMAC(k, u64be(index) ‖ block), so picking index = the first 8 message
// bytes and block = the rest makes term() compute the RFC's exact CMAC.
TEST(XorIncMacCmac, Rfc4493KnownAnswersViaTerm) {
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  XorIncMac mac(key, PrfKind::kAesCmac);

  // Example 2: 16-byte message (full final block, K1 mask).
  // M = 6bc1bee22e409f96 e93d7e117393172a
  EXPECT_EQ(mac.term(0x6bc1bee22e409f96ull,
                     hex_decode("e93d7e117393172a")),
            hex_decode("070a16b46b4d4144f79bdd9dd04a287c"));

  // Example 3: 40-byte message (padded final block path exercised by the
  // 32-byte tail after the 8-byte index prefix).
  EXPECT_EQ(mac.term(0x6bc1bee22e409f96ull,
                     hex_decode("e93d7e117393172aae2d8a571e03ac9c"
                                "9eb76fac45af8e5130c81c46a35ce411")),
            hex_decode("dfa66747de9ae63030ca32611497c827"));
}

TEST(XorIncMacCmac, TagAndIncrementalReplace) {
  XorIncMac mac(Bytes(16, 0x42), PrfKind::kAesCmac);
  auto blocks = blocks_of({"one", "two", "three", "four"});
  Bytes tag = mac.tag(blocks);
  EXPECT_EQ(tag.size(), XorIncMac::kCmacTagSize);
  EXPECT_TRUE(mac.verify(blocks, tag));
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Bytes old_block = blocks[i];
    blocks[i] = to_bytes("swap" + std::to_string(i));
    tag = mac.update_replace(tag, i, old_block, blocks[i]);
    ASSERT_EQ(tag, mac.tag(blocks)) << "after replace " << i;
  }
  // A 32-byte HMAC-sized tag must be rejected by the 16-byte CMAC MAC.
  EXPECT_THROW(mac.update_replace(Bytes(32, 0), 0, to_bytes("a"),
                                  to_bytes("b")),
               CryptoError);
}

TEST(XorIncMacCmac, DistinctFromHmacAndKeyed) {
  const Bytes key(16, 0x42);
  XorIncMac cmac_mac(key, PrfKind::kAesCmac);
  XorIncMac hmac_mac(key);  // default HMAC-SHA256
  const auto blocks = blocks_of({"alpha", "beta"});
  EXPECT_NE(cmac_mac.tag(blocks).size(), hmac_mac.tag(blocks).size());
  XorIncMac other(Bytes(16, 0x43), PrfKind::kAesCmac);
  EXPECT_NE(cmac_mac.tag(blocks), other.tag(blocks));
}

// Synthetic 2^32 regression: the index is bound into the term through
// u64be, so indices 2^32 apart must never collide — a 32-bit truncation of
// the index would make term(2^32 + 1) == term(1) and open a swap forgery
// between those positions.
TEST(XorIncMac, IndexBindingSurvivesThe32BitBoundary) {
  const Bytes block = to_bytes("block");
  XorIncMac hmac_mac(to_bytes("k"));
  EXPECT_NE(hmac_mac.term((1ull << 32) + 1, block), hmac_mac.term(1, block));
  EXPECT_NE(hmac_mac.term(1ull << 32, block), hmac_mac.term(0, block));
  XorIncMac cmac_mac(Bytes(16, 0x42), PrfKind::kAesCmac);
  EXPECT_NE(cmac_mac.term((1ull << 32) + 1, block), cmac_mac.term(1, block));
  EXPECT_NE(cmac_mac.term(1ull << 32, block), cmac_mac.term(0, block));
}

}  // namespace
}  // namespace privedit::crypto
