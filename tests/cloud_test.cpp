// Tests for the simulated cloud services: the Google Documents protocol,
// Bespin file storage, Buzzword XML documents, and the XML utilities.

#include <gtest/gtest.h>

#include "privedit/cloud/file_servers.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/xml.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::cloud {
namespace {

net::HttpRequest doc_post(const std::string& doc_id, const FormData& form) {
  return net::HttpRequest::post_form("/Doc?docID=" + percent_encode(doc_id),
                                     form.encode());
}

FormData form_of(const net::HttpResponse& resp) {
  return FormData::parse(resp.body);
}

TEST(GDocsServer, CreateOpenSaveCycle) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  auto resp = server.handle(doc_post("d1", create));
  EXPECT_EQ(resp.status, 201);

  FormData save;
  save.add("session", "1");
  save.add("rev", "0");
  save.add("docContents", "hello world");
  resp = server.handle(doc_post("d1", save));
  EXPECT_TRUE(resp.ok());
  EXPECT_TRUE(form_of(resp).contains("contentFromServerHash"));
  EXPECT_EQ(server.raw_content("d1"), "hello world");

  FormData open;
  open.add("cmd", "open");
  resp = server.handle(doc_post("d1", open));
  EXPECT_EQ(form_of(resp).get("content"), "hello world");
  EXPECT_EQ(form_of(resp).get("rev"), "1");
}

TEST(GDocsServer, DeltaUpdatesContent) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData save;
  save.add("session", "1");
  save.add("rev", "0");
  save.add("docContents", "abcdefg");
  server.handle(doc_post("d", save));

  // The paper's example: "=2 -3 +uv =2 +w" turns abcdefg into abuvfgw.
  FormData upd;
  upd.add("session", "1");
  upd.add("rev", "1");
  upd.add("delta", "=2\t-3\t+uv\t=2\t+w");
  const auto resp = server.handle(doc_post("d", upd));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(server.raw_content("d"), "abuvfgw");
  EXPECT_EQ(server.counters().delta_saves, 1u);
}

TEST(GDocsServer, MalformedDeltaRejected) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData upd;
  upd.add("session", "1");
  upd.add("rev", "0");
  upd.add("delta", "=999\t-1");  // runs past the (empty) document
  const auto resp = server.handle(doc_post("d", upd));
  EXPECT_EQ(resp.status, 400);
  EXPECT_EQ(server.raw_content("d"), "");
}

TEST(GDocsServer, StaleRevisionFlagsConflict) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData a;
  a.add("session", "1");
  a.add("rev", "0");
  a.add("delta", "+first");
  server.handle(doc_post("d", a));
  FormData b;  // second writer still at rev 0
  b.add("session", "2");
  b.add("rev", "0");
  b.add("delta", "+second");
  const auto resp = server.handle(doc_post("d", b));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(form_of(resp).get("conflict"), "1");
  EXPECT_EQ(server.counters().conflicts, 1u);
}

TEST(GDocsServer, AckCarriesHashAlwaysContentOnlyWhenStale) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData save;
  save.add("session", "1");
  save.add("rev", "0");
  save.add("docContents", "xyz");
  const auto resp = server.handle(doc_post("d", save));
  const FormData ack = form_of(resp);
  // Happy path: hash only — the full content rides along only when the
  // client needs to reconcile a stale revision.
  EXPECT_FALSE(ack.contains("contentFromServer"));
  EXPECT_EQ(ack.get("contentFromServerHash")->size(), 16u);

  FormData stale;
  stale.add("session", "1");
  stale.add("rev", "0");  // server is at rev 1 now
  stale.add("delta", "+p");
  const auto conflict_resp = server.handle(doc_post("d", stale));
  const FormData conflict_ack = form_of(conflict_resp);
  EXPECT_EQ(conflict_ack.get("contentFromServer"), "pxyz");
  EXPECT_EQ(conflict_ack.get("conflict"), "1");
}

TEST(GDocsServer, SpellcheckFindsUnknownWords) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData check;
  check.add("cmd", "spellcheck");
  check.add("text", "the quick brown fox zzyzx");
  const auto resp = server.handle(doc_post("d", check));
  const FormData reply = form_of(resp);
  bool found = false;
  for (const auto& [k, v] : reply.fields()) {
    if (k == "misspelled" && v == "zzyzx") found = true;
    EXPECT_NE(v, "quick");  // dictionary words not flagged
  }
  EXPECT_TRUE(found);
}

TEST(GDocsServer, SpellcheckOnCiphertextFlagsEverything) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData check;
  check.add("cmd", "spellcheck");
  check.add("text", "MZXW QQQQ ABCD");  // base32-looking gibberish
  const auto resp = server.handle(doc_post("d", check));
  std::size_t flagged = 0;
  const FormData reply = form_of(resp);
  for (const auto& [k, v] : reply.fields()) {
    if (k == "misspelled") ++flagged;
  }
  EXPECT_EQ(flagged, 3u);  // every "word" is junk to the server
}

TEST(GDocsServer, HistoryRetainsOldVersions) {
  GDocsServer server;
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  FormData s1;
  s1.add("session", "1");
  s1.add("rev", "0");
  s1.add("docContents", "v1");
  server.handle(doc_post("d", s1));
  FormData s2;
  s2.add("session", "1");
  s2.add("rev", "1");
  s2.add("delta", "=2\t+v2");
  server.handle(doc_post("d", s2));
  // The provider kept every version — this is the §I "leaks information
  // about previous versions" surface.
  ASSERT_EQ(server.history("d").size(), 2u);
  EXPECT_EQ(server.history("d")[1], "v1");
}

TEST(GDocsServer, UnknownRequestsRejected) {
  GDocsServer server;
  EXPECT_EQ(server.handle(net::HttpRequest::post_form("/Other", "")).status,
            404);
  FormData junk;
  junk.add("cmd", "selfdestruct");
  EXPECT_EQ(server.handle(doc_post("nope", junk)).status, 404);
  FormData create;
  create.add("cmd", "create");
  server.handle(doc_post("d", create));
  EXPECT_EQ(server.handle(doc_post("d", junk)).status, 400);
  net::HttpRequest no_id = net::HttpRequest::post_form("/Doc", "cmd=create");
  EXPECT_EQ(server.handle(no_id).status, 400);
}

TEST(BespinServer, PutGetDelete) {
  BespinServer server;
  net::HttpRequest put;
  put.method = "PUT";
  put.target = "/file/at/project/main.js";
  put.body = "function f() { return 42; }";
  EXPECT_TRUE(server.handle(put).ok());
  EXPECT_EQ(server.file_count(), 1u);

  net::HttpRequest get;
  get.method = "GET";
  get.target = "/file/at/project/main.js";
  EXPECT_EQ(server.handle(get).body, put.body);

  net::HttpRequest del;
  del.method = "DELETE";
  del.target = "/file/at/project/main.js";
  EXPECT_EQ(server.handle(del).status, 204);
  EXPECT_EQ(server.handle(get).status, 404);
}

TEST(BespinServer, RejectsUnknown) {
  BespinServer server;
  net::HttpRequest bad;
  bad.method = "GET";
  bad.target = "/elsewhere";
  EXPECT_EQ(server.handle(bad).status, 404);
  bad.target = "/file/at/x";
  bad.method = "PATCH";
  EXPECT_EQ(server.handle(bad).status, 400);
}

TEST(Xml, EscapeUnescapeRoundTrip) {
  const std::string nasty = "a<b>&c \"quoted\" 'apos'";
  EXPECT_EQ(xml_unescape(xml_escape(nasty)), nasty);
  EXPECT_EQ(xml_escape("<&>"), "&lt;&amp;&gt;");
  EXPECT_THROW(xml_unescape("&bogus;"), ParseError);
  EXPECT_THROW(xml_unescape("&amp"), ParseError);
}

TEST(Xml, FindTextRuns) {
  const std::string doc =
      "<document><p><textRun style=\"b\">Hello &amp; goodbye</textRun></p>"
      "<p><textRun>second</textRun></p><p><textRun/></p></document>";
  const auto runs = find_text_runs(doc);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].text, "Hello & goodbye");
  EXPECT_EQ(runs[1].text, "second");
  EXPECT_EQ(runs[2].text, "");
}

TEST(Xml, RejectsMalformed) {
  EXPECT_THROW(find_text_runs("<textRun>unterminated"), ParseError);
  EXPECT_THROW(find_text_runs("<textRun"), ParseError);
  EXPECT_THROW(find_text_runs("<textRun><textRun>x</textRun></textRun>"),
               ParseError);
}

TEST(Xml, IgnoresSimilarTagNames) {
  const auto runs = find_text_runs("<textRunner>nope</textRunner>");
  EXPECT_TRUE(runs.empty());
}

TEST(Xml, RewritePreservesStructure) {
  const std::string doc =
      "<document><textRun a=\"1\">alpha</textRun><mid/>"
      "<textRun>beta</textRun></document>";
  const std::string out = rewrite_text_runs(
      doc, [](const std::string& t) { return "[" + t + "]"; });
  EXPECT_EQ(out,
            "<document><textRun a=\"1\">[alpha]</textRun><mid/>"
            "<textRun>[beta]</textRun></document>");
  EXPECT_EQ(extract_text(out), "[alpha][beta]");
}

TEST(BuzzwordServer, PostGetRoundTrip) {
  BuzzwordServer server;
  net::HttpRequest post;
  post.method = "POST";
  post.target = "/doc/report";
  post.body = "<document><textRun>content here</textRun></document>";
  EXPECT_TRUE(server.handle(post).ok());

  net::HttpRequest get;
  get.method = "GET";
  get.target = "/doc/report";
  EXPECT_EQ(server.handle(get).body, post.body);
  EXPECT_EQ(server.raw_document("report"), post.body);
}

TEST(BuzzwordServer, RejectsMalformedXml) {
  BuzzwordServer server;
  net::HttpRequest post;
  post.method = "POST";
  post.target = "/doc/x";
  post.body = "<document><textRun>broken";
  EXPECT_EQ(server.handle(post).status, 400);
}

}  // namespace
}  // namespace privedit::cloud
