// Unit tests for the util module: byte helpers, encodings, form handling,
// and randomness plumbing.

#include <gtest/gtest.h>

#include <set>

#include "privedit/util/base32.hpp"
#include "privedit/util/base64.hpp"
#include "privedit/util/bytes.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit {
namespace {

TEST(Bytes, RoundTripString) {
  const std::string s = "hello \xff\x00 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, XorInto) {
  Bytes a = {0x0f, 0xf0, 0xaa};
  const Bytes b = {0xff, 0xff, 0x55};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0x0f, 0xff}));
}

TEST(Bytes, XorSizeMismatchThrows) {
  Bytes a = {1, 2};
  const Bytes b = {1};
  EXPECT_THROW(xor_into(a, b), Error);
  EXPECT_THROW(xor_bytes(a, b), Error);
}

TEST(Bytes, U64BigEndianRoundTrip) {
  std::uint8_t buf[8];
  store_u64be(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(load_u64be(buf), 0x0123456789abcdefULL);
}

TEST(Bytes, U32BigEndianRoundTrip) {
  std::uint8_t buf[4];
  store_u32be(buf, 0xdeadbeef);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(load_u32be(buf), 0xdeadbeefu);
}

TEST(Bytes, ConcatJoinsViews) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = concat(a, b, a);
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, ByteView(a.data(), 2)));
}

TEST(Bytes, SecureWipeZeroes) {
  Bytes a = {1, 2, 3};
  secure_wipe(a);
  EXPECT_EQ(a, (Bytes{0, 0, 0}));
}

TEST(Hex, EncodeDecode) {
  const Bytes data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(hex_encode(data), "deadbeef007f");
  EXPECT_EQ(hex_decode("deadbeef007f"), data);
  EXPECT_EQ(hex_decode("DEADBEEF007F"), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), ParseError);
  EXPECT_THROW(hex_decode("zz"), ParseError);
}

// RFC 4648 §10 test vectors.
TEST(Base32, Rfc4648Vectors) {
  EXPECT_EQ(base32_encode(to_bytes("")), "");
  EXPECT_EQ(base32_encode(to_bytes("f")), "MY======");
  EXPECT_EQ(base32_encode(to_bytes("fo")), "MZXQ====");
  EXPECT_EQ(base32_encode(to_bytes("foo")), "MZXW6===");
  EXPECT_EQ(base32_encode(to_bytes("foob")), "MZXW6YQ=");
  EXPECT_EQ(base32_encode(to_bytes("fooba")), "MZXW6YTB");
  EXPECT_EQ(base32_encode(to_bytes("foobar")), "MZXW6YTBOI======");
}

TEST(Base32, DecodeVectors) {
  EXPECT_EQ(to_string(base32_decode("MZXW6YTBOI======")), "foobar");
  EXPECT_EQ(to_string(base32_decode("MZXW6YTBOI")), "foobar");  // no pad
  EXPECT_EQ(to_string(base32_decode("mzxw6ytboi")), "foobar");  // lowercase
}

TEST(Base32, RejectsInvalid) {
  EXPECT_THROW(base32_decode("M1======"), ParseError);  // '1' not in alphabet
  EXPECT_THROW(base32_decode("M!"), ParseError);
}

TEST(Base32, RoundTripAllLengths) {
  Xoshiro256 rng(42);
  for (std::size_t n = 0; n <= 67; ++n) {
    const Bytes data = rng.bytes(n);
    EXPECT_EQ(base32_decode(base32_encode(data)), data) << "n=" << n;
    EXPECT_EQ(base32_decode(base32_encode(data, /*pad=*/false)), data);
  }
}

// RFC 4648 §10 test vectors.
TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, UrlAlphabet) {
  const Bytes data = {0xfb, 0xff, 0xfe};
  const std::string std_form = base64_encode(data);
  const std::string url_form = base64url_encode(data);
  EXPECT_NE(std_form.find('+'), std::string::npos);
  EXPECT_EQ(url_form.find('+'), std::string::npos);
  EXPECT_EQ(url_form.find('='), std::string::npos);
  EXPECT_EQ(base64_decode(std_form), data);
  EXPECT_EQ(base64_decode(url_form), data);
}

TEST(Base64, RoundTripAllLengths) {
  Xoshiro256 rng(7);
  for (std::size_t n = 0; n <= 50; ++n) {
    const Bytes data = rng.bytes(n);
    EXPECT_EQ(base64_decode(base64_encode(data)), data) << "n=" << n;
    EXPECT_EQ(base64_decode(base64url_encode(data)), data) << "n=" << n;
  }
}

TEST(PercentEncode, UnreservedPassThrough) {
  EXPECT_EQ(percent_encode("AZaz09-._~"), "AZaz09-._~");
}

TEST(PercentEncode, EscapesReserved) {
  EXPECT_EQ(percent_encode("a b&c=d"), "a%20b%26c%3Dd");
  EXPECT_EQ(percent_encode("\xff"), "%FF");
}

TEST(PercentDecode, Basic) {
  EXPECT_EQ(percent_decode("a%20b%26c"), "a b&c");
  EXPECT_EQ(percent_decode("a+b"), "a+b");
  EXPECT_EQ(percent_decode("a+b", /*plus_as_space=*/true), "a b");
}

TEST(PercentDecode, RejectsTruncated) {
  EXPECT_THROW(percent_decode("%2"), ParseError);
  EXPECT_THROW(percent_decode("%"), ParseError);
  EXPECT_THROW(percent_decode("%zz"), ParseError);
}

TEST(PercentCoding, RoundTripBinary) {
  std::string all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<char>(i));
  EXPECT_EQ(percent_decode(percent_encode(all)), all);
}

TEST(FormData, ParseAndEncode) {
  FormData form = FormData::parse("a=1&b=hello%20world&c=&d");
  EXPECT_EQ(form.size(), 4u);
  EXPECT_EQ(form.get("a"), "1");
  EXPECT_EQ(form.get("b"), "hello world");
  EXPECT_EQ(form.get("c"), "");
  EXPECT_EQ(form.get("d"), "");
  EXPECT_FALSE(form.get("missing").has_value());
}

TEST(FormData, PreservesOrder) {
  FormData form = FormData::parse("z=1&a=2&m=3");
  const auto& fields = form.fields();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].first, "z");
  EXPECT_EQ(fields[1].first, "a");
  EXPECT_EQ(fields[2].first, "m");
}

TEST(FormData, SetReplacesFirst) {
  FormData form = FormData::parse("a=1&a=2");
  form.set("a", "x");
  EXPECT_EQ(form.fields()[0].second, "x");
  EXPECT_EQ(form.fields()[1].second, "2");
  form.set("new", "v");
  EXPECT_EQ(form.get("new"), "v");
}

TEST(FormData, RemoveAllOccurrences) {
  FormData form = FormData::parse("a=1&b=2&a=3");
  EXPECT_EQ(form.remove("a"), 2u);
  EXPECT_FALSE(form.contains("a"));
  EXPECT_EQ(form.size(), 1u);
}

TEST(FormData, RoundTripWithSpecialChars) {
  FormData form;
  form.add("delta", "=2\t-3\t+u&v=w");
  form.add("docContents", "a b+c%d");
  FormData parsed = FormData::parse(form.encode());
  EXPECT_EQ(parsed.get("delta"), "=2\t-3\t+u&v=w");
  EXPECT_EQ(parsed.get("docContents"), "a b+c%d");
}

TEST(Random, XoshiroDeterministic) {
  Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Random, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Random, BetweenInclusive) {
  Xoshiro256 rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
  EXPECT_THROW(rng.between(5, 3), Error);
}

TEST(Random, ChanceExtremes) {
  Xoshiro256 rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Random, OsEntropyProducesDistinctBuffers) {
  OsEntropy os;
  const Bytes a = os.bytes(32);
  const Bytes b = os.bytes(32);
  EXPECT_NE(a, b);
}

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value plus a couple of canonical cases — pins the
  // sliced implementation to the exact polynomial persisted audit links
  // and block-diff anchors were minted with.
  EXPECT_EQ(crc32(as_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShotAtEveryTailLength) {
  // Exercises the 8-byte slicing loop and every bytewise tail remainder,
  // and every split point of crc32_update against the one-shot value.
  std::string data;
  Xoshiro256 rng(99);
  for (int i = 0; i < 61; ++i) {
    data.push_back(static_cast<char>(rng.below(256)));
  }
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const ByteView whole = as_bytes(data).subspan(0, len);
    const std::uint32_t expected = crc32(whole);
    for (std::size_t cut = 0; cut <= len; ++cut) {
      const std::uint32_t split =
          crc32_update(crc32(whole.subspan(0, cut)), whole.subspan(cut));
      ASSERT_EQ(split, expected) << "len=" << len << " cut=" << cut;
    }
  }
}

TEST(ErrorTaxonomy, CodesAndMessages) {
  const IntegrityError err("block swapped");
  EXPECT_EQ(err.code(), ErrorCode::kIntegrity);
  EXPECT_NE(std::string(err.what()).find("integrity"), std::string::npos);
  EXPECT_NE(std::string(err.what()).find("block swapped"), std::string::npos);
}

}  // namespace
}  // namespace privedit
