// Resilience tests: disconnected operation end to end.
//
// Covers the degraded-mode session layer — the circuit breaker state
// machine, server-side admission control (503 + Retry-After, never a
// hang), the mediator's offline edit queue (local acks, local opens,
// bounded queue with explicit backpressure, replay-and-rebase on heal),
// replica health scoring with quarantine/probation, and whole-stack
// simulation runs under scripted outage schedules that must converge with
// zero lost or duplicated edits.
//
// Everything runs on the SimClock, so outage windows, breaker cool-downs
// and token-bucket refills elapse deterministically. Scale the simulation
// phase with PRIVEDIT_RESILIENCE_ITERS=n (multiplies op budgets).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/breaker.hpp"
#include "privedit/net/fault.hpp"
#include "privedit/net/http_server.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/sim/config.hpp"
#include "privedit/sim/harness.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::net {
namespace {

std::size_t iter_scale() {
  const char* env = std::getenv("PRIVEDIT_RESILIENCE_ITERS");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

/// Zero-latency loopback: these tests advance the SimClock explicitly so
/// the outage windows, cool-downs and probation timers line up exactly;
/// the default WAN model would smear ~200 ms over every round trip.
LatencyModel instant() {
  LatencyModel latency;
  latency.base_us = 0;
  latency.jitter_us = 0;
  latency.bytes_per_ms_up = 0;
  latency.bytes_per_ms_down = 0;
  latency.server_us_per_kb = 0;
  return latency;
}

// ---------------------------------------------------------------------------
// CircuitBreaker state machine
// ---------------------------------------------------------------------------

struct FakeClock {
  std::uint64_t now = 0;
  std::function<std::uint64_t()> fn() {
    return [this] { return now; };
  }
};

TEST(Breaker, TripsAfterConsecutiveFailures) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 3;
  CircuitBreaker breaker(config, clock.fn());

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  }
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // third in a row
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);
  EXPECT_FALSE(breaker.allow());
  EXPECT_GT(breaker.counters().rejections, 0u);
}

TEST(Breaker, SuccessResetsTheConsecutiveCount) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 3;
  config.min_window = 1000;  // keep the rate trigger out of the way
  CircuitBreaker breaker(config, clock.fn());

  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
    ASSERT_TRUE(breaker.allow());
    breaker.record_success();  // breaks the streak every time
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.counters().trips, 0u);
}

TEST(Breaker, TripsOnWindowFailureRate) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 100;  // isolate the rate trigger
  config.failure_rate = 0.5;
  config.min_window = 8;
  CircuitBreaker breaker(config, clock.fn());

  // Alternate failure/success: the streak never exceeds one, but the
  // window rate sits at 0.5 — at the eighth sample the rate trigger fires.
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(breaker.allow());
    if (i % 2 == 0) {
      breaker.record_failure();
    } else {
      breaker.record_success();
    }
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed) << i;
  }
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();  // 5 failures / 9 samples >= 0.5, window >= 8
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);
}

TEST(Breaker, CooldownAdmitsExactlyOneProbe) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 1;
  config.cooldown_us = 1'000'000;
  CircuitBreaker breaker(config, clock.fn());

  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.now += 999'999;
  EXPECT_FALSE(breaker.allow());  // cool-down not yet elapsed

  clock.now += 1;
  EXPECT_TRUE(breaker.allow());  // the single half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.counters().probes, 1u);

  // While the probe is outstanding nothing else gets through, no matter
  // how much time passes.
  clock.now += 10'000'000;
  EXPECT_FALSE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.counters().probes, 1u);
}

TEST(Breaker, ProbeSuccessClosesWithACleanWindow) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 3;
  CircuitBreaker breaker(config, clock.fn());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  clock.now += config.cooldown_us;
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.counters().probe_successes, 1u);

  // The window was reset: two fresh failures must not re-trip.
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(Breaker, ProbeFailureReTripsForAFullCooldown) {
  FakeClock clock;
  BreakerConfig config;
  config.consecutive_failures = 1;
  config.cooldown_us = 500'000;
  CircuitBreaker breaker(config, clock.fn());

  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  clock.now += config.cooldown_us;
  ASSERT_TRUE(breaker.allow());  // probe
  breaker.record_failure();      // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.counters().trips, 2u);

  clock.now += config.cooldown_us - 1;
  EXPECT_FALSE(breaker.allow());  // a FULL cool-down restarts
  clock.now += 1;
  EXPECT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

/// Scriptable channel: throws TransportError or returns a canned status.
struct ScriptedChannel final : Channel {
  int status = 200;
  bool throw_transport = false;
  std::size_t calls = 0;

  HttpResponse round_trip(const HttpRequest&) override {
    ++calls;
    if (throw_transport) {
      throw TransportError(FaultKind::kConnect, "scripted");
    }
    return HttpResponse::make(status, "scripted");
  }
};

TEST(Breaker, ChannelCountsTransportErrorsButNotHttpErrors) {
  FakeClock clock;
  ScriptedChannel inner;
  BreakerConfig config;
  config.consecutive_failures = 3;
  BreakerChannel channel(&inner, config, clock.fn());

  // A 503 is backpressure from a LIVE server — it must not trip anything.
  inner.status = 503;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(channel.round_trip(HttpRequest::post_form("/x", "")).status,
              503);
  }
  EXPECT_EQ(channel.breaker().state(), CircuitBreaker::State::kClosed);

  // Transport errors are real failures: three in a row trip the breaker,
  // after which calls are refused locally without touching the wire.
  inner.throw_transport = true;
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(channel.round_trip(HttpRequest::post_form("/x", "")),
                 TransportError);
  }
  EXPECT_EQ(channel.breaker().state(), CircuitBreaker::State::kOpen);
  const std::size_t wire_calls = inner.calls;
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(channel.round_trip(HttpRequest::post_form("/x", "")),
                 TransportError);
  }
  EXPECT_EQ(inner.calls, wire_calls);  // short-circuited, not retried
  EXPECT_EQ(channel.breaker().counters().rejections, 10u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, TokenBucketDrainsAndRefills) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/3.0, /*now_us=*/0);
  EXPECT_FALSE(bucket.try_take(0).has_value());
  EXPECT_FALSE(bucket.try_take(0).has_value());
  EXPECT_FALSE(bucket.try_take(0).has_value());
  const auto wait = bucket.try_take(0);
  ASSERT_TRUE(wait.has_value());
  EXPECT_GT(*wait, 0u);
  // One token accrues in ~1/rate seconds (the hint rounds up).
  EXPECT_LE(*wait, 500'001u);
  // Half a second at 2 tokens/sec buys exactly one more request.
  EXPECT_FALSE(bucket.try_take(500'000).has_value());
  EXPECT_TRUE(bucket.try_take(500'000).has_value());
}

TEST(Admission, OverloadedResponseRoundsRetryAfterUp) {
  const HttpResponse a = overloaded_response(1, "r");
  EXPECT_EQ(a.status, 503);
  EXPECT_EQ(a.headers.get("Retry-After"), "1");  // minimum one second
  const HttpResponse b = overloaded_response(1'500'000, "r");
  EXPECT_EQ(b.headers.get("Retry-After"), "2");  // ceil, not floor
}

TEST(Admission, RateLimitedClientGets503WithRetryAfter) {
  SimClock clock;
  cloud::GDocsServer server;
  AdmissionConfig config;
  config.rate_per_sec = 1.0;
  config.burst = 2.0;
  server.enable_admission(config, [&clock] { return clock.now_us(); });

  HttpRequest save = HttpRequest::post_form("/Doc?docID=d", "cmd=create");
  save.headers.set(kClientIdHeader, "alice");
  EXPECT_TRUE(server.handle(save).ok());
  EXPECT_TRUE(server.handle(save).ok());  // burst spent

  const HttpResponse refused = server.handle(save);
  EXPECT_EQ(refused.status, 503);
  const auto retry_after = refused.headers.get("Retry-After");
  ASSERT_TRUE(retry_after.has_value());
  EXPECT_GE(std::stoi(*retry_after), 1);
  EXPECT_GT(server.counters().admission_rejections, 0u);
  EXPECT_GT(server.admission()->counters().rate_limited, 0u);

  // The refusal is immediate backpressure, not a hang: the bucket refills
  // on the clock and the same client is served again.
  clock.advance_us(1'100'000);
  EXPECT_TRUE(server.handle(save).ok());
}

TEST(Admission, ClientsHaveIndependentBuckets) {
  SimClock clock;
  cloud::GDocsServer server;
  AdmissionConfig config;
  config.rate_per_sec = 1.0;
  config.burst = 1.0;
  server.enable_admission(config, [&clock] { return clock.now_us(); });

  HttpRequest alice = HttpRequest::post_form("/Doc?docID=d", "cmd=create");
  alice.headers.set(kClientIdHeader, "alice");
  HttpRequest bob = alice;
  bob.headers.set(kClientIdHeader, "bob");

  EXPECT_TRUE(server.handle(alice).ok());
  EXPECT_EQ(server.handle(alice).status, 503);  // alice exhausted...
  EXPECT_TRUE(server.handle(bob).ok());         // ...bob unaffected

  // Unlabeled traffic shares one anonymous bucket.
  HttpRequest anon = HttpRequest::post_form("/Doc?docID=d", "cmd=open");
  EXPECT_EQ(server.handle(anon).status, 200);
  EXPECT_EQ(server.handle(anon).status, 503);
}

TEST(Admission, BreakerProbesBypassTheBucket) {
  SimClock clock;
  cloud::GDocsServer server;
  AdmissionConfig config;
  config.rate_per_sec = 1.0;
  config.burst = 1.0;
  server.enable_admission(config, [&clock] { return clock.now_us(); });

  HttpRequest save = HttpRequest::post_form("/Doc?docID=d", "cmd=create");
  save.headers.set(kClientIdHeader, "alice");
  EXPECT_TRUE(server.handle(save).ok());
  EXPECT_EQ(server.handle(save).status, 503);

  // The breaker's per-cool-down liveness probe must not be rate limited:
  // refusing it would keep a recovered server looking dead forever.
  HttpRequest probe = save;
  probe.headers.set(kProbeHeader, "1");
  EXPECT_TRUE(server.handle(probe).ok());
}

TEST(Admission, QueueDeadlineExpiresStaleRequests) {
  FakeClock clock;
  clock.now = 1'000'000;
  AdmissionConfig config;
  config.queue_deadline_us = 10'000;
  AdmissionController controller(config, clock.fn());

  const HttpRequest request = HttpRequest::post_form("/Doc?docID=d", "x=1");
  // Picked up promptly: admitted.
  EXPECT_FALSE(controller.admit(request, clock.now - 5'000).has_value());
  // Sat in the queue past its deadline: answered 503 instead of doing
  // work nobody is waiting for any more.
  const auto refusal = controller.admit(request, clock.now - 20'000);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->status, 503);
  EXPECT_EQ(controller.counters().deadline_expired, 1u);
}

TEST(Admission, RealSocketHttpServerShedsWithRetryAfter) {
  // The same contract over the worker-pool server and a real TCP socket:
  // a drained bucket answers 503 + Retry-After before the handler runs.
  HttpServerConfig config;
  AdmissionConfig admission;
  admission.rate_per_sec = 0.5;  // slow refill: no token accrues mid-test
  admission.burst = 2;
  config.admission = admission;
  std::atomic<int> handled{0};
  HttpServer server(
      0,
      [&handled](const HttpRequest&) {
        ++handled;
        return HttpResponse::make(200, "ok");
      },
      config);
  TcpChannel channel(server.port(), /*timeout_ms=*/5000,
                     RetryPolicy::none());
  HttpRequest request = HttpRequest::post_form("/Doc?docID=d", "cmd=open");
  request.headers.set(kClientIdHeader, "greedy");
  EXPECT_EQ(channel.round_trip(request).status, 200);
  EXPECT_EQ(channel.round_trip(request).status, 200);
  const HttpResponse refused = channel.round_trip(request);
  EXPECT_EQ(refused.status, 503);
  const auto retry_after = refused.headers.get("Retry-After");
  ASSERT_TRUE(retry_after.has_value());
  EXPECT_GE(std::atoi(retry_after->c_str()), 1);
  EXPECT_EQ(handled.load(), 2);  // the refusal never reached the handler
  EXPECT_EQ(server.counters().rejected_admission, 1u);
}

// ---------------------------------------------------------------------------
// Offline mediator: disconnected operation end to end
// ---------------------------------------------------------------------------

/// client -> mediator(offline) -> outage-scripted faults -> loopback ->
/// strict-revision GDocsServer. No RetryChannel: the mediator must enter
/// offline mode on the first transport failure, which also exercises the
/// worst case for the breaker (every failure reaches it).
struct OfflineStack {
  explicit OfflineStack(std::uint64_t seed, OutageSchedule outages,
                        std::size_t max_queued = 256) {
    server.set_strict_revisions(true);
    transport = std::make_unique<LoopbackTransport>(
        [this](const HttpRequest& r) { return server.handle(r); }, &clock,
        instant(), crypto::CtrDrbg::from_seed(seed));
    faulty = std::make_unique<FaultyChannel>(
        transport.get(), FaultSpec{}, std::make_unique<Xoshiro256>(seed + 1),
        &clock);
    faulty->set_outages(std::move(outages));
    extension::MediatorConfig config;
    config.password = "pw";
    config.scheme.mode = enc::Mode::kRpc;
    config.scheme.kdf_iterations = 5;
    config.rng_factory = extension::seeded_rng_factory(seed + 2);
    config.offline.enabled = true;
    config.offline.max_queued_edits = max_queued;
    config.offline.breaker.cooldown_us = kCooldownUs;
    mediator = std::make_unique<extension::GDocsMediator>(
        faulty.get(), std::move(config), &clock);
  }

  /// Advances the clock in cool-down steps until the document flushes.
  bool drain(const std::string& doc_id) {
    for (int i = 0; i < 50; ++i) {
      if (mediator->try_flush(doc_id)) return true;
      clock.advance_us(kCooldownUs);
    }
    return false;
  }

  static constexpr std::uint64_t kCooldownUs = 100'000;

  cloud::GDocsServer server;
  SimClock clock;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<FaultyChannel> faulty;
  std::unique_ptr<extension::GDocsMediator> mediator;
};

TEST(OfflineMediator, BlackoutAbsorbsEditsAndFlushesAfterHeal) {
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/450'000, OutageKind::kBlackout, 1.0});
  OfflineStack stack(60, schedule);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "base ");
  alice.save();
  std::string expected = "base ";

  // Into the blackout: every save keeps succeeding from the editor's point
  // of view — the mediator absorbs them locally.
  stack.clock.advance_us(60'000);
  for (int i = 0; i < 8; ++i) {
    const std::string word = "w" + std::to_string(i) + " ";
    alice.insert(alice.text().size(), word);
    expected += word;
    alice.save();
    stack.clock.advance_us(10'000);
  }
  EXPECT_EQ(alice.text(), expected);
  EXPECT_TRUE(stack.mediator->offline_active("doc"));
  const auto& mc = stack.mediator->counters();
  EXPECT_EQ(mc.offline_entered, 1u);
  EXPECT_GE(mc.offline_acks, 7u);  // all but the save that tripped offline
  EXPECT_EQ(stack.mediator->managed_plaintext("doc"), expected);
  // The server is provably stale: no offline edit reached it yet (the one
  // pre-outage save was the session's initial full save).
  EXPECT_EQ(stack.server.counters().delta_saves, 0u);

  // Heal and drain: one composed flush releases every queued edit.
  stack.clock.advance_us(400'000);
  ASSERT_TRUE(stack.drain("doc"));
  EXPECT_FALSE(stack.mediator->offline_active("doc"));
  EXPECT_EQ(mc.offline_flushes, 1u);
  EXPECT_GE(mc.offline_flush_edits, 7u);

  // Zero loss, zero duplication: a fresh open sees exactly the edits, and
  // the stored bytes are still ciphertext.
  client::GDocsClient bob(stack.mediator.get(), "doc");
  bob.open();
  EXPECT_EQ(bob.text(), expected);
  EXPECT_EQ(stack.server.raw_content("doc")->find(expected),
            std::string::npos);

  // The breaker really gated the reconnect attempts.
  ASSERT_NE(stack.mediator->breaker(), nullptr);
  EXPECT_GE(stack.mediator->breaker()->counters().trips, 1u);
  EXPECT_GE(stack.mediator->breaker()->counters().probes, 1u);
  EXPECT_GT(mc.breaker_short_circuits, 0u);
}

TEST(OfflineMediator, BreakerCapsWireTrafficDuringTheOutage) {
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/850'000, OutageKind::kBlackout, 1.0});
  OfflineStack stack(61, schedule);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "seed ");
  alice.save();

  stack.clock.advance_us(60'000);
  // 60 editor saves spread across the 800 ms blackout. Without the
  // breaker, every one of them would probe the dead wire.
  for (int i = 0; i < 60; ++i) {
    alice.insert(alice.text().size(), "x");
    alice.save();
    stack.clock.advance_us(12'000);
  }

  // Wire attempts during the outage: the consecutive-failure budget that
  // trips the breaker, plus at most one probe per elapsed cool-down.
  const auto& faults = stack.faulty->counters();
  const std::size_t cooldowns = 800'000 / OfflineStack::kCooldownUs;
  const std::size_t budget =
      static_cast<std::size_t>(
          extension::OfflineConfig{}.breaker.consecutive_failures) +
      cooldowns + 1;
  EXPECT_GT(faults.outage_faults, 0u);
  EXPECT_LE(faults.outage_faults, budget);
  EXPECT_GT(stack.mediator->counters().breaker_short_circuits, 0u);

  stack.clock.advance_us(1'000'000);
  ASSERT_TRUE(stack.drain("doc"));
  client::GDocsClient bob(stack.mediator.get(), "doc");
  bob.open();
  EXPECT_EQ(bob.text(), alice.text());
}

TEST(OfflineMediator, OpensAreServedFromTheMirrorWhileOffline) {
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/400'000, OutageKind::kBlackout, 1.0});
  OfflineStack stack(62, schedule);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "offline doc");
  alice.save();

  stack.clock.advance_us(60'000);
  alice.insert(alice.text().size(), "!");
  alice.save();  // flips the document offline
  ASSERT_TRUE(stack.mediator->offline_active("doc"));

  // A second editor opening the document during the outage gets the local
  // mirror — availability over freshness — instead of an error.
  client::GDocsClient reader(stack.mediator.get(), "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "offline doc!");
  EXPECT_GE(stack.mediator->counters().offline_opens_local, 1u);

  stack.clock.advance_us(500'000);
  ASSERT_TRUE(stack.drain("doc"));
}

TEST(OfflineMediator, QueueCapIsExplicitBackpressureNotASilentDrop) {
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/400'000, OutageKind::kBlackout, 1.0});
  OfflineStack stack(63, schedule, /*max_queued=*/2);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "base ");
  alice.save();

  stack.clock.advance_us(60'000);
  alice.insert(alice.text().size(), "one ");
  alice.save();  // enters offline, queued = 1
  alice.insert(alice.text().size(), "two ");
  alice.save();  // queued = 2 (the cap)
  ASSERT_EQ(stack.mediator->offline_queued("doc"), 2u);

  // The third edit is refused loudly: the editor sees the failure and the
  // mirror is untouched, so nothing is silently dropped on either side.
  alice.insert(alice.text().size(), "three ");
  EXPECT_THROW(alice.save(), ProtocolError);
  EXPECT_GE(stack.mediator->counters().offline_backpressure, 1u);
  EXPECT_EQ(stack.mediator->managed_plaintext("doc"), "base one two ");

  // The raw 503 carries Retry-After, so a well-behaved client knows when
  // to come back rather than hammering the queue.
  const std::string mirror = *stack.mediator->managed_plaintext("doc");
  const delta::Delta d({delta::Op::retain(mirror.size()),
                        delta::Op::insert("zzz")});
  FormData form;
  form.add("session", "s1");
  form.add("rev", "99");
  form.add("delta", d.to_wire());
  const HttpResponse refused = stack.mediator->round_trip(
      HttpRequest::post_form("/Doc?docID=doc", form.encode()));
  EXPECT_EQ(refused.status, 503);
  EXPECT_TRUE(refused.headers.get("Retry-After").has_value());

  // After the heal the queue drains, and the client's unacknowledged edit
  // is re-sent by its own dirty-state tracking: nothing was lost.
  stack.clock.advance_us(500'000);
  ASSERT_TRUE(stack.drain("doc"));
  alice.save();
  EXPECT_EQ(alice.text(), "base one two three ");
  client::GDocsClient bob(stack.mediator.get(), "doc");
  bob.open();
  EXPECT_EQ(bob.text(), "base one two three ");
}

TEST(OfflineMediator, LostAckIsDedupedNotDuplicated) {
  // Asymmetric outage: the save IS delivered and applied, only the ack is
  // lost. The flush's revision CAS collides (409), the mediator compares
  // the server's content against its attempt snapshot, and must conclude
  // the edits are already there — replaying them would duplicate.
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/120'000, OutageKind::kAsymDown, 1.0});
  OfflineStack stack(64, schedule);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "payload");
  alice.save();

  stack.clock.advance_us(60'000);
  alice.insert(alice.text().size(), "-dup");
  alice.save();  // delivered, ack lost, document flips offline
  ASSERT_TRUE(stack.mediator->offline_active("doc"));

  stack.clock.advance_us(200'000);
  ASSERT_TRUE(stack.drain("doc"));
  EXPECT_GE(stack.mediator->counters().offline_dedupes, 1u);

  client::GDocsClient bob(stack.mediator.get(), "doc");
  bob.open();
  EXPECT_EQ(bob.text(), "payload-dup");  // exactly once, not "-dup-dup"
}

TEST(OfflineMediator, ConcurrentServerEditsAreRebasedOnFlush) {
  // While alice is offline, bob's mediator (a separate stack sharing the
  // same server) advances the document. Alice's flush gets a 409 against a
  // genuinely different state and must transform her queued edits on top.
  OutageSchedule schedule;
  schedule.windows.push_back(
      {/*start=*/50'000, /*end=*/300'000, OutageKind::kBlackout, 1.0});
  OfflineStack offline_stack(65, schedule);

  client::GDocsClient alice(offline_stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "shared base. ");
  alice.save();

  // Bob opens the same document via his own mediator before the outage.
  auto bob_transport = std::make_unique<LoopbackTransport>(
      [&offline_stack](const HttpRequest& r) {
        return offline_stack.server.handle(r);
      },
      &offline_stack.clock, instant(), crypto::CtrDrbg::from_seed(77));
  extension::MediatorConfig bob_config;
  bob_config.password = "pw";
  bob_config.scheme.mode = enc::Mode::kRpc;
  bob_config.scheme.kdf_iterations = 5;
  bob_config.rng_factory = extension::seeded_rng_factory(78);
  bob_config.collaborative = true;  // bob rebases through 409s himself
  extension::GDocsMediator bob_mediator(bob_transport.get(),
                                        std::move(bob_config),
                                        &offline_stack.clock);
  client::GDocsClient bob(&bob_mediator, "doc");
  bob.open();
  ASSERT_EQ(bob.text(), "shared base. ");

  // Alice goes dark and keeps editing; bob appends meanwhile.
  offline_stack.clock.advance_us(60'000);
  alice.insert(alice.text().size(), "alice was here. ");
  alice.save();
  ASSERT_TRUE(offline_stack.mediator->offline_active("doc"));
  bob.insert(bob.text().size(), "bob was here. ");
  bob.save();

  offline_stack.clock.advance_us(400'000);
  ASSERT_TRUE(offline_stack.drain("doc"));
  EXPECT_GE(offline_stack.mediator->counters().offline_rebases, 1u);

  // Both contributions survive, each exactly once.
  client::GDocsClient reader(offline_stack.mediator.get(), "doc");
  reader.open();
  EXPECT_NE(reader.text().find("alice was here. "), std::string::npos);
  EXPECT_NE(reader.text().find("bob was here. "), std::string::npos);
  EXPECT_NE(reader.text().find("shared base. "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replica health scoring
// ---------------------------------------------------------------------------

TEST(HealthScore, ErrorRateDominatesAndLatencyIsQuantized) {
  extension::ReplicaHealth fast;
  fast.ewma_latency_us = 3'000;
  extension::ReplicaHealth jittery;
  jittery.ewma_latency_us = 9'000;
  // Sub-10ms jitter between healthy replicas must not reshuffle them.
  EXPECT_EQ(fast.score(), jittery.score());

  extension::ReplicaHealth slow;
  slow.ewma_latency_us = 55'000;  // a browned-out replica
  EXPECT_GT(slow.score(), fast.score());

  extension::ReplicaHealth failing;
  failing.ewma_error = 0.3;
  // Any error rate outweighs any realistic latency difference.
  EXPECT_GT(failing.score(), slow.score());
}

TEST(HealthFailover, DeadReplicaIsQuarantinedAndProbationRestoresIt) {
  SimClock clock;
  cloud::GDocsServer server_a;
  cloud::GDocsServer server_b;
  LoopbackTransport transport_a(
      [&server_a](const HttpRequest& r) { return server_a.handle(r); }, &clock,
      instant(), crypto::CtrDrbg::from_seed(90));
  LoopbackTransport transport_b(
      [&server_b](const HttpRequest& r) { return server_b.handle(r); }, &clock,
      instant(), crypto::CtrDrbg::from_seed(91));

  // Replica 0 is dark early on; replica 1 goes dark later — after 0 has
  // healed — which forces the read path to grant 0 its probation attempt.
  FaultyChannel faulty_a(&transport_a, FaultSpec{},
                         std::make_unique<Xoshiro256>(92), &clock);
  OutageSchedule outage_a;
  outage_a.windows.push_back({0, 300'000, OutageKind::kBlackout, 1.0});
  faulty_a.set_outages(outage_a);
  FaultyChannel faulty_b(&transport_b, FaultSpec{},
                         std::make_unique<Xoshiro256>(93), &clock);
  OutageSchedule outage_b;
  outage_b.windows.push_back({900'000, 2'000'000, OutageKind::kBlackout, 1.0});
  faulty_b.set_outages(outage_b);

  extension::ReplicationConfig config;
  config.write_quorum = 1;  // availability mode: any replica may ack
  extension::ReplicatedChannel replicated({&faulty_a, &faulty_b}, {}, config,
                                          &clock);

  client::GDocsClient writer(&replicated, "doc");
  writer.create();
  for (int i = 0; i < 6; ++i) {
    writer.insert(writer.text().size(), "w");
    writer.save();
  }

  // The failed writes taught the scores: replica 0 is quarantined and
  // reads reorder to hit the live replica first.
  EXPECT_TRUE(replicated.health(0).quarantined);
  EXPECT_GE(replicated.counters().quarantines, 1u);
  EXPECT_GT(replicated.health(0).ewma_error, 0.5);
  ASSERT_FALSE(replicated.read_order().empty());
  EXPECT_EQ(replicated.read_order().front(), 1u);

  client::GDocsClient reader(&replicated, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), writer.text());
  EXPECT_GE(replicated.counters().health_reorders, 1u);

  // Replica 0 heals; anti-entropy catches its data up (quarantine is a
  // health verdict, not a data verdict — repair traffic bypasses it).
  clock.advance_us(400'000);  // outage_a over, outage_b not yet begun
  EXPECT_GT(replicated.repair_all(), 0u);
  EXPECT_TRUE(replicated.health(0).quarantined);  // repairs don't parole

  // Its probation expires; then replica 1 goes dark. The next read fails
  // over onto 0's probationary attempt, which succeeds and lifts the
  // quarantine.
  clock.advance_us(600'000);  // past probation, inside outage_b
  client::GDocsClient late_reader(&replicated, "doc");
  late_reader.open();
  EXPECT_EQ(late_reader.text(), writer.text());
  EXPECT_GE(replicated.counters().probations, 1u);
  EXPECT_FALSE(replicated.health(0).quarantined);

  // Replica 0 is back in the rotation, though its error EWMA still ranks
  // it behind the (briefly flaky but long-healthy) replica 1.
  const std::vector<std::size_t> order = replicated.read_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);

  // The health observations also fed the latency histograms.
  EXPECT_GT(replicated.health(1).latency.count(), 0u);
}

// ---------------------------------------------------------------------------
// Whole-stack simulation under scripted flapping outages
// ---------------------------------------------------------------------------

void print_resilience_coverage(const char* tag, const sim::SimReport& rep) {
  const auto& c = rep.cov;
  std::cout << "[resilience] " << tag << " ops=" << c.ops_executed
            << " off_in=" << c.offline_entered << " acks=" << c.offline_acks
            << " flush=" << c.offline_flushes << " rebase=" << c.offline_rebases
            << " dedupe=" << c.offline_dedupes
            << " backpr=" << c.offline_backpressure
            << " trips=" << c.breaker_trips << " outage=" << c.outage_faults
            << "\n";
}

/// ~30% of each 400 ms block is under some outage: a hard blackout, a 70%
/// brownout, and an asymmetric ack-loss window. The pattern repeats per
/// soak iteration so the outage fraction is scale-invariant.
sim::SimConfig outage_config(enc::Mode mode, std::size_t block,
                             std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.block_chars = block;
  cfg.seed = seed;
  cfg.ops = 400 * iter_scale();
  cfg.initial_chars = 96;
  cfg.offline = true;
  cfg.strict = true;
  cfg.op_interval_us = 1'000;
  for (std::size_t k = 0; k < iter_scale(); ++k) {
    const std::uint64_t base = k * 400'000;
    cfg.outages.windows.push_back(
        {base + 50'000, base + 120'000, OutageKind::kBlackout, 1.0});
    cfg.outages.windows.push_back(
        {base + 170'000, base + 210'000, OutageKind::kBrownout, 0.7});
    cfg.outages.windows.push_back(
        {base + 260'000, base + 280'000, OutageKind::kAsymDown, 1.0});
  }
  return cfg;
}

void run_outage(enc::Mode mode, std::size_t block, std::uint64_t seed,
                const char* tag) {
  const sim::SimConfig cfg = outage_config(mode, block, seed);
  const sim::SimReport rep = sim::run_sim(cfg);
  EXPECT_TRUE(rep.ok) << rep.failure_id << " at op " << rep.failed_at_op
                      << ": " << rep.message << "\nrepro: " << rep.repro;
  print_resilience_coverage(tag, rep);
  // The run must actually have exercised disconnected operation — a clean
  // pass with zero offline activity would prove nothing.
  EXPECT_GT(rep.cov.outage_faults, 0u) << tag;
  EXPECT_GT(rep.cov.offline_entered, 0u) << tag;
  EXPECT_GT(rep.cov.offline_acks, 0u) << tag;
  EXPECT_GT(rep.cov.offline_flushes, 0u) << tag;
}

TEST(SimOutage, RecbBlock1) { run_outage(enc::Mode::kRecb, 1, 5101, "recb/b1"); }
TEST(SimOutage, RecbBlock4) { run_outage(enc::Mode::kRecb, 4, 5104, "recb/b4"); }
TEST(SimOutage, RecbBlock8) { run_outage(enc::Mode::kRecb, 8, 5108, "recb/b8"); }
TEST(SimOutage, RpcBlock1) { run_outage(enc::Mode::kRpc, 1, 5201, "rpc/b1"); }
TEST(SimOutage, RpcBlock4) { run_outage(enc::Mode::kRpc, 4, 5204, "rpc/b4"); }
TEST(SimOutage, RpcBlock8) { run_outage(enc::Mode::kRpc, 8, 5208, "rpc/b8"); }

TEST(SimOutage, JournaledOfflineRunConverges) {
  // The composed offline update must keep the write-ahead journal
  // coherent (exactly one pending entry) so a crash mid-outage would
  // recover through the normal WAL replay.
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("privedit-resilience-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sim::SimConfig cfg = outage_config(enc::Mode::kRpc, 4, 5304);
  cfg.journal = true;
  cfg.work_dir = dir.string();
  const sim::SimReport rep = sim::run_sim(cfg);
  EXPECT_TRUE(rep.ok) << rep.failure_id << " at op " << rep.failed_at_op
                      << ": " << rep.message << "\nrepro: " << rep.repro;
  print_resilience_coverage("rpc/b4+journal", rep);
  EXPECT_GT(rep.cov.offline_acks, 0u);

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(SimOutage, ConfigWireRoundTripsOutageFields) {
  sim::SimConfig cfg = outage_config(enc::Mode::kRpc, 8, 42);
  const sim::SimConfig back = sim::SimConfig::parse(cfg.to_wire());
  EXPECT_EQ(back.offline, cfg.offline);
  EXPECT_EQ(back.strict, cfg.strict);
  EXPECT_EQ(back.op_interval_us, cfg.op_interval_us);
  ASSERT_EQ(back.outages.windows.size(), cfg.outages.windows.size());
  for (std::size_t i = 0; i < cfg.outages.windows.size(); ++i) {
    EXPECT_EQ(back.outages.windows[i].start_us, cfg.outages.windows[i].start_us);
    EXPECT_EQ(back.outages.windows[i].end_us, cfg.outages.windows[i].end_us);
    EXPECT_EQ(back.outages.windows[i].kind, cfg.outages.windows[i].kind);
    EXPECT_NEAR(back.outages.windows[i].intensity,
                cfg.outages.windows[i].intensity, 0.001);
  }
}

}  // namespace
}  // namespace privedit::net
