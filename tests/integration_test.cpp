// Randomized end-to-end integration suites.
//
// These exercise whole-stack properties rather than single modules:
//  - long mediated editing sessions keep client, extension mirror and
//    server byte-consistent, across modes/block sizes/codecs;
//  - the RPC security contract under fuzzing: a mutated ciphertext
//    document either fails to open or opens to the *exact original*
//    plaintext — never to silently wrong content;
//  - session lifecycle chains (create → edit → reopen → rotate → replicate)
//    compose correctly.

#include <gtest/gtest.h>

#include <memory>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/util/error.hpp"
#include "privedit/workload/corpus.hpp"
#include "privedit/workload/edits.hpp"

namespace privedit {
namespace {

struct SessionCase {
  enc::Mode mode;
  std::size_t block_chars;
  enc::Codec codec;
  std::uint64_t seed;
};

class MediatedSessionFuzz : public ::testing::TestWithParam<SessionCase> {};

TEST_P(MediatedSessionFuzz, LongEditSessionStaysConsistent) {
  const SessionCase c = GetParam();
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(c.seed));
  extension::MediatorConfig config;
  config.password = "fuzz";
  config.scheme.mode = c.mode;
  config.scheme.block_chars = c.block_chars;
  config.scheme.codec = c.codec;
  config.scheme.kdf_iterations = 5;
  config.rng_factory = extension::seeded_rng_factory(c.seed);
  extension::GDocsMediator mediator(&transport, config, &clock);

  client::GDocsClient writer(&mediator, "doc");
  writer.create();
  Xoshiro256 rng(c.seed * 31);
  writer.insert(0, workload::random_document(rng, 300));
  writer.save();

  workload::TypingSession typing(writer.text(), &rng);
  workload::SentenceEditor sentences(writer.text(), &rng);
  std::string reference = writer.text();

  for (int step = 0; step < 60; ++step) {
    // Mix keystroke-level and sentence-level edits.
    if (rng.below(2) == 0) {
      for (int k = 0; k < 5; ++k) {
        (void)typing.keystroke();
      }
      reference = typing.document();
    } else {
      (void)sentences.step_mixed();
      reference = sentences.document();
    }
    writer.replace(0, writer.text().size(), reference);
    writer.save();
    // Re-sync the other generator to the canonical state.
    typing = workload::TypingSession(reference, &rng);
    sentences = workload::SentenceEditor(reference, &rng);

    ASSERT_EQ(*mediator.managed_plaintext("doc"), reference) << step;
  }

  // Cold open through a brand-new mediator agrees with the writer.
  extension::MediatorConfig config2 = config;
  config2.rng_factory = extension::seeded_rng_factory(c.seed + 999);
  extension::GDocsMediator mediator2(&transport, config2, &clock);
  client::GDocsClient reader(&mediator2, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MediatedSessionFuzz,
    ::testing::Values(
        SessionCase{enc::Mode::kRecb, 8, enc::Codec::kBase32, 1},
        SessionCase{enc::Mode::kRecb, 1, enc::Codec::kBase64Url, 2},
        SessionCase{enc::Mode::kRpc, 8, enc::Codec::kBase32, 3},
        SessionCase{enc::Mode::kRpc, 3, enc::Codec::kBase64Url, 4},
        SessionCase{enc::Mode::kRpc, 8, enc::Codec::kStego, 5},
        SessionCase{enc::Mode::kCoClo, 8, enc::Codec::kBase32, 6}),
    [](const ::testing::TestParamInfo<SessionCase>& info) {
      return std::string(enc::mode_name(info.param.mode)) + "_b" +
             std::to_string(info.param.block_chars) + "_c" +
             std::to_string(static_cast<int>(info.param.codec));
    });

// RPC fuzzing contract: mutate the stored ciphertext arbitrarily; opening
// must either throw or return the pristine plaintext. Silently wrong
// content would be an integrity break.
class RpcMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcMutationFuzz, NeverSilentlyWrong) {
  const std::uint64_t seed = GetParam();
  const auto rng = extension::seeded_rng_factory(seed);
  enc::SchemeConfig config;
  config.mode = enc::Mode::kRpc;
  config.block_chars = 4;
  config.kdf_iterations = 5;

  Xoshiro256 fuzz(seed * 17);
  const std::string plaintext =
      workload::random_document(fuzz, 100 + fuzz.below(200));
  extension::DocumentSession writer =
      extension::DocumentSession::create_new("pw", config, rng);
  writer.encrypt_full(plaintext);
  const std::string doc = writer.scheme().ciphertext_doc();

  int detected = 0, unchanged = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = doc;
    const auto mutation = fuzz.below(4);
    if (mutation == 0) {
      // Flip one character to another Base32 character.
      const std::size_t i = fuzz.below(mutated.size());
      mutated[i] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"[fuzz.below(32)];
    } else if (mutation == 1 && mutated.size() > 10) {
      // Delete a random slice.
      const std::size_t i = fuzz.below(mutated.size() - 5);
      mutated.erase(i, 1 + fuzz.below(5));
    } else if (mutation == 2) {
      // Duplicate a random slice in place.
      const std::size_t i = fuzz.below(mutated.size());
      mutated.insert(i, mutated.substr(i, 1 + fuzz.below(8)));
    } else {
      // Swap two random characters.
      const std::size_t i = fuzz.below(mutated.size());
      const std::size_t j = fuzz.below(mutated.size());
      std::swap(mutated[i], mutated[j]);
    }

    try {
      extension::DocumentSession reader =
          extension::DocumentSession::open("pw", mutated, rng);
      ASSERT_EQ(reader.plaintext(), plaintext)
          << "mutation " << trial << " opened to wrong content";
      ++unchanged;  // mutation was a no-op (e.g. swapped equal chars)
    } catch (const Error&) {
      ++detected;
    }
  }
  // Almost all mutations must be detected; the rest must be no-ops.
  EXPECT_GT(detected, 100);
  EXPECT_EQ(detected + unchanged, 150);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcMutationFuzz,
                         ::testing::Values(11, 22, 33, 44));

// Random bytes must never crash the container/scheme parsers — only clean
// typed errors are acceptable.
TEST(ParserRobustness, RandomInputsProduceTypedErrorsOnly) {
  const auto rng = extension::seeded_rng_factory(77);
  Xoshiro256 fuzz(78);
  for (int trial = 0; trial < 500; ++trial) {
    std::string junk;
    const std::size_t len = fuzz.below(300);
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(fuzz.below(256)));
    }
    try {
      extension::DocumentSession::open("pw", junk, rng);
    } catch (const Error&) {
      // expected
    }
  }
  SUCCEED();
}

TEST(Lifecycle, CreateEditReopenRotateChain) {
  const auto rng = extension::seeded_rng_factory(88);
  enc::SchemeConfig config;
  config.mode = enc::Mode::kRpc;
  config.kdf_iterations = 5;

  extension::DocumentSession s1 =
      extension::DocumentSession::create_new("pw1", config, rng);
  std::string server_doc = s1.encrypt_full("generation one");

  // Edit, reopen, edit again, rotate, reopen.
  server_doc = s1.transform_delta(delta::Delta::parse("=10\t-4\t+1"))
                   .apply(server_doc);
  extension::DocumentSession s2 =
      extension::DocumentSession::open("pw1", server_doc, rng);
  EXPECT_EQ(s2.plaintext(), "generation1");

  server_doc =
      s2.transform_delta(delta::Delta::parse("+the ")).apply(server_doc);
  extension::DocumentSession s3 = rotate_password(s2, "pw2", rng);
  server_doc = s3.scheme().ciphertext_doc();

  EXPECT_EQ(
      extension::DocumentSession::open("pw2", server_doc, rng).plaintext(),
      "the generation1");
  EXPECT_THROW(extension::DocumentSession::open("pw1", server_doc, rng),
               CryptoError);
}

}  // namespace
}  // namespace privedit
