// Tests for the IndexedSkipList (§V-C) — correctness against a reference
// vector model, weight-indexed lookup, and structural invariants under
// randomized operation sequences.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "privedit/ds/indexed_skip_list.hpp"
#include "privedit/enc/block_store.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::ds {
namespace {

TEST(LevelGenerator, RangeAndDistribution) {
  LevelGenerator gen(1);
  int counts[LevelGenerator::kMaxLevel + 1] = {};
  for (int i = 0; i < 100000; ++i) {
    const int level = gen.next_level();
    ASSERT_GE(level, 1);
    ASSERT_LE(level, LevelGenerator::kMaxLevel);
    counts[level]++;
  }
  // P(level==1) = 1/2; allow generous slack.
  EXPECT_GT(counts[1], 45000);
  EXPECT_LT(counts[1], 55000);
  // P(level==2) = 1/4.
  EXPECT_GT(counts[2], 22000);
  EXPECT_LT(counts[2], 28000);
}

// Erased nodes park on per-level freelists and are reused by later inserts,
// so a steady edit stream stops allocating once the pools warm up. Pinned
// alongside the differential test below, which hammers reuse for
// correctness under 10k random splices.
TEST(IndexedSkipList, FreelistRecyclesErasedNodes) {
  IndexedSkipList<int> list;
  EXPECT_EQ(list.free_node_count(), 0u);
  for (int i = 0; i < 100; ++i) list.insert(static_cast<std::size_t>(i), i, 1);
  while (!list.empty()) list.erase(0);
  const std::size_t pooled = list.free_node_count();
  EXPECT_EQ(pooled, 100u);

  // Re-inserting draws from the pool instead of allocating. New nodes get
  // fresh random levels, so only same-level buckets drain — but with 100
  // inserts the level-1 bucket is hit essentially always.
  for (int i = 0; i < 100; ++i) list.insert(static_cast<std::size_t>(i), i, 1);
  EXPECT_LT(list.free_node_count(), pooled);
  EXPECT_EQ(list.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(list.get(static_cast<std::size_t>(i)), i);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, ClearFeedsTheFreelist) {
  IndexedSkipList<std::string> list;
  for (int i = 0; i < 50; ++i) {
    list.insert(static_cast<std::size_t>(i), std::to_string(i), 2);
  }
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.total_weight(), 0u);
  EXPECT_EQ(list.free_node_count(), 50u);
  // The recycled list must behave like a fresh one.
  list.insert(0, "x", 1);
  EXPECT_EQ(list.get(0), "x");
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, FreelistSurvivesMixedChurn) {
  IndexedSkipList<int> list;
  Xoshiro256 rng(7);
  std::vector<int> model;
  for (int step = 0; step < 5000; ++step) {
    if (model.empty() || rng.below(2) == 0) {
      const std::size_t pos = rng.below(model.size() + 1);
      const int v = static_cast<int>(step);
      list.insert(pos, static_cast<int>(step), 1);
      model.insert(model.begin() + static_cast<std::ptrdiff_t>(pos), v);
    } else {
      const std::size_t pos = rng.below(model.size());
      list.erase(pos);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    if (step % 512 == 0) {
      ASSERT_TRUE(list.validate()) << "step " << step;
      ASSERT_EQ(list.size(), model.size());
    }
  }
  ASSERT_EQ(list.size(), model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(list.get(i), model[i]) << "index " << i;
  }
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, EmptyList) {
  IndexedSkipList<int> list;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.total_weight(), 0u);
  EXPECT_TRUE(list.empty());
  EXPECT_THROW(list.find(0), Error);
  EXPECT_THROW(list.get(0), Error);
  EXPECT_THROW(list.erase(0), Error);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, SingleElement) {
  IndexedSkipList<std::string> list;
  list.insert(0, "abc", 3);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.total_weight(), 3u);
  EXPECT_EQ(list.get(0), "abc");
  for (std::size_t pos = 0; pos < 3; ++pos) {
    const auto loc = list.find(pos);
    EXPECT_EQ(loc.element_index, 0u);
    EXPECT_EQ(loc.offset, pos);
    EXPECT_EQ(loc.start_weight, 0u);
  }
  EXPECT_THROW(list.find(3), Error);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, PaperInsertExample) {
  // Fig 3: insert "xy" at character index 3 of "abc|fgh|ijk" (blocks of 3).
  IndexedSkipList<std::string> list(7);
  list.insert(0, "abc", 3);
  list.insert(1, "fgh", 3);
  list.insert(2, "ijk", 3);
  ASSERT_EQ(list.total_weight(), 9u);

  const auto loc = list.find(3);  // position 3 = start of "fgh"
  EXPECT_EQ(loc.element_index, 1u);
  EXPECT_EQ(loc.offset, 0u);

  list.insert(1, "xy", 2);  // becomes the new element 1
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(list.total_weight(), 11u);
  EXPECT_EQ(list.get(0), "abc");
  EXPECT_EQ(list.get(1), "xy");
  EXPECT_EQ(list.get(2), "fgh");
  EXPECT_EQ(list.get(3), "ijk");
  EXPECT_EQ(list.find(3).element_index, 1u);
  EXPECT_EQ(list.find(4).element_index, 1u);
  EXPECT_EQ(list.find(5).element_index, 2u);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, StartWeightOf) {
  IndexedSkipList<int> list;
  list.insert(0, 10, 4);
  list.insert(1, 20, 2);
  list.insert(2, 30, 5);
  EXPECT_EQ(list.start_weight_of(0), 0u);
  EXPECT_EQ(list.start_weight_of(1), 4u);
  EXPECT_EQ(list.start_weight_of(2), 6u);
  EXPECT_EQ(list.start_weight_of(3), 11u);  // end position
}

TEST(IndexedSkipList, EraseMiddle) {
  IndexedSkipList<char> list;
  for (std::size_t i = 0; i < 10; ++i) {
    list.insert(i, static_cast<char>('a' + i), i + 1);
  }
  const char erased = list.erase(4);  // weight 5
  EXPECT_EQ(erased, 'e');
  EXPECT_EQ(list.size(), 9u);
  EXPECT_EQ(list.total_weight(), 55u - 5u);
  EXPECT_EQ(list.get(4), 'f');
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, UpdateValueAndWeight) {
  IndexedSkipList<std::string> list;
  list.insert(0, "aa", 2);
  list.insert(1, "bbb", 3);
  list.insert(2, "c", 1);
  list.update(1, [](std::string& v) {
    v = "BBBBB";
    return v.size();
  });
  EXPECT_EQ(list.get(1), "BBBBB");
  EXPECT_EQ(list.total_weight(), 8u);
  EXPECT_EQ(list.find(6).element_index, 1u);
  EXPECT_EQ(list.find(7).element_index, 2u);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, ForEachVisitsInOrder) {
  IndexedSkipList<int> list;
  for (int i = 0; i < 20; ++i) {
    list.insert(static_cast<std::size_t>(i), i, 1);
  }
  std::vector<int> seen;
  list.for_each([&](const int& v, std::size_t) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(IndexedSkipList, ClearResets) {
  IndexedSkipList<int> list;
  list.insert(0, 1, 5);
  list.clear();
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.total_weight(), 0u);
  list.insert(0, 2, 3);
  EXPECT_EQ(list.get(0), 2);
  EXPECT_TRUE(list.validate());
}

TEST(IndexedSkipList, OutOfRangeChecks) {
  IndexedSkipList<int> list;
  list.insert(0, 1, 1);
  EXPECT_THROW(list.insert(2, 9, 1), Error);
  EXPECT_THROW(list.get(1), Error);
  EXPECT_THROW(list.erase(1), Error);
  EXPECT_THROW(list.find(1), Error);
  EXPECT_THROW(list.start_weight_of(2), Error);
}

// Reference-model fuzz: a vector of (value, weight) pairs mirrors the list.
class SkipListModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipListModelTest, RandomOpsMatchReferenceModel) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  IndexedSkipList<int> list(seed ^ 0xabcdef);
  std::vector<std::pair<int, std::size_t>> model;  // (value, weight)

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t action = rng.below(100);
    if (action < 45 || model.empty()) {
      // insert
      const std::size_t idx = rng.below(model.size() + 1);
      const int value = static_cast<int>(rng.below(1000000));
      const std::size_t weight = 1 + rng.below(8);
      list.insert(idx, value, weight);
      model.insert(model.begin() + static_cast<std::ptrdiff_t>(idx),
                   {value, weight});
    } else if (action < 70) {
      // erase
      const std::size_t idx = rng.below(model.size());
      const int erased = list.erase(idx);
      EXPECT_EQ(erased, model[idx].first);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (action < 85) {
      // update value + weight
      const std::size_t idx = rng.below(model.size());
      const int value = static_cast<int>(rng.below(1000000));
      const std::size_t weight = 1 + rng.below(8);
      list.update(idx, [&](int& v) {
        v = value;
        return weight;
      });
      model[idx] = {value, weight};
    } else {
      // point lookups
      const std::size_t idx = rng.below(model.size());
      EXPECT_EQ(list.get(idx), model[idx].first);
      EXPECT_EQ(list.weight_of(idx), model[idx].second);
    }
  }

  // Full structural comparison at the end.
  ASSERT_EQ(list.size(), model.size());
  std::size_t total = 0;
  for (const auto& [v, w] : model) total += w;
  ASSERT_EQ(list.total_weight(), total);

  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_EQ(list.get(i), model[i].first);
    EXPECT_EQ(list.start_weight_of(i), cumulative);
    // Probe first/last position of each element.
    const auto first = list.find(cumulative);
    EXPECT_EQ(first.element_index, i);
    EXPECT_EQ(first.offset, 0u);
    const auto last = list.find(cumulative + model[i].second - 1);
    EXPECT_EQ(last.element_index, i);
    EXPECT_EQ(last.offset, model[i].second - 1);
    cumulative += model[i].second;
  }
  EXPECT_TRUE(list.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipListModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(IndexedSkipList, LargeSequentialBuild) {
  IndexedSkipList<int> list(99);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    list.insert(static_cast<std::size_t>(i), i, 3);
  }
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kN));
  EXPECT_EQ(list.total_weight(), static_cast<std::size_t>(kN) * 3);
  // Spot-check weighted finds across the whole range.
  for (int probe = 0; probe < 100; ++probe) {
    const std::size_t pos = static_cast<std::size_t>(probe) * 600 + 1;
    const auto loc = list.find(pos);
    EXPECT_EQ(loc.element_index, pos / 3);
    EXPECT_EQ(loc.offset, pos % 3);
  }
}

TEST(IndexedSkipList, MoveConstruction) {
  IndexedSkipList<int> a;
  a.insert(0, 7, 2);
  IndexedSkipList<int> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.get(0), 7);
  EXPECT_TRUE(b.validate());
}

// Differential test of the skip-list-backed BlockStore against a flat
// std::string: the same splice stream must produce the same document,
// for every block size the schemes support. Splice positions are biased
// onto block boundaries (and spans to whole multiples of the block size)
// so edits abut and exactly contain node boundaries — the cases where
// the re-chunking arithmetic can be off by one.
class BlockStoreDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockStoreDifferentialTest, SplicesMatchFlatString) {
  const std::uint64_t seed = GetParam();
  for (std::size_t block_chars = 1; block_chars <= 8; ++block_chars) {
    Xoshiro256 rng(seed * 1000 + block_chars);
    enc::BlockStore store(block_chars, enc::BlockPolicy{},
                          /*skiplist_seed=*/seed ^ 0xb10c);
    std::string model = "seed document for the block store differential";
    store.reset(model);

    const int kOps = 10'000;
    for (int step = 0; step < kOps; ++step) {
      // Position: half the time aligned to a block boundary.
      std::size_t pos = rng.below(model.size() + 1);
      if (rng.chance(0.5)) pos -= pos % block_chars;
      // Deletion span: half the time a whole number of blocks, so the
      // splice exactly covers [k, k+n) nodes.
      std::size_t del = rng.below(std::min<std::size_t>(
                            model.size() - pos, 4 * block_chars) +
                        1);
      if (rng.chance(0.5)) del -= del % block_chars;
      std::string text;
      if (model.size() < 4096 && !rng.chance(0.25)) {
        const std::size_t len = rng.below(3 * block_chars + 1);
        for (std::size_t i = 0; i < len; ++i) {
          text.push_back(static_cast<char>('a' + rng.below(26)));
        }
      }
      store.replace_range(pos, del, text);
      model.replace(pos, del, text);

      ASSERT_EQ(store.char_count(), model.size())
          << "b=" << block_chars << " step=" << step;
      if (step % 256 == 0 || step == kOps - 1) {
        ASSERT_EQ(store.plaintext(), model)
            << "b=" << block_chars << " step=" << step;
        ASSERT_TRUE(store.validate());
        // No block may be empty or overfull.
        for (std::size_t e = 0; e < store.block_count(); ++e) {
          const std::size_t n = store.block(e).plain.size();
          ASSERT_GE(n, 1u);
          ASSERT_LE(n, block_chars);
        }
      }
    }
    EXPECT_EQ(store.plaintext(), model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockStoreDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace privedit::ds
