// Fork-consistency audit chain (DESIGN.md §16):
//
//  - enc/audit_record: chain/link/witness MAC math and wire codecs — a
//    forged, spliced, or replayed-at-the-wrong-position link must fail
//    verification, and every wire form round-trips;
//  - extension/audit: the DocumentAuditor state machine — staged-link
//    write-ahead discipline, served-chain classification (rollback vs
//    fork vs equivocation), witness prefix-compatibility, suppression
//    detection, and crash-at-seam durability of the committed head
//    (the audit.append.* points);
//  - cloud/gdocs_server + doc_table: the sidecar-before-record persist
//    ordering contract — a crash between the two puts must restore to a
//    self-consistent state (orphan chain links trimmed), never to an
//    acknowledged-looking revision with no chain link;
//  - the mediator raising typed IntegrityErrors on served histories an
//    honest server cannot produce.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/enc/audit_record.hpp"
#include "privedit/extension/audit.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {
namespace {

namespace fs = std::filesystem;

Bytes test_key() { return enc::derive_audit_key("pw", "doc"); }

/// A genuine chain of `n` links over revs 1..n, alternating writers, as
/// honest clients would have produced it.
enc::AuditChain genuine_chain(const Bytes& key, std::size_t n) {
  enc::AuditChain chain;
  chain.base_rev = 0;
  chain.base_head = enc::genesis_head(key, "doc");
  Bytes prev = chain.base_head;
  for (std::size_t i = 1; i <= n; ++i) {
    enc::AuditLink link;
    link.rev = i;
    link.crc = static_cast<std::uint32_t>(0xc0ffee00 + i);
    link.client = (i % 2 == 1) ? "A" : "B";
    link.head = enc::chain_head(key, prev, link.rev, link.crc, link.client);
    prev = link.head;
    chain.links.push_back(std::move(link));
  }
  return chain;
}

// ------------------------------------------------- enc/audit_record

TEST(AuditRecords, ChainVerifiesAndRejectsForgery) {
  const Bytes key = test_key();
  enc::AuditChain chain = genuine_chain(key, 4);
  EXPECT_TRUE(enc::verify_chain(key, chain));
  EXPECT_EQ(chain.tip_rev(), 4u);
  ASSERT_TRUE(chain.head_at(2).has_value());
  EXPECT_EQ(*chain.head_at(2), chain.links[1].head);
  EXPECT_EQ(*chain.head_at(0), chain.base_head);
  EXPECT_FALSE(chain.head_at(9).has_value());

  // The server cannot mint, edit, or splice links without the key.
  enc::AuditChain forged = chain;
  forged.links[2].crc ^= 1;
  EXPECT_FALSE(enc::verify_chain(key, forged));
  forged = chain;
  forged.links[1].client = "M";
  EXPECT_FALSE(enc::verify_chain(key, forged));
  forged = chain;
  forged.links.erase(forged.links.begin() + 1);  // splice a link out
  EXPECT_FALSE(enc::verify_chain(key, forged));
  forged = chain;
  forged.links[3].head[0] ^= 0x80;
  EXPECT_FALSE(enc::verify_chain(key, forged));
  // A different document's key verifies nothing.
  EXPECT_FALSE(enc::verify_chain(enc::derive_audit_key("pw", "other"), chain));
}

TEST(AuditRecords, WireFormsRoundTripAndRejectMalformed) {
  const Bytes key = test_key();
  const enc::AuditChain chain = genuine_chain(key, 3);
  EXPECT_EQ(enc::decode_chain(enc::encode_chain(chain)), chain);
  EXPECT_EQ(enc::decode_link(enc::encode_link(chain.links[0])),
            chain.links[0]);
  const enc::AuditWitness w =
      enc::make_witness(key, "A", 3, chain.links[2].head);
  EXPECT_EQ(enc::decode_witness(enc::encode_witness(w)), w);

  EXPECT_THROW(enc::decode_chain(""), ParseError);
  EXPECT_THROW(enc::decode_chain("notanumber:00"), ParseError);
  EXPECT_THROW(enc::decode_link("1:zz:41:00"), ParseError);
  EXPECT_THROW(enc::decode_witness("41:1:00"), ParseError);
}

TEST(AuditRecords, WitnessMacBindsEveryField) {
  const Bytes key = test_key();
  const Bytes head = enc::genesis_head(key, "doc");
  const enc::AuditWitness w = enc::make_witness(key, "A", 7, head);
  EXPECT_TRUE(enc::verify_witness(key, w));
  enc::AuditWitness t = w;
  t.rev = 8;
  EXPECT_FALSE(enc::verify_witness(key, t));
  t = w;
  t.client = "B";
  EXPECT_FALSE(enc::verify_witness(key, t));
  t = w;
  t.head[5] ^= 1;
  EXPECT_FALSE(enc::verify_witness(key, t));
}

TEST(AuditRecords, AuditKeyIsPerDocumentAndPerPassword) {
  EXPECT_NE(enc::derive_audit_key("pw", "doc"),
            enc::derive_audit_key("pw", "doc2"));
  EXPECT_NE(enc::derive_audit_key("pw", "doc"),
            enc::derive_audit_key("pw2", "doc"));
}

// ------------------------------------------------- DocumentAuditor

TEST(Auditor, StageCommitAdvancesCommittedHead) {
  const Bytes key = test_key();
  DocumentAuditor a(key, "doc", "A");
  EXPECT_FALSE(a.initialized());
  a.reset(0);
  ASSERT_TRUE(a.initialized());
  EXPECT_EQ(a.committed_head(), enc::genesis_head(key, "doc"));

  const enc::AuditLink link = a.stage_link(1, 0x1234);
  EXPECT_EQ(link.head, enc::chain_head(key, a.committed_head(), 1, 0x1234,
                                       "A"));
  EXPECT_TRUE(a.has_staged());
  EXPECT_EQ(a.committed_rev(), 0u);  // not committed until acked
  a.commit_staged();
  EXPECT_FALSE(a.has_staged());
  EXPECT_EQ(a.committed_rev(), 1u);
  EXPECT_EQ(a.committed_head(), link.head);

  a.stage_link(2, 0x5678);
  a.drop_staged();  // clean rejection: forget, don't commit
  EXPECT_FALSE(a.has_staged());
  EXPECT_EQ(a.committed_rev(), 1u);
}

TEST(Auditor, VerifyServedClassifiesRollbackForkAndCrcMismatch) {
  const Bytes key = test_key();
  const enc::AuditChain chain = genuine_chain(key, 4);
  DocumentAuditor a(key, "doc", "A");
  a.reset(0);

  // Honest serve: fast-forward through the verified links.
  auto v = a.verify_served(chain, 4, chain.links[3].crc);
  EXPECT_EQ(v.verdict, AuditVerdict::kOk) << v.detail;
  EXPECT_EQ(a.committed_rev(), 4u);
  EXPECT_EQ(a.committed_head(), chain.links[3].head);

  // Rollback: old-but-genuine prefix served again.
  enc::AuditChain old = chain;
  old.links.resize(2);
  v = a.verify_served(old, 2, old.links[1].crc);
  EXPECT_EQ(v.verdict, AuditVerdict::kRollback);

  // Fork: the chain speaks for a different rev than the served state.
  v = a.verify_served(chain, 5, chain.links[3].crc);
  EXPECT_EQ(v.verdict, AuditVerdict::kFork);

  // Fork: tip link does not bind the container actually served.
  v = a.verify_served(chain, 4, chain.links[3].crc ^ 1);
  EXPECT_EQ(v.verdict, AuditVerdict::kFork);

  // Fork: substituted history (same shape, different heads).
  const enc::AuditChain other =
      genuine_chain(enc::derive_audit_key("pw", "doc"), 4);
  enc::AuditChain divergent = genuine_chain(key, 3);
  enc::AuditLink link;
  link.rev = 4;
  link.crc = 0x9999;  // differs from what we fast-forwarded through
  link.client = "M";
  link.head = enc::chain_head(key, divergent.links[2].head, 4, link.crc, "M");
  divergent.links.push_back(link);
  v = a.verify_served(divergent, 4, 0x9999);
  EXPECT_EQ(v.verdict, AuditVerdict::kFork);
  (void)other;
}

TEST(Auditor, StagedLinkResolvedLikeJournalCasReplay) {
  const Bytes key = test_key();
  DocumentAuditor a(key, "doc", "A");
  a.reset(0);
  enc::AuditChain chain;
  chain.base_rev = 0;
  chain.base_head = enc::genesis_head(key, "doc");

  // Ack lost but the save landed: the served chain contains our exact
  // staged head, so it commits.
  const enc::AuditLink staged = a.stage_link(1, 0x11);
  chain.links.push_back(staged);
  auto v = a.verify_served(chain, 1, 0x11);
  EXPECT_EQ(v.verdict, AuditVerdict::kOk) << v.detail;
  EXPECT_TRUE(v.staged_resolved);
  EXPECT_TRUE(v.staged_landed);
  EXPECT_EQ(a.committed_rev(), 1u);
  EXPECT_FALSE(a.has_staged());

  // Save never landed: chain ends before the staged rev — dropped, to be
  // re-staged by the resend.
  a.stage_link(2, 0x22);
  v = a.verify_served(chain, 1, 0x11);
  EXPECT_EQ(v.verdict, AuditVerdict::kOk) << v.detail;
  EXPECT_TRUE(v.staged_resolved);
  EXPECT_FALSE(v.staged_landed);
  EXPECT_FALSE(a.has_staged());

  // Our rev taken by someone else's link: the write was discarded from
  // this history — fork.
  a.stage_link(2, 0x22);
  enc::AuditLink theirs;
  theirs.rev = 2;
  theirs.crc = 0x33;
  theirs.client = "B";
  theirs.head =
      enc::chain_head(key, chain.links[0].head, 2, theirs.crc, "B");
  chain.links.push_back(theirs);
  v = a.verify_served(chain, 2, 0x33);
  EXPECT_EQ(v.verdict, AuditVerdict::kFork);
}

TEST(Auditor, PeerWitnessPrefixCompatibility) {
  const Bytes key = test_key();
  const enc::AuditChain chain = genuine_chain(key, 3);
  DocumentAuditor a(key, "doc", "A");
  a.reset(0);
  ASSERT_EQ(a.verify_served(chain, 3, chain.links[2].crc).verdict,
            AuditVerdict::kOk);

  // Agreeing witness at a rev inside our evidence window: fine.
  auto v = a.check_witness(
      enc::make_witness(key, "B", 2, chain.links[1].head));
  EXPECT_EQ(v.verdict, AuditVerdict::kOk) << v.detail;

  // MAC-invalid witness: server-injected garbage, ignored.
  enc::AuditWitness garbage =
      enc::make_witness(key, "B", 2, chain.links[1].head);
  garbage.mac[0] ^= 1;
  v = a.check_witness(garbage);
  EXPECT_EQ(v.verdict, AuditVerdict::kOk);

  // Conflicting witness at a rev we hold evidence for: the server showed
  // the peer a different history — equivocation, proven by MAC.
  Bytes wrong = chain.links[1].head;
  wrong[0] ^= 0x40;
  v = a.check_witness(enc::make_witness(key, "B", 2, wrong));
  EXPECT_EQ(v.verdict, AuditVerdict::kEquivocation);

  // A witness ahead of us is remembered and judged against the next
  // verified chain; a chain that omits the witnessed head convicts.
  const enc::AuditChain longer = genuine_chain(key, 5);
  Bytes ahead = longer.links[4].head;
  ahead[3] ^= 2;
  v = a.check_witness(enc::make_witness(key, "B", 5, ahead));
  EXPECT_EQ(v.verdict, AuditVerdict::kOk) << "ahead: deferred, not judged";
  v = a.verify_served(longer, 5, longer.links[4].crc);
  EXPECT_EQ(v.verdict, AuditVerdict::kEquivocation);
}

TEST(Auditor, WitnessSuppressionDetection) {
  const Bytes key = test_key();
  DocumentAuditor a(key, "doc", "A");
  a.reset(0);
  a.stage_link(1, 0x11);
  a.commit_staged();

  // Never published: a missing witness proves nothing.
  EXPECT_FALSE(a.witness_suppressed(std::nullopt));

  const enc::AuditWitness own = a.own_witness();
  EXPECT_TRUE(enc::verify_witness(key, own));
  a.note_witness_published();
  EXPECT_FALSE(a.witness_suppressed(own));
  // Published but absent from the served set: suppression.
  EXPECT_TRUE(a.witness_suppressed(std::nullopt));
  // Served a stale (older-rev) witness after we published a newer one.
  a.stage_link(2, 0x22);
  a.commit_staged();
  a.note_witness_published();
  EXPECT_TRUE(a.witness_suppressed(own));
}

class AuditDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CrashPoints::disarm();
    base_ = (fs::temp_directory_path() /
             ("privedit_audit_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    CrashPoints::disarm();
    fs::remove_all(base_);
  }
  std::string base_;
};

TEST_F(AuditDurabilityTest, CommittedHeadSurvivesReload) {
  const Bytes key = test_key();
  const std::string log = base_ + "/doc.achain";
  Bytes head;
  {
    DocumentAuditor a(key, "doc", "A", log);
    a.reset(0);
    a.stage_link(1, 0xaa);
    a.commit_staged();
    a.stage_link(2, 0xbb);  // in flight at "power loss"
    head = a.committed_head();
  }
  DocumentAuditor a(key, "doc", "A", log);
  EXPECT_TRUE(a.initialized());
  EXPECT_EQ(a.committed_rev(), 1u);
  EXPECT_EQ(a.committed_head(), head);
  ASSERT_TRUE(a.has_staged());
  EXPECT_EQ(a.staged()->rev, 2u);
  EXPECT_EQ(a.staged()->crc, 0xbbu);
}

TEST_F(AuditDurabilityTest, CrashAtEveryAuditAppendSeamKeepsDurablePrefix) {
  const Bytes key = test_key();
  for (const char* point :
       {"audit.append.before_write", "audit.append.torn",
        "audit.append.before_fsync"}) {
    SCOPED_TRACE(point);
    const std::string log = base_ + "/" + point;
    Bytes head;
    {
      DocumentAuditor a(key, "doc", "A", log);
      a.reset(0);
      a.stage_link(1, 0xaa);
      a.commit_staged();
      head = a.committed_head();
      CrashPoints::arm(point);
      EXPECT_THROW(a.stage_link(2, 0xbb), CrashError);
    }
    CrashPoints::disarm();
    // The committed head — the fork-detection anchor — is always intact;
    // the staged record is either fully there or cleanly gone.
    DocumentAuditor a(key, "doc", "A", log);
    EXPECT_TRUE(a.initialized());
    EXPECT_EQ(a.committed_rev(), 1u);
    EXPECT_EQ(a.committed_head(), head);
    EXPECT_TRUE(!a.has_staged() || a.staged()->rev == 2u);
  }
}

// ------------------------------------- server-side persist ordering

net::HttpRequest doc_request(const std::string& body) {
  net::HttpRequest req = net::HttpRequest::post_form("/Doc?docID=doc", body);
  req.headers.set("X-Privedit-Client", "A");
  return req;
}

/// One save through the raw server with the auditor's link attached, the
/// way the mediator sends it.
net::HttpResponse audited_save(cloud::GDocsServer& server,
                               DocumentAuditor& auditor,
                               const std::string& session,
                               std::uint64_t base_rev,
                               const std::string& content) {
  const enc::AuditLink link =
      auditor.stage_link(auditor.committed_rev() + 1, crc32(as_bytes(content)));
  FormData form;
  form.add("session", session);
  form.add("rev", std::to_string(base_rev));
  form.add("docContents", content);
  form.add("alink", enc::encode_link(link));
  form.add("abase", hex_encode(auditor.committed_head()));
  form.add("abaserev", std::to_string(auditor.committed_rev()));
  return server.handle(doc_request(form.encode()));
}

TEST_F(AuditDurabilityTest, CrashBetweenSidecarAndRecordTrimsOrphanLink) {
  const Bytes key = test_key();
  const std::string dir = base_ + "/store";
  std::string session;
  {
    cloud::GDocsServer server;
    server.enable_persistence(dir);
    DocumentAuditor auditor(key, "doc", "A");
    auditor.reset(0);
    FormData create;
    create.add("cmd", "create");
    create.add("abase", hex_encode(auditor.committed_head()));
    ASSERT_EQ(server.handle(doc_request(create.encode())).status, 201);
    FormData open;
    open.add("cmd", "open");
    const net::HttpResponse opened =
        server.handle(doc_request(open.encode()));
    ASSERT_EQ(opened.status, 200);
    session = FormData::parse(opened.body).get("session").value_or("");

    ASSERT_EQ(audited_save(server, auditor, session, 0, "one").status, 200);
    auditor.commit_staged();

    // The save path puts the audit sidecar first, the document record
    // second. Crash on the SECOND put of this save: the sidecar now
    // carries a link for a revision whose record never landed.
    CrashPoints::arm("file_store.put.created", 2);
    EXPECT_THROW(audited_save(server, auditor, session, 1, "two"),
                 CrashError);
  }
  CrashPoints::disarm();

  // Provider reboot. The restored state must be self-consistent: the
  // orphan tip link is trimmed, never the reverse (a revision with no
  // link — indistinguishable from a fork for every honest client).
  cloud::GDocsServer server;
  server.enable_persistence(dir);
  EXPECT_EQ(server.table().audit_restore_skipped(), 1u);
  const cloud::DocTable::Document* doc = server.table().find("doc");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->rev, 1u);
  EXPECT_EQ(doc->content, "one");
  const enc::AuditChain chain = enc::decode_chain(doc->audit_chain);
  EXPECT_TRUE(enc::verify_chain(key, chain));
  EXPECT_EQ(chain.tip_rev(), 1u);

  // The client's resend (the journal-replay analogue) re-lands the save
  // and its link against the trimmed tip.
  DocumentAuditor auditor(key, "doc", "A");
  auditor.adopt(1, chain.links.back().head);
  ASSERT_EQ(audited_save(server, auditor, session, 1, "two").status, 200);
  auditor.commit_staged();
  const cloud::DocTable::Document* after = server.table().find("doc");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->rev, 2u);
  EXPECT_EQ(enc::decode_chain(after->audit_chain).tip_rev(), 2u);
}

// ------------------------------------------- mediator classification

struct AuditStack {
  explicit AuditStack(const std::string& journal_dir, std::uint64_t seed) {
    MediatorConfig c;
    c.password = "pw";
    c.scheme.kdf_iterations = 5;
    c.rng_factory = seeded_rng_factory(seed + 1);
    c.client_id = "A";
    c.audit = true;
    c.journal_dir = journal_dir;
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(seed));
    mediator = std::make_unique<GDocsMediator>(transport.get(), std::move(c),
                                               &clock);
  }
  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<GDocsMediator> mediator;
};

TEST_F(AuditDurabilityTest, MediatorRaisesRollbackErrorOnReplayedHistory) {
  AuditStack stack(base_, 4200);
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, "first revision");
  ASSERT_TRUE(writer.save());
  const cloud::DocTable::Document* doc = stack.server.table().find("doc");
  ASSERT_NE(doc, nullptr);
  const std::string old_content = doc->content;
  const std::uint64_t old_rev = doc->rev;
  const std::string old_chain = doc->audit_chain;
  writer.insert(0, "second ");
  ASSERT_TRUE(writer.save());

  // Malicious replay: re-serve the full old (content, rev, chain) tuple.
  FormData replay;
  replay.add("cmd", "sync");
  replay.add("content", old_content);
  replay.add("rev", std::to_string(old_rev));
  replay.add("achain", old_chain);
  ASSERT_EQ(stack.server.handle(doc_request(replay.encode())).status, 200);

  client::GDocsClient reader(stack.mediator.get(), "doc");
  EXPECT_THROW(reader.open(), RollbackError);
  // Two layers guard this: the journal's last-acked anchor (which runs
  // first and wins here) and the audit chain. Either way the open dies
  // with the rollback classification.
  EXPECT_GE(stack.mediator->counters().rollbacks_detected +
                stack.mediator->counters().audit_rollbacks,
            1u);
}

TEST_F(AuditDurabilityTest, MediatorRaisesForkErrorOnChainlessAdvance) {
  AuditStack stack(base_, 4300);
  client::GDocsClient writer(stack.mediator.get(), "doc");
  writer.create();
  writer.insert(0, "payload");
  ASSERT_TRUE(writer.save());

  // The server advances the revision without a matching chain link — a
  // history substitution no honest server produces (an honest crash
  // restores to the trimmed, consistent state instead).
  const cloud::DocTable::Document* doc = stack.server.table().find("doc");
  ASSERT_NE(doc, nullptr);
  stack.server.set_raw_content("doc", doc->content);

  client::GDocsClient reader(stack.mediator.get(), "doc");
  EXPECT_THROW(reader.open(), ForkError);
  EXPECT_GE(stack.mediator->counters().audit_forks, 1u);
}

}  // namespace
}  // namespace privedit::extension
