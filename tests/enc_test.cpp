// Tests for the incremental encryption schemes (§V): container framing,
// splice-log bookkeeping, block store policies, rECB/RPC round trips, the
// end-to-end server-consistency invariant, and CoClo baseline behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/enc/block_store.hpp"
#include "privedit/enc/coclo.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/enc/recb.hpp"
#include "privedit/enc/rpc.hpp"
#include "privedit/enc/scheme.hpp"
#include "privedit/enc/splice_log.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::enc {
namespace {

crypto::DocumentKeys test_keys(std::string_view password = "hunter2") {
  const Bytes salt(16, 0x42);
  return crypto::derive_document_keys(password, salt,
                                      crypto::KdfParams{.iterations = 10});
}

ContainerHeader test_header(Mode mode, std::size_t block_chars = 8,
                            Codec codec = Codec::kBase32) {
  ContainerHeader h;
  h.mode = mode;
  h.block_chars = block_chars;
  h.codec = codec;
  h.kdf_iterations = 10;
  h.salt = Bytes(16, 0x42);
  return h;
}

std::unique_ptr<RandomSource> rng(std::uint64_t seed) {
  return crypto::CtrDrbg::from_seed(seed);
}

// ---------------------------------------------------------------- container

TEST(Container, HeaderRoundTrip) {
  const ContainerHeader h = test_header(Mode::kRpc, 5, Codec::kBase64Url);
  const ContainerHeader parsed = ContainerHeader::parse(h.serialize());
  EXPECT_EQ(parsed.mode, Mode::kRpc);
  EXPECT_EQ(parsed.block_chars, 5u);
  EXPECT_EQ(parsed.codec, Codec::kBase64Url);
  EXPECT_EQ(parsed.kdf_iterations, 10u);
  EXPECT_EQ(parsed.salt, h.salt);
}

TEST(Container, HeaderRejectsCorruption) {
  const ContainerHeader h = test_header(Mode::kRecb);
  Bytes raw = h.serialize();
  Bytes bad_magic = raw;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(ContainerHeader::parse(bad_magic), ParseError);
  Bytes bad_version = raw;
  bad_version[4] = 99;
  EXPECT_THROW(ContainerHeader::parse(bad_version), ParseError);
  Bytes bad_mode = raw;
  bad_mode[5] = 0;
  EXPECT_THROW(ContainerHeader::parse(bad_mode), ParseError);
  Bytes bad_block = raw;
  bad_block[6] = 9;
  EXPECT_THROW(ContainerHeader::parse(bad_block), ParseError);
  EXPECT_THROW(ContainerHeader::parse(ByteView(raw.data(), 27)), ParseError);
  Bytes bad_kdf = raw;
  store_u32be(MutByteView(bad_kdf.data() + 8, 4), 0xffffffffu);
  // Fuzzer finding: a tampered iteration count must not DoS the opener.
  EXPECT_THROW(ContainerHeader::parse(bad_kdf), ParseError);
}

TEST(Container, WriterReaderRoundTrip) {
  const ContainerHeader h = test_header(Mode::kRecb);
  ContainerWriter writer(h);
  Xoshiro256 r(1);
  std::vector<Bytes> units;
  for (int i = 0; i < 5; ++i) {
    units.push_back(r.bytes(h.unit_raw_size()));
    writer.add_unit(units.back());
  }
  const std::string doc = writer.str();
  EXPECT_EQ(doc.size(), h.prefix_chars() + 5 * h.unit_width());

  ContainerReader reader(doc);
  EXPECT_EQ(reader.unit_count(), 5u);
  for (std::size_t u = 0; u < 5; ++u) {
    EXPECT_EQ(reader.unit(u), units[u]);
  }
  EXPECT_THROW(reader.unit(5), Error);
}

TEST(Container, ReaderRejectsFraming) {
  EXPECT_THROW(ContainerReader(""), ParseError);
  EXPECT_THROW(ContainerReader("x"), ParseError);
  const ContainerHeader h = test_header(Mode::kRecb);
  ContainerWriter writer(h);
  writer.add_unit(Bytes(h.unit_raw_size(), 1));
  std::string doc = writer.str();
  // Chop one character: body no longer a whole number of units.
  EXPECT_THROW(ContainerReader(std::string_view(doc).substr(0, doc.size() - 1)),
               ParseError);
}

TEST(Container, UnitWidths) {
  // Fixed encoded widths are what make cdelta arithmetic possible.
  EXPECT_EQ(test_header(Mode::kRecb).unit_raw_size(), 17u);
  EXPECT_EQ(test_header(Mode::kRpc).unit_raw_size(), 32u);
  EXPECT_EQ(test_header(Mode::kRecb).unit_width(), 28u);          // base32
  EXPECT_EQ(test_header(Mode::kRpc).unit_width(), 52u);           // base32
  EXPECT_EQ(test_header(Mode::kRecb, 8, Codec::kBase64Url).unit_width(), 23u);
  EXPECT_EQ(test_header(Mode::kRpc, 8, Codec::kBase64Url).unit_width(), 43u);
}

// --------------------------------------------------------------- splice log

Bytes unit_of(std::uint8_t tag) { return Bytes(4, tag); }

TEST(SpliceLog, SingleReplace) {
  SpliceLog log;
  log.replace(3, 5, {unit_of(1), unit_of(2), unit_of(3)});
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.old_start, 3u);
  EXPECT_EQ(s.old_len, 2u);
  EXPECT_EQ(s.units.size(), 3u);
}

TEST(SpliceLog, DisjointReplacesTrackShift) {
  SpliceLog log;
  log.replace(2, 3, {unit_of(1), unit_of(2)});  // old [2,3) -> 2 units (+1)
  // Current position 10 = old position 9.
  log.replace(10, 11, {unit_of(3)});
  ASSERT_EQ(log.splices().size(), 2u);
  EXPECT_EQ(log.splices()[1].old_start, 9u);
  EXPECT_EQ(log.splices()[1].old_len, 1u);
}

TEST(SpliceLog, OverlappingReplacesCoalesce) {
  SpliceLog log;
  log.replace(2, 4, {unit_of(1), unit_of(2), unit_of(3)});  // cur [2,5)
  // Overwrite the middle new unit.
  log.replace(3, 4, {unit_of(9)});
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.old_start, 2u);
  EXPECT_EQ(s.old_len, 2u);
  ASSERT_EQ(s.units.size(), 3u);
  EXPECT_EQ(s.units[0], unit_of(1));
  EXPECT_EQ(s.units[1], unit_of(9));
  EXPECT_EQ(s.units[2], unit_of(3));
}

TEST(SpliceLog, AdjacentReplacesCoalesce) {
  SpliceLog log;
  log.replace(2, 3, {unit_of(1)});
  log.replace(3, 4, {unit_of(2)});  // touches the end of the first
  ASSERT_EQ(log.splices().size(), 1u);
  EXPECT_EQ(log.splices()[0].old_start, 2u);
  EXPECT_EQ(log.splices()[0].old_len, 2u);
  EXPECT_EQ(log.splices()[0].units.size(), 2u);
}

TEST(SpliceLog, ReplaceExactlyAbuttingFromTheLeft) {
  SpliceLog log;
  log.replace(5, 7, {unit_of(1), unit_of(2)});  // cur [5,7)
  // The new range ends exactly where the existing splice begins: the two
  // must coalesce, and the earlier units keep their place after the new.
  log.replace(3, 5, {unit_of(8)});
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.cur_start, 3u);
  EXPECT_EQ(s.old_start, 3u);
  EXPECT_EQ(s.old_len, 4u);  // old [3,5) + old [5,7)
  ASSERT_EQ(s.units.size(), 3u);
  EXPECT_EQ(s.units[0], unit_of(8));
  EXPECT_EQ(s.units[1], unit_of(1));
  EXPECT_EQ(s.units[2], unit_of(2));
}

TEST(SpliceLog, ReplaceFullyContainingEarlierSplice) {
  SpliceLog log;
  log.replace(4, 6, {unit_of(1)});  // old [4,6) -> 1 unit, cur [4,5)
  // Rewrite a strictly larger range: the earlier splice's units are all
  // inside it and must vanish, while its old extent is still accounted.
  log.replace(2, 7, {unit_of(9), unit_of(9)});
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.old_start, 2u);
  // old [2,4) + swallowed old [4,6) + cur [5,7) = old [6,8).
  EXPECT_EQ(s.old_len, 6u);
  ASSERT_EQ(s.units.size(), 2u);
  EXPECT_EQ(s.units[0], unit_of(9));
  EXPECT_EQ(s.units[1], unit_of(9));
}

TEST(SpliceLog, InsertionInsideExistingSplice) {
  SpliceLog log;
  log.replace(5, 6, {unit_of(1), unit_of(2)});  // cur [5,7)
  log.replace(6, 6, {unit_of(8)});              // pure insert between them
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.old_len, 1u);
  ASSERT_EQ(s.units.size(), 3u);
  EXPECT_EQ(s.units[1], unit_of(8));
}

TEST(SpliceLog, ReplaceSpanningTwoSplicesAndGap) {
  SpliceLog log;
  log.replace(1, 2, {unit_of(1)});
  log.replace(5, 6, {unit_of(2)});
  // Covers the tail of splice 1, the untouched gap [2,5), and splice 2.
  log.replace(1, 6, {unit_of(7)});
  ASSERT_EQ(log.splices().size(), 1u);
  const auto& s = log.splices()[0];
  EXPECT_EQ(s.old_start, 1u);
  EXPECT_EQ(s.old_len, 5u);
  ASSERT_EQ(s.units.size(), 1u);
  EXPECT_EQ(s.units[0], unit_of(7));
}

TEST(SpliceLog, PureDeletion) {
  SpliceLog log;
  log.replace(4, 7, {});
  ASSERT_EQ(log.splices().size(), 1u);
  EXPECT_EQ(log.splices()[0].old_len, 3u);
  EXPECT_TRUE(log.splices()[0].units.empty());
  // A later edit at current position 4 maps to old position 7.
  log.replace(4, 5, {unit_of(1)});
  // Deletion at 4..7 is adjacent to position 4, so they coalesce.
  ASSERT_EQ(log.splices().size(), 1u);
  EXPECT_EQ(log.splices()[0].old_start, 4u);
  EXPECT_EQ(log.splices()[0].old_len, 4u);
}

TEST(SpliceLog, ToCdeltaLayout) {
  // prefix 10 chars, width 4 chars/unit, base32 encoding of 4-byte units
  // (width must match codec_width(kBase32, 4) = 7... use codec-accurate
  // numbers instead: 4 raw bytes -> 7 chars).
  SpliceLog log;
  log.replace(1, 2, {unit_of(1), unit_of(2)});
  const delta::Delta d = log.to_cdelta(10, 7, Codec::kBase32);
  // retain 10 + 1*7, delete 7, insert 14 chars.
  ASSERT_EQ(d.ops().size(), 3u);
  EXPECT_EQ(d.ops()[0], delta::Op::retain(17));
  EXPECT_EQ(d.ops()[1], delta::Op::erase(7));
  EXPECT_EQ(d.ops()[2].kind, delta::OpKind::kInsert);
  EXPECT_EQ(d.ops()[2].text.size(), 14u);
}

// Model-based fuzz: apply random unit replacements to both the SpliceLog
// and a direct string model; rendering the log as a cdelta over the "old"
// encoded string must reproduce the "new" encoded string exactly.
class SpliceLogFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpliceLogFuzz, CdeltaReproducesFinalUnitSequence) {
  Xoshiro256 r(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    // Old unit sequence: ids 0..n-1; each unit's raw bytes = 4 copies of id.
    const std::size_t n = 1 + r.below(20);
    std::vector<Bytes> old_units;
    for (std::size_t i = 0; i < n; ++i) {
      old_units.push_back(Bytes(4, static_cast<std::uint8_t>(i)));
    }
    std::vector<Bytes> cur = old_units;
    SpliceLog log;
    std::uint8_t next_id = 200;

    const int ops = 1 + static_cast<int>(r.below(8));
    for (int op = 0; op < ops; ++op) {
      const std::size_t a = r.below(cur.size() + 1);
      const std::size_t b = a + r.below(cur.size() - a + 1);
      const std::size_t k = r.below(4);
      std::vector<Bytes> repl;
      for (std::size_t i = 0; i < k; ++i) {
        repl.push_back(Bytes(4, next_id++));
      }
      // Model.
      cur.erase(cur.begin() + static_cast<std::ptrdiff_t>(a),
                cur.begin() + static_cast<std::ptrdiff_t>(b));
      cur.insert(cur.begin() + static_cast<std::ptrdiff_t>(a), repl.begin(),
                 repl.end());
      // Log.
      log.replace(a, b, std::move(repl));
    }

    // Render both unit sequences as encoded strings and check the delta.
    const std::size_t prefix = 11;
    auto render = [&](const std::vector<Bytes>& units) {
      std::string doc(prefix, 'H');
      for (const Bytes& u : units) doc += codec_encode(Codec::kBase32, u);
      return doc;
    };
    const std::string old_doc = render(old_units);
    const std::string new_doc = render(cur);
    const delta::Delta cdelta = log.to_cdelta(
        prefix, codec_width(Codec::kBase32, 4), Codec::kBase32);
    ASSERT_EQ(cdelta.apply(old_doc), new_doc)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpliceLogFuzz,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005,
                                           1006));

// -------------------------------------------------------------- block store

TEST(BlockStore, ResetChunksGreedy) {
  BlockStore store(4, BlockPolicy{});
  store.reset("abcdefghij");  // 4+4+2
  EXPECT_EQ(store.block_count(), 3u);
  EXPECT_EQ(store.block(0).plain, "abcd");
  EXPECT_EQ(store.block(1).plain, "efgh");
  EXPECT_EQ(store.block(2).plain, "ij");
  EXPECT_EQ(store.plaintext(), "abcdefghij");
}

TEST(BlockStore, ResetChunksEven) {
  BlockPolicy even;
  even.split = BlockPolicy::Split::kEven;
  BlockStore store(4, even);
  store.reset("abcdefghij");  // ceil(10/4)=3 blocks: 4+3+3
  EXPECT_EQ(store.block_count(), 3u);
  EXPECT_EQ(store.block(0).plain, "abcd");
  EXPECT_EQ(store.block(1).plain, "efg");
  EXPECT_EQ(store.block(2).plain, "hij");
}

TEST(BlockStore, InsertAtBoundaryGrowsPreviousBlock) {
  BlockStore store(8, BlockPolicy{});
  store.reset("abcd" "efgh");  // hmm: 8 chars -> one block
  store.reset("abcdefghij");   // blocks: "abcdefgh", "ij"
  const RegionChange c = store.replace_range(8, 0, "X");
  // Boundary insert extends the previous block: "abcdefgh"+"X" -> split
  EXPECT_EQ(c.first_elem, 0u);
  EXPECT_EQ(c.old_count, 1u);
  EXPECT_EQ(store.plaintext(), "abcdefghXij");
}

TEST(BlockStore, AppendFillsLastBlock) {
  BlockStore store(8, BlockPolicy{});
  store.reset("abc");
  for (char ch = 'd'; ch <= 'h'; ++ch) {
    store.replace_range(store.char_count(), 0, std::string(1, ch));
  }
  EXPECT_EQ(store.plaintext(), "abcdefgh");
  EXPECT_EQ(store.block_count(), 1u);  // typing kept one block filling up
}

TEST(BlockStore, DeleteAcrossBlocks) {
  BlockStore store(4, BlockPolicy{});
  store.reset("abcdefghijkl");  // abcd|efgh|ijkl
  const RegionChange c = store.replace_range(2, 8, "");
  EXPECT_EQ(store.plaintext(), "abkl");
  EXPECT_EQ(c.first_elem, 0u);
  EXPECT_EQ(c.old_count, 3u);
  ASSERT_EQ(c.removed.size(), 3u);
  EXPECT_EQ(c.removed[0].plain, "abcd");
  EXPECT_TRUE(store.validate());
}

TEST(BlockStore, DeleteEverything) {
  BlockStore store(4, BlockPolicy{});
  store.reset("abcdefgh");
  const RegionChange c = store.replace_range(0, 8, "");
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(c.new_count, 0u);
  EXPECT_EQ(store.plaintext(), "");
}

TEST(BlockStore, InsertIntoEmpty) {
  BlockStore store(4, BlockPolicy{});
  store.reset("");
  EXPECT_EQ(store.block_count(), 0u);
  store.replace_range(0, 0, "hello");
  EXPECT_EQ(store.plaintext(), "hello");
  EXPECT_EQ(store.block_count(), 2u);
}

TEST(BlockStore, MergeOnDeletePolicy) {
  BlockPolicy merging;
  merging.merge_on_delete = true;
  merging.merge_threshold = 4;
  BlockStore store(4, merging);
  store.reset("abcdefgh");  // abcd|efgh
  store.replace_range(1, 3, "");  // "a" + "efgh" region gets merged
  EXPECT_EQ(store.plaintext(), "aefgh");
  EXPECT_EQ(store.block_count(), 2u);  // re-chunked: aefg|h
  EXPECT_EQ(store.block(0).plain, "aefg");

  // Without merging the same edit leaves a 1-char fragment.
  BlockStore frag(4, BlockPolicy{});
  frag.reset("abcdefgh");
  frag.replace_range(1, 3, "");
  EXPECT_EQ(frag.plaintext(), "aefgh");
  EXPECT_EQ(frag.block(0).plain, "a");
}

TEST(BlockStore, OutOfBoundsThrows) {
  BlockStore store(4, BlockPolicy{});
  store.reset("abc");
  EXPECT_THROW(store.replace_range(4, 0, "x"), Error);
  EXPECT_THROW(store.replace_range(0, 4, ""), Error);
  EXPECT_THROW(store.replace_range(2, 2, ""), Error);
}

TEST(BlockStore, RandomEditsMatchStringModel) {
  Xoshiro256 r(314);
  BlockStore store(5, BlockPolicy{});
  std::string model = "initial document text";
  store.reset(model);
  for (int step = 0; step < 500; ++step) {
    const std::size_t pos = r.below(model.size() + 1);
    const std::size_t max_del = model.size() - pos;
    const std::size_t del = r.below(std::min<std::size_t>(max_del, 7) + 1);
    std::string ins;
    const std::size_t ins_len = r.below(7);
    for (std::size_t i = 0; i < ins_len; ++i) {
      ins.push_back(static_cast<char>('a' + r.below(26)));
    }
    if (del == 0 && ins.empty()) continue;
    store.replace_range(pos, del, ins);
    model = model.substr(0, pos) + ins + model.substr(pos + del);
    ASSERT_EQ(store.plaintext(), model) << "step " << step;
    // Block size invariant.
    for (std::size_t e = 0; e < store.block_count(); ++e) {
      ASSERT_GE(store.block(e).plain.size(), 1u);
      ASSERT_LE(store.block(e).plain.size(), 5u);
    }
  }
  EXPECT_TRUE(store.validate());
}

// -------------------------------------------------------------- rECB units

TEST(RecbUnits, EncryptDecryptRoundTrip) {
  const auto keys = test_keys();
  crypto::Aes128Engine aes(keys.content_key);
  auto r = rng(1);
  const Bytes r0 = r->bytes(8);
  for (const char* text : {"a", "ab", "abcdefgh", "\x01\x02\x03"}) {
    const Bytes unit = recb_encrypt_unit(aes, r0, text, *r);
    EXPECT_EQ(recb_decrypt_unit(aes, r0, unit, 8), text);
  }
}

TEST(RecbUnits, Randomized) {
  // Same plaintext block encrypts to different ciphertexts (fresh nonce).
  const auto keys = test_keys();
  crypto::Aes128Engine aes(keys.content_key);
  auto r = rng(2);
  const Bytes r0 = r->bytes(8);
  const Bytes u1 = recb_encrypt_unit(aes, r0, "same", *r);
  const Bytes u2 = recb_encrypt_unit(aes, r0, "same", *r);
  EXPECT_NE(u1, u2);
  EXPECT_EQ(recb_decrypt_unit(aes, r0, u1, 8), "same");
  EXPECT_EQ(recb_decrypt_unit(aes, r0, u2, 8), "same");
}

TEST(RecbUnits, HeaderUnitDetectsWrongKey) {
  const auto keys = test_keys("right");
  const auto wrong = test_keys("wrong");
  crypto::Aes128Engine aes(keys.content_key);
  crypto::Aes128Engine bad(wrong.content_key);
  auto r = rng(3);
  const Bytes r0 = r->bytes(8);
  const Bytes header = recb_header_unit(aes, r0);
  EXPECT_EQ(recb_open_header_unit(aes, header), r0);
  EXPECT_THROW(recb_open_header_unit(bad, header), CryptoError);
}

TEST(RecbUnits, RejectsOversizedBlocks) {
  const auto keys = test_keys();
  crypto::Aes128Engine aes(keys.content_key);
  auto r = rng(4);
  const Bytes r0 = r->bytes(8);
  EXPECT_THROW(recb_encrypt_unit(aes, r0, "123456789", *r), Error);
  EXPECT_THROW(recb_encrypt_unit(aes, r0, "", *r), Error);
}

// ------------------------------------------------- scheme-level properties

struct SchemeCase {
  Mode mode;
  std::size_t block_chars;
  Codec codec;
};

class SchemeRoundTripTest : public ::testing::TestWithParam<SchemeCase> {};

std::unique_ptr<IncrementalScheme> make_test_scheme(const SchemeCase& c,
                                                    std::uint64_t seed) {
  return make_scheme(test_header(c.mode, c.block_chars, c.codec), test_keys(),
                     rng(seed));
}

TEST_P(SchemeRoundTripTest, EncThenDecIsIdentity) {
  auto scheme = make_test_scheme(GetParam(), 11);
  const std::string plain = "The quick brown fox jumps over the lazy dog.";
  const std::string doc = scheme->initialize(plain);
  EXPECT_EQ(scheme->plaintext(), plain);
  EXPECT_EQ(scheme->ciphertext_doc(), doc);

  auto fresh = make_test_scheme(GetParam(), 12);
  fresh->load(doc);
  EXPECT_EQ(fresh->plaintext(), plain);
}

TEST_P(SchemeRoundTripTest, EmptyDocument) {
  auto scheme = make_test_scheme(GetParam(), 13);
  const std::string doc = scheme->initialize("");
  EXPECT_EQ(scheme->plaintext(), "");
  auto fresh = make_test_scheme(GetParam(), 14);
  fresh->load(doc);
  EXPECT_EQ(fresh->plaintext(), "");
}

TEST_P(SchemeRoundTripTest, CiphertextHidesPlaintext) {
  auto scheme = make_test_scheme(GetParam(), 15);
  const std::string plain = "SECRETWORD SECRETWORD SECRETWORD";
  const std::string doc = scheme->initialize(plain);
  EXPECT_EQ(doc.find("SECRETWORD"), std::string::npos);
}

TEST_P(SchemeRoundTripTest, FreshRandomnessPerEncryption) {
  auto a = make_test_scheme(GetParam(), 16);
  auto b = make_test_scheme(GetParam(), 17);
  const std::string plain = "same plaintext";
  EXPECT_NE(a->initialize(plain), b->initialize(plain));
}

TEST_P(SchemeRoundTripTest, WrongPasswordRejected) {
  auto scheme = make_test_scheme(GetParam(), 18);
  const std::string doc = scheme->initialize("attack at dawn");
  const SchemeCase c = GetParam();
  auto wrong = make_scheme(test_header(c.mode, c.block_chars, c.codec),
                           test_keys("not-the-password"), rng(19));
  EXPECT_THROW(wrong->load(doc), Error);
}

// The core invariant: the server, which only ever applies cdeltas to its
// stored string, stays byte-identical to the client's ciphertext mirror,
// and a fresh client opening the server's string recovers the plaintext.
TEST_P(SchemeRoundTripTest, ServerConsistencyUnderRandomEditSession) {
  const SchemeCase c = GetParam();
  auto scheme = make_test_scheme(c, 20);
  Xoshiro256 r(21);

  std::string plain = "In the beginning the document was without form.";
  std::string server_doc = scheme->initialize(plain);

  for (int step = 0; step < 120; ++step) {
    // Build a random plaintext delta (possibly multi-op).
    delta::Delta pdelta;
    std::size_t pos = 0;
    const int regions = 1 + static_cast<int>(r.below(3));
    for (int reg = 0; reg < regions && pos <= plain.size(); ++reg) {
      const std::size_t skip = r.below(plain.size() - pos + 1);
      if (skip > 0) pdelta.push(delta::Op::retain(skip));
      pos += skip;
      const std::size_t max_del = plain.size() - pos;
      const std::size_t del = r.below(std::min<std::size_t>(max_del, 9) + 1);
      if (del > 0) {
        pdelta.push(delta::Op::erase(del));
        pos += del;
      }
      std::string ins;
      const std::size_t n = r.below(9);
      for (std::size_t i = 0; i < n; ++i) {
        ins.push_back(static_cast<char>('A' + r.below(26)));
      }
      if (!ins.empty()) pdelta.push(delta::Op::insert(ins));
    }

    const std::string expected = pdelta.apply(plain);
    if (expected == plain) continue;

    const delta::Delta cdelta = scheme->transform_delta(pdelta);
    server_doc = cdelta.apply(server_doc);
    plain = expected;

    ASSERT_EQ(scheme->plaintext(), plain) << "step " << step;
    ASSERT_EQ(server_doc, scheme->ciphertext_doc()) << "step " << step;
  }

  // A fresh client (same password) opens the server's copy.
  auto fresh = make_test_scheme(c, 22);
  fresh->load(server_doc);
  EXPECT_EQ(fresh->plaintext(), plain);
}

TEST_P(SchemeRoundTripTest, TypingSessionAppendsAreCheap) {
  const SchemeCase c = GetParam();
  if (c.mode == Mode::kCoClo) GTEST_SKIP() << "CoClo is wholesale by design";
  auto scheme = make_test_scheme(c, 23);
  std::string server_doc = scheme->initialize("");
  std::string plain;

  const std::string paragraph(400, 'q');
  for (char ch : paragraph) {
    delta::Delta pdelta;
    if (!plain.empty()) pdelta.push(delta::Op::retain(plain.size()));
    pdelta.push(delta::Op::insert(std::string(1, ch)));
    const delta::Delta cdelta = scheme->transform_delta(pdelta);
    server_doc = cdelta.apply(server_doc);
    plain.push_back(ch);
  }
  EXPECT_EQ(server_doc, scheme->ciphertext_doc());
  // Incremental work is bounded: every keystroke touches O(1) blocks, so
  // the total re-encryption count is linear with a small constant, not
  // quadratic as wholesale re-encryption would be.
  EXPECT_LT(scheme->stats().blocks_reencrypted, 3 * 400u);
  auto fresh = make_test_scheme(c, 24);
  fresh->load(server_doc);
  EXPECT_EQ(fresh->plaintext(), plain);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SchemeRoundTripTest,
    ::testing::Values(SchemeCase{Mode::kRecb, 8, Codec::kBase32},
                      SchemeCase{Mode::kRecb, 1, Codec::kBase32},
                      SchemeCase{Mode::kRecb, 3, Codec::kBase64Url},
                      SchemeCase{Mode::kRpc, 8, Codec::kBase32},
                      SchemeCase{Mode::kRpc, 1, Codec::kBase32},
                      SchemeCase{Mode::kRpc, 5, Codec::kBase64Url},
                      SchemeCase{Mode::kCoClo, 8, Codec::kBase32}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string name = std::string(mode_name(info.param.mode)) + "_b" +
                         std::to_string(info.param.block_chars) +
                         (info.param.codec == Codec::kBase32 ? "_b32" : "_b64");
      return name;
    });

// ------------------------------------------------------ integrity (RPC §VI)

class RpcIntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scheme_ = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                          test_keys(), rng(30));
    doc_ = scheme_->initialize("integrity matters: abcdefghijklmnop");
    header_ = test_header(Mode::kRpc, 4);
    width_ = header_.unit_width();
    prefix_ = header_.prefix_chars();
  }

  std::string unit_str(const std::string& doc, std::size_t u) const {
    return doc.substr(prefix_ + u * width_, width_);
  }

  std::string with_unit(const std::string& doc, std::size_t u,
                        const std::string& replacement) const {
    std::string out = doc;
    out.replace(prefix_ + u * width_, width_, replacement);
    return out;
  }

  void expect_rejected(const std::string& doc) {
    auto fresh = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                             test_keys(), rng(31));
    EXPECT_THROW(fresh->load(doc), IntegrityError);
  }

  std::unique_ptr<RpcScheme> scheme_;
  std::string doc_;
  ContainerHeader header_ = test_header(Mode::kRpc, 4);
  std::size_t width_ = 0;
  std::size_t prefix_ = 0;
};

TEST_F(RpcIntegrityTest, AcceptsUntamperedDocument) {
  auto fresh = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                           test_keys(), rng(32));
  fresh->load(doc_);
  EXPECT_EQ(fresh->plaintext(), "integrity matters: abcdefghijklmnop");
}

TEST_F(RpcIntegrityTest, DetectsBlockSwap) {
  const std::string swapped = with_unit(
      with_unit(doc_, 1, unit_str(doc_, 2)), 2, unit_str(doc_, 1));
  expect_rejected(swapped);
}

TEST_F(RpcIntegrityTest, DetectsBlockDuplication) {
  expect_rejected(with_unit(doc_, 2, unit_str(doc_, 1)));
}

TEST_F(RpcIntegrityTest, DetectsBitFlip) {
  std::string flipped = doc_;
  // Flip a character inside unit 1 (swap to a different base32 char).
  const std::size_t target = prefix_ + width_ + 3;
  flipped[target] = flipped[target] == 'A' ? 'B' : 'A';
  expect_rejected(flipped);
}

TEST_F(RpcIntegrityTest, DetectsTruncation) {
  // Remove one data unit entirely (chain no longer reaches r0 with the
  // expected aggregates).
  std::string truncated = doc_;
  truncated.erase(prefix_ + width_, width_);
  expect_rejected(truncated);
}

TEST_F(RpcIntegrityTest, DetectsCrossDocumentSubstitution) {
  // A valid unit from a different document (same key!) cannot be spliced in.
  auto other = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                           test_keys(), rng(33));
  const std::string other_doc = other->initialize("another document entirely");
  expect_rejected(with_unit(doc_, 1, unit_str(other_doc, 1)));
}

TEST_F(RpcIntegrityTest, DetectsStaleBlockReplay) {
  // Apply an edit, then replay the pre-edit unit at its old position.
  delta::Delta pdelta;
  pdelta.push(delta::Op::retain(4));
  pdelta.push(delta::Op::erase(4));
  pdelta.push(delta::Op::insert("XXXX"));
  const std::string before = doc_;
  const delta::Delta cdelta = scheme_->transform_delta(pdelta);
  const std::string after = cdelta.apply(doc_);

  // Find a unit that changed and restore its old bytes.
  bool replayed = false;
  const std::size_t units = (after.size() - prefix_) / width_;
  for (std::size_t u = 0; u < units && !replayed; ++u) {
    if (unit_str(after, u) != unit_str(before, u)) {
      expect_rejected(with_unit(after, u, unit_str(before, u)));
      replayed = true;
    }
  }
  EXPECT_TRUE(replayed);
}

TEST_F(RpcIntegrityTest, LengthAmendmentCatchesWholeChainForgery) {
  // Without the amendment, an attacker who strips data blocks *and* fixes
  // the chain would need the checksum to still match; the length field
  // closes the remaining degrees of freedom. Here we verify the negative
  // control: an unamended scheme accepts a document whose FINAL pad was
  // randomised, while the amended scheme insists on the exact length.
  auto unamended = std::make_unique<RpcScheme>(
      test_header(Mode::kRpc, 4), test_keys(), rng(34), BlockPolicy{},
      /*length_amendment=*/false);
  const std::string doc = unamended->initialize("forgeable content");
  auto reader_unamended = std::make_unique<RpcScheme>(
      test_header(Mode::kRpc, 4), test_keys(), rng(35), BlockPolicy{},
      /*length_amendment=*/false);
  reader_unamended->load(doc);  // accepted: pad is ignored
  EXPECT_EQ(reader_unamended->plaintext(), "forgeable content");

  auto amended_reader = std::make_unique<RpcScheme>(
      test_header(Mode::kRpc, 4), test_keys(), rng(36));
  // The unamended writer put random bytes where the amended reader expects
  // the document length — rejected with overwhelming probability.
  EXPECT_THROW(amended_reader->load(doc), IntegrityError);
}

// rECB, by design, does NOT detect substitution of validly-encrypted blocks
// from the same document (§VI-A: "Our privacy-only encryption scheme cannot
// withstand these attacks") — negative test documenting the limitation.
TEST(RecbIntegrityLimitation, AcceptsBlockSubstitution) {
  auto scheme = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 4),
                                             test_keys(), rng(40));
  const std::string doc = scheme->initialize("abcdefghijklmnop");
  const ContainerHeader h = test_header(Mode::kRecb, 4);
  const std::size_t w = h.unit_width();
  const std::size_t p = h.prefix_chars();

  // Duplicate data unit 1 over data unit 2 (units 2 and 3 of the doc).
  std::string tampered = doc;
  tampered.replace(p + 3 * w, w, doc.substr(p + 2 * w, w));

  auto fresh = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 4),
                                            test_keys(), rng(41));
  fresh->load(tampered);  // silently accepted
  EXPECT_NE(fresh->plaintext(), "abcdefghijklmnop");  // content changed!
}

// ------------------------------------------------------------------- CoClo

TEST(CoClo, WholesaleReencryptionOnEveryUpdate) {
  auto scheme = std::make_unique<CoCloScheme>(test_header(Mode::kCoClo, 8),
                                              test_keys(), rng(50));
  std::string server_doc = scheme->initialize(std::string(100, 'x'));
  const std::size_t after_init = scheme->stats().blocks_reencrypted;
  EXPECT_EQ(after_init, 13u);  // ceil(100/8)

  delta::Delta pdelta;
  pdelta.push(delta::Op::retain(50));
  pdelta.push(delta::Op::insert("y"));
  const delta::Delta cdelta = scheme->transform_delta(pdelta);
  server_doc = cdelta.apply(server_doc);

  // One keystroke re-encrypted the whole document again.
  EXPECT_GE(scheme->stats().blocks_reencrypted, after_init + 13u);
  EXPECT_EQ(server_doc, scheme->ciphertext_doc());

  auto fresh = std::make_unique<CoCloScheme>(test_header(Mode::kCoClo, 8),
                                             test_keys(), rng(51));
  fresh->load(server_doc);
  EXPECT_EQ(fresh->plaintext(),
            std::string(50, 'x') + "y" + std::string(50, 'x'));
}

TEST(CoClo, CdeltaIsWholeBody) {
  auto scheme = std::make_unique<CoCloScheme>(test_header(Mode::kCoClo, 8),
                                              test_keys(), rng(52));
  scheme->initialize(std::string(1000, 'x'));
  delta::Delta pdelta;
  pdelta.push(delta::Op::insert("1"));
  const delta::Delta cdelta = scheme->transform_delta(pdelta);
  // The insert carries the entire new body (~ciphertext of 1001 chars).
  std::size_t inserted = 0;
  for (const auto& op : cdelta.ops()) {
    if (op.kind == delta::OpKind::kInsert) inserted += op.count;
  }
  EXPECT_GT(inserted, 1000u);
}

// --------------------------------------------------------------- compaction

TEST(Compaction, RestoresIdealBlowupAndServerStaysConsistent) {
  auto scheme = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 8),
                                             test_keys(), rng(70));
  Xoshiro256 r(71);
  std::string plain(4000, 'p');
  std::string server_doc = scheme->initialize(plain);

  // Fragment the document with scattered small deletions.
  for (int i = 0; i < 120; ++i) {
    const std::size_t pos = r.below(plain.size() - 3);
    delta::Delta d;
    if (pos > 0) d.push(delta::Op::retain(pos));
    d.push(delta::Op::erase(2));
    plain = d.apply(plain);
    server_doc = scheme->transform_delta(d).apply(server_doc);
  }
  const double fragmented_fill = scheme->stats().average_fill(8);
  EXPECT_LT(fragmented_fill, 0.99);

  const delta::Delta cdelta = scheme->compact();
  server_doc = cdelta.apply(server_doc);

  EXPECT_EQ(server_doc, scheme->ciphertext_doc());
  EXPECT_EQ(scheme->plaintext(), plain);
  EXPECT_GT(scheme->stats().average_fill(8), fragmented_fill);
  // All blocks full except possibly the last.
  EXPECT_EQ(scheme->stats().block_count, (plain.size() + 7) / 8);

  auto fresh = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 8),
                                            test_keys(), rng(72));
  fresh->load(server_doc);
  EXPECT_EQ(fresh->plaintext(), plain);
}

TEST(Compaction, WorksForRpcAndKeepsIntegrity) {
  auto scheme = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                            test_keys(), rng(73));
  std::string server_doc = scheme->initialize("compact me properly, please");
  delta::Delta edit;
  edit.push(delta::Op::retain(3));
  edit.push(delta::Op::erase(4));
  server_doc = scheme->transform_delta(edit).apply(server_doc);

  server_doc = scheme->compact().apply(server_doc);
  auto fresh = std::make_unique<RpcScheme>(test_header(Mode::kRpc, 4),
                                           test_keys(), rng(74));
  fresh->load(server_doc);  // chain + checksum verify
  EXPECT_EQ(fresh->plaintext(), "com me properly, please");
}

TEST(Compaction, CoCloIsNoOp) {
  auto scheme = std::make_unique<CoCloScheme>(test_header(Mode::kCoClo, 8),
                                              test_keys(), rng(75));
  scheme->initialize("whatever");
  EXPECT_TRUE(scheme->compact().empty());
}

// ------------------------------------------------------------------- stats

TEST(SchemeStats, BlowupMatchesLayoutArithmetic) {
  auto scheme = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 8),
                                             test_keys(), rng(60));
  scheme->initialize(std::string(8000, 'a'));
  const SchemeStats s = scheme->stats();
  EXPECT_EQ(s.plaintext_chars, 8000u);
  EXPECT_EQ(s.block_count, 1000u);
  // 28 encoded chars per 8 plaintext chars -> 3.5x plus header overhead.
  EXPECT_NEAR(s.blowup(), 3.5, 0.05);
  EXPECT_NEAR(s.average_fill(8), 1.0, 1e-9);
}

TEST(SchemeStats, BlockSizeOneBlowup) {
  auto scheme = std::make_unique<RecbScheme>(test_header(Mode::kRecb, 1),
                                             test_keys(), rng(61));
  scheme->initialize(std::string(2000, 'a'));
  // 28 encoded chars per plaintext char.
  EXPECT_NEAR(scheme->stats().blowup(), 28.0, 0.1);
}

}  // namespace
}  // namespace privedit::enc
