// Tests for the real-socket substrate (§III option 1): TCP streams, the
// threaded HTTP server, the client channel, and the standalone mediating
// proxy end to end over loopback.

#include <gtest/gtest.h>

#include <thread>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/proxy.hpp"
#include "privedit/net/http_server.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/util/error.hpp"

namespace privedit::net {
namespace {

TEST(TcpSocket, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
  listener.shutdown();
}

TEST(TcpSocket, RoundTripBytes) {
  TcpListener listener(0);
  std::thread server([&listener] {
    TcpStream conn = listener.accept();
    const std::string got = conn.read_some();
    conn.write_all("pong:" + got);
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.write_all("ping");
  client.set_read_timeout_ms(2000);
  EXPECT_EQ(client.read_some(), "pong:ping");
  server.join();
  listener.shutdown();
}

TEST(TcpSocket, ConnectToClosedPortFails) {
  // Bind-then-close to find a (very likely) dead port.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  EXPECT_THROW(TcpStream::connect(dead_port), ProtocolError);
}

TEST(ReadHttpMessage, ReassemblesSplitMessages) {
  TcpListener listener(0);
  std::thread sender([&listener] {
    TcpStream conn = listener.accept();
    // Drip the message in awkward pieces.
    conn.write_all("POST /x HTTP/1.1\r\nConte");
    conn.write_all("nt-Length: 11\r\n\r\nhello");
    conn.write_all(" world");
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout_ms(2000);
  const std::string wire = read_http_message(client, 1 << 20);
  const HttpRequest req = HttpRequest::parse(wire);
  EXPECT_EQ(req.body, "hello world");
  sender.join();
  listener.shutdown();
}

TEST(ReadHttpMessage, RejectsOversize) {
  TcpListener listener(0);
  std::thread sender([&listener] {
    TcpStream conn = listener.accept();
    conn.write_all("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n" +
                   std::string(99, 'a'));
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout_ms(2000);
  EXPECT_THROW(read_http_message(client, 10), ProtocolError);
  sender.join();
  listener.shutdown();
}

TEST(HttpServerTest, ServesOverRealSockets) {
  HttpServer server(0, [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.body);
  });
  TcpChannel channel(server.port());
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", "payload"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "echo:payload");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServerTest, ConcurrentClients) {
  std::atomic<int> hits{0};
  HttpServer server(0, [&hits](const HttpRequest& req) {
    ++hits;
    return HttpResponse::make(200, req.body);
  });
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&server, &ok, i] {
      TcpChannel channel(server.port());
      const std::string body = "client-" + std::to_string(i);
      const HttpResponse resp =
          channel.round_trip(HttpRequest::post_form("/x", body));
      if (resp.ok() && resp.body == body) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 16);
  EXPECT_EQ(hits.load(), 16);
}

TEST(HttpServerTest, HandlerExceptionsBecome500) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw ProtocolError("boom");
  });
  TcpChannel channel(server.port());
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", ""));
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("boom"), std::string::npos);
}

TEST(MediatingProxyTest, FullStackOverRealSockets) {
  // Real HTTP end to end: client -> proxy (mediator) -> service.
  cloud::GDocsServer gdocs;
  HttpServer service(0, serialize_handler([&gdocs](const HttpRequest& r) {
                       return gdocs.handle(r);
                     }));

  extension::MediatorConfig config;
  config.password = "proxy-pass";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 10;
  config.rng_factory = extension::seeded_rng_factory(91);
  extension::MediatingProxy proxy(0, service.port(), std::move(config));

  TcpChannel via_proxy(proxy.port());
  client::GDocsClient alice(&via_proxy, "tcp-doc");
  alice.create();
  alice.insert(0, "over real sockets, still private");
  alice.save();
  alice.insert(0, "and incremental: ");
  alice.save();

  const std::string stored = *gdocs.raw_content("tcp-doc");
  EXPECT_EQ(stored.find("private"), std::string::npos);
  EXPECT_EQ(stored.find("sockets"), std::string::npos);

  // A second client through the same proxy opens the shared document.
  TcpChannel via_proxy2(proxy.port());
  client::GDocsClient bob(&via_proxy2, "tcp-doc");
  bob.open();
  EXPECT_EQ(bob.text(), "and incremental: over real sockets, still private");

  // Unknown traffic is blocked at the proxy, never reaching the service.
  HttpRequest telemetry = HttpRequest::post_form("/telemetry", "secrets!");
  EXPECT_EQ(via_proxy.round_trip(telemetry).status, 403);
  EXPECT_GE(proxy.counters().requests_blocked, 1u);

  proxy.stop();
  service.stop();
}

TEST(MediatingProxyTest, DirectClientBypassShowsPlaintextRisk) {
  // Control: talking to the service directly (no proxy) stores plaintext —
  // the situation the paper's tool exists to prevent.
  cloud::GDocsServer gdocs;
  HttpServer service(0, serialize_handler([&gdocs](const HttpRequest& r) {
                       return gdocs.handle(r);
                     }));
  TcpChannel direct(service.port());
  client::GDocsClient naive(&direct, "doc");
  naive.create();
  naive.insert(0, "exposed secret");
  naive.save();
  EXPECT_EQ(gdocs.raw_content("doc"), "exposed secret");
  service.stop();
}

}  // namespace
}  // namespace privedit::net
