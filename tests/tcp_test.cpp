// Tests for the real-socket substrate (§III option 1): TCP streams, the
// threaded HTTP server, the client channel, and the standalone mediating
// proxy end to end over loopback.

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/proxy.hpp"
#include "privedit/net/http_server.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/util/error.hpp"

namespace privedit::net {
namespace {

// The served_ counter is incremented by the worker *after* the response
// write returns, so a client that has read the full response can observe
// the counter a beat early — poll instead of asserting instantly.
bool poll_until(const std::function<bool()>& done, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(TcpSocket, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
  listener.shutdown();
}

TEST(TcpSocket, RoundTripBytes) {
  TcpListener listener(0);
  std::thread server([&listener] {
    TcpStream conn = listener.accept();
    const std::string got = conn.read_some();
    conn.write_all("pong:" + got);
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.write_all("ping");
  client.set_read_timeout_ms(2000);
  EXPECT_EQ(client.read_some(), "pong:ping");
  server.join();
  listener.shutdown();
}

TEST(TcpSocket, ConnectToClosedPortFails) {
  // Bind-then-close to find a (very likely) dead port.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  EXPECT_THROW(TcpStream::connect(dead_port), ProtocolError);
}

TEST(ReadHttpMessage, ReassemblesSplitMessages) {
  TcpListener listener(0);
  std::thread sender([&listener] {
    TcpStream conn = listener.accept();
    // Drip the message in awkward pieces.
    conn.write_all("POST /x HTTP/1.1\r\nConte");
    conn.write_all("nt-Length: 11\r\n\r\nhello");
    conn.write_all(" world");
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout_ms(2000);
  const std::string wire = read_http_message(client, 1 << 20);
  const HttpRequest req = HttpRequest::parse(wire);
  EXPECT_EQ(req.body, "hello world");
  sender.join();
  listener.shutdown();
}

TEST(ReadHttpMessage, RejectsOversize) {
  TcpListener listener(0);
  std::thread sender([&listener] {
    TcpStream conn = listener.accept();
    conn.write_all("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\n" +
                   std::string(99, 'a'));
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout_ms(2000);
  EXPECT_THROW(read_http_message(client, 10), ProtocolError);
  sender.join();
  listener.shutdown();
}

// Serves one canned message from a throwaway listener and runs
// read_http_message against it on the client side.
std::string read_via_listener(const std::string& wire_to_send,
                              std::size_t max_bytes) {
  TcpListener listener(0);
  std::thread sender([&listener, &wire_to_send] {
    TcpStream conn = listener.accept();
    conn.write_all(wire_to_send);
  });
  TcpStream client = TcpStream::connect(listener.port());
  client.set_read_timeout_ms(2000);
  std::string wire;
  try {
    wire = read_http_message(client, max_bytes);
  } catch (...) {
    sender.join();
    listener.shutdown();
    throw;
  }
  sender.join();
  listener.shutdown();
  return wire;
}

TEST(ReadHttpMessage, RejectsContentLengthTrailingGarbage) {
  // "123abc" must not silently parse as 123 — that desynchronises framing
  // and is the classic request-smuggling primitive.
  EXPECT_THROW(read_via_listener("POST /x HTTP/1.1\r\nContent-Length: "
                                 "3abc\r\n\r\nabcdef",
                                 1 << 20),
               ParseError);
}

TEST(ReadHttpMessage, RejectsConflictingDuplicateContentLength) {
  EXPECT_THROW(
      read_via_listener("POST /x HTTP/1.1\r\nContent-Length: 3\r\n"
                        "Content-Length: 5\r\n\r\nabcde",
                        1 << 20),
      ParseError);
}

TEST(ReadHttpMessage, AcceptsEqualDuplicateAndTrailingSpace) {
  const std::string wire = read_via_listener(
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3 \r\n\r\nabc",
      1 << 20);
  EXPECT_EQ(HttpRequest::parse(wire).body, "abc");
}

TEST(ReadHttpMessage, DeadlineBoundsDripFeeding) {
  // A peer dripping bytes forever must not hold the reader past the
  // overall deadline, even though each individual read succeeds.
  TcpListener listener(0);
  std::atomic<bool> stop{false};
  std::thread dripper([&listener, &stop] {
    try {
      TcpStream conn = listener.accept();
      conn.write_all("POST /x HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
      while (!stop.load()) {
        conn.write_all("a");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    } catch (const std::exception&) {
      // Client went away — expected.
    }
  });
  TcpStream client = TcpStream::connect(listener.port());
  try {
    read_http_message(client, 1 << 20, 250);
    FAIL() << "drip-fed message should have hit the deadline";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kTimeout);
  }
  stop.store(true);
  dripper.join();
  listener.shutdown();
}

TEST(TcpSocket, RefusedConnectIsClassified) {
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.shutdown();
  }
  try {
    TcpStream::connect(dead_port);
    FAIL() << "connect to dead port should throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kConnect);
  }
}

TEST(HttpServerTest, ServesOverRealSockets) {
  HttpServer server(0, [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.body);
  });
  TcpChannel channel(server.port());
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", "payload"));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "echo:payload");
  EXPECT_TRUE(poll_until([&server] { return server.requests_served() == 1; }));
}

TEST(HttpServerTest, ConcurrentClients) {
  std::atomic<int> hits{0};
  HttpServer server(0, [&hits](const HttpRequest& req) {
    ++hits;
    return HttpResponse::make(200, req.body);
  });
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&server, &ok, i] {
      TcpChannel channel(server.port());
      const std::string body = "client-" + std::to_string(i);
      const HttpResponse resp =
          channel.round_trip(HttpRequest::post_form("/x", body));
      if (resp.ok() && resp.body == body) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 16);
  EXPECT_EQ(hits.load(), 16);
}

TEST(HttpServerTest, HandlerExceptionsBecome500) {
  HttpServer server(0, [](const HttpRequest&) -> HttpResponse {
    throw ProtocolError("boom");
  });
  TcpChannel channel(server.port());
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", ""));
  EXPECT_EQ(resp.status, 500);
  EXPECT_NE(resp.body.find("boom"), std::string::npos);
}

TEST(HttpServerTest, SlowClientDoesNotBlockFastOnes) {
  // Regression for the pre-pool accept loop, which joined *all* connection
  // threads behind the slowest one: with workers occupied by silent
  // clients, fast requests must still be served promptly.
  HttpServerConfig config;
  config.worker_threads = 4;
  config.request_deadline_ms = 1000;
  HttpServer server(
      0,
      [](const HttpRequest& req) {
        return HttpResponse::make(200, "echo:" + req.body);
      },
      config);

  // Three connections that never send a byte, pinning up to three workers.
  std::vector<TcpStream> slow;
  for (int i = 0; i < 3; ++i) {
    slow.push_back(TcpStream::connect(server.port()));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 8; ++i) {
    TcpChannel channel(server.port());
    const HttpResponse resp =
        channel.round_trip(HttpRequest::post_form("/x", "fast"));
    EXPECT_EQ(resp.body, "echo:fast");
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // Well under the 1 s deadline the slow clients are charged against.
  EXPECT_LT(elapsed.count(), 800);
  slow.clear();  // EOF the silent connections so stop() drains instantly
  server.stop();
}

TEST(HttpServerTest, RejectsWith503WhenSaturated) {
  std::atomic<int> entered{0};
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());

  HttpServerConfig config;
  config.worker_threads = 1;
  config.accept_queue_capacity = 1;
  HttpServer server(
      0,
      [&entered, release](const HttpRequest&) {
        ++entered;
        release.wait();
        return HttpResponse::make(200, "done");
      },
      config);

  const std::string req = "POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n";

  // First connection occupies the only worker...
  TcpStream a = TcpStream::connect(server.port());
  a.write_all(req);
  while (entered.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...second fills the single queue slot...
  TcpStream b = TcpStream::connect(server.port());
  b.write_all(req);
  while (server.backlog() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...third is shed immediately with 503, without touching a worker.
  TcpStream c = TcpStream::connect(server.port());
  c.write_all(req);
  c.set_read_timeout_ms(2000);
  const HttpResponse shed =
      HttpResponse::parse(read_http_message(c, 1 << 20, 2000));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.headers.get("Retry-After"), "1");
  EXPECT_GE(server.counters().rejected_busy, 1u);

  release_promise.set_value();
  a.set_read_timeout_ms(2000);
  b.set_read_timeout_ms(2000);
  EXPECT_EQ(HttpResponse::parse(read_http_message(a, 1 << 20, 2000)).status,
            200);
  EXPECT_EQ(HttpResponse::parse(read_http_message(b, 1 << 20, 2000)).status,
            200);
}

TEST(HttpServerTest, CountsOnlySuccessfulWrites) {
  // The peer disappears (RST via SO_LINGER 0) before the handler's large
  // response can be written: served_ must NOT count it.
  HttpServer server(0, [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    return HttpResponse::make(200, std::string(4 * 1024 * 1024, 'x'));
  });
  {
    TcpStream client = TcpStream::connect(server.port());
    client.write_all("POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    const linger lg{1, 0};
    ::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }  // destructor closes with RST

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.counters().write_failures == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.counters().write_failures, 1u);
  EXPECT_EQ(server.counters().served, 0u);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(HttpServerTest, DropsConnectionsPastRequestDeadline) {
  HttpServerConfig config;
  config.request_deadline_ms = 200;
  HttpServer server(
      0, [](const HttpRequest&) { return HttpResponse::make(200, "ok"); },
      config);
  TcpStream stall = TcpStream::connect(server.port());
  stall.write_all("POST /x HTTP/1.1\r\nConten");  // partial head, then stall

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (server.counters().dropped == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.counters().dropped, 1u);
  EXPECT_EQ(server.counters().served, 0u);
}

TEST(HttpServerTest, DrainsQueuedConnectionsOnStop) {
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());
  HttpServerConfig config;
  config.worker_threads = 2;
  HttpServer server(
      0,
      [release](const HttpRequest& req) {
        release.wait();
        return HttpResponse::make(200, "echo:" + req.body);
      },
      config);

  // Four full requests: two land in workers, two sit in the queue.
  std::vector<TcpStream> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(TcpStream::connect(server.port()));
    conns.back().write_all(
        "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
  }
  while (server.backlog() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // stop() while two connections are still queued: graceful drain must
  // serve them, not abandon them.
  std::thread stopper([&server] { server.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  release_promise.set_value();
  stopper.join();

  for (TcpStream& conn : conns) {
    conn.set_read_timeout_ms(2000);
    const HttpResponse resp =
        HttpResponse::parse(read_http_message(conn, 1 << 20, 2000));
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "echo:hi");
  }
  EXPECT_EQ(server.counters().served, 4u);
  EXPECT_EQ(server.backlog(), 0u);
}

TEST(HttpServerTest, ManyConcurrentClients) {
  std::atomic<int> hits{0};
  HttpServerConfig config;
  config.worker_threads = 8;
  config.accept_queue_capacity = 256;
  HttpServer server(
      0,
      [&hits](const HttpRequest& req) {
        ++hits;
        return HttpResponse::make(200, req.body);
      },
      config);
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  for (int i = 0; i < 64; ++i) {
    clients.emplace_back([&server, &ok, i] {
      for (int r = 0; r < 2; ++r) {
        TcpChannel channel(server.port());
        const std::string body =
            "client-" + std::to_string(i) + "-" + std::to_string(r);
        const HttpResponse resp =
            channel.round_trip(HttpRequest::post_form("/x", body));
        if (resp.ok() && resp.body == body) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 128);
  EXPECT_EQ(hits.load(), 128);
  EXPECT_TRUE(
      poll_until([&server] { return server.requests_served() == 128; }));
  server.stop();
  EXPECT_EQ(server.backlog(), 0u);
}

TEST(TcpChannelRetry, RetriesRefusedConnectUntilServerUp) {
  std::uint16_t port;
  {
    TcpListener probe(0);
    port = probe.port();
    probe.shutdown();
  }
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_us = 20'000;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 200'000;
  policy.jitter = 0.25;

  std::unique_ptr<HttpServer> late_server;
  std::thread starter([&late_server, port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    late_server = std::make_unique<HttpServer>(port, [](const HttpRequest&) {
      return HttpResponse::make(200, "finally up");
    });
  });

  TcpChannel channel(port, 2000, policy);
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", ""));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "finally up");
  EXPECT_GE(channel.counters().retries, 1u);
  EXPECT_EQ(channel.counters().giveups, 0u);
  starter.join();
  late_server->stop();
}

TEST(TcpChannelRetry, RetriesTruncatedResponse) {
  TcpListener listener(0);
  std::thread flaky([&listener] {
    {
      // First connection: deliver half a response, then close mid-message.
      TcpStream conn = listener.accept();
      conn.set_read_timeout_ms(2000);
      read_http_message(conn, 1 << 20);
      conn.write_all("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc");
    }
    {
      // Retry lands here and gets the full message.
      TcpStream conn = listener.accept();
      conn.set_read_timeout_ms(2000);
      read_http_message(conn, 1 << 20);
      conn.write_all(HttpResponse::make(200, "recovered").serialize());
    }
  });

  RetryPolicy policy;
  policy.base_backoff_us = 1000;
  TcpChannel channel(listener.port(), 2000, policy);
  const HttpResponse resp =
      channel.round_trip(HttpRequest::post_form("/x", "idempotent"));
  EXPECT_EQ(resp.body, "recovered");
  EXPECT_EQ(channel.counters().retries, 1u);
  flaky.join();
  listener.shutdown();
}

TEST(TcpChannelRetry, GivesUpAfterMaxAttempts) {
  std::uint16_t dead_port;
  {
    TcpListener probe(0);
    dead_port = probe.port();
    probe.shutdown();
  }
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 500;
  TcpChannel channel(dead_port, 500, policy);
  EXPECT_THROW(channel.round_trip(HttpRequest::post_form("/x", "")),
               TransportError);
  EXPECT_EQ(channel.counters().attempts, 3u);
  EXPECT_EQ(channel.counters().retries, 2u);
  EXPECT_EQ(channel.counters().giveups, 1u);
}

TEST(MediatingProxyTest, FullStackOverRealSockets) {
  // Real HTTP end to end: client -> proxy (mediator) -> service.
  cloud::GDocsServer gdocs;
  HttpServer service(0, serialize_handler([&gdocs](const HttpRequest& r) {
                       return gdocs.handle(r);
                     }));

  extension::MediatorConfig config;
  config.password = "proxy-pass";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 10;
  config.rng_factory = extension::seeded_rng_factory(91);
  extension::MediatingProxy proxy(0, service.port(), std::move(config));

  TcpChannel via_proxy(proxy.port());
  client::GDocsClient alice(&via_proxy, "tcp-doc");
  alice.create();
  alice.insert(0, "over real sockets, still private");
  alice.save();
  alice.insert(0, "and incremental: ");
  alice.save();

  const std::string stored = *gdocs.raw_content("tcp-doc");
  EXPECT_EQ(stored.find("private"), std::string::npos);
  EXPECT_EQ(stored.find("sockets"), std::string::npos);

  // A second client through the same proxy opens the shared document.
  TcpChannel via_proxy2(proxy.port());
  client::GDocsClient bob(&via_proxy2, "tcp-doc");
  bob.open();
  EXPECT_EQ(bob.text(), "and incremental: over real sockets, still private");

  // Unknown traffic is blocked at the proxy, never reaching the service.
  HttpRequest telemetry = HttpRequest::post_form("/telemetry", "secrets!");
  EXPECT_EQ(via_proxy.round_trip(telemetry).status, 403);
  EXPECT_GE(proxy.counters().requests_blocked, 1u);

  proxy.stop();
  service.stop();
}

TEST(MediatingProxyTest, DirectClientBypassShowsPlaintextRisk) {
  // Control: talking to the service directly (no proxy) stores plaintext —
  // the situation the paper's tool exists to prevent.
  cloud::GDocsServer gdocs;
  HttpServer service(0, serialize_handler([&gdocs](const HttpRequest& r) {
                       return gdocs.handle(r);
                     }));
  TcpChannel direct(service.port());
  client::GDocsClient naive(&direct, "doc");
  naive.create();
  naive.insert(0, "exposed secret");
  naive.save();
  EXPECT_EQ(gdocs.raw_content("doc"), "exposed secret");
  service.stop();
}

}  // namespace
}  // namespace privedit::net
