// Tests for the HTTP message model and the simulated transport.

#include <gtest/gtest.h>

#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/net/http.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/error.hpp"

namespace privedit::net {
namespace {

TEST(Headers, CaseInsensitiveLookup) {
  Headers h;
  h.set("Content-Type", "text/plain");
  EXPECT_EQ(h.get("content-type"), "text/plain");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/plain");
  EXPECT_TRUE(h.contains("Content-type"));
  EXPECT_FALSE(h.contains("X-Missing"));
}

TEST(Headers, SetReplacesAddAppends) {
  Headers h;
  h.add("X-A", "1");
  h.add("X-A", "2");
  EXPECT_EQ(h.entries().size(), 2u);
  h.set("x-a", "3");
  EXPECT_EQ(h.entries().size(), 2u);
  EXPECT_EQ(h.entries()[0].second, "3");
  EXPECT_EQ(h.remove("X-A"), 2u);
  EXPECT_TRUE(h.entries().empty());
}

TEST(HttpRequest, SerializeParseRoundTrip) {
  HttpRequest req = HttpRequest::post_form("/Doc?docID=abc%20d", "a=1&b=2");
  req.headers.set("X-Custom", "value");
  const std::string wire = req.serialize();
  const HttpRequest parsed = HttpRequest::parse(wire);
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.target, "/Doc?docID=abc%20d");
  EXPECT_EQ(parsed.path(), "/Doc");
  EXPECT_EQ(parsed.query_param("docID"), "abc d");
  EXPECT_EQ(parsed.headers.get("X-Custom"), "value");
  EXPECT_EQ(parsed.body, "a=1&b=2");
}

TEST(HttpRequest, BinaryBodySurvives) {
  HttpRequest req;
  req.method = "PUT";
  req.target = "/file/at/x";
  for (int i = 0; i < 256; ++i) req.body.push_back(static_cast<char>(i));
  const HttpRequest parsed = HttpRequest::parse(req.serialize());
  EXPECT_EQ(parsed.body, req.body);
}

TEST(HttpRequest, ParseErrors) {
  EXPECT_THROW(HttpRequest::parse("garbage"), ParseError);
  EXPECT_THROW(HttpRequest::parse("GET /\r\n\r\n"), ParseError);
  EXPECT_THROW(HttpRequest::parse("GET / HTTP/2\r\n\r\n"), ParseError);
  EXPECT_THROW(HttpRequest::parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
               ParseError);
  EXPECT_THROW(
      HttpRequest::parse("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
      ParseError);
  EXPECT_THROW(
      HttpRequest::parse("GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n"),
      ParseError);
}

TEST(HttpRequest, RejectsContentLengthGarbageAndConflicts) {
  // "123abc" must not silently parse as 123: std::from_chars stops at the
  // first non-digit, so the parser has to check the end pointer.
  EXPECT_THROW(
      HttpRequest::parse("POST / HTTP/1.1\r\nContent-Length: 3abc\r\n\r\nxyz"),
      ParseError);
  EXPECT_THROW(
      HttpRequest::parse("POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\nxyz"),
      ParseError);
  // Conflicting duplicates are a smuggling vector — reject, don't last-wins.
  EXPECT_THROW(HttpRequest::parse("POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                                  "Content-Length: 5\r\n\r\nxyzab"),
               ParseError);
  // Agreeing duplicates and trailing optional whitespace are tolerated.
  const HttpRequest ok =
      HttpRequest::parse("POST / HTTP/1.1\r\nContent-Length: 3\r\n"
                         "Content-Length: 3 \r\n\r\nxyz");
  EXPECT_EQ(ok.body, "xyz");
}

TEST(HttpRequest, QueryParamMissing) {
  HttpRequest req;
  req.target = "/Doc";
  EXPECT_FALSE(req.query_param("docID").has_value());
  req.target = "/Doc?other=1";
  EXPECT_FALSE(req.query_param("docID").has_value());
}

TEST(HttpResponse, SerializeParseRoundTrip) {
  HttpResponse resp = HttpResponse::make(409, "conflict body");
  const HttpResponse parsed = HttpResponse::parse(resp.serialize());
  EXPECT_EQ(parsed.status, 409);
  EXPECT_EQ(parsed.reason, "Conflict");
  EXPECT_EQ(parsed.body, "conflict body");
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(HttpResponse::make(204, "").ok());
}

TEST(HttpResponse, ParseErrors) {
  EXPECT_THROW(HttpResponse::parse("HTTP/1.1\r\n\r\n"), ParseError);
  EXPECT_THROW(HttpResponse::parse("HTTP/1.1 xx OK\r\n\r\n"), ParseError);
  EXPECT_THROW(HttpResponse::parse("NOPE 200 OK\r\n\r\n"), ParseError);
}

TEST(LatencyModel, MonotoneInSize) {
  LatencyModel model;
  model.jitter_us = 0;
  auto rng = crypto::CtrDrbg::from_seed(1);
  const auto small = model.round_trip_us(100, 100, *rng);
  const auto large = model.round_trip_us(100'000, 100, *rng);
  EXPECT_GT(large, small);
}

TEST(LatencyModel, JitterBounded) {
  LatencyModel model;
  model.base_us = 1000;
  model.jitter_us = 500;
  model.bytes_per_ms_up = 0;
  model.bytes_per_ms_down = 0;
  model.server_us_per_kb = 0;
  auto rng = crypto::CtrDrbg::from_seed(2);
  for (int i = 0; i < 100; ++i) {
    const auto us = model.round_trip_us(0, 0, *rng);
    EXPECT_GE(us, 1000u);
    EXPECT_LE(us, 1500u);
  }
}

TEST(LoopbackTransport, DeliversAndCharges) {
  SimClock clock;
  Handler echo = [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.body);
  };
  LatencyModel latency;
  latency.jitter_us = 0;
  LoopbackTransport transport(echo, &clock, latency,
                              crypto::CtrDrbg::from_seed(3));

  const HttpResponse resp =
      transport.round_trip(HttpRequest::post_form("/x", "payload"));
  EXPECT_EQ(resp.body, "echo:payload");
  EXPECT_GT(clock.now_us(), 0u);
  EXPECT_EQ(transport.stats().requests, 1u);
  EXPECT_GT(transport.stats().bytes_up, 0u);
  EXPECT_GT(transport.stats().bytes_down, 0u);
}

TEST(LoopbackTransport, TapCapturesWireBytes) {
  SimClock clock;
  Handler ok = [](const HttpRequest&) { return HttpResponse::make(200, "x"); };
  LoopbackTransport transport(ok, &clock, LatencyModel{},
                              crypto::CtrDrbg::from_seed(4));
  transport.enable_tap(true);
  transport.round_trip(HttpRequest::post_form("/x", "visible-on-wire"));
  ASSERT_EQ(transport.tap().size(), 2u);
  EXPECT_NE(transport.tap()[0].find("visible-on-wire"), std::string::npos);
  transport.clear_tap();
  EXPECT_TRUE(transport.tap().empty());
}

TEST(LoopbackTransport, NullArgsRejected) {
  SimClock clock;
  Handler ok = [](const HttpRequest&) { return HttpResponse::make(200, ""); };
  EXPECT_THROW(LoopbackTransport(nullptr, &clock, LatencyModel{},
                                 crypto::CtrDrbg::from_seed(5)),
               Error);
  EXPECT_THROW(
      LoopbackTransport(ok, nullptr, LatencyModel{},
                        crypto::CtrDrbg::from_seed(6)),
      Error);
  EXPECT_THROW(LoopbackTransport(ok, &clock, LatencyModel{}, nullptr), Error);
}

}  // namespace
}  // namespace privedit::net
