// Tests for the steganographic codec (§VI) and its integration with the
// container / scheme machinery.

#include <gtest/gtest.h>

#include <set>

#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/enc/scheme.hpp"
#include "privedit/enc/stego.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::enc {
namespace {

TEST(Stego, DictionaryIsInjective) {
  std::set<std::string> seen;
  for (int v = 0; v < 256; ++v) {
    const auto word = std::string(stego_word(static_cast<std::uint8_t>(v)));
    EXPECT_EQ(word.size(), 5u);
    for (char c : word) EXPECT_TRUE(c >= 'a' && c <= 'z');
    EXPECT_TRUE(seen.insert(word).second) << "duplicate word " << word;
  }
}

TEST(Stego, RoundTripAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const std::string encoded = stego_encode(all);
  EXPECT_EQ(encoded.size(), 256u * kStegoCharsPerByte);
  EXPECT_EQ(stego_decode(encoded), all);
}

TEST(Stego, RandomRoundTrips) {
  Xoshiro256 rng(1);
  for (std::size_t n : {0u, 1u, 17u, 100u}) {
    const Bytes data = rng.bytes(n);
    EXPECT_EQ(stego_decode(stego_encode(data)), data);
  }
}

TEST(Stego, RejectsMalformed) {
  EXPECT_THROW(stego_decode("abc"), ParseError);            // bad length
  EXPECT_THROW(stego_decode("zzzzz "), ParseError);         // unknown word
  const std::string good = stego_encode(Bytes{0x42});
  std::string no_space = good;
  no_space[5] = 'x';
  EXPECT_THROW(stego_decode(no_space), ParseError);
}

TEST(Stego, FullSchemeRoundTrip) {
  ContainerHeader header;
  header.mode = Mode::kRpc;
  header.block_chars = 8;
  header.codec = Codec::kStego;
  header.kdf_iterations = 10;
  header.salt = Bytes(16, 0x42);
  const auto keys = crypto::derive_document_keys(
      "pw", header.salt, crypto::KdfParams{.iterations = 10});

  auto scheme = make_scheme(header, keys, crypto::CtrDrbg::from_seed(1));
  const std::string doc = scheme->initialize("hide me among the words");

  // The stored document reads as words: only lowercase letters and spaces
  // after the one-character codec tag.
  EXPECT_EQ(doc[0], 's');
  for (std::size_t i = 1; i < doc.size(); ++i) {
    const char c = doc[i];
    EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ') << "at " << i;
  }

  // Incremental updates still work (fixed unit width).
  delta::Delta edit;
  edit.push(delta::Op::retain(5));
  edit.push(delta::Op::insert("XYZ"));
  const delta::Delta cdelta = scheme->transform_delta(edit);
  const std::string updated = cdelta.apply(doc);
  EXPECT_EQ(updated, scheme->ciphertext_doc());

  auto reader = make_scheme(header, keys, crypto::CtrDrbg::from_seed(2));
  reader->load(updated);
  EXPECT_EQ(reader->plaintext(), "hide XYZme among the words");
}

TEST(Stego, BlowupIsTheCostOfDisguise) {
  ContainerHeader header;
  header.mode = Mode::kRecb;
  header.block_chars = 8;
  header.codec = Codec::kStego;
  header.kdf_iterations = 10;
  header.salt = Bytes(16, 0x42);
  const auto keys = crypto::derive_document_keys(
      "pw", header.salt, crypto::KdfParams{.iterations = 10});
  auto scheme = make_scheme(header, keys, crypto::CtrDrbg::from_seed(3));
  scheme->initialize(std::string(8000, 'a'));
  // 17 raw bytes -> 102 chars per 8 plaintext chars: ~12.75x + header.
  EXPECT_NEAR(scheme->stats().blowup(), 12.75, 0.1);
}

}  // namespace
}  // namespace privedit::enc
