// Focused branch coverage for the GDocsMediator beyond the end-to-end
// flows in extension_test.cpp: blocking decisions, error propagation,
// counters, and edge configurations.

#include <gtest/gtest.h>

#include <memory>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {
namespace {

struct Stack {
  explicit Stack(MediatorConfig config = base_config()) {
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(600));
    mediator = std::make_unique<GDocsMediator>(transport.get(),
                                               std::move(config), &clock);
  }
  static MediatorConfig base_config() {
    MediatorConfig c;
    c.password = "pw";
    c.scheme.kdf_iterations = 5;
    c.rng_factory = seeded_rng_factory(601);
    return c;
  }
  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<GDocsMediator> mediator;
};

TEST(MediatorBranches, NonPostAndWrongPathBlocked) {
  Stack stack;
  net::HttpRequest get;
  get.method = "GET";
  get.target = "/Doc?docID=d";
  EXPECT_EQ(stack.mediator->round_trip(get).status, 403);
  EXPECT_EQ(stack.mediator
                ->round_trip(net::HttpRequest::post_form("/Elsewhere", ""))
                .status,
            403);
  EXPECT_EQ(stack.mediator->counters().requests_blocked, 2u);
  EXPECT_EQ(stack.server.counters().bad_requests, 0u);  // never forwarded
}

TEST(MediatorBranches, MissingDocIdBlocked) {
  Stack stack;
  EXPECT_EQ(
      stack.mediator->round_trip(net::HttpRequest::post_form("/Doc", "cmd=open"))
          .status,
      403);
}

TEST(MediatorBranches, SaveWithoutSessionBlocked) {
  Stack stack;
  // Forge a save for a document that never went through create/open.
  FormData form;
  form.add("session", "1");
  form.add("rev", "0");
  form.add("docContents", "leak me");
  const auto resp = stack.mediator->round_trip(
      net::HttpRequest::post_form("/Doc?docID=ghost", form.encode()));
  EXPECT_EQ(resp.status, 403);
  EXPECT_FALSE(stack.server.raw_content("ghost").has_value());
}

TEST(MediatorBranches, FailedCreateDoesNotCreateSession) {
  Stack stack;
  // The server 404s unknown endpoints; simulate create failure by sending
  // to a mediator whose upstream rejects everything.
  net::SimClock clock;
  net::LoopbackTransport broken(
      [](const net::HttpRequest&) {
        return net::HttpResponse::make(500, "down");
      },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(602));
  GDocsMediator mediator(&broken, Stack::base_config(), &clock);
  client::GDocsClient c(&mediator, "d");
  EXPECT_THROW(c.create(), ProtocolError);
  EXPECT_FALSE(mediator.managed_plaintext("d").has_value());
}

TEST(MediatorBranches, OpenOfTamperedDocPropagatesIntegrityError) {
  MediatorConfig config = Stack::base_config();
  config.scheme.mode = enc::Mode::kRpc;
  Stack stack(std::move(config));
  client::GDocsClient writer(stack.mediator.get(), "d");
  writer.create();
  writer.insert(0, "to be vandalised");
  writer.save();
  std::string bad = *stack.server.raw_content("d");
  bad[bad.size() - 3] = bad[bad.size() - 3] == 'A' ? 'B' : 'A';
  stack.server.set_raw_content("d", bad);

  MediatorConfig config2 = Stack::base_config();
  config2.scheme.mode = enc::Mode::kRpc;
  GDocsMediator mediator2(stack.transport.get(), std::move(config2),
                          &stack.clock);
  client::GDocsClient reader(&mediator2, "d");
  EXPECT_THROW(reader.open(), Error);
}

TEST(MediatorBranches, ManagedStatsReflectDocument) {
  Stack stack;
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, std::string(800, 'z'));
  c.save();
  const auto stats = stack.mediator->managed_stats("d");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->plaintext_chars, 800u);
  EXPECT_EQ(stats->block_count, 100u);  // b=8
  EXPECT_FALSE(stack.mediator->managed_stats("other").has_value());
}

TEST(MediatorBranches, ReopenSameMediatorReplacesSession) {
  Stack stack;
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, "first body");
  c.save();
  // Re-open through the same mediator (e.g. user reloads the page).
  c.open();
  EXPECT_EQ(c.text(), "first body");
  c.insert(0, "again: ");
  c.save();
  EXPECT_EQ(stack.mediator->managed_plaintext("d"), "again: first body");
}

TEST(MediatorBranches, PaddingWithoutClockStillPads) {
  MediatorConfig config = Stack::base_config();
  config.pad_bucket = 256;
  config.random_delay_us = 1000;  // must be a no-op without a clock
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(603));
  GDocsMediator mediator(&transport, std::move(config), /*clock=*/nullptr);
  client::GDocsClient c(&mediator, "d");
  c.create();
  c.insert(0, "padded content");
  transport.enable_tap(true);
  c.save();
  bool checked = false;
  for (const std::string& frame : transport.tap()) {
    if (frame.rfind("POST", 0) != 0) continue;
    const net::HttpRequest req = net::HttpRequest::parse(frame);
    if (req.body.find("pad=") != std::string::npos) {
      EXPECT_EQ(req.body.size() % 256, 0u);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(MediatorBranches, EmptyDeltaSaveRoundTrips) {
  Stack stack;
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, "abc");
  c.save();
  // A delta that only retains (no net change) still round-trips cleanly.
  c.queue_raw_delta(delta::Delta::parse("=3"));
  EXPECT_TRUE(c.save());
  EXPECT_EQ(stack.mediator->managed_plaintext("d"), "abc");
}

TEST(MediatorBranches, RediffHandlesMultiRegionDeltas) {
  MediatorConfig config = Stack::base_config();
  config.rediff = true;
  Stack stack(std::move(config));
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, "one two three four five six seven");
  c.save();
  c.replace(0, 3, "ONE");
  c.replace(c.text().size() - 5, 5, "SEVEN");
  c.insert(8, "2.5 ");
  c.save();
  EXPECT_EQ(stack.mediator->managed_plaintext("d"), c.text());
  // And a cold reader agrees.
  GDocsMediator mediator2(stack.transport.get(), Stack::base_config(),
                          &stack.clock);
  client::GDocsClient reader(&mediator2, "d");
  reader.open();
  EXPECT_EQ(reader.text(), c.text());
}

// ------------------------------------------- differential full saves --

static MediatorConfig bdelta_config() {
  MediatorConfig c = Stack::base_config();
  c.scheme.mode = enc::Mode::kRpc;
  c.block_delta_saves = true;
  return c;
}

// A real editor only POSTs docContents on the first save of a session
// (later saves are deltas), so drive the autosave-after-small-edit shape
// the sim uses: a raw full save through the mediator's round_trip.
static net::HttpResponse post_full_save(GDocsMediator& mediator,
                                        const std::string& doc_id,
                                        const std::string& text,
                                        std::uint64_t rev) {
  FormData f;
  f.add("session", "1");
  f.add("rev", std::to_string(rev));
  f.add("docContents", text);
  return mediator.round_trip(
      net::HttpRequest::post_form("/Doc?docID=" + doc_id, f.encode()));
}

TEST(MediatorBDelta, FullSaveAfterSmallEditRidesBlockDelta) {
  Stack stack(bdelta_config());
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, std::string(4000, 'a'));
  c.save();  // shares no blocks with the empty container: plain full save
  EXPECT_EQ(stack.mediator->counters().bdelta_saves, 0u);

  // The whole document POSTed again with one character changed: the
  // mediator must rewrite it as a block delta against its mirror.
  std::string text = c.text();
  text[100] = 'x';
  EXPECT_TRUE(post_full_save(*stack.mediator, "d", text, 1).ok());
  const auto counters = stack.mediator->counters();
  EXPECT_EQ(counters.bdelta_saves, 1u);
  EXPECT_EQ(counters.bdelta_fallbacks, 0u);
  EXPECT_GT(counters.bdelta_bytes, 0u);
  // The delta wire is a small fraction of the container it replaced.
  const auto mirror = stack.mediator->managed_ciphertext("d");
  ASSERT_TRUE(mirror.has_value());
  EXPECT_LT(counters.bdelta_bytes * 4, mirror->size());
  // Server and mirror agree byte for byte, and a cold reader decrypts it.
  EXPECT_EQ(stack.server.raw_content("d"), mirror);
  GDocsMediator mediator2(stack.transport.get(), bdelta_config(),
                          &stack.clock);
  client::GDocsClient reader(&mediator2, "d");
  reader.open();
  EXPECT_EQ(reader.text(), text);
}

TEST(MediatorBDelta, DivergedServerGets412ThenFullSaveFallback) {
  Stack stack(bdelta_config());
  client::GDocsClient c(stack.mediator.get(), "d");
  c.create();
  c.insert(0, std::string(4000, 'b'));
  c.save();

  // Vandalise the server copy AFTER the mediator mirrored it: the next
  // block delta anchors on a container the server no longer holds.
  std::string bad = *stack.server.raw_content("d");
  bad[bad.size() / 2] ^= 0x01;
  stack.server.set_raw_content("d", bad);

  std::string text = c.text();
  text[100] = 'y';
  EXPECT_TRUE(post_full_save(*stack.mediator, "d", text, 1).ok());
  const auto counters = stack.mediator->counters();
  EXPECT_EQ(counters.bdelta_fallbacks, 1u);
  EXPECT_EQ(counters.bdelta_saves, 0u);
  EXPECT_GE(stack.server.counters().bdelta_mismatches, 1u);
  // The fallback full save is always correct: the rot is overwritten and
  // both sides agree again.
  EXPECT_EQ(stack.server.raw_content("d"),
            stack.mediator->managed_ciphertext("d"));
}

}  // namespace
}  // namespace privedit::extension
