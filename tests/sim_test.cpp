// Deterministic simulation harness tests (DESIGN.md §9).
//
// Bulk phases drive the full stack — mediator, scheme, skip-list mirror,
// loopback HTTP, simulated server — through tens of thousands of generated
// edits per (scheme, block size) pair, checking the reference model after
// every op and independently decrypting the stored ciphertext on a
// cadence. Adversary phases must *detect* every tamper/rollback/fork;
// crash phases must recover to an adjacent state; a deliberately broken
// SUT must be caught and shrunk to a hand-readable script.
//
// Scale with PRIVEDIT_SIM_ITERS=n (multiplies the bulk op budgets).
// Reproduce a printed failure with:
//   PRIVEDIT_SIM_CONFIG='...' PRIVEDIT_SIM_SCRIPT='...'
//     ./build/tests/sim_test --gtest_filter='SimRepro.*'

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/sim/config.hpp"
#include "privedit/sim/fuzz.hpp"
#include "privedit/sim/gen.hpp"
#include "privedit/sim/harness.hpp"
#include "privedit/sim/script.hpp"
#include "privedit/sim/shrink.hpp"
#include "privedit/util/random.hpp"

namespace {

using privedit::Xoshiro256;
namespace enc = privedit::enc;
namespace sim = privedit::sim;

std::size_t iter_scale() {
  const char* env = std::getenv("PRIVEDIT_SIM_ITERS");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("privedit-sim-" + tag + "-" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

void expect_ok(const sim::SimReport& rep) {
  EXPECT_TRUE(rep.ok) << rep.failure_id << " at op " << rep.failed_at_op
                      << ": " << rep.message << "\nrepro: " << rep.repro;
}

void print_coverage(const char* tag, const sim::SimReport& rep) {
  const auto& c = rep.cov;
  std::cout << "[sim] " << tag << " ops=" << c.ops_executed
            << " ins=" << c.inserts << " del=" << c.erases
            << " rep=" << c.replaces << " full=" << c.full_saves
            << " undo=" << c.undos << " reopen=" << c.reopens
            << " empty=" << c.empty_ops << " snap=" << c.boundary_snaps
            << " uni=" << c.unicode_inserts << " spec=" << c.special_inserts
            << " deep=" << c.deep_verifies
            << " tamper=" << c.tampers_detected << "/" << c.tampers_injected
            << " rollback=" << c.rollbacks_detected << "/"
            << c.rollbacks_injected << " fork=" << c.forks_detected << "/"
            << c.forks_injected << " crash=" << c.crashes_recovered << "/"
            << c.crashes_fired << " storerot=" << c.store_rots_repaired << "/"
            << c.store_rots_injected << " xport=" << c.transport_errors
            << " final_chars=" << rep.final_doc_chars
            << " final_rev=" << rep.final_rev;
  if (c.bdelta_saves + c.bdelta_fallbacks > 0) {
    std::cout << " bdelta=" << c.bdelta_saves << "(+" << c.bdelta_fallbacks
              << " fb) bytes=" << c.bdelta_bytes << "/" << c.full_save_bytes;
  }
  if (c.audit_links_committed > 0) {
    std::cout << " links=" << c.audit_links_committed
              << " wpub=" << c.witnesses_published
              << " peered=" << c.peer_edits << " equiv="
              << c.equivocations_detected << "/" << c.equivocations_injected
              << " wsup=" << c.witness_suppressions_detected << "/"
              << c.witness_suppressions_injected << " replay="
              << c.replays_detected << "/" << c.replays_injected;
  }
  std::cout << "\n";
}

// ---------------------------------------------------------------- bulk --

sim::SimReport run_bulk(enc::Mode mode, std::size_t block,
                        std::uint64_t seed, const char* tag) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.block_chars = block;
  cfg.seed = seed;
  cfg.ops = 50'000 * iter_scale();
  // Per-op cost is O(doc) for RPC (suffix re-chaining); cap the document
  // so six 50k-op runs fit the tier-1 budget. Block behaviour is fully
  // exercised: 1024 chars is still 128-1024 cipher units.
  cfg.initial_chars = 192;
  cfg.max_doc_chars = 1024;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage(tag, rep);
  // The generator must have exercised every state-space dimension.
  EXPECT_GT(rep.cov.inserts, 0u);
  EXPECT_GT(rep.cov.erases, 0u);
  EXPECT_GT(rep.cov.replaces, 0u);
  EXPECT_GT(rep.cov.full_saves, 0u);
  EXPECT_GT(rep.cov.undos, 0u);
  EXPECT_GT(rep.cov.reopens, 0u);
  EXPECT_GT(rep.cov.empty_ops, 0u);
  EXPECT_GT(rep.cov.unicode_inserts, 0u);
  EXPECT_GT(rep.cov.special_inserts, 0u);
  EXPECT_GT(rep.cov.deep_verifies, 0u);
  if (block > 1) {
    EXPECT_GT(rep.cov.boundary_snaps, 0u);
  }
  EXPECT_EQ(rep.cov.ops_executed, cfg.ops);
  return rep;
}

TEST(SimBulk, RecbBlock1) { run_bulk(enc::Mode::kRecb, 1, 1101, "recb/b1"); }
TEST(SimBulk, RecbBlock4) { run_bulk(enc::Mode::kRecb, 4, 1104, "recb/b4"); }
TEST(SimBulk, RecbBlock8) { run_bulk(enc::Mode::kRecb, 8, 1108, "recb/b8"); }
TEST(SimBulk, RpcBlock1) { run_bulk(enc::Mode::kRpc, 1, 2201, "rpc/b1"); }
TEST(SimBulk, RpcBlock4) { run_bulk(enc::Mode::kRpc, 4, 2204, "rpc/b4"); }
TEST(SimBulk, RpcBlock8) { run_bulk(enc::Mode::kRpc, 8, 2208, "rpc/b8"); }

// ----------------------------------------------------------- adversary --

TEST(SimAdversary, RpcDetectsEveryTamper) {
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 31;
  cfg.ops = 400;
  cfg.weights.tamper = 8;  // flips + unit swap/drop/replay interleaved
  cfg.deep_verify_every = 64;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("adversary/tamper", rep);
  EXPECT_GT(rep.cov.tampers_injected, 10u);
  EXPECT_EQ(rep.cov.tampers_detected, rep.cov.tampers_injected)
      << "an injected tamper slipped past RPC integrity";
}

TEST(SimAdversary, JournalDetectsRollbackAndFork) {
  TempDir tmp("rollback");
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 47;
  cfg.ops = 300;
  cfg.journal = true;
  cfg.work_dir = tmp.path.string();
  cfg.weights.rollback = 5;
  cfg.weights.fork = 5;
  cfg.deep_verify_every = 64;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("adversary/rollback", rep);
  EXPECT_GT(rep.cov.rollbacks_injected, 3u);
  EXPECT_GT(rep.cov.forks_injected, 3u);
  EXPECT_EQ(rep.cov.rollbacks_detected, rep.cov.rollbacks_injected);
  EXPECT_EQ(rep.cov.forks_detected, rep.cov.forks_injected);
}

TEST(SimAdversary, SeedSweep) {
  // Same adversary configurations, more seeds: the per-run cost is small
  // and distinct seeds explore different interleavings of edits and
  // injections.
  for (const std::uint64_t seed : {301u, 302u, 303u, 304u, 305u, 306u}) {
    sim::SimConfig tamper;
    tamper.mode = enc::Mode::kRpc;
    tamper.block_chars = seed % 2 == 0 ? 1 : 8;
    tamper.seed = seed;
    tamper.ops = 150;
    tamper.weights.tamper = 8;
    tamper.deep_verify_every = 64;
    expect_ok(sim::run_sim(tamper));

    TempDir tmp("sweep-" + std::to_string(seed));
    sim::SimConfig crash;
    crash.mode = seed % 2 == 0 ? enc::Mode::kRecb : enc::Mode::kRpc;
    crash.block_chars = 4;
    crash.seed = seed;
    crash.ops = 100;
    crash.journal = true;
    crash.persist = true;
    crash.work_dir = tmp.path.string();
    crash.weights.crash = 8;
    crash.weights.rollback = 3;
    crash.weights.fork = 3;
    crash.deep_verify_every = 50;
    expect_ok(sim::run_sim(crash));
  }
}

// --------------------------------------- malicious-server audit adversary --

std::size_t audit_iter_scale() {
  const char* env = std::getenv("PRIVEDIT_AUDIT_ITERS");
  if (env == nullptr) return iter_scale();
  const long v = std::atol(env);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

sim::SimConfig audit_config(std::uint64_t seed, const std::string& work_dir) {
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = seed;
  cfg.ops = 260;
  cfg.journal = true;
  cfg.persist = true;
  cfg.strict = true;
  cfg.audit = true;
  cfg.work_dir = work_dir;
  cfg.weights.peer_edit = 6;
  cfg.weights.equivocate = 2.5;
  cfg.weights.witness_suppress = 2.5;
  cfg.weights.replay = 3;
  cfg.deep_verify_every = 64;
  return cfg;
}

TEST(SimAudit, MaliciousServerIsAlwaysCaught) {
  // The fork-consistency phase: a second client commits genuine writes
  // while the server equivocates (hides B's write behind a forked
  // history), suppresses published witnesses, and replays whole old
  // (content, rev, chain, witness) tuples. Every injection must be
  // detected AND correctly classified — equivocation / equivocation /
  // rollback respectively — with zero silent forks, and the run must keep
  // converging after each heal.
  TempDir tmp("audit");
  const sim::SimReport rep = sim::run_sim(audit_config(71, tmp.path.string()));
  expect_ok(rep);
  print_coverage("audit", rep);
  EXPECT_GT(rep.cov.peer_edits, 2u);
  EXPECT_GT(rep.cov.equivocations_injected, 1u);
  EXPECT_GT(rep.cov.witness_suppressions_injected, 1u);
  EXPECT_GT(rep.cov.replays_injected, 1u);
  EXPECT_EQ(rep.cov.equivocations_detected, rep.cov.equivocations_injected);
  EXPECT_EQ(rep.cov.witness_suppressions_detected,
            rep.cov.witness_suppressions_injected);
  EXPECT_EQ(rep.cov.replays_detected, rep.cov.replays_injected);
  EXPECT_GT(rep.cov.audit_links_committed, 0u);
  EXPECT_GT(rep.cov.witnesses_published, 0u);
}

TEST(SimAudit, SeedSweepWithCrashes) {
  // More seeds, and the auditor's own durability seams in the crash mix:
  // a crash between staging a chain link and the save's ack must leave a
  // recoverable head, never a self-made fork alarm.
  const std::size_t scale = audit_iter_scale();
  std::uint64_t seed = 900;
  for (std::size_t round = 0; round < 2 * scale; ++round) {
    for (const std::uint64_t offset : {1u, 2u, 3u}) {
      seed = 900 + round * 10 + offset;
      TempDir tmp("audit-sweep-" + std::to_string(seed));
      sim::SimConfig cfg = audit_config(seed, tmp.path.string());
      cfg.ops = 180;
      cfg.weights.crash = 4;  // includes the audit.append.* seams
      const sim::SimReport rep = sim::run_sim(cfg);
      expect_ok(rep);
      if (!rep.ok) return;  // first failing seed is enough to debug
    }
  }
}

// --------------------------------------------------------------- crash --

TEST(SimCrash, EveryCrashRecoversToAdjacentState) {
  TempDir tmp("crash");
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 59;
  cfg.ops = 160;
  cfg.journal = true;
  cfg.persist = true;
  cfg.work_dir = tmp.path.string();
  cfg.weights.crash = 10;
  cfg.deep_verify_every = 40;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("crash", rep);
  EXPECT_GT(rep.cov.crashes_fired, 3u);
  EXPECT_EQ(rep.cov.crashes_recovered, rep.cov.crashes_fired);
}

// ----------------------------------------------------- storage adversary --

TEST(SimStorage, BitRotIsDetectedByFsckAndRepaired) {
  // The disk adversary: between ops the stored record rots (a flipped
  // content byte or a clobbered rev line), the provider restarts from the
  // rotten disk, and the harness runs the fsck check over the store. With
  // a journal the anchor exposes even a ciphertext-level flip (kFork);
  // a clobbered rev line is always an unreadable record. Every injection
  // must be detected, repaired, and the store must check clean after.
  TempDir tmp("storerot");
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 83;
  cfg.ops = 250;
  cfg.journal = true;
  cfg.persist = true;
  cfg.work_dir = tmp.path.string();
  cfg.weights.store_rot = 6;
  cfg.deep_verify_every = 64;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("storage/bit-rot", rep);
  EXPECT_GT(rep.cov.store_rots_injected, 3u);
  EXPECT_EQ(rep.cov.store_rots_detected, rep.cov.store_rots_injected)
      << "an injected store rot slipped past the fsck check";
  EXPECT_EQ(rep.cov.store_rots_repaired, rep.cov.store_rots_injected);
}

TEST(SimStorage, RotMixedWithCrashesAndRollbacks) {
  for (const std::uint64_t seed : {401u, 402u, 403u}) {
    TempDir tmp("storemix-" + std::to_string(seed));
    sim::SimConfig cfg;
    cfg.mode = seed % 2 == 0 ? enc::Mode::kRecb : enc::Mode::kRpc;
    cfg.block_chars = 4;
    cfg.seed = seed;
    cfg.ops = 120;
    cfg.journal = true;
    cfg.persist = true;
    cfg.work_dir = tmp.path.string();
    cfg.weights.store_rot = 4;
    cfg.weights.crash = 4;
    cfg.weights.rollback = 2;
    cfg.deep_verify_every = 40;
    expect_ok(sim::run_sim(cfg));
  }
}

// ------------------------------------------------------------- sharded --

TEST(SimSharded, CrashAndRebalancePreserveEveryDocument) {
  // N-shard topology behind the consistent-hash router: the mediated
  // document plus a fixture corpus spread across the ring. The script
  // interleaves edits with shard crashes (restart from the per-shard
  // store) and rebalances (drain a shard out, join it back). After every
  // shard event and at quiesce, every document must be owned by exactly
  // one shard with byte-identical content — zero loss, zero duplication.
  TempDir tmp("sharded");
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 91;
  cfg.ops = 220;
  cfg.persist = true;
  cfg.shards = 3;
  cfg.fixture_docs = 12;
  cfg.work_dir = tmp.path.string();
  cfg.weights.shard_crash = 6;
  cfg.weights.shard_rebalance = 5;
  cfg.deep_verify_every = 50;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("sharded", rep);
  EXPECT_GT(rep.cov.shard_crashes, 2u);
  EXPECT_GT(rep.cov.shard_rebalances, 2u);
  EXPECT_GT(rep.cov.docs_migrated, 0u)
      << "rebalances ran but no document actually moved";
}

TEST(SimSharded, ShardedSeedSweep) {
  // More seeds x varying ring sizes, with tampers and rollback injections
  // riding along so the adversary phases run against the routed topology.
  for (const std::uint64_t seed : {501u, 502u, 503u}) {
    TempDir tmp("shardsweep-" + std::to_string(seed));
    sim::SimConfig cfg;
    cfg.mode = seed % 2 == 0 ? enc::Mode::kRecb : enc::Mode::kRpc;
    cfg.block_chars = 4;
    cfg.seed = seed;
    cfg.ops = 120;
    cfg.persist = true;
    cfg.journal = true;
    cfg.shards = 2 + seed % 3;
    cfg.fixture_docs = 8;
    cfg.work_dir = tmp.path.string();
    cfg.weights.shard_crash = 4;
    cfg.weights.shard_rebalance = 3;
    // Tamper detection is only a *requirement* under RPC integrity; recb
    // tampers against a journal hit a pre-existing replay interaction
    // that is out of scope here, so tampers ride along on RPC seeds only.
    cfg.weights.tamper = cfg.mode == enc::Mode::kRpc ? 4 : 0;
    cfg.weights.rollback = 2;
    cfg.deep_verify_every = 40;
    const sim::SimReport rep = sim::run_sim(cfg);
    expect_ok(rep);
    EXPECT_GT(rep.cov.shard_crashes + rep.cov.shard_rebalances, 0u);
  }
}

TEST(SimSharded, ShardsRequirePersistence) {
  sim::SimConfig cfg;
  cfg.shards = 3;
  cfg.persist = false;
  cfg.ops = 1;
  const sim::SimReport rep = sim::run_sim(cfg);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.failure_id, "setup");
}

// ---------------------------------------------------------- delta wire --

TEST(SimBlockDelta, DifferentialSavesConvergeByteIdentically) {
  // The delta-wire phase (DESIGN.md §15): full saves travel as block
  // deltas against the container the server already holds. The generator
  // is skewed toward whole-document replaces so the differential path
  // fires often; at quiesce the harness requires the server's raw
  // container to be *byte-identical* to the mediator's ciphertext mirror
  // — the invariant every future delta depends on.
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 601;
  cfg.ops = 2'000 * iter_scale();
  cfg.bdelta = true;
  cfg.weights.replace_all = 6;  // boost the full-save (docContents) path
  cfg.deep_verify_every = 128;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("bdelta", rep);
  EXPECT_GT(rep.cov.bdelta_saves, 10u)
      << "the capability negotiated but no save travelled as a delta";
  EXPECT_GT(rep.cov.bdelta_bytes, 0u);
  EXPECT_EQ(rep.cov.bdelta_fallbacks, 0u)
      << "a fault-free run should never need the 412 full-save fallback";
}

TEST(SimBlockDelta, DeltaSavesWithJournalAndAdversary) {
  // Differential saves riding with the journal, tampers, and rollbacks:
  // every injected attack must still be detected and healed, and the
  // byte-identity quiesce invariant must survive the heals (a heal pushes
  // full bytes over cmd=sync, which must resynchronise the delta anchor).
  for (const std::uint64_t seed : {611u, 612u, 613u}) {
    TempDir tmp("bdelta-" + std::to_string(seed));
    sim::SimConfig cfg;
    cfg.mode = enc::Mode::kRpc;
    cfg.block_chars = 4;
    cfg.seed = seed;
    cfg.ops = 300;
    cfg.bdelta = true;
    cfg.journal = true;
    cfg.work_dir = tmp.path.string();
    cfg.weights.replace_all = 4;
    cfg.weights.tamper = 3;
    cfg.weights.rollback = 2;
    cfg.deep_verify_every = 64;
    const sim::SimReport rep = sim::run_sim(cfg);
    expect_ok(rep);
    EXPECT_EQ(rep.cov.tampers_detected, rep.cov.tampers_injected);
    EXPECT_GT(rep.cov.bdelta_saves, 0u);
  }
}

// -------------------------------------------------------------- faults --

TEST(SimFaults, PreDeliveryFaultsUnderRetry) {
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRecb;
  cfg.block_chars = 8;
  cfg.seed = 67;
  cfg.ops = 300;
  cfg.retry = true;
  cfg.faults.drop = 0.15;             // refused connects: never delivered,
  cfg.faults.truncate_request = 0.1;  // always safe to retry
  cfg.deep_verify_every = 64;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("faults/retry", rep);
}

TEST(SimFaults, LostAcksReconcileThroughJournal) {
  TempDir tmp("truncresp");
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 71;
  cfg.ops = 250;
  cfg.journal = true;  // replay CAS is what reconciles a lost ack
  cfg.work_dir = tmp.path.string();
  cfg.faults.truncate_response = 0.12;  // delivered, ack lost: NOT retried
  cfg.deep_verify_every = 64;
  const sim::SimReport rep = sim::run_sim(cfg);
  expect_ok(rep);
  print_coverage("faults/lost-ack", rep);
  EXPECT_GT(rep.cov.transport_errors, 5u);
}

// ------------------------------------------------- mutation validation --

TEST(SimMutation, DroppedDeleteIsCaughtAndShrunk) {
  // Break the SUT on purpose (every sent delta loses its delete component)
  // and require the harness to (a) notice, (b) shrink the failure to a
  // script a human can read, (c) reproduce it from the shrunk script.
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRecb;
  cfg.block_chars = 4;
  cfg.seed = 42;
  cfg.ops = 300;
  cfg.mutation = sim::Mutation::kDropDelete;
  const sim::Script script = sim::generate_script(cfg);
  const sim::SimReport rep = sim::run_script(cfg, script);
  ASSERT_FALSE(rep.ok) << "the deliberately broken SUT was not caught";
  EXPECT_EQ(rep.failure_id, "model-equiv");
  EXPECT_FALSE(rep.repro.empty());

  const sim::ShrinkResult shrunk = sim::shrink_failure(cfg, script, rep);
  std::cout << "[sim] mutation shrunk " << script.ops.size() << " -> "
            << shrunk.script.ops.size() << " ops in " << shrunk.runs
            << " runs: " << shrunk.script.to_wire() << "\n";
  EXPECT_LE(shrunk.script.ops.size(), 10u);
  EXPECT_EQ(shrunk.report.failure_id, "model-equiv");

  // The shrunk script must reproduce on a fresh run...
  const sim::SimReport again = sim::run_script(cfg, shrunk.script);
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failure_id, rep.failure_id);
  // ...and the shrinker itself must be deterministic.
  const sim::ShrinkResult shrunk2 = sim::shrink_failure(cfg, script, rep);
  EXPECT_EQ(shrunk.script.to_wire(), shrunk2.script.to_wire());
}

// --------------------------------------------------------- determinism --

TEST(SimDeterminism, SameSeedSameRun) {
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 8;
  cfg.seed = 90;
  cfg.ops = 1'000;
  const sim::SimReport a = sim::run_sim(cfg);
  const sim::SimReport b = sim::run_sim(cfg);
  expect_ok(a);
  expect_ok(b);
  EXPECT_EQ(a.final_doc_chars, b.final_doc_chars);
  EXPECT_EQ(a.final_rev, b.final_rev);
  EXPECT_EQ(a.cov.inserts, b.cov.inserts);
  EXPECT_EQ(a.cov.erases, b.cov.erases);
  EXPECT_EQ(a.cov.replaces, b.cov.replaces);
  EXPECT_EQ(a.cov.undos, b.cov.undos);
  EXPECT_EQ(a.cov.empty_ops, b.cov.empty_ops);
  EXPECT_EQ(a.cov.boundary_snaps, b.cov.boundary_snaps);

  sim::SimConfig other = cfg;
  other.seed = 91;
  EXPECT_NE(sim::generate_script(cfg).to_wire(),
            sim::generate_script(other).to_wire());
}

// --------------------------------------------------------------- wires --

TEST(SimWire, ScriptRoundTripsEveryOpKind) {
  sim::Script script;
  script.ops.push_back(sim::SimOp::parse("i:b500000:12:w:7781"));
  script.ops.push_back(sim::SimOp::parse("d:0:3"));
  script.ops.push_back(sim::SimOp::parse("r:1000000:4:2:u:99"));
  script.ops.push_back(sim::SimOp::parse("R:40:t:5"));
  script.ops.push_back(sim::SimOp::parse("u"));
  script.ops.push_back(sim::SimOp::parse("o"));
  script.ops.push_back(sim::SimOp::parse("tf:17"));
  script.ops.push_back(sim::SimOp::parse("ts:3:9"));
  script.ops.push_back(sim::SimOp::parse("td:2"));
  script.ops.push_back(sim::SimOp::parse("tp:6"));
  script.ops.push_back(sim::SimOp::parse("kb"));
  script.ops.push_back(sim::SimOp::parse("kf"));
  script.ops.push_back(sim::SimOp::parse("c:4"));
  script.ops.push_back(sim::SimOp::parse("be:11"));
  script.ops.push_back(sim::SimOp::parse("ke:12"));
  script.ops.push_back(sim::SimOp::parse("kw"));
  script.ops.push_back(sim::SimOp::parse("kp"));
  const sim::Script reparsed = sim::Script::parse(script.to_wire());
  EXPECT_EQ(reparsed, script);

  EXPECT_THROW(sim::SimOp::parse("q:1"), privedit::ParseError);
  EXPECT_THROW(sim::SimOp::parse("i:2000001:1:w:0"), privedit::ParseError);
  EXPECT_THROW(sim::SimOp::parse("i:0:1:z:0"), privedit::ParseError);

  // op_text is a pure function of (class, arg, len).
  EXPECT_EQ(sim::op_text(sim::TextClass::kUnicode, 7, 9),
            sim::op_text(sim::TextClass::kUnicode, 7, 9));
  EXPECT_TRUE(sim::op_text(sim::TextClass::kEmpty, 1, 5).empty());
}

TEST(SimWire, ConfigRoundTrips) {
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 12345;
  cfg.ops = 777;
  cfg.journal = true;
  cfg.retry = true;
  cfg.faults.drop = 0.25;
  cfg.weights.tamper = 8;
  cfg.audit = true;
  cfg.weights.peer_edit = 6;
  cfg.weights.equivocate = 3;
  cfg.weights.witness_suppress = 3;
  cfg.weights.replay = 4;
  cfg.mutation = sim::Mutation::kDropDelete;
  const sim::SimConfig reparsed = sim::SimConfig::parse(cfg.to_wire());
  EXPECT_EQ(reparsed.to_wire(), cfg.to_wire());
  EXPECT_EQ(reparsed.mode, cfg.mode);
  EXPECT_EQ(reparsed.seed, cfg.seed);
  EXPECT_EQ(reparsed.journal, cfg.journal);
  EXPECT_EQ(reparsed.mutation, cfg.mutation);
  EXPECT_TRUE(reparsed.audit);
  EXPECT_EQ(reparsed.weights.equivocate, cfg.weights.equivocate);
  EXPECT_THROW(sim::SimConfig::parse("bogus=1"), privedit::ParseError);
}

// --------------------------------------------------------------- repro --

TEST(SimRepro, FromEnvOrSelfCheck) {
  const char* config_env = std::getenv("PRIVEDIT_SIM_CONFIG");
  const char* script_env = std::getenv("PRIVEDIT_SIM_SCRIPT");
  TempDir tmp("repro");
  if (config_env != nullptr) {
    // Replay mode: reproduce the printed counterexample.
    sim::SimConfig cfg = sim::SimConfig::parse(config_env);
    cfg.work_dir = tmp.path.string();
    const sim::Script script = script_env != nullptr
                                   ? sim::Script::parse(script_env)
                                   : sim::generate_script(cfg);
    const sim::SimReport rep = sim::run_script(cfg, script);
    std::cout << "[sim-repro] ok=" << rep.ok << " failure=" << rep.failure_id
              << " at op " << rep.failed_at_op << ": " << rep.message << "\n";
    EXPECT_FALSE(rep.ok) << "the reproduced run passes — bug already fixed?";
    return;
  }
  // Self-check: the wire forms drive an identical run.
  sim::SimConfig cfg;
  cfg.mode = enc::Mode::kRpc;
  cfg.block_chars = 4;
  cfg.seed = 7;
  cfg.ops = 300;
  const sim::Script script = sim::generate_script(cfg);
  const sim::SimConfig cfg2 = sim::SimConfig::parse(cfg.to_wire());
  const sim::Script script2 = sim::Script::parse(script.to_wire());
  EXPECT_EQ(script2, script);
  const sim::SimReport a = sim::run_script(cfg, script);
  const sim::SimReport b = sim::run_script(cfg2, script2);
  expect_ok(a);
  expect_ok(b);
  EXPECT_EQ(a.final_doc_chars, b.final_doc_chars);
  EXPECT_EQ(a.final_rev, b.final_rev);
}

// ------------------------------------------------ client-driven phase --

TEST(SimClient, RealClientDifferential) {
  // The harness drives the mediator directly for throughput; this phase
  // puts the real GDocsClient (myers-diff saves, undo stack, ack
  // consumption) on top of the same stack and uses its text as the model.
  privedit::net::SimClock clock;
  privedit::cloud::GDocsServer server;
  server.set_history_limit(4);
  privedit::net::LatencyModel latency;
  latency.base_us = 0;
  latency.jitter_us = 0;
  latency.bytes_per_ms_up = 0;
  latency.bytes_per_ms_down = 0;
  latency.server_us_per_kb = 0;
  privedit::net::LoopbackTransport loop(
      [&server](const privedit::net::HttpRequest& r) {
        return server.handle(r);
      },
      &clock, latency, std::make_unique<Xoshiro256>(5));
  privedit::extension::MediatorConfig mc;
  mc.password = "client phase";
  mc.scheme.mode = enc::Mode::kRpc;
  mc.scheme.block_chars = 4;
  mc.scheme.kdf_iterations = 4;
  mc.rng_factory = privedit::extension::seeded_rng_factory(77);
  privedit::extension::GDocsMediator mediator(&loop, mc, &clock);

  privedit::client::GDocsClient client(&mediator, "cdoc");
  client.create();
  Xoshiro256 rng(123);
  const std::size_t rounds = 400 * iter_scale();
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::uint64_t roll = rng.below(100);
    const std::size_t len = client.text().size();
    const std::size_t pos = len == 0 ? 0 : rng.below(len + 1);
    if (roll < 45 || len == 0) {
      client.insert(pos, sim::op_text(sim::TextClass::kWords,
                                      static_cast<std::uint32_t>(rng.next_u64()),
                                      static_cast<std::uint32_t>(rng.below(4)) + 1));
    } else if (roll < 70) {
      client.erase(pos, rng.below(std::min<std::size_t>(len - pos, 24) + 1));
    } else if (roll < 90) {
      client.replace(pos, rng.below(std::min<std::size_t>(len - pos, 12) + 1),
                     sim::op_text(sim::TextClass::kUnicode,
                                  static_cast<std::uint32_t>(rng.next_u64()),
                                  static_cast<std::uint32_t>(rng.below(3)) + 1));
    } else {
      client.undo();
    }
    if (i % 5 == 4) {
      client.save();
      const auto mirror = mediator.managed_plaintext("cdoc");
      ASSERT_TRUE(mirror.has_value());
      ASSERT_EQ(*mirror, client.text()) << "at round " << i;
    }
    if (client.text().size() > 4096) {
      client.erase(0, client.text().size() - 64);
    }
  }
  client.save();
  // Independent decrypt of what the provider actually stores.
  const auto raw = server.raw_content("cdoc");
  ASSERT_TRUE(raw.has_value());
  privedit::extension::DocumentSession session =
      privedit::extension::DocumentSession::open(
          "client phase", *raw, privedit::extension::seeded_rng_factory(9));
  EXPECT_EQ(session.plaintext(), client.text());
}

// -------------------------------------------------------------- corpus --

std::vector<std::filesystem::path> corpus_files(const char* sub) {
  std::vector<std::filesystem::path> out;
  const std::filesystem::path dir =
      std::filesystem::path(PRIVEDIT_CORPUS_DIR) / sub;
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(FuzzCorpus, Delta) {
  const auto files = corpus_files("delta");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_delta(slurp(f))) << f;
  }
}

TEST(FuzzCorpus, Diff) {
  const auto files = corpus_files("diff");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_diff(slurp(f))) << f;
  }
}

TEST(FuzzCorpus, Container) {
  const auto files = corpus_files("container");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_container(slurp(f))) << f;
  }
}

TEST(FuzzCorpus, Journal) {
  TempDir tmp("fuzz-journal");
  const auto files = corpus_files("journal");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_journal(slurp(f), tmp.path.string())) << f;
  }
}

TEST(FuzzCorpus, Http) {
  const auto files = corpus_files("http");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_http(slurp(f))) << f;
  }
}

TEST(FuzzCorpus, Store) {
  TempDir tmp("fuzz-store");
  const auto files = corpus_files("store");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files) {
    EXPECT_NO_THROW(sim::fuzz_store_record(slurp(f), tmp.path.string())) << f;
  }
}

TEST(FuzzCorpus, LiveCiphertextSurvivesEntryPoint) {
  // Real containers (and truncations of them) through fuzz_container: the
  // entry point must treat valid ones as valid and truncated ones as a
  // loud-but-clean rejection.
  for (const enc::Mode mode : {enc::Mode::kRecb, enc::Mode::kRpc}) {
    enc::SchemeConfig sc;
    sc.mode = mode;
    sc.block_chars = 4;
    sc.kdf_iterations = 4;
    privedit::extension::DocumentSession session =
        privedit::extension::DocumentSession::create_new(
            "fuzz password", sc, privedit::extension::seeded_rng_factory(3));
    const std::string doc = session.encrypt_full("private editing corpus");
    EXPECT_NO_THROW(sim::fuzz_container(doc));
    for (const std::size_t cut : {std::size_t{1}, doc.size() / 2,
                                  doc.size() - 1}) {
      EXPECT_NO_THROW(sim::fuzz_container(std::string_view(doc).substr(0, cut)));
    }
  }
}

}  // namespace
