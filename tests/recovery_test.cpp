// Crash-consistency and self-healing (tentpole of the robustness PR):
//
//  - the extension's write-ahead journal: durable before the wire, torn
//    tails truncated, unacknowledged entries replayed idempotently at the
//    next open;
//  - rollback/fork detection against the journal's last-acknowledged
//    (revision, checksum) pair — the §II rollback adversary;
//  - provider-side durability (FileStore temp+fsync+rename+dirsync) under
//    deterministic power loss at every CrashPoint;
//  - replica anti-entropy: lagging replicas converge to byte-identical
//    ciphertext after a partition heals.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {
namespace {

namespace fs = std::filesystem;

// A channel the test can partition (requests refused) or make lossy on the
// return leg only: the request reaches the server, the response does not
// come back — the "ack lost in flight" crash window.
struct FlakyChannel final : net::Channel {
  explicit FlakyChannel(net::Channel* inner) : inner(inner) {}
  net::HttpResponse round_trip(const net::HttpRequest& r) override {
    if (down) {
      throw net::TransportError(net::FaultKind::kConnect, "partitioned");
    }
    net::HttpResponse resp = inner->round_trip(r);
    if (lose_acks) {
      throw net::TransportError(net::FaultKind::kReset, "ack lost");
    }
    return resp;
  }
  net::Channel* inner;
  bool down = false;
  bool lose_acks = false;
};

MediatorConfig mediator_config(std::string journal_dir, std::uint64_t seed) {
  MediatorConfig c;
  c.password = "pw";
  c.scheme.mode = enc::Mode::kRpc;
  c.scheme.kdf_iterations = 5;
  c.rng_factory = seeded_rng_factory(seed);
  c.journal_dir = std::move(journal_dir);
  return c;
}

// One client machine + one persistent provider, rebuildable on the same
// directories — constructing a second World over the first one's dirs IS
// the reboot.
struct World {
  World(const std::string& store_dir, const std::string& journal_dir,
        std::uint64_t seed) {
    server = std::make_unique<cloud::GDocsServer>();
    server->enable_persistence(store_dir);
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server->handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(seed));
    mediator = std::make_unique<GDocsMediator>(
        transport.get(), mediator_config(journal_dir, seed + 1), &clock);
  }
  net::SimClock clock;
  std::unique_ptr<cloud::GDocsServer> server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<GDocsMediator> mediator;
};

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CrashPoints::disarm();
    CrashPoints::clear_seen();
    base_ = (fs::temp_directory_path() /
             ("privedit_recovery_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
    store_dir_ = base_ + "/store";
    journal_dir_ = base_ + "/journal";
  }
  void TearDown() override {
    CrashPoints::disarm();
    fs::remove_all(base_);
  }

  std::string base_, store_dir_, journal_dir_;
};

// ------------------------------------------------------------- journal

TEST_F(RecoveryTest, JournalStateSurvivesReopen) {
  const std::string path = base_ + "/j.wal";
  {
    EditJournal j(path);
    EXPECT_FALSE(j.last_acked().has_value());
    j.append_pending({0, true, "ck0", "full-ciphertext"});
    j.append_pending({1, false, "ck1", "cdelta-wire"});
    j.ack_front(1, "ck0");
    EXPECT_EQ(j.pending().size(), 1u);
  }
  EditJournal j(path);
  EXPECT_FALSE(j.recovered_torn_tail());
  ASSERT_TRUE(j.last_acked().has_value());
  EXPECT_EQ(j.last_acked()->rev, 1u);
  EXPECT_EQ(j.last_acked()->checksum, "ck0");
  ASSERT_EQ(j.pending().size(), 1u);
  EXPECT_EQ(j.pending().front().base_rev, 1u);
  EXPECT_FALSE(j.pending().front().full_save);
  EXPECT_EQ(j.pending().front().checksum, "ck1");
  EXPECT_EQ(j.pending().front().update, "cdelta-wire");

  j.drop_front();
  EXPECT_TRUE(j.pending().empty());
  j.reset(9, "ck9");
  EXPECT_EQ(j.last_acked()->rev, 9u);
}

TEST_F(RecoveryTest, JournalCompactShrinksAckedHistory) {
  const std::string path = base_ + "/j.wal";
  EditJournal j(path);
  for (int i = 0; i < 20; ++i) {
    j.append_pending({static_cast<std::uint64_t>(i), false, "ck",
                      std::string(200, 'x')});
    j.ack_front(static_cast<std::uint64_t>(i) + 1, "ck");
  }
  const std::uint64_t before = j.bytes_on_disk().value();
  j.compact();
  EXPECT_LT(j.bytes_on_disk().value(), before / 4);
  // The compacted file still carries the baseline.
  EditJournal reopened(path);
  ASSERT_TRUE(reopened.last_acked().has_value());
  EXPECT_EQ(reopened.last_acked()->rev, 20u);
}

TEST_F(RecoveryTest, JournalTornTailIsTruncatedOnReload) {
  const std::string path = base_ + "/j.wal";
  std::uint64_t intact_size = 0;
  {
    EditJournal j(path);
    j.append_pending({3, false, "ck3", "keep-me"});
    intact_size = j.bytes_on_disk().value();
  }
  {
    // Power loss mid-append: half a frame of the next record.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {'P', 'E', 'W', 'J', '\x00', '\x00'};
    out.write(torn, sizeof torn);  // magic + truncated length field
  }
  EditJournal j(path);
  EXPECT_TRUE(j.recovered_torn_tail());
  EXPECT_EQ(j.bytes_on_disk().value(), intact_size);
  ASSERT_EQ(j.pending().size(), 1u);
  EXPECT_EQ(j.pending().front().update, "keep-me");
  // The journal keeps working after truncation.
  j.append_pending({4, false, "ck4", "after-the-tear"});
  EditJournal again(path);
  EXPECT_FALSE(again.recovered_torn_tail());
  EXPECT_EQ(again.pending().size(), 2u);
}

TEST_F(RecoveryTest, JournalCorruptMiddleRecordStopsReplayThere) {
  const std::string path = base_ + "/j.wal";
  std::uint64_t first_size = 0;
  {
    EditJournal j(path);
    j.append_pending({0, false, "ck0", "first"});
    first_size = j.bytes_on_disk().value();
    j.append_pending({1, false, "ck1", "second"});
  }
  {
    // Rot a byte inside the SECOND record's payload: CRC catches it and
    // everything from the corruption on is discarded.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_size) + 14);
    f.put('\xFF');
  }
  EditJournal j(path);
  EXPECT_TRUE(j.recovered_torn_tail());
  ASSERT_EQ(j.pending().size(), 1u);
  EXPECT_EQ(j.pending().front().update, "first");
  EXPECT_EQ(j.bytes_on_disk().value(), first_size);
}

TEST_F(RecoveryTest, CrashInsideJournalAppendKeepsDurablePrefix) {
  const std::string path = base_ + "/j.wal";
  for (const char* point :
       {"journal.append.before_write", "journal.append.torn",
        "journal.append.before_fsync"}) {
    SCOPED_TRACE(point);
    fs::remove(path);
    {
      EditJournal j(path);
      j.append_pending({0, true, "ck0", "acked-update"});
      j.ack_front(1, "ck0");
      CrashPoints::arm(point);
      EXPECT_THROW(j.append_pending({1, false, "ck1", "doomed"}),
                   CrashError);
    }
    EditJournal j(path);
    // The acknowledged prefix is always intact; the torn entry is either
    // fully there (crash before any bytes hit, then retried elsewhere) or
    // cleanly gone — never half-parsed.
    ASSERT_TRUE(j.last_acked().has_value());
    EXPECT_EQ(j.last_acked()->rev, 1u);
    EXPECT_EQ(j.last_acked()->checksum, "ck0");
    EXPECT_TRUE(j.pending().empty() ||
                j.pending().front().update == "doomed");
  }
}

// ----------------------------------------------------------- file store

TEST_F(RecoveryTest, CrashAtEveryFileStorePutPointKeepsACompleteRecord) {
  for (const char* point :
       {"file_store.put.created", "file_store.put.torn",
        "file_store.put.before_fsync", "file_store.put.before_rename",
        "file_store.put.before_dirsync"}) {
    SCOPED_TRACE(point);
    const std::string dir = store_dir_ + "_" + point;
    {
      cloud::FileStore store(dir);
      store.put("doc", {"old-and-complete", 1});
      CrashPoints::arm(point);
      EXPECT_THROW(store.put("doc", {"new-and-complete", 2}), CrashError);
    }
    // Reboot: the constructor discards stale temp files; the record read
    // back must be one of the two COMPLETE versions, never a torn mix.
    cloud::FileStore store(dir);
    const auto record = store.get("doc");
    ASSERT_TRUE(record.has_value());
    if (record->rev == 1) {
      EXPECT_EQ(record->content, "old-and-complete");
    } else {
      EXPECT_EQ(record->rev, 2u);
      EXPECT_EQ(record->content, "new-and-complete");
    }
    // No .tmp debris survives the reboot.
    for (const auto& entry : fs::directory_iterator(dir)) {
      EXPECT_NE(entry.path().extension(), ".tmp");
    }
  }
}

// --------------------------------------------------- client crash/replay

TEST_F(RecoveryTest, UnackedUpdateIsReplayedAtNextOpen) {
  {
    World w(store_dir_, journal_dir_, 700);
    FlakyChannel channel(w.transport.get());
    GDocsMediator mediator(&channel, mediator_config(journal_dir_, 702),
                           &w.clock);
    client::GDocsClient writer(&mediator, "doc");
    writer.create();
    writer.insert(0, "acknowledged base");
    writer.save();
    writer.insert(0, "lost-in-flight ");
    channel.down = true;  // request never reaches the provider
    EXPECT_THROW(writer.save(), net::TransportError);
    EXPECT_EQ(mediator.counters().journal_appends, 2u);
  }  // client machine dies with one unacknowledged update journalled

  World w(store_dir_, journal_dir_, 710);
  client::GDocsClient reader(w.mediator.get(), "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "lost-in-flight acknowledged base");
  EXPECT_EQ(w.mediator->counters().journal_replays, 1u);
  EXPECT_EQ(w.mediator->counters().rollbacks_detected, 0u);
}

TEST_F(RecoveryTest, AckLostUpdateIsSettledNotDuplicated) {
  {
    World w(store_dir_, journal_dir_, 720);
    FlakyChannel channel(w.transport.get());
    GDocsMediator mediator(&channel, mediator_config(journal_dir_, 722),
                           &w.clock);
    client::GDocsClient writer(&mediator, "doc");
    writer.create();
    writer.insert(0, "base");
    writer.save();
    writer.insert(4, " once");
    channel.lose_acks = true;  // provider applies it; the ack vanishes
    EXPECT_THROW(writer.save(), net::TransportError);
  }

  World w(store_dir_, journal_dir_, 730);
  client::GDocsClient reader(w.mediator.get(), "doc");
  reader.open();
  // The revision CAS sees the server already past the entry's base
  // revision: the update was applied before the crash, so it is settled,
  // not resent — "base once", not "base once once".
  EXPECT_EQ(reader.text(), "base once");
  EXPECT_EQ(w.mediator->counters().journal_replays, 0u);
  EXPECT_GE(w.mediator->counters().journal_drops, 1u);
}

TEST_F(RecoveryTest, ProviderCrashMidPutNeverLosesAcknowledgedEdits) {
  {
    World w(store_dir_, journal_dir_, 740);
    client::GDocsClient writer(w.mediator.get(), "doc");
    writer.create();
    writer.insert(0, "acknowledged");
    writer.save();
    writer.insert(0, "maybe-lost ");
    // The provider loses power with the new record half-written.
    CrashPoints::arm("file_store.put.torn");
    EXPECT_THROW(writer.save(), CrashError);
  }

  // Provider restarts from disk; client restarts from its journal. The
  // half-written put was discarded, so the server is one revision behind
  // the journal's pending entry — which replays it.
  World w(store_dir_, journal_dir_, 750);
  client::GDocsClient reader(w.mediator.get(), "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "maybe-lost acknowledged");
  EXPECT_EQ(w.mediator->counters().journal_replays, 1u);
}

// ------------------------------------------------------------- rollback

TEST_F(RecoveryTest, BackupRestoreRollbackDetectedAtOpen) {
  const std::string backup = base_ + "/backup";
  {
    World w(store_dir_, journal_dir_, 760);
    client::GDocsClient writer(w.mediator.get(), "doc");
    writer.create();
    writer.insert(0, "version one");
    writer.save();
    // The provider takes a backup...
    fs::create_directories(backup);
    for (const auto& entry : fs::directory_iterator(store_dir_)) {
      fs::copy(entry.path(), backup / entry.path().filename());
    }
    writer.insert(0, "version two, ");
    writer.save();
  }

  // ...and later "restores" it, silently discarding acknowledged edits.
  fs::remove_all(store_dir_);
  fs::create_directories(store_dir_);
  for (const auto& entry : fs::directory_iterator(backup)) {
    fs::copy(entry.path(), fs::path(store_dir_) / entry.path().filename());
  }

  World w(store_dir_, journal_dir_, 770);
  client::GDocsClient reader(w.mediator.get(), "doc");
  try {
    reader.open();
    FAIL() << "rollback not detected";
  } catch (const RollbackError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRollback);
  }
  EXPECT_EQ(w.mediator->counters().rollbacks_detected, 1u);
}

TEST_F(RecoveryTest, SameRevisionForkDetectedAtOpen) {
  std::uint64_t rev = 0;
  {
    World w(store_dir_, journal_dir_, 780);
    client::GDocsClient writer(w.mediator.get(), "doc");
    writer.create();
    writer.insert(0, "the acknowledged bytes");
    writer.save();
    rev = writer.revision();
  }
  {
    // The provider forks history: same revision, different ciphertext.
    cloud::FileStore store(store_dir_);
    auto record = store.get("doc");
    ASSERT_TRUE(record.has_value());
    std::string& c = record->content;
    c[c.size() / 2] = static_cast<char>(c[c.size() / 2] ^ 0x01);
    store.put("doc", {record->content, rev});
  }

  World w(store_dir_, journal_dir_, 790);
  client::GDocsClient reader(w.mediator.get(), "doc");
  // The fork is caught by the journal's checksum BEFORE decryption even
  // runs — RollbackError, not a generic integrity failure.
  EXPECT_THROW(reader.open(), RollbackError);
  EXPECT_EQ(w.mediator->counters().rollbacks_detected, 1u);
}

TEST_F(RecoveryTest, HonestReopenAfterCleanShutdownIsQuiet) {
  {
    World w(store_dir_, journal_dir_, 800);
    client::GDocsClient writer(w.mediator.get(), "doc");
    writer.create();
    writer.insert(0, "nothing suspicious here");
    writer.save();  // full save
    writer.insert(0, "really, ");
    writer.save();  // delta save — its checksum is of the mirror, which
                    // must equal what the server stores byte-for-byte
  }
  World w(store_dir_, journal_dir_, 810);
  client::GDocsClient reader(w.mediator.get(), "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "really, nothing suspicious here");
  EXPECT_EQ(w.mediator->counters().rollbacks_detected, 0u);
  EXPECT_EQ(w.mediator->counters().journal_replays, 0u);
  EXPECT_EQ(w.mediator->counters().ack_checksum_mismatches, 0u);
}

// ------------------------------------------------------ replica healing

struct Replica {
  Replica(const std::string& dir, net::SimClock* clock, std::uint64_t seed) {
    server.enable_persistence(dir);
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(seed));
    flaky = std::make_unique<FlakyChannel>(transport.get());
  }
  cloud::GDocsServer server;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<FlakyChannel> flaky;
};

TEST_F(RecoveryTest, ReplicaHealsToByteIdenticalAfterPartition) {
  net::SimClock clock;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<net::Channel*> channels;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<Replica>(
        store_dir_ + "_" + std::to_string(i), &clock,
        820 + static_cast<std::uint64_t>(i)));
    channels.push_back(replicas.back()->flaky.get());
  }
  ReplicatedChannel replicated(channels, gdocs_open_validator("pw"));
  GDocsMediator mediator(&replicated, mediator_config(journal_dir_, 824),
                         &clock);
  client::GDocsClient writer(&mediator, "doc");
  writer.create();
  writer.insert(0, "replicated and repaired");
  writer.save();

  // Partition replica 2 and keep editing: a majority (2 of 3) still acks,
  // so the writes succeed — as partial writes.
  replicas[2]->flaky->down = true;
  writer.insert(0, "more ");
  writer.save();
  writer.insert(0, "even ");
  writer.save();
  EXPECT_GE(replicated.counters().partial_writes, 2u);
  const auto healthy = replicas[0]->server.raw_content("doc");
  ASSERT_TRUE(healthy.has_value());
  EXPECT_NE(replicas[2]->server.raw_content("doc").value_or(""), *healthy);

  // Partition heals; the anti-entropy pass pushes the verified ciphertext
  // back. All three replicas end byte-identical.
  replicas[2]->flaky->down = false;
  EXPECT_GE(replicated.repair_all(), 1u);
  EXPECT_GT(replicated.counters().repairs_succeeded, 0u);
  for (const auto& r : replicas) {
    EXPECT_EQ(r->server.raw_content("doc").value_or("!"), *healthy);
  }

  // And the healed copy actually decrypts: a reader served by replica 2
  // alone sees the document.
  ReplicatedChannel only_last({replicas[2]->flaky.get()},
                              gdocs_open_validator("pw"));
  GDocsMediator mediator2(&only_last, mediator_config("", 830), &clock);
  client::GDocsClient reader(&mediator2, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "even more replicated and repaired");
}

TEST_F(RecoveryTest, WriteQuorumIsSurfacedAndEnforced) {
  net::SimClock clock;
  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<net::Channel*> channels;
  for (int i = 0; i < 3; ++i) {
    replicas.push_back(std::make_unique<Replica>(
        store_dir_ + "_" + std::to_string(i), &clock,
        840 + static_cast<std::uint64_t>(i)));
    channels.push_back(replicas.back()->flaky.get());
  }
  ReplicatedChannel replicated(channels, gdocs_open_validator("pw"));

  FormData create;
  create.add("cmd", "create");
  net::HttpResponse resp = replicated.round_trip(
      net::HttpRequest::post_form("/Doc?docID=doc", create.encode()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.headers.get("X-Replication-Acks").value_or(""), "3/3");

  FormData save;
  save.add("session", "1");
  save.add("rev", "0");
  save.add("docContents", "opaque bytes");
  replicas[0]->flaky->down = true;
  resp = replicated.round_trip(
      net::HttpRequest::post_form("/Doc?docID=doc", save.encode()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.headers.get("X-Replication-Acks").value_or(""), "2/3");
  EXPECT_GE(replicated.counters().partial_writes, 1u);

  // Below the majority quorum the write fails loudly.
  replicas[1]->flaky->down = true;
  save.set("rev", "1");
  resp = replicated.round_trip(
      net::HttpRequest::post_form("/Doc?docID=doc", save.encode()));
  EXPECT_EQ(resp.status, 502);
  EXPECT_GE(replicated.counters().quorum_failures, 1u);
}

// --------------------------------------------------- exhaustive matrix

struct WorkloadResult {
  bool created = false;
  bool crashed = false;
  std::string acked;      // last text the server acknowledged
  std::string attempted;  // acked plus the (at most one) in-flight edit
};

WorkloadResult run_workload(const std::string& store_dir,
                            const std::string& journal_dir,
                            std::uint64_t seed) {
  WorkloadResult out;
  World w(store_dir, journal_dir, seed);
  client::GDocsClient writer(w.mediator.get(), "doc");
  try {
    writer.create();
    out.created = true;
    writer.insert(0, "alpha");
    out.attempted = writer.text();
    writer.save();
    out.acked = writer.text();
    writer.insert(5, " bravo");
    out.attempted = writer.text();
    writer.save();
    out.acked = writer.text();
    writer.insert(0, "charlie ");
    out.attempted = writer.text();
    writer.save();
    out.acked = writer.text();
  } catch (const CrashError&) {
    out.crashed = true;
  }
  return out;
}

TEST_F(RecoveryTest, CrashAtEveryPointNeverLosesAcknowledgedEdits) {
  // Discover the full crash matrix from an uninstrumented run instead of
  // hard-coding it: every durability step registers itself.
  CrashPoints::clear_seen();
  {
    const WorkloadResult dry =
        run_workload(store_dir_ + "_dry", journal_dir_ + "_dry", 900);
    ASSERT_FALSE(dry.crashed);
  }
  const std::vector<std::string> points = CrashPoints::seen();
  ASSERT_GE(points.size(), 10u) << "crash matrix unexpectedly small";

  std::uint64_t seed = 1000;
  for (const std::string& point : points) {
    // Crash at every OCCURRENCE of every point, not just the first: the
    // same step behaves differently under create, full save and delta
    // save.
    for (int nth = 1; nth <= 12; ++nth) {
      SCOPED_TRACE(point + " #" + std::to_string(nth));
      const std::string tag = "_" + point + "_" + std::to_string(nth);
      CrashPoints::arm(point, nth);
      const WorkloadResult r =
          run_workload(store_dir_ + tag, journal_dir_ + tag, seed);
      CrashPoints::disarm();
      seed += 20;
      if (!r.crashed) break;  // fewer than nth occurrences on this path

      // Reboot provider and client on the same directories.
      World w(store_dir_ + tag, journal_dir_ + tag, seed);
      seed += 20;
      client::GDocsClient reader(w.mediator.get(), "doc");
      try {
        reader.open();
        // The invariant: everything acknowledged before the crash is
        // still there. The in-flight edit may additionally have survived
        // (journal replay / server applied it) — both are legal; a torn
        // mixture or a lost acknowledged edit is not.
        EXPECT_TRUE(reader.text() == r.acked || reader.text() == r.attempted)
            << "recovered '" << reader.text() << "', acked '" << r.acked
            << "', attempted '" << r.attempted << "'";
      } catch (const ProtocolError&) {
        // Open can only fail if the document itself never made it.
        EXPECT_FALSE(r.created);
        EXPECT_TRUE(r.acked.empty());
      }
    }
  }
}

}  // namespace
}  // namespace privedit::extension
