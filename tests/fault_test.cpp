// Fault-injection tests: the retry policy, the FaultyChannel seam, and —
// the point of the exercise — proof that the mediator, the replication
// layer and the GDocs client/server survive transient network failures
// without corrupting document state. All faults are drawn from seeded RNGs
// so every run exercises the same failure schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/fault.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::net {
namespace {

HttpResponse echo_handler(const HttpRequest& req) {
  return HttpResponse::make(200, "echo:" + req.body);
}

TEST(RetryPolicy, DeterministicBackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.base_backoff_us = 1000;
  policy.multiplier = 2.0;
  policy.max_backoff_us = 5000;
  policy.jitter = 0.0;
  Xoshiro256 rng(1);
  std::uint64_t prev = 0;
  prev = policy.next_backoff_us(prev, rng);
  EXPECT_EQ(prev, 1000u);
  prev = policy.next_backoff_us(prev, rng);
  EXPECT_EQ(prev, 2000u);
  prev = policy.next_backoff_us(prev, rng);
  EXPECT_EQ(prev, 4000u);
  prev = policy.next_backoff_us(prev, rng);
  EXPECT_EQ(prev, 5000u);  // capped
  prev = policy.next_backoff_us(prev, rng);
  EXPECT_EQ(prev, 5000u);  // stays capped
}

TEST(RetryPolicy, DecorrelatedJitterStaysInEnvelopeAndSpreads) {
  RetryPolicy policy;
  policy.base_backoff_us = 10'000;
  policy.max_backoff_us = 90'000;
  policy.jitter = 0.5;
  Xoshiro256 rng(2);
  // First retry draws from [base, 3*base]; later retries from
  // [base, min(3*prev, cap)]. Every draw must stay in that envelope.
  std::uint64_t prev = 0;
  std::uint64_t lo_seen = UINT64_MAX, hi_seen = 0;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t hi =
        prev == 0 ? 30'000u
                  : std::min<std::uint64_t>(prev * 3, policy.max_backoff_us);
    const std::uint64_t b = policy.next_backoff_us(prev, rng);
    EXPECT_GE(b, 10'000u);
    EXPECT_LE(b, std::max<std::uint64_t>(hi, 10'000u));
    EXPECT_LE(b, 90'000u);
    lo_seen = std::min(lo_seen, b);
    hi_seen = std::max(hi_seen, b);
    prev = i % 5 == 4 ? 0 : b;  // restart the chain now and then
  }
  // The draws must actually use the envelope, not cluster in the old
  // narrow [b*(1-j), b] band: across 400 draws we expect samples near
  // both ends of [base, cap].
  EXPECT_LT(lo_seen, 15'000u);
  EXPECT_GT(hi_seen, 60'000u);
}

TEST(RetryPolicy, TwoClientsWithSameFailureInstantDiverge) {
  // The regression the jitter rework fixes: two clients observing the
  // same failure must not march in lock-step retry waves. With seeded but
  // different RNG streams the sleep sequences should separate quickly.
  RetryPolicy policy;
  policy.base_backoff_us = 2000;
  policy.max_backoff_us = 250'000;
  policy.jitter = 0.5;
  Xoshiro256 rng_a(100), rng_b(200);
  std::uint64_t prev_a = 0, prev_b = 0, identical = 0;
  for (int i = 0; i < 50; ++i) {
    prev_a = policy.next_backoff_us(prev_a, rng_a);
    prev_b = policy.next_backoff_us(prev_b, rng_b);
    if (prev_a == prev_b) ++identical;
  }
  EXPECT_LE(identical, 2u);
}

TEST(RetryPolicy, RetryAfterParsing) {
  HttpResponse resp;
  EXPECT_FALSE(retry_after_us(resp).has_value());
  resp.headers.set("Retry-After", "2");
  EXPECT_EQ(retry_after_us(resp), 2'000'000u);
  resp.headers.set("Retry-After", "  7  ");
  EXPECT_EQ(retry_after_us(resp), 7'000'000u);
  resp.headers.set("Retry-After", "nonsense");
  EXPECT_FALSE(retry_after_us(resp).has_value());
  resp.headers.set("Retry-After", "3x");
  EXPECT_FALSE(retry_after_us(resp).has_value());
  resp.headers.set("Retry-After", "");
  EXPECT_FALSE(retry_after_us(resp).has_value());
}

TEST(RetryPolicy, OverloadWaitHonorsRetryAfterUpToCap) {
  RetryPolicy policy;
  policy.retry_after_cap_us = 2'000'000;
  EXPECT_EQ(policy.overload_wait_us(5000, std::nullopt), 5000u);
  EXPECT_EQ(policy.overload_wait_us(5000, 1'000'000u), 1'000'000u);
  // Server asking for an hour is clamped to the cap.
  EXPECT_EQ(policy.overload_wait_us(5000, 3'600'000'000u), 2'000'000u);
  // Backoff already larger than the ask wins.
  EXPECT_EQ(policy.overload_wait_us(1'500'000, 1'000'000u), 1'500'000u);
}

TEST(RetryPolicy, ClassifiesFaultKinds) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.retryable(FaultKind::kConnect));
  EXPECT_TRUE(policy.retryable(FaultKind::kTruncated));
  EXPECT_TRUE(policy.retryable(FaultKind::kReset));
  EXPECT_FALSE(policy.retryable(FaultKind::kTimeout));
  EXPECT_FALSE(policy.retryable(FaultKind::kOther));
  policy.retry_truncated = false;
  EXPECT_TRUE(policy.retryable(FaultKind::kConnect));
  EXPECT_FALSE(policy.retryable(FaultKind::kTruncated));
  EXPECT_FALSE(policy.retryable(FaultKind::kReset));
}

TEST(FaultyChannel, AlwaysDropAlwaysThrowsConnect) {
  SimClock clock;
  LoopbackTransport inner(echo_handler, &clock, LatencyModel{},
                          crypto::CtrDrbg::from_seed(10));
  FaultSpec spec;
  spec.drop = 1.0;
  FaultyChannel faulty(&inner, spec, std::make_unique<Xoshiro256>(11));
  for (int i = 0; i < 5; ++i) {
    try {
      faulty.round_trip(HttpRequest::post_form("/x", "p"));
      FAIL() << "drop=1.0 must refuse every round trip";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.kind(), FaultKind::kConnect);
    }
  }
  EXPECT_EQ(faulty.counters().dropped, 5u);
  EXPECT_EQ(faulty.counters().delivered, 0u);
  EXPECT_EQ(inner.stats().requests, 0u);  // nothing reached the server
}

TEST(FaultyChannel, DelayChargesSimClock) {
  SimClock clock;
  LoopbackTransport inner(echo_handler, &clock, LatencyModel{},
                          crypto::CtrDrbg::from_seed(12));
  FaultSpec spec;
  spec.delay = 1.0;
  spec.max_delay_us = 30'000;
  FaultyChannel faulty(&inner, spec, std::make_unique<Xoshiro256>(13),
                       &clock);
  const std::uint64_t before = clock.now_us();
  faulty.round_trip(HttpRequest::post_form("/x", "p"));
  EXPECT_GT(clock.now_us(), before);
  EXPECT_EQ(faulty.counters().delayed, 1u);
}

TEST(FaultyChannel, TruncatedResponseStillDeliveredToServer) {
  // The distinction that makes retry semantics interesting: the server
  // processed the request even though the client never saw the reply.
  SimClock clock;
  LoopbackTransport inner(echo_handler, &clock, LatencyModel{},
                          crypto::CtrDrbg::from_seed(14));
  FaultSpec spec;
  spec.truncate_response = 1.0;
  FaultyChannel faulty(&inner, spec, std::make_unique<Xoshiro256>(15));
  try {
    faulty.round_trip(HttpRequest::post_form("/x", "p"));
    FAIL() << "truncate_response=1.0 must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), FaultKind::kTruncated);
  }
  EXPECT_EQ(inner.stats().requests, 1u);  // delivered despite the throw
}

TEST(RetryChannel, SurvivesHeavyDropRate) {
  SimClock clock;
  LoopbackTransport inner(echo_handler, &clock, LatencyModel{},
                          crypto::CtrDrbg::from_seed(20));
  FaultSpec spec;
  spec.drop = 0.3;
  spec.truncate_request = 0.1;
  FaultyChannel faulty(&inner, spec, std::make_unique<Xoshiro256>(21));
  RetryPolicy policy;
  policy.max_attempts = 10;
  RetryChannel retrying(&faulty, policy, std::make_unique<Xoshiro256>(22),
                        &clock);

  for (int i = 0; i < 100; ++i) {
    const HttpResponse resp = retrying.round_trip(
        HttpRequest::post_form("/x", "msg-" + std::to_string(i)));
    EXPECT_EQ(resp.body, "echo:msg-" + std::to_string(i));
  }
  EXPECT_GT(retrying.counters().retries, 0u);
  EXPECT_EQ(retrying.counters().giveups, 0u);
  EXPECT_GT(retrying.counters().backoff_us, 0u);  // charged to the SimClock
}

TEST(RetryChannel, GivesUpWhenPolicyExhausted) {
  SimClock clock;
  LoopbackTransport inner(echo_handler, &clock, LatencyModel{},
                          crypto::CtrDrbg::from_seed(23));
  FaultSpec spec;
  spec.drop = 1.0;
  FaultyChannel faulty(&inner, spec, std::make_unique<Xoshiro256>(24));
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryChannel retrying(&faulty, policy, std::make_unique<Xoshiro256>(25),
                        &clock);
  EXPECT_THROW(retrying.round_trip(HttpRequest::post_form("/x", "p")),
               TransportError);
  EXPECT_EQ(retrying.counters().attempts, 3u);
  EXPECT_EQ(retrying.counters().giveups, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: the private-editing stack over a flaky network.
// ---------------------------------------------------------------------------

struct FlakyGDocsStack {
  // client -> mediator -> retry -> faults -> loopback -> GDocsServer.
  // Faults are injected *below* the mediator, so retried requests are the
  // mediator's own (idempotent-by-revision) wire messages. Only
  // pre-delivery faults are injected here: a dropped or reset request
  // never reached the server, so the retry is unconditionally safe.
  FlakyGDocsStack(FaultSpec spec, std::uint64_t seed) {
    transport = std::make_unique<LoopbackTransport>(
        [this](const HttpRequest& r) { return server.handle(r); }, &clock,
        LatencyModel{}, crypto::CtrDrbg::from_seed(seed));
    faulty = std::make_unique<FaultyChannel>(
        transport.get(), spec, std::make_unique<Xoshiro256>(seed + 1),
        &clock);
    RetryPolicy policy;
    policy.max_attempts = 12;
    retrying = std::make_unique<RetryChannel>(
        faulty.get(), policy, std::make_unique<Xoshiro256>(seed + 2),
        &clock);
    extension::MediatorConfig config;
    config.password = "pw";
    config.scheme.mode = enc::Mode::kRpc;  // integrity-protected
    config.scheme.kdf_iterations = 5;
    config.rng_factory = extension::seeded_rng_factory(seed + 3);
    mediator = std::make_unique<extension::GDocsMediator>(
        retrying.get(), std::move(config), &clock);
  }

  cloud::GDocsServer server;
  SimClock clock;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<FaultyChannel> faulty;
  std::unique_ptr<RetryChannel> retrying;
  std::unique_ptr<extension::GDocsMediator> mediator;
};

TEST(FaultInjection, EditSessionSurvivesDropsAndResets) {
  FaultSpec spec;
  spec.drop = 0.10;              // the acceptance bar: 10% connection drops
  spec.truncate_request = 0.10;  // plus 10% streams dying mid-request
  FlakyGDocsStack stack(spec, 40);

  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  std::string expected;
  for (int i = 0; i < 30; ++i) {
    const std::string word = "w" + std::to_string(i) + " ";
    alice.insert(alice.text().size(), word);
    expected += word;
    if (i % 3 == 0) alice.erase(0, 2), expected.erase(0, 2);
    alice.save();
  }

  // The client's view, the mediator's mirror and the (decrypted) server
  // state must all agree — no edit was lost or applied twice.
  EXPECT_EQ(alice.text(), expected);
  EXPECT_EQ(stack.mediator->managed_plaintext("doc"), expected);
  const std::string stored = *stack.server.raw_content("doc");
  EXPECT_EQ(stored.find(expected), std::string::npos);  // still ciphertext

  client::GDocsClient bob(stack.mediator.get(), "doc");
  bob.open();
  EXPECT_EQ(bob.text(), expected);

  // The schedule really injected faults and the retries really fired.
  EXPECT_GT(stack.faulty->counters().dropped +
                stack.faulty->counters().truncated_requests,
            0u);
  EXPECT_GT(stack.retrying->counters().retries, 0u);
  EXPECT_EQ(stack.retrying->counters().giveups, 0u);
  EXPECT_EQ(alice.conflict_complaints(), 0u);
  EXPECT_EQ(bob.conflict_complaints(), 0u);
}

TEST(FaultInjection, GarbledCiphertextNeverDecryptsSilently) {
  // Corrupt every response body by one bit. Opening the document must
  // fail loudly (integrity) — under no circumstances may the mediator
  // hand the client a silently corrupted plaintext.
  const std::string expected = "the canonical document text";
  FlakyGDocsStack clean(FaultSpec{}, 50);
  client::GDocsClient writer(clean.mediator.get(), "doc");
  writer.create();
  writer.insert(0, expected);
  writer.save();
  const std::string ciphertext = *clean.server.raw_content("doc");

  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    FaultSpec spec;
    spec.garble_response = 1.0;
    FlakyGDocsStack flaky(spec, seed);
    // Seed the flaky stack's server with the (valid) ciphertext directly —
    // the create goes straight to the handler, below the garbling channel.
    FormData create;
    create.add("cmd", "create");
    flaky.server.handle(
        HttpRequest::post_form("/Doc?docID=doc", create.encode()));
    flaky.server.set_raw_content("doc", ciphertext);
    client::GDocsClient reader(flaky.mediator.get(), "doc");
    try {
      reader.open();
      // If a flip happened to land outside the ciphertext field the open
      // can still succeed — but then the text must be exactly right.
      EXPECT_EQ(reader.text(), expected);
    } catch (const Error&) {
      // Detected: integrity/parse failure surfaced instead of bad data.
      EXPECT_TRUE(reader.text().empty());
    }
  }
}

TEST(FaultInjection, ReplicationMasksADeadProvider) {
  // Provider 0 refuses every connection; provider 1 is healthy. Writes
  // reach the survivor, reads fail over to it, and the document decrypts
  // to exactly what was written.
  SimClock clock;
  cloud::GDocsServer dead_server;
  cloud::GDocsServer live_server;
  LoopbackTransport dead_t(
      [&dead_server](const HttpRequest& r) { return dead_server.handle(r); },
      &clock, LatencyModel{}, crypto::CtrDrbg::from_seed(80));
  LoopbackTransport live_t(
      [&live_server](const HttpRequest& r) { return live_server.handle(r); },
      &clock, LatencyModel{}, crypto::CtrDrbg::from_seed(81));
  FaultSpec dead_spec;
  dead_spec.drop = 1.0;
  FaultyChannel dead(&dead_t, dead_spec, std::make_unique<Xoshiro256>(82));

  // Availability mode: provider 0 is gone for good, so a majority quorum
  // (2-of-2 here) could never be met — accept any single ack instead.
  extension::ReplicationConfig repl_config;
  repl_config.write_quorum = 1;
  extension::ReplicatedChannel replicated(
      {&dead, &live_t}, extension::gdocs_open_validator("pw"), repl_config);
  extension::MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 5;
  config.rng_factory = extension::seeded_rng_factory(83);
  extension::GDocsMediator mediator(&replicated, std::move(config), &clock);

  client::GDocsClient writer(&mediator, "doc");
  writer.create();
  writer.insert(0, "replicated in spite of provider 0");
  writer.save();

  EXPECT_FALSE(live_server.raw_content("doc")->empty());
  EXPECT_FALSE(dead_server.raw_content("doc").has_value());
  EXPECT_GT(replicated.counters().write_replica_failures, 0u);

  client::GDocsClient reader(&mediator, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "replicated in spite of provider 0");
  // The write failures already taught the health scores that provider 0 is
  // dead, so the read goes straight to the live replica instead of timing
  // out against the dead one first.
  EXPECT_GT(replicated.counters().health_reorders, 0u);
  EXPECT_EQ(replicated.counters().read_failovers, 0u);
}

TEST(FaultInjection, ReplicationSkipsGarblingProvider) {
  // Provider 0 answers but corrupts every body; the validator rejects it
  // and reads fail over to the honest replica.
  SimClock clock;
  cloud::GDocsServer garbler_server;
  cloud::GDocsServer honest_server;
  LoopbackTransport garbler_t(
      [&garbler_server](const HttpRequest& r) {
        return garbler_server.handle(r);
      },
      &clock, LatencyModel{}, crypto::CtrDrbg::from_seed(90));
  LoopbackTransport honest_t(
      [&honest_server](const HttpRequest& r) {
        return honest_server.handle(r);
      },
      &clock, LatencyModel{}, crypto::CtrDrbg::from_seed(91));
  FaultSpec garble_spec;
  garble_spec.garble_response = 1.0;
  FaultyChannel garbler(&garbler_t, garble_spec,
                        std::make_unique<Xoshiro256>(92));

  extension::ReplicatedChannel replicated(
      {&garbler, &honest_t}, extension::gdocs_open_validator("pw"));
  extension::MediatorConfig config;
  config.password = "pw";
  config.scheme.mode = enc::Mode::kRpc;
  config.scheme.kdf_iterations = 5;
  config.rng_factory = extension::seeded_rng_factory(93);
  extension::GDocsMediator mediator(&replicated, std::move(config), &clock);

  client::GDocsClient writer(&mediator, "doc");
  writer.create();
  writer.insert(0, "survives a corrupting provider");
  writer.save();

  client::GDocsClient reader(&mediator, "doc");
  reader.open();
  EXPECT_EQ(reader.text(), "survives a corrupting provider");
}

}  // namespace
}  // namespace privedit::net
