// Client-side behaviour tests: local editing, undo, save lifecycle and
// error handling of the scripted Google Documents client.

#include <gtest/gtest.h>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/error.hpp"

namespace privedit::client {
namespace {

struct ClientStack {
  ClientStack() {
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(500));
  }
  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
};

TEST(GDocsClientTest, LocalEditsAndBounds) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "hello");
  c.insert(5, " world");
  c.erase(0, 1);
  c.replace(0, 4, "Hell");
  EXPECT_EQ(c.text(), "Hell world");
  EXPECT_THROW(c.insert(99, "x"), Error);
  EXPECT_THROW(c.erase(5, 99), Error);
  EXPECT_THROW(c.replace(9, 5, "x"), Error);
}

TEST(GDocsClientTest, UndoRevertsEditsInOrder) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "base text");
  c.insert(4, "!");
  c.erase(0, 2);
  c.replace(0, 2, "XY");
  EXPECT_EQ(c.undo_depth(), 4u);

  EXPECT_TRUE(c.undo());  // replace
  EXPECT_EQ(c.text(), "se! text");
  EXPECT_TRUE(c.undo());  // erase
  EXPECT_EQ(c.text(), "base! text");
  EXPECT_TRUE(c.undo());  // insert "!"
  EXPECT_EQ(c.text(), "base text");
  EXPECT_TRUE(c.undo());  // first insert
  EXPECT_EQ(c.text(), "");
  EXPECT_FALSE(c.undo());
}

TEST(GDocsClientTest, UndoSurvivesSaves) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "saved content");
  c.save();
  c.insert(0, "unsaved ");
  c.save();
  // Undo works across the save boundary; the next save sends the revert.
  EXPECT_TRUE(c.undo());
  EXPECT_EQ(c.text(), "saved content");
  c.save();
  EXPECT_EQ(stack.server.raw_content("d"), "saved content");
}

TEST(GDocsClientTest, UndoHistoryClearedOnOpen) {
  ClientStack stack;
  GDocsClient a(stack.transport.get(), "d");
  a.create();
  a.insert(0, "content");
  a.save();

  GDocsClient b(stack.transport.get(), "d");
  b.open();
  EXPECT_EQ(b.undo_depth(), 0u);
  EXPECT_FALSE(b.undo());
}

TEST(GDocsClientTest, SaveIsIdempotentWhenClean) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "x");
  EXPECT_TRUE(c.save());
  EXPECT_FALSE(c.save());  // nothing changed
  EXPECT_EQ(c.saves_sent(), 1u);
}

TEST(GDocsClientTest, SaveWithoutSessionThrows) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  EXPECT_THROW(c.save(), Error);
}

TEST(GDocsClientTest, OpenMissingDocumentThrows) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "never-created");
  EXPECT_THROW(c.open(), ProtocolError);
}

TEST(GDocsClientTest, BadRawDeltaRejectedLocally) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "abc");
  c.save();
  c.insert(3, "d");
  c.queue_raw_delta(delta::Delta::parse("+WRONG"));
  EXPECT_THROW(c.save(), Error);  // delta does not produce current text
}

TEST(GDocsClientTest, SpellcheckRoundTrip) {
  ClientStack stack;
  GDocsClient c(stack.transport.get(), "d");
  c.create();
  c.insert(0, "the fox zzgrblat");
  const auto words = c.spellcheck();
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], "zzgrblat");
  EXPECT_EQ(c.export_txt(), "");  // nothing saved yet
  c.save();
  EXPECT_EQ(c.export_txt(), "the fox zzgrblat");
}

}  // namespace
}  // namespace privedit::client
