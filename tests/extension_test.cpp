// End-to-end tests of the extension: client → mediator → transport → cloud
// service, reproducing the paper's functionality results (§VII-A) and the
// security properties of §VI.

#include <gtest/gtest.h>

#include <memory>

#include "privedit/client/file_clients.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/file_servers.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/util/error.hpp"
#include "privedit/workload/edits.hpp"

namespace privedit::extension {
namespace {

/// Full simulated stack for one Google Documents deployment.
struct GDocsStack {
  explicit GDocsStack(MediatorConfig config = make_config()) {
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(1000));
    mediator =
        std::make_unique<GDocsMediator>(transport.get(), std::move(config),
                                        &clock);
  }

  static MediatorConfig make_config() {
    MediatorConfig config;
    config.password = "swordfish";
    config.rng_factory = seeded_rng_factory(7);
    return config;
  }

  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<GDocsMediator> mediator;
};

TEST(GDocsMediatorTest, ServerOnlySeesCiphertext) {
  GDocsStack stack;
  stack.transport->enable_tap(true);

  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "Attack at dawn. Bring the secret plans.");
  alice.save();
  alice.insert(7, "precisely ");
  alice.save();

  // The stored document is not the plaintext and does not contain it.
  const std::string stored = *stack.server.raw_content("doc1");
  EXPECT_NE(stored, alice.text());
  EXPECT_EQ(stored.find("Attack"), std::string::npos);
  EXPECT_EQ(stored.find("secret"), std::string::npos);

  // Nothing that crossed the wire after mediation contains plaintext words.
  for (const std::string& frame : stack.transport->tap()) {
    EXPECT_EQ(frame.find("Attack"), std::string::npos);
    EXPECT_EQ(frame.find("dawn"), std::string::npos);
    EXPECT_EQ(frame.find("secret"), std::string::npos);
  }

  // The mediator's mirror matches the client.
  EXPECT_EQ(stack.mediator->managed_plaintext("doc1"), alice.text());
  EXPECT_EQ(stack.mediator->counters().full_saves_encrypted, 1u);
  EXPECT_EQ(stack.mediator->counters().deltas_transformed, 1u);
}

TEST(GDocsMediatorTest, ServerAppliesCdeltasConsistently) {
  GDocsStack stack;
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "The quick brown fox jumps over the lazy dog.");
  alice.save();

  auto rng = crypto::CtrDrbg::from_seed(99);
  workload::SentenceEditor editor(alice.text(), rng.get());
  for (int i = 0; i < 40; ++i) {
    const delta::Delta d = editor.step_mixed();
    // Mirror the edit into the client and save.
    alice.replace(0, alice.text().size(), editor.document());
    alice.save();
  }

  // A second user with the shared password opens the document cold.
  GDocsStack::make_config();
  MediatorConfig config2 = GDocsStack::make_config();
  GDocsMediator mediator2(stack.transport.get(), std::move(config2),
                          &stack.clock);
  client::GDocsClient bob(&mediator2, "doc1");
  bob.open();
  EXPECT_EQ(bob.text(), alice.text());
}

TEST(GDocsMediatorTest, ReopenWithSamePassword) {
  GDocsStack stack;
  {
    client::GDocsClient alice(stack.mediator.get(), "doc1");
    alice.create();
    alice.insert(0, "persistent secret content");
    alice.save();
  }
  // Fresh mediator (fresh browser session) — state must come entirely from
  // the password and the stored ciphertext.
  GDocsMediator mediator2(stack.transport.get(), GDocsStack::make_config(),
                          &stack.clock);
  client::GDocsClient bob(&mediator2, "doc1");
  bob.open();
  EXPECT_EQ(bob.text(), "persistent secret content");

  // And the session continues incrementally.
  bob.insert(0, "still ");
  bob.save();
  EXPECT_EQ(mediator2.managed_plaintext("doc1"), "still persistent secret content");
}

TEST(GDocsMediatorTest, WrongPasswordCannotOpen) {
  GDocsStack stack;
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "top secret");
  alice.save();

  MediatorConfig bad = GDocsStack::make_config();
  bad.password = "letmein";
  GDocsMediator mediator2(stack.transport.get(), std::move(bad), &stack.clock);
  client::GDocsClient eve(&mediator2, "doc1");
  EXPECT_THROW(eve.open(), CryptoError);
}

TEST(GDocsMediatorTest, ServerSideFeaturesAreBlocked) {
  GDocsStack stack;
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "mispelled wrds evrywhere");
  alice.save();

  // §VII-A: spell checking and export need the plaintext at the server —
  // the extension blocks them rather than leak content.
  EXPECT_THROW(alice.spellcheck(), ProtocolError);
  EXPECT_THROW(alice.export_txt(), ProtocolError);
  EXPECT_EQ(stack.mediator->counters().requests_blocked, 2u);
  EXPECT_EQ(stack.server.counters().spellchecks, 0u);
  EXPECT_EQ(stack.server.counters().exports, 0u);
}

TEST(GDocsMediatorTest, AcksAreBlanked) {
  GDocsStack stack;
  stack.transport->enable_tap(true);
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "hello");
  alice.save();
  EXPECT_GE(stack.mediator->counters().acks_blanked, 1u);
  // Single-user editing works flawlessly despite the blanked fields.
  alice.insert(5, " world");
  alice.save();
  EXPECT_EQ(alice.conflict_complaints(), 0u);
  EXPECT_EQ(stack.mediator->managed_plaintext("doc1"), "hello world");
}

TEST(GDocsMediatorTest, LegacyPlaintextDocumentsPassThrough) {
  GDocsStack stack;
  // A document created *without* the extension.
  client::GDocsClient direct(stack.transport.get(), "plain1");
  direct.create();
  direct.insert(0, "ordinary unencrypted document");
  direct.save();

  // Opened through the mediator: recognised as non-container, passed along.
  client::GDocsClient user(stack.mediator.get(), "plain1");
  user.open();
  EXPECT_EQ(user.text(), "ordinary unencrypted document");
  EXPECT_GE(stack.mediator->counters().passthrough_unmanaged, 1u);
  // Saves to unmanaged documents continue to pass through unencrypted.
  user.insert(0, "still ");
  user.save();
  EXPECT_EQ(stack.server.raw_content("plain1"), "still ordinary unencrypted document");
}

TEST(GDocsMediatorTest, CollaborativeEditingWithoutExtensionMerges) {
  GDocsStack stack;
  // Both clients talk straight to the transport (no extension).
  client::GDocsClient alice(stack.transport.get(), "doc");
  alice.create();
  alice.insert(0, "base text.");
  alice.save();

  client::GDocsClient bob(stack.transport.get(), "doc");
  bob.open();

  alice.insert(0, "alice was here. ");
  alice.save();

  bob.insert(bob.text().size(), " bob too.");
  bob.save();  // stale rev — server merges, client adopts server content

  EXPECT_EQ(bob.merges(), 1u);
  EXPECT_EQ(bob.conflict_complaints(), 0u);
}

TEST(GDocsMediatorTest, CollaborativeEditingWithExtensionComplains) {
  GDocsStack stack;
  client::GDocsClient alice(stack.mediator.get(), "doc");
  alice.create();
  alice.insert(0, "base text here for everyone.");
  alice.save();

  GDocsMediator mediator2(stack.transport.get(), GDocsStack::make_config(),
                          &stack.clock);
  client::GDocsClient bob(&mediator2, "doc");
  bob.open();

  alice.insert(0, "alice's edit. ");
  alice.save();

  // Bob edits concurrently; his extension's ciphertext state is stale, so
  // either the server rejects his cdelta or he gets an unreconcilable
  // conflict — §VII-A: "Simultaneous editing by different parties leads to
  // client's complaints".
  bool anomaly = false;
  try {
    bob.insert(0, "bob's edit. ");
    bob.save();
    anomaly = bob.conflict_complaints() > 0;
  } catch (const Error&) {
    anomaly = true;
  }
  EXPECT_TRUE(anomaly);
}

TEST(GDocsMediatorTest, TamperingDetectedWithRpc) {
  MediatorConfig config = GDocsStack::make_config();
  config.scheme.mode = enc::Mode::kRpc;
  GDocsStack stack(std::move(config));
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "integrity-protected content");
  alice.save();

  // Malicious provider flips stored ciphertext.
  std::string stored = *stack.server.raw_content("doc1");
  stored[stored.size() / 2] =
      stored[stored.size() / 2] == 'A' ? 'B' : 'A';
  stack.server.set_raw_content("doc1", stored);

  MediatorConfig config2 = GDocsStack::make_config();
  config2.scheme.mode = enc::Mode::kRpc;
  GDocsMediator mediator2(stack.transport.get(), std::move(config2),
                          &stack.clock);
  client::GDocsClient bob(&mediator2, "doc1");
  EXPECT_THROW(bob.open(), Error);  // IntegrityError or ParseError
}

TEST(GDocsMediatorTest, RollbackToOldVersionDetectedByLengthOrChain) {
  MediatorConfig config = GDocsStack::make_config();
  config.scheme.mode = enc::Mode::kRpc;
  GDocsStack stack(std::move(config));
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "version one");
  alice.save();
  alice.insert(0, "version two: ");
  alice.save();

  // Roll back to v1 — a full-document replay. This is the known limitation:
  // a complete consistent old snapshot verifies (no external freshness),
  // so the fresh open SUCCEEDS but yields the old content.
  const auto& history = stack.server.history("doc1");
  ASSERT_GE(history.size(), 2u);
  stack.server.set_raw_content("doc1", history.back());

  MediatorConfig config2 = GDocsStack::make_config();
  config2.scheme.mode = enc::Mode::kRpc;
  GDocsMediator mediator2(stack.transport.get(), std::move(config2),
                          &stack.clock);
  client::GDocsClient bob(&mediator2, "doc1");
  bob.open();
  EXPECT_EQ(bob.text(), "version one");  // silently stale — documented gap
}

TEST(GDocsMediatorTest, PaddingQuantisesMessageLengths) {
  MediatorConfig config = GDocsStack::make_config();
  config.pad_bucket = 512;
  GDocsStack stack(std::move(config));
  stack.transport->enable_tap(true);

  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  alice.insert(0, "some starting content for the padded test.");
  alice.save();
  alice.insert(3, "x");
  alice.save();
  alice.insert(9, "yyyyyy");
  alice.save();

  // Every mediated update body is a multiple of the bucket.
  std::size_t checked = 0;
  for (const std::string& frame : stack.transport->tap()) {
    if (frame.rfind("POST", 0) != 0) continue;
    const net::HttpRequest req = net::HttpRequest::parse(frame);
    if (req.body.find("pad=") == std::string::npos) continue;
    EXPECT_EQ(req.body.size() % 512, 0u) << req.body.size();
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

TEST(GDocsMediatorTest, RandomDelayAdvancesClock) {
  MediatorConfig config = GDocsStack::make_config();
  config.random_delay_us = 250'000;
  GDocsStack stack(std::move(config));
  client::GDocsClient alice(stack.mediator.get(), "doc1");
  alice.create();
  const std::uint64_t before = stack.clock.now_us();
  alice.insert(0, "abc");
  alice.save();
  EXPECT_GT(stack.clock.now_us(), before);
}

// §VI-B covert channel: the op pattern leaks Ord(q). The re-diff
// countermeasure collapses any semantically-equivalent delta to the same
// minimal form, killing the channel.
TEST(GDocsMediatorTest, RediffKillsDeltaPatternCovertChannel) {
  auto leak_signature = [](bool rediff, char secret) {
    MediatorConfig config = GDocsStack::make_config();
    config.rediff = rediff;
    GDocsStack stack(std::move(config));
    stack.transport->enable_tap(true);
    client::GDocsClient mallory(stack.mediator.get(), "doc1");
    mallory.create();
    mallory.insert(0, "abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz");
    mallory.save();
    stack.transport->clear_tap();

    // Malicious client encodes `secret` in the delta op pattern.
    const delta::Delta covert =
        workload::covert_ord_delta(mallory.text(), 5, 'Q', secret);
    mallory.insert(5, "Q");  // the visible edit covert encodes
    // covert transforms old text -> old text with Q at 5; but insert()
    // already applied it, so rebuild: queue the covert delta computed
    // against the *saved* text.
    mallory.queue_raw_delta(covert);
    mallory.save();

    // Signature = size of the delta save request body.
    for (const std::string& frame : stack.transport->tap()) {
      if (frame.rfind("POST", 0) == 0) {
        const net::HttpRequest req = net::HttpRequest::parse(frame);
        if (req.body.find("delta=") != std::string::npos) {
          return req.body.size();
        }
      }
    }
    return std::size_t{0};
  };

  // Without re-diff, 'b' (Ord 2) and 'z' (Ord 26) produce different wire
  // sizes — the channel works.
  const std::size_t leak_b = leak_signature(false, 'b');
  const std::size_t leak_z = leak_signature(false, 'z');
  EXPECT_NE(leak_b, leak_z);

  // With re-diff, both collapse to the minimal one-char insert.
  const std::size_t fixed_b = leak_signature(true, 'b');
  const std::size_t fixed_z = leak_signature(true, 'z');
  EXPECT_EQ(fixed_b, fixed_z);
}

// --------------------------------------------------------- other services

TEST(BespinMediatorTest, EncryptsWholeFiles) {
  cloud::BespinServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(2000));
  MediatorConfig config;
  config.password = "bespin-pass";
  config.rng_factory = seeded_rng_factory(8);
  BespinMediator mediator(&transport, std::move(config));

  client::BespinClient dev(&mediator, "src/main.js");
  dev.set_text("function secretAlgorithm() { return 0xdeadbeef; }");
  dev.save();

  const std::string stored = *server.raw_file("src/main.js");
  EXPECT_EQ(stored.find("secretAlgorithm"), std::string::npos);

  client::BespinClient other(&mediator, "src/main.js");
  other.load();
  EXPECT_EQ(other.text(), dev.text());
}

TEST(BespinMediatorTest, BlocksUnknownTraffic) {
  cloud::BespinServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(2001));
  MediatorConfig config;
  config.rng_factory = seeded_rng_factory(9);
  BespinMediator mediator(&transport, std::move(config));

  net::HttpRequest telemetry;
  telemetry.method = "POST";
  telemetry.target = "/telemetry";
  telemetry.body = "user typed: secret";
  EXPECT_EQ(mediator.round_trip(telemetry).status, 403);
  EXPECT_EQ(mediator.blocked_count(), 1u);
}

TEST(BuzzwordMediatorTest, EncryptsTextRunsOnly) {
  cloud::BuzzwordServer server;
  net::SimClock clock;
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(3000));
  MediatorConfig config;
  config.password = "buzzword-pass";
  config.rng_factory = seeded_rng_factory(10);
  BuzzwordMediator mediator(&transport, std::move(config));

  client::BuzzwordClient writer(&mediator, "novel");
  writer.set_paragraphs({"Chapter one: the secret.", "It was raining."});
  writer.save();

  const std::string stored = *server.raw_document("novel");
  // Markup survives; text does not.
  EXPECT_NE(stored.find("<textRun"), std::string::npos);
  EXPECT_EQ(stored.find("secret"), std::string::npos);
  EXPECT_EQ(stored.find("raining"), std::string::npos);

  client::BuzzwordClient reader(&mediator, "novel");
  reader.load();
  ASSERT_EQ(reader.paragraphs().size(), 2u);
  EXPECT_EQ(reader.paragraphs()[0], "Chapter one: the secret.");
  EXPECT_EQ(reader.paragraphs()[1], "It was raining.");
}

// ------------------------------------------------------- DocumentSession

TEST(DocumentSessionTest, CreateOpenRoundTrip) {
  const auto rng = seeded_rng_factory(11);
  enc::SchemeConfig config;
  DocumentSession session = DocumentSession::create_new("pw", config, rng);
  session.encrypt_full("session contents");
  const std::string doc = session.scheme().ciphertext_doc();

  DocumentSession reopened = DocumentSession::open("pw", doc, rng);
  EXPECT_EQ(reopened.plaintext(), "session contents");
  EXPECT_THROW(DocumentSession::open("wrong", doc, rng), CryptoError);
}

TEST(DocumentSessionTest, OpenReadsKdfParamsFromHeader) {
  const auto rng = seeded_rng_factory(12);
  enc::SchemeConfig config;
  config.kdf_iterations = 3;  // unusual value, must round-trip via header
  DocumentSession session = DocumentSession::create_new("pw", config, rng);
  session.encrypt_full("x");
  DocumentSession reopened =
      DocumentSession::open("pw", session.scheme().ciphertext_doc(), rng);
  EXPECT_EQ(reopened.scheme().header().kdf_iterations, 3u);
}

}  // namespace
}  // namespace privedit::extension
