// Ciphertext-block differential compression (delta/block_diff.hpp) and its
// wire form (enc/block_wire.hpp): round-trip properties over the copy-add
// codec, the in-place applier, the digest-only encoder the repair path
// uses, anchor/CRC rejection, and the wire grammar's bounds.
//
// Scale the randomized rounds with PRIVEDIT_DIFF_ITERS=n (tools/check.sh
// diff soaks exactly this knob).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "privedit/delta/block_diff.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace {

using privedit::Error;
using privedit::ErrorCode;
using privedit::IntegrityError;
using privedit::ParseError;
using privedit::Xoshiro256;
using privedit::as_bytes;
using privedit::crc32;
namespace delta = privedit::delta;
namespace enc = privedit::enc;

std::size_t iter_scale() {
  const char* env = std::getenv("PRIVEDIT_DIFF_ITERS");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

/// Round trips source -> target through every codec combination: local
/// encoder out-of-place + in-place, wire fixed point, digest-only encoder.
void expect_round_trip(const std::string& source, const std::string& target,
                       std::size_t block_size) {
  const delta::BlockDelta local =
      delta::block_diff(source, target, block_size);
  EXPECT_EQ(local.source_size, source.size());
  EXPECT_EQ(local.target_size, target.size());
  ASSERT_EQ(delta::apply_block_delta(local, source), target)
      << "local encoder, block_size=" << block_size;

  std::string doc = source;
  delta::apply_block_delta_inplace(local, doc);
  EXPECT_EQ(doc, target) << "in-place apply, block_size=" << block_size;

  const std::string wire = enc::block_delta_to_wire(local);
  EXPECT_EQ(enc::block_delta_from_wire(wire), local);

  delta::BlockDelta remote = delta::block_diff_from_digests(
      delta::block_digests(source, block_size), source.size(), target,
      block_size);
  remote.source_crc = crc32(as_bytes(source));
  EXPECT_EQ(delta::apply_block_delta(remote, source), target)
      << "digest-only encoder, block_size=" << block_size;
}

std::string random_text(Xoshiro256& rng, std::size_t len) {
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.below(256));
  }
  return out;
}

// ------------------------------------------------------------ edge cases --

TEST(BlockDiff, EmptyAndDegenerateDocuments) {
  expect_round_trip("", "", 16);
  expect_round_trip("", "fresh content", 16);
  expect_round_trip("old content", "", 16);
  expect_round_trip("x", "y", 1);
  expect_round_trip("x", "x", 1);
}

TEST(BlockDiff, IdenticalInputsShipNoLiterals) {
  const std::string doc(4096, 'Q');
  const delta::BlockDelta d = delta::block_diff(doc, doc, 64);
  EXPECT_EQ(d.added_bytes(), 0u);
  EXPECT_EQ(d.copied_bytes(), doc.size());
  EXPECT_LT(enc::block_delta_to_wire(d).size(), doc.size() / 10);
  EXPECT_EQ(delta::apply_block_delta(d, doc), doc);
}

TEST(BlockDiff, OneByteEditCompressesTenfold) {
  // The PR's acceptance shape at codec level: a 1-char edit on a >=100 KB
  // document must shrink bytes-on-wire by at least 10x vs the full body.
  Xoshiro256 rng(11);
  std::string source = random_text(rng, 120 * 1024);
  std::string target = source;
  target[60'000] = static_cast<char>(target[60'000] ^ 0x5a);
  const delta::BlockDelta d = delta::block_diff(source, target);
  const std::string wire = enc::block_delta_to_wire(d);
  EXPECT_LE(wire.size() * 10, target.size())
      << "1-byte edit wire is " << wire.size() << " of " << target.size();
  EXPECT_EQ(delta::apply_block_delta(d, source), target);
}

TEST(BlockDiff, BinaryBytesSurviveEveryPath) {
  std::string all_bytes;
  for (int round = 0; round < 3; ++round) {
    for (int b = 0; b < 256; ++b) {
      all_bytes.push_back(static_cast<char>(b));
    }
  }
  std::string shuffled = all_bytes;
  for (std::size_t i = 0; i + 7 < shuffled.size(); i += 7) {
    std::swap(shuffled[i], shuffled[i + 3]);
  }
  expect_round_trip(all_bytes, shuffled, 16);
  expect_round_trip(shuffled, all_bytes, 5);  // block size not a divisor
}

TEST(BlockDiff, EditsAtBlockBoundaries) {
  const std::size_t bs = 32;
  std::string source;
  for (std::size_t i = 0; i < 8 * bs; ++i) {
    source.push_back(static_cast<char>('A' + i % 26));
  }
  // Insert exactly at a boundary, delete a whole aligned block, and a
  // final short block: the matcher's alignment edge cases.
  std::string inserted = source;
  inserted.insert(4 * bs, std::string(bs, '#'));
  expect_round_trip(source, inserted, bs);

  std::string dropped = source;
  dropped.erase(2 * bs, bs);
  expect_round_trip(source, dropped, bs);

  std::string short_tail = source + "tail";
  expect_round_trip(source, short_tail, bs);
  expect_round_trip(short_tail, source, bs);
}

TEST(BlockDiff, InPlaceHandlesOverlapAndCycles) {
  // Swapped halves force copy commands whose ranges form a dependency
  // cycle in the in-place applier (each half must be read before the
  // other overwrites it).
  std::string source;
  for (std::size_t i = 0; i < 512; ++i) {
    source.push_back(static_cast<char>('a' + i % 23));
  }
  const std::string target =
      source.substr(256) + source.substr(0, 256);
  expect_round_trip(source, target, 64);

  // Shift-by-one: every copy overlaps its own destination.
  expect_round_trip(source, "x" + source.substr(0, source.size() - 1), 64);
  expect_round_trip(source, source.substr(1) + "x", 64);
}

// --------------------------------------------------------------- anchors --

TEST(BlockDiff, StaleSourceIsRejectedByAnchor) {
  const std::string source(300, 'a');
  const std::string target(300, 'b');
  const delta::BlockDelta d = delta::block_diff(source, target, 32);

  std::string wrong_bytes = source;
  wrong_bytes[5] = 'z';
  try {
    (void)delta::apply_block_delta(d, wrong_bytes);
    FAIL() << "apply accepted a source that misses the CRC anchor";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }
  EXPECT_THROW((void)delta::apply_block_delta(d, source.substr(1)), Error);
}

TEST(BlockDiff, TamperedDeltaMissesTargetCrc) {
  const std::string source(300, 'a');
  std::string target = source;
  target[150] = 'b';
  delta::BlockDelta d = delta::block_diff(source, target, 32);
  d.target_crc ^= 1;  // the reconstruction can no longer match
  EXPECT_THROW((void)delta::apply_block_delta(d, source), IntegrityError);
}

TEST(BlockDiff, DigestCollisionIsCaughtByTargetCrc) {
  // Simulate the digest exchange going stale: digests describe one source,
  // the delta is applied against another whose size matches. The per-block
  // digests differ, so copies reconstruct wrong bytes — the whole-target
  // CRC must catch it (after stamping source anchors to match, as the
  // repair path does from the probe response).
  Xoshiro256 rng(7);
  const std::string advertised = random_text(rng, 1024);
  std::string actual = advertised;
  actual[512] = static_cast<char>(actual[512] ^ 0xff);
  const std::string target = advertised;  // replica wants the advertised bytes

  delta::BlockDelta d = delta::block_diff_from_digests(
      delta::block_digests(advertised, 64), advertised.size(), target, 64);
  d.source_crc = crc32(as_bytes(actual));  // anchor matches what it's fed
  if (d.copied_bytes() > 0) {
    EXPECT_THROW((void)delta::apply_block_delta(d, actual), IntegrityError);
  }
}

// ------------------------------------------------------------------ wire --

TEST(BlockWire, MalformedInputsRejectLoudly) {
  EXPECT_THROW((void)enc::block_delta_from_wire(""), ParseError);
  EXPECT_THROW((void)enc::block_delta_from_wire("PEBDX;"), ParseError);
  EXPECT_THROW((void)enc::block_delta_from_wire("PEBD1;s=1;t=1;"), ParseError);
  EXPECT_THROW((void)enc::block_delta_from_wire(
                   "PEBD1;s=0;t=9;sc=00000000;tc=00000000;A9:abc"),
               ParseError);  // truncated literal
  EXPECT_THROW((void)enc::block_delta_from_wire(
                   "PEBD1;s=0;t=0;sc=00000000;tc=00000000;Z1:x;"),
               ParseError);  // unknown tag
  EXPECT_THROW((void)enc::block_delta_from_wire(
                   "PEBD1;s=99999999999999999;t=0;sc=00000000;tc=00000000;"),
               ParseError);  // declared size above the allocation guard
  EXPECT_THROW((void)enc::block_digests_from_wire("0123456789abcde"),
               ParseError);  // not a whole digest
  EXPECT_THROW((void)enc::block_digests_from_wire("0123456789ABCDEF"),
               ParseError);  // hex is lowercase-only on this wire
}

TEST(BlockWire, DigestListRoundTrips) {
  const std::string data = "digest exchange sample payload, three blocks";
  const std::vector<std::uint64_t> digests = delta::block_digests(data, 16);
  EXPECT_EQ(digests.size(), 3u);
  EXPECT_EQ(enc::block_digests_from_wire(enc::block_digests_to_wire(digests)),
            digests);
}

TEST(BlockDiff, RepairBlockSizeTargetsSmallProbes) {
  EXPECT_EQ(delta::repair_block_size(0), delta::kDefaultBlockSize);
  EXPECT_EQ(delta::repair_block_size(100), delta::kDefaultBlockSize);
  EXPECT_EQ(delta::repair_block_size(1 << 30), std::size_t{4096});
  // Until the 4096-byte cap kicks in, the digest list stays near the
  // ~64-block budget (a ~1 KB probe response).
  for (const std::size_t size : {10'000u, 100'000u, 260'000u}) {
    const std::size_t bs = delta::repair_block_size(size);
    EXPECT_GE(bs, delta::kDefaultBlockSize);
    EXPECT_LE(bs, 4096u);
    EXPECT_LE((size + bs - 1) / bs, 160u) << "size=" << size;
  }
}

// ------------------------------------------------------------ randomized --

TEST(BlockDiff, RandomizedRoundTrips) {
  Xoshiro256 rng(20260808);
  const std::size_t rounds = 60 * iter_scale();
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t block_size = 1 + rng.below(96);
    const std::size_t src_len = rng.below(3000);
    std::string source = random_text(rng, src_len);

    // Target: a handful of splices over the source, so real runs of
    // shared blocks survive for the matcher to find.
    std::string target = source;
    const std::size_t edits = 1 + rng.below(6);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = target.empty() ? 0 : rng.below(target.size());
      const std::size_t del =
          target.empty() ? 0
                         : rng.below(std::min<std::size_t>(
                               target.size() - pos, 64) + 1);
      target.replace(pos, del, random_text(rng, rng.below(64)));
    }
    expect_round_trip(source, target, block_size);
  }
}

}  // namespace
