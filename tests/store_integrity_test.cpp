// Storage integrity subsystem tests: typed storage errors, the FaultyStore
// disk-fault decorator, check_store classification, the online scrubber,
// quarantine lifecycle, fsck's replica-driven repair, and the crashpoint x
// disk-fault matrix (every FileStore crash seam re-run under injected
// bit-rot / torn-write modes).
//
// Soak the randomized rounds with PRIVEDIT_FSCK_ITERS=n
// (tools/check.sh fsck).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "privedit/cloud/faulty_store.hpp"
#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/store_check.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/extension/fsck.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/http.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit {
namespace {

namespace fs = std::filesystem;

std::size_t soak_iters() {
  const char* env = std::getenv("PRIVEDIT_FSCK_ITERS");
  if (env == nullptr) return 1;
  const long v = std::atol(env);
  return v > 1 ? static_cast<std::size_t>(v) : 1;
}

class StoreIntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("privedit_integrity_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override {
    CrashPoints::disarm();
    fs::remove_all(root_);
  }

  std::string dir(const std::string& name) const {
    const std::string d = root_ + "/" + name;
    fs::create_directories(d);
    return d;
  }

  std::string root_;
};

constexpr const char* kPassword = "integrity pw";

/// A small real container (cheap KDF) around `text`.
std::string make_container(const std::string& text, std::uint64_t seed = 7) {
  enc::SchemeConfig config;
  config.mode = enc::Mode::kRpc;
  config.block_chars = 4;
  config.kdf_iterations = 4;
  extension::DocumentSession session = extension::DocumentSession::create_new(
      kPassword, config, extension::seeded_rng_factory(seed));
  return session.encrypt_full(text);
}

cloud::CheckConfig deep_config(std::map<std::string, cloud::Anchor> anchors = {}) {
  cloud::CheckConfig config;
  config.anchors = std::move(anchors);
  config.deep_validate = [](const std::string& content) {
    try {
      extension::DocumentSession::open(kPassword, content,
                                       extension::seeded_rng_factory(0));
      return true;
    } catch (const Error&) {
      return false;
    }
  };
  return config;
}

/// Swaps one char late in the container for another codec-alphabet char, so
/// the framing still parses but authentication fails.
std::string flip_unit_char(std::string container) {
  const std::size_t at = container.size() - 2;
  container[at] = container[at] == 'A' ? 'B' : 'A';
  return container;
}

void clobber_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Writes a journal whose last-acked state is (rev, hash(content)) — the
/// anchor fsck verifies stored state against.
void write_anchor(const std::string& journal_dir, const std::string& doc_id,
                  std::uint64_t rev, const std::string& content) {
  const std::string path =
      journal_dir + "/" + hex_encode(as_bytes(doc_id)) + ".wal";
  extension::EditJournal journal(path);
  const std::string checksum = cloud::store_content_hash16(content);
  journal.append_pending({rev, /*full_save=*/true, checksum, content});
  journal.ack_front(rev, checksum);
}

net::HttpResponse post(cloud::GDocsServer& server, const std::string& doc_id,
                       const FormData& form) {
  return server.handle(net::HttpRequest::post_form(
      "/Doc?docID=" + percent_encode(doc_id), form.encode()));
}

net::HttpResponse sync_push(cloud::GDocsServer& server,
                            const std::string& doc_id, std::uint64_t rev,
                            const std::string& content) {
  FormData form;
  form.add("cmd", "sync");
  form.add("session", "anti-entropy");
  form.add("rev", std::to_string(rev));
  form.add("content", content);
  return post(server, doc_id, form);
}

std::unique_ptr<RandomSource> rng(std::uint64_t seed) {
  return std::make_unique<Xoshiro256>(seed);
}

// ------------------------------------------------------- StorageError --

TEST(StorageErrorTest, CarriesErrnoAndClassifiesTransience) {
  const StorageError enospc("disk full", ENOSPC);
  EXPECT_EQ(enospc.code(), ErrorCode::kStorage);
  EXPECT_EQ(enospc.sys_errno(), ENOSPC);
  EXPECT_TRUE(enospc.transient());
  EXPECT_NE(std::string(enospc.what()).find("disk full"), std::string::npos);

  EXPECT_TRUE(StorageError("quota", EDQUOT).transient());
  EXPECT_TRUE(StorageError("interrupted", EINTR).transient());
  EXPECT_FALSE(StorageError("media gone", EIO).transient());
  EXPECT_FALSE(StorageError("denied", EACCES).transient());
}

// -------------------------------------------------------- FaultyStore --

TEST_F(StoreIntegrityTest, FaultyStoreBitRotChangesExactlyOneContentByte) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(1));
  const cloud::Store::Record wanted{"pristine content", 4};
  store.force_next(cloud::StoreFault::kBitRot);
  store.put("d", wanted);
  EXPECT_EQ(store.counters().bit_rots, 1u);

  const auto stored = inner.get("d");
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(stored->rev, wanted.rev);
  ASSERT_EQ(stored->content.size(), wanted.content.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < wanted.content.size(); ++i) {
    diffs += stored->content[i] != wanted.content[i];
  }
  EXPECT_EQ(diffs, 1u);
  // last_written() is the post-mutation record — the "attempted" state.
  ASSERT_TRUE(store.last_written().has_value());
  EXPECT_EQ(store.last_written()->second, *stored);
}

TEST_F(StoreIntegrityTest, FaultyStoreTornWriteStoresAPrefix) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(2));
  const std::string full = "0123456789abcdef";
  store.force_next(cloud::StoreFault::kTornWrite);
  store.put("d", {full, 9});
  EXPECT_EQ(store.counters().torn_writes, 1u);
  const auto stored = inner.get("d");
  ASSERT_TRUE(stored.has_value());
  EXPECT_LE(stored->content.size(), full.size());
  EXPECT_EQ(stored->content, full.substr(0, stored->content.size()));
  EXPECT_EQ(store.last_written()->second.content, stored->content);
}

TEST_F(StoreIntegrityTest, FaultyStoreIoErrorsLeaveOldRecordIntact) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(3));
  store.put("d", {"old", 1});

  store.force_next(cloud::StoreFault::kIoError);
  try {
    store.put("d", {"new", 2});
    FAIL() << "injected EIO did not throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.sys_errno(), EIO);
    EXPECT_FALSE(e.transient());
  }
  store.force_next(cloud::StoreFault::kEnospc);
  try {
    store.put("d", {"new", 2});
    FAIL() << "injected ENOSPC did not throw";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.sys_errno(), ENOSPC);
    EXPECT_TRUE(e.transient());
  }
  // A failed put writes nothing, so the store still checks clean.
  EXPECT_EQ(inner.get("d")->content, "old");
  EXPECT_TRUE(cloud::check_store(inner).store_clean());
}

TEST_F(StoreIntegrityTest, FaultyStoreRollbackAcksWithoutWriting) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(4));
  store.put("d", {"acked v1", 1});
  store.force_next(cloud::StoreFault::kRollback);
  store.put("d", {"acked v2 that never lands", 2});  // no throw: silent
  EXPECT_EQ(store.counters().rollbacks, 1u);
  EXPECT_EQ(inner.get("d")->rev, 1u);
  EXPECT_EQ(inner.get("d")->content, "acked v1");
}

TEST_F(StoreIntegrityTest, FaultyStoreLostEntryDropsTheDocument) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(5));
  store.force_next(cloud::StoreFault::kLostEntry);
  store.put("d", {"written then unlinked", 1});
  EXPECT_EQ(store.counters().lost_entries, 1u);
  EXPECT_FALSE(inner.get("d").has_value());
  EXPECT_TRUE(inner.list_doc_ids().empty());
}

TEST_F(StoreIntegrityTest, FaultyStoreReadRotLeavesAtRestBytesIntact) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(6));
  store.put("d", {"stable bytes on disk", 3});
  store.force_next(cloud::StoreFault::kReadRot);
  const auto rotted = store.get("d");
  ASSERT_TRUE(rotted.has_value());
  EXPECT_NE(rotted->content, "stable bytes on disk");
  // Only the returned copy rotted; the next read is clean again.
  EXPECT_EQ(store.get("d")->content, "stable bytes on disk");
  EXPECT_EQ(store.counters().read_rots, 1u);
}

TEST_F(StoreIntegrityTest, FaultyStoreFaultSequenceIsSeedDeterministic) {
  cloud::StoreFaultSpec spec;
  spec.bit_rot = 0.2;
  spec.torn_write = 0.15;
  spec.io_error = 0.1;
  spec.rollback = 0.1;
  spec.lost_entry = 0.05;

  auto run = [&](const std::string& d) {
    cloud::FileStore inner(d);
    cloud::FaultyStore store(&inner, spec, rng(99));
    for (int i = 0; i < 60; ++i) {
      try {
        store.put("doc" + std::to_string(i % 5),
                  {"content #" + std::to_string(i),
                   static_cast<std::uint64_t>(i + 1)});
      } catch (const StorageError&) {
        // injected EIO/ENOSPC — part of the sequence being compared
      }
    }
    return std::make_pair(store.counters(), inner.load_all());
  };
  const auto [counters_a, state_a] = run(dir("a"));
  const auto [counters_b, state_b] = run(dir("b"));
  EXPECT_EQ(counters_a.bit_rots, counters_b.bit_rots);
  EXPECT_EQ(counters_a.torn_writes, counters_b.torn_writes);
  EXPECT_EQ(counters_a.io_errors, counters_b.io_errors);
  EXPECT_EQ(counters_a.rollbacks, counters_b.rollbacks);
  EXPECT_EQ(counters_a.lost_entries, counters_b.lost_entries);
  EXPECT_GT(counters_a.bit_rots + counters_a.torn_writes +
                counters_a.io_errors + counters_a.rollbacks +
                counters_a.lost_entries,
            0u);
  EXPECT_EQ(state_a, state_b) << "same seed, same faults, different stores";
}

TEST_F(StoreIntegrityTest, CorruptAtRestRotsTheStoredRecord) {
  cloud::FileStore inner(dir("s"));
  cloud::FaultyStore store(&inner, {}, rng(8));
  store.put("d", {"bytes that will rot between writes", 2});
  store.corrupt_at_rest("d", 11);
  const auto record = inner.get("d");
  ASSERT_TRUE(record.has_value());
  EXPECT_NE(record->content, "bytes that will rot between writes");
  EXPECT_EQ(record->content.size(),
            std::string("bytes that will rot between writes").size());
}

// -------------------------------------------------------- check_store --

TEST_F(StoreIntegrityTest, CheckStoreClassifiesEveryFindingKind) {
  const std::string d = dir("s");
  cloud::FileStore store(d);

  const std::string healthy = make_container("healthy text", 1);
  const std::string old_state = make_container("older acked state", 2);
  const std::string forked = make_container("divergent same-rev state", 3);

  store.put("clean", {healthy, 3});
  store.put("ahead", {healthy, 9});            // server legitimately ahead
  store.put("unreadable", {healthy, 3});
  store.put("torn", {healthy, 3});
  store.put("flipped", {healthy, 3});
  store.put("rolledback", {old_state, 2});     // anchor says rev 3
  store.put("forked", {forked, 3});            // anchor checksum differs
  clobber_file(store.path_for("unreadable"), "no newline no rev line");
  // Truncate mid-unit (prefix + 1.x units) so the framing walk must fail.
  const enc::ContainerHeader header = enc::ContainerReader(healthy).header();
  clobber_file(store.path_for("torn"),
               "3\n" + healthy.substr(0, header.prefix_chars() +
                                             header.unit_width() + 1));

  auto config = deep_config({
      {"clean", {3, cloud::store_content_hash16(healthy)}},
      {"ahead", {3, cloud::store_content_hash16(healthy)}},
      {"rolledback", {3, cloud::store_content_hash16(healthy)}},
      {"forked", {3, cloud::store_content_hash16(healthy)}},
      {"ghost", {5, cloud::store_content_hash16(healthy)}},
  });
  // The in-alphabet flip parses but fails authenticated decryption.
  store.put("flipped", {flip_unit_char(healthy), 3});

  const cloud::CheckReport report = cloud::check_store(store, config);
  EXPECT_EQ(report.count(cloud::FindingKind::kUnreadableRecord), 1u);
  EXPECT_EQ(report.count(cloud::FindingKind::kContainerCorrupt), 1u);
  EXPECT_EQ(report.count(cloud::FindingKind::kDecryptFailed), 1u);
  EXPECT_EQ(report.count(cloud::FindingKind::kRollback), 1u);
  EXPECT_EQ(report.count(cloud::FindingKind::kFork), 1u);
  EXPECT_EQ(report.count(cloud::FindingKind::kMissing), 1u);
  EXPECT_EQ(report.clean, 2u);  // "clean" and "ahead"
  EXPECT_FALSE(report.store_clean());
  const std::set<std::string> dirty = report.dirty_docs();
  EXPECT_FALSE(dirty.contains("clean"));
  EXPECT_FALSE(dirty.contains("ahead"));
  EXPECT_TRUE(dirty.contains("ghost"));
}

TEST_F(StoreIntegrityTest, CheckRecordTreatsOpaqueContentAsStructurallyClean) {
  // Non-container content gets no structural findings (the store may hold
  // plaintext docs in unencrypted deployments); anchors still apply.
  std::vector<cloud::Finding> findings;
  EXPECT_TRUE(cloud::check_record("d", {"just plain text", 1},
                                  cloud::CheckConfig{}, &findings));
  EXPECT_TRUE(findings.empty());

  cloud::CheckConfig anchored;
  anchored.anchors["d"] = {2, cloud::store_content_hash16("acked")};
  EXPECT_FALSE(cloud::check_record("d", {"just plain text", 1}, anchored,
                                   &findings));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, cloud::FindingKind::kRollback);
}

// --------------------------------------------- quarantine lifecycle --

TEST_F(StoreIntegrityTest, QuarantineSurvivesRestartGatesWritesAndLifts) {
  const std::string d = dir("s");
  const std::string good = make_container("quarantine lifecycle", 1);
  {
    cloud::GDocsServer server;
    server.enable_persistence(d);
    EXPECT_TRUE(sync_push(server, "q", 3, good).ok());
    server.quarantine("q");
  }

  cloud::GDocsServer reborn;
  reborn.enable_persistence(d);  // adopts the durable .quar marker
  EXPECT_TRUE(reborn.is_quarantined("q"));

  // Reads succeed but carry the damage flag.
  FormData open_form;
  open_form.add("cmd", "open");
  const net::HttpResponse opened = post(reborn, "q", open_form);
  EXPECT_TRUE(opened.ok());
  EXPECT_EQ(opened.headers.get("X-Privedit-Quarantine").value_or(""), "1");

  // Ordinary writes are refused: no edits build on rot.
  FormData save;
  save.add("session", "1");
  save.add("rev", "3");
  save.add("docContents", "overwrite attempt");
  EXPECT_EQ(post(reborn, "q", save).status, 503);
  FormData create;
  create.add("cmd", "create");
  EXPECT_EQ(post(reborn, "q", create).status, 503);

  // A sync push that is not a valid container cannot lift the quarantine —
  // a damaged replica must not "repair" its peers with more damage.
  EXPECT_EQ(sync_push(reborn, "q", 4, "plaintext garbage").status, 503);
  EXPECT_TRUE(reborn.is_quarantined("q"));
  EXPECT_GE(reborn.counters().quarantine_write_rejections, 3u);

  // A container-validating sync is the one exit, atomically lifting it.
  EXPECT_TRUE(sync_push(reborn, "q", 4, good).ok());
  EXPECT_FALSE(reborn.is_quarantined("q"));
  EXPECT_EQ(reborn.counters().quarantine_repairs, 1u);
  EXPECT_TRUE(cloud::FileStore(d).quarantined().empty());  // marker gone
  EXPECT_FALSE(post(reborn, "q", open_form)
                   .headers.contains("X-Privedit-Quarantine"));
}

TEST_F(StoreIntegrityTest, BootQuarantinesUnreadableRecordsInsteadOfDying) {
  const std::string d = dir("s");
  {
    cloud::FileStore store(d);
    store.put("fine", {"2\ncontent", 2});
    store.put("rotten", {"x", 1});
    clobber_file(store.path_for("rotten"), "not a rev line");
  }
  cloud::GDocsServer server;
  server.enable_persistence(d);
  EXPECT_EQ(server.counters().load_quarantined, 1u);
  EXPECT_TRUE(server.is_quarantined("rotten"));
  EXPECT_FALSE(server.is_quarantined("fine"));
  EXPECT_EQ(server.document_count(), 1u);
  // The rotten record stays on disk as repair evidence.
  EXPECT_THROW(cloud::FileStore(d).get("rotten"), ParseError);
}

// ------------------------------------------------------------ scrubber --

TEST_F(StoreIntegrityTest, ScrubRepairsDiskRotFromAuthoritativeMemory) {
  const std::string d = dir("s");
  cloud::GDocsServer server;
  server.enable_persistence(d);
  const std::string good = make_container("scrub me", 1);
  ASSERT_TRUE(sync_push(server, "a", 1, good).ok());
  ASSERT_TRUE(sync_push(server, "b", 1, good).ok());
  ASSERT_TRUE(sync_push(server, "c", 1, good).ok());

  // Rot the disk behind the running server's back: one unreadable record,
  // one silently diverged record, one lost directory entry.
  cloud::FileStore raw(d);
  clobber_file(raw.path_for("a"), "garbage without a rev line");
  clobber_file(raw.path_for("b"), "1\n" + flip_unit_char(good));
  fs::remove(raw.path_for("c"));

  cloud::GDocsServer::ScrubConfig scrub;
  scrub.docs_per_cycle = 16;
  server.enable_scrub(scrub);
  EXPECT_TRUE(server.scrub_step());  // one step covers the whole corpus

  const auto& c = server.scrub_counters();
  EXPECT_EQ(c.cycles, 1u);
  EXPECT_EQ(c.unreadable_records, 1u);
  EXPECT_EQ(c.store_mismatches, 2u);
  EXPECT_EQ(c.repaired_from_memory, 3u);
  EXPECT_EQ(c.quarantined, 0u);  // memory was healthy throughout
  for (const char* id : {"a", "b", "c"}) {
    const auto record = raw.get(id);
    ASSERT_TRUE(record.has_value()) << id;
    EXPECT_EQ(record->content, good) << id;
  }
  // A second pass finds nothing left to repair.
  EXPECT_TRUE(server.scrub_step());
  EXPECT_EQ(server.scrub_counters().repaired_from_memory, 3u);
  EXPECT_EQ(server.scrub_counters().clean, 3u);
}

TEST_F(StoreIntegrityTest, ScrubQuarantinesCorruptAuthoritativeCopy) {
  const std::string d = dir("s");
  cloud::GDocsServer server;
  server.enable_persistence(d);
  const std::string good = make_container("will rot in memory", 1);
  ASSERT_TRUE(sync_push(server, "m", 1, good).ok());
  // The authoritative in-memory copy itself is damaged (still container-
  // shaped, so the framing walk sees it): no better copy exists here.
  server.set_raw_content("m", good.substr(0, good.size() - 3));

  cloud::GDocsServer::ScrubConfig scrub;
  scrub.docs_per_cycle = 4;
  server.enable_scrub(scrub);
  server.scrub_step();
  EXPECT_EQ(server.scrub_counters().container_corrupt, 1u);
  EXPECT_EQ(server.scrub_counters().quarantined, 1u);
  EXPECT_TRUE(server.is_quarantined("m"));
  // The marker is durable: visible to a plain FileStore immediately.
  EXPECT_TRUE(cloud::FileStore(d).quarantined().contains("m"));
}

TEST_F(StoreIntegrityTest, ScrubPiggybacksOnRequestsAtConfiguredInterval) {
  const std::string d = dir("s");
  cloud::GDocsServer server;
  server.enable_persistence(d);
  ASSERT_TRUE(sync_push(server, "a", 1, "opaque a").ok());
  ASSERT_TRUE(sync_push(server, "b", 1, "opaque b").ok());

  cloud::GDocsServer::ScrubConfig scrub;
  scrub.docs_per_cycle = 1;
  scrub.interval_requests = 3;
  server.enable_scrub(scrub);

  FormData open_form;
  open_form.add("cmd", "open");
  for (int i = 0; i < 12; ++i) (void)post(server, "a", open_form);
  // 12 requests / every 3rd = 4 steps of 1 doc each.
  EXPECT_EQ(server.scrub_counters().docs_scrubbed, 4u);
  EXPECT_GE(server.scrub_counters().cycles, 1u);
}

// ------------------------------------------------------ fsck end to end --

TEST_F(StoreIntegrityTest, FsckRepairsOneRottenReplicaByteIdentically) {
  // Three replicas, twenty documents; ~25% of replica 0's docs are hit
  // with the full damage mix (flip, rev-line rot, lost file, rollback),
  // and one document is damaged on EVERY replica (unrecoverable).
  const std::vector<std::string> dirs = {dir("r0"), dir("r1"), dir("r2")};
  const std::string journal_dir = dir("journal");

  std::map<std::string, std::string> content;
  for (int i = 0; i < 20; ++i) {
    const std::string id = "doc" + std::to_string(i);
    content[id] = make_container("document number " + std::to_string(i),
                                 static_cast<std::uint64_t>(100 + i));
  }
  for (const std::string& d : dirs) {
    cloud::FileStore store(d);
    for (const auto& [id, body] : content) store.put(id, {body, 3});
  }
  for (const auto& [id, body] : content) {
    write_anchor(journal_dir, id, 3, body);
  }

  {
    cloud::FileStore r0(dirs[0]);
    // doc1: in-alphabet flip (framing parses; caught by decrypt/anchor).
    r0.put("doc1", {flip_unit_char(content["doc1"]), 3});
    // doc2: clobbered rev line — unreadable record.
    clobber_file(r0.path_for("doc2"), "???");
    // doc3: lost directory entry.
    fs::remove(r0.path_for("doc3"));
    // doc4: rolled back to an older (well-formed!) state — only the
    // journal anchor can expose this one.
    r0.put("doc4", {make_container("stale pre-ack state", 999), 2});
    // doc5: damaged on all three replicas — no healthy copy anywhere.
    for (const std::string& d : dirs) {
      cloud::FileStore store(d);
      store.put("doc5", {flip_unit_char(content["doc5"]), 3});
    }
  }

  extension::FsckOptions options;
  options.password = kPassword;
  options.journal_dir = journal_dir;
  const extension::FsckResult result = extension::run_fsck(dirs, options);

  EXPECT_FALSE(result.clean_before());
  EXPECT_EQ(result.docs, 20u);
  EXPECT_EQ(result.dirty_docs, 5u);
  EXPECT_EQ(result.repaired_docs, 4u);
  ASSERT_EQ(result.unrecoverable, std::vector<std::string>{"doc5"});
  EXPECT_GE(result.syncs_pushed, 4u);
  EXPECT_TRUE(result.healthy_after());

  // Repairs are byte-identical to the healthy replicas' ciphertext.
  cloud::FileStore healed(dirs[0]);
  for (const char* id : {"doc1", "doc2", "doc3", "doc4"}) {
    const auto record = healed.get(id);
    ASSERT_TRUE(record.has_value()) << id;
    EXPECT_EQ(record->content, content[id]) << id;
    EXPECT_EQ(record->rev, 3u) << id;
  }
  // The unrecoverable doc is fenced on every replica...
  for (const std::string& d : dirs) {
    EXPECT_TRUE(cloud::FileStore(d).quarantined().contains("doc5")) << d;
  }
  // ...and a provider booting any replica refuses writes on it, so the
  // damaged ciphertext is never served as a base for new edits.
  cloud::GDocsServer server;
  server.enable_persistence(dirs[1]);
  FormData save;
  save.add("session", "1");
  save.add("rev", "3");
  save.add("docContents", "write onto rot");
  EXPECT_EQ(post(server, "doc5", save).status, 503);

  // A second pass finds nothing new: every remaining finding belongs to
  // the quarantined doc and everything else scrubs clean.
  const extension::FsckResult again = extension::run_fsck(dirs, options);
  EXPECT_TRUE(again.healthy_after());
  EXPECT_EQ(again.repaired_docs, 0u);
  for (const auto& store : again.stores) {
    for (const auto& finding : store.after.findings) {
      EXPECT_EQ(finding.doc_id, "doc5");
    }
  }
}

TEST_F(StoreIntegrityTest, FsckReportOnlyModeTouchesNothing) {
  const std::vector<std::string> dirs = {dir("r0"), dir("r1")};
  const std::string good = make_container("report only", 1);
  for (const std::string& d : dirs) {
    cloud::FileStore store(d);
    store.put("doc", {good, 2});
  }
  cloud::FileStore r0(dirs[0]);
  clobber_file(r0.path_for("doc"), "rotten");

  extension::FsckOptions options;
  options.password = kPassword;
  options.repair = false;
  const extension::FsckResult result = extension::run_fsck(dirs, options);
  EXPECT_FALSE(result.clean_before());
  EXPECT_EQ(result.dirty_docs, 1u);
  EXPECT_EQ(result.syncs_pushed, 0u);
  EXPECT_EQ(result.repaired_docs, 0u);
  EXPECT_TRUE(result.unrecoverable.empty());
  // Still rotten on disk, and no quarantine marker was planted.
  EXPECT_THROW(cloud::FileStore(dirs[0]).get("doc"), ParseError);
  EXPECT_TRUE(cloud::FileStore(dirs[0]).quarantined().empty());
  EXPECT_NE(extension::format_fsck_result(result).find("1 dirty"),
            std::string::npos);
}

TEST_F(StoreIntegrityTest, FsckSweepsOrphanTempsAndReportsThem) {
  const std::string d = dir("r0");
  {
    cloud::FileStore store(d);
    store.put("doc", {"1\nfine", 1});
  }
  std::ofstream(d + "/deadbeef.doc.tmp", std::ios::binary) << "torn half";
  const extension::FsckResult result = extension::run_fsck({d}, {});
  EXPECT_TRUE(result.clean_before());
  ASSERT_EQ(result.stores.size(), 1u);
  EXPECT_EQ(result.stores[0].orphan_tmps_swept, 1u);
  EXPECT_FALSE(fs::exists(d + "/deadbeef.doc.tmp"));
}

// -------------------------------------- crashpoint x disk-fault matrix --

TEST_F(StoreIntegrityTest, EveryPutCrashSeamRecoversUnderDiskFaults) {
  // Every crash seam in the durable-replace sequence, re-run under each
  // put-visible fault mode: after "power loss" + recovery sweep, the
  // store holds either the acked record or the (possibly faulted)
  // attempted record — never a third state — and check_store classifies
  // it without crashing.
  const std::vector<std::string> seams = {
      "file_store.put.created",      "file_store.put.torn",
      "file_store.put.before_fsync", "file_store.put.before_rename",
      "file_store.put.before_dirsync"};
  const std::vector<cloud::StoreFault> faults = {
      cloud::StoreFault::kNone, cloud::StoreFault::kBitRot,
      cloud::StoreFault::kTornWrite};

  const cloud::Store::Record acked{"acked stable state", 1};
  int case_no = 0;
  for (const std::string& seam : seams) {
    for (const cloud::StoreFault fault : faults) {
      const std::string d =
          dir("case" + std::to_string(case_no++));
      SCOPED_TRACE(seam + " x " + std::string(cloud::store_fault_name(fault)));

      std::optional<cloud::Store::Record> attempted;
      {
        cloud::FileStore inner(d);
        cloud::FaultyStore faulty(&inner, {}, rng(1000 + case_no));
        faulty.put("doc", acked);
        if (fault != cloud::StoreFault::kNone) faulty.force_next(fault);
        CrashPoints::arm(seam);
        EXPECT_THROW(
            faulty.put("doc", {"attempted replacement state", 2}),
            CrashError);
        CrashPoints::disarm();
        if (faulty.last_written()) attempted = faulty.last_written()->second;
      }

      // "Reboot": reopening sweeps any stale temp the crash left behind.
      cloud::FileStore recovered(d);
      const auto record = recovered.get("doc");
      ASSERT_TRUE(record.has_value());
      const bool is_acked = *record == acked;
      const bool is_attempt = attempted && *record == *attempted;
      EXPECT_TRUE(is_acked || is_attempt)
          << "recovered to a third state: rev " << record->rev << " '"
          << record->content << "'";
      for (const auto& entry : fs::directory_iterator(d)) {
        EXPECT_NE(entry.path().extension(), ".tmp");
      }
      // Opaque content + no anchors: recovery must always check clean.
      EXPECT_TRUE(cloud::check_store(recovered).store_clean());
    }
  }
}

TEST_F(StoreIntegrityTest, CrashDuringTmpSweepIsItselfRecoverable) {
  const std::string d = dir("s");
  {
    cloud::FileStore store(d);
    store.put("doc", {"durable", 1});
  }
  std::ofstream(d + "/aa.doc.tmp", std::ios::binary) << "torn one";
  std::ofstream(d + "/bb.doc.tmp", std::ios::binary) << "torn two";

  // Power loss during the recovery sweep itself...
  CrashPoints::arm("file_store.sweep");
  EXPECT_THROW(cloud::FileStore{d}, CrashError);
  CrashPoints::disarm();

  // ...must leave the directory loadable; the next open finishes the job.
  cloud::FileStore reopened(d);
  EXPECT_GE(reopened.tmp_swept(), 1u);
  EXPECT_FALSE(fs::exists(d + "/aa.doc.tmp"));
  EXPECT_FALSE(fs::exists(d + "/bb.doc.tmp"));
  EXPECT_EQ(reopened.get("doc")->content, "durable");
}

// ------------------------------------------------------------- soak --

TEST_F(StoreIntegrityTest, RandomizedCorruptionAlwaysFsckRepairable) {
  // PRIVEDIT_FSCK_ITERS scales the rounds (tools/check.sh fsck). Each
  // round corrupts a random subset of one replica through the FaultyStore
  // at-rest rot plus structural damage, then asserts fsck heals it.
  const std::size_t rounds = 2 * soak_iters();
  Xoshiro256 dice(0xf5ccULL);
  for (std::size_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string tag = std::to_string(round);
    const std::vector<std::string> dirs = {
        dir("soak" + tag + "_r0"), dir("soak" + tag + "_r1"),
        dir("soak" + tag + "_r2")};
    const std::string journal_dir = dir("soak" + tag + "_journal");

    std::map<std::string, std::string> content;
    for (int i = 0; i < 6; ++i) {
      const std::string id = "d" + std::to_string(i);
      content[id] = make_container("soak doc " + std::to_string(i),
                                   dice.next_u64() % 1000);
    }
    for (const std::string& d : dirs) {
      cloud::FileStore store(d);
      for (const auto& [id, body] : content) store.put(id, {body, 5});
    }
    for (const auto& [id, body] : content) {
      write_anchor(journal_dir, id, 5, body);
    }

    const std::size_t victim = dice.below(dirs.size());
    cloud::FileStore victim_store(dirs[victim]);
    cloud::FaultyStore rotter(&victim_store, {}, rng(dice.next_u64()));
    std::size_t corrupted = 0;
    for (const auto& [id, body] : content) {
      switch (dice.below(4)) {
        case 0:
          rotter.corrupt_at_rest(id, dice.next_u64());
          ++corrupted;
          break;
        case 1:
          clobber_file(victim_store.path_for(id), "rot");
          ++corrupted;
          break;
        case 2:
          fs::remove(victim_store.path_for(id));
          ++corrupted;
          break;
        default:
          break;  // spared
      }
    }

    extension::FsckOptions options;
    options.password = kPassword;
    options.journal_dir = journal_dir;
    const extension::FsckResult result = extension::run_fsck(dirs, options);
    EXPECT_TRUE(result.healthy_after());
    EXPECT_TRUE(result.unrecoverable.empty());
    EXPECT_EQ(result.repaired_docs, result.dirty_docs);
    if (corrupted > 0) {
      EXPECT_GE(result.syncs_pushed, 1u);
    }
    cloud::FileStore healed(dirs[victim]);
    for (const auto& [id, body] : content) {
      const auto record = healed.get(id);
      ASSERT_TRUE(record.has_value()) << id;
      EXPECT_EQ(record->content, body) << id;
    }
  }
}

}  // namespace
}  // namespace privedit
