// Tests for the Aes128Engine dispatch facade and every backend behind it:
// FIPS-197 known answers per backend, randomized cross-backend differential
// agreement (batch == single-block), in == out aliasing guarantees, the
// PRIVEDIT_DISABLE_AESNI escape hatch, the 2^32 block-counter carry
// boundary, the batched CTR-DRBG keystream pinned byte-identical to the
// legacy block-at-a-time algorithm, and the batch wide-block Feistel.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>

#include "privedit/crypto/aes.hpp"
#include "privedit/crypto/aes_engine.hpp"
#include "privedit/crypto/aes_ni.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/crypto/wide_block.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::crypto {
namespace {

// Backends that can actually run on this host/build. kAesNi only appears
// when the binary was compiled with AES-NI support AND the CPU reports it;
// the forced-backend constructor throws otherwise, which is itself pinned
// below.
std::vector<AesBackend> usable_backends() {
  std::vector<AesBackend> out{AesBackend::kReference, AesBackend::kFast};
#if PRIVEDIT_HAVE_AESNI
  if (aesni_cpu_supported()) out.push_back(AesBackend::kAesNi);
#endif
  return out;
}

TEST(Aes128Engine, Fips197KnownAnswersOnEveryBackend) {
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  const Bytes ct = hex_decode("69c4e0d86a7b0430d8cdb78070b4c55a");
  for (AesBackend backend : usable_backends()) {
    Aes128Engine aes(key, backend);
    SCOPED_TRACE(std::string(aes_backend_name(backend)));
    EXPECT_EQ(aes.encrypt_block(pt), ct);
    EXPECT_EQ(aes.decrypt_block_copy(ct), pt);
  }
}

TEST(Aes128Engine, Fips197AppendixBOnEveryBackend) {
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = hex_decode("3243f6a8885a308d313198a2e0370734");
  const Bytes ct = hex_decode("3925841d02dc09fbdc118597196a0b32");
  for (AesBackend backend : usable_backends()) {
    Aes128Engine aes(key, backend);
    SCOPED_TRACE(std::string(aes_backend_name(backend)));
    EXPECT_EQ(aes.encrypt_block(pt), ct);
    EXPECT_EQ(aes.decrypt_block_copy(ct), pt);
  }
}

TEST(Aes128Engine, DispatchedInstancePassesKnownAnswer) {
  // Whatever dispatch picked must still be a correct AES.
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128Engine aes(key);
  EXPECT_EQ(aes.encrypt_block(hex_decode("6bc1bee22e409f96e93d7e117393172a")),
            hex_decode("3ad77bb40d7a3660a89ecaf32466ef97"));
}

// 10k random (key, plaintext) pairs: every usable backend must agree with
// the byte-wise FIPS-197 reference, and the batch interface must produce
// exactly what repeated single-block calls produce. This is the regression
// net for the AES-NI key schedule, the equivalent-inverse decrypt keys, and
// the 8-wide pipelined loops.
TEST(Aes128Engine, RandomizedDifferentialAllBackendsAgree) {
  std::mt19937_64 rng(0xae5'0001);
  const auto backends = usable_backends();
  Bytes key(16), block(16);
  for (int iter = 0; iter < 10'000; ++iter) {
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const Aes128 ref(key);
    const Bytes want_ct = ref.encrypt_block(block);
    for (AesBackend backend : backends) {
      Aes128Engine aes(key, backend);
      ASSERT_EQ(aes.encrypt_block(block), want_ct)
          << aes_backend_name(backend) << " iter " << iter;
      ASSERT_EQ(aes.decrypt_block_copy(want_ct), block)
          << aes_backend_name(backend) << " iter " << iter;
    }
  }
}

TEST(Aes128Engine, BatchMatchesSingleBlockOnEveryBackend) {
  std::mt19937_64 rng(0xae5'0002);
  for (AesBackend backend : usable_backends()) {
    SCOPED_TRACE(std::string(aes_backend_name(backend)));
    Bytes key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    Aes128Engine aes(key, backend);
    // Sizes straddling the AES-NI 8-wide groups and odd tails.
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                          std::size_t{8}, std::size_t{9}, std::size_t{17},
                          std::size_t{64}, std::size_t{100}}) {
      Bytes in(16 * n);
      for (auto& b : in) b = static_cast<std::uint8_t>(rng());
      Bytes batch_out(16 * n), single_out(16 * n);
      aes.encrypt_blocks(in, batch_out, n);
      for (std::size_t i = 0; i < n; ++i) {
        aes.encrypt_block(ByteView(in).subspan(16 * i, 16),
                          MutByteView(single_out).subspan(16 * i, 16));
      }
      ASSERT_EQ(batch_out, single_out) << "encrypt n=" << n;
      Bytes batch_dec(16 * n);
      aes.decrypt_blocks(batch_out, batch_dec, n);
      ASSERT_EQ(batch_dec, in) << "decrypt n=" << n;
    }
  }
}

// Every backend must accept in == out for both directions, single and
// batch: the scheme hot paths encrypt scratch buffers in place.
TEST(Aes128Engine, InPlaceAliasingOnEveryBackend) {
  std::mt19937_64 rng(0xae5'0003);
  for (AesBackend backend : usable_backends()) {
    SCOPED_TRACE(std::string(aes_backend_name(backend)));
    Bytes key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    Aes128Engine aes(key, backend);

    Bytes block(16);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng());
    const Bytes orig = block;
    aes.encrypt_block(block, block);
    EXPECT_EQ(block, aes.encrypt_block(orig));
    aes.decrypt_block(block, block);
    EXPECT_EQ(block, orig);

    constexpr std::size_t kBlocks = 21;  // spans 8-wide groups plus a tail
    Bytes run(16 * kBlocks);
    for (auto& b : run) b = static_cast<std::uint8_t>(rng());
    const Bytes run_orig = run;
    Bytes expected(run.size());
    aes.encrypt_blocks(run_orig, expected, kBlocks);
    aes.encrypt_blocks(run, run, kBlocks);
    EXPECT_EQ(run, expected);
    aes.decrypt_blocks(run, run, kBlocks);
    EXPECT_EQ(run, run_orig);
  }
}

TEST(Aes128Engine, RejectsBadKeyAndBatchSizes) {
  EXPECT_THROW(Aes128Engine(Bytes(15, 0)), CryptoError);
  Aes128Engine aes(Bytes(16, 0x11));
  Bytes in(32), out(32);
  EXPECT_THROW(aes.encrypt_blocks(in, out, 3), CryptoError);
  EXPECT_THROW(aes.encrypt_blocks(ByteView(in).subspan(0, 16), out, 2),
               CryptoError);
}

#if !PRIVEDIT_HAVE_AESNI
TEST(Aes128Engine, ForcingAesNiThrowsWhenUnavailable) {
  EXPECT_THROW(Aes128Engine(Bytes(16, 0x11), AesBackend::kAesNi),
               CryptoError);
}
#endif

// The kill switch: with PRIVEDIT_DISABLE_AESNI set, dispatch must choose
// the software backend even on AES-NI hardware. Read per call, so flipping
// it inside one process works (tools/check.sh no-aesni relies on this).
TEST(Aes128Engine, DisableEnvForcesSoftwareDispatch) {
  const char* saved = std::getenv("PRIVEDIT_DISABLE_AESNI");
  const std::string saved_value = saved ? saved : "";

  ASSERT_EQ(::setenv("PRIVEDIT_DISABLE_AESNI", "1", 1), 0);
  EXPECT_EQ(Aes128Engine::dispatch_backend(), AesBackend::kFast);
  Aes128Engine forced_soft(Bytes(16, 0x11));
  EXPECT_EQ(forced_soft.backend(), AesBackend::kFast);

  ::unsetenv("PRIVEDIT_DISABLE_AESNI");
  const AesBackend normal = Aes128Engine::dispatch_backend();
#if PRIVEDIT_HAVE_AESNI
  if (aesni_cpu_supported()) {
    EXPECT_EQ(normal, AesBackend::kAesNi);
  } else {
    EXPECT_EQ(normal, AesBackend::kFast);
  }
#else
  EXPECT_EQ(normal, AesBackend::kFast);
#endif

  if (saved) ::setenv("PRIVEDIT_DISABLE_AESNI", saved_value.c_str(), 1);
}

// ------------------------------------------------------- counter boundaries

// Synthetic regression for the 32-bit-wrap bug family: a counter whose low
// 32 bits are saturated must carry into byte 11, not wrap to zero. This is
// the block-index neighbourhood of 2^32 — with 16-byte blocks that is a
// 64 GiB keystream position, unreachable in a test except synthetically.
TEST(Ctr128Increment, CarriesAcrossThe32BitBoundary) {
  Bytes c(16, 0x00);
  c[12] = c[13] = c[14] = c[15] = 0xff;  // low word = 2^32 - 1
  ctr128_increment(c);
  Bytes want(16, 0x00);
  want[11] = 0x01;  // == 2^32
  EXPECT_EQ(c, want);

  ctr128_increment(c);  // 2^32 + 1
  want[15] = 0x01;
  EXPECT_EQ(c, want);
}

TEST(Ctr128Increment, FullWrapRollsToZero) {
  Bytes c(16, 0xff);
  ctr128_increment(c);
  EXPECT_EQ(c, Bytes(16, 0x00));
}

TEST(Ctr128Increment, PlainIncrementTouchesOnlyLowByte) {
  Bytes c(16, 0x00);
  c[15] = 0x41;
  ctr128_increment(c);
  Bytes want(16, 0x00);
  want[15] = 0x42;
  EXPECT_EQ(c, want);
}

// ------------------------------------------------- CTR-DRBG keystream pin

// Block-at-a-time model of the DRBG exactly as it was before the batched
// engine path: zero key/V, update(seed), then fill = generate + update({}).
// The production stream must be byte-identical — batching only changed the
// schedule of AES invocations, never the bytes.
class ModelDrbg {
 public:
  explicit ModelDrbg(ByteView seed) {
    update(seed);
  }

  void fill(MutByteView out) {
    generate(out);
    update({});
  }

 private:
  void generate(MutByteView out) {
    Aes128 aes(ByteView(key_.data(), key_.size()));
    std::size_t produced = 0;
    while (produced < out.size()) {
      increment();
      const Bytes block = aes.encrypt_block(ByteView(v_.data(), v_.size()));
      const std::size_t take = std::min<std::size_t>(16, out.size() - produced);
      std::memcpy(out.data() + produced, block.data(), take);
      produced += take;
    }
  }

  void update(ByteView provided) {
    Bytes temp(32, 0x00);
    generate(temp);
    for (std::size_t i = 0; i < provided.size(); ++i) temp[i] ^= provided[i];
    std::memcpy(key_.data(), temp.data(), 16);
    std::memcpy(v_.data(), temp.data() + 16, 16);
  }

  void increment() {
    for (int i = 15; i >= 0; --i) {
      if (++v_[static_cast<std::size_t>(i)] != 0) break;
    }
  }

  std::array<std::uint8_t, 16> key_{};
  std::array<std::uint8_t, 16> v_{};
};

TEST(CtrDrbg, BatchedKeystreamMatchesLegacyBlockAtATime) {
  std::uint8_t raw[8];
  store_u64be(raw, 42);
  const Bytes seed = Sha256::hash(raw);

  auto drbg = CtrDrbg::from_seed(42);
  ModelDrbg model(seed);

  // Mixed request sizes: partial blocks, run-boundary (64 blocks = 1024 B)
  // crossings, and single bytes between them.
  for (std::size_t len : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                          std::size_t{17}, std::size_t{100}, std::size_t{1024},
                          std::size_t{1025}, std::size_t{4096},
                          std::size_t{3}}) {
    Bytes got(len), want(len);
    drbg->fill(got);
    model.fill(want);
    ASSERT_EQ(got, want) << "fill(" << len << ")";
  }
}

// --------------------------------------------------- wide-block batch path

TEST(WideBlock, BatchMatchesSingleBlock) {
  std::mt19937_64 rng(0xae5'0004);
  Bytes key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  WideBlock wide(key);
  // Straddle the 64-block Feistel run buffer.
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                        std::size_t{65}, std::size_t{130}}) {
    Bytes in(32 * n);
    for (auto& b : in) b = static_cast<std::uint8_t>(rng());
    Bytes batch_out(32 * n), single_out(32 * n);
    wide.encrypt_blocks(in, batch_out, n);
    for (std::size_t i = 0; i < n; ++i) {
      wide.encrypt_block(ByteView(in).subspan(32 * i, 32),
                         MutByteView(single_out).subspan(32 * i, 32));
    }
    ASSERT_EQ(batch_out, single_out) << "encrypt n=" << n;
    Bytes batch_dec(32 * n);
    wide.decrypt_blocks(batch_out, batch_dec, n);
    ASSERT_EQ(batch_dec, in) << "decrypt n=" << n;
  }
}

TEST(WideBlock, BatchInPlaceAliasing) {
  WideBlock wide(Bytes(16, 0x77));
  constexpr std::size_t kBlocks = 9;
  Bytes run(32 * kBlocks);
  for (std::size_t i = 0; i < run.size(); ++i) {
    run[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const Bytes orig = run;
  Bytes expected(run.size());
  wide.encrypt_blocks(orig, expected, kBlocks);
  wide.encrypt_blocks(run, run, kBlocks);
  EXPECT_EQ(run, expected);
  wide.decrypt_blocks(run, run, kBlocks);
  EXPECT_EQ(run, orig);
}

}  // namespace
}  // namespace privedit::crypto
