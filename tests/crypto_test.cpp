// Unit tests for the crypto module: AES-128 against FIPS-197 vectors (and
// OpenSSL when available), SHA-256 / HMAC / PBKDF2 against RFC vectors,
// CTR-DRBG determinism, and the wide-block Feistel cipher.

#include <gtest/gtest.h>

#include <map>

#include "privedit/crypto/aes.hpp"
#include "privedit/crypto/aes_fast.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/crypto/hmac.hpp"
#include "privedit/crypto/key_derivation.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/crypto/wide_block.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/random.hpp"

#ifdef PRIVEDIT_HAVE_OPENSSL
#include <openssl/evp.h>
#endif

namespace privedit::crypto {
namespace {

TEST(Aes128, Fips197AppendixB) {
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = hex_decode("3243f6a8885a308d313198a2e0370734");
  const Bytes expected = hex_decode("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes(key);
  EXPECT_EQ(aes.encrypt_block(pt), expected);
  EXPECT_EQ(aes.decrypt_block_copy(expected), pt);
}

TEST(Aes128, Fips197AppendixC1) {
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  const Bytes expected = hex_decode("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes(key);
  EXPECT_EQ(aes.encrypt_block(pt), expected);
  EXPECT_EQ(aes.decrypt_block_copy(expected), pt);
}

TEST(Aes128, NistSp800_38aEcbVectors) {
  // SP 800-38A F.1.1 (ECB-AES128.Encrypt), all four blocks.
  const Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128 aes(key);
  const char* pts[] = {
      "6bc1bee22e409f96e93d7e117393172a", "ae2d8a571e03ac9c9eb76fac45af8e51",
      "30c81c46a35ce411e5fbc1191a0a52ef", "f69f2445df4f9b17ad2b417be66c3710"};
  const char* cts[] = {
      "3ad77bb40d7a3660a89ecaf32466ef97", "f5d3d58503b9699de785895a96fdbaaf",
      "43b1cd7f598ece23881b00e3ed030688", "7b0c785e27e8ad3f8223207104725dd4"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(aes.encrypt_block(hex_decode(pts[i])), hex_decode(cts[i]));
    EXPECT_EQ(aes.decrypt_block_copy(hex_decode(cts[i])), hex_decode(pts[i]));
  }
}

TEST(Aes128, RejectsBadSizes) {
  EXPECT_THROW(Aes128(Bytes(15)), CryptoError);
  Aes128 aes(Bytes(16, 0));
  Bytes out(16);
  EXPECT_THROW(aes.encrypt_block(Bytes(15), out), CryptoError);
  EXPECT_THROW(aes.decrypt_block(Bytes(17), out), CryptoError);
}

TEST(Aes128, EncryptDecryptRoundTripRandom) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const Bytes key = rng.bytes(16);
    const Bytes pt = rng.bytes(16);
    Aes128 aes(key);
    EXPECT_EQ(aes.decrypt_block_copy(aes.encrypt_block(pt)), pt);
  }
}

TEST(Aes128, InPlaceEncryption) {
  Aes128 aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes buf = hex_decode("3243f6a8885a308d313198a2e0370734");
  aes.encrypt_block(buf, buf);
  EXPECT_EQ(buf, hex_decode("3925841d02dc09fbdc118597196a0b32"));
  aes.decrypt_block(buf, buf);
  EXPECT_EQ(buf, hex_decode("3243f6a8885a308d313198a2e0370734"));
}

#ifdef PRIVEDIT_HAVE_OPENSSL
TEST(Aes128, CrossCheckAgainstOpenssl) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    const Bytes key = rng.bytes(16);
    const Bytes pt = rng.bytes(16);
    Aes128 aes(key);
    const Bytes ours = aes.encrypt_block(pt);

    Bytes theirs(32);
    int out_len = 0;
    EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
    ASSERT_TRUE(ctx != nullptr);
    ASSERT_EQ(EVP_EncryptInit_ex(ctx, EVP_aes_128_ecb(), nullptr, key.data(),
                                 nullptr),
              1);
    EVP_CIPHER_CTX_set_padding(ctx, 0);
    ASSERT_EQ(EVP_EncryptUpdate(ctx, theirs.data(), &out_len, pt.data(),
                                static_cast<int>(pt.size())),
              1);
    EVP_CIPHER_CTX_free(ctx);
    theirs.resize(static_cast<std::size_t>(out_len));
    EXPECT_EQ(ours, theirs) << "iteration " << i;
  }
}
#endif

TEST(Aes128Fast, Fips197Vectors) {
  Aes128Fast aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(aes.encrypt_block(hex_decode("3243f6a8885a308d313198a2e0370734")),
            hex_decode("3925841d02dc09fbdc118597196a0b32"));
  Aes128Fast aes2(hex_decode("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(aes2.encrypt_block(hex_decode("00112233445566778899aabbccddeeff")),
            hex_decode("69c4e0d86a7b0430d8cdb78070b4c55a"));
  EXPECT_EQ(aes2.decrypt_block_copy(
                hex_decode("69c4e0d86a7b0430d8cdb78070b4c55a")),
            hex_decode("00112233445566778899aabbccddeeff"));
}

TEST(Aes128Fast, AgreesWithReferenceImplementation) {
  Xoshiro256 rng(1234);
  for (int i = 0; i < 500; ++i) {
    const Bytes key = rng.bytes(16);
    const Bytes pt = rng.bytes(16);
    Aes128 reference(key);
    Aes128Fast fast(key);
    const Bytes ct = reference.encrypt_block(pt);
    EXPECT_EQ(fast.encrypt_block(pt), ct) << i;
    EXPECT_EQ(fast.decrypt_block_copy(ct), pt) << i;
  }
}

TEST(Aes128Fast, RejectsBadSizes) {
  EXPECT_THROW(Aes128Fast(Bytes(8)), CryptoError);
  Aes128Fast aes(Bytes(16, 0));
  Bytes out(16);
  EXPECT_THROW(aes.encrypt_block(Bytes(15), out), CryptoError);
  EXPECT_THROW(aes.decrypt_block(Bytes(17), out), CryptoError);
}

TEST(Aes128Fast, InPlaceOperation) {
  Aes128Fast aes(Bytes(16, 0x42));
  Bytes buf(16, 0x17);
  const Bytes original = buf;
  aes.encrypt_block(buf, buf);
  EXPECT_NE(buf, original);
  aes.decrypt_block(buf, buf);
  EXPECT_EQ(buf, original);
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(as_bytes(chunk));
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Xoshiro256 rng(5);
  const Bytes data = rng.bytes(1000);
  for (std::size_t split : {0u, 1u, 55u, 63u, 64u, 65u, 999u, 1000u}) {
    Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.update(to_bytes("x"));
  h.finish();
  EXPECT_THROW(h.update(to_bytes("y")), Error);
  EXPECT_THROW(h.finish(), Error);
}

// RFC 4231 test cases 1, 2 and 7.
TEST(HmacSha256, Rfc4231Vectors) {
  EXPECT_EQ(
      hex_encode(hmac_sha256(Bytes(20, 0x0b), to_bytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(
      hex_encode(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Case 7: key longer than block size.
  EXPECT_EQ(
      hex_encode(hmac_sha256(
          Bytes(131, 0xaa),
          to_bytes("This is a test using a larger than block-size key and a "
                   "larger than block-size data. The key needs to be hashed "
                   "before being used by the HMAC algorithm."))),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// RFC 7914 §11 / well-known PBKDF2-HMAC-SHA256 vectors.
TEST(Pbkdf2, KnownVectors) {
  EXPECT_EQ(hex_encode(pbkdf2_hmac_sha256(to_bytes("passwd"), to_bytes("salt"),
                                          1, 64)),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc"
            "49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783");
  EXPECT_EQ(hex_encode(pbkdf2_hmac_sha256(to_bytes("Password"), to_bytes("NaCl"),
                                          80000, 64)),
            "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56"
            "a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d");
}

TEST(Pbkdf2, RejectsZeroParams) {
  EXPECT_THROW(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 0, 16),
               CryptoError);
  EXPECT_THROW(pbkdf2_hmac_sha256(to_bytes("p"), to_bytes("s"), 1, 0),
               CryptoError);
}

TEST(CtrDrbg, DeterministicFromSeed) {
  auto a = CtrDrbg::from_seed(42);
  auto b = CtrDrbg::from_seed(42);
  auto c = CtrDrbg::from_seed(43);
  const Bytes ba = a->bytes(64);
  EXPECT_EQ(ba, b->bytes(64));
  EXPECT_NE(ba, c->bytes(64));
}

TEST(CtrDrbg, OutputLooksUniform) {
  auto drbg = CtrDrbg::from_seed(7);
  const Bytes data = drbg->bytes(1 << 16);
  std::map<std::uint8_t, int> counts;
  for (std::uint8_t b : data) counts[b]++;
  // Every byte value should appear; expected count 256 each.
  EXPECT_EQ(counts.size(), 256u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 128) << int(value);
    EXPECT_LT(count, 512) << int(value);
  }
}

TEST(CtrDrbg, ReseedChangesStream) {
  auto a = CtrDrbg::from_seed(1);
  auto b = CtrDrbg::from_seed(1);
  b->reseed(Bytes(32, 0x55));
  EXPECT_NE(a->bytes(32), b->bytes(32));
}

TEST(CtrDrbg, BackTrackResistance) {
  // After generating, the internal state is re-keyed, so two generators
  // that diverge never re-converge.
  auto a = CtrDrbg::from_seed(9);
  auto b = CtrDrbg::from_seed(9);
  (void)a->bytes(16);
  (void)a->bytes(16);
  (void)b->bytes(32);
  EXPECT_NE(a->bytes(16), b->bytes(16));
}

TEST(CtrDrbg, RejectsBadSeedLength)
{
  EXPECT_THROW(CtrDrbg(Bytes(31)), CryptoError);
}

TEST(WideBlock, RoundTrip) {
  Xoshiro256 rng(3);
  WideBlock wb(rng.bytes(16));
  for (int i = 0; i < 100; ++i) {
    const Bytes pt = rng.bytes(32);
    const Bytes ct = wb.encrypt_block(pt);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(wb.decrypt_block_copy(ct), pt);
  }
}

TEST(WideBlock, InPlace) {
  Xoshiro256 rng(4);
  WideBlock wb(rng.bytes(16));
  const Bytes pt = rng.bytes(32);
  Bytes buf = pt;
  wb.encrypt_block(buf, buf);
  EXPECT_NE(buf, pt);
  wb.decrypt_block(buf, buf);
  EXPECT_EQ(buf, pt);
}

TEST(WideBlock, KeySeparation) {
  Xoshiro256 rng(5);
  const Bytes pt = rng.bytes(32);
  WideBlock a(Bytes(16, 0x01));
  WideBlock b(Bytes(16, 0x02));
  EXPECT_NE(a.encrypt_block(pt), b.encrypt_block(pt));
}

TEST(WideBlock, AvalancheAcrossHalves) {
  // Flipping one bit anywhere in the plaintext must change both 16-byte
  // halves of the ciphertext (this is what the 4-round Feistel buys us —
  // with 2 rounds the left half would leak structure).
  WideBlock wb(Bytes(16, 0x77));
  Bytes pt(32, 0);
  const Bytes base = wb.encrypt_block(pt);
  for (std::size_t byte : {0u, 8u, 15u, 16u, 24u, 31u}) {
    Bytes mutated = pt;
    mutated[byte] ^= 0x01;
    const Bytes ct = wb.encrypt_block(mutated);
    EXPECT_FALSE(ct_equal(ByteView(ct.data(), 16), ByteView(base.data(), 16)))
        << "left half unchanged for flip at " << byte;
    EXPECT_FALSE(ct_equal(ByteView(ct.data() + 16, 16),
                          ByteView(base.data() + 16, 16)))
        << "right half unchanged for flip at " << byte;
  }
}

TEST(WideBlock, RejectsBadSizes) {
  EXPECT_THROW(WideBlock(Bytes(8)), CryptoError);
  WideBlock wb(Bytes(16, 0));
  Bytes out(32);
  EXPECT_THROW(wb.encrypt_block(Bytes(31), out), CryptoError);
  EXPECT_THROW(wb.decrypt_block(Bytes(33), out), CryptoError);
}

TEST(KeyDerivation, SubkeysAreIndependentAndStable) {
  const Bytes salt(16, 0xab);
  KdfParams params{.iterations = 100};
  const DocumentKeys k1 = derive_document_keys("password", salt, params);
  const DocumentKeys k2 = derive_document_keys("password", salt, params);
  EXPECT_EQ(k1.content_key, k2.content_key);
  EXPECT_EQ(k1.wide_key, k2.wide_key);
  EXPECT_EQ(k1.mac_key, k2.mac_key);
  EXPECT_NE(k1.content_key, k1.wide_key);
  EXPECT_EQ(k1.content_key.size(), 16u);
  EXPECT_EQ(k1.wide_key.size(), 16u);
  EXPECT_EQ(k1.mac_key.size(), 32u);
}

TEST(KeyDerivation, PasswordAndSaltSensitivity) {
  const Bytes salt1(16, 0x01);
  const Bytes salt2(16, 0x02);
  KdfParams params{.iterations = 50};
  const DocumentKeys a = derive_document_keys("pw", salt1, params);
  const DocumentKeys b = derive_document_keys("pw2", salt1, params);
  const DocumentKeys c = derive_document_keys("pw", salt2, params);
  EXPECT_NE(a.content_key, b.content_key);
  EXPECT_NE(a.content_key, c.content_key);
}

TEST(KeyDerivation, RejectsShortSalt) {
  EXPECT_THROW(derive_document_keys("pw", Bytes(4)), CryptoError);
}

}  // namespace
}  // namespace privedit::crypto
