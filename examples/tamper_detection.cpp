// Tamper detection — the §VI integrity story, played out against a
// malicious provider.
//
// The same document is stored twice: once under rECB (confidentiality
// only) and once under RPC (confidentiality + integrity). The provider
// then mounts the §VI-A active attacks — block duplication, reordering,
// truncation, bit flips. rECB silently accepts content corruption; RPC
// detects every attack at open time.
//
// Build & run:  ./build/examples/tamper_detection

#include <cstdio>
#include <functional>

#include "privedit/util/error.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/extension/session.hpp"

using namespace privedit;

namespace {

struct Attack {
  const char* name;
  std::function<std::string(const std::string&, const enc::ContainerHeader&)>
      mutate;
};

std::string swap_units(const std::string& doc, const enc::ContainerHeader& h,
                       std::size_t a, std::size_t b) {
  const std::size_t w = h.unit_width();
  const std::size_t p = h.prefix_chars();
  std::string out = doc;
  const std::string ua = doc.substr(p + a * w, w);
  const std::string ub = doc.substr(p + b * w, w);
  out.replace(p + a * w, w, ub);
  out.replace(p + b * w, w, ua);
  return out;
}

void run(const char* mode_name, enc::Mode mode) {
  const auto rng = extension::os_rng_factory();
  enc::SchemeConfig config;
  config.mode = mode;
  config.block_chars = 4;

  extension::DocumentSession writer =
      extension::DocumentSession::create_new("pw", config, rng);
  const std::string doc =
      writer.encrypt_full("Transfer $100 to Alice. Transfer $999 to Bob.");
  const enc::ContainerHeader header = writer.scheme().header();

  const Attack attacks[] = {
      {"duplicate a block",
       [](const std::string& d, const enc::ContainerHeader& h) {
         std::string out = d;
         const std::size_t w = h.unit_width(), p = h.prefix_chars();
         out.replace(p + 3 * w, w, d.substr(p + 2 * w, w));
         return out;
       }},
      {"swap two blocks",
       [](const std::string& d, const enc::ContainerHeader& h) {
         return swap_units(d, h, 2, 5);
       }},
      {"truncate one block",
       [](const std::string& d, const enc::ContainerHeader& h) {
         std::string out = d;
         out.erase(h.prefix_chars() + 2 * h.unit_width(), h.unit_width());
         return out;
       }},
      {"flip a ciphertext character",
       [](const std::string& d, const enc::ContainerHeader& h) {
         std::string out = d;
         const std::size_t i = h.prefix_chars() + h.unit_width() + 5;
         out[i] = out[i] == 'A' ? 'B' : 'A';
         return out;
       }},
  };

  std::printf("\n[%s]\n", mode_name);
  for (const Attack& attack : attacks) {
    const std::string tampered = attack.mutate(doc, header);
    try {
      extension::DocumentSession reader =
          extension::DocumentSession::open("pw", tampered, rng);
      std::printf("  %-28s ACCEPTED -> \"%.46s\"\n", attack.name,
                  reader.plaintext().c_str());
    } catch (const Error& e) {
      std::printf("  %-28s DETECTED (%s)\n", attack.name,
                  std::string(e.what()).substr(0, 52).c_str());
    }
  }
}

}  // namespace

int main() {
  std::printf("Malicious-provider attacks on the stored ciphertext "
              "(original: \"Transfer $100 to Alice. ...\")\n");
  run("rECB — confidentiality only (attacks may silently corrupt)",
      enc::Mode::kRecb);
  run("RPC  — confidentiality + integrity (every attack detected)",
      enc::Mode::kRpc);
  return 0;
}
