// Multi-service support (§III): the same methodology wraps Mozilla Bespin
// (whole-file PUT) and Adobe Buzzword (XML with <textRun> elements) —
// demonstrating the paper's generality claim beyond Google Documents.
//
// Build & run:  ./build/examples/multi_service

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/client/file_clients.hpp"
#include "privedit/cloud/file_servers.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"

using namespace privedit;

int main() {
  net::SimClock clock;
  extension::MediatorConfig config;
  config.password = "multi-service secret";

  // ---------------- Bespin: cloud source-code editor ----------------
  cloud::BespinServer bespin;
  net::LoopbackTransport bespin_net(
      [&bespin](const net::HttpRequest& r) { return bespin.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_os_entropy());
  extension::BespinMediator bespin_ext(&bespin_net, config);

  client::BespinClient dev(&bespin_ext, "acme/payroll.py");
  dev.set_text("SALARY_TABLE = {'ceo': 10_000_000}  # do not leak\n");
  dev.save();

  std::printf("[Bespin]\n");
  std::printf("  client file:   %.48s...\n", dev.text().c_str());
  std::printf("  server stores: %.48s...\n",
              bespin.raw_file("acme/payroll.py")->c_str());

  client::BespinClient reviewer(&bespin_ext, "acme/payroll.py");
  reviewer.load();
  std::printf("  reviewer sees: %.48s...\n", reviewer.text().c_str());

  // ---------------- Buzzword: XML word processor ----------------
  cloud::BuzzwordServer buzzword;
  net::LoopbackTransport buzzword_net(
      [&buzzword](const net::HttpRequest& r) { return buzzword.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_os_entropy());
  extension::BuzzwordMediator buzzword_ext(&buzzword_net, config);

  client::BuzzwordClient author(&buzzword_ext, "memoir");
  author.set_paragraphs({"I was born in a small town.",
                         "Everything else in this memoir is a secret."});
  author.save();

  const std::string stored = *buzzword.raw_document("memoir");
  std::printf("\n[Buzzword]\n");
  std::printf("  server stores XML (structure visible, text encrypted):\n");
  std::printf("    %.100s...\n", stored.c_str());

  client::BuzzwordClient reader(&buzzword_ext, "memoir");
  reader.load();
  std::printf("  reader recovers %zu paragraphs; first: \"%s\"\n",
              reader.paragraphs().size(), reader.paragraphs()[0].c_str());
  return 0;
}
