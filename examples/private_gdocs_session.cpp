// Private Google Documents session — the full simulated stack of Fig 1.
//
//   editor client  ->  browser extension (mediator)  ->  network  ->  cloud
//
// A user types a confidential memo into the (simulated) Google Documents
// editor; the extension intercepts every request, encrypts content and
// transforms deltas; the server happily applies ciphertext deltas and never
// sees a byte of plaintext. A second user with the shared password opens
// the same document. Server-side features that need plaintext (spell
// check, export) are blocked by the extension.
//
// Build & run:  ./build/examples/private_gdocs_session

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"

using namespace privedit;

int main() {
  // The untrusted cloud, a simulated network in front of it, and a clock.
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport network(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_os_entropy());
  network.enable_tap(true);  // eavesdropper's view

  // Alice's browser extension.
  extension::MediatorConfig config;
  config.password = "our shared secret";
  config.scheme.mode = enc::Mode::kRpc;
  extension::GDocsMediator alice_ext(&network, config, &clock);

  client::GDocsClient alice(&alice_ext, "quarterly-memo");
  alice.create();
  alice.insert(0, "Q3 layoffs: finance dept to be restructured. Do not "
                  "circulate before the board meeting.");
  alice.save();
  alice.insert(3, "CONFIDENTIAL ");
  alice.save();

  std::printf("alice sees:   \"%.50s...\"\n", alice.text().c_str());
  const std::string stored = *server.raw_content("quarterly-memo");
  std::printf("server stores: \"%.50s...\" (%zu chars, %.1fx blowup)\n",
              stored.c_str(), stored.size(),
              static_cast<double>(stored.size()) /
                  static_cast<double>(alice.text().size()));

  // The eavesdropper greps the wire for the secrets, in vain.
  bool leaked = false;
  for (const std::string& frame : network.tap()) {
    if (frame.find("layoffs") != std::string::npos ||
        frame.find("board meeting") != std::string::npos) {
      leaked = true;
    }
  }
  std::printf("plaintext on the wire after mediation: %s\n",
              leaked ? "LEAKED!" : "none");

  // Server-side features that need plaintext are blocked (§VII-A).
  try {
    alice.spellcheck();
  } catch (const ProtocolError& e) {
    std::printf("spellcheck:    %s\n", e.what());
  }
  try {
    alice.export_txt();
  } catch (const ProtocolError& e) {
    std::printf("export:        %s\n", e.what());
  }

  // Bob shares the document by sharing the password out of band.
  extension::GDocsMediator bob_ext(&network, config, &clock);
  client::GDocsClient bob(&bob_ext, "quarterly-memo");
  bob.open();
  std::printf("bob opens:    \"%.50s...\"\n", bob.text().c_str());

  std::printf("\nmediator counters: %zu full saves encrypted, %zu deltas "
              "transformed, %zu requests blocked\n",
              alice_ext.counters().full_saves_encrypted,
              alice_ext.counters().deltas_transformed,
              alice_ext.counters().requests_blocked);
  std::printf("simulated elapsed time: %.2f s over %zu requests\n",
              static_cast<double>(clock.now_us()) / 1e6,
              network.stats().requests);
  return 0;
}
