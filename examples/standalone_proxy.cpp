// Standalone proxy over real TCP sockets — §III interception option 1.
//
// Boots a simulated Google Documents service on one loopback port, the
// mediating proxy on another, and drives an editor client through the
// proxy with genuine HTTP over TCP. The service's stored bytes prove it
// never saw plaintext; a direct (proxy-less) client shows the exposure the
// proxy prevents.
//
// Build & run:  ./build/examples/standalone_proxy

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/proxy.hpp"
#include "privedit/net/http_server.hpp"

using namespace privedit;

int main() {
  // The "cloud": a real HTTP server wrapping the simulated service.
  cloud::GDocsServer gdocs;
  net::HttpServer service(
      0, net::serialize_handler(
             [&gdocs](const net::HttpRequest& r) { return gdocs.handle(r); }));
  std::printf("service listening on 127.0.0.1:%u\n", service.port());

  // The privacy proxy, pointed at the service.
  extension::MediatorConfig config;
  config.password = "proxy demo password";
  config.scheme.mode = enc::Mode::kRpc;
  extension::MediatingProxy proxy(0, service.port(), config);
  std::printf("mediating proxy on 127.0.0.1:%u\n\n", proxy.port());

  // A privacy-conscious user edits through the proxy.
  net::TcpChannel via_proxy(proxy.port());
  client::GDocsClient alice(&via_proxy, "meeting-notes");
  alice.create();
  alice.insert(0, "Acquisition target: Initech. Offer: $4.2M.");
  alice.save();
  alice.insert(0, "DRAFT - ");
  alice.save();

  std::printf("alice's document: \"%s\"\n", alice.text().c_str());
  const std::string stored = *gdocs.raw_content("meeting-notes");
  std::printf("service stores:   \"%.60s...\"\n", stored.c_str());
  std::printf("plaintext leaked: %s\n\n",
              stored.find("Initech") == std::string::npos ? "no" : "YES");

  // A second user, same proxy, same password: full shared access.
  net::TcpChannel via_proxy2(proxy.port());
  client::GDocsClient bob(&via_proxy2, "meeting-notes");
  bob.open();
  std::printf("bob (via proxy):  \"%s\"\n", bob.text().c_str());

  // A careless user going direct would store plaintext.
  net::TcpChannel direct(service.port());
  client::GDocsClient careless(&direct, "exposed-notes");
  careless.create();
  careless.insert(0, "this goes to the provider in the clear");
  careless.save();
  std::printf("careless direct save stored: \"%s\"\n\n",
              gdocs.raw_content("exposed-notes")->c_str());

  std::printf("proxy counters: %zu encrypted saves, %zu transformed deltas, "
              "%zu blocked requests\n",
              proxy.counters().full_saves_encrypted,
              proxy.counters().deltas_transformed,
              proxy.counters().requests_blocked);

  proxy.stop();
  service.stop();
  return 0;
}
