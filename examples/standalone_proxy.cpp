// Standalone proxy over real TCP sockets — §III interception option 1.
//
// Boots a sharded simulated Google Documents service (three shards behind
// a consistent-hash router) on one loopback port, the mediating proxy on
// another, and drives an editor client through the proxy with genuine
// HTTP over TCP. The shards' stored bytes prove the provider never saw
// plaintext; a direct (proxy-less) client shows the exposure the proxy
// prevents.
//
// Build & run:  ./build/examples/standalone_proxy

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/shard_router.hpp"
#include "privedit/extension/proxy.hpp"
#include "privedit/net/http_server.hpp"

using namespace privedit;

int main() {
  // The "cloud": a real HTTP server wrapping a three-shard ring. The
  // router is thread-safe (one lock domain per shard), so the listener
  // dispatches straight into it.
  cloud::ShardRouter gdocs({"shard-0", "shard-1", "shard-2"}, {});
  net::HttpServer service(
      0, [&gdocs](const net::HttpRequest& r) { return gdocs.handle(r); });
  std::printf("service listening on 127.0.0.1:%u (%zu shards)\n",
              service.port(), gdocs.shard_count());

  // The privacy proxy, pointed at the service.
  extension::MediatorConfig config;
  config.password = "proxy demo password";
  config.scheme.mode = enc::Mode::kRpc;
  extension::MediatingProxy proxy(0, service.port(), config);
  std::printf("mediating proxy on 127.0.0.1:%u\n\n", proxy.port());

  // A privacy-conscious user edits through the proxy.
  net::TcpChannel via_proxy(proxy.port());
  client::GDocsClient alice(&via_proxy, "meeting-notes");
  alice.create();
  alice.insert(0, "Acquisition target: Initech. Offer: $4.2M.");
  alice.save();
  alice.insert(0, "DRAFT - ");
  alice.save();

  std::printf("alice's document: \"%s\"\n", alice.text().c_str());
  std::printf("document lives on shard: %s\n",
              gdocs.shard_for("meeting-notes").c_str());
  const std::string stored = *gdocs.raw_content("meeting-notes");
  std::printf("shard stores:     \"%.60s...\"\n", stored.c_str());
  std::printf("plaintext leaked: %s\n\n",
              stored.find("Initech") == std::string::npos ? "no" : "YES");

  // A second user, same proxy, same password: full shared access.
  net::TcpChannel via_proxy2(proxy.port());
  client::GDocsClient bob(&via_proxy2, "meeting-notes");
  bob.open();
  std::printf("bob (via proxy):  \"%s\"\n", bob.text().c_str());

  // A careless user going direct would store plaintext.
  net::TcpChannel direct(service.port());
  client::GDocsClient careless(&direct, "exposed-notes");
  careless.create();
  careless.insert(0, "this goes to the provider in the clear");
  careless.save();
  std::printf("careless direct save stored: \"%s\" (on %s)\n\n",
              gdocs.raw_content("exposed-notes")->c_str(),
              gdocs.shard_for("exposed-notes").c_str());

  std::printf("proxy counters: %zu encrypted saves, %zu transformed deltas, "
              "%zu blocked requests\n",
              proxy.counters().full_saves_encrypted,
              proxy.counters().deltas_transformed,
              proxy.counters().requests_blocked);
  std::printf("router counters: %zu requests routed across %zu shards\n",
              gdocs.counters().routed, gdocs.shard_count());

  proxy.stop();
  service.stop();
  return 0;
}
