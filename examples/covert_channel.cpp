// Covert channels under the malicious-client model (§VI-B).
//
// A malicious editor client encodes each typed character's alphabet ordinal
// into the *shape* of the delta it submits (delete k originals, re-insert
// them). The ciphertext deltas the extension emits then differ in length
// with the secret — a covert channel to the server. The extension's
// re-diff countermeasure recomputes a minimal delta from the two document
// versions, collapsing every encoding to the same wire form; padding
// quantises whatever length variation remains.
//
// Build & run:  ./build/examples/covert_channel

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "privedit/util/error.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/workload/edits.hpp"

using namespace privedit;

namespace {

std::size_t delta_wire_size(bool rediff, std::size_t pad_bucket,
                            char secret) {
  cloud::GDocsServer server;
  net::SimClock clock;
  net::LoopbackTransport network(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(1));
  extension::MediatorConfig config;
  config.password = "pw";
  config.rediff = rediff;
  config.pad_bucket = pad_bucket;
  config.rng_factory = extension::seeded_rng_factory(2);
  extension::GDocsMediator mediator(&network, config, &clock);
  network.enable_tap(true);

  client::GDocsClient mallory(&mediator, "doc");
  mallory.create();
  mallory.insert(0, "abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz");
  mallory.save();
  network.clear_tap();

  const delta::Delta covert =
      workload::covert_ord_delta(mallory.text(), 5, 'X', secret);
  mallory.insert(5, "X");
  mallory.queue_raw_delta(covert);
  mallory.save();

  for (const std::string& frame : network.tap()) {
    if (frame.rfind("POST", 0) == 0) {
      const net::HttpRequest req = net::HttpRequest::parse(frame);
      if (req.body.find("delta=") != std::string::npos) {
        return req.body.size();
      }
    }
  }
  return 0;
}

void report(const char* label, bool rediff, std::size_t pad) {
  std::printf("%-34s", label);
  std::vector<std::size_t> sizes;
  for (char secret : {'b', 'h', 'q', 'z'}) {
    sizes.push_back(delta_wire_size(rediff, pad, secret));
    std::printf(" %6zu", sizes.back());
  }
  bool distinguishable = false;
  for (std::size_t s : sizes) {
    if (s != sizes[0]) distinguishable = true;
  }
  std::printf("   -> %s\n",
              distinguishable ? "LEAKS (sizes depend on secret)"
                              : "uniform (channel closed)");
}

// ---------------------------------------------------------------- timing

// §VI-B's other channel: "The timing of the update messages could also be
// used as a covert channel." A malicious client encodes a secret value in
// how long it waits before triggering a save; the server reads it back off
// its own clock. The extension's random-delay countermeasure adds uniform
// noise on top of every outgoing update.
void timing_channel(std::uint64_t mitigation_us) {
  std::printf("  random delay %4" PRIu64 " ms:", mitigation_us / 1000);
  double ranges[2][2] = {{1e18, 0}, {1e18, 0}};
  int idx = 0;
  for (const std::uint64_t secret : {1ull, 4ull}) {  // encoded as 100/400ms
    // Observed gap distribution over trials, as the eavesdropper sees it.
    double total_ms = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
      cloud::GDocsServer server;
      net::SimClock clock;
      net::LoopbackTransport network(
          [&server](const net::HttpRequest& r) { return server.handle(r); },
          &clock, net::LatencyModel{},
          crypto::CtrDrbg::from_seed(7000 + static_cast<std::uint64_t>(t)));
      extension::MediatorConfig config;
      config.password = "pw";
      config.random_delay_us = mitigation_us;
      config.rng_factory =
          extension::seeded_rng_factory(8000 + static_cast<std::uint64_t>(t));
      extension::GDocsMediator mediator(&network, config, &clock);
      client::GDocsClient mallory(&mediator, "doc");
      mallory.create();
      mallory.insert(0, "cover text");
      mallory.save();

      const std::uint64_t t0 = clock.now_us();
      // Malicious client waits secret*100ms before the next save.
      clock.advance_us(secret * 100'000);
      mallory.insert(0, "x");
      mallory.save();
      const double gap = static_cast<double>(clock.now_us() - t0) / 1000.0;
      total_ms += gap;
      ranges[idx][0] = std::min(ranges[idx][0], gap);
      ranges[idx][1] = std::max(ranges[idx][1], gap);
    }
    std::printf("  secret=%" PRIu64 ": mean %5.0f range [%4.0f,%5.0f]",
                secret, total_ms / trials, ranges[idx][0], ranges[idx][1]);
    ++idx;
  }
  const bool overlap = ranges[0][1] >= ranges[1][0];
  std::printf("  -> single save %s\n",
              overlap ? "AMBIGUOUS" : "leaks the secret");
}

void print_timing_section() {
  std::printf(
      "\nTiming channel: the client delays its save by secret*100 ms; the\n"
      "server measures the gap. Random delays widen the noise floor (one\n"
      "save still leaks; averaging over many saves defeats any bounded\n"
      "noise — §VI-B: complete elimination requires a trusted client):\n");
  timing_channel(0);
  timing_channel(250'000);
  timing_channel(1'000'000);
}

}  // namespace

int main() {
  std::printf("Malicious client smuggles Ord(secret) in delta shape while\n"
              "visibly typing one character 'X'. Columns: wire size of the\n"
              "mediated update for secrets b, h, q, z.\n\n");
  std::printf("%-34s %6s %6s %6s %6s\n", "extension configuration", "b", "h",
              "q", "z");
  report("no countermeasures", false, 0);
  report("re-diff", true, 0);
  report("padding (512-byte bucket)", false, 512);
  report("re-diff + padding", true, 512);
  print_timing_section();
  return 0;
}
