// Collaborative editing through the untrusted server — closing the gap
// §VII-A left open ("The SPORC project investigated the problem of
// collaborative editing using untrusted server ... they assumed control
// over the server"). privedit's variant keeps the stock protocol: the
// server only gains a strict-revision mode (reject stale saves with 409 +
// current ciphertext), and all merging happens client-side in the
// mediator via operational transformation. The server still never sees a
// byte of plaintext.
//
// Build & run:  ./build/examples/collaborative_editing

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"

using namespace privedit;

int main() {
  cloud::GDocsServer server;
  server.set_strict_revisions(true);  // OCC instead of server-side merge
  net::SimClock clock;
  net::LoopbackTransport network(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_os_entropy());

  extension::MediatorConfig config;
  config.password = "team password";
  config.scheme.mode = enc::Mode::kRpc;
  config.collaborative = true;  // OT rebase on conflict

  extension::GDocsMediator alice_ext(&network, config, &clock);
  extension::GDocsMediator bob_ext(&network, config, &clock);

  client::GDocsClient alice(&alice_ext, "shared-doc");
  alice.create();
  alice.insert(0, "Agenda: budget review. Next steps: TBD.");
  alice.save();

  client::GDocsClient bob(&bob_ext, "shared-doc");
  bob.open();

  std::printf("shared document: \"%s\"\n\n", alice.text().c_str());

  // Both edit concurrently — neither has seen the other's change.
  alice.replace(8, 6, "Q3 budget");  // alice rewrites "budget"
  alice.save();
  std::printf("alice saves:     \"%s\"\n", alice.text().c_str());

  bob.replace(bob.text().size() - 4, 3, "hire two engineers");
  bob.save();  // stale revision: bob's extension rebases and merges
  std::printf("bob saves:       \"%s\"\n", bob.text().c_str());
  std::printf("                 (%zu rebase(s), %zu merge(s), %zu complaints)\n\n",
              bob_ext.counters().rebases, bob.merges(),
              bob.conflict_complaints());

  alice.open();
  std::printf("alice refreshes: \"%s\"\n", alice.text().c_str());
  std::printf("converged:       %s\n\n",
              alice.text() == bob.text() ? "yes" : "NO");

  const std::string stored = *server.raw_content("shared-doc");
  std::printf("server stores:   \"%.56s...\"\n", stored.c_str());
  std::printf("plaintext seen by server: %s\n",
              (stored.find("budget") == std::string::npos &&
               stored.find("engineers") == std::string::npos)
                  ? "none"
                  : "LEAKED");
  return 0;
}
