// Quickstart — the core library in 60 lines.
//
// Creates an encrypted document session from a password, encrypts a
// document, applies incremental edits (producing ciphertext deltas a cloud
// server could apply blindly), and decrypts the result with a second
// session that knows only the password and the ciphertext.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "privedit/util/error.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/extension/session.hpp"

using namespace privedit;

int main() {
  const auto rng = extension::os_rng_factory();

  // 1. Create an encrypted document (RPC mode: confidentiality + integrity).
  enc::SchemeConfig config;
  config.mode = enc::Mode::kRpc;
  config.block_chars = 8;
  extension::DocumentSession alice =
      extension::DocumentSession::create_new("hunter2", config, rng);

  // 2. Encrypt the initial contents. `server_doc` is what the untrusted
  //    cloud stores — an opaque Base32 string.
  std::string server_doc = alice.encrypt_full("Meet me at the old pier.");
  std::printf("server stores (%zu chars): %.60s...\n", server_doc.size(),
              server_doc.c_str());

  // 3. Edit incrementally. The plaintext delta uses the Google Documents
  //    language: "=n" retain, "+str" insert, "-n" delete.
  const delta::Delta edit = delta::Delta::parse("=15\t-9\t+new boathouse.");
  const delta::Delta cdelta = alice.transform_delta(edit);
  std::printf("plaintext delta: %s\n", edit.to_wire().c_str());
  std::printf("ciphertext delta (%zu chars): %.60s...\n",
              cdelta.to_wire().size(), cdelta.to_wire().c_str());

  // 4. The server applies the ciphertext delta without learning anything.
  server_doc = cdelta.apply(server_doc);

  // 5. A collaborator with the password (and nothing else) opens it.
  extension::DocumentSession bob =
      extension::DocumentSession::open("hunter2", server_doc, rng);
  std::printf("bob decrypts: \"%s\"\n", bob.plaintext().c_str());

  // 6. Wrong passwords fail loudly.
  try {
    extension::DocumentSession::open("password123", server_doc, rng);
  } catch (const CryptoError& e) {
    std::printf("eve is rejected: %s\n", e.what());
  }
  return 0;
}
