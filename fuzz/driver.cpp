// Shared driver for the fuzz targets. Exactly one
// PRIVEDIT_FUZZ_TARGET_<name> macro is defined per binary (fuzz/CMakeLists).
//
// File-replay mode (default): each argv is replayed through the entry
// point; privedit's own error taxonomy is a correct rejection, while a
// FuzzCheckFailure prints the offending file and exits 1 — the crash
// artifact a fuzzer (or CI corpus replay) keeps.
//
// libFuzzer mode (-DPRIVEDIT_LIBFUZZER=ON): the same dispatch compiled as
// LLVMFuzzerTestOneInput; FuzzCheckFailure escapes and aborts the process,
// which is how libFuzzer detects a finding.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "privedit/sim/fuzz.hpp"

namespace {

void dispatch(std::string_view data) {
#if defined(PRIVEDIT_FUZZ_TARGET_delta)
  privedit::sim::fuzz_delta(data);
#elif defined(PRIVEDIT_FUZZ_TARGET_container)
  privedit::sim::fuzz_container(data);
#elif defined(PRIVEDIT_FUZZ_TARGET_journal)
  privedit::sim::fuzz_journal(data, "/tmp/privedit-fuzz-journal");
#elif defined(PRIVEDIT_FUZZ_TARGET_http)
  privedit::sim::fuzz_http(data);
#elif defined(PRIVEDIT_FUZZ_TARGET_store)
  privedit::sim::fuzz_store_record(data, "/tmp/privedit-fuzz-store");
#elif defined(PRIVEDIT_FUZZ_TARGET_diff)
  privedit::sim::fuzz_diff(data);
#else
#error "no PRIVEDIT_FUZZ_TARGET_* defined"
#endif
}

}  // namespace

#if defined(PRIVEDIT_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  dispatch(std::string_view(reinterpret_cast<const char*>(data), size));
  return 0;  // FuzzCheckFailure escapes -> libFuzzer records the crash
}

#else

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s INPUT_FILE...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string data = buf.str();
    try {
      dispatch(data);
    } catch (const privedit::sim::FuzzCheckFailure& e) {
      std::fprintf(stderr, "FUZZ FAILURE on %s: %s\n", argv[i], e.what());
      return 1;
    }
    std::printf("ok %s (%zu bytes)\n", argv[i], data.size());
  }
  return 0;
}

#endif
