// Fig 8 — macro-benchmark with 8-character-block rECB incremental
// encryption (§VII-D).
//
// Paper table (file size ~10000 chars, rECB, b=8):
//   initial load        18%   .047
//   inserts only        8.8%  .058
//   deletes only        7.5%  .034
//   inserts and deletes 12.6% .082
// and: "the ciphertext blowup is reduced from 23x to less than 5x".
//
// Shape to reproduce vs Fig 5: initial-load degradation *drops* sharply
// (the ciphertext is ~6x smaller, so transfer dominates less), per-edit
// overhead rises slightly (multi-char block management), and the blow-up
// falls below 5x.

#include <benchmark/benchmark.h>

#include "macro_common.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

void print_fig8() {
  print_title(
      "Fig 8 — macro-benchmark degradation, 8-char blocks (rECB, ~10000)");
  const char* paper[4] = {"18%", "8.8%", "7.5%", "12.6%"};
  print_macro_table("Large files (~10000 chars), rECB, b=8", 10'000,
                    enc::Mode::kRecb, 8, 12, 50'000, paper);

  // Blow-up companion claim: 23x -> <5x.
  MacroStack stack(7, true, macro_config(enc::Mode::kRecb, 8));
  client::GDocsClient writer(stack.channel, "doc");
  writer.create();
  Xoshiro256 rng(8);
  writer.insert(0, workload::random_document(rng, 10'000));
  writer.save();
  const auto stats8 = *stack.mediator->managed_stats("doc");

  MacroStack stack1(7, true, macro_config(enc::Mode::kRecb, 1));
  client::GDocsClient writer1(stack1.channel, "doc");
  writer1.create();
  Xoshiro256 rng1(8);
  writer1.insert(0, workload::random_document(rng1, 10'000));
  writer1.save();
  const auto stats1 = *stack1.mediator->managed_stats("doc");

  std::printf(
      "\nCiphertext blow-up: b=1 %.1fx -> b=8 %.2fx   (paper: 23x -> <5x)\n",
      stats1.blowup(), stats8.blowup());
}

void BM_MultiCharTransform(benchmark::State& state) {
  auto scheme = bench_scheme(enc::Mode::kRecb,
                             static_cast<std::size_t>(state.range(0)), 71);
  Xoshiro256 rng(9);
  scheme->initialize(workload::random_document(rng, 10'000));
  std::size_t i = 0;
  for (auto _ : state) {
    delta::Delta d;
    d.push(delta::Op::retain((i * 2503) % 9'000));
    d.push(delta::Op::insert("hello"));
    benchmark::DoNotOptimize(scheme->transform_delta(d));
    ++i;
  }
}
BENCHMARK(BM_MultiCharTransform)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig8();
  return 0;
}
