// Storage integrity bench: what the scrub/fsck machinery costs at the
// provider and at the operator's console.
//
// Three measurements over the same corpus of encrypted documents:
//
//   check        — offline check_store() over one replica directory:
//                  structural walk (rev line, container framing) alone,
//                  then again with the deep decrypt validator, giving the
//                  records/sec an operator pays for --check-only.
//   scrub        — online GDocsServer::scrub_step() full cycles over the
//                  same store: the disk-vs-memory compare + container walk
//                  the provider piggybacks on live traffic, in docs/sec.
//   fsck repair  — seed three replicas, corrupt a fraction of one (byte
//                  rot, clobbered rev lines, lost directory entries), run
//                  extension::run_fsck() end to end, and charge the wall
//                  clock per repaired document. A run that fails to heal
//                  every damaged doc fails the bench.
//
// Output: one JSON line per measurement (machine-consumable — the numbers
// in BENCH_pr7.json come from here) followed by a human summary. --quick
// shrinks the corpus for CI smoke runs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "privedit/cloud/file_store.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/cloud/store_check.hpp"
#include "privedit/extension/fsck.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

#include "bench_common.hpp"

namespace privedit {
namespace {

namespace fs = std::filesystem;

constexpr const char* kPassword = "bench-pw";

std::string make_body(std::size_t chars, std::uint64_t seed) {
  std::string body;
  body.reserve(chars);
  Xoshiro256 rng(seed);
  while (body.size() < chars) {
    body += "the quick brown fox jumps over the lazy dog ";
    if (rng.below(7) == 0) body += '\n';
  }
  body.resize(chars);
  return body;
}

std::string doc_name(std::size_t i) { return "doc-" + std::to_string(i); }

/// Populates `dir` with `docs` encrypted records at rev 3 and returns the
/// pristine record bytes keyed by doc id (for corruption + verification).
std::map<std::string, cloud::Store::Record> seed_store(
    const std::string& dir, std::size_t docs, std::size_t doc_chars) {
  std::map<std::string, cloud::Store::Record> pristine;
  cloud::FileStore store(dir);
  for (std::size_t i = 0; i < docs; ++i) {
    enc::SchemeConfig scheme;
    scheme.mode = enc::Mode::kRpc;
    scheme.kdf_iterations = 10;
    auto session = extension::DocumentSession::create_new(
        kPassword, scheme, extension::seeded_rng_factory(1000 + i));
    const std::string container =
        session.encrypt_full(make_body(doc_chars, 2000 + i));
    const cloud::Store::Record record{container, 3};
    store.put(doc_name(i), record);
    pristine[doc_name(i)] = record;
  }
  return pristine;
}

int run(bool quick) {
  using bench::time_seconds;

  const std::size_t docs = quick ? 12 : 48;
  const std::size_t doc_chars = quick ? 400 : 2'000;
  const std::size_t corrupt_docs = docs / 4;

  const std::string base =
      (fs::temp_directory_path() / "privedit_store_scrub").string();
  fs::remove_all(base);
  std::vector<std::string> replicas = {base + "/r0", base + "/r1",
                                       base + "/r2"};
  std::map<std::string, cloud::Store::Record> pristine;
  for (const std::string& dir : replicas) {
    pristine = seed_store(dir, docs, doc_chars);
  }
  // The operator's journals anchor every doc at its acked revision — this
  // is what lets fsck see a lost directory entry as kMissing.
  const std::string journal_dir = base + "/journal";
  fs::create_directories(journal_dir);
  for (const auto& [id, record] : pristine) {
    extension::EditJournal journal(journal_dir + "/" +
                                   hex_encode(as_bytes(id)) + ".wal");
    const std::string checksum = cloud::store_content_hash16(record.content);
    journal.append_pending({record.rev, /*full_save=*/true, checksum,
                            record.content});
    journal.ack_front(record.rev, checksum);
  }
  const std::size_t record_bytes = pristine.begin()->second.content.size();
  std::printf("# store_scrub: docs=%zu doc_chars=%zu record_bytes=%zu\n",
              docs, doc_chars, record_bytes);

  // --- check_store: structural walk, then deep decrypt validation ---
  {
    cloud::FileStore store(replicas[0]);
    const cloud::CheckConfig structural;
    cloud::CheckReport report;
    const double structural_s = time_seconds([&] {
      for (int round = 0; round < 5; ++round) {
        report = cloud::check_store(store, structural);
      }
    }) / 5.0;
    if (!report.store_clean()) {
      std::fprintf(stderr, "FAIL: pristine store checked dirty\n");
      return 1;
    }

    cloud::CheckConfig deep;
    deep.deep_validate = [](const std::string& content) {
      try {
        extension::DocumentSession::open(kPassword, content,
                                         extension::seeded_rng_factory(0));
        return true;
      } catch (const Error&) {
        return false;
      }
    };
    const double deep_s =
        time_seconds([&] { report = cloud::check_store(store, deep); });
    if (!report.store_clean()) {
      std::fprintf(stderr, "FAIL: pristine store failed deep validation\n");
      return 1;
    }
    std::printf(
        "{\"bench\":\"check_store\",\"docs\":%zu,"
        "\"structural_docs_per_s\":%.0f,\"structural_mb_per_s\":%.1f,"
        "\"deep_docs_per_s\":%.1f}\n",
        docs, static_cast<double>(docs) / structural_s,
        static_cast<double>(docs * record_bytes) / structural_s / 1e6,
        static_cast<double>(docs) / deep_s);
  }

  // --- online scrub: full cycles against a live server ---
  {
    cloud::GDocsServer server;
    server.enable_persistence(
        std::make_unique<cloud::FileStore>(replicas[0]));
    cloud::GDocsServer::ScrubConfig scrub;
    scrub.docs_per_cycle = 8;
    scrub.interval_requests = 0;  // driven directly, not via handle()
    server.enable_scrub(scrub);
    const std::size_t cycles = quick ? 10 : 40;
    const double scrub_s = time_seconds([&] {
      while (server.scrub_counters().cycles < cycles) server.scrub_step();
    });
    const auto& c = server.scrub_counters();
    if (c.quarantined != 0 || c.store_mismatches != 0) {
      std::fprintf(stderr, "FAIL: scrub flagged a pristine store\n");
      return 1;
    }
    std::printf(
        "{\"bench\":\"scrub\",\"docs\":%zu,\"docs_scrubbed\":%zu,"
        "\"cycles\":%zu,\"docs_per_s\":%.0f,\"us_per_doc\":%.1f}\n",
        docs, c.docs_scrubbed, c.cycles,
        static_cast<double>(c.docs_scrubbed) / scrub_s,
        scrub_s / static_cast<double>(c.docs_scrubbed) * 1e6);
  }

  // --- fsck: corrupt a quarter of replica 0, repair from the others ---
  {
    Xoshiro256 rng(41);
    cloud::FileStore victim(replicas[0]);
    for (std::size_t i = 0; i < corrupt_docs; ++i) {
      const std::string id = doc_name(i);
      switch (i % 3) {
        case 0: {  // flip one ciphertext byte
          std::fstream f(victim.path_for(id),
                         std::ios::in | std::ios::out | std::ios::binary);
          const auto off = 2 + rng.below(record_bytes - 2);
          f.seekg(static_cast<std::streamoff>(off));
          char b = static_cast<char>(f.get());
          f.seekp(static_cast<std::streamoff>(off));
          f.put(b == 'A' ? 'B' : 'A');
          break;
        }
        case 1:  // clobber the record wholesale
          std::ofstream(victim.path_for(id),
                        std::ios::trunc | std::ios::binary)
              << "not a record";
          break;
        default:  // lost directory entry
          fs::remove(victim.path_for(id));
          break;
      }
    }

    extension::FsckOptions options;
    options.password = kPassword;
    options.journal_dir = journal_dir;
    extension::FsckResult result;
    const double fsck_s = time_seconds(
        [&] { result = extension::run_fsck(replicas, options); });
    if (result.dirty_docs != corrupt_docs ||
        result.repaired_docs != corrupt_docs ||
        !result.unrecoverable.empty() || !result.healthy_after()) {
      std::fprintf(stderr,
                   "FAIL: fsck dirty=%zu repaired=%zu unrecoverable=%zu "
                   "(expected %zu repaired)\n",
                   result.dirty_docs, result.repaired_docs,
                   result.unrecoverable.size(), corrupt_docs);
      return 1;
    }
    for (std::size_t i = 0; i < corrupt_docs; ++i) {
      const auto healed = cloud::FileStore(replicas[0]).get(doc_name(i));
      if (!healed || healed->content != pristine[doc_name(i)].content) {
        std::fprintf(stderr, "FAIL: %s not byte-identical after repair\n",
                     doc_name(i).c_str());
        return 1;
      }
    }
    std::printf(
        "{\"bench\":\"fsck\",\"replicas\":%zu,\"docs\":%zu,"
        "\"corrupted\":%zu,\"repaired\":%zu,\"syncs_pushed\":%zu,"
        "\"total_ms\":%.1f,\"ms_per_repair\":%.2f}\n",
        replicas.size(), docs, corrupt_docs, result.repaired_docs,
        result.syncs_pushed, fsck_s * 1e3,
        fsck_s * 1e3 / static_cast<double>(corrupt_docs));
    std::printf("# summary: fsck healed %zu/%zu docs across %zu replicas "
                "in %.1f ms\n",
                result.repaired_docs, corrupt_docs, replicas.size(),
                fsck_s * 1e3);
  }

  fs::remove_all(base);
  return 0;
}

}  // namespace
}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return privedit::run(quick);
}
