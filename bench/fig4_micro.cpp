// Fig 4 — micro-benchmark of the cryptographic operations (§VII-B).
//
// The paper's procedure: 1000 probabilistically generated test cases, each
// a pair (D, D') of random strings with lengths uniform in [100, 10000]; a
// delta transforming D into D' is derived; measured quantities are the time
// to encrypt D, to transform the delta, and to decrypt D', reported per
// character. Paper numbers (RPC, JavaScript in Firefox 3 on a Core 2 Duo):
// enc .091 ms/char, dec .085 ms/char, incE .110 ms/char, i.e. a throughput
// of 9.1–11.8 kB/s. Native C++ is ~3–4 orders of magnitude faster; the
// shape to check is dec <= enc < incE-per-affected-char and throughput
// uniformity across modes.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/workload/corpus.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

struct MicroResult {
  Stats enc_us_per_char;
  Stats dec_us_per_char;
  Stats inc_us_per_char;
  double throughput_kbs = 0.0;  // plaintext kB/s through Enc
};

MicroResult run_micro(enc::Mode mode, int cases, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> enc_pc, dec_pc, inc_pc;
  double total_chars = 0.0, total_enc_s = 0.0;

  for (int i = 0; i < cases; ++i) {
    const workload::RandomPair pair = workload::random_pair(rng, 100, 10'000);
    const delta::Delta d = delta::myers_diff(pair.before, pair.after,
                                             /*max_cost=*/4000);

    auto scheme = bench_scheme(mode, 8, seed * 1000 + static_cast<std::uint64_t>(i));
    std::string doc;
    const double t_enc =
        time_seconds([&] { doc = scheme->initialize(pair.before); });
    sink_buffer(doc.data());  // doc is otherwise dead after the timing
    const double t_inc = time_seconds([&] { scheme->transform_delta(d); });
    const std::string cdoc = scheme->ciphertext_doc();

    auto reader = bench_scheme(mode, 8, seed * 2000 + static_cast<std::uint64_t>(i));
    const double t_dec = time_seconds([&] { reader->load(cdoc); });

    enc_pc.push_back(t_enc * 1e6 / static_cast<double>(pair.before.size()));
    dec_pc.push_back(t_dec * 1e6 / static_cast<double>(pair.after.size()));
    inc_pc.push_back(t_inc * 1e6 / static_cast<double>(pair.after.size()));
    total_chars += static_cast<double>(pair.before.size());
    total_enc_s += t_enc;
  }

  MicroResult r;
  r.enc_us_per_char = stats_of(enc_pc);
  r.dec_us_per_char = stats_of(dec_pc);
  r.inc_us_per_char = stats_of(inc_pc);
  r.throughput_kbs = total_chars / 1000.0 / total_enc_s;
  return r;
}

void print_fig4() {
  print_title("Fig 4 — Micro-benchmark: per-character crypto cost "
              "(averages over random pairs)");
  std::printf("%-28s %14s %14s %18s\n", "operation", "paper (ms)",
              "measured (us)", "measured (ms)");
  print_rule();
  for (const enc::Mode mode : {enc::Mode::kRpc, enc::Mode::kRecb}) {
    const MicroResult r = run_micro(mode, 300, 42);
    const bool is_rpc = mode == enc::Mode::kRpc;
    std::printf("[%s]\n", enc::mode_name(mode).data());
    std::printf("%-28s %14s %14.3f %18.6f\n", "  encryption (D)",
                is_rpc ? "0.091" : "n/a", r.enc_us_per_char.mean,
                r.enc_us_per_char.mean / 1000.0);
    std::printf("%-28s %14s %14.3f %18.6f\n", "  decryption (D')",
                is_rpc ? "0.085" : "n/a", r.dec_us_per_char.mean,
                r.dec_us_per_char.mean / 1000.0);
    std::printf("%-28s %14s %14.3f %18.6f\n", "  incremental encryption",
                is_rpc ? "0.110" : "n/a", r.inc_us_per_char.mean,
                r.inc_us_per_char.mean / 1000.0);
    std::printf("%-28s %14s %14.1f kB/s\n", "  Enc throughput",
                is_rpc ? "9.1-11.8" : "n/a", r.throughput_kbs);
  }
  print_rule();
  std::printf(
      "Shape check (paper): confidentiality-only (rECB) is slightly faster\n"
      "than RPC; decryption is the cheapest per-char operation; the\n"
      "incremental path costs more per affected character than bulk Enc.\n"
      "Absolute numbers are native C++ vs the paper's 2009-era JavaScript\n"
      "(expect a ~10^3-10^4 speedup; see EXPERIMENTS.md).\n");
}

// google-benchmark registrations for the same primitives.
void BM_EncryptWholeDoc(benchmark::State& state) {
  const enc::Mode mode = static_cast<enc::Mode>(state.range(0));
  const auto chars = static_cast<std::size_t>(state.range(1));
  Xoshiro256 rng(1);
  const std::string doc = workload::random_string(rng, chars);
  auto scheme = bench_scheme(mode, 8, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->initialize(doc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chars));
}
BENCHMARK(BM_EncryptWholeDoc)
    ->Args({static_cast<int>(enc::Mode::kRecb), 10'000})
    ->Args({static_cast<int>(enc::Mode::kRpc), 10'000});

void BM_DecryptWholeDoc(benchmark::State& state) {
  const enc::Mode mode = static_cast<enc::Mode>(state.range(0));
  Xoshiro256 rng(2);
  const std::string doc = workload::random_string(rng, 10'000);
  auto writer = bench_scheme(mode, 8, 8);
  const std::string cdoc = writer->initialize(doc);
  auto reader = bench_scheme(mode, 8, 9);
  for (auto _ : state) {
    reader->load(cdoc);
    benchmark::DoNotOptimize(reader);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_DecryptWholeDoc)
    ->Args({static_cast<int>(enc::Mode::kRecb)})
    ->Args({static_cast<int>(enc::Mode::kRpc)});

void BM_TransformSingleCharInsert(benchmark::State& state) {
  const enc::Mode mode = static_cast<enc::Mode>(state.range(0));
  Xoshiro256 rng(3);
  const std::string doc = workload::random_string(rng, 10'000);
  auto scheme = bench_scheme(mode, 8, 10);
  scheme->initialize(doc);
  std::size_t pos = 0;
  for (auto _ : state) {
    delta::Delta d;
    d.push(delta::Op::retain(pos));
    d.push(delta::Op::erase(1));
    d.push(delta::Op::insert("x"));
    benchmark::DoNotOptimize(scheme->transform_delta(d));
    pos = (pos + 997) % 9'000;
  }
}
BENCHMARK(BM_TransformSingleCharInsert)
    ->Args({static_cast<int>(enc::Mode::kRecb)})
    ->Args({static_cast<int>(enc::Mode::kRpc)});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig4();
  return 0;
}
