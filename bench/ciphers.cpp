// Primitive throughput: AES-128, the 32-byte wide-block cipher, SHA-256,
// HMAC and the CTR-DRBG. Context for every other number in the harness —
// and the measurement behind the "native vs 2009-JavaScript" scaling
// argument in EXPERIMENTS.md (the paper's SJCL-based prototype encrypted
// at ~10 kB/s).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "privedit/crypto/aes.hpp"
#include "privedit/crypto/aes_engine.hpp"
#include "privedit/crypto/aes_fast.hpp"
#include "privedit/crypto/aes_ni.hpp"
#include "privedit/crypto/hmac.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/crypto/wide_block.hpp"
#include "privedit/util/error.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

void BM_Aes128EncryptBlock(benchmark::State& state) {
  crypto::Aes128 aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128EncryptBlock);

void BM_Aes128DecryptBlock(benchmark::State& state) {
  crypto::Aes128 aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.decrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128DecryptBlock);

void BM_Aes128KeySchedule(benchmark::State& state) {
  Bytes key(16, 0x33);
  for (auto _ : state) {
    crypto::Aes128 aes(key);
    benchmark::DoNotOptimize(&aes);
  }
}
BENCHMARK(BM_Aes128KeySchedule);

void BM_Aes128FastEncryptBlock(benchmark::State& state) {
  crypto::Aes128Fast aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128FastEncryptBlock);

void BM_Aes128FastDecryptBlock(benchmark::State& state) {
  crypto::Aes128Fast aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.decrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128FastDecryptBlock);

#if PRIVEDIT_HAVE_AESNI
void BM_Aes128NiEncryptBlock(benchmark::State& state) {
  if (!crypto::aesni_cpu_supported()) {
    state.SkipWithError("CPU lacks AES-NI");
    return;
  }
  crypto::Aes128Ni aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128NiEncryptBlock);

void BM_Aes128NiDecryptBlock(benchmark::State& state) {
  if (!crypto::aesni_cpu_supported()) {
    state.SkipWithError("CPU lacks AES-NI");
    return;
  }
  crypto::Aes128Ni aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.decrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128NiDecryptBlock);
#endif  // PRIVEDIT_HAVE_AESNI

// Batch throughput per backend. Independent blocks let AES-NI pipeline
// 8-wide, so the batch numbers — not the serial in-place ones above — are
// what the scheme hot paths actually see. The in-place single-block benches
// keep a loop-carried dependency by design (they measure latency); these
// measure throughput and need the explicit sink to be DCE-proof.
void BM_AesBackendBatchEncrypt(benchmark::State& state) {
  const auto backend = static_cast<crypto::AesBackend>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::unique_ptr<crypto::Aes128Engine> aes;
  try {
    aes = std::make_unique<crypto::Aes128Engine>(Bytes(16, 0x11), backend);
  } catch (const CryptoError&) {
    state.SkipWithError("backend unavailable on this CPU");
    return;
  }
  Bytes in(16 * n, 0x22), out(16 * n);
  for (auto _ : state) {
    aes->encrypt_blocks(in, out, n);
    sink_buffer(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(16 * n));
  state.SetLabel(std::string(crypto::aes_backend_name(aes->backend())));
}
BENCHMARK(BM_AesBackendBatchEncrypt)
    ->Args({static_cast<int>(crypto::AesBackend::kFast), 64})
    ->Args({static_cast<int>(crypto::AesBackend::kAesNi), 1})
    ->Args({static_cast<int>(crypto::AesBackend::kAesNi), 8})
    ->Args({static_cast<int>(crypto::AesBackend::kAesNi), 64})
    ->Args({static_cast<int>(crypto::AesBackend::kAesNi), 256});

void BM_AesEngineDispatchedEncrypt(benchmark::State& state) {
  crypto::Aes128Engine aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  for (auto _ : state) {
    aes.encrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
  state.SetLabel(std::string(crypto::aes_backend_name(aes.backend())));
}
BENCHMARK(BM_AesEngineDispatchedEncrypt);

void BM_WideBlockEncryptBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  crypto::WideBlock wide(Bytes(16, 0x44));
  Bytes in(32 * n, 0x55), out(32 * n);
  for (auto _ : state) {
    wide.encrypt_blocks(in, out, n);
    sink_buffer(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(32 * n));
}
BENCHMARK(BM_WideBlockEncryptBatch)->Arg(1)->Arg(8)->Arg(64);

void BM_WideBlockEncrypt(benchmark::State& state) {
  crypto::WideBlock wide(Bytes(16, 0x44));
  Bytes block(32, 0x55);
  for (auto _ : state) {
    wide.encrypt_block(block, block);
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_WideBlockEncrypt);

void BM_Sha256(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Bytes data(n, 0x66);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x77);
  Bytes data(1024, 0x88);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_HmacSha256);

void BM_Pbkdf2_10k(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::pbkdf2_hmac_sha256(
        to_bytes("password"), Bytes(16, 0x99), 10'000, 32));
  }
}
BENCHMARK(BM_Pbkdf2_10k);

void BM_CtrDrbgFill(benchmark::State& state) {
  auto drbg = crypto::CtrDrbg::from_seed(1);
  Bytes buf(4096);
  for (auto _ : state) {
    drbg->fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_CtrDrbgFill);

void print_js_scaling() {
  // Measure bulk AES throughput and relate it to the paper's 9.1-11.8 kB/s.
  crypto::Aes128 aes(Bytes(16, 0x11));
  Bytes block(16, 0x22);
  int iters = 400'000;
  const double secs = time_seconds([&] {
    for (int i = 0; i < iters; ++i) aes.encrypt_block(block, block);
    sink_buffer(block.data());  // the loop's output is otherwise dead
  });
  const double mbps = 16.0 * iters / secs / 1e6;
  print_title("Native-vs-2009-JavaScript scaling context");
  std::printf(
      "Software AES-128 here: %.1f MB/s. The paper's SJCL-in-Firefox-3\n"
      "prototype achieved 9.1-11.8 kB/s end to end — a factor of ~%.0fx.\n"
      "EXPERIMENTS.md uses this to relate native macro numbers to Fig 5/8.\n",
      mbps, mbps * 1e6 / 10'500.0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_js_scaling();
  return 0;
}
