// Fig 6 — impact of block size on multi-character incremental encryption
// (§VII-D). Fixed 10 000-character documents, rECB, block size 1..8:
//   (a) whole-document encryption time
//   (b) incremental-update time (random insert/delete edits)
// Paper shape: cost decreases as block size grows for all operation
// categories; at b=1 the data-structure overhead dominates, and b >= 7
// compensates it.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/workload/corpus.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

constexpr std::size_t kDocChars = 10'000;

double whole_doc_encrypt_us_per_char(std::size_t b, int reps) {
  Xoshiro256 rng(11);
  const std::string doc = workload::random_string(rng, kDocChars);
  std::vector<double> xs;
  for (int i = 0; i < reps; ++i) {
    auto scheme = bench_scheme(enc::Mode::kRecb, b, 100 + static_cast<std::uint64_t>(i));
    xs.push_back(time_seconds([&] { scheme->initialize(doc); }) * 1e6 /
                 kDocChars);
  }
  return stats_of(xs).mean;
}

struct IncCosts {
  double insert_us;
  double delete_us;
  double replace_us;
};

IncCosts incremental_update_us(std::size_t b, int ops) {
  Xoshiro256 rng(12);
  const std::string doc = workload::random_string(rng, kDocChars);
  auto scheme = bench_scheme(enc::Mode::kRecb, b, 200 + b);
  scheme->initialize(doc);
  std::size_t len = doc.size();

  std::vector<double> ins, del, rep;
  for (int i = 0; i < ops; ++i) {
    // insert 1..8 chars at a random position
    {
      const std::size_t pos = rng.below(len + 1);
      const std::string text =
          workload::random_string(rng, 1 + rng.below(8));
      delta::Delta d;
      if (pos > 0) d.push(delta::Op::retain(pos));
      d.push(delta::Op::insert(text));
      ins.push_back(time_seconds([&] { scheme->transform_delta(d); }) * 1e6);
      len += text.size();
    }
    // delete 1..8 chars
    {
      const std::size_t count = 1 + rng.below(std::min<std::size_t>(8, len - 1));
      const std::size_t pos = rng.below(len - count + 1);
      delta::Delta d;
      if (pos > 0) d.push(delta::Op::retain(pos));
      d.push(delta::Op::erase(count));
      del.push_back(time_seconds([&] { scheme->transform_delta(d); }) * 1e6);
      len -= count;
    }
    // replace 1..8 chars
    {
      const std::size_t count = 1 + rng.below(std::min<std::size_t>(8, len));
      const std::size_t pos = rng.below(len - count + 1);
      const std::string text = workload::random_string(rng, count);
      delta::Delta d;
      if (pos > 0) d.push(delta::Op::retain(pos));
      d.push(delta::Op::erase(count));
      d.push(delta::Op::insert(text));
      rep.push_back(time_seconds([&] { scheme->transform_delta(d); }) * 1e6);
    }
  }
  return IncCosts{stats_of(ins).mean, stats_of(del).mean, stats_of(rep).mean};
}

void print_fig6() {
  print_title(
      "Fig 6a — whole-document rECB encryption vs block size (10000 chars)");
  std::printf("%-12s %20s %22s\n", "block size", "us per char",
              "doc encrypt (ms)");
  print_rule();
  for (std::size_t b = 1; b <= 8; ++b) {
    const double us = whole_doc_encrypt_us_per_char(b, 5);
    std::printf("%-12zu %20.4f %22.3f\n", b, us, us * kDocChars / 1000.0);
  }
  std::printf("Shape check (paper): cost decreases as block size grows.\n");

  print_title(
      "Fig 6b — incremental rECB update cost vs block size (10000 chars)");
  std::printf("%-12s %16s %16s %16s\n", "block size", "insert (us)",
              "delete (us)", "replace (us)");
  print_rule();
  for (std::size_t b = 1; b <= 8; ++b) {
    const IncCosts c = incremental_update_us(b, 150);
    std::printf("%-12zu %16.2f %16.2f %16.2f\n", b, c.insert_us, c.delete_us,
                c.replace_us);
  }
  std::printf(
      "Shape check (paper): per-update cost is roughly flat-to-decreasing\n"
      "in block size (fewer, larger blocks per touched region); noise comes\n"
      "from the probabilistic skip list and edit positions.\n");
}

void BM_WholeDocEncrypt(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(13);
  const std::string doc = workload::random_string(rng, kDocChars);
  auto scheme = bench_scheme(enc::Mode::kRecb, b, 300 + b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme->initialize(doc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDocChars));
}
BENCHMARK(BM_WholeDocEncrypt)->DenseRange(1, 8);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig6();
  return 0;
}
