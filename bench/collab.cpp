// Collaboration bench (extension beyond the paper): cost of the OT rebase
// path. Measures mediated save latency without contention vs with a
// concurrent writer forcing a 409 + rebase on every save, and the
// components of the rebase (decrypt server state, diff, transform,
// re-encrypt, resend).

#include <benchmark/benchmark.h>

#include "macro_common.hpp"
#include "privedit/workload/corpus.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

struct CollabBenchStack {
  explicit CollabBenchStack(std::uint64_t seed) {
    server.set_strict_revisions(true);
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(seed));
  }
  extension::MediatorConfig config(std::uint64_t seed) {
    extension::MediatorConfig c = macro_config(enc::Mode::kRpc, 8);
    c.collaborative = true;
    c.rng_factory = extension::seeded_rng_factory(seed);
    return c;
  }
  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
};

void print_contention_table() {
  print_title("Collaboration — mediated save cost vs contention "
              "(rECB-over-RPC b=8, 10000-char doc, wall time)");
  std::printf("%-34s %16s %14s\n", "scenario", "us per save", "rebases");
  print_rule();

  for (const bool contended : {false, true}) {
    CollabBenchStack stack(81);
    extension::GDocsMediator alice_ext(stack.transport.get(),
                                       stack.config(82), &stack.clock);
    extension::GDocsMediator bob_ext(stack.transport.get(), stack.config(83),
                                     &stack.clock);
    client::GDocsClient alice(&alice_ext, "doc");
    alice.create();
    Xoshiro256 rng(84);
    alice.insert(0, workload::random_document(rng, 10'000));
    alice.save();
    client::GDocsClient bob(&bob_ext, "doc");
    bob.open();

    std::vector<double> times;
    for (int i = 0; i < 40; ++i) {
      if (contended) {
        // Alice slips an edit in before every one of bob's saves.
        alice.insert(rng.below(alice.text().size() + 1), "a");
        alice.save();
      }
      bob.insert(rng.below(bob.text().size() + 1), "b");
      times.push_back(time_seconds([&] { bob.save(); }) * 1e6);
      if (contended) {
        alice.open();  // re-sync alice for the next round
      }
    }
    std::printf("%-34s %16.1f %14zu\n",
                contended ? "every save conflicts (rebase)" : "no contention",
                stats_of(times).mean, bob_ext.counters().rebases);
  }
  std::printf(
      "The rebase pays one full decrypt of the authoritative document, one\n"
      "Myers diff, one OT transform, and an incremental re-encrypt of the\n"
      "touched blocks — all client-side; the server only rejects stale\n"
      "saves and stores ciphertext.\n");
}

void BM_SaveUncontended(benchmark::State& state) {
  CollabBenchStack stack(85);
  extension::GDocsMediator ext(stack.transport.get(), stack.config(86),
                               &stack.clock);
  client::GDocsClient writer(&ext, "doc");
  writer.create();
  Xoshiro256 rng(87);
  writer.insert(0, workload::random_document(rng, 10'000));
  writer.save();
  std::size_t i = 0;
  for (auto _ : state) {
    writer.insert((i * 991) % writer.text().size(), "x");
    writer.save();
    ++i;
  }
}
BENCHMARK(BM_SaveUncontended);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_contention_table();
  return 0;
}
