// CoClo baseline comparison (§I, Prior Work).
//
// The paper's claim against CoClo [12]: CoClo "requires reencrypting and
// transmitting the entire document for every update", whereas incremental
// encryption touches only the edited blocks. This bench regenerates the
// comparison: per-update crypto time and per-update bytes-on-the-wire as a
// function of document size, for incremental rECB (b=8) vs CoClo.
//
// Shape to reproduce: CoClo's per-update cost grows linearly with document
// size; the incremental scheme's cost is flat (O(log n) structure + O(1)
// blocks), so the advantage factor grows without bound — at 10 000 chars
// it should already be two to three orders of magnitude.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/workload/corpus.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

struct UpdateCost {
  double us_per_update;
  double wire_chars_per_update;  // cdelta wire size
};

UpdateCost measure(enc::Mode mode, std::size_t doc_chars, int updates) {
  Xoshiro256 rng(31);
  auto scheme = bench_scheme(mode, 8, 600 + doc_chars);
  scheme->initialize(workload::random_string(rng, doc_chars));

  std::vector<double> times;
  double wire = 0.0;
  for (int i = 0; i < updates; ++i) {
    const std::size_t pos = rng.below(doc_chars);
    delta::Delta d;
    if (pos > 0) d.push(delta::Op::retain(pos));
    d.push(delta::Op::erase(1));
    d.push(delta::Op::insert("y"));
    delta::Delta cdelta;
    times.push_back(
        time_seconds([&] { cdelta = scheme->transform_delta(d); }) * 1e6);
    wire += static_cast<double>(cdelta.to_wire().size());
  }
  return UpdateCost{stats_of(times).mean,
                    wire / static_cast<double>(updates)};
}

void print_table() {
  print_title("CoClo baseline — per-update cost, incremental rECB vs "
              "whole-document re-encryption");
  std::printf("%-12s %16s %16s %10s %16s %16s\n", "doc chars", "incr (us)",
              "CoClo (us)", "speedup", "incr wire", "CoClo wire");
  print_rule();
  for (std::size_t n : {500u, 1'000u, 2'000u, 5'000u, 10'000u, 20'000u,
                        50'000u}) {
    const UpdateCost incr = measure(enc::Mode::kRecb, n, 60);
    const UpdateCost coclo = measure(enc::Mode::kCoClo, n, 20);
    std::printf("%-12zu %16.2f %16.2f %9.0fx %16.0f %16.0f\n", n,
                incr.us_per_update, coclo.us_per_update,
                coclo.us_per_update / incr.us_per_update,
                incr.wire_chars_per_update, coclo.wire_chars_per_update);
  }
  std::printf(
      "Shape check (paper): CoClo grows linearly in document size; the\n"
      "incremental scheme stays flat, so both the CPU and the bandwidth\n"
      "advantage grow with the document.\n");
}

void BM_SingleUpdate(benchmark::State& state) {
  const enc::Mode mode = static_cast<enc::Mode>(state.range(0));
  const auto chars = static_cast<std::size_t>(state.range(1));
  Xoshiro256 rng(32);
  auto scheme = bench_scheme(mode, 8, 700);
  scheme->initialize(workload::random_string(rng, chars));
  std::size_t i = 0;
  for (auto _ : state) {
    delta::Delta d;
    d.push(delta::Op::retain((i * 997) % chars));
    d.push(delta::Op::erase(1));
    d.push(delta::Op::insert("z"));
    benchmark::DoNotOptimize(scheme->transform_delta(d));
    ++i;
  }
}
BENCHMARK(BM_SingleUpdate)
    ->Args({static_cast<int>(enc::Mode::kRecb), 10'000})
    ->Args({static_cast<int>(enc::Mode::kCoClo), 10'000});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
