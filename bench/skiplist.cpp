// IndexedSkipList vs flat string baseline (§VII-D).
//
// The paper observes that its JavaScript SkipIndexList "introduces
// appreciable overhead for the editing operations (compared to those
// offered by the built-in JavaScript Array and String) ... this cost is
// well compensated by setting the block size to 7 or above". This bench
// regenerates the comparison natively: random index edits on an
// IndexedSkipList of blocks vs std::string::insert/erase, across document
// sizes — the flat structure is O(n) per edit, the skip list O(log n), so
// the crossover moves in the skip list's favour as documents grow.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "privedit/ds/indexed_skip_list.hpp"
#include "privedit/workload/corpus.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

void BM_SkipListInsertErase(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  ds::IndexedSkipList<std::string> list(41);
  for (std::size_t i = 0; i < blocks; ++i) {
    list.insert(i, "12345678", 8);
  }
  Xoshiro256 rng(42);
  for (auto _ : state) {
    const std::size_t idx = rng.below(list.size());
    list.insert(idx, "abcdefgh", 8);
    list.erase(idx);
  }
}
BENCHMARK(BM_SkipListInsertErase)->Arg(64)->Arg(1'250)->Arg(12'500)->Arg(125'000);

void BM_StringInsertErase(benchmark::State& state) {
  const auto chars = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(43);
  std::string doc = workload::random_string(rng, chars);
  for (auto _ : state) {
    const std::size_t pos = rng.below(doc.size());
    doc.insert(pos, "abcdefgh");
    doc.erase(pos, 8);
  }
}
BENCHMARK(BM_StringInsertErase)->Arg(512)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SkipListFind(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  ds::IndexedSkipList<std::string> list(44);
  for (std::size_t i = 0; i < blocks; ++i) {
    list.insert(i, "12345678", 8);
  }
  Xoshiro256 rng(45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.find(rng.below(list.total_weight())));
  }
}
BENCHMARK(BM_SkipListFind)->Arg(1'250)->Arg(125'000);

void print_crossover() {
  print_title("IndexedSkipList vs flat string — per-edit cost by size");
  std::printf("%-14s %22s %22s\n", "doc chars", "skiplist edit (us)",
              "string edit (us)");
  print_rule();
  Xoshiro256 rng(46);
  for (std::size_t chars :
       {1'000u, 10'000u, 100'000u, 1'000'000u}) {
    // Skip list of 8-char blocks.
    ds::IndexedSkipList<std::string> list(47);
    for (std::size_t i = 0; i < chars / 8; ++i) {
      list.insert(i, "12345678", 8);
    }
    std::vector<double> sl, st;
    for (int i = 0; i < 2'000; ++i) {
      const std::size_t idx = rng.below(list.size());
      sl.push_back(time_seconds([&] {
                     list.insert(idx, "abcdefgh", 8);
                     list.erase(idx);
                   }) *
                   1e6);
    }
    std::string doc = workload::random_string(rng, chars);
    for (int i = 0; i < 2'000; ++i) {
      const std::size_t pos = rng.below(doc.size());
      st.push_back(time_seconds([&] {
                     doc.insert(pos, "abcdefgh");
                     doc.erase(pos, 8);
                   }) *
                   1e6);
    }
    std::printf("%-14zu %22.3f %22.3f\n", chars, stats_of(sl).mean,
                stats_of(st).mean);
  }
  std::printf(
      "Shape check (paper): the skip list carries constant overhead that a\n"
      "flat buffer beats on small documents, but its O(log n) edits win as\n"
      "documents grow (the flat buffer is O(n) per edit).\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_crossover();
  return 0;
}
