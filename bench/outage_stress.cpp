// Outage stress bench: editor availability and save latency while the
// network suffers a scripted blackout covering 30% of a 30-second
// simulated session (three 3 s windows on the SimClock).
//
// Three scenarios over the same edit stream shape:
//
//   control           — no outage; offline mode armed but never triggered.
//   blackout30        — 30% blackout, offline mode OFF: every save inside
//                       a window surfaces as a transport error to the
//                       editor (the pre-PR-5 behaviour).
//   blackout30+offline — 30% blackout with the offline queue + circuit
//                       breaker: saves are absorbed locally, the breaker
//                       caps wire traffic to one probe per cool-down, and
//                       the composed update is replayed after heal.
//
// Availability = accepted saves / attempted saves (an offline ack counts:
// the editor got its acknowledgement and kept typing). Latency is charged
// on the SimClock — the same clock the outage schedule runs on — and is
// recorded in the log-bucketed LatencyHistogram the replication health
// scores use, so the percentiles here are directly comparable with the
// PR 4 per-replica baselines. After heal, each scenario drains the queue
// and a fresh reader verifies the server converged to the editor's mirror
// (zero loss, zero duplication) — a scenario that fails verification
// fails the bench.
//
// Output: one JSON object per scenario on stdout plus the combined report
// written to BENCH_pr5.json (override with --out). --quick shrinks the
// horizon for CI smoke runs.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/net/fault.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/util/histogram.hpp"
#include "privedit/util/random.hpp"

namespace privedit {
namespace {

constexpr std::uint64_t kOpIntervalUs = 20'000;   // editor types every 20 ms
constexpr std::uint64_t kCooldownUs = 500'000;    // breaker probe cadence
constexpr std::size_t kMaxDocChars = 4'000;

/// A LAN-ish latency model (the paper's WAN defaults would dwarf the
/// outage windows): saves cost single-digit milliseconds, so the 30 s
/// horizon holds on the order of a thousand edits.
net::LatencyModel lan_model() {
  net::LatencyModel m;
  m.base_us = 4'000;
  m.jitter_us = 2'000;
  m.bytes_per_ms_up = 5'000;
  m.bytes_per_ms_down = 20'000;
  m.server_us_per_kb = 20;
  return m;
}

struct ScenarioResult {
  std::string name;
  std::size_t attempted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;  // editor saw an error (transport or 503)
  LatencyHistogram save_latency;
  extension::GDocsMediator::Counters mediator;
  net::CircuitBreaker::Counters breaker;
  net::FaultyChannel::Counters wire;
  bool converged = false;
  std::size_t final_chars = 0;
  double wall_outage_s = 0.0;
  double horizon_s = 0.0;
};

extension::MediatorConfig mediator_config(bool offline, std::uint64_t seed) {
  extension::MediatorConfig c;
  c.password = "bench-pw";
  c.scheme.mode = enc::Mode::kRpc;
  c.scheme.kdf_iterations = 10;
  c.rng_factory = extension::seeded_rng_factory(seed);
  c.offline.enabled = offline;
  c.offline.max_queued_edits = 4'096;  // the 9 s blackout queues ~450 edits
  c.offline.breaker.cooldown_us = kCooldownUs;
  return c;
}

net::OutageSchedule blackout30(std::uint64_t horizon_us) {
  // Three equal blackout windows covering 30% of the horizon, spread so
  // the breaker re-trips and the queue flushes repeatedly.
  net::OutageSchedule schedule;
  const std::uint64_t w = horizon_us / 10;  // 3 windows x 10% each
  for (std::uint64_t start : {horizon_us / 6, horizon_us / 2,
                              (horizon_us * 5) / 6 - w}) {
    schedule.windows.push_back(
        {start, start + w, net::OutageKind::kBlackout, 1.0});
  }
  return schedule;
}

ScenarioResult run_scenario(const std::string& name, bool offline,
                            bool outage, std::uint64_t horizon_us) {
  ScenarioResult result;
  result.name = name;
  result.horizon_s = static_cast<double>(horizon_us) / 1e6;

  net::SimClock clock;
  cloud::GDocsServer server;
  // OCC mode: the offline flush's revision CAS needs stale deltas rejected
  // with a 409, not merged — same setting the sim's offline phases use.
  server.set_strict_revisions(true);
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, lan_model(), crypto::CtrDrbg::from_seed(21));
  net::FaultyChannel faulty(&transport, net::FaultSpec{},
                            std::make_unique<Xoshiro256>(23), &clock);
  if (outage) {
    const auto schedule = blackout30(horizon_us);
    for (const auto& w : schedule.windows) {
      result.wall_outage_s +=
          static_cast<double>(w.end_us - w.start_us) / 1e6;
    }
    faulty.set_outages(schedule);
  }
  extension::GDocsMediator mediator(&faulty, mediator_config(offline, 31),
                                    &clock);
  client::GDocsClient editor(&mediator, "bench-doc");
  editor.create();
  editor.insert(0, std::string(512, 'a'));
  editor.save();  // seed save: full container, outside any window

  Xoshiro256 rng(41);
  while (clock.now_us() < horizon_us) {
    // One small edit per tick, skewed toward inserts; erase chunks once
    // the document hits the cap so growth stays bounded.
    const std::size_t len = editor.text().size();
    if (len > kMaxDocChars) {
      editor.erase(rng.below(len / 2), len / 4);
    } else if (rng.below(4) == 0 && len > 64) {
      editor.erase(rng.below(len - 16), 1 + rng.below(8));
    } else {
      editor.insert(rng.below(len + 1), "word" + std::to_string(rng.below(97)));
    }
    ++result.attempted;
    const std::uint64_t t0 = clock.now_us();
    try {
      editor.save();
      ++result.accepted;
      result.save_latency.record(clock.now_us() - t0);
    } catch (const Error&) {
      // Transport error or explicit 503. Pre-PR-5 there is no offline
      // queue: a failed send leaves the mediator's mirror ahead of the
      // server, so the only way forward is to re-open — which discards
      // the unsaved edit. That data loss is exactly what the offline
      // queue removes.
      ++result.rejected;
      if (!offline) {
        try {
          editor.open();
        } catch (const net::TransportError&) {
          // Still dark; the next tick tries again.
        }
      }
    }
    clock.advance_us(kOpIntervalUs);
  }

  // Heal: the horizon is past every window. Drain the offline queue (one
  // probe per cool-down), then verify the server converged to the mirror.
  for (int i = 0; i < 64 && mediator.offline_active("bench-doc"); ++i) {
    mediator.try_flush("bench-doc");
    clock.advance_us(kCooldownUs);
  }
  if (!offline) {
    editor.open();  // final resync; whatever was never saved is gone
  }
  result.final_chars = editor.text().size();

  extension::GDocsMediator reader_mediator(
      &transport, mediator_config(/*offline=*/false, 67), &clock);
  client::GDocsClient reader(&reader_mediator, "bench-doc");
  reader.open();
  result.converged = reader.text() == editor.text();

  result.mediator = mediator.counters();
  if (mediator.breaker() != nullptr) result.breaker = mediator.breaker()->counters();
  result.wire = faulty.counters();
  return result;
}

std::string scenario_json(const ScenarioResult& r) {
  char buf[1024];
  std::string json = "{";
  std::snprintf(buf, sizeof buf,
                "\"scenario\":\"%s\",\"horizon_s\":%.1f,\"outage_s\":%.1f,"
                "\"attempted\":%zu,\"accepted\":%zu,\"rejected\":%zu,"
                "\"availability\":%.4f,",
                r.name.c_str(), r.horizon_s, r.wall_outage_s, r.attempted,
                r.accepted, r.rejected,
                r.attempted == 0
                    ? 0.0
                    : static_cast<double>(r.accepted) /
                          static_cast<double>(r.attempted));
  json += buf;
  json += "\"save_latency\":" + r.save_latency.to_json() + ",";
  std::snprintf(
      buf, sizeof buf,
      "\"offline\":{\"entered\":%zu,\"acks\":%zu,\"flushes\":%zu,"
      "\"flush_edits\":%zu,\"rebases\":%zu,\"dedupes\":%zu,"
      "\"backpressure\":%zu},"
      "\"breaker\":{\"trips\":%zu,\"probes\":%zu,\"rejections\":%zu,"
      "\"short_circuits\":%zu},"
      "\"wire\":{\"delivered\":%zu,\"outage_faults\":%zu},"
      "\"converged\":%s,\"final_chars\":%zu}",
      r.mediator.offline_entered, r.mediator.offline_acks,
      r.mediator.offline_flushes, r.mediator.offline_flush_edits,
      r.mediator.offline_rebases, r.mediator.offline_dedupes,
      r.mediator.offline_backpressure, r.breaker.trips, r.breaker.probes,
      r.breaker.rejections, r.mediator.breaker_short_circuits,
      r.wire.delivered, r.wire.outage_faults,
      r.converged ? "true" : "false", r.final_chars);
  json += buf;
  return json;
}

}  // namespace

int run(bool quick, const std::string& out_path) {
  const std::uint64_t horizon_us = quick ? 6'000'000 : 30'000'000;
  std::printf("# outage_stress: horizon=%.0fs blackout=30%% interval=%.0fms\n",
              static_cast<double>(horizon_us) / 1e6,
              static_cast<double>(kOpIntervalUs) / 1e3);

  std::vector<ScenarioResult> results;
  results.push_back(
      run_scenario("control", /*offline=*/true, /*outage=*/false, horizon_us));
  results.push_back(run_scenario("blackout30", /*offline=*/false,
                                 /*outage=*/true, horizon_us));
  results.push_back(run_scenario("blackout30+offline", /*offline=*/true,
                                 /*outage=*/true, horizon_us));

  std::string report = "[";
  bool failed = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string line = scenario_json(results[i]);
    std::printf("%s\n", line.c_str());
    report += (i ? ",\n " : "") + line;
    if (!results[i].converged) {
      std::fprintf(stderr, "FAIL %s: reader does not match editor mirror\n",
                   results[i].name.c_str());
      failed = true;
    }
  }
  report += "]\n";

  const ScenarioResult& off = results[2];
  if (off.accepted != off.attempted) {
    std::fprintf(stderr,
                 "FAIL blackout30+offline: %zu of %zu saves rejected — "
                 "offline mode must absorb every edit\n",
                 off.attempted - off.accepted, off.attempted);
    failed = true;
  }

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    failed = true;
  }
  std::printf(
      "# summary: control p99=%lluus avail=%.3f | blackout30 p99=%lluus "
      "avail=%.3f | +offline p99=%lluus avail=%.3f\n",
      static_cast<unsigned long long>(results[0].save_latency.percentile(0.99)),
      static_cast<double>(results[0].accepted) /
          static_cast<double>(results[0].attempted),
      static_cast<unsigned long long>(results[1].save_latency.percentile(0.99)),
      static_cast<double>(results[1].accepted) /
          static_cast<double>(results[1].attempted),
      static_cast<unsigned long long>(results[2].save_latency.percentile(0.99)),
      static_cast<double>(results[2].accepted) /
          static_cast<double>(results[2].attempted));
  return failed ? 1 : 0;
}

}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr5.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  return privedit::run(quick, out);
}
