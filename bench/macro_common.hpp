#pragma once
// Macro-benchmark harness (Fig 5 / Fig 8, §VII-C).
//
// Reproduces the paper's Selenium procedure on the simulated stack: each
// test case is a whole-document save followed by a sentence-level edit
// (replace / insert / delete), executed once through the plain stack and
// once through the extension, measuring end-to-end save latency. The
// "initial load" row opens an existing document cold.
//
// Latency composition:
//   network+server — charged by the LoopbackTransport's LatencyModel on
//                    the simulated clock (ciphertext inflation makes the
//                    mediated messages larger, so this term already grows
//                    under encryption);
//   crypto         — two cost models:
//                    * native: measured wall time of the mediated call;
//                    * JS-era: work done × the paper's own Fig 4
//                      per-character costs (.091/.085/.110 ms), modelling
//                      the 2009 JavaScript engine the paper measured.
// Degradation = (T_ext − T_plain) / T_plain, reported as mean ± dev over
// trials, matching the paper's table format.

#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/workload/corpus.hpp"
#include "privedit/workload/edits.hpp"

namespace privedit::bench {

enum class MacroRow { kInitialLoad, kInserts, kDeletes, kMixed };

inline const char* macro_row_name(MacroRow row) {
  switch (row) {
    case MacroRow::kInitialLoad:
      return "initial load";
    case MacroRow::kInserts:
      return "inserts only";
    case MacroRow::kDeletes:
      return "deletes only";
    case MacroRow::kMixed:
      return "inserts & deletes";
  }
  return "?";
}

// JS-era per-character costs, straight from the paper's Fig 4 (seconds).
inline constexpr double kJsEncPerChar = 0.091e-3;
inline constexpr double kJsDecPerChar = 0.085e-3;
inline constexpr double kJsIncPerChar = 0.110e-3;

// Opening a document loads the whole editor application (several seconds
// in the 2009 Google Docs client); the paper's initial-load percentages
// are relative to this. Charged to both arms of the initial-load row.
inline constexpr double kAppLoadSeconds = 3.5;

// Fixed extension start-up on document open under the JS-era model:
// password dialog handling, PBKDF-style key setup and crypto library
// initialisation in a 2009 JavaScript engine.
inline constexpr double kJsExtInitSeconds = 0.8;

// Fig 6a: per-character whole-document crypto cost falls as the block size
// grows (one cipher call and one data-structure node per b characters).
// Scale the JS-era per-char costs accordingly.
inline double js_block_scale(std::size_t block_chars) {
  return 0.25 + 0.75 / static_cast<double>(block_chars);
}

struct MacroCell {
  Stats js_degradation;      // JS-era crypto cost model
  Stats native_degradation;  // measured native crypto cost
};

struct MacroStack {
  MacroStack(std::uint64_t net_seed, bool with_extension,
             const extension::MediatorConfig& config) {
    transport = std::make_unique<net::LoopbackTransport>(
        [this](const net::HttpRequest& r) { return server.handle(r); },
        &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(net_seed));
    if (with_extension) {
      mediator = std::make_unique<extension::GDocsMediator>(
          transport.get(), config, &clock);
      channel = mediator.get();
    } else {
      channel = transport.get();
    }
  }

  cloud::GDocsServer server;
  net::SimClock clock;
  std::unique_ptr<net::LoopbackTransport> transport;
  std::unique_ptr<extension::GDocsMediator> mediator;
  net::Channel* channel = nullptr;
};

inline extension::MediatorConfig macro_config(enc::Mode mode,
                                              std::size_t block_chars) {
  extension::MediatorConfig config;
  config.password = "macro-bench";
  config.scheme.mode = mode;
  config.scheme.block_chars = block_chars;
  config.scheme.kdf_iterations = 10;  // KDF cost is a one-time setup cost
  config.rng_factory = extension::seeded_rng_factory(12345);
  return config;
}

/// One macro cell: runs `trials` paired (plain vs extension) test cases.
inline MacroCell run_macro_cell(MacroRow row, std::size_t doc_chars,
                                enc::Mode mode, std::size_t block_chars,
                                int trials, std::uint64_t seed) {
  std::vector<double> js_deg, native_deg;

  for (int trial = 0; trial < trials; ++trial) {
    const std::uint64_t net_seed = seed + static_cast<std::uint64_t>(trial);
    Xoshiro256 doc_rng(seed * 77 + static_cast<std::uint64_t>(trial));
    const std::string base_doc = workload::random_document(doc_rng, doc_chars);

    // Same edit in both runs.
    Xoshiro256 edit_rng_a(seed * 131 + static_cast<std::uint64_t>(trial));
    Xoshiro256 edit_rng_b = edit_rng_a;  // identical streams

    auto run_one = [&](bool with_ext, Xoshiro256& edit_rng, double& js_crypto,
                       double& native_crypto) -> double {
      MacroStack stack(net_seed, with_ext, macro_config(mode, block_chars));
      client::GDocsClient writer(stack.channel, "doc");
      writer.create();
      writer.insert(0, base_doc);
      writer.save();  // setup; not measured

      js_crypto = 0.0;
      native_crypto = 0.0;
      double wall = 0.0;

      if (row == MacroRow::kInitialLoad) {
        // A second user opens the existing document cold.
        extension::GDocsMediator mediator2(stack.transport.get(),
                                           macro_config(mode, block_chars),
                                           &stack.clock);
        net::Channel* chan2 =
            with_ext ? static_cast<net::Channel*>(&mediator2)
                     : static_cast<net::Channel*>(stack.transport.get());
        const std::uint64_t open_net_before = stack.clock.now_us();
        client::GDocsClient reader(chan2, "doc");
        wall = time_seconds([&] { reader.open(); });
        if (with_ext) {
          js_crypto = kJsExtInitSeconds +
                      static_cast<double>(reader.text().size()) *
                          kJsDecPerChar * js_block_scale(block_chars);
        }
        const double net_s =
            static_cast<double>(stack.clock.now_us() - open_net_before) / 1e6;
        native_crypto = with_ext ? wall : 0.0;
        return net_s + kAppLoadSeconds;
      }

      // Edit rows: one sentence-level operation, then save.
      workload::SentenceEditor editor(writer.text(), &edit_rng);
      switch (row) {
        case MacroRow::kInserts:
          editor.step(workload::MacroOp::kInsertSentence);
          break;
        case MacroRow::kDeletes:
          editor.step(workload::MacroOp::kDeleteSentence);
          break;
        default:
          editor.step_mixed();
          break;
      }
      writer.replace(0, writer.text().size(), editor.document());

      const auto stats_before =
          with_ext ? stack.mediator->managed_stats("doc")
                   : std::optional<enc::SchemeStats>{};
      const std::uint64_t edit_net_before = stack.clock.now_us();
      wall = time_seconds([&] { writer.save(); });
      if (with_ext) {
        const auto stats_after = stack.mediator->managed_stats("doc");
        const double blocks =
            static_cast<double>(stats_after->blocks_reencrypted -
                                stats_before->blocks_reencrypted);
        js_crypto = blocks * static_cast<double>(block_chars) * kJsIncPerChar;
        native_crypto = wall;
      }
      return static_cast<double>(stack.clock.now_us() - edit_net_before) / 1e6;
    };

    double js_a = 0, nat_a = 0, js_b = 0, nat_b = 0;
    const double net_plain = run_one(false, edit_rng_a, js_a, nat_a);
    const double net_ext = run_one(true, edit_rng_b, js_b, nat_b);

    const double t_plain = net_plain;
    const double t_ext_js = net_ext + js_b;
    const double t_ext_native = net_ext + nat_b;
    if (t_plain > 0) {
      js_deg.push_back((t_ext_js - t_plain) / t_plain);
      native_deg.push_back((t_ext_native - t_plain) / t_plain);
    }
  }

  return MacroCell{stats_of(js_deg), stats_of(native_deg)};
}

inline void print_macro_table(const char* title, std::size_t doc_chars,
                              enc::Mode mode, std::size_t block_chars,
                              int trials, std::uint64_t seed,
                              const char* paper_col[4]) {
  std::printf("\n%s\n", title);
  std::printf("%-20s %12s %16s %12s %18s\n", "operation", "paper",
              "JS-era mean", "dev", "native mean");
  print_rule();
  const MacroRow rows[4] = {MacroRow::kInitialLoad, MacroRow::kInserts,
                            MacroRow::kDeletes, MacroRow::kMixed};
  for (int i = 0; i < 4; ++i) {
    const MacroCell cell = run_macro_cell(rows[i], doc_chars, mode,
                                          block_chars, trials,
                                          seed + static_cast<std::uint64_t>(i) * 1000);
    std::printf("%-20s %12s %15.1f%% %12.3f %17.2f%%\n",
                macro_row_name(rows[i]), paper_col[i],
                cell.js_degradation.mean * 100.0, cell.js_degradation.dev,
                cell.native_degradation.mean * 100.0);
  }
}

}  // namespace privedit::bench
