// Fork-consistency audit overhead bench (DESIGN.md §16): what the hash
// chain costs on the editing hot path.
//
//   save_audit — end to end through the mediator: 1-char-edit docContents
//                saves with audit off vs on, across document sizes.
//                Per save the audit layer adds a plaintext CRC, one HMAC
//                link, the base/head form fields and the server-side
//                sidecar append. Reports ms per save and the relative
//                overhead; FAILs unless the editor-scale (4 KB) document
//                stays under 10% added latency, and unless every save
//                actually committed a chain link (the cheap path must not
//                be cheap because it skipped the work).
//   open_audit — open + catch-up verification: replaying an n-link served
//                chain under K_audit. Reports ms per open against chain
//                length, i.e. the cost of the trust-but-verify read path.
//
// Output: one JSON line per measurement; the array lands in
// BENCH_pr10.json (override with --out). --quick shrinks sizes/repeats
// for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

#include "bench_common.hpp"

namespace privedit {
namespace {

constexpr const char* kPassword = "bench-pw";
constexpr const char* kTarget = "/Doc?docID=adoc";

class DirectChannel final : public net::Channel {
 public:
  explicit DirectChannel(cloud::GDocsServer* server) : server_(server) {}
  net::HttpResponse round_trip(const net::HttpRequest& request) override {
    return server_->handle(request);
  }

 private:
  cloud::GDocsServer* server_;
};

std::string make_body(std::size_t chars, std::uint64_t seed) {
  std::string body;
  body.reserve(chars + 64);
  Xoshiro256 rng(seed);
  while (body.size() < chars) {
    body += "the quick brown fox jumps over the lazy dog ";
    if (rng.below(7) == 0) body += '\n';
  }
  body.resize(chars);
  return body;
}

extension::MediatorConfig mediator_config(bool audit, std::uint64_t seed) {
  extension::MediatorConfig mc;
  mc.password = kPassword;
  mc.scheme.mode = enc::Mode::kRpc;
  mc.scheme.block_chars = 8;
  mc.scheme.kdf_iterations = 10;
  mc.rng_factory = extension::seeded_rng_factory(seed);
  mc.audit = audit;
  mc.client_id = "bench";
  return mc;
}

std::uint64_t parse_rev(const std::string& body) {
  const auto field = FormData::parse(body).get("rev");
  return field ? std::stoull(*field) : 0;
}

struct SaveCell {
  std::size_t doc_chars = 0;
  double plain_ms_per_save = 0;
  double audit_ms_per_save = 0;
  double overhead = 0;  // audit/plain - 1
  std::size_t links_committed = 0;
};

/// Drives `saves` 1-char-edit saves through a fresh mediator+server pair,
/// audit off vs on, and keeps the best of `rounds` timings per config so
/// scheduler noise does not masquerade as chain cost.
SaveCell run_save_cell(std::size_t doc_chars, std::size_t saves,
                       std::size_t rounds) {
  SaveCell cell;
  cell.doc_chars = doc_chars;
  for (const bool audit : {false, true}) {
    double best_s = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      cloud::GDocsServer server;
      DirectChannel channel(&server);
      extension::GDocsMediator mediator(
          &channel, mediator_config(audit, 7'000 + doc_chars + round));

      std::string text = make_body(doc_chars, 9'000 + doc_chars);
      FormData create;
      create.add("cmd", "create");
      std::uint64_t rev = parse_rev(
          mediator
              .round_trip(
                  net::HttpRequest::post_form(kTarget, create.encode()))
              .body);
      const auto save = [&](const std::string& contents) {
        FormData f;
        f.add("session", "1");
        f.add("rev", std::to_string(rev));
        f.add("docContents", contents);
        const net::HttpResponse resp = mediator.round_trip(
            net::HttpRequest::post_form(kTarget, f.encode()));
        if (!resp.ok()) {
          std::fprintf(stderr, "FAIL: save rejected: HTTP %d\n", resp.status);
          std::exit(1);
        }
        rev = parse_rev(resp.body);
      };
      save(text);  // base full save, outside the timed window

      Xoshiro256 rng(31 + doc_chars + round);
      const double seconds = bench::time_seconds([&] {
        for (std::size_t i = 0; i < saves; ++i) {
          const std::size_t at = rng.below(text.size());
          text[at] = text[at] == 'q' ? 'z' : 'q';
          save(text);
        }
      });
      best_s = (round == 0) ? seconds : std::min(best_s, seconds);
      if (audit && round + 1 == rounds) {
        cell.links_committed = mediator.counters().audit_links_committed;
      }
    }
    const double ms = best_s * 1e3 / static_cast<double>(saves);
    (audit ? cell.audit_ms_per_save : cell.plain_ms_per_save) = ms;
  }
  cell.overhead = cell.plain_ms_per_save > 0
                      ? cell.audit_ms_per_save / cell.plain_ms_per_save - 1.0
                      : 0;
  return cell;
}

struct OpenCell {
  std::size_t chain_links = 0;
  double open_ms = 0;
};

/// Builds a document whose served chain holds `links` entries, then times
/// a cold mediator verifying it at open.
OpenCell run_open_cell(std::size_t links, std::size_t repeats) {
  OpenCell cell;
  cell.chain_links = links;

  cloud::GDocsServer server;
  DirectChannel channel(&server);
  {
    extension::GDocsMediator writer(&channel, mediator_config(true, 41));
    FormData create;
    create.add("cmd", "create");
    std::uint64_t rev = parse_rev(
        writer
            .round_trip(net::HttpRequest::post_form(kTarget, create.encode()))
            .body);
    std::string text = make_body(2'048, 17);
    for (std::size_t i = 0; i + 1 < links; ++i) {
      text[i % text.size()] = text[i % text.size()] == 'q' ? 'z' : 'q';
      FormData f;
      f.add("session", "1");
      f.add("rev", std::to_string(rev));
      f.add("docContents", text);
      const net::HttpResponse resp =
          writer.round_trip(net::HttpRequest::post_form(kTarget, f.encode()));
      if (!resp.ok()) {
        std::fprintf(stderr, "FAIL: chain build save: HTTP %d\n", resp.status);
        std::exit(1);
      }
      rev = parse_rev(resp.body);
    }
  }

  double total_s = 0;
  FormData open;
  open.add("cmd", "open");
  for (std::size_t i = 0; i < repeats; ++i) {
    extension::GDocsMediator reader(&channel,
                                    mediator_config(true, 43 + i));
    total_s += bench::time_seconds([&] {
      const net::HttpResponse resp = reader.round_trip(
          net::HttpRequest::post_form(kTarget, open.encode()));
      if (!resp.ok()) {
        std::fprintf(stderr, "FAIL: audited open: HTTP %d\n", resp.status);
        std::exit(1);
      }
    });
  }
  cell.open_ms = total_s * 1e3 / static_cast<double>(repeats);
  return cell;
}

int run(bool quick, const std::string& out_path) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4'096}
            : std::vector<std::size_t>{1'024, 4'096, 16'384, 65'536};
  const std::size_t saves = quick ? 8 : 32;
  const std::size_t rounds = quick ? 2 : 5;
  const std::vector<std::size_t> chains =
      quick ? std::vector<std::size_t>{16}
            : std::vector<std::size_t>{4, 16, 64, 256};
  const std::size_t open_repeats = quick ? 3 : 10;

  std::string report = "[";
  bool failed = false;
  const auto emit = [&](const std::string& line) {
    std::printf("%s\n", line.c_str());
    report += (report.size() > 1 ? ",\n " : "") + line;
  };
  char buf[512];

  std::printf("# audit_overhead: sizes=%zu saves=%zu rounds=%zu\n",
              sizes.size(), saves, rounds);
  for (const std::size_t chars : sizes) {
    const SaveCell c = run_save_cell(chars, saves, rounds);
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"save_audit\",\"doc_chars\":%zu,"
                  "\"plain_ms_per_save\":%.3f,\"audit_ms_per_save\":%.3f,"
                  "\"overhead_pct\":%.1f,\"links_committed\":%zu}",
                  c.doc_chars, c.plain_ms_per_save, c.audit_ms_per_save,
                  c.overhead * 100.0, c.links_committed);
    emit(buf);
    if (c.links_committed < saves) {
      std::fprintf(stderr,
                   "FAIL: only %zu of %zu saves committed a chain link\n",
                   c.links_committed, saves);
      failed = true;
    }
    if (chars == 4'096 && c.overhead > 0.10) {
      std::fprintf(stderr,
                   "FAIL: audit adds %.1f%% at 4096 chars "
                   "(acceptance ceiling is 10%%)\n",
                   c.overhead * 100.0);
      failed = true;
    }
  }

  for (const std::size_t links : chains) {
    const OpenCell c = run_open_cell(links, open_repeats);
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"open_audit\",\"chain_links\":%zu,"
                  "\"open_ms\":%.3f}",
                  c.chain_links, c.open_ms);
    emit(buf);
  }

  report += "]\n";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr10.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  return privedit::run(quick, out);
}
