// Fig 7 — ciphertext blow-up reduction vs block size (§V-C / §VII-D).
//
// Paper values (Base32-era encoding, measured on their extension):
//   block size   1      2      3      4      5      6      7      8
//   blowup     21.00  10.71   7.35   6.09   4.83   4.41   3.78   3.75
//   reduction    0%    49%    65%    71%    77%    79%    82%    82%
//
// The paper notes "the actual reduction is less than the ideal reduction
// due to fragmentation". We report three series: the ideal layout blow-up
// (full blocks), the freshly-encrypted blow-up, and the blow-up after an
// edit session (fragmented), for both codecs.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "privedit/workload/corpus.hpp"
#include "privedit/workload/edits.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

constexpr std::size_t kDocChars = 10'000;

double fresh_blowup(std::size_t b, enc::Codec codec) {
  Xoshiro256 rng(21);
  const std::string doc = workload::random_string(rng, kDocChars);
  auto scheme = bench_scheme(enc::Mode::kRecb, b, 400 + b, codec);
  scheme->initialize(doc);
  return scheme->stats().blowup();
}

struct SessionBlowup {
  double blowup;
  double avg_fill;
};

SessionBlowup session_blowup(std::size_t b, enc::Codec codec, int edits) {
  Xoshiro256 rng(22);
  auto scheme = bench_scheme(enc::Mode::kRecb, b, 500 + b, codec);
  workload::SentenceEditor editor(workload::random_document(rng, kDocChars),
                                  &rng);
  scheme->initialize(editor.document());
  for (int i = 0; i < edits; ++i) {
    scheme->transform_delta(editor.step_mixed());
  }
  const enc::SchemeStats s = scheme->stats();
  return SessionBlowup{s.blowup(), s.average_fill(b)};
}

void print_fig7() {
  static const double kPaperBlowup[8] = {21.00, 10.71, 7.35, 6.09,
                                         4.83,  4.41,  3.78, 3.75};
  print_title("Fig 7 — ciphertext blow-up vs block size (rECB, 10000 chars)");
  std::printf("%-6s %10s %12s %12s %12s %10s %12s\n", "b", "paper",
              "ideal b32", "fresh b32", "session b32", "avg fill",
              "session b64");
  print_rule();
  double base_session = 0.0;
  std::vector<double> session_blowups;
  for (std::size_t b = 1; b <= 8; ++b) {
    // Ideal: every block holds exactly b chars; unit = 28 encoded chars.
    const double ideal = 28.0 / static_cast<double>(b);
    const double fresh = fresh_blowup(b, enc::Codec::kBase32);
    const SessionBlowup sess = session_blowup(b, enc::Codec::kBase32, 400);
    const SessionBlowup sess64 =
        session_blowup(b, enc::Codec::kBase64Url, 400);
    if (b == 1) base_session = sess.blowup;
    session_blowups.push_back(sess.blowup);
    std::printf("%-6zu %10.2f %12.2f %12.2f %12.2f %9.0f%% %12.2f\n", b,
                kPaperBlowup[b - 1], ideal, fresh, sess.blowup,
                sess.avg_fill * 100.0, sess64.blowup);
  }
  print_rule();
  std::printf("%-6s %10s %12s %12s\n", "b", "paper red.", "our red.",
              "(vs b=1, after session)");
  static const int kPaperReduction[8] = {0, 49, 65, 71, 77, 79, 82, 82};
  for (std::size_t b = 1; b <= 8; ++b) {
    const double red =
        (1.0 - session_blowups[b - 1] / base_session) * 100.0;
    std::printf("%-6zu %9d%% %11.0f%%\n", b, kPaperReduction[b - 1], red);
  }
  std::printf(
      "Shape check (paper): blow-up decreases monotonically with block\n"
      "size; the session (fragmented) blow-up exceeds the ideal, and the\n"
      "b=8 reduction lands near the paper's ~82%%.\n");
}

void BM_BlowupMeasurement(benchmark::State& state) {
  const auto b = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fresh_blowup(b, enc::Codec::kBase32));
  }
}
BENCHMARK(BM_BlowupMeasurement)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig7();
  return 0;
}
