// Ablation — the design choices DESIGN.md calls out:
//   (1) block split policy (greedy vs even) and merge-on-delete, measured
//       by fragmentation (average block fill) and resulting blow-up after
//       a churn edit session;
//   (2) text codec (Base32 per the paper's Fig 2 vs base64url) measured by
//       ciphertext blow-up;
//   (3) the cost of the §VI-B covert-channel countermeasures (re-diff and
//       padding) on the mediated save path.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "macro_common.hpp"
#include "privedit/enc/recb.hpp"
#include "privedit/workload/corpus.hpp"
#include "privedit/workload/edits.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

struct PolicyOutcome {
  double avg_fill;
  double blowup;
  std::size_t blocks;
};

PolicyOutcome run_policy(enc::BlockPolicy policy, int edits) {
  const auto keys = bench_keys();
  enc::RecbScheme scheme(bench_header(enc::Mode::kRecb, 8), keys,
                         crypto::CtrDrbg::from_seed(61), policy);
  Xoshiro256 rng(62);
  workload::SentenceEditor editor(workload::random_document(rng, 10'000),
                                  &rng);
  scheme.initialize(editor.document());
  for (int i = 0; i < edits; ++i) {
    // Churn that keeps the document size stable: alternating inserts and
    // deletes plus replaces. Deletions leave fragments for the merge
    // policy to fight.
    const auto op = (i % 3 == 0)   ? workload::MacroOp::kInsertSentence
                    : (i % 3 == 1) ? workload::MacroOp::kDeleteSentence
                                   : workload::MacroOp::kReplaceSentence;
    scheme.transform_delta(editor.step(op));
  }
  const enc::SchemeStats s = scheme.stats();
  return PolicyOutcome{s.average_fill(8), s.blowup(), s.block_count};
}

void print_policy_ablation() {
  print_title("Ablation 1 — block policy vs fragmentation "
              "(10000 chars, churn session)");
  std::printf("%-34s %12s %10s %10s\n", "policy", "avg fill", "blowup",
              "blocks");
  print_rule();

  enc::BlockPolicy greedy;
  const PolicyOutcome g = run_policy(greedy, 600);
  std::printf("%-34s %11.1f%% %10.2f %10zu\n", "greedy split (paper-like)",
              g.avg_fill * 100, g.blowup, g.blocks);

  enc::BlockPolicy even;
  even.split = enc::BlockPolicy::Split::kEven;
  const PolicyOutcome e = run_policy(even, 600);
  std::printf("%-34s %11.1f%% %10.2f %10zu\n", "even split", e.avg_fill * 100,
              e.blowup, e.blocks);

  enc::BlockPolicy merge;
  merge.merge_on_delete = true;
  merge.merge_threshold = 4;
  const PolicyOutcome m = run_policy(merge, 600);
  std::printf("%-34s %11.1f%% %10.2f %10zu\n", "greedy + merge-on-delete",
              m.avg_fill * 100, m.blowup, m.blocks);

  // Compaction: the maintenance pass that removes fragmentation entirely.
  enc::BlockPolicy plain_policy;
  const auto keys2 = bench_keys();
  enc::RecbScheme scheme(bench_header(enc::Mode::kRecb, 8), keys2,
                         crypto::CtrDrbg::from_seed(69), plain_policy);
  Xoshiro256 rng2(70);
  workload::SentenceEditor editor2(workload::random_document(rng2, 10'000),
                                   &rng2);
  scheme.initialize(editor2.document());
  for (int i = 0; i < 600; ++i) {
    const auto op = (i % 3 == 0)   ? workload::MacroOp::kInsertSentence
                    : (i % 3 == 1) ? workload::MacroOp::kDeleteSentence
                                   : workload::MacroOp::kReplaceSentence;
    scheme.transform_delta(editor2.step(op));
  }
  const enc::SchemeStats before = scheme.stats();
  std::vector<double> times;
  delta::Delta cdelta;
  times.push_back(time_seconds([&] { cdelta = scheme.compact(); }) * 1e3);
  const enc::SchemeStats after = scheme.stats();
  std::printf("%-34s %11.1f%% %10.2f %10zu\n", "after compact()",
              after.average_fill(8) * 100, after.blowup(), after.block_count);
  std::printf(
      "compact() took %.2f ms and shipped a %zu-char cdelta; fill %.1f%% ->\n"
      "%.1f%%. Fragmentation is why Fig 7's actual reduction trails the\n"
      "ideal; merge-on-delete buys a little back per edit, compaction buys\n"
      "all of it back in one document-sized maintenance write.\n",
      times[0], cdelta.to_wire().size(), before.average_fill(8) * 100,
      after.average_fill(8) * 100);
}

void print_codec_ablation() {
  print_title("Ablation 2 — codec choice vs blow-up (rECB, b=8, fresh doc)");
  std::printf("%-14s %14s %14s\n", "codec", "unit width", "blowup");
  print_rule();
  for (const auto codec : {enc::Codec::kBase32, enc::Codec::kBase64Url}) {
    auto scheme = bench_scheme(enc::Mode::kRecb, 8, 63, codec);
    Xoshiro256 rng(64);
    scheme->initialize(workload::random_string(rng, 10'000));
    std::printf("%-14s %14zu %14.2f\n",
                codec == enc::Codec::kBase32 ? "Base32" : "base64url",
                bench_header(enc::Mode::kRecb, 8, codec).unit_width(),
                scheme->stats().blowup());
  }
  std::printf("Base32 (the paper's choice, Fig 2) costs ~22%% more than\n"
              "base64url; both preserve fixed-width unit arithmetic.\n");
}

void print_mitigation_cost() {
  print_title("Ablation 3 — covert-channel countermeasure cost "
              "(per mediated save, wall time)");
  std::printf("%-34s %18s\n", "configuration", "us per save");
  print_rule();
  struct Case {
    const char* name;
    bool rediff;
    std::size_t pad;
  };
  const Case cases[] = {{"baseline", false, 0},
                        {"re-diff", true, 0},
                        {"padding (1 KiB bucket)", false, 1024},
                        {"re-diff + padding", true, 1024}};
  for (const Case& c : cases) {
    extension::MediatorConfig config = macro_config(enc::Mode::kRecb, 8);
    config.rediff = c.rediff;
    config.pad_bucket = c.pad;
    MacroStack stack(65, true, config);
    client::GDocsClient writer(stack.channel, "doc");
    writer.create();
    Xoshiro256 rng(66);
    writer.insert(0, workload::random_document(rng, 10'000));
    writer.save();

    std::vector<double> times;
    workload::SentenceEditor editor(writer.text(), &rng);
    for (int i = 0; i < 60; ++i) {
      editor.step_mixed();
      writer.replace(0, writer.text().size(), editor.document());
      times.push_back(time_seconds([&] { writer.save(); }) * 1e6);
    }
    std::printf("%-34s %18.1f\n", c.name, stats_of(times).mean);
  }
  std::printf("Re-diff runs Myers over both versions (linear-ish for local\n"
              "edits); padding is nearly free. Both are viable defaults.\n");
}

void BM_MediatedSave(benchmark::State& state) {
  extension::MediatorConfig config = macro_config(enc::Mode::kRecb, 8);
  config.rediff = state.range(0) != 0;
  MacroStack stack(67, true, config);
  client::GDocsClient writer(stack.channel, "doc");
  writer.create();
  Xoshiro256 rng(68);
  writer.insert(0, workload::random_document(rng, 10'000));
  writer.save();
  std::size_t i = 0;
  for (auto _ : state) {
    writer.insert((i * 1237) % writer.text().size(), "word ");
    writer.save();
    ++i;
  }
}
BENCHMARK(BM_MediatedSave)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_policy_ablation();
  print_codec_ablation();
  print_mitigation_cost();
  return 0;
}
