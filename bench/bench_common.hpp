#pragma once
// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary registers google-benchmark micro-measurements AND prints the
// corresponding paper table/figure (same rows/series as the publication)
// from a deterministic experiment run. Absolute numbers will differ from
// the 2011 JavaScript prototype — EXPERIMENTS.md records paper-vs-measured
// — but the shapes (who wins, by what factor, where crossovers fall) are
// the reproduction target.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/enc/scheme.hpp"

namespace privedit::bench {

/// DCE-proof sink for a buffer the benchmark writes but never reads:
/// DoNotOptimize pins the pointer as observed, ClobberMemory forces every
/// pending store to it to be materialised. Use after each in-loop write —
/// a result that is neither sunk nor fed back into the next iteration can
/// be deleted wholesale at -O2, and the "benchmark" times an empty loop.
inline void sink_buffer(const void* data) {
  benchmark::DoNotOptimize(data);
  benchmark::ClobberMemory();
}

struct Stats {
  double mean = 0.0;
  double dev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.dev = std::sqrt(var / static_cast<double>(xs.size()));
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

/// Wall-clock seconds of fn().
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

inline crypto::DocumentKeys bench_keys() {
  return crypto::derive_document_keys("bench-password", Bytes(16, 0x5a),
                                      crypto::KdfParams{.iterations = 10});
}

inline enc::ContainerHeader bench_header(enc::Mode mode,
                                         std::size_t block_chars,
                                         enc::Codec codec =
                                             enc::Codec::kBase32) {
  enc::ContainerHeader h;
  h.mode = mode;
  h.block_chars = block_chars;
  h.codec = codec;
  h.kdf_iterations = 10;
  h.salt = Bytes(16, 0x5a);
  return h;
}

inline std::unique_ptr<enc::IncrementalScheme> bench_scheme(
    enc::Mode mode, std::size_t block_chars, std::uint64_t seed,
    enc::Codec codec = enc::Codec::kBase32) {
  const auto keys = bench_keys();
  return enc::make_scheme(bench_header(mode, block_chars, codec), keys,
                          crypto::CtrDrbg::from_seed(seed));
}

inline void print_rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  std::printf("\n");
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

// Paper reference values (for side-by-side printing).
// Fig 4 (RPC micro, per char): enc .091 ms, dec .085 ms, incE .110 ms.
inline constexpr double kPaperFig4EncMs = 0.091;
inline constexpr double kPaperFig4DecMs = 0.085;
inline constexpr double kPaperFig4IncMs = 0.110;

}  // namespace privedit::bench
