// Recovery stress bench: repeated client crash/recover cycles over a large
// (100k-char) encrypted document, measuring what recovery actually costs —
// the latency of the journal-replaying open after each "reboot", and how
// big the write-ahead journal gets on disk (compaction keeps it bounded:
// every convergent open rewrites it as BASE + pending).
//
// Cycle shape: reboot the mediator on the same journal directory, open the
// document (replays the previous cycle's unacknowledged edit), make a new
// edit, then lose the connection mid-save so exactly one entry is left
// pending for the next cycle. The provider stays up throughout; its
// durable FileStore persistence is enabled so server-side fsyncs are in
// the measured path too.
//
// Output: one JSON line per cycle (machine-consumable, see
// EXPERIMENTS.md) followed by a human summary. --quick shrinks the
// document and cycle count for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "privedit/client/gdocs_client.hpp"
#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/net/socket.hpp"
#include "privedit/util/random.hpp"

namespace privedit {
namespace {

namespace fs = std::filesystem;

struct FlakyChannel final : net::Channel {
  explicit FlakyChannel(net::Channel* inner) : inner(inner) {}
  net::HttpResponse round_trip(const net::HttpRequest& r) override {
    if (down) {
      throw net::TransportError(net::FaultKind::kConnect, "bench partition");
    }
    return inner->round_trip(r);
  }
  net::Channel* inner;
  bool down = false;
};

extension::MediatorConfig mediator_config(std::string journal_dir,
                                          std::uint64_t seed) {
  extension::MediatorConfig c;
  c.password = "bench-pw";
  c.scheme.mode = enc::Mode::kRpc;
  c.scheme.kdf_iterations = 10;
  c.rng_factory = extension::seeded_rng_factory(seed);
  c.journal_dir = std::move(journal_dir);
  return c;
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  const std::size_t idx = std::min(
      xs.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(idx), xs.end());
  return xs[idx];
}

}  // namespace

int run(bool quick) {
  const std::size_t doc_chars = quick ? 20'000 : 100'000;
  const int cycles = quick ? 5 : 50;

  const std::string base =
      (fs::temp_directory_path() / "privedit_recovery_stress").string();
  fs::remove_all(base);
  const std::string store_dir = base + "/store";
  const std::string journal_dir = base + "/journal";

  net::SimClock clock;
  cloud::GDocsServer server;
  server.enable_persistence(store_dir);
  net::LoopbackTransport transport(
      [&server](const net::HttpRequest& r) { return server.handle(r); },
      &clock, net::LatencyModel{}, crypto::CtrDrbg::from_seed(7));
  FlakyChannel flaky(&transport);

  // Seed the document: one big full save of doc_chars characters.
  {
    extension::GDocsMediator mediator(&flaky, mediator_config(journal_dir, 11),
                                      &clock);
    client::GDocsClient writer(&mediator, "bench-doc");
    writer.create();
    std::string body;
    body.reserve(doc_chars);
    Xoshiro256 rng(13);
    while (body.size() < doc_chars) {
      body += "the quick brown fox jumps over the lazy dog ";
      if (rng.below(7) == 0) body += '\n';
    }
    body.resize(doc_chars);
    writer.insert(0, body);
    writer.save();
    // Leave one edit unacknowledged for the first measured recovery.
    writer.insert(rng.below(writer.text().size()), " [crashed edit 0]");
    flaky.down = true;
    try {
      writer.save();
    } catch (const net::TransportError&) {
    }
    flaky.down = false;
  }

  std::vector<double> open_us;
  std::uint64_t max_journal_bytes = 0;
  Xoshiro256 rng(17);
  std::printf("# recovery_stress: doc_chars=%zu cycles=%d\n", doc_chars,
              cycles);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Reboot: fresh mediator over the same journal directory.
    extension::GDocsMediator mediator(
        &flaky, mediator_config(journal_dir, 100 + cycle), &clock);
    client::GDocsClient editor(&mediator, "bench-doc");

    const auto t0 = std::chrono::steady_clock::now();
    editor.open();
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    open_us.push_back(us);

    const std::uint64_t journal_bytes = dir_bytes(journal_dir);
    max_journal_bytes = std::max(max_journal_bytes, journal_bytes);
    std::printf("{\"cycle\":%d,\"open_us\":%.1f,\"journal_replays\":%zu,"
                "\"journal_bytes\":%llu,\"doc_chars\":%zu}\n",
                cycle, us, mediator.counters().journal_replays,
                static_cast<unsigned long long>(journal_bytes),
                editor.text().size());

    // Next crashed edit: saved into the journal, lost on the wire.
    editor.insert(rng.below(editor.text().size()),
                  " [crashed edit " + std::to_string(cycle + 1) + "]");
    flaky.down = true;
    try {
      editor.save();
    } catch (const net::TransportError&) {
    }
    flaky.down = false;

    if (mediator.counters().journal_replays != 1) {
      std::fprintf(stderr, "FAIL cycle %d: expected exactly 1 replay, got %zu\n",
                   cycle, mediator.counters().journal_replays);
      return 1;
    }
    if (mediator.counters().rollbacks_detected != 0) {
      std::fprintf(stderr, "FAIL cycle %d: spurious rollback detection\n",
                   cycle);
      return 1;
    }
  }

  std::vector<double> sorted = open_us;
  double sum = 0.0;
  for (double v : sorted) sum += v;
  std::printf("# summary: recover+open mean=%.1fus p50=%.1fus p95=%.1fus "
              "max=%.1fus journal_max=%llu bytes\n",
              sum / static_cast<double>(sorted.size()),
              percentile(sorted, 0.50), percentile(sorted, 0.95),
              *std::max_element(open_us.begin(), open_us.end()),
              static_cast<unsigned long long>(max_journal_bytes));

  fs::remove_all(base);
  return 0;
}

}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  return privedit::run(quick);
}
