// Fig 5 — macro-benchmark: end-to-end performance degradation of the
// extension, single-character blocks (§VII-C).
//
// Paper table (mean degradation, std dev):
//                      small (~500 chars)          large (~10000 chars)
//                      rECB          RPC           rECB          RPC
//   initial load       25.0% .044    24.0% .065    43.0% .051    45.0% .085
//   inserts only        6.2% .049     7.0% .040     8.2% .050    10.0% .047
//   deletes only        3.1% .012     4.5% .019     3.9% .014     4.3% .023
//   inserts & deletes   7.4% .059     9.0% .053    11.0% .059    13.0% .060
//
// Shape to reproduce: initial load is the expensive step (whole-document
// crypto); per-edit overhead stays ~3-13%; RPC costs slightly more than
// rECB; large documents degrade more than small ones on load.

#include <benchmark/benchmark.h>

#include "macro_common.hpp"

namespace {

using namespace privedit;
using namespace privedit::bench;

void print_fig5() {
  print_title("Fig 5 — macro-benchmark degradation, 1-char blocks");
  const int trials = 12;

  const char* paper_small_recb[4] = {"25.0%", "6.2%", "3.1%", "7.4%"};
  print_macro_table("Small files (~500 chars), rECB", 500, enc::Mode::kRecb,
                    1, trials, 10'000, paper_small_recb);

  const char* paper_small_rpc[4] = {"24.0%", "7.0%", "4.5%", "9.0%"};
  print_macro_table("Small files (~500 chars), RPC", 500, enc::Mode::kRpc, 1,
                    trials, 20'000, paper_small_rpc);

  const char* paper_large_recb[4] = {"43.0%", "8.2%", "3.9%", "11.0%"};
  print_macro_table("Large files (~10000 chars), rECB", 10'000,
                    enc::Mode::kRecb, 1, trials, 30'000, paper_large_recb);

  const char* paper_large_rpc[4] = {"45.0%", "10.0%", "4.3%", "13.0%"};
  print_macro_table("Large files (~10000 chars), RPC", 10'000,
                    enc::Mode::kRpc, 1, trials, 40'000, paper_large_rpc);

  std::printf(
      "\nReading the table: 'JS-era' charges crypto at the paper's own Fig 4\n"
      "per-char costs (the 2009 JavaScript engine); 'native' charges the\n"
      "measured C++ time, under the same simulated network (LatencyModel).\n"
      "Shape check (paper): initial load >> edits; deletes cheapest; RPC >=\n"
      "rECB; large-file load degrades more than small-file load.\n");
}

void BM_MacroEditSaveRoundTrip(benchmark::State& state) {
  // Wall-time of a mediated edit+save against the in-process stack
  // (network simulated, crypto real).
  const bool with_ext = state.range(0) != 0;
  MacroStack stack(1, with_ext, macro_config(enc::Mode::kRecb, 1));
  client::GDocsClient writer(stack.channel, "doc");
  writer.create();
  Xoshiro256 rng(5);
  writer.insert(0, workload::random_document(rng, 10'000));
  writer.save();
  std::size_t i = 0;
  for (auto _ : state) {
    writer.insert((i * 997) % writer.text().size(), "x");
    writer.save();
    ++i;
  }
}
BENCHMARK(BM_MacroEditSaveRoundTrip)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_fig5();
  return 0;
}
