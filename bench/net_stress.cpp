// Net-layer stress benchmark: throughput and latency of the worker-pool
// HttpServer under heavy connection concurrency, driven by retrying
// TcpChannel clients (one TCP connection per request, as the editors use
// it). Sweeps 64 → 1024 concurrent client threads and prints a table of
// throughput plus latency percentiles; the ≥256-connection rows push 10k
// requests through the server.
//
// After every row the server is stopped and we assert the accounting
// closed out: backlog() == 0 (no queued or in-flight work leaked past the
// drain) and served + rejected + dropped covers every request the clients
// observed. A 503 under saturation is expected and is surfaced to the
// client as a response, not an error; the retry policy paves over refused
// connects while the kernel accept backlog churns.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "privedit/net/http_server.hpp"
#include "privedit/net/retry.hpp"

namespace privedit::net {
namespace {

struct RowResult {
  std::size_t connections = 0;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t busy = 0;       // 503 seen by a client
  std::size_t errors = 0;     // retry policy exhausted
  double wall_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  HttpServer::Counters server;
};

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  const std::size_t idx = std::min(
      xs.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1)));
  std::nth_element(xs.begin(), xs.begin() + static_cast<long>(idx), xs.end());
  return xs[idx];
}

RowResult run_row(std::size_t connections, std::size_t total_requests) {
  HttpServerConfig config;
  config.worker_threads = 16;
  config.accept_queue_capacity = 2 * connections;  // absorb the burst
  config.request_deadline_ms = 10'000;

  HttpServer server(0, [](const HttpRequest& req) {
    return HttpResponse::make(200, "echo:" + req.body);
  }, config);
  const std::uint16_t port = server.port();

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_us = 500;
  policy.max_backoff_us = 40'000;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, busy{0}, errors{0};
  std::vector<std::vector<double>> latencies(connections);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      TcpChannel channel(port, /*timeout_ms=*/10'000, policy);
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total_requests) break;
        HttpRequest req = HttpRequest::post_form(
            "/Doc?docID=stress", "cmd=save&seq=" + std::to_string(i));
        const auto r0 = std::chrono::steady_clock::now();
        try {
          const HttpResponse resp = channel.round_trip(req);
          if (resp.status == 503) {
            ++busy;
          } else if (resp.ok()) {
            ++ok;
          } else {
            ++errors;
          }
        } catch (const std::exception&) {
          ++errors;
        }
        const auto r1 = std::chrono::steady_clock::now();
        latencies[c].push_back(
            std::chrono::duration<double, std::micro>(r1 - r0).count());
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  server.stop();
  if (server.backlog() != 0) {
    throw std::runtime_error("thread/connection leak: backlog " +
                             std::to_string(server.backlog()) +
                             " after stop()");
  }

  RowResult row;
  row.connections = connections;
  row.requests = total_requests;
  row.ok = ok.load();
  row.busy = busy.load();
  row.errors = errors.load();
  row.wall_s = std::chrono::duration<double>(t1 - t0).count();
  row.server = server.counters();

  std::vector<double> all;
  for (auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  row.p50_us = percentile(all, 0.50);
  row.p95_us = percentile(all, 0.95);
  row.p99_us = percentile(all, 0.99);
  row.max_us = all.empty() ? 0.0 : *std::max_element(all.begin(), all.end());
  return row;
}

}  // namespace
}  // namespace privedit::net

int main(int argc, char** argv) {
  using privedit::net::RowResult;
  using privedit::net::run_row;

  // --quick shrinks the sweep for CI smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  struct Plan { std::size_t connections, requests; };
  std::vector<Plan> plans;
  if (quick) {
    plans = {{64, 1'000}, {256, 2'000}};
  } else {
    plans = {{64, 5'000}, {256, 10'000}, {512, 10'000}, {1024, 10'000}};
  }

  std::printf("net_stress: worker-pool HttpServer, TcpChannel clients "
              "(1 conn/request, retry on transient faults)\n\n");
  std::printf("%6s %9s %9s %6s %6s %10s %9s %9s %9s %9s\n",
              "conns", "requests", "ok", "503", "err", "req/s",
              "p50(us)", "p95(us)", "p99(us)", "max(us)");

  bool leak_free = true;
  for (const Plan& plan : plans) {
    RowResult row;
    try {
      row = run_row(plan.connections, plan.requests);
    } catch (const std::exception& e) {
      std::printf("row %zu FAILED: %s\n", plan.connections, e.what());
      leak_free = false;
      continue;
    }
    std::printf("%6zu %9zu %9zu %6zu %6zu %10.0f %9.0f %9.0f %9.0f %9.0f\n",
                row.connections, row.requests, row.ok, row.busy, row.errors,
                static_cast<double>(row.ok + row.busy) / row.wall_s,
                row.p50_us, row.p95_us, row.p99_us, row.max_us);
    if (row.errors != 0) {
      std::printf("  !! %zu requests exhausted the retry policy\n",
                  row.errors);
    }
    std::printf("  server: served=%zu write_failures=%zu rejected_busy=%zu "
                "dropped=%zu backlog=0\n",
                row.server.served, row.server.write_failures,
                row.server.rejected_busy, row.server.dropped);
  }
  std::printf("\n%s\n", leak_free
                            ? "all rows drained cleanly (backlog 0 after stop)"
                            : "LEAK DETECTED — see failed rows above");
  return leak_free ? 0 : 1;
}
