// Sharded front-door stress: saturation curves for the consistent-hash
// router across ring sizes, with and without per-shard admission control.
//
// Matrix: shards in {1, 4, 8} x admission {off, on}, over a 10k-document
// corpus (1k under --quick) with hundreds of distinct client identities
// driven from several worker threads. Two throughput numbers per cell:
//
//   wall_ops_per_s      — raw end-to-end rate through ShardRouter::handle
//                         (ring lookup + tenant ledger + shard lock + the
//                         GDocsServer protocol work), measured on the wall
//                         clock. On a multi-core box this is where the
//                         per-shard lock domains show up; on one core it
//                         is a router-overhead check across ring sizes.
//   accepted_per_s      — admission-limited saturation capacity, on the
//                         deterministic simulated clock: offered load far
//                         above any budget, capacity = accepted / offered
//                         window. Budgets are per (shard, client) bucket,
//                         so capacity scales with the ring — the 4-shard
//                         ring must sustain >= 2x the 1-shard ring (the
//                         PR's acceptance line; enforced at full scale).
//
// Every cell double-checks correctness after the storm: exactly one owner
// per sampled doc, no document lost, and only 200/503 statuses ever seen.
// FAILs (non-zero exit) on any violation, so the --quick run doubles as a
// CI smoke gate. Results land in BENCH_pr8.json (override with --out).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "privedit/cloud/shard_router.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

#include "bench_common.hpp"

namespace privedit {
namespace {

struct CellResult {
  std::size_t shards = 0;
  bool admission = false;
  std::size_t offered = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double wall_s = 0;
  double sim_s = 0;  // simulated offered-load window (admission rows)
  bool ok = true;
};

std::string doc_name(std::size_t i) { return "doc" + std::to_string(i); }
std::string client_name(std::size_t i) { return "c" + std::to_string(i); }

std::vector<std::string> ids_for(std::size_t n) {
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back("s" + std::to_string(i));
  return ids;
}

/// Seeds the corpus through the router. Setup traffic rides the probe
/// bypass so the admission buckets start the measured phase untouched.
void populate(cloud::ShardRouter& router, std::size_t docs,
              std::size_t clients, const std::string& body) {
  for (std::size_t i = 0; i < docs; ++i) {
    const std::string target = "/Doc?docID=" + percent_encode(doc_name(i));
    FormData create;
    create.add("cmd", "create");
    net::HttpRequest req = net::HttpRequest::post_form(target, create.encode());
    req.headers.set(net::kClientIdHeader, client_name(i % clients));
    req.headers.set(net::kProbeHeader, "1");
    router.handle(req);
    FormData save;
    save.add("session", "1");
    save.add("rev", "0");
    save.add("docContents", body);
    net::HttpRequest put = net::HttpRequest::post_form(target, save.encode());
    put.headers.set(net::kClientIdHeader, client_name(i % clients));
    put.headers.set(net::kProbeHeader, "1");
    router.handle(put);
  }
}

CellResult run_cell(std::size_t shards, bool admission, std::size_t docs,
                    std::size_t clients, std::size_t requests,
                    std::size_t threads, std::uint64_t spacing_us) {
  CellResult cell;
  cell.shards = shards;
  cell.admission = admission;
  cell.offered = requests;

  // The measured phase runs on a simulated clock: each request advances
  // time by a fixed spacing, so the offered rate (and thus the admission
  // verdicts) are independent of the machine the bench runs on.
  std::atomic<std::uint64_t> sim_now{0};
  cloud::ShardRouterConfig cfg;
  if (admission) {
    cfg.admission = net::AdmissionConfig{.rate_per_sec = 20.0,
                                         .burst = 30.0,
                                         .queue_deadline_us = 0,
                                         .max_clients = clients + 8};
    cfg.admission_now = [&sim_now] { return sim_now.load(); };
  }
  cloud::ShardRouter router(ids_for(shards), cfg);

  const std::string body(256, 'b');
  populate(router, docs, clients, body);
  if (router.document_count() != docs) {
    std::fprintf(stderr, "FAIL: populate lost documents (%zu of %zu)\n",
                 router.document_count(), docs);
    cell.ok = false;
    return cell;
  }

  std::atomic<std::size_t> accepted{0}, rejected{0}, unexpected{0};
  auto worker = [&](std::size_t tid, std::size_t begin, std::size_t end) {
    Xoshiro256 rng(0xbe5700 + tid);
    FormData save;
    save.add("session", "1");
    save.add("rev", "0");
    save.add("docContents", body);
    const std::string save_body = save.encode();
    FormData open;
    open.add("cmd", "open");
    const std::string open_body = open.encode();
    for (std::size_t r = begin; r < end; ++r) {
      sim_now.fetch_add(spacing_us);
      const std::string& form =
          rng.below(2) == 0 ? save_body : open_body;
      net::HttpRequest req = net::HttpRequest::post_form(
          "/Doc?docID=" + percent_encode(doc_name(rng.below(docs))), form);
      req.headers.set(net::kClientIdHeader, client_name(r % clients));
      const net::HttpResponse resp = router.handle(req);
      if (resp.ok()) {
        ++accepted;
      } else if (resp.status == 503) {
        ++rejected;
      } else {
        ++unexpected;
      }
    }
  };

  cell.wall_s = bench::time_seconds([&] {
    std::vector<std::thread> pool;
    const std::size_t chunk = requests / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = t + 1 == threads ? requests : begin + chunk;
      pool.emplace_back(worker, t, begin, end);
    }
    for (std::thread& th : pool) th.join();
  });
  cell.sim_s =
      static_cast<double>(requests) * static_cast<double>(spacing_us) / 1e6;
  cell.accepted = accepted.load();
  cell.rejected = rejected.load();

  // Post-storm invariants: nothing lost, nothing duplicated, no status
  // outside the {200, 503} contract.
  if (unexpected.load() != 0) {
    std::fprintf(stderr, "FAIL: %zu responses outside the 200/503 contract\n",
                 unexpected.load());
    cell.ok = false;
  }
  if (router.document_count() != docs) {
    std::fprintf(stderr, "FAIL: %zu of %zu documents survived the storm\n",
                 router.document_count(), docs);
    cell.ok = false;
  }
  for (std::size_t i = 0; i < docs; i += docs / 16 + 1) {
    if (router.holders(doc_name(i)).size() != 1) {
      std::fprintf(stderr, "FAIL: %s not owned by exactly one shard\n",
                   doc_name(i).c_str());
      cell.ok = false;
    }
  }
  if (!admission && cell.accepted != cell.offered) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu requests rejected with admission off\n",
                 cell.offered - cell.accepted, cell.offered);
    cell.ok = false;
  }
  return cell;
}

std::string cell_json(const CellResult& c) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"shard_stress\",\"shards\":%zu,\"admission\":%s,"
      "\"offered\":%zu,\"accepted\":%zu,\"rejected\":%zu,"
      "\"wall_ops_per_s\":%.0f,\"accepted_per_s\":%.0f,\"ok\":%s}",
      c.shards, c.admission ? "true" : "false", c.offered, c.accepted,
      c.rejected, static_cast<double>(c.offered) / c.wall_s,
      static_cast<double>(c.accepted) /
          (c.admission ? c.sim_s : c.wall_s),
      c.ok ? "true" : "false");
  return buf;
}

int run(bool quick, const std::string& out_path) {
  const std::size_t docs = quick ? 1'000 : 10'000;
  const std::size_t clients = quick ? 128 : 256;
  const std::size_t requests = quick ? 30'000 : 240'000;
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t threads = hw < 4 ? 4 : (hw > 16 ? 16 : hw);
  // Offered rate ~60k req/s: far above the 1-shard admission capacity
  // (256 clients x 20/s = 5.1k/s) and above the 8-shard one, so every
  // admission row is measured at saturation.
  const std::uint64_t spacing_us = 16;

  std::printf("# shard_stress: docs=%zu clients=%zu requests=%zu threads=%zu"
              " offered=%.0f req/s (simulated)\n",
              docs, clients, requests, threads, 1e6 / spacing_us);

  std::vector<CellResult> cells;
  bool failed = false;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}}) {
    for (const bool admission : {false, true}) {
      cells.push_back(run_cell(shards, admission, docs, clients, requests,
                               threads, spacing_us));
      std::printf("%s\n", cell_json(cells.back()).c_str());
      failed = failed || !cells.back().ok;
    }
  }

  // The acceptance line: 4 shards sustain >= 2x the 1-shard saturation
  // capacity (it lands near 4x — each client's budget is per shard).
  double cap1 = 0, cap4 = 0, cap8 = 0;
  for (const CellResult& c : cells) {
    if (!c.admission) continue;
    const double cap = static_cast<double>(c.accepted) / c.sim_s;
    if (c.shards == 1) cap1 = cap;
    if (c.shards == 4) cap4 = cap;
    if (c.shards == 8) cap8 = cap;
  }
  const double scaling = cap1 > 0 ? cap4 / cap1 : 0;
  std::printf("# summary: saturation capacity 1/4/8 shards = "
              "%.0f / %.0f / %.0f accepted/s (4-vs-1 scaling %.2fx)\n",
              cap1, cap4, cap8, scaling);
  if (scaling < 2.0) {
    std::fprintf(stderr,
                 "FAIL: 4-shard saturation %.2fx the 1-shard ring "
                 "(acceptance floor is 2x)\n",
                 scaling);
    failed = true;
  }

  std::string report = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report += (i ? ",\n " : "") + cell_json(cells[i]);
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                ",\n {\"bench\":\"shard_stress_summary\",\"docs\":%zu,"
                "\"clients\":%zu,\"cap_1\":%.0f,\"cap_4\":%.0f,"
                "\"cap_8\":%.0f,\"scaling_4_vs_1\":%.2f}]\n",
                docs, clients, cap1, cap4, cap8, scaling);
  report += buf;
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr8.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  return privedit::run(quick, out);
}
