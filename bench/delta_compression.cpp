// Block-delta differential compression bench (DESIGN.md §15): what the
// copy-add wire layer buys on the three container-moving paths.
//
//   save_wire  — end to end through the mediator: a 1-char edit saved as
//                docContents, with block_delta_saves on vs off, across
//                document sizes up to 256 KB. Reports bytes-on-wire per
//                save, the full/delta ratio, and ms per save. FAILs unless
//                the >=100 KB documents drop bytes-on-wire by >=10x and
//                the server converges byte-identically to the mediator's
//                ciphertext mirror.
//   repair     — anti-entropy push through push_sync_over: a lagging
//                replica (shares all but the last edit's blocks) heals
//                over the digest exchange + block delta; a fully divergent
//                replica exercises the full-container fallback through the
//                same helper. Reports bytes and ms per repair, both paths,
//                and FAILs unless both end byte-identical to the donor.
//   blowup     — Fig 7 context: container/plaintext blow-up per document
//                size next to the delta wire per 1-char edit, i.e. what
//                the edit *actually* costs on the wire once differential
//                saves absorb the container blow-up.
//
// Output: one JSON line per measurement; the array lands in BENCH_pr9.json
// (override with --out). --quick shrinks sizes/repeats for CI smoke runs.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/extension/mediator.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/random.hpp"
#include "privedit/util/urlencode.hpp"

#include "bench_common.hpp"

namespace privedit {
namespace {

constexpr const char* kPassword = "bench-pw";
constexpr const char* kTarget = "/Doc?docID=bdoc";

/// In-process channel straight into a server's handler.
class DirectChannel final : public net::Channel {
 public:
  explicit DirectChannel(cloud::GDocsServer* server) : server_(server) {}
  net::HttpResponse round_trip(const net::HttpRequest& request) override {
    return server_->handle(request);
  }

 private:
  cloud::GDocsServer* server_;
};

std::string make_body(std::size_t chars, std::uint64_t seed) {
  std::string body;
  body.reserve(chars + 64);
  Xoshiro256 rng(seed);
  while (body.size() < chars) {
    body += "the quick brown fox jumps over the lazy dog ";
    if (rng.below(7) == 0) body += '\n';
  }
  body.resize(chars);
  return body;
}

extension::MediatorConfig mediator_config(bool bdelta, std::uint64_t seed) {
  extension::MediatorConfig mc;
  mc.password = kPassword;
  mc.scheme.mode = enc::Mode::kRpc;
  mc.scheme.block_chars = 8;
  mc.scheme.kdf_iterations = 10;
  mc.rng_factory = extension::seeded_rng_factory(seed);
  mc.block_delta_saves = bdelta;
  return mc;
}

std::uint64_t parse_rev(const std::string& body) {
  const auto field = FormData::parse(body).get("rev");
  return field ? std::stoull(*field) : 0;
}

struct SaveRow {
  std::size_t doc_chars = 0;
  std::size_t container_bytes = 0;
  double full_bytes_per_save = 0;
  double delta_bytes_per_save = 0;
  double full_ms_per_save = 0;
  double delta_ms_per_save = 0;
  double ratio = 0;
  bool converged = false;
};

/// Drives `saves` 1-char-edit docContents saves through a fresh mediator
/// (bdelta on or off) and returns bytes/time per save.
SaveRow run_save_cell(std::size_t doc_chars, std::size_t saves) {
  SaveRow row;
  row.doc_chars = doc_chars;
  for (const bool bdelta : {false, true}) {
    cloud::GDocsServer server;
    DirectChannel channel(&server);
    extension::GDocsMediator mediator(
        &channel, mediator_config(bdelta, 7'000 + doc_chars));

    std::string text = make_body(doc_chars, 9'000 + doc_chars);
    FormData create;
    create.add("cmd", "create");
    std::uint64_t rev = parse_rev(
        mediator
            .round_trip(net::HttpRequest::post_form(kTarget, create.encode()))
            .body);
    const auto save = [&](const std::string& contents) {
      FormData f;
      f.add("session", "1");
      f.add("rev", std::to_string(rev));
      f.add("docContents", contents);
      const net::HttpResponse resp = mediator.round_trip(
          net::HttpRequest::post_form(kTarget, f.encode()));
      if (!resp.ok()) {
        std::fprintf(stderr, "FAIL: save rejected: HTTP %d\n", resp.status);
        std::exit(1);
      }
      rev = parse_rev(resp.body);
    };
    save(text);  // the base full save both configurations pay

    const auto& before = mediator.counters();
    const std::size_t full0 = before.full_save_bytes;
    const std::size_t delta0 = before.bdelta_bytes;
    Xoshiro256 rng(31 + doc_chars);
    const double seconds = bench::time_seconds([&] {
      for (std::size_t i = 0; i < saves; ++i) {
        const std::size_t at = rng.below(text.size());
        text[at] = text[at] == 'q' ? 'z' : 'q';
        save(text);
      }
    });

    const auto& after = mediator.counters();
    if (bdelta) {
      row.delta_bytes_per_save =
          static_cast<double>(after.bdelta_bytes - delta0) /
          static_cast<double>(saves);
      row.delta_ms_per_save = seconds * 1e3 / static_cast<double>(saves);
      if (after.bdelta_saves != saves || after.bdelta_fallbacks != 0) {
        std::fprintf(stderr,
                     "FAIL: %zu of %zu saves travelled as deltas "
                     "(%zu fallbacks)\n",
                     after.bdelta_saves, saves, after.bdelta_fallbacks);
        std::exit(1);
      }
      // Convergence: the server must hold the mediator's mirror verbatim.
      row.converged = server.raw_content("bdoc") ==
                      mediator.managed_ciphertext("bdoc");
      row.container_bytes = mediator.managed_ciphertext("bdoc")->size();
    } else {
      row.full_bytes_per_save =
          static_cast<double>(after.full_save_bytes - full0) /
          static_cast<double>(saves);
      row.full_ms_per_save = seconds * 1e3 / static_cast<double>(saves);
    }
  }
  row.ratio = row.delta_bytes_per_save > 0
                  ? row.full_bytes_per_save / row.delta_bytes_per_save
                  : 0;
  return row;
}

struct RepairRow {
  std::size_t doc_chars = 0;
  std::size_t container_bytes = 0;
  double delta_bytes = 0;
  double full_bytes = 0;
  double delta_ms = 0;
  double full_ms = 0;
  bool ok = false;
};

/// One lagging replica (holds the pre-edit container: every unedited block
/// shared) and one divergent replica (an unrelated container: nothing
/// shared, so the same helper takes the full-content path via its wire-size
/// gate). Both must end byte-identical to the donor.
RepairRow run_repair_cell(std::size_t doc_chars, std::size_t repeats) {
  RepairRow row;
  row.doc_chars = doc_chars;

  const std::string text = make_body(doc_chars, 100 + doc_chars);
  std::string edited = text;
  edited[doc_chars / 2] = '#';
  extension::DocumentSession donor = extension::DocumentSession::create_new(
      kPassword, mediator_config(false, 1).scheme,
      extension::seeded_rng_factory(55));
  const std::string stale = donor.encrypt_full(text);
  donor.transform_delta(delta::myers_diff(text, edited));
  const std::string fresh = donor.scheme().ciphertext_doc();
  row.container_bytes = fresh.size();

  extension::DocumentSession other = extension::DocumentSession::create_new(
      kPassword, mediator_config(false, 1).scheme,
      extension::seeded_rng_factory(56));
  const std::string unrelated =
      other.encrypt_full(make_body(doc_chars, 200 + doc_chars));

  cloud::GDocsServer replica;
  DirectChannel channel(&replica);
  const auto reset_to = [&](const std::string& content) {
    FormData f;
    f.add("cmd", "sync");
    f.add("rev", "3");
    f.add("content", content);
    replica.handle(net::HttpRequest::post_form(kTarget, f.encode()));
  };

  extension::SyncPushStats stats;
  row.ok = true;
  double delta_s = 0;
  double full_s = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    reset_to(stale);
    delta_s += bench::time_seconds([&] {
      row.ok = extension::push_sync_over(channel, kTarget, fresh, "4",
                                         &stats) &&
               row.ok;
    });
    row.ok = row.ok && replica.raw_content("bdoc") == fresh;
    reset_to(unrelated);
    full_s += bench::time_seconds([&] {
      row.ok = extension::push_sync_over(channel, kTarget, fresh, "4",
                                         &stats) &&
               row.ok;
    });
    row.ok = row.ok && replica.raw_content("bdoc") == fresh;
  }
  if (stats.delta_pushes != repeats || stats.full_pushes != repeats) {
    std::fprintf(stderr,
                 "FAIL: expected %zu delta + %zu full pushes, got %zu + %zu "
                 "(%zu fallbacks)\n",
                 repeats, repeats, stats.delta_pushes, stats.full_pushes,
                 stats.fallbacks);
    std::exit(1);
  }
  row.delta_bytes = static_cast<double>(stats.bytes_delta) /
                    static_cast<double>(repeats);
  row.full_bytes = static_cast<double>(stats.bytes_full) /
                   static_cast<double>(repeats);
  row.delta_ms = delta_s * 1e3 / static_cast<double>(repeats);
  row.full_ms = full_s * 1e3 / static_cast<double>(repeats);
  return row;
}

int run(bool quick, const std::string& out_path) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4'096, 131'072}
            : std::vector<std::size_t>{4'096, 16'384, 65'536, 131'072,
                                       262'144};
  const std::size_t saves = quick ? 4 : 8;
  const std::size_t repeats = quick ? 3 : 10;

  std::string report = "[";
  bool failed = false;
  const auto emit = [&](const std::string& line) {
    std::printf("%s\n", line.c_str());
    report += (report.size() > 1 ? ",\n " : "") + line;
  };
  char buf[512];

  std::printf("# delta_compression: sizes=%zu saves=%zu repeats=%zu\n",
              sizes.size(), saves, repeats);
  for (const std::size_t chars : sizes) {
    const SaveRow s = run_save_cell(chars, saves);
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"save_wire\",\"doc_chars\":%zu,"
        "\"container_bytes\":%zu,\"full_bytes_per_save\":%.0f,"
        "\"delta_bytes_per_save\":%.0f,\"ratio\":%.1f,"
        "\"full_ms_per_save\":%.2f,\"delta_ms_per_save\":%.2f,"
        "\"converged\":%s}",
        s.doc_chars, s.container_bytes, s.full_bytes_per_save,
        s.delta_bytes_per_save, s.ratio, s.full_ms_per_save,
        s.delta_ms_per_save, s.converged ? "true" : "false");
    emit(buf);
    if (!s.converged) {
      std::fprintf(stderr, "FAIL: server != mediator mirror at %zu chars\n",
                   chars);
      failed = true;
    }
    if (chars >= 100'000 && s.ratio < 10.0) {
      std::fprintf(stderr,
                   "FAIL: 1-char edit at %zu chars compresses only %.1fx "
                   "(acceptance floor is 10x)\n",
                   chars, s.ratio);
      failed = true;
    }
    // Fig 7 context: the container's blow-up vs what the edit now costs.
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"blowup\",\"doc_chars\":%zu,"
        "\"container_blowup\":%.2f,\"delta_wire_blowup\":%.4f}",
        s.doc_chars,
        static_cast<double>(s.container_bytes) /
            static_cast<double>(s.doc_chars),
        s.delta_bytes_per_save / static_cast<double>(s.doc_chars));
    emit(buf);
  }

  for (const std::size_t chars : sizes) {
    const RepairRow r = run_repair_cell(chars, repeats);
    std::snprintf(
        buf, sizeof buf,
        "{\"bench\":\"repair\",\"doc_chars\":%zu,"
        "\"container_bytes\":%zu,\"delta_bytes\":%.0f,\"full_bytes\":%.0f,"
        "\"ratio\":%.1f,\"delta_ms\":%.2f,\"full_ms\":%.2f,\"ok\":%s}",
        r.doc_chars, r.container_bytes, r.delta_bytes, r.full_bytes,
        r.delta_bytes > 0 ? r.full_bytes / r.delta_bytes : 0, r.delta_ms,
        r.full_ms, r.ok ? "true" : "false");
    emit(buf);
    if (!r.ok) {
      std::fprintf(stderr,
                   "FAIL: repair at %zu chars not byte-identical\n", chars);
      failed = true;
    }
  }

  report += "]\n";
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    failed = true;
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace privedit

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_pr9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }
  return privedit::run(quick, out);
}
