// privedit — command-line tool over the library.
//
// Lets a user work with encrypted documents from the shell, and run the
// standalone mediating proxy (§III option 1) or a local simulated service
// for experimentation:
//
//   privedit_cli encrypt  --password PW [--mode recb|rpc] [--block N]
//                         [--codec base32|base64|stego] < plain > cipher
//   privedit_cli decrypt  --password PW < cipher > plain
//   privedit_cli edit     --password PW --delta '=5\t-3\t+text'
//                         < cipher > new-cipher
//   privedit_cli inspect  < cipher           (header metadata, no password)
//   privedit_cli rotate   --password PW --new-password PW2 < cipher
//   privedit_cli serve    --port P [--shards N] [--data-dir DIR]
//                         (simulated Google Docs service, sharded front door)
//   privedit_cli proxy    --port P --upstream-port U --password PW
//                         [--bdelta 1]   (full saves ride block deltas)
//   privedit_cli fsck     --stores DIR[,DIR...] [--journal DIR]
//                         [--password PW] [--repair 0|1]
//
// The delta argument accepts "\t" as the op separator so shells stay sane.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "privedit/cloud/shard_router.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/extension/fsck.hpp"
#include "privedit/extension/proxy.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/http_server.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

using namespace privedit;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  const std::string& require(const std::string& name) const {
    const auto it = flags.find(name);
    if (it == flags.end()) {
      throw Error(ErrorCode::kInvalidArgument,
                  "missing required flag --" + name);
    }
    return it->second;
  }

  std::string get(const std::string& name, std::string fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) {
    throw Error(ErrorCode::kInvalidArgument, "no command given");
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw Error(ErrorCode::kInvalidArgument,
                  "unexpected argument '" + std::string(arg) + "'");
    }
    arg.remove_prefix(2);
    if (i + 1 >= argc) {
      throw Error(ErrorCode::kInvalidArgument,
                  "flag --" + std::string(arg) + " needs a value");
    }
    args.flags[std::string(arg)] = argv[++i];
  }
  return args;
}

std::string read_stdin() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return buf.str();
}

enc::SchemeConfig config_from(const Args& args) {
  enc::SchemeConfig config;
  const std::string mode = args.get("mode", "rpc");
  if (mode == "recb") {
    config.mode = enc::Mode::kRecb;
  } else if (mode == "rpc") {
    config.mode = enc::Mode::kRpc;
  } else {
    throw Error(ErrorCode::kInvalidArgument, "unknown --mode " + mode);
  }
  config.block_chars = std::stoul(args.get("block", "8"));
  const std::string codec = args.get("codec", "base32");
  if (codec == "base32") {
    config.codec = enc::Codec::kBase32;
  } else if (codec == "base64") {
    config.codec = enc::Codec::kBase64Url;
  } else if (codec == "stego") {
    config.codec = enc::Codec::kStego;
  } else {
    throw Error(ErrorCode::kInvalidArgument, "unknown --codec " + codec);
  }
  return config;
}

std::string unescape_delta_arg(std::string_view arg) {
  std::string out;
  for (std::size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] == '\\' && i + 1 < arg.size() && arg[i + 1] == 't') {
      out.push_back('\t');
      ++i;
    } else {
      out.push_back(arg[i]);
    }
  }
  return out;
}

int cmd_encrypt(const Args& args) {
  auto session = extension::DocumentSession::create_new(
      args.require("password"), config_from(args), extension::os_rng_factory());
  std::cout << session.encrypt_full(read_stdin());
  return 0;
}

int cmd_decrypt(const Args& args) {
  auto session = extension::DocumentSession::open(
      args.require("password"), read_stdin(), extension::os_rng_factory());
  std::cout << session.plaintext();
  return 0;
}

int cmd_edit(const Args& args) {
  const delta::Delta d =
      delta::Delta::parse(unescape_delta_arg(args.require("delta")));
  auto session = extension::DocumentSession::open(
      args.require("password"), read_stdin(), extension::os_rng_factory());
  session.transform_delta(d);
  std::cout << session.scheme().ciphertext_doc();
  return 0;
}

int cmd_inspect(const Args&) {
  const enc::ContainerReader reader(read_stdin());
  const enc::ContainerHeader& h = reader.header();
  std::fprintf(stderr,
               "mode: %s\nblock chars: %zu\ncodec: %d\nkdf iterations: %u\n"
               "salt: %s\nunits: %zu\nunit width: %zu chars\n",
               enc::mode_name(h.mode).data(), h.block_chars,
               static_cast<int>(h.codec), h.kdf_iterations,
               hex_encode(h.salt).c_str(), reader.unit_count(),
               h.unit_width());
  return 0;
}

int cmd_rotate(const Args& args) {
  auto session = extension::DocumentSession::open(
      args.require("password"), read_stdin(), extension::os_rng_factory());
  auto rotated = extension::rotate_password(
      session, args.require("new-password"), extension::os_rng_factory());
  std::cout << rotated.scheme().ciphertext_doc();
  return 0;
}

int cmd_serve(const Args& args) {
  const std::size_t shards = std::stoul(args.get("shards", "1"));
  if (shards == 0) {
    throw Error(ErrorCode::kInvalidArgument, "--shards needs >= 1");
  }
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < shards; ++i) {
    ids.push_back("s" + std::to_string(i));
  }
  cloud::ShardRouterConfig config;
  config.data_dir = args.get("data-dir", "");
  auto router = std::make_shared<cloud::ShardRouter>(ids, config);
  // ShardRouter::handle is thread-safe (each shard is its own lock
  // domain), so the listener can dispatch without serialize_handler.
  net::HttpServer server(
      static_cast<std::uint16_t>(std::stoul(args.get("port", "0"))),
      [router](const net::HttpRequest& r) { return router->handle(r); });
  std::fprintf(stderr,
               "simulated Google Documents service on 127.0.0.1:%u "
               "(%zu shard%s%s%s)\n",
               server.port(), shards, shards == 1 ? "" : "s",
               config.data_dir.empty() ? "" : ", persisted under ",
               config.data_dir.c_str());
  // Boot-time restore anomalies: stale tenant meta and audit-sidecar
  // records/links dropped while rebuilding from the durable stores.
  std::size_t audit_skipped = 0;
  for (const std::string& id : router->members()) {
    audit_skipped += router->shard_server(id).table().audit_restore_skipped();
  }
  const std::size_t meta_skipped = router->tenants().counters().restore_skipped;
  if (audit_skipped > 0 || meta_skipped > 0) {
    std::fprintf(stderr,
                 "restore: %zu tenant meta record(s) skipped, "
                 "%zu audit record(s)/link(s) dropped\n",
                 meta_skipped, audit_skipped);
  }
  std::fprintf(stderr, "press enter to stop\n");
  std::getchar();
  server.stop();
  const cloud::ShardRouter::Counters rc = router->counters();
  const cloud::TenantAccounts::Counters tc = router->tenants().counters();
  std::fprintf(stderr,
               "served: %zu routed, %zu bad, %zu quota / %zu handoff / "
               "%zu down rejection(s), %zu migration(s) (%zu doc(s)), "
               "%zu charge(s)/%zu release(s)\n",
               rc.routed, rc.bad_requests, rc.quota_rejections,
               rc.handoff_rejections, rc.down_rejections, rc.migrations,
               rc.docs_migrated, tc.charges, tc.releases);
  return 0;
}

std::vector<std::string> split_dirs(const std::string& list) {
  std::vector<std::string> dirs;
  std::istringstream in(list);
  std::string dir;
  while (std::getline(in, dir, ',')) {
    if (!dir.empty()) dirs.push_back(dir);
  }
  if (dirs.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "--stores needs >= 1 directory");
  }
  return dirs;
}

int cmd_fsck(const Args& args) {
  extension::FsckOptions options;
  options.password = args.get("password", "");
  options.journal_dir = args.get("journal", "");
  options.repair = args.get("repair", "1") != "0";
  const extension::FsckResult result =
      extension::run_fsck(split_dirs(args.require("stores")), options);
  std::fputs(extension::format_fsck_result(result).c_str(), stdout);
  if (result.clean_before()) return 0;
  return result.healthy_after() ? 0 : 1;
}

int cmd_proxy(const Args& args) {
  extension::MediatorConfig config;
  config.password = args.require("password");
  config.scheme = config_from(args);
  config.block_delta_saves = args.get("bdelta", "0") != "0";
  extension::MediatingProxy proxy(
      static_cast<std::uint16_t>(std::stoul(args.get("port", "0"))),
      static_cast<std::uint16_t>(std::stoul(args.require("upstream-port"))),
      std::move(config));
  std::fprintf(stderr, "mediating proxy on 127.0.0.1:%u -> 127.0.0.1:%s\n",
               proxy.port(), args.require("upstream-port").c_str());
  std::fprintf(stderr, "press enter to stop\n");
  std::getchar();
  proxy.stop();
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: privedit_cli <command> [flags]\n"
      "  encrypt  --password PW [--mode recb|rpc] [--block 1..8]\n"
      "           [--codec base32|base64|stego]       stdin -> stdout\n"
      "  decrypt  --password PW                       stdin -> stdout\n"
      "  edit     --password PW --delta '=5\\t+hi'     stdin -> stdout\n"
      "  inspect                                      stdin -> stderr\n"
      "  rotate   --password PW --new-password PW2    stdin -> stdout\n"
      "  serve    [--port P] [--shards N] [--data-dir DIR]\n"
      "  proxy    --upstream-port U --password PW [--port P] [--bdelta 1]\n"
      "  fsck     --stores DIR[,DIR...] [--journal DIR] [--password PW]\n"
      "           [--repair 0|1]        exit 0 = clean or fully repaired\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "encrypt") return cmd_encrypt(args);
    if (args.command == "decrypt") return cmd_decrypt(args);
    if (args.command == "edit") return cmd_edit(args);
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "rotate") return cmd_rotate(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "proxy") return cmd_proxy(args);
    if (args.command == "fsck") return cmd_fsck(args);
    usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "privedit_cli: %s\n", e.what());
    if (std::string(e.what()).find("invalid_argument") != std::string::npos) {
      usage();
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "privedit_cli: %s\n", e.what());
    return 1;
  }
}
