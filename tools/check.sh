#!/usr/bin/env bash
# Build and run the test suite under a sanitizer (ThreadSanitizer by
# default). The net layer is the main customer: the worker pool, accept
# queue and retry paths are all multithreaded, and TSan catches ordering
# bugs the plain suite can't. The asan-ubsan mode (ASan+UBSan combined)
# is aimed at the durability paths — the journal's frame parser, the
# crash-injected FileStore writes — where the recovery tests feed torn
# and corrupt bytes through the decoders.
#
# Usage:
#   tools/check.sh [thread|address|asan-ubsan|sim|resilience|fsck|diff|audit|no-aesni] [extra ctest args...]
#
# The sim mode runs only the simulation-harness tests (ctest label "sim")
# in a plain build, scaled up via PRIVEDIT_SIM_ITERS (default 10x the
# tier-1 budget — override in the environment for longer soaks).
#
# The resilience mode soaks the disconnected-operation suite (ctest label
# "resilience": breaker, admission control, offline queue, outage-schedule
# sim runs) with PRIVEDIT_RESILIENCE_ITERS scaling the outage phases
# (default 10x), in a plain build for wall-clock throughput.
#
# The fsck mode soaks the storage-integrity suite (ctest label "storage":
# fault-injected stores, scrub cycles, fsck repair, crashpoint x disk-fault
# matrix) with PRIVEDIT_FSCK_ITERS scaling the randomized corruption
# rounds (default 10x), in a plain build.
#
# The diff mode soaks the block-delta codec: the randomized round-trip
# properties in block_diff_test (PRIVEDIT_DIFF_ITERS multiplies the
# rounds, default 10x), the wire-format fuzz corpus, and the sim
# harness's differential-save phase.
#
# The audit mode soaks fork-consistency detection: the audit_test suite
# (ctest label "audit") plus the sim harness's malicious-server adversary
# phases, with PRIVEDIT_AUDIT_ITERS scaling the adversary seed sweep
# (default 10x). Every injected equivocation/suppression/replay must be
# detected — one missed fork fails the run.
#
# Uses a separate build tree (build-<sanitizer>/) so the regular build/
# stays untouched.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SANITIZER="${1:-thread}"
shift || true

if [ "${SANITIZER}" = "sim" ]; then
  BUILD_DIR="${REPO_ROOT}/build-sim"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target sim_test
  export PRIVEDIT_SIM_ITERS="${PRIVEDIT_SIM_ITERS:-10}"
  echo "sim soak at PRIVEDIT_SIM_ITERS=${PRIVEDIT_SIM_ITERS}"
  cd "${BUILD_DIR}"
  exec ctest --output-on-failure -j"$(nproc)" -L sim "$@"
fi

if [ "${SANITIZER}" = "resilience" ]; then
  BUILD_DIR="${REPO_ROOT}/build-sim"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target resilience_test
  export PRIVEDIT_RESILIENCE_ITERS="${PRIVEDIT_RESILIENCE_ITERS:-10}"
  echo "resilience soak at PRIVEDIT_RESILIENCE_ITERS=${PRIVEDIT_RESILIENCE_ITERS}"
  cd "${BUILD_DIR}"
  exec ctest --output-on-failure -j"$(nproc)" -L resilience "$@"
fi

if [ "${SANITIZER}" = "fsck" ]; then
  BUILD_DIR="${REPO_ROOT}/build-sim"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target store_integrity_test sim_test
  export PRIVEDIT_FSCK_ITERS="${PRIVEDIT_FSCK_ITERS:-10}"
  echo "storage-integrity soak at PRIVEDIT_FSCK_ITERS=${PRIVEDIT_FSCK_ITERS}"
  cd "${BUILD_DIR}"
  # The storage label plus the sim harness's store-rot adversary tests
  # (label "sim", so a second invocation — ctest -L/-R intersect).
  ctest --output-on-failure -j"$(nproc)" -L storage "$@"
  exec ctest --output-on-failure -j"$(nproc)" -R "SimStorage|FuzzCorpus.Store" "$@"
fi

if [ "${SANITIZER}" = "diff" ]; then
  BUILD_DIR="${REPO_ROOT}/build-sim"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target block_diff_test sim_test
  export PRIVEDIT_DIFF_ITERS="${PRIVEDIT_DIFF_ITERS:-10}"
  echo "block-delta soak at PRIVEDIT_DIFF_ITERS=${PRIVEDIT_DIFF_ITERS}"
  cd "${BUILD_DIR}"
  exec ctest --output-on-failure -j"$(nproc)" \
    -R "BlockDiff|BlockWire|FuzzCorpus\.Diff|SimBlockDelta" "$@"
fi

if [ "${SANITIZER}" = "audit" ]; then
  BUILD_DIR="${REPO_ROOT}/build-sim"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)" --target audit_test sim_test
  export PRIVEDIT_AUDIT_ITERS="${PRIVEDIT_AUDIT_ITERS:-10}"
  echo "fork-consistency soak at PRIVEDIT_AUDIT_ITERS=${PRIVEDIT_AUDIT_ITERS}"
  cd "${BUILD_DIR}"
  ctest --output-on-failure -j"$(nproc)" -L audit "$@"
  exec ctest --output-on-failure -j"$(nproc)" -R "SimAudit" "$@"
fi

if [ "${SANITIZER}" = "no-aesni" ]; then
  # Run the full suite with hardware AES dispatch disabled, so the software
  # fallback path (the one a non-AES-NI host would take) stays covered even
  # on CI machines that have the extension. The env var is read per engine
  # construction — no rebuild needed, the regular plain tree is reused.
  BUILD_DIR="${REPO_ROOT}/build"
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "${BUILD_DIR}" -j"$(nproc)"
  export PRIVEDIT_DISABLE_AESNI=1
  echo "running full suite with PRIVEDIT_DISABLE_AESNI=1 (software AES only)"
  cd "${BUILD_DIR}"
  exec ctest --output-on-failure -j"$(nproc)" "$@"
fi

case "${SANITIZER}" in
  thread|address) CMAKE_SANITIZE="${SANITIZER}" ;;
  asan-ubsan)     CMAKE_SANITIZE="address+undefined" ;;
  *) echo "usage: tools/check.sh [thread|address|asan-ubsan|sim|resilience|fsck|diff|audit|no-aesni] [ctest args...]" >&2
     exit 2 ;;
esac

BUILD_DIR="${REPO_ROOT}/build-${SANITIZER}"

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
  -DPRIVEDIT_SANITIZE="${CMAKE_SANITIZE}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)"

# second_deadline=... keeps TSan's shadow memory from inflating timeouts
# past the drip-feed test deadlines; history_size helps report quality.
if [ "${SANITIZER}" = "thread" ]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 history_size=4}"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1 halt_on_error=1}"
fi

cd "${BUILD_DIR}"
ctest --output-on-failure -j"$(nproc)" "$@"
