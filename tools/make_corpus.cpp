// Regenerates the checked-in fuzz seed corpus (tests/corpus/). The seeds
// are committed so CI replays them without running this tool; rerun it
// only when a wire format changes:
//
//   ./build/tools/make_corpus tests/corpus
//
// Each subdirectory matches a fuzz entry point (sim/fuzz.hpp): valid
// inputs the entry point must accept, plus near-valid mutants (torn
// tails, flipped bytes, truncations) it must reject *cleanly*.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "privedit/extension/journal.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/http.hpp"
#include "privedit/util/crc32.hpp"

namespace fs = std::filesystem;

namespace {

void put(const fs::path& dir, const std::string& name,
         const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "write failed: " << (dir / name) << "\n";
    std::exit(1);
  }
  std::cout << (dir / name).string() << " (" << bytes.size() << " bytes)\n";
}

std::string make_container(privedit::enc::Mode mode) {
  privedit::enc::SchemeConfig config;
  config.mode = mode;
  config.block_chars = 4;
  config.kdf_iterations = 4;
  privedit::extension::DocumentSession session =
      privedit::extension::DocumentSession::create_new(
          "corpus password", config, privedit::extension::seeded_rng_factory(7));
  return session.encrypt_full("the quick brown fox jumps over the lazy dog");
}

std::string make_journal(const fs::path& scratch) {
  const fs::path wal = scratch / "corpus.wal";
  fs::create_directories(scratch);
  fs::remove(wal);
  {
    privedit::extension::EditJournal journal(wal.string());
    journal.append_pending({1, /*full_save=*/true, "checksum0", "ciphertext"});
    journal.append_pending({2, /*full_save=*/false, "checksum1", "=4\t+abcd"});
    journal.ack_front(2, "checksum1");
    journal.append_pending({3, /*full_save=*/false, "checksum2", "=2\t-2"});
  }
  std::ifstream in(wal, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  fs::remove(wal);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " CORPUS_DIR\n";
    return 2;
  }
  const fs::path root = argv[1];

  // --- delta: the grammar's corners and its two historical crashers ---
  const fs::path delta = root / "delta";
  put(delta, "basic.txt", "=5\t+hello\t-3");
  put(delta, "escapes.txt", "+a\\tb\\\\c\t=1");
  put(delta, "noop-retain-zero.txt", "=0");
  put(delta, "noop-empty-insert.txt", "+");
  put(delta, "empty.txt", "");
  put(delta, "trailing-tab.txt", "=1\t");
  put(delta, "dangling-escape.txt", "+abc\\");
  put(delta, "unknown-escape.txt", "+a\\nb");
  put(delta, "unknown-tag.txt", "?5");
  put(delta, "missing-count.txt", "=");
  put(delta, "count-not-digits.txt", "=12x4");
  put(delta, "retain-past-end.txt", "=999999");
  // The overflow crasher: cursor + 2^64-1 wrapped past the bounds check
  // and apply() silently duplicated document content before the fix.
  put(delta, "count-overflow-u64.txt", "=1\t-18446744073709551615");
  put(delta, "count-overflow-cap.txt", "-4294967297");
  put(delta, "count-at-cap.txt", "=4294967296");
  put(delta, "mixed-unsorted.txt", "+x\t-1\t+y\t-1\t=2\t+\t=0");

  // --- container: a real document per scheme + damaged variants ---
  const fs::path container = root / "container";
  const std::string recb = make_container(privedit::enc::Mode::kRecb);
  const std::string rpc = make_container(privedit::enc::Mode::kRpc);
  put(container, "recb-valid.txt", recb);
  put(container, "rpc-valid.txt", rpc);
  put(container, "truncated-header.txt", recb.substr(0, 9));
  put(container, "truncated-mid-unit.txt", recb.substr(0, recb.size() - 3));
  std::string flipped = rpc;
  flipped[flipped.size() / 2] =
      flipped[flipped.size() / 2] == 'A' ? 'B' : 'A';
  put(container, "flipped-unit-byte.txt", flipped);
  std::string bad_magic = recb;
  bad_magic[1] = 'X';
  put(container, "bad-magic.txt", bad_magic);
  put(container, "not-a-container.txt", "just some plaintext, no header");
  put(container, "empty.txt", "");

  // --- journal: a real PEWJ log + torn/corrupt variants ---
  const fs::path journal = root / "journal";
  const std::string wal = make_journal(root / ".scratch");
  put(journal, "valid.wal", wal);
  put(journal, "torn-tail.wal", wal.substr(0, wal.size() - 5));
  std::string crc_flip = wal;
  crc_flip[wal.size() - 1] = static_cast<char>(crc_flip[wal.size() - 1] ^ 1);
  put(journal, "crc-flip.wal", crc_flip);
  put(journal, "garbage-prefix.wal", "NOTAJOURNAL" + wal);
  put(journal, "empty.wal", "");
  fs::remove_all(root / ".scratch");

  // --- store: "<rev>\n<container>" record files + rotted variants ---
  const fs::path store = root / "store";
  put(store, "valid.rec", "3\n" + rpc);
  put(store, "rolled-back-rev.rec", "1\n" + rpc);
  std::string rot = "3\n" + rpc;
  rot[rot.size() / 2] = rot[rot.size() / 2] == 'A' ? 'B' : 'A';
  put(store, "bit-flipped-container.rec", rot);
  put(store, "truncated-doc.rec", ("3\n" + rpc).substr(0, rpc.size() / 2));
  put(store, "rev-not-digits.rec", "x3\n" + recb);
  put(store, "rev-overflow.rec", "99999999999999999999\n" + recb);
  put(store, "no-newline.rec", "42");
  put(store, "plaintext-body.rec", "7\nnot a container at all");
  put(store, "empty.rec", "");

  // --- http: valid requests/responses + malformed framing ---
  const fs::path http = root / "http";
  put(http, "post-form.txt",
      privedit::net::HttpRequest::post_form(
          "/Doc?docID=corpus", "cmd=open&session=1")
          .serialize());
  put(http, "response-ok.txt",
      privedit::net::HttpResponse::make(200, "rev=7&session=abc").serialize());
  put(http, "get-bare.txt", "GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  put(http, "no-terminator.txt", "POST /Doc HTTP/1.1\r\nContent-Length: 4\r\n");
  put(http, "bad-content-length.txt",
      "POST /Doc HTTP/1.1\r\nContent-Length: banana\r\n\r\nhi");
  put(http, "length-exceeds-body.txt",
      "POST /Doc HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort");
  put(http, "lf-only-lines.txt", "GET / HTTP/1.1\nHost: x\n\n");
  put(http, "empty.txt", "");
  put(http, "binary-noise.txt", std::string("\x00\xff\x7f\r\n\r\n\x01", 8));

  return 0;
}
