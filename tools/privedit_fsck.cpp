// privedit_fsck — offline check-and-repair for privedit store directories.
//
//   privedit_fsck [--journal DIR] [--password PW] [--check-only]
//                 STORE_DIR [STORE_DIR...]
//
// Each STORE_DIR is one replica's FileStore directory. With two or more
// replicas, damage found in one is repaired from a clean copy on another
// via the same cmd=sync anti-entropy push the extension uses online; docs
// corrupt on every replica are quarantined instead of being served.
//
// Exit status: 0 when every store is clean (before or after repair),
// 1 when findings remain that repair could not fix, 2 on usage errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "privedit/extension/fsck.hpp"
#include "privedit/util/error.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: privedit_fsck [--journal DIR] [--password PW]\n"
               "                     [--check-only] STORE_DIR [STORE_DIR...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace privedit;
  extension::FsckOptions options;
  std::vector<std::string> stores;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check-only") {
      options.repair = false;
    } else if (arg == "--journal" && i + 1 < argc) {
      options.journal_dir = argv[++i];
    } else if (arg == "--password" && i + 1 < argc) {
      options.password = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "privedit_fsck: unknown flag %s\n", argv[i]);
      usage();
      return 2;
    } else {
      stores.emplace_back(arg);
    }
  }
  if (stores.empty()) {
    usage();
    return 2;
  }
  try {
    const extension::FsckResult result = extension::run_fsck(stores, options);
    std::fputs(extension::format_fsck_result(result).c_str(), stdout);
    if (result.clean_before()) return 0;
    return result.healthy_after() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "privedit_fsck: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "privedit_fsck: %s\n", e.what());
    return 2;
  }
}
