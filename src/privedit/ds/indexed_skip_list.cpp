#include "privedit/ds/indexed_skip_list.hpp"

namespace privedit::ds {

LevelGenerator::LevelGenerator(std::uint64_t seed) : rng_(seed) {}

int LevelGenerator::next_level() {
  // Count trailing set bits of a uniform word: P(level > k) = 2^-k.
  const std::uint64_t bits = rng_.next_u64();
  int level = 1;
  while (level < kMaxLevel && (bits >> (level - 1)) & 1) ++level;
  return level;
}

}  // namespace privedit::ds
