#pragma once
// IndexedSkipList — the paper's core data structure (§V-C, Fig 3, Alg. 1).
//
// A skip list whose forward pointers are annotated with skip counts, so the
// list can be searched by *position* instead of by key. We maintain two
// parallel skip counts per pointer:
//   - element count  (how many nodes the pointer skips), and
//   - weight         (sum of node weights it skips — for the encryption
//                     schemes a node is a cipher block and its weight is the
//                     number of plaintext characters it covers).
// Find / Insert / Delete run in expected O(log n) node touches, matching the
// analysis in Pugh's original skip-list paper that §V-C appeals to.
//
// A pointer's count covers the half-open span (node, forward-target], i.e.
// it includes the destination. Pointers to the end of the list carry the
// count of all remaining nodes so the update arithmetic stays uniform.
//
// Erased nodes are parked on per-level freelists (chained through
// forward[0]) and reused by insert, so steady-state editing — where every
// region edit erases a few nodes and inserts a few back — runs without
// touching the allocator. A node carries four heap blocks (itself plus
// three level-sized vectors); reuse keeps all four.

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "privedit/util/error.hpp"
#include "privedit/util/random.hpp"

namespace privedit::ds {

/// Geometric level generator shared by all instantiations (p = 1/2).
class LevelGenerator {
 public:
  static constexpr int kMaxLevel = 30;

  explicit LevelGenerator(std::uint64_t seed);

  /// Returns a level in [1, kMaxLevel] with P(level > k) = 2^-k.
  int next_level();

 private:
  Xoshiro256 rng_;
};

template <typename T>
class IndexedSkipList {
 public:
  /// Result of a position lookup.
  struct Location {
    std::size_t element_index;  // which node (0-based)
    std::size_t offset;         // position within the node's weight span
    std::size_t start_weight;   // cumulative weight before the node
  };

  explicit IndexedSkipList(std::uint64_t seed = 0x5eed1157ULL)
      : levels_(seed), head_(new Node(T{}, 0, LevelGenerator::kMaxLevel)) {}

  ~IndexedSkipList() { clear_all(); }

  IndexedSkipList(const IndexedSkipList&) = delete;
  IndexedSkipList& operator=(const IndexedSkipList&) = delete;

  IndexedSkipList(IndexedSkipList&& other) noexcept
      : levels_(std::move(other.levels_)),
        head_(other.head_),
        size_(other.size_),
        total_weight_(other.total_weight_),
        free_(other.free_),
        free_count_(other.free_count_) {
    other.head_ = nullptr;
    other.size_ = 0;
    other.total_weight_ = 0;
    other.free_.fill(nullptr);
    other.free_count_.fill(0);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t total_weight() const { return total_weight_; }

  /// Alg. 1: finds the node containing weight-position `pos`
  /// (0 <= pos < total_weight()). Throws on out-of-range.
  Location find(std::size_t pos) const {
    if (pos >= total_weight_) {
      throw Error(ErrorCode::kInvalidArgument,
                  "IndexedSkipList::find: position out of range");
    }
    const Node* x = head_;
    std::size_t wpos = 0;  // cumulative weight through x
    std::size_t epos = 0;  // cumulative elements through x
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && wpos + x->wwidth[i] <= pos) {
        wpos += x->wwidth[i];
        epos += x->ewidth[i];
        x = x->forward[i];
      }
    }
    // x is the last node ending at or before pos; the containing node is
    // its level-0 successor.
    return Location{epos, pos - wpos, wpos};
  }

  /// Weight-position of the first character of element `index`.
  std::size_t start_weight_of(std::size_t index) const {
    check_index(index, /*allow_end=*/true);
    const Node* x = head_;
    std::size_t wpos = 0;
    std::size_t epos = 0;
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && epos + x->ewidth[i] <= index) {
        wpos += x->wwidth[i];
        epos += x->ewidth[i];
        x = x->forward[i];
      }
    }
    return wpos;
  }

  /// Value access by element index.
  const T& get(std::size_t index) const {
    return node_at(index)->value;
  }

  std::size_t weight_of(std::size_t index) const {
    return node_at(index)->weight;
  }

  /// Inserts `value` with `weight` so it becomes element `index`
  /// (0 <= index <= size()).
  void insert(std::size_t index, T value, std::size_t weight) {
    check_index(index, /*allow_end=*/true);
    Node* update[LevelGenerator::kMaxLevel];
    std::size_t erank[LevelGenerator::kMaxLevel];
    std::size_t wrank[LevelGenerator::kMaxLevel];

    Node* x = head_;
    std::size_t epos = 0, wpos = 0;
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && epos + x->ewidth[i] <= index) {
        epos += x->ewidth[i];
        wpos += x->wwidth[i];
        x = x->forward[i];
      }
      update[i] = x;
      erank[i] = epos;
      wrank[i] = wpos;
    }
    // x == predecessor: last node with rank <= index.
    const int level = levels_.next_level();
    Node* node = acquire(std::move(value), weight, level);
    for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
      if (i < level) {
        node->forward[i] = update[i]->forward[i];
        update[i]->forward[i] = node;
        // Split the covered span. The old span (update[i], old-forward]
        // counted (erank[0] - erank[i]) nodes before the insertion point.
        const std::size_t e_before = erank[0] - erank[i];
        const std::size_t w_before = wrank[0] - wrank[i];
        node->ewidth[i] = update[i]->ewidth[i] - e_before;
        node->wwidth[i] = update[i]->wwidth[i] - w_before;
        update[i]->ewidth[i] = e_before + 1;
        update[i]->wwidth[i] = w_before + weight;
      } else {
        // Span covers the new node: just grow it.
        update[i]->ewidth[i] += 1;
        update[i]->wwidth[i] += weight;
      }
    }
    ++size_;
    total_weight_ += weight;
  }

  /// Removes element `index`, returning its value.
  T erase(std::size_t index) {
    check_index(index, /*allow_end=*/false);
    Node* update[LevelGenerator::kMaxLevel];
    Node* x = head_;
    std::size_t epos = 0;
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && epos + x->ewidth[i] <= index) {
        epos += x->ewidth[i];
        x = x->forward[i];
      }
      update[i] = x;
    }
    Node* target = update[0]->forward[0];
    const std::size_t w = target->weight;
    for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
      if (i < target->level) {
        update[i]->forward[i] = target->forward[i];
        update[i]->ewidth[i] += target->ewidth[i] - 1;
        update[i]->wwidth[i] += target->wwidth[i] - w;
      } else {
        update[i]->ewidth[i] -= 1;
        update[i]->wwidth[i] -= w;
      }
    }
    T value = std::move(target->value);
    release(target);
    --size_;
    total_weight_ -= w;
    return value;
  }

  /// Mutates element `index` in place. `fn` receives a T& and returns the
  /// node's new weight; all covering skip counts are adjusted.
  void update(std::size_t index,
              const std::function<std::size_t(T&)>& fn) {
    check_index(index, /*allow_end=*/false);
    Node* path[LevelGenerator::kMaxLevel];
    Node* x = head_;
    std::size_t epos = 0;
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && epos + x->ewidth[i] <= index) {
        epos += x->ewidth[i];
        x = x->forward[i];
      }
      path[i] = x;
    }
    Node* target = path[0]->forward[0];
    const std::size_t new_weight = fn(target->value);
    if (new_weight != target->weight) {
      const std::size_t old_weight = target->weight;
      target->weight = new_weight;
      // Every span on the search path covers the target.
      for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
        path[i]->wwidth[i] += new_weight;
        path[i]->wwidth[i] -= old_weight;
      }
      total_weight_ += new_weight;
      total_weight_ -= old_weight;
    }
  }

  /// Read-only in-order traversal.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Node* x = head_->forward[0]; x != nullptr; x = x->forward[0]) {
      fn(x->value, x->weight);
    }
  }

  void clear() {
    if (head_ == nullptr) {  // moved-from
      head_ = new Node(T{}, 0, LevelGenerator::kMaxLevel);
    }
    Node* x = head_->forward[0];
    while (x != nullptr) {
      Node* next = x->forward[0];
      release(x);
      x = next;
    }
    for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
      head_->forward[i] = nullptr;
      head_->ewidth[i] = 0;
      head_->wwidth[i] = 0;
    }
    size_ = 0;
    total_weight_ = 0;
  }

  /// Nodes currently parked on the freelists (test hook).
  std::size_t free_node_count() const {
    std::size_t n = 0;
    for (const std::size_t c : free_count_) n += c;
    return n;
  }

  /// Structural invariant check (test hook): verifies that every skip count
  /// matches a level-0 recount. O(n * maxlevel).
  bool validate() const {
    std::size_t n = 0, w = 0;
    for (const Node* x = head_->forward[0]; x != nullptr; x = x->forward[0]) {
      ++n;
      w += x->weight;
    }
    if (n != size_ || w != total_weight_) return false;
    for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
      const Node* x = head_;
      while (true) {
        // Recount the span by walking level 0.
        std::size_t ecount = 0, wcount = 0;
        const Node* walker = x;
        while (walker->forward[0] != nullptr && walker->forward[0] != x->forward[i]) {
          walker = walker->forward[0];
          ++ecount;
          wcount += walker->weight;
        }
        if (x->forward[i] != nullptr) {
          if (walker->forward[0] != x->forward[i]) return false;
          ++ecount;
          wcount += x->forward[i]->weight;
        }
        if (x->ewidth[i] != ecount || x->wwidth[i] != wcount) return false;
        if (x->forward[i] == nullptr) break;
        x = x->forward[i];
      }
    }
    return true;
  }

 private:
  struct Node {
    Node(T v, std::size_t w, int lvl)
        : value(std::move(v)),
          weight(w),
          level(lvl),
          forward(static_cast<std::size_t>(lvl), nullptr),
          ewidth(static_cast<std::size_t>(lvl), 0),
          wwidth(static_cast<std::size_t>(lvl), 0) {}

    T value;
    std::size_t weight;
    int level;
    std::vector<Node*> forward;
    std::vector<std::size_t> ewidth;
    std::vector<std::size_t> wwidth;
  };

  void check_index(std::size_t index, bool allow_end) const {
    const std::size_t limit = allow_end ? size_ : (size_ == 0 ? 0 : size_ - 1);
    if (size_ == 0 && !allow_end) {
      throw Error(ErrorCode::kInvalidArgument,
                  "IndexedSkipList: index into empty list");
    }
    if (index > limit) {
      throw Error(ErrorCode::kInvalidArgument,
                  "IndexedSkipList: element index out of range");
    }
  }

  Node* node_at(std::size_t index) const {
    check_index(index, /*allow_end=*/false);
    Node* x = head_;
    std::size_t epos = 0;
    for (int i = LevelGenerator::kMaxLevel - 1; i >= 0; --i) {
      while (x->forward[i] != nullptr && epos + x->ewidth[i] <= index) {
        epos += x->ewidth[i];
        x = x->forward[i];
      }
    }
    return x->forward[0];
  }

  void clear_all() {
    if (head_ == nullptr) return;
    Node* x = head_;
    while (x != nullptr) {
      Node* next = x->forward[0];
      delete x;
      x = next;
    }
    head_ = nullptr;
    for (int i = 0; i < LevelGenerator::kMaxLevel; ++i) {
      Node* f = free_[i];
      while (f != nullptr) {
        Node* next = f->forward[0];
        delete f;
        f = next;
      }
      free_[i] = nullptr;
      free_count_[i] = 0;
    }
  }

  // Freelists are capped so a one-off giant document can't pin its node
  // memory forever; the cap is far above any steady-state edit's churn.
  static constexpr std::size_t kFreeListCap = 1024;

  Node* acquire(T&& value, std::size_t weight, int level) {
    Node*& list = free_[static_cast<std::size_t>(level) - 1];
    if (list != nullptr) {
      Node* n = list;
      list = n->forward[0];
      --free_count_[static_cast<std::size_t>(level) - 1];
      // insert() assigns forward/ewidth/wwidth for every slot below
      // `level`, so only the payload needs refreshing here.
      n->value = std::move(value);
      n->weight = weight;
      return n;
    }
    return new Node(std::move(value), weight, level);
  }

  void release(Node* n) {
    const std::size_t lvl = static_cast<std::size_t>(n->level) - 1;
    if (free_count_[lvl] >= kFreeListCap) {
      delete n;
      return;
    }
    n->value = T{};  // drop payload buffers while parked
    n->forward[0] = free_[lvl];
    free_[lvl] = n;
    ++free_count_[lvl];
  }

  LevelGenerator levels_;
  Node* head_;
  std::size_t size_ = 0;
  std::size_t total_weight_ = 0;
  std::array<Node*, LevelGenerator::kMaxLevel> free_{};
  std::array<std::size_t, LevelGenerator::kMaxLevel> free_count_{};
};

}  // namespace privedit::ds
