#pragma once
// Password-based per-document key derivation (§II, §IV-C).
//
// A document key bundle is derived from (password, per-document salt).
// Separate subkeys are carved out for the content cipher and the wide-block
// cipher so that rECB and RPC never share key material.

#include <cstdint>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

struct DocumentKeys {
  Bytes content_key;  // 16 bytes — AES-128 for rECB blocks / header
  Bytes wide_key;     // 16 bytes — WideBlock for RPC blocks
  Bytes mac_key;      // 32 bytes — HMAC for container sealing

  ~DocumentKeys();
};

struct KdfParams {
  std::uint32_t iterations = 10'000;
};

/// Derives the key bundle with PBKDF2-HMAC-SHA256 and splits it.
/// The salt must be at least 8 bytes (container format stores 16).
DocumentKeys derive_document_keys(std::string_view password, ByteView salt,
                                  const KdfParams& params = {});

}  // namespace privedit::crypto
