#include "privedit/crypto/aes_engine.hpp"

#include <cstdlib>
#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

#if PRIVEDIT_HAVE_AESNI
// FIPS-197 Appendix C.1 vector, run through the hardware backend once at
// dispatch time. A failure (broken microcode, miscompiled intrinsics)
// must demote to software, not abort: the schemes still work, just slower.
bool aesni_passes_kat() {
  static const std::uint8_t kKey[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                        0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                        0x0c, 0x0d, 0x0e, 0x0f};
  static const std::uint8_t kPlain[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55,
                                          0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
                                          0xcc, 0xdd, 0xee, 0xff};
  static const std::uint8_t kCipher[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                           0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                           0x70, 0xb4, 0xc5, 0x5a};
  try {
    Aes128Ni aes(ByteView(kKey, 16));
    std::uint8_t out[16];
    aes.encrypt_block(ByteView(kPlain, 16), out);
    if (std::memcmp(out, kCipher, 16) != 0) return false;
    aes.decrypt_block(ByteView(kCipher, 16), out);
    return std::memcmp(out, kPlain, 16) == 0;
  } catch (...) {
    return false;
  }
}

bool aesni_usable() {
  // CPUID probe and KAT are immutable per process; cache them. The env
  // override is intentionally NOT cached (tests flip it at runtime).
  static const bool usable = aesni_cpu_supported() && aesni_passes_kat();
  return usable;
}
#endif

bool aesni_env_disabled() {
  const char* v = std::getenv("PRIVEDIT_DISABLE_AESNI");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

std::string_view aes_backend_name(AesBackend backend) {
  switch (backend) {
    case AesBackend::kReference:
      return "aes128-reference";
    case AesBackend::kFast:
      return "aes128-ttable";
    case AesBackend::kAesNi:
      return "aes128-aesni";
  }
  return "unknown";
}

AesBackend Aes128Engine::dispatch_backend() {
#if PRIVEDIT_HAVE_AESNI
  if (!aesni_env_disabled() && aesni_usable()) return AesBackend::kAesNi;
#endif
  return AesBackend::kFast;
}

Aes128Engine::Aes128Engine(ByteView key)
    : Aes128Engine(key, dispatch_backend()) {}

Aes128Engine::Aes128Engine(ByteView key, AesBackend forced)
    : backend_(forced) {
  switch (backend_) {
    case AesBackend::kReference:
      ref_.emplace(key);
      return;
    case AesBackend::kFast:
      fast_.emplace(key);
      return;
    case AesBackend::kAesNi:
#if PRIVEDIT_HAVE_AESNI
      if (aesni_usable()) {
        ni_.emplace(key);
        return;
      }
#endif
      throw CryptoError("Aes128Engine: AES-NI backend unavailable");
  }
  throw CryptoError("Aes128Engine: unknown backend");
}

void Aes128Engine::encrypt_block(ByteView in, MutByteView out) const {
  switch (backend_) {
    case AesBackend::kReference:
      ref_->encrypt_block(in, out);
      return;
    case AesBackend::kFast:
      fast_->encrypt_block(in, out);
      return;
    case AesBackend::kAesNi:
#if PRIVEDIT_HAVE_AESNI
      ni_->encrypt_block(in, out);
#endif
      return;
  }
}

void Aes128Engine::decrypt_block(ByteView in, MutByteView out) const {
  switch (backend_) {
    case AesBackend::kReference:
      ref_->decrypt_block(in, out);
      return;
    case AesBackend::kFast:
      fast_->decrypt_block(in, out);
      return;
    case AesBackend::kAesNi:
#if PRIVEDIT_HAVE_AESNI
      ni_->decrypt_block(in, out);
#endif
      return;
  }
}

Bytes Aes128Engine::encrypt_block(ByteView in) const {
  Bytes out(kBlockSize);
  encrypt_block(in, out);
  return out;
}

Bytes Aes128Engine::decrypt_block_copy(ByteView in) const {
  Bytes out(kBlockSize);
  decrypt_block(in, out);
  return out;
}

void Aes128Engine::encrypt_blocks(ByteView in, MutByteView out,
                                  std::size_t n) const {
  if (in.size() != kBlockSize * n || out.size() != kBlockSize * n) {
    throw CryptoError("Aes128Engine::encrypt_blocks: buffers must be 16*n");
  }
#if PRIVEDIT_HAVE_AESNI
  if (backend_ == AesBackend::kAesNi) {
    ni_->encrypt_blocks(in, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    encrypt_block(in.subspan(16 * i, 16), out.subspan(16 * i, 16));
  }
}

void Aes128Engine::decrypt_blocks(ByteView in, MutByteView out,
                                  std::size_t n) const {
  if (in.size() != kBlockSize * n || out.size() != kBlockSize * n) {
    throw CryptoError("Aes128Engine::decrypt_blocks: buffers must be 16*n");
  }
#if PRIVEDIT_HAVE_AESNI
  if (backend_ == AesBackend::kAesNi) {
    ni_->decrypt_blocks(in, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    decrypt_block(in.subspan(16 * i, 16), out.subspan(16 * i, 16));
  }
}

void ctr128_increment(MutByteView counter) {
  if (counter.size() != 16) {
    throw CryptoError("ctr128_increment: counter must be 16 bytes");
  }
  for (int i = 15; i >= 0; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}

}  // namespace privedit::crypto
