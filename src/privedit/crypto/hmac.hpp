#pragma once
// HMAC-SHA256 (RFC 2104) and PBKDF2-HMAC-SHA256 (RFC 8018).
// Per-document keys are derived from the user's password (§II: "users
// control the security of their data using per-document passwords").

#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

/// One-shot HMAC-SHA256.
Bytes hmac_sha256(ByteView key, ByteView message);

/// PBKDF2-HMAC-SHA256. Throws CryptoError if iterations == 0 or dk_len == 0.
Bytes pbkdf2_hmac_sha256(ByteView password, ByteView salt,
                         std::uint32_t iterations, std::size_t dk_len);

}  // namespace privedit::crypto
