#include "privedit/crypto/aes_ni.hpp"

#include "privedit/util/error.hpp"

#if defined(__i386__) || defined(__x86_64__)
#include <cpuid.h>
#endif

namespace privedit::crypto {

bool aesni_cpu_supported() {
#if PRIVEDIT_HAVE_AESNI
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  // AES-NI is CPUID.1:ECX bit 25; the pipelined loads also want SSSE3
  // (bit 9), present on every AES-NI part but checked anyway.
  return (ecx & (1u << 25)) != 0 && (ecx & (1u << 9)) != 0;
#else
  return false;
#endif
}

}  // namespace privedit::crypto

#if PRIVEDIT_HAVE_AESNI

#include <cstring>
#include <wmmintrin.h>  // AESENC/AESDEC/AESIMC/AESKEYGENASSIST

namespace privedit::crypto {
namespace {

// Key-expansion step: AESKEYGENASSIST gives SubWord(RotWord(w3)) ^ Rcon in
// lane 3; fold it into the sliding XOR of the previous round key.
template <int Rcon>
inline __m128i expand_step(__m128i key) {
  __m128i t = _mm_aeskeygenassist_si128(key, Rcon);
  t = _mm_shuffle_epi32(t, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, t);
}

inline __m128i load_rk(const std::uint8_t* p) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

Aes128Ni::Aes128Ni(ByteView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("Aes128Ni: key must be 16 bytes");
  }
  __m128i rk[kRounds + 1];
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key.data()));
  rk[1] = expand_step<0x01>(rk[0]);
  rk[2] = expand_step<0x02>(rk[1]);
  rk[3] = expand_step<0x04>(rk[2]);
  rk[4] = expand_step<0x08>(rk[3]);
  rk[5] = expand_step<0x10>(rk[4]);
  rk[6] = expand_step<0x20>(rk[5]);
  rk[7] = expand_step<0x40>(rk[6]);
  rk[8] = expand_step<0x80>(rk[7]);
  rk[9] = expand_step<0x1b>(rk[8]);
  rk[10] = expand_step<0x36>(rk[9]);
  for (int i = 0; i <= kRounds; ++i) {
    _mm_store_si128(reinterpret_cast<__m128i*>(ek_.data() + 16 * i), rk[i]);
  }
  // Equivalent-inverse decryption keys: reversed order, AESIMC on the
  // inner rounds (AESDEC folds InvMixColumns into the round key domain).
  _mm_store_si128(reinterpret_cast<__m128i*>(dk_.data()), rk[kRounds]);
  for (int i = 1; i < kRounds; ++i) {
    _mm_store_si128(reinterpret_cast<__m128i*>(dk_.data() + 16 * i),
                    _mm_aesimc_si128(rk[kRounds - i]));
  }
  _mm_store_si128(reinterpret_cast<__m128i*>(dk_.data() + 16 * kRounds),
                  rk[0]);
}

Aes128Ni::~Aes128Ni() {
  secure_wipe(ek_);
  secure_wipe(dk_);
}

void Aes128Ni::encrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("Aes128Ni::encrypt_block: block must be 16 bytes");
  }
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.data()));
  s = _mm_xor_si128(s, load_rk(ek_.data()));
  for (int r = 1; r < kRounds; ++r) {
    s = _mm_aesenc_si128(s, load_rk(ek_.data() + 16 * r));
  }
  s = _mm_aesenclast_si128(s, load_rk(ek_.data() + 16 * kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
}

void Aes128Ni::decrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("Aes128Ni::decrypt_block: block must be 16 bytes");
  }
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in.data()));
  s = _mm_xor_si128(s, load_rk(dk_.data()));
  for (int r = 1; r < kRounds; ++r) {
    s = _mm_aesdec_si128(s, load_rk(dk_.data() + 16 * r));
  }
  s = _mm_aesdeclast_si128(s, load_rk(dk_.data() + 16 * kRounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), s);
}

void Aes128Ni::encrypt_blocks(ByteView in, MutByteView out,
                              std::size_t n) const {
  if (in.size() != 16 * n || out.size() != 16 * n) {
    throw CryptoError("Aes128Ni::encrypt_blocks: buffers must be 16*n bytes");
  }
  const std::uint8_t* src = in.data();
  std::uint8_t* dst = out.data();
  std::size_t i = 0;
  // 8-wide groups: AESENC has multi-cycle latency but single-cycle
  // throughput, so interleaving 8 independent states keeps the unit busy.
  for (; i + 8 <= n; i += 8, src += 128, dst += 128) {
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i rk = load_rk(ek_.data());
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(s + 0), rk);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(s + 1), rk);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(s + 2), rk);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(s + 3), rk);
    __m128i b4 = _mm_xor_si128(_mm_loadu_si128(s + 4), rk);
    __m128i b5 = _mm_xor_si128(_mm_loadu_si128(s + 5), rk);
    __m128i b6 = _mm_xor_si128(_mm_loadu_si128(s + 6), rk);
    __m128i b7 = _mm_xor_si128(_mm_loadu_si128(s + 7), rk);
    for (int r = 1; r < kRounds; ++r) {
      rk = load_rk(ek_.data() + 16 * r);
      b0 = _mm_aesenc_si128(b0, rk);
      b1 = _mm_aesenc_si128(b1, rk);
      b2 = _mm_aesenc_si128(b2, rk);
      b3 = _mm_aesenc_si128(b3, rk);
      b4 = _mm_aesenc_si128(b4, rk);
      b5 = _mm_aesenc_si128(b5, rk);
      b6 = _mm_aesenc_si128(b6, rk);
      b7 = _mm_aesenc_si128(b7, rk);
    }
    rk = load_rk(ek_.data() + 16 * kRounds);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    _mm_storeu_si128(d + 0, _mm_aesenclast_si128(b0, rk));
    _mm_storeu_si128(d + 1, _mm_aesenclast_si128(b1, rk));
    _mm_storeu_si128(d + 2, _mm_aesenclast_si128(b2, rk));
    _mm_storeu_si128(d + 3, _mm_aesenclast_si128(b3, rk));
    _mm_storeu_si128(d + 4, _mm_aesenclast_si128(b4, rk));
    _mm_storeu_si128(d + 5, _mm_aesenclast_si128(b5, rk));
    _mm_storeu_si128(d + 6, _mm_aesenclast_si128(b6, rk));
    _mm_storeu_si128(d + 7, _mm_aesenclast_si128(b7, rk));
  }
  for (; i < n; ++i, src += 16, dst += 16) {
    encrypt_block(ByteView(src, 16), MutByteView(dst, 16));
  }
}

void Aes128Ni::decrypt_blocks(ByteView in, MutByteView out,
                              std::size_t n) const {
  if (in.size() != 16 * n || out.size() != 16 * n) {
    throw CryptoError("Aes128Ni::decrypt_blocks: buffers must be 16*n bytes");
  }
  const std::uint8_t* src = in.data();
  std::uint8_t* dst = out.data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8, src += 128, dst += 128) {
    const __m128i* s = reinterpret_cast<const __m128i*>(src);
    __m128i rk = load_rk(dk_.data());
    __m128i b0 = _mm_xor_si128(_mm_loadu_si128(s + 0), rk);
    __m128i b1 = _mm_xor_si128(_mm_loadu_si128(s + 1), rk);
    __m128i b2 = _mm_xor_si128(_mm_loadu_si128(s + 2), rk);
    __m128i b3 = _mm_xor_si128(_mm_loadu_si128(s + 3), rk);
    __m128i b4 = _mm_xor_si128(_mm_loadu_si128(s + 4), rk);
    __m128i b5 = _mm_xor_si128(_mm_loadu_si128(s + 5), rk);
    __m128i b6 = _mm_xor_si128(_mm_loadu_si128(s + 6), rk);
    __m128i b7 = _mm_xor_si128(_mm_loadu_si128(s + 7), rk);
    for (int r = 1; r < kRounds; ++r) {
      rk = load_rk(dk_.data() + 16 * r);
      b0 = _mm_aesdec_si128(b0, rk);
      b1 = _mm_aesdec_si128(b1, rk);
      b2 = _mm_aesdec_si128(b2, rk);
      b3 = _mm_aesdec_si128(b3, rk);
      b4 = _mm_aesdec_si128(b4, rk);
      b5 = _mm_aesdec_si128(b5, rk);
      b6 = _mm_aesdec_si128(b6, rk);
      b7 = _mm_aesdec_si128(b7, rk);
    }
    rk = load_rk(dk_.data() + 16 * kRounds);
    __m128i* d = reinterpret_cast<__m128i*>(dst);
    _mm_storeu_si128(d + 0, _mm_aesdeclast_si128(b0, rk));
    _mm_storeu_si128(d + 1, _mm_aesdeclast_si128(b1, rk));
    _mm_storeu_si128(d + 2, _mm_aesdeclast_si128(b2, rk));
    _mm_storeu_si128(d + 3, _mm_aesdeclast_si128(b3, rk));
    _mm_storeu_si128(d + 4, _mm_aesdeclast_si128(b4, rk));
    _mm_storeu_si128(d + 5, _mm_aesdeclast_si128(b5, rk));
    _mm_storeu_si128(d + 6, _mm_aesdeclast_si128(b6, rk));
    _mm_storeu_si128(d + 7, _mm_aesdeclast_si128(b7, rk));
  }
  for (; i < n; ++i, src += 16, dst += 16) {
    decrypt_block(ByteView(src, 16), MutByteView(dst, 16));
  }
}

Bytes Aes128Ni::encrypt_block(ByteView in) const {
  Bytes out(kBlockSize);
  encrypt_block(in, out);
  return out;
}

Bytes Aes128Ni::decrypt_block_copy(ByteView in) const {
  Bytes out(kBlockSize);
  decrypt_block(in, out);
  return out;
}

}  // namespace privedit::crypto

#endif  // PRIVEDIT_HAVE_AESNI
