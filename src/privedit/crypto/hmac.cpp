#include "privedit/crypto/hmac.hpp"

#include "privedit/crypto/sha256.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {

Bytes hmac_sha256(ByteView key, ByteView message) {
  constexpr std::size_t kBlock = Sha256::kBlockSize;

  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    Bytes hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  Bytes mac = outer.finish();

  secure_wipe(k);
  secure_wipe(ipad);
  secure_wipe(opad);
  return mac;
}

Bytes pbkdf2_hmac_sha256(ByteView password, ByteView salt,
                         std::uint32_t iterations, std::size_t dk_len) {
  if (iterations == 0) {
    throw CryptoError("pbkdf2: iterations must be > 0");
  }
  if (dk_len == 0) {
    throw CryptoError("pbkdf2: dk_len must be > 0");
  }

  Bytes derived;
  derived.reserve(dk_len + Sha256::kDigestSize);
  std::uint32_t block_index = 1;
  while (derived.size() < dk_len) {
    // U1 = HMAC(password, salt || INT_BE(i))
    Bytes salted(salt.begin(), salt.end());
    salted.resize(salt.size() + 4);
    store_u32be(MutByteView(salted.data() + salt.size(), 4), block_index);

    Bytes u = hmac_sha256(password, salted);
    Bytes t = u;
    for (std::uint32_t iter = 1; iter < iterations; ++iter) {
      u = hmac_sha256(password, u);
      xor_into(t, u);
    }
    append(derived, t);
    ++block_index;
  }
  derived.resize(dk_len);
  return derived;
}

}  // namespace privedit::crypto
