#pragma once
// Aes128Ni — AES-128 on the x86 AES-NI instruction set
// (AESENC/AESDEC/AESKEYGENASSIST via compiler intrinsics).
//
// This is the hardware backend behind crypto/aes_engine.hpp: one
// round-per-instruction, with a batch path that keeps 4–8 independent
// blocks in flight so the ~4-cycle AESENC latency is hidden by the
// 1-per-cycle throughput of the unit. A typed-insert splice re-encrypts a
// run of adjacent blocks, which is exactly the shape the batch path wants.
//
// Availability is three-layered:
//   - compile time: PRIVEDIT_HAVE_AESNI is defined by CMake only when the
//     compiler accepts -maes/-mssse3 (x86 targets); on other architectures
//     this header declares nothing but the probe function.
//   - run time: aesni_cpu_supported() executes CPUID; the engine never
//     constructs an Aes128Ni on hardware without the extension.
//   - self-check: the engine runs a FIPS-197 KAT through this class once
//     at dispatch time and falls back to software if it fails.
//
// Only aes_ni.cpp is compiled with -maes; this header stays intrinsic-free
// so every other translation unit builds with the project-wide flags.

#include <array>
#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

/// True when the running CPU reports AES-NI (CPUID.1:ECX.AES[bit 25]).
/// Always false when the toolchain cannot emit the instructions.
bool aesni_cpu_supported();

#if PRIVEDIT_HAVE_AESNI

class Aes128Ni {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Expands the key with AESKEYGENASSIST. Throws CryptoError on wrong key
  /// size. Precondition: aesni_cpu_supported() — constructing on a CPU
  /// without the extension is undefined (SIGILL).
  explicit Aes128Ni(ByteView key);
  ~Aes128Ni();

  void encrypt_block(ByteView in, MutByteView out) const;
  void decrypt_block(ByteView in, MutByteView out) const;

  Bytes encrypt_block(ByteView in) const;
  Bytes decrypt_block_copy(ByteView in) const;

  /// Batch interface: `n` adjacent 16-byte blocks, `in.size() == out.size()
  /// == 16 * n`. Blocks are independent (ECB-shaped); 8 are pipelined per
  /// dispatch group. `in` and `out` may alias exactly.
  void encrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;
  void decrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;

 private:
  // 11 encryption + 11 decryption round keys, 16 bytes each, stored as raw
  // bytes so the header needs no vector types; the .cpp loads them into
  // XMM registers. 16-byte alignment allows aligned loads.
  alignas(16) std::array<std::uint8_t, 16 * (kRounds + 1)> ek_{};
  alignas(16) std::array<std::uint8_t, 16 * (kRounds + 1)> dk_{};
};

#endif  // PRIVEDIT_HAVE_AESNI

}  // namespace privedit::crypto
