#pragma once
// 32-byte (256-bit) block cipher built from AES-128 via a 4-round
// Luby–Rackoff (balanced Feistel) network.
//
// Why this exists: the paper's RPC mode encrypts tuples
// (nonce_i, d_i, nonce_{i+1}) with 64-bit nonces — up to 24+ bytes, wider
// than an AES block. Luby–Rackoff with ≥4 rounds of independent PRF keys is
// the textbook way to build a strong PRP of twice the width (the classical
// result of Luby and Rackoff, 1988). Each round function is AES-128 through
// the dispatched Aes128Engine, XORed into the opposite half.
//
// The batch interface pipelines n independent 32-byte blocks: per Feistel
// round, all n right halves go through one engine batch call, so RPC's
// region re-encryption costs 4 pipelined AES passes instead of 4n
// dependent single-block calls.

#include <array>
#include <memory>

#include "privedit/crypto/aes_engine.hpp"

namespace privedit::crypto {

class WideBlock {
 public:
  static constexpr std::size_t kBlockSize = 32;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 4;

  /// Derives the four round subkeys from a 16-byte master key.
  explicit WideBlock(ByteView key);

  /// Encrypts one 32-byte block (in == out allowed).
  void encrypt_block(ByteView in, MutByteView out) const;

  /// Decrypts one 32-byte block.
  void decrypt_block(ByteView in, MutByteView out) const;

  Bytes encrypt_block(ByteView in) const;
  Bytes decrypt_block_copy(ByteView in) const;

  /// Batch interface: `n` independent 32-byte blocks,
  /// in.size() == out.size() == 32*n; exact aliasing allowed.
  void encrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;
  void decrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;

 private:
  std::array<std::unique_ptr<Aes128Engine>, kRounds> round_;
};

}  // namespace privedit::crypto
