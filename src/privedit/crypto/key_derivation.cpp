#include "privedit/crypto/key_derivation.hpp"

#include "privedit/crypto/hmac.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {

DocumentKeys::~DocumentKeys() {
  secure_wipe(content_key);
  secure_wipe(wide_key);
  secure_wipe(mac_key);
}

DocumentKeys derive_document_keys(std::string_view password, ByteView salt,
                                  const KdfParams& params) {
  if (salt.size() < 8) {
    throw CryptoError("derive_document_keys: salt must be >= 8 bytes");
  }
  Bytes material = pbkdf2_hmac_sha256(as_bytes(password), salt,
                                      params.iterations, 16 + 16 + 32);
  DocumentKeys keys;
  keys.content_key.assign(material.begin(), material.begin() + 16);
  keys.wide_key.assign(material.begin() + 16, material.begin() + 32);
  keys.mac_key.assign(material.begin() + 32, material.end());
  secure_wipe(material);
  return keys;
}

}  // namespace privedit::crypto
