#include "privedit/crypto/wide_block.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::crypto {

WideBlock::WideBlock(ByteView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("WideBlock: key must be 16 bytes");
  }
  // Subkey i = AES_key(0^15 || i+1): independent PRF keys per round.
  Aes128 master(key);
  for (int i = 0; i < kRounds; ++i) {
    std::uint8_t in[16] = {};
    in[15] = static_cast<std::uint8_t>(i + 1);
    Bytes sub = master.encrypt_block(in);
    round_[static_cast<std::size_t>(i)] = std::make_unique<Aes128>(sub);
    secure_wipe(sub);
  }
}

void WideBlock::encrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("WideBlock::encrypt_block: block must be 32 bytes");
  }
  std::uint8_t left[16], right[16], f[16];
  std::memcpy(left, in.data(), 16);
  std::memcpy(right, in.data() + 16, 16);
  for (int r = 0; r < kRounds; ++r) {
    // (L, R) -> (R, L ^ F_r(R))
    round_[static_cast<std::size_t>(r)]->encrypt_block(right, f);
    for (int i = 0; i < 16; ++i) f[i] ^= left[i];
    std::memcpy(left, right, 16);
    std::memcpy(right, f, 16);
  }
  std::memcpy(out.data(), left, 16);
  std::memcpy(out.data() + 16, right, 16);
}

void WideBlock::decrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("WideBlock::decrypt_block: block must be 32 bytes");
  }
  std::uint8_t left[16], right[16], f[16];
  std::memcpy(left, in.data(), 16);
  std::memcpy(right, in.data() + 16, 16);
  for (int r = kRounds - 1; r >= 0; --r) {
    // inverse of (L, R) -> (R, L ^ F_r(R)):  (L', R') -> (R' ^ F_r(L'), L')
    round_[static_cast<std::size_t>(r)]->encrypt_block(left, f);
    for (int i = 0; i < 16; ++i) f[i] ^= right[i];
    std::memcpy(right, left, 16);
    std::memcpy(left, f, 16);
  }
  std::memcpy(out.data(), left, 16);
  std::memcpy(out.data() + 16, right, 16);
}

Bytes WideBlock::encrypt_block(ByteView in) const {
  Bytes out(kBlockSize);
  encrypt_block(in, out);
  return out;
}

Bytes WideBlock::decrypt_block_copy(ByteView in) const {
  Bytes out(kBlockSize);
  decrypt_block(in, out);
  return out;
}

}  // namespace privedit::crypto
