#include "privedit/crypto/wide_block.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

// Feistel halves for a batch run live in three rotating stack buffers;
// bound the run so the frame stays small (3 x 1 KiB at 64 blocks).
constexpr std::size_t kRunBlocks = 64;

}  // namespace

WideBlock::WideBlock(ByteView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("WideBlock: key must be 16 bytes");
  }
  // Subkey i = AES_key(0^15 || i+1): independent PRF keys per round.
  Aes128Engine master(key);
  for (int i = 0; i < kRounds; ++i) {
    std::uint8_t in[16] = {};
    in[15] = static_cast<std::uint8_t>(i + 1);
    Bytes sub = master.encrypt_block(ByteView(in, 16));
    round_[static_cast<std::size_t>(i)] = std::make_unique<Aes128Engine>(sub);
    secure_wipe(sub);
  }
}

void WideBlock::encrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("WideBlock::encrypt_block: block must be 32 bytes");
  }
  std::uint8_t left[16], right[16], f[16];
  std::memcpy(left, in.data(), 16);
  std::memcpy(right, in.data() + 16, 16);
  for (int r = 0; r < kRounds; ++r) {
    // (L, R) -> (R, L ^ F_r(R))
    round_[static_cast<std::size_t>(r)]->encrypt_block(right, f);
    for (int i = 0; i < 16; ++i) f[i] ^= left[i];
    std::memcpy(left, right, 16);
    std::memcpy(right, f, 16);
  }
  std::memcpy(out.data(), left, 16);
  std::memcpy(out.data() + 16, right, 16);
}

void WideBlock::decrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("WideBlock::decrypt_block: block must be 32 bytes");
  }
  std::uint8_t left[16], right[16], f[16];
  std::memcpy(left, in.data(), 16);
  std::memcpy(right, in.data() + 16, 16);
  for (int r = kRounds - 1; r >= 0; --r) {
    // inverse of (L, R) -> (R, L ^ F_r(R)):  (L', R') -> (R' ^ F_r(L'), L')
    round_[static_cast<std::size_t>(r)]->encrypt_block(left, f);
    for (int i = 0; i < 16; ++i) f[i] ^= right[i];
    std::memcpy(right, left, 16);
    std::memcpy(left, f, 16);
  }
  std::memcpy(out.data(), left, 16);
  std::memcpy(out.data() + 16, right, 16);
}

void WideBlock::encrypt_blocks(ByteView in, MutByteView out,
                               std::size_t n) const {
  if (in.size() != kBlockSize * n || out.size() != kBlockSize * n) {
    throw CryptoError("WideBlock::encrypt_blocks: buffers must be 32*n");
  }
  std::uint8_t buf_a[16 * kRunBlocks], buf_b[16 * kRunBlocks],
      buf_c[16 * kRunBlocks];
  std::size_t touched = 0;  // wipe only the prefix a run actually used
  for (std::size_t done = 0; done < n;) {
    const std::size_t run = std::min(kRunBlocks, n - done);
    touched = std::max(touched, 16 * run);
    const std::uint8_t* src = in.data() + 32 * done;
    std::uint8_t* left = buf_a;
    std::uint8_t* right = buf_b;
    std::uint8_t* f = buf_c;
    for (std::size_t i = 0; i < run; ++i) {
      std::memcpy(left + 16 * i, src + 32 * i, 16);
      std::memcpy(right + 16 * i, src + 32 * i + 16, 16);
    }
    for (int r = 0; r < kRounds; ++r) {
      // All n right halves through one pipelined AES pass.
      round_[static_cast<std::size_t>(r)]->encrypt_blocks(
          ByteView(right, 16 * run), MutByteView(f, 16 * run), run);
      for (std::size_t i = 0; i < 16 * run; ++i) f[i] ^= left[i];
      std::uint8_t* spare = left;  // (L, R) -> (R, L ^ F_r(R))
      left = right;
      right = f;
      f = spare;
    }
    std::uint8_t* dst = out.data() + 32 * done;
    for (std::size_t i = 0; i < run; ++i) {
      std::memcpy(dst + 32 * i, left + 16 * i, 16);
      std::memcpy(dst + 32 * i + 16, right + 16 * i, 16);
    }
    done += run;
  }
  secure_wipe(MutByteView(buf_a, touched));
  secure_wipe(MutByteView(buf_b, touched));
  secure_wipe(MutByteView(buf_c, touched));
}

void WideBlock::decrypt_blocks(ByteView in, MutByteView out,
                               std::size_t n) const {
  if (in.size() != kBlockSize * n || out.size() != kBlockSize * n) {
    throw CryptoError("WideBlock::decrypt_blocks: buffers must be 32*n");
  }
  std::uint8_t buf_a[16 * kRunBlocks], buf_b[16 * kRunBlocks],
      buf_c[16 * kRunBlocks];
  std::size_t touched = 0;
  for (std::size_t done = 0; done < n;) {
    const std::size_t run = std::min(kRunBlocks, n - done);
    touched = std::max(touched, 16 * run);
    const std::uint8_t* src = in.data() + 32 * done;
    std::uint8_t* left = buf_a;
    std::uint8_t* right = buf_b;
    std::uint8_t* f = buf_c;
    for (std::size_t i = 0; i < run; ++i) {
      std::memcpy(left + 16 * i, src + 32 * i, 16);
      std::memcpy(right + 16 * i, src + 32 * i + 16, 16);
    }
    for (int r = kRounds - 1; r >= 0; --r) {
      round_[static_cast<std::size_t>(r)]->encrypt_blocks(
          ByteView(left, 16 * run), MutByteView(f, 16 * run), run);
      for (std::size_t i = 0; i < 16 * run; ++i) f[i] ^= right[i];
      std::uint8_t* spare = right;  // (L', R') -> (R' ^ F_r(L'), L')
      right = left;
      left = f;
      f = spare;
    }
    std::uint8_t* dst = out.data() + 32 * done;
    for (std::size_t i = 0; i < run; ++i) {
      std::memcpy(dst + 32 * i, left + 16 * i, 16);
      std::memcpy(dst + 32 * i + 16, right + 16 * i, 16);
    }
    done += run;
  }
  secure_wipe(MutByteView(buf_a, touched));
  secure_wipe(MutByteView(buf_b, touched));
  secure_wipe(MutByteView(buf_c, touched));
}

Bytes WideBlock::encrypt_block(ByteView in) const {
  Bytes out(kBlockSize);
  encrypt_block(in, out);
  return out;
}

Bytes WideBlock::decrypt_block_copy(ByteView in) const {
  Bytes out(kBlockSize);
  decrypt_block(in, out);
  return out;
}

}  // namespace privedit::crypto
