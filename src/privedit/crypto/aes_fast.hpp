#pragma once
// Aes128Fast — T-table AES-128, the classic software optimisation
// (Daemen–Rijmen reference code lineage): SubBytes/ShiftRows/MixColumns are
// folded into four 1 KiB lookup tables per direction, one 32-bit lookup
// and XOR per state byte per round.
//
// Performance was the paper's central constraint (§V, §VII); this variant
// quantifies how much a production cipher implementation moves the
// bulk-crypto numbers relative to crypto/aes.hpp's straightforward
// byte-wise code (see bench/ciphers). Tables are key-independent, built
// once. The classic caveat applies: T-table lookups are not constant-time
// with respect to cache state; the threat model here (malicious *server*)
// does not include a local cache-timing attacker, same as for Aes128.

#include <array>
#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

class Aes128Fast {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit Aes128Fast(ByteView key);
  ~Aes128Fast();

  void encrypt_block(ByteView in, MutByteView out) const;
  void decrypt_block(ByteView in, MutByteView out) const;

  Bytes encrypt_block(ByteView in) const;
  Bytes decrypt_block_copy(ByteView in) const;

 private:
  // Round keys as 32-bit big-endian words (4 per round).
  std::array<std::uint32_t, 4 * (kRounds + 1)> ek_{};
  // Decryption round keys (InvMixColumns-transformed, equivalent-inverse).
  std::array<std::uint32_t, 4 * (kRounds + 1)> dk_{};
};

}  // namespace privedit::crypto
