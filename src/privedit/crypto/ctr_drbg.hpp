#pragma once
// AES-128 CTR-mode deterministic random bit generator (simplified
// NIST SP 800-90A CTR_DRBG without derivation function). This is the
// cryptographic nonce source for the encryption schemes: nonces r_i must be
// unpredictable to the server (§VI-A), so a non-crypto PRNG is not enough.
//
// The block cipher is the dispatched Aes128Engine, and the keystream is
// produced through the batch interface: fill() stages a run of successive
// counter values and encrypts them in one call, so a region re-encryption
// that needs n nonces costs one pipelined AES pass instead of n dependent
// single-block calls. The output stream is byte-identical to the original
// block-at-a-time implementation (pinned by tests/crypto_test.cpp) — only
// the schedule of AES invocations changed.

#include <array>
#include <cstdint>
#include <memory>

#include "privedit/crypto/aes_engine.hpp"
#include "privedit/util/random.hpp"

namespace privedit::crypto {

class CtrDrbg final : public RandomSource {
 public:
  static constexpr std::size_t kSeedLen = 32;  // key (16) + V (16)

  /// Instantiates from 32 bytes of seed material.
  explicit CtrDrbg(ByteView seed_material);

  /// Instantiates from the OS entropy pool.
  static std::unique_ptr<CtrDrbg> from_os_entropy();

  /// Deterministic instantiation for tests/benches: expands a 64-bit seed.
  static std::unique_ptr<CtrDrbg> from_seed(std::uint64_t seed);

  void fill(MutByteView out) override;

  /// Mixes fresh seed material into the state.
  void reseed(ByteView seed_material);

 private:
  void update(ByteView provided);  // SP 800-90A CTR_DRBG_Update

  /// Writes ceil(out.size()/16) encrypted successive counter blocks into
  /// `out` through the engine batch path, advancing v_.
  void generate(MutByteView out);

  std::array<std::uint8_t, 16> key_{};
  std::array<std::uint8_t, 16> v_{};
  std::optional<Aes128Engine> cipher_;
  std::uint64_t reseed_counter_ = 0;
};

}  // namespace privedit::crypto
