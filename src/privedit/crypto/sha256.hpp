#pragma once
// SHA-256 (FIPS 180-4), from scratch. Used by HMAC/PBKDF2 for password-based
// key derivation and by the cloud servers' content hashing.

#include <array>
#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input; may be called any number of times.
  void update(ByteView data);

  /// Finalises and returns the 32-byte digest. The object may not be
  /// updated afterwards (reset with *this = Sha256()).
  Bytes finish();

  /// One-shot convenience.
  static Bytes hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace privedit::crypto
