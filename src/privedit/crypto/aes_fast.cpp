#include "privedit/crypto/aes_fast.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// Encryption tables: Te[i][x] is MixColumns ∘ SubBytes contribution of a
// byte at row i. Te0[x] = (2s, s, s, 3s) packed big-endian; Te1..Te3 are
// byte rotations. Decryption tables Td* likewise from InvSubBytes and
// InvMixColumns. Td4 is the plain inverse S-box for the last round.
struct Tables {
  std::uint32_t te[4][256];
  std::uint32_t td[4][256];
  std::uint8_t inv_sbox[256];

  Tables() {
    for (int x = 0; x < 256; ++x) {
      inv_sbox[kSbox[x]] = static_cast<std::uint8_t>(x);
    }
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t s = kSbox[x];
      const std::uint32_t t =
          (static_cast<std::uint32_t>(gmul(s, 2)) << 24) |
          (static_cast<std::uint32_t>(s) << 16) |
          (static_cast<std::uint32_t>(s) << 8) |
          static_cast<std::uint32_t>(gmul(s, 3));
      te[0][x] = t;
      te[1][x] = (t >> 8) | (t << 24);
      te[2][x] = (t >> 16) | (t << 16);
      te[3][x] = (t >> 24) | (t << 8);

      const std::uint8_t is = inv_sbox[x];
      const std::uint32_t u =
          (static_cast<std::uint32_t>(gmul(is, 14)) << 24) |
          (static_cast<std::uint32_t>(gmul(is, 9)) << 16) |
          (static_cast<std::uint32_t>(gmul(is, 13)) << 8) |
          static_cast<std::uint32_t>(gmul(is, 11));
      td[0][x] = u;
      td[1][x] = (u >> 8) | (u << 24);
      td[2][x] = (u >> 16) | (u << 16);
      td[3][x] = (u >> 24) | (u << 8);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t load_be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t sub_word(std::uint32_t w) {
  return (static_cast<std::uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         static_cast<std::uint32_t>(kSbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns of a round-key word, via the Td/Te identity:
// Td0[Sbox[b]] applies InvMixColumns to b after undoing nothing — the
// standard equivalent-inverse key transform.
std::uint32_t inv_mix_word(std::uint32_t w) {
  const Tables& t = tables();
  return t.td[0][kSbox[(w >> 24) & 0xff]] ^
         t.td[1][kSbox[(w >> 16) & 0xff]] ^
         t.td[2][kSbox[(w >> 8) & 0xff]] ^ t.td[3][kSbox[w & 0xff]];
}

}  // namespace

Aes128Fast::Aes128Fast(ByteView key) {
  if (key.size() != kKeySize) {
    throw CryptoError("Aes128Fast: key must be 16 bytes");
  }
  for (int i = 0; i < 4; ++i) {
    ek_[static_cast<std::size_t>(i)] = load_be(key.data() + 4 * i);
  }
  for (int i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint32_t temp = ek_[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(kRcon[i / 4]) << 24);
    }
    ek_[static_cast<std::size_t>(i)] =
        ek_[static_cast<std::size_t>(i - 4)] ^ temp;
  }
  // Equivalent-inverse decryption keys: reverse round order, InvMixColumns
  // on the inner rounds.
  for (int round = 0; round <= kRounds; ++round) {
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t w =
          ek_[static_cast<std::size_t>(4 * (kRounds - round) + i)];
      dk_[static_cast<std::size_t>(4 * round + i)] =
          (round == 0 || round == kRounds) ? w : inv_mix_word(w);
    }
  }
}

Aes128Fast::~Aes128Fast() {
  secure_wipe(MutByteView(reinterpret_cast<std::uint8_t*>(ek_.data()),
                          ek_.size() * 4));
  secure_wipe(MutByteView(reinterpret_cast<std::uint8_t*>(dk_.data()),
                          dk_.size() * 4));
}

void Aes128Fast::encrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("Aes128Fast::encrypt_block: block must be 16 bytes");
  }
  const Tables& t = tables();
  std::uint32_t s0 = load_be(in.data()) ^ ek_[0];
  std::uint32_t s1 = load_be(in.data() + 4) ^ ek_[1];
  std::uint32_t s2 = load_be(in.data() + 8) ^ ek_[2];
  std::uint32_t s3 = load_be(in.data() + 12) ^ ek_[3];

  for (int round = 1; round < kRounds; ++round) {
    const std::uint32_t* rk = &ek_[static_cast<std::size_t>(4 * round)];
    const std::uint32_t u0 = t.te[0][(s0 >> 24) & 0xff] ^
                             t.te[1][(s1 >> 16) & 0xff] ^
                             t.te[2][(s2 >> 8) & 0xff] ^
                             t.te[3][s3 & 0xff] ^ rk[0];
    const std::uint32_t u1 = t.te[0][(s1 >> 24) & 0xff] ^
                             t.te[1][(s2 >> 16) & 0xff] ^
                             t.te[2][(s3 >> 8) & 0xff] ^
                             t.te[3][s0 & 0xff] ^ rk[1];
    const std::uint32_t u2 = t.te[0][(s2 >> 24) & 0xff] ^
                             t.te[1][(s3 >> 16) & 0xff] ^
                             t.te[2][(s0 >> 8) & 0xff] ^
                             t.te[3][s1 & 0xff] ^ rk[2];
    const std::uint32_t u3 = t.te[0][(s3 >> 24) & 0xff] ^
                             t.te[1][(s0 >> 16) & 0xff] ^
                             t.te[2][(s1 >> 8) & 0xff] ^
                             t.te[3][s2 & 0xff] ^ rk[3];
    s0 = u0;
    s1 = u1;
    s2 = u2;
    s3 = u3;
  }

  // Final round: SubBytes + ShiftRows only.
  const std::uint32_t* rk = &ek_[static_cast<std::size_t>(4 * kRounds)];
  const auto sb = [](std::uint8_t b) {
    return static_cast<std::uint32_t>(kSbox[b]);
  };
  const std::uint32_t r0 =
      ((sb((s0 >> 24) & 0xff) << 24) | (sb((s1 >> 16) & 0xff) << 16) |
       (sb((s2 >> 8) & 0xff) << 8) | sb(s3 & 0xff)) ^
      rk[0];
  const std::uint32_t r1 =
      ((sb((s1 >> 24) & 0xff) << 24) | (sb((s2 >> 16) & 0xff) << 16) |
       (sb((s3 >> 8) & 0xff) << 8) | sb(s0 & 0xff)) ^
      rk[1];
  const std::uint32_t r2 =
      ((sb((s2 >> 24) & 0xff) << 24) | (sb((s3 >> 16) & 0xff) << 16) |
       (sb((s0 >> 8) & 0xff) << 8) | sb(s1 & 0xff)) ^
      rk[2];
  const std::uint32_t r3 =
      ((sb((s3 >> 24) & 0xff) << 24) | (sb((s0 >> 16) & 0xff) << 16) |
       (sb((s1 >> 8) & 0xff) << 8) | sb(s2 & 0xff)) ^
      rk[3];
  store_be(out.data(), r0);
  store_be(out.data() + 4, r1);
  store_be(out.data() + 8, r2);
  store_be(out.data() + 12, r3);
}

void Aes128Fast::decrypt_block(ByteView in, MutByteView out) const {
  if (in.size() != kBlockSize || out.size() != kBlockSize) {
    throw CryptoError("Aes128Fast::decrypt_block: block must be 16 bytes");
  }
  const Tables& t = tables();
  std::uint32_t s0 = load_be(in.data()) ^ dk_[0];
  std::uint32_t s1 = load_be(in.data() + 4) ^ dk_[1];
  std::uint32_t s2 = load_be(in.data() + 8) ^ dk_[2];
  std::uint32_t s3 = load_be(in.data() + 12) ^ dk_[3];

  for (int round = 1; round < kRounds; ++round) {
    const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * round)];
    const std::uint32_t u0 = t.td[0][(s0 >> 24) & 0xff] ^
                             t.td[1][(s3 >> 16) & 0xff] ^
                             t.td[2][(s2 >> 8) & 0xff] ^
                             t.td[3][s1 & 0xff] ^ rk[0];
    const std::uint32_t u1 = t.td[0][(s1 >> 24) & 0xff] ^
                             t.td[1][(s0 >> 16) & 0xff] ^
                             t.td[2][(s3 >> 8) & 0xff] ^
                             t.td[3][s2 & 0xff] ^ rk[1];
    const std::uint32_t u2 = t.td[0][(s2 >> 24) & 0xff] ^
                             t.td[1][(s1 >> 16) & 0xff] ^
                             t.td[2][(s0 >> 8) & 0xff] ^
                             t.td[3][s3 & 0xff] ^ rk[2];
    const std::uint32_t u3 = t.td[0][(s3 >> 24) & 0xff] ^
                             t.td[1][(s2 >> 16) & 0xff] ^
                             t.td[2][(s1 >> 8) & 0xff] ^
                             t.td[3][s0 & 0xff] ^ rk[3];
    s0 = u0;
    s1 = u1;
    s2 = u2;
    s3 = u3;
  }

  const std::uint32_t* rk = &dk_[static_cast<std::size_t>(4 * kRounds)];
  const auto isb = [&t](std::uint8_t b) {
    return static_cast<std::uint32_t>(t.inv_sbox[b]);
  };
  const std::uint32_t r0 =
      ((isb((s0 >> 24) & 0xff) << 24) | (isb((s3 >> 16) & 0xff) << 16) |
       (isb((s2 >> 8) & 0xff) << 8) | isb(s1 & 0xff)) ^
      rk[0];
  const std::uint32_t r1 =
      ((isb((s1 >> 24) & 0xff) << 24) | (isb((s0 >> 16) & 0xff) << 16) |
       (isb((s3 >> 8) & 0xff) << 8) | isb(s2 & 0xff)) ^
      rk[1];
  const std::uint32_t r2 =
      ((isb((s2 >> 24) & 0xff) << 24) | (isb((s1 >> 16) & 0xff) << 16) |
       (isb((s0 >> 8) & 0xff) << 8) | isb(s3 & 0xff)) ^
      rk[2];
  const std::uint32_t r3 =
      ((isb((s3 >> 24) & 0xff) << 24) | (isb((s2 >> 16) & 0xff) << 16) |
       (isb((s1 >> 8) & 0xff) << 8) | isb(s0 & 0xff)) ^
      rk[3];
  store_be(out.data(), r0);
  store_be(out.data() + 4, r1);
  store_be(out.data() + 8, r2);
  store_be(out.data() + 12, r3);
}

Bytes Aes128Fast::encrypt_block(ByteView in) const {
  Bytes out(kBlockSize);
  encrypt_block(in, out);
  return out;
}

Bytes Aes128Fast::decrypt_block_copy(ByteView in) const {
  Bytes out(kBlockSize);
  decrypt_block(in, out);
  return out;
}

}  // namespace privedit::crypto
