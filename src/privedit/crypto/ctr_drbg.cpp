#include "privedit/crypto/ctr_drbg.hpp"

#include <cstring>

#include "privedit/crypto/sha256.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

// Keystream is generated in bounded stack-resident runs: enough blocks to
// saturate the AES-NI pipeline, small enough to stay allocation-free.
constexpr std::size_t kRunBlocks = 64;

}  // namespace

CtrDrbg::CtrDrbg(ByteView seed_material) {
  if (seed_material.size() != kSeedLen) {
    throw CryptoError("CtrDrbg: seed material must be 32 bytes");
  }
  cipher_.emplace(ByteView(key_.data(), key_.size()));
  update(seed_material);
  reseed_counter_ = 1;
}

std::unique_ptr<CtrDrbg> CtrDrbg::from_os_entropy() {
  OsEntropy os;
  Bytes seed = os.bytes(kSeedLen);
  auto drbg = std::make_unique<CtrDrbg>(seed);
  secure_wipe(seed);
  return drbg;
}

std::unique_ptr<CtrDrbg> CtrDrbg::from_seed(std::uint64_t seed) {
  std::uint8_t raw[8];
  store_u64be(raw, seed);
  Bytes material = Sha256::hash(raw);  // 32 bytes, deterministic
  return std::make_unique<CtrDrbg>(material);
}

void CtrDrbg::generate(MutByteView out) {
  // Stage successive counter values, then encrypt the whole run in one
  // batch call. Matches the legacy increment-then-encrypt-per-block
  // stream exactly.
  alignas(16) std::uint8_t counters[16 * kRunBlocks];
  std::size_t touched = 0;  // wipe only the prefix a run actually staged
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::size_t remaining = out.size() - produced;
    const std::size_t blocks =
        std::min(kRunBlocks, (remaining + 15) / 16);
    for (std::size_t b = 0; b < blocks; ++b) {
      ctr128_increment(v_);
      std::memcpy(counters + 16 * b, v_.data(), 16);
    }
    touched = std::max(touched, 16 * blocks);
    const std::size_t full = std::min(remaining / 16, blocks);
    if (full > 0) {
      // Full blocks encrypt straight into the caller's buffer.
      cipher_->encrypt_blocks(ByteView(counters, 16 * full),
                              out.subspan(produced, 16 * full), full);
      produced += 16 * full;
    }
    if (full < blocks) {
      // Final partial block: encrypt in place, copy the prefix.
      cipher_->encrypt_blocks(ByteView(counters + 16 * full, 16),
                              MutByteView(counters + 16 * full, 16), 1);
      const std::size_t take = out.size() - produced;
      std::memcpy(out.data() + produced, counters + 16 * full, take);
      produced += take;
    }
  }
  secure_wipe(MutByteView(counters, touched));
}

void CtrDrbg::update(ByteView provided) {
  std::array<std::uint8_t, kSeedLen> temp{};
  generate(temp);
  if (!provided.empty()) {
    if (provided.size() != kSeedLen) {
      throw CryptoError("CtrDrbg::update: provided data must be 32 bytes");
    }
    for (std::size_t i = 0; i < kSeedLen; ++i) temp[i] ^= provided[i];
  }
  std::memcpy(key_.data(), temp.data(), 16);
  std::memcpy(v_.data(), temp.data() + 16, 16);
  cipher_.emplace(ByteView(key_.data(), key_.size()));
  secure_wipe(temp);
}

void CtrDrbg::reseed(ByteView seed_material) {
  update(seed_material);
  reseed_counter_ = 1;
}

void CtrDrbg::fill(MutByteView out) {
  generate(out);
  update({});
  ++reseed_counter_;
}

}  // namespace privedit::crypto
