#include "privedit/crypto/ctr_drbg.hpp"

#include <cstring>

#include "privedit/crypto/sha256.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {

CtrDrbg::CtrDrbg(ByteView seed_material) {
  if (seed_material.size() != kSeedLen) {
    throw CryptoError("CtrDrbg: seed material must be 32 bytes");
  }
  cipher_ = std::make_unique<Aes128>(ByteView(key_.data(), key_.size()));
  update(seed_material);
  reseed_counter_ = 1;
}

std::unique_ptr<CtrDrbg> CtrDrbg::from_os_entropy() {
  OsEntropy os;
  Bytes seed = os.bytes(kSeedLen);
  auto drbg = std::make_unique<CtrDrbg>(seed);
  secure_wipe(seed);
  return drbg;
}

std::unique_ptr<CtrDrbg> CtrDrbg::from_seed(std::uint64_t seed) {
  std::uint8_t raw[8];
  store_u64be(raw, seed);
  Bytes material = Sha256::hash(raw);  // 32 bytes, deterministic
  return std::make_unique<CtrDrbg>(material);
}

void CtrDrbg::increment_counter() {
  for (int i = 15; i >= 0; --i) {
    if (++v_[static_cast<std::size_t>(i)] != 0) break;
  }
}

void CtrDrbg::update(ByteView provided) {
  std::array<std::uint8_t, kSeedLen> temp{};
  for (std::size_t off = 0; off < kSeedLen; off += 16) {
    increment_counter();
    cipher_->encrypt_block(ByteView(v_.data(), 16),
                           MutByteView(temp.data() + off, 16));
  }
  if (!provided.empty()) {
    if (provided.size() != kSeedLen) {
      throw CryptoError("CtrDrbg::update: provided data must be 32 bytes");
    }
    for (std::size_t i = 0; i < kSeedLen; ++i) temp[i] ^= provided[i];
  }
  std::memcpy(key_.data(), temp.data(), 16);
  std::memcpy(v_.data(), temp.data() + 16, 16);
  cipher_ = std::make_unique<Aes128>(ByteView(key_.data(), key_.size()));
  secure_wipe(temp);
}

void CtrDrbg::reseed(ByteView seed_material) {
  update(seed_material);
  reseed_counter_ = 1;
}

void CtrDrbg::fill(MutByteView out) {
  std::size_t produced = 0;
  std::uint8_t block[16];
  while (produced < out.size()) {
    increment_counter();
    cipher_->encrypt_block(ByteView(v_.data(), 16), block);
    const std::size_t take = std::min<std::size_t>(16, out.size() - produced);
    std::memcpy(out.data() + produced, block, take);
    produced += take;
  }
  update({});
  ++reseed_counter_;
  secure_wipe(block);
}

}  // namespace privedit::crypto
