#include "privedit/crypto/inc_mac.hpp"

#include "privedit/crypto/hmac.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

Bytes index_prefix(std::size_t index) {
  Bytes out(8);
  store_u64be(out, index);
  return out;
}

}  // namespace

// ----------------------------------------------------------------- XorIncMac

XorIncMac::XorIncMac(ByteView key) : key_(key.begin(), key.end()) {
  if (key.empty()) {
    throw CryptoError("XorIncMac: empty key");
  }
}

Bytes XorIncMac::term(std::size_t index, ByteView block) const {
  return hmac_sha256(key_, concat(index_prefix(index), block));
}

Bytes XorIncMac::tag(const std::vector<Bytes>& blocks) const {
  Bytes acc(kTagSize, 0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    xor_into(acc, term(i, blocks[i]));
  }
  return acc;
}

Bytes XorIncMac::update_replace(ByteView current_tag, std::size_t index,
                                ByteView old_block,
                                ByteView new_block) const {
  if (current_tag.size() != kTagSize) {
    throw CryptoError("XorIncMac: bad tag size");
  }
  Bytes updated(current_tag.begin(), current_tag.end());
  xor_into(updated, term(index, old_block));
  xor_into(updated, term(index, new_block));
  return updated;
}

bool XorIncMac::verify(const std::vector<Bytes>& blocks,
                       ByteView candidate) const {
  return ct_equal(tag(blocks), candidate);
}

// ---------------------------------------------------------------- TreeIncMac

TreeIncMac::TreeIncMac(ByteView key, const std::vector<Bytes>& blocks)
    : key_(key.begin(), key.end()) {
  if (key.empty()) {
    throw CryptoError("TreeIncMac: empty key");
  }
  leaf_count_ = blocks.size();
  levels_.emplace_back();
  levels_[0].reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    levels_[0].push_back(leaf_hash(i, blocks[i]));
  }
  // Build internal levels; odd nodes are promoted unchanged.
  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& below = levels_.back();
    std::vector<Bytes> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      if (i + 1 < below.size()) {
        above.push_back(node_hash(below[i], below[i + 1]));
      } else {
        above.push_back(below[i]);
      }
    }
    levels_.push_back(std::move(above));
  }
  root_ = finalize(levels_.empty() || levels_.back().empty()
                       ? ByteView{}
                       : ByteView(levels_.back()[0]));
}

Bytes TreeIncMac::leaf_hash(std::size_t index, ByteView block) const {
  Bytes material = concat(Bytes{0x00}, index_prefix(index), block);
  return hmac_sha256(key_, material);
}

Bytes TreeIncMac::node_hash(ByteView left, ByteView right) const {
  return hmac_sha256(key_, concat(Bytes{0x01}, left, right));
}

Bytes TreeIncMac::finalize(ByteView top) const {
  // Bind the leaf count so truncation/extension changes the root.
  return hmac_sha256(key_, concat(Bytes{0x02}, index_prefix(leaf_count_), top));
}

void TreeIncMac::replace(std::size_t index, ByteView new_block) {
  if (index >= leaf_count_) {
    throw Error(ErrorCode::kInvalidArgument, "TreeIncMac: index out of range");
  }
  levels_[0][index] = leaf_hash(index, new_block);
  rebuild_from(index);
}

void TreeIncMac::rebuild_from(std::size_t leaf) {
  std::size_t pos = leaf;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Bytes>& below = levels_[level];
    const std::size_t parent = pos / 2;
    const std::size_t left = parent * 2;
    if (left + 1 < below.size()) {
      levels_[level + 1][parent] = node_hash(below[left], below[left + 1]);
    } else {
      levels_[level + 1][parent] = below[left];
    }
    pos = parent;
  }
  root_ = finalize(levels_.back().empty() ? ByteView{}
                                          : ByteView(levels_.back()[0]));
}

Bytes TreeIncMac::compute_root(ByteView key,
                               const std::vector<Bytes>& blocks) {
  return TreeIncMac(key, blocks).root();
}

bool TreeIncMac::verify(ByteView key, const std::vector<Bytes>& blocks,
                        ByteView candidate) {
  return ct_equal(compute_root(key, blocks), candidate);
}

}  // namespace privedit::crypto
