#include "privedit/crypto/inc_mac.hpp"

#include <cstring>

#include "privedit/crypto/hmac.hpp"
#include "privedit/util/error.hpp"

namespace privedit::crypto {
namespace {

Bytes index_prefix(std::size_t index) {
  Bytes out(8);
  store_u64be(out, index);
  return out;
}

// GF(2^128) doubling for CMAC subkey derivation (SP 800-38B §6.1).
void cmac_double(std::uint8_t out[16], const std::uint8_t in[16]) {
  const bool msb = (in[0] & 0x80) != 0;
  for (int i = 0; i < 15; ++i) {
    out[i] = static_cast<std::uint8_t>((in[i] << 1) | (in[i + 1] >> 7));
  }
  out[15] = static_cast<std::uint8_t>(in[15] << 1);
  if (msb) out[15] ^= 0x87;
}

}  // namespace

// ----------------------------------------------------------------- XorIncMac

XorIncMac::XorIncMac(ByteView key, PrfKind prf)
    : key_(key.begin(), key.end()), prf_(prf) {
  if (key.empty()) {
    throw CryptoError("XorIncMac: empty key");
  }
  if (prf_ == PrfKind::kAesCmac) {
    if (key.size() != Aes128Engine::kKeySize) {
      throw CryptoError("XorIncMac: AES-CMAC needs a 16-byte key");
    }
    aes_.emplace(key);
    std::uint8_t l[16] = {};
    aes_->encrypt_block(ByteView(l, 16), MutByteView(l, 16));
    cmac_double(k1_.data(), l);
    cmac_double(k2_.data(), k1_.data());
    secure_wipe(MutByteView(l, 16));
  }
}

Bytes XorIncMac::cmac(ByteView prefix, ByteView message) const {
  // CBC-MAC over prefix ‖ message with the final block masked by K1/K2.
  std::uint8_t x[16] = {};
  std::uint8_t block[16];
  const std::size_t total = prefix.size() + message.size();
  auto byte_at = [&](std::size_t i) {
    return i < prefix.size() ? prefix[i] : message[i - prefix.size()];
  };
  std::size_t pos = 0;
  // All blocks before the last one.
  while (total - pos > 16) {
    for (int i = 0; i < 16; ++i) {
      x[i] = static_cast<std::uint8_t>(x[i] ^ byte_at(pos + static_cast<std::size_t>(i)));
    }
    aes_->encrypt_block(ByteView(x, 16), MutByteView(x, 16));
    pos += 16;
  }
  const std::size_t last = total - pos;
  if (last == 16) {
    for (std::size_t i = 0; i < 16; ++i) block[i] = byte_at(pos + i);
    for (int i = 0; i < 16; ++i) block[i] ^= k1_[static_cast<std::size_t>(i)];
  } else {
    std::memset(block, 0, 16);
    for (std::size_t i = 0; i < last; ++i) block[i] = byte_at(pos + i);
    block[last] = 0x80;
    for (int i = 0; i < 16; ++i) block[i] ^= k2_[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 16; ++i) x[i] ^= block[i];
  aes_->encrypt_block(ByteView(x, 16), MutByteView(x, 16));
  return Bytes(x, x + 16);
}

Bytes XorIncMac::term(std::size_t index, ByteView block) const {
  const Bytes prefix = index_prefix(index);
  if (prf_ == PrfKind::kAesCmac) {
    return cmac(prefix, block);
  }
  return hmac_sha256(key_, concat(prefix, block));
}

Bytes XorIncMac::tag(const std::vector<Bytes>& blocks) const {
  Bytes acc(tag_size(), 0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    xor_into(acc, term(i, blocks[i]));
  }
  return acc;
}

Bytes XorIncMac::update_replace(ByteView current_tag, std::size_t index,
                                ByteView old_block,
                                ByteView new_block) const {
  if (current_tag.size() != tag_size()) {
    throw CryptoError("XorIncMac: bad tag size");
  }
  Bytes updated(current_tag.begin(), current_tag.end());
  xor_into(updated, term(index, old_block));
  xor_into(updated, term(index, new_block));
  return updated;
}

bool XorIncMac::verify(const std::vector<Bytes>& blocks,
                       ByteView candidate) const {
  return ct_equal(tag(blocks), candidate);
}

// ---------------------------------------------------------------- TreeIncMac

TreeIncMac::TreeIncMac(ByteView key, const std::vector<Bytes>& blocks)
    : key_(key.begin(), key.end()) {
  if (key.empty()) {
    throw CryptoError("TreeIncMac: empty key");
  }
  leaf_count_ = blocks.size();
  levels_.emplace_back();
  levels_[0].reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    levels_[0].push_back(leaf_hash(i, blocks[i]));
  }
  // Build internal levels; odd nodes are promoted unchanged.
  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& below = levels_.back();
    std::vector<Bytes> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i < below.size(); i += 2) {
      if (i + 1 < below.size()) {
        above.push_back(node_hash(below[i], below[i + 1]));
      } else {
        above.push_back(below[i]);
      }
    }
    levels_.push_back(std::move(above));
  }
  root_ = finalize(levels_.empty() || levels_.back().empty()
                       ? ByteView{}
                       : ByteView(levels_.back()[0]));
}

Bytes TreeIncMac::leaf_hash(std::size_t index, ByteView block) const {
  Bytes material = concat(Bytes{0x00}, index_prefix(index), block);
  return hmac_sha256(key_, material);
}

Bytes TreeIncMac::node_hash(ByteView left, ByteView right) const {
  return hmac_sha256(key_, concat(Bytes{0x01}, left, right));
}

Bytes TreeIncMac::finalize(ByteView top) const {
  // Bind the leaf count so truncation/extension changes the root.
  return hmac_sha256(key_, concat(Bytes{0x02}, index_prefix(leaf_count_), top));
}

void TreeIncMac::replace(std::size_t index, ByteView new_block) {
  if (index >= leaf_count_) {
    throw Error(ErrorCode::kInvalidArgument, "TreeIncMac: index out of range");
  }
  levels_[0][index] = leaf_hash(index, new_block);
  rebuild_from(index);
}

void TreeIncMac::rebuild_from(std::size_t leaf) {
  std::size_t pos = leaf;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Bytes>& below = levels_[level];
    const std::size_t parent = pos / 2;
    const std::size_t left = parent * 2;
    if (left + 1 < below.size()) {
      levels_[level + 1][parent] = node_hash(below[left], below[left + 1]);
    } else {
      levels_[level + 1][parent] = below[left];
    }
    pos = parent;
  }
  root_ = finalize(levels_.back().empty() ? ByteView{}
                                          : ByteView(levels_.back()[0]));
}

Bytes TreeIncMac::compute_root(ByteView key,
                               const std::vector<Bytes>& blocks) {
  return TreeIncMac(key, blocks).root();
}

bool TreeIncMac::verify(ByteView key, const std::vector<Bytes>& blocks,
                        ByteView candidate) {
  return ct_equal(compute_root(key, blocks), candidate);
}

}  // namespace privedit::crypto
