#pragma once
// Aes128Engine — the single AES-128 dispatch facade every cipher consumer
// goes through (enc/ schemes, the wide-block Feistel rounds, the CTR-DRBG,
// the AES-CMAC incremental-MAC PRF). Nothing outside crypto/ names a
// concrete cipher class anymore; backends are selected once per process:
//
//   kAesNi — hardware AES (crypto/aes_ni.hpp), used when the binary was
//            built with AES-NI support, the CPU reports the extension,
//            PRIVEDIT_DISABLE_AESNI is not set in the environment, and the
//            backend passes a FIPS-197 known-answer self-check at dispatch
//            time. A KAT failure forces software fallback, never an abort.
//   kFast  — T-table software AES (crypto/aes_fast.hpp), the fallback.
//   kReference — byte-wise FIPS-197 code (crypto/aes.hpp); never chosen by
//            dispatch, but can be forced for differential tests/benches.
//
// The batch entry points (encrypt_blocks/decrypt_blocks) amortise one key
// schedule over a run of adjacent blocks and let the AES-NI backend keep
// 8 blocks in flight; software backends loop block-at-a-time.

#include <optional>
#include <string_view>

#include "privedit/crypto/aes.hpp"
#include "privedit/crypto/aes_fast.hpp"
#include "privedit/crypto/aes_ni.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

enum class AesBackend : std::uint8_t { kReference, kFast, kAesNi };

std::string_view aes_backend_name(AesBackend backend);

class Aes128Engine {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Expands `key` on the dispatched backend. Throws CryptoError on wrong
  /// key size.
  explicit Aes128Engine(ByteView key);

  /// Test/bench hook: force a specific backend. Forcing kAesNi on a host
  /// without usable AES-NI throws CryptoError.
  Aes128Engine(ByteView key, AesBackend forced);

  /// The process-wide dispatch decision (recomputed per call so tests can
  /// flip PRIVEDIT_DISABLE_AESNI; the CPUID + KAT probe result is cached).
  static AesBackend dispatch_backend();

  /// Backend this instance was keyed on.
  AesBackend backend() const { return backend_; }

  /// Single-block interface; in == out aliasing is allowed on every
  /// backend (pinned by tests/crypto_test.cpp).
  void encrypt_block(ByteView in, MutByteView out) const;
  void decrypt_block(ByteView in, MutByteView out) const;
  Bytes encrypt_block(ByteView in) const;
  Bytes decrypt_block_copy(ByteView in) const;

  /// Batch interface over `n` adjacent 16-byte blocks
  /// (in.size() == out.size() == 16*n; exact aliasing allowed).
  void encrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;
  void decrypt_blocks(ByteView in, MutByteView out, std::size_t n) const;

 private:
  AesBackend backend_;
  std::optional<Aes128> ref_;
  std::optional<Aes128Fast> fast_;
#if PRIVEDIT_HAVE_AESNI
  std::optional<Aes128Ni> ni_;
#endif
};

/// Increments a 16-byte big-endian block counter in place with full carry
/// propagation (the CTR-DRBG counter). Factored out so the 2^32 block-index
/// boundary can be pinned by a synthetic regression test — the bug family
/// where a 32-bit temporary silently wraps at block 2^32 (cf. the PR 3
/// delta count overflow).
void ctr128_increment(MutByteView counter);

}  // namespace privedit::crypto
