#pragma once
// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// This is the F_sk primitive of the paper's incremental encryption modes
// (§V-B). A software S-box implementation is sufficient here: the threat
// model is a malicious *server*, not a local cache-timing attacker, and the
// benchmarks care about relative costs.

#include <array>
#include <cstdint>

#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  /// Expands the 16-byte key. Throws CryptoError on wrong key size.
  explicit Aes128(ByteView key);

  ~Aes128();

  Aes128(const Aes128&) = default;
  Aes128& operator=(const Aes128&) = default;

  /// Encrypts one 16-byte block in place (in == out is fine).
  void encrypt_block(ByteView in, MutByteView out) const;

  /// Decrypts one 16-byte block.
  void decrypt_block(ByteView in, MutByteView out) const;

  /// Convenience single-block helpers.
  Bytes encrypt_block(ByteView in) const;
  Bytes decrypt_block_copy(ByteView in) const;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, 16 * (kRounds + 1)> round_keys_{};
};

}  // namespace privedit::crypto
