#pragma once
// Incremental MACs (§V-A).
//
// The paper surveys incremental authentication before settling on
// authenticated *encryption* (RPC): "Early research efforts focused mainly
// on inventing incremental MAC schemes restricted to the easier replace
// updates; ... the hash-then-sign and XOR schemes are all subject to
// substitution attacks. On the other hand, IncXMACC and the hash tree
// schemes achieve true tamperproofing but at the cost of O(n) size of
// signature, and O(log(n)) time complexity."
//
// Both ends of that trade-off are implemented here so the substitution
// attack and its fix can be demonstrated:
//
// XorIncMac  — the Bellare–Goldreich–Goldwasser-style XOR scheme:
//              tag(M) = ⊕_i F_k(i ‖ m_i). Replace updates are O(1)
//              (XOR out the old block, XOR in the new one), but tags are
//              linear: tag(A)⊕tag(B)⊕tag(C) is a valid tag for the
//              blockwise combination — the classic substitution forgery,
//              reproduced in tests/inc_mac_test.cpp.
//
// TreeIncMac — a Merkle-style HMAC tree over the block sequence. Replace
//              updates cost O(log n) (re-hash one root-to-leaf path); the
//              authenticator state is O(n) as the paper notes. Length is
//              bound into the root, so substitution/extension forgeries
//              fail.

#include <cstdint>
#include <optional>
#include <vector>

#include "privedit/crypto/aes_engine.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::crypto {

/// PRF family backing XorIncMac's per-position terms.
enum class PrfKind : std::uint8_t {
  kHmacSha256,  // 32-byte terms, any key length (the default)
  kAesCmac,     // 16-byte terms via the dispatched Aes128Engine (SP 800-38B)
};

class XorIncMac {
 public:
  static constexpr std::size_t kTagSize = 32;
  static constexpr std::size_t kCmacTagSize = 16;

  explicit XorIncMac(ByteView key, PrfKind prf = PrfKind::kHmacSha256);

  /// Term/tag width of the configured PRF.
  std::size_t tag_size() const {
    return prf_ == PrfKind::kHmacSha256 ? kTagSize : kCmacTagSize;
  }

  /// Full MAC over a block sequence.
  Bytes tag(const std::vector<Bytes>& blocks) const;

  /// Incremental replace: returns the tag after blocks[index] changes from
  /// old_block to new_block. O(1).
  Bytes update_replace(ByteView current_tag, std::size_t index,
                       ByteView old_block, ByteView new_block) const;

  bool verify(const std::vector<Bytes>& blocks, ByteView candidate) const;

  /// The per-position PRF term F_k(i ‖ m_i) — exposed so the substitution
  /// attack demonstration can show *why* forged tags verify.
  Bytes term(std::size_t index, ByteView block) const;

 private:
  Bytes cmac(ByteView prefix, ByteView message) const;

  Bytes key_;
  PrfKind prf_;
  // AES-CMAC state (SP 800-38B): dispatched cipher + derived subkeys.
  std::optional<Aes128Engine> aes_;
  std::array<std::uint8_t, 16> k1_{};
  std::array<std::uint8_t, 16> k2_{};
};

class TreeIncMac {
 public:
  static constexpr std::size_t kDigestSize = 32;

  /// Builds the tree over the given blocks. O(n).
  TreeIncMac(ByteView key, const std::vector<Bytes>& blocks);

  /// The authenticator (tree root, with the leaf count bound in).
  const Bytes& root() const { return root_; }

  std::size_t block_count() const { return leaf_count_; }

  /// Replace update: O(log n) re-hash of one path.
  void replace(std::size_t index, ByteView new_block);

  /// Recomputes the root from scratch (verification reference). O(n).
  static Bytes compute_root(ByteView key, const std::vector<Bytes>& blocks);

  /// True if `candidate` matches the root for `blocks` under `key`.
  static bool verify(ByteView key, const std::vector<Bytes>& blocks,
                     ByteView candidate);

 private:
  Bytes leaf_hash(std::size_t index, ByteView block) const;
  Bytes node_hash(ByteView left, ByteView right) const;
  Bytes finalize(ByteView top) const;
  void rebuild_from(std::size_t leaf);

  Bytes key_;
  std::size_t leaf_count_ = 0;
  // levels_[0] = leaf hashes; levels_.back() has a single top node.
  std::vector<std::vector<Bytes>> levels_;
  Bytes root_;
};

}  // namespace privedit::crypto
