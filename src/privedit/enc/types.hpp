#pragma once
// Shared vocabulary for the incremental encryption schemes (§V).

#include <cstdint>
#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit::enc {

/// Encryption mode (§V-B): rECB is confidentiality-only; RPC adds integrity
/// via nonce chaining plus the Wang et al. length amendment. CoClo is the
/// prior-work baseline that re-encrypts the whole document on every update.
enum class Mode : std::uint8_t {
  kRecb = 1,
  kRpc = 2,
  kCoClo = 3,
};

std::string_view mode_name(Mode mode);

/// Text codec used to embed ciphertext in form fields. The paper's
/// extension uses Base32 (Fig 2); base64url is provided for the blow-up
/// comparison in the Fig 7 bench.
enum class Codec : std::uint8_t {
  kBase32 = 1,
  kBase64Url = 2,
  kStego = 3,  // ciphertext disguised as words (§VI; see enc/stego.hpp)
};

/// Clear one-character tag prefixed to the ciphertext document so the codec
/// is known before the header can be decoded.
char codec_tag(Codec codec);
Codec codec_from_tag(char tag);

/// Encodes without padding (units have fixed encoded width).
std::string codec_encode(Codec codec, ByteView data);
Bytes codec_decode(Codec codec, std::string_view text);

/// Encoded width in characters of `raw_bytes` bytes under `codec`.
std::size_t codec_width(Codec codec, std::size_t raw_bytes);

/// How edit regions are re-chunked into blocks (§V-C / Fig 7 discussion:
/// fragmentation is the gap between ideal and actual blow-up reduction).
struct BlockPolicy {
  enum class Split : std::uint8_t {
    kGreedy,  // fill blocks to capacity; only the region's last block is short
    kEven,    // balance the region across ceil(n/b) equal-ish blocks
  };
  Split split = Split::kGreedy;

  /// When a deletion leaves the edit region shorter than merge_threshold
  /// characters, absorb the right neighbour block into the region so the
  /// re-chunk defragments locally. Off by default to match the paper's
  /// measured fragmentation; the ablation bench flips it.
  bool merge_on_delete = false;
  std::size_t merge_threshold = 4;
};

struct SchemeConfig {
  Mode mode = Mode::kRecb;
  std::size_t block_chars = 8;  // b, 1..8 (paper: limited by the AES width)
  Codec codec = Codec::kBase32;
  std::uint32_t kdf_iterations = 10'000;
  BlockPolicy policy;
};

/// Instrumentation counters exposed by every scheme.
struct SchemeStats {
  std::size_t plaintext_chars = 0;
  std::size_t block_count = 0;        // data blocks only
  std::size_t ciphertext_chars = 0;   // full encoded document length
  std::size_t blocks_reencrypted = 0; // cumulative, across IncE calls
  std::size_t incremental_updates = 0;

  double blowup() const {
    return plaintext_chars == 0
               ? 0.0
               : static_cast<double>(ciphertext_chars) /
                     static_cast<double>(plaintext_chars);
  }
  double average_fill(std::size_t block_chars) const {
    return block_count == 0
               ? 0.0
               : static_cast<double>(plaintext_chars) /
                     (static_cast<double>(block_count) *
                      static_cast<double>(block_chars));
  }
};

/// Maximum characters per block supported by the AES-based layouts.
inline constexpr std::size_t kMaxBlockChars = 8;

/// 64-bit nonces, as in the paper (§VI-A).
inline constexpr std::size_t kNonceSize = 8;

}  // namespace privedit::enc
