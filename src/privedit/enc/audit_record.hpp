#pragma once
// Authenticated revision-history records for fork-consistency auditing.
//
// The server in this system is untrusted: it stores ciphertext and a
// revision counter, and PR 2's journal anchor only protects a client
// against being served something older than what *it* acknowledged. A
// malicious server can still *equivocate* — keep two divergent histories
// and show each client the one that hides the other's writes.
//
// The defence is a per-document keyed hash chain (SUNDR-style):
//
//   H_0 = HMAC(K_audit, "genesis" || doc-id)
//   H_i = HMAC(K_audit, H_{i-1} || rev_i || container-CRC_i || client-id_i)
//
// Every save carries its new link as an opaque attribute (`alink=`). The
// server stores links verbatim — it lacks K_audit, so it can replay a
// history clients produced but can never forge or splice one. At open, a
// client recomputes the HMACs over the served chain and checks that its
// own committed head appears in it (prefix compatibility); the final
// link's CRC must match the container actually served.
//
// Cross-client detection rides *witness records*: each client publishes a
// MACed (client, rev, head) triple through the server, and every client
// checks peers' witnesses against its own chain. Two clients whose heads
// are not prefix-compatible have proof of equivocation, delivered by the
// equivocator itself.
//
// This header is pure record format + MAC math (enc layer): no I/O, no
// policy. The state machine that decides rollback vs fork vs equivocation
// lives in extension/audit.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "privedit/util/bytes.hpp"

namespace privedit::enc {

/// One link of the audit chain: the head value after revision `rev` was
/// committed by `client`, binding the container CRC served at that rev.
struct AuditLink {
  std::uint64_t rev = 0;
  std::uint32_t crc = 0;     // crc32 of the full container at this rev
  std::string client;        // writer's client id (X-Privedit-Client)
  Bytes head;                // 32-byte HMAC-SHA256 chain head

  bool operator==(const AuditLink&) const = default;
};

/// The chain as served/stored: a trusted-iff-verified base head (the head
/// value at `base_rev`, before the first stored link) plus the links that
/// follow it. Pruning old links moves the base forward; a client can only
/// verify a chain whose base is at or before its own committed head.
struct AuditChain {
  std::uint64_t base_rev = 0;
  Bytes base_head;
  std::vector<AuditLink> links;

  bool operator==(const AuditChain&) const = default;

  /// Highest revision the chain speaks for.
  std::uint64_t tip_rev() const {
    return links.empty() ? base_rev : links.back().rev;
  }

  /// Head value at exactly `rev`, if the chain covers it.
  std::optional<Bytes> head_at(std::uint64_t rev) const;
};

/// A client's signed claim "my chain head at revision `rev` was `head`",
/// exchanged through the (untrusted) server.
struct AuditWitness {
  std::string client;
  std::uint64_t rev = 0;
  Bytes head;
  Bytes mac;  // HMAC(K_audit, "witness" || client || rev || head)

  bool operator==(const AuditWitness&) const = default;
};

/// Derives the per-document audit key from the user password and document
/// id. Independent of derive_document_keys on purpose: the audit chain
/// must survive content-key rotation, and the server-visible records must
/// not leak anything about the content keys.
Bytes derive_audit_key(const std::string& password, const std::string& doc_id);

/// H_0 for a fresh document.
Bytes genesis_head(ByteView key, const std::string& doc_id);

/// H_i from H_{i-1}: the link HMAC over (prev || rev || crc || client).
Bytes chain_head(ByteView key, ByteView prev_head, std::uint64_t rev,
                 std::uint32_t crc, const std::string& client);

/// Recomputes every link's HMAC from the base head. Returns true iff the
/// whole chain is internally consistent under `key`. A forged or spliced
/// link (anything the server invented) fails here.
bool verify_chain(ByteView key, const AuditChain& chain);

/// Builds a MACed witness record.
AuditWitness make_witness(ByteView key, const std::string& client,
                          std::uint64_t rev, ByteView head);

/// True iff the witness MAC verifies under `key`.
bool verify_witness(ByteView key, const AuditWitness& witness);

// ---- wire format -------------------------------------------------------
//
// Text formats, safe inside urlencoded form values once percent-escaped:
//   link:    <rev>:<crc-hex8>:<client-hex>:<head-hex>
//   chain:   <base_rev>:<base-head-hex>[;<link>;<link>...]
//   witness: <client-hex>:<rev>:<head-hex>:<mac-hex>
// Decoders throw ParseError on any malformed field.

std::string encode_link(const AuditLink& link);
AuditLink decode_link(std::string_view wire);

std::string encode_chain(const AuditChain& chain);
AuditChain decode_chain(std::string_view wire);

std::string encode_witness(const AuditWitness& witness);
AuditWitness decode_witness(std::string_view wire);

}  // namespace privedit::enc
