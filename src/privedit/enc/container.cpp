#include "privedit/enc/container.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

constexpr char kMagic[4] = {'P', 'E', 'D', 'C'};
constexpr std::size_t kSaltSize = 16;

// Unit raw sizes. rECB: 1 clear count byte + one AES block.
// RPC: one 32-byte wide block (count lives inside the encrypted tuple).
// CoClo re-uses the rECB layout (it is rECB re-run from scratch each time).
constexpr std::size_t kRecbUnitRaw = 1 + 16;
constexpr std::size_t kRpcUnitRaw = 32;

}  // namespace

Bytes ContainerHeader::serialize() const {
  if (block_chars == 0 || block_chars > kMaxBlockChars) {
    throw Error(ErrorCode::kInvalidArgument,
                "ContainerHeader: block_chars must be in [1,8]");
  }
  if (salt.size() != kSaltSize) {
    throw Error(ErrorCode::kInvalidArgument,
                "ContainerHeader: salt must be 16 bytes");
  }
  if (kdf_iterations == 0) {
    throw Error(ErrorCode::kInvalidArgument,
                "ContainerHeader: kdf_iterations must be > 0");
  }
  Bytes out(kRawSize);
  std::memcpy(out.data(), kMagic, 4);
  out[4] = kVersion;
  out[5] = static_cast<std::uint8_t>(mode);
  out[6] = static_cast<std::uint8_t>(block_chars);
  out[7] = static_cast<std::uint8_t>(codec);
  store_u32be(MutByteView(out.data() + 8, 4), kdf_iterations);
  std::memcpy(out.data() + 12, salt.data(), kSaltSize);
  return out;
}

ContainerHeader ContainerHeader::parse(ByteView raw) {
  if (raw.size() != kRawSize) {
    throw ParseError("container header: wrong size");
  }
  if (std::memcmp(raw.data(), kMagic, 4) != 0) {
    throw ParseError("container header: bad magic");
  }
  if (raw[4] != kVersion) {
    throw ParseError("container header: unsupported version");
  }
  ContainerHeader h;
  switch (raw[5]) {
    case static_cast<std::uint8_t>(Mode::kRecb):
      h.mode = Mode::kRecb;
      break;
    case static_cast<std::uint8_t>(Mode::kRpc):
      h.mode = Mode::kRpc;
      break;
    case static_cast<std::uint8_t>(Mode::kCoClo):
      h.mode = Mode::kCoClo;
      break;
    default:
      throw ParseError("container header: unknown mode");
  }
  h.block_chars = raw[6];
  if (h.block_chars == 0 || h.block_chars > kMaxBlockChars) {
    throw ParseError("container header: block_chars out of range");
  }
  switch (raw[7]) {
    case static_cast<std::uint8_t>(Codec::kBase32):
      h.codec = Codec::kBase32;
      break;
    case static_cast<std::uint8_t>(Codec::kBase64Url):
      h.codec = Codec::kBase64Url;
      break;
    case static_cast<std::uint8_t>(Codec::kStego):
      h.codec = Codec::kStego;
      break;
    default:
      throw ParseError("container header: unknown codec");
  }
  h.kdf_iterations = load_u32be(ByteView(raw.data() + 8, 4));
  if (h.kdf_iterations == 0) {
    throw ParseError("container header: zero KDF iterations");
  }
  // A tampered header must not be able to stall the client with an
  // astronomically expensive KDF (found by the mutation fuzzer).
  if (h.kdf_iterations > kMaxKdfIterations) {
    throw ParseError("container header: KDF iteration count exceeds cap");
  }
  h.salt.assign(raw.begin() + 12, raw.begin() + 12 + kSaltSize);
  return h;
}

std::size_t ContainerHeader::unit_raw_size() const {
  switch (mode) {
    case Mode::kRecb:
    case Mode::kCoClo:
      return kRecbUnitRaw;
    case Mode::kRpc:
      return kRpcUnitRaw;
  }
  throw Error(ErrorCode::kState, "unit_raw_size: unknown mode");
}

std::size_t ContainerHeader::unit_width() const {
  return codec_width(codec, unit_raw_size());
}

std::size_t ContainerHeader::prefix_chars() const {
  return 1 + codec_width(codec, kRawSize);
}

bool looks_like_container(std::string_view encoded_doc) {
  if (encoded_doc.empty()) return false;
  try {
    const Codec codec = codec_from_tag(encoded_doc[0]);
    const std::size_t header_width =
        codec_width(codec, ContainerHeader::kRawSize);
    if (encoded_doc.size() < 1 + header_width) return false;
    const Bytes raw = codec_decode(codec, encoded_doc.substr(1, header_width));
    return raw.size() >= 4 && std::memcmp(raw.data(), kMagic, 4) == 0;
  } catch (const Error&) {
    return false;
  }
}

ContainerReader::ContainerReader(std::string_view encoded_doc)
    : doc_(encoded_doc) {
  if (encoded_doc.empty()) {
    throw ParseError("container: empty document");
  }
  const Codec codec = codec_from_tag(encoded_doc[0]);
  const std::size_t header_width = codec_width(codec, ContainerHeader::kRawSize);
  if (encoded_doc.size() < 1 + header_width) {
    throw ParseError("container: truncated header");
  }
  const Bytes raw_header =
      codec_decode(codec, encoded_doc.substr(1, header_width));
  header_ = ContainerHeader::parse(raw_header);
  if (header_.codec != codec) {
    throw ParseError("container: codec tag does not match header");
  }
  body_offset_ = 1 + header_width;
  const std::size_t body_chars = encoded_doc.size() - body_offset_;
  const std::size_t width = header_.unit_width();
  if (body_chars % width != 0) {
    throw ParseError("container: body is not a whole number of units");
  }
  unit_count_ = body_chars / width;
}

Bytes ContainerReader::unit(std::size_t u) const {
  if (u >= unit_count_) {
    throw Error(ErrorCode::kInvalidArgument, "container: unit out of range");
  }
  const std::size_t width = header_.unit_width();
  const Bytes raw =
      codec_decode(header_.codec, doc_.substr(body_offset_ + u * width, width));
  if (raw.size() != header_.unit_raw_size()) {
    throw ParseError("container: unit decodes to wrong size");
  }
  return raw;
}

ContainerWriter::ContainerWriter(const ContainerHeader& header)
    : header_(header) {
  out_.push_back(codec_tag(header.codec));
  out_ += codec_encode(header.codec, header.serialize());
}

void ContainerWriter::add_unit(ByteView raw) {
  if (raw.size() != header_.unit_raw_size()) {
    throw Error(ErrorCode::kInvalidArgument,
                "container: unit has wrong raw size");
  }
  out_ += codec_encode(header_.codec, raw);
  ++units_;
}

}  // namespace privedit::enc
