#pragma once
// RPC — Random Position Chaining incremental encryption (§V-B), providing
// confidentiality *and* integrity, with the Wang–Kao–Yeh amendment (the
// document length is folded into the final checksum block).
//
// Per the paper, the ciphertext is
//   F(r0, α, r1), F(r1, d1, r2), ..., F(rn, dn, r0), F(⊕ri, ⊕di, ⊕ri)
// i.e. every data block carries its own nonce and its successor's nonce, the
// last block chains back to r0, and a final block authenticates the XOR
// aggregates. A block substitution, swap, replay or truncation breaks the
// chain or the aggregates and is detected at decryption.
//
// The tuples are wider than an AES block (two 64-bit nonces plus payload),
// so F is the 32-byte Luby–Rackoff wide-block cipher. 32-byte unit layout
// (before encryption):
//   [ 0: 8)  r_i            this block's nonce (START: r0; FINAL: r0⊕XR)
//   [ 8: 9)  flag           0x01 START, 0x00 DATA, 0x02 FINAL
//   [ 9:10)  count          payload chars (0 for START/FINAL)
//   [10:18)  payload        chars zero-padded (START: α; FINAL: ⊕payloads)
//   [18:24)  pad            fresh randomness (FINAL: document length u48be)
//   [24:32)  r_{i+1}        successor nonce (last data block: r0;
//                           FINAL: XR = ⊕ data nonces)

#include <array>
#include <memory>
#include <vector>

#include "privedit/crypto/wide_block.hpp"
#include "privedit/enc/block_store.hpp"
#include "privedit/enc/scheme.hpp"
#include "privedit/enc/splice_log.hpp"

namespace privedit::enc {

class RpcScheme final : public IncrementalScheme {
 public:
  /// The paper's amendment is on by default; the forgery-attack test and
  /// the ablation bench construct the scheme without it to reproduce the
  /// Wang et al. attack on unamended RPC.
  RpcScheme(ContainerHeader header, const crypto::DocumentKeys& keys,
            std::unique_ptr<RandomSource> rng, BlockPolicy policy = {},
            bool length_amendment = true);

  const ContainerHeader& header() const override { return header_; }
  std::string initialize(std::string_view plaintext) override;
  void load(std::string_view ciphertext_doc) override;
  delta::Delta transform_delta(const delta::Delta& pdelta) override;
  std::string plaintext() const override;
  std::string ciphertext_doc() const override;
  SchemeStats stats() const override;

 private:
  // Fixed-width stack tuple: seal/open run without heap traffic, which
  // matters because every region edit seals old_count + new_count + 2 of
  // these.
  struct Tuple {
    std::uint64_t nonce = 0;
    std::uint8_t flag = 0;
    std::size_t count = 0;
    std::array<std::uint8_t, 8> payload{};
    std::array<std::uint8_t, 6> pad{};
    std::uint64_t next = 0;
  };

  Bytes seal(const Tuple& t) const;
  Tuple open(ByteView unit) const;

  /// Writes the zero-padded 8-byte payload of a block's plaintext.
  static void write_payload(std::string_view chars, std::uint8_t out[8]);

  std::uint64_t fresh_nonce();
  std::uint64_t nonce_after(std::size_t elem) const;

  Bytes encrypt_data_block(std::string_view chars, std::uint64_t nonce,
                           std::uint64_t next);

  /// Batch-encrypts data tuples for store blocks
  /// [first_elem, first_elem + nonces.size()): one rng fill for the pads and
  /// one wide-block batch pass per run. Block i chains to nonces[i+1], the
  /// last one to `tail_next`. Installs units in the store, folds nonces and
  /// payloads into the XOR aggregates, and returns the units in order.
  std::vector<Bytes> encrypt_data_range(
      std::size_t first_elem, const std::vector<std::uint64_t>& nonces,
      std::uint64_t tail_next);
  Bytes encrypt_start_unit(std::uint64_t first_nonce);
  Bytes encrypt_final_unit();

  /// Re-encrypts the chaining predecessor of block `elem` (a data block or
  /// the START unit) so its successor pointer matches, and records the
  /// splice.
  void rewrite_predecessor(std::size_t elem, SpliceLog& log);

  void apply_region(const RegionChange& change, SpliceLog& log);

  ContainerHeader header_;
  crypto::WideBlock wide_;
  std::unique_ptr<RandomSource> rng_;
  BlockStore store_;
  bool length_amendment_;

  std::uint64_t r0_ = 0;
  Bytes start_unit_;
  std::uint64_t xor_nonces_ = 0;  // ⊕ r_i over data blocks
  Bytes xor_payloads_;            // ⊕ padded payloads (8 bytes)
  SchemeStats stats_;
};

}  // namespace privedit::enc
