#include "privedit/enc/block_wire.hpp"

#include <charconv>

#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

constexpr std::string_view kMagic = "PEBD1;";

/// Declared sizes above this are rejected before anything is allocated —
/// far above any real container, far below an OOM on hostile input.
constexpr std::uint64_t kMaxDeclaredSize = 1ull << 31;
constexpr std::size_t kMaxOps = 1u << 20;

void append_hex8(std::string& out, std::uint32_t value) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out += kHex[(value >> shift) & 0xf];
  }
}

/// Parses the decimal run at `pos`, advancing past it. Throws on an empty
/// run or a value above `cap`.
std::uint64_t take_number(std::string_view wire, std::size_t& pos,
                          std::uint64_t cap, const char* what) {
  std::uint64_t value = 0;
  const char* begin = wire.data() + pos;
  const char* end = wire.data() + wire.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ptr == begin || ec != std::errc() || value > cap) {
    throw ParseError(std::string("block delta wire: bad ") + what);
  }
  pos += static_cast<std::size_t>(ptr - begin);
  return value;
}

void take_literal(std::string_view wire, std::size_t& pos, char expect) {
  if (pos >= wire.size() || wire[pos] != expect) {
    throw ParseError(std::string("block delta wire: expected '") + expect +
                     "'");
  }
  ++pos;
}

/// Parses a `key=` header field terminated by ';'.
std::uint64_t take_field(std::string_view wire, std::size_t& pos,
                         std::string_view key, bool hex,
                         std::uint64_t cap) {
  if (wire.substr(pos, key.size()) != key) {
    throw ParseError("block delta wire: expected field " +
                     std::string(key));
  }
  pos += key.size();
  std::uint64_t value = 0;
  if (hex) {
    const std::size_t start = pos;
    while (pos < wire.size() && pos - start < 8) {
      const char c = wire[pos];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else {
        break;
      }
      value = (value << 4) | digit;
      ++pos;
    }
    if (pos - start != 8) {
      throw ParseError("block delta wire: bad hex field " + std::string(key));
    }
  } else {
    value = take_number(wire, pos, cap, std::string(key).c_str());
  }
  take_literal(wire, pos, ';');
  return value;
}

}  // namespace

bool looks_like_block_delta(std::string_view wire) {
  return wire.substr(0, kMagic.size()) == kMagic;
}

std::string block_delta_to_wire(const delta::BlockDelta& delta) {
  std::string out;
  out.reserve(64 + delta.ops.size() * 16 +
              static_cast<std::size_t>(delta.added_bytes()));
  out += kMagic;
  out += "s=" + std::to_string(delta.source_size) + ';';
  out += "t=" + std::to_string(delta.target_size) + ';';
  out += "sc=";
  append_hex8(out, delta.source_crc);
  out += ';';
  out += "tc=";
  append_hex8(out, delta.target_crc);
  out += ';';
  for (const delta::BlockOp& op : delta.ops) {
    if (op.kind == delta::BlockOp::Kind::kCopy) {
      out += 'C';
      out += std::to_string(op.src_off);
      out += ':';
      out += std::to_string(op.len);
    } else {
      out += 'A';
      out += std::to_string(op.literal.size());
      out += ':';
      out += op.literal;
    }
    out += ';';
  }
  return out;
}

delta::BlockDelta block_delta_from_wire(std::string_view wire) {
  if (!looks_like_block_delta(wire)) {
    throw ParseError("block delta wire: bad magic");
  }
  std::size_t pos = kMagic.size();
  delta::BlockDelta d;
  d.source_size = take_field(wire, pos, "s=", false, kMaxDeclaredSize);
  d.target_size = take_field(wire, pos, "t=", false, kMaxDeclaredSize);
  d.source_crc =
      static_cast<std::uint32_t>(take_field(wire, pos, "sc=", true, 0));
  d.target_crc =
      static_cast<std::uint32_t>(take_field(wire, pos, "tc=", true, 0));
  while (pos < wire.size()) {
    const char tag = wire[pos++];
    if (tag == 'C') {
      const std::uint64_t off =
          take_number(wire, pos, kMaxDeclaredSize, "copy offset");
      take_literal(wire, pos, ':');
      const std::uint64_t len =
          take_number(wire, pos, kMaxDeclaredSize, "copy length");
      d.ops.push_back(delta::BlockOp::copy(off, len));
    } else if (tag == 'A') {
      const std::uint64_t len =
          take_number(wire, pos, d.target_size, "add length");
      take_literal(wire, pos, ':');
      if (wire.size() - pos < len) {
        throw ParseError("block delta wire: truncated add literal");
      }
      d.ops.push_back(delta::BlockOp::add(
          std::string(wire.substr(pos, static_cast<std::size_t>(len)))));
      pos += static_cast<std::size_t>(len);
    } else {
      throw ParseError("block delta wire: unknown command tag");
    }
    take_literal(wire, pos, ';');
    if (d.ops.size() > kMaxOps) {
      throw ParseError("block delta wire: too many commands");
    }
  }
  return d;
}

std::string block_digests_to_wire(
    const std::vector<std::uint64_t>& digests) {
  std::string out;
  out.reserve(digests.size() * 16);
  for (const std::uint64_t digest : digests) {
    append_hex8(out, static_cast<std::uint32_t>(digest >> 32));
    append_hex8(out, static_cast<std::uint32_t>(digest));
  }
  return out;
}

std::vector<std::uint64_t> block_digests_from_wire(std::string_view wire) {
  if (wire.size() % 16 != 0) {
    throw ParseError("block digest wire: not a whole number of digests");
  }
  std::vector<std::uint64_t> out;
  out.reserve(wire.size() / 16);
  for (std::size_t pos = 0; pos < wire.size(); pos += 16) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      const char c = wire[pos + i];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else {
        throw ParseError("block digest wire: bad hex digit");
      }
      value = (value << 4) | digit;
    }
    out.push_back(value);
  }
  return out;
}

}  // namespace privedit::enc
