#include "privedit/enc/audit_record.hpp"

#include <charconv>

#include "privedit/crypto/hmac.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"

namespace privedit::enc {

namespace {

void append_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void append_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint64_t parse_u64(std::string_view field, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    throw ParseError(std::string("audit record: bad ") + what);
  }
  return value;
}

std::vector<std::string_view> split(std::string_view wire, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = wire.find(sep, start);
    if (pos == std::string_view::npos) {
      fields.push_back(wire.substr(start));
      return fields;
    }
    fields.push_back(wire.substr(start, pos - start));
    start = pos + 1;
  }
}

Bytes parse_head(std::string_view field, const char* what) {
  Bytes head = hex_decode(field);
  if (head.size() != crypto::Sha256::kDigestSize) {
    throw ParseError(std::string("audit record: bad ") + what + " length");
  }
  return head;
}

}  // namespace

std::optional<Bytes> AuditChain::head_at(std::uint64_t rev) const {
  if (rev == base_rev) return base_head;
  for (const AuditLink& link : links) {
    if (link.rev == rev) return link.head;
  }
  return std::nullopt;
}

Bytes derive_audit_key(const std::string& password,
                       const std::string& doc_id) {
  // Keyed off a hash of the password (not the document keys) so that audit
  // verification never needs — and never risks exposing — content keys.
  const Bytes pw_hash = crypto::Sha256::hash(as_bytes(password));
  Bytes msg = to_bytes("privedit-audit-v1:");
  append(msg, as_bytes(doc_id));
  return crypto::hmac_sha256(pw_hash, msg);
}

Bytes genesis_head(ByteView key, const std::string& doc_id) {
  Bytes msg = to_bytes("genesis:");
  append(msg, as_bytes(doc_id));
  return crypto::hmac_sha256(key, msg);
}

Bytes chain_head(ByteView key, ByteView prev_head, std::uint64_t rev,
                 std::uint32_t crc, const std::string& client) {
  Bytes msg(prev_head.begin(), prev_head.end());
  append_u64(msg, rev);
  append_u32(msg, crc);
  append(msg, as_bytes(client));
  return crypto::hmac_sha256(key, msg);
}

bool verify_chain(ByteView key, const AuditChain& chain) {
  if (chain.base_head.size() != crypto::Sha256::kDigestSize) return false;
  const Bytes* prev = &chain.base_head;
  std::uint64_t prev_rev = chain.base_rev;
  for (const AuditLink& link : chain.links) {
    if (link.rev <= prev_rev) return false;  // revs must strictly advance
    if (chain_head(key, *prev, link.rev, link.crc, link.client) != link.head) {
      return false;
    }
    prev = &link.head;
    prev_rev = link.rev;
  }
  return true;
}

namespace {

Bytes witness_mac(ByteView key, const std::string& client, std::uint64_t rev,
                  ByteView head) {
  Bytes msg = to_bytes("witness:");
  append(msg, as_bytes(client));
  append_u64(msg, rev);
  append(msg, head);
  return crypto::hmac_sha256(key, msg);
}

}  // namespace

AuditWitness make_witness(ByteView key, const std::string& client,
                          std::uint64_t rev, ByteView head) {
  AuditWitness w;
  w.client = client;
  w.rev = rev;
  w.head.assign(head.begin(), head.end());
  w.mac = witness_mac(key, client, rev, head);
  return w;
}

bool verify_witness(ByteView key, const AuditWitness& witness) {
  if (witness.head.size() != crypto::Sha256::kDigestSize) return false;
  return witness_mac(key, witness.client, witness.rev, witness.head) ==
         witness.mac;
}

std::string encode_link(const AuditLink& link) {
  return std::to_string(link.rev) + ":" + hex_encode(Bytes{
             static_cast<std::uint8_t>(link.crc >> 24),
             static_cast<std::uint8_t>(link.crc >> 16),
             static_cast<std::uint8_t>(link.crc >> 8),
             static_cast<std::uint8_t>(link.crc)}) +
         ":" + hex_encode(as_bytes(link.client)) + ":" + hex_encode(link.head);
}

AuditLink decode_link(std::string_view wire) {
  const auto fields = split(wire, ':');
  if (fields.size() != 4) throw ParseError("audit link: field count");
  AuditLink link;
  link.rev = parse_u64(fields[0], "link rev");
  const Bytes crc = hex_decode(fields[1]);
  if (crc.size() != 4) throw ParseError("audit link: bad crc");
  link.crc = (static_cast<std::uint32_t>(crc[0]) << 24) |
             (static_cast<std::uint32_t>(crc[1]) << 16) |
             (static_cast<std::uint32_t>(crc[2]) << 8) |
             static_cast<std::uint32_t>(crc[3]);
  link.client = to_string(hex_decode(fields[2]));
  link.head = parse_head(fields[3], "link head");
  return link;
}

std::string encode_chain(const AuditChain& chain) {
  std::string wire =
      std::to_string(chain.base_rev) + ":" + hex_encode(chain.base_head);
  for (const AuditLink& link : chain.links) {
    wire += ";";
    wire += encode_link(link);
  }
  return wire;
}

AuditChain decode_chain(std::string_view wire) {
  const auto parts = split(wire, ';');
  const auto base = split(parts[0], ':');
  if (base.size() != 2) throw ParseError("audit chain: bad base");
  AuditChain chain;
  chain.base_rev = parse_u64(base[0], "base rev");
  chain.base_head = parse_head(base[1], "base head");
  for (std::size_t i = 1; i < parts.size(); ++i) {
    chain.links.push_back(decode_link(parts[i]));
  }
  return chain;
}

std::string encode_witness(const AuditWitness& witness) {
  return hex_encode(as_bytes(witness.client)) + ":" +
         std::to_string(witness.rev) + ":" + hex_encode(witness.head) + ":" +
         hex_encode(witness.mac);
}

AuditWitness decode_witness(std::string_view wire) {
  const auto fields = split(wire, ':');
  if (fields.size() != 4) throw ParseError("audit witness: field count");
  AuditWitness w;
  w.client = to_string(hex_decode(fields[0]));
  w.rev = parse_u64(fields[1], "witness rev");
  w.head = parse_head(fields[2], "witness head");
  w.mac = hex_decode(fields[3]);
  if (w.mac.size() != crypto::Sha256::kDigestSize) {
    throw ParseError("audit witness: bad mac length");
  }
  return w;
}

}  // namespace privedit::enc
