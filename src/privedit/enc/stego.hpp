#pragma once
// Steganographic text codec (§VI, Availability): "The server could
// recognise the use of encryption and refuse to store any content that
// appears to be encrypted. To cope with this situation, our tool could be
// extended using existing results in steganography to make it difficult
// for the server to identify encrypted documents."
//
// This codec maps every ciphertext byte to one five-letter lowercase word
// followed by a space (fixed width: 6 characters per byte), so the stored
// document reads as a stream of plausible words instead of Base32 noise.
// Fixed width preserves the unit arithmetic the ciphertext-delta machinery
// depends on. The disguise is shallow — no language model, just a word
// dictionary — which is exactly the caveat the paper raises ("it may be
// impractical for realistic applications"); the point is the mechanism.

#include <string>
#include <string_view>

#include "privedit/util/bytes.hpp"

namespace privedit::enc {

/// Encoded characters per raw byte (5-letter word + space).
inline constexpr std::size_t kStegoCharsPerByte = 6;

/// Encodes bytes as words. Output length = data.size() * 6.
std::string stego_encode(ByteView data);

/// Decodes a word stream produced by stego_encode. Throws ParseError on
/// unknown words or lengths that are not a multiple of 6.
Bytes stego_decode(std::string_view text);

/// The dictionary word for one byte value (testing hook).
std::string_view stego_word(std::uint8_t value);

}  // namespace privedit::enc
