#pragma once
// Wire form of delta::BlockDelta and of the repair digest exchange.
//
// Block deltas ride inside form-encoded POST bodies (the save path's
// `bdelta` field, anti-entropy's `cmd=sync` push), so the framing is text
// with length-prefixed literals — self-delimiting for arbitrary payload
// bytes, cheap to percent-encode for the container alphabets the payloads
// actually carry:
//
//   PEBD1;s=<source_size>;t=<target_size>;sc=<crc32 hex8>;tc=<crc32 hex8>;
//   C<src_off>:<len>;            copy command
//   A<len>:<exactly len bytes>;  add command
//
// The digest list a lagging replica returns from a `cmd=sync` probe is the
// per-block 64-bit digests (delta::block_digest) as fixed-width 16-char
// hex, concatenated; block size and anchors ride as separate form fields.
//
// Parsing is strict and bounded: any malformed framing, oversized
// declaration, or trailing garbage throws ParseError before any O(size)
// allocation happens, so these parsers are safe on attacker bytes (fuzzed
// by sim::fuzz_diff).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "privedit/delta/block_diff.hpp"

namespace privedit::enc {

/// Cheap sniff: does `wire` start with the block-delta magic?
bool looks_like_block_delta(std::string_view wire);

std::string block_delta_to_wire(const delta::BlockDelta& delta);

/// Throws ParseError on malformed or oversized input.
delta::BlockDelta block_delta_from_wire(std::string_view wire);

/// Fixed-width 16-hex per digest, concatenated.
std::string block_digests_to_wire(const std::vector<std::uint64_t>& digests);

/// Throws ParseError unless `wire` is a whole number of 16-hex digests.
std::vector<std::uint64_t> block_digests_from_wire(std::string_view wire);

}  // namespace privedit::enc
