#include "privedit/enc/types.hpp"

#include "privedit/enc/stego.hpp"
#include "privedit/util/base32.hpp"
#include "privedit/util/base64.hpp"
#include "privedit/util/error.hpp"

namespace privedit::enc {

std::string_view mode_name(Mode mode) {
  switch (mode) {
    case Mode::kRecb:
      return "rECB";
    case Mode::kRpc:
      return "RPC";
    case Mode::kCoClo:
      return "CoClo";
  }
  return "unknown";
}

char codec_tag(Codec codec) {
  switch (codec) {
    case Codec::kBase32:
      return '3';
    case Codec::kBase64Url:
      return '6';
    case Codec::kStego:
      return 's';
  }
  throw Error(ErrorCode::kInvalidArgument, "codec_tag: unknown codec");
}

Codec codec_from_tag(char tag) {
  switch (tag) {
    case '3':
      return Codec::kBase32;
    case '6':
      return Codec::kBase64Url;
    case 's':
      return Codec::kStego;
    default:
      throw ParseError("unknown ciphertext codec tag");
  }
}

std::string codec_encode(Codec codec, ByteView data) {
  switch (codec) {
    case Codec::kBase32:
      return base32_encode(data, /*pad=*/false);
    case Codec::kBase64Url:
      return base64url_encode(data);
    case Codec::kStego:
      return stego_encode(data);
  }
  throw Error(ErrorCode::kInvalidArgument, "codec_encode: unknown codec");
}

Bytes codec_decode(Codec codec, std::string_view text) {
  switch (codec) {
    case Codec::kBase32:
      return base32_decode(text);
    case Codec::kBase64Url:
      return base64_decode(text);
    case Codec::kStego:
      return stego_decode(text);
  }
  throw Error(ErrorCode::kInvalidArgument, "codec_decode: unknown codec");
}

std::size_t codec_width(Codec codec, std::size_t raw_bytes) {
  switch (codec) {
    case Codec::kBase32:
      return (raw_bytes * 8 + 4) / 5;
    case Codec::kBase64Url:
      return (raw_bytes * 4 + 2) / 3;
    case Codec::kStego:
      return raw_bytes * kStegoCharsPerByte;
  }
  throw Error(ErrorCode::kInvalidArgument, "codec_width: unknown codec");
}

}  // namespace privedit::enc
