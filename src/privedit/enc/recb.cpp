#include "privedit/enc/recb.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

constexpr std::size_t kUnitRaw = 1 + 16;

// Batch re-encryption runs are chunked so the nonce and AES staging
// buffers stay on the stack (24 bytes + 2 KiB at 64 blocks).
constexpr std::size_t kRunBlocks = 64;

void check_chars(std::string_view chars, std::size_t max_chars) {
  if (chars.empty() || chars.size() > max_chars || chars.size() > 8) {
    throw Error(ErrorCode::kInvalidArgument,
                "rECB: block must hold 1..block_chars characters");
  }
}

}  // namespace

Bytes recb_encrypt_unit(const crypto::Aes128Engine& aes, ByteView r0,
                        std::string_view chars, RandomSource& rng) {
  check_chars(chars, 8);
  std::uint8_t ri[8];
  rng.fill(ri);

  std::uint8_t x[16] = {};
  for (int i = 0; i < 8; ++i) {
    x[i] = static_cast<std::uint8_t>(r0[static_cast<std::size_t>(i)] ^ ri[i]);
  }
  for (std::size_t i = 0; i < chars.size(); ++i) {
    x[8 + i] = static_cast<std::uint8_t>(chars[i]);
  }
  for (int i = 0; i < 8; ++i) {
    x[8 + i] = static_cast<std::uint8_t>(x[8 + i] ^ ri[i]);
  }

  Bytes unit(kUnitRaw);
  unit[0] = static_cast<std::uint8_t>(chars.size());
  aes.encrypt_block(ByteView(x, 16), MutByteView(unit.data() + 1, 16));
  return unit;
}

std::string recb_decrypt_unit(const crypto::Aes128Engine& aes, ByteView r0,
                              ByteView unit, std::size_t max_chars) {
  if (unit.size() != kUnitRaw) {
    throw ParseError("rECB: unit has wrong size");
  }
  const std::size_t count = unit[0];
  if (count == 0 || count > max_chars) {
    throw ParseError("rECB: block count out of range");
  }
  std::uint8_t x[16];
  aes.decrypt_block(unit.subspan(1), x);
  std::uint8_t ri[8];
  for (int i = 0; i < 8; ++i) {
    ri[i] = static_cast<std::uint8_t>(x[i] ^ r0[static_cast<std::size_t>(i)]);
  }
  std::uint8_t payload[8];
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<std::uint8_t>(x[8 + i] ^ ri[i]);
  }
  // Zero padding beyond `count` is a cheap corruption check (not an
  // integrity guarantee — rECB offers none).
  for (std::size_t i = count; i < 8; ++i) {
    if (payload[i] != 0) {
      throw ParseError("rECB: nonzero block padding");
    }
  }
  return std::string(reinterpret_cast<const char*>(payload), count);
}

Bytes recb_header_unit(const crypto::Aes128Engine& aes, ByteView r0) {
  if (r0.size() != kNonceSize) {
    throw Error(ErrorCode::kInvalidArgument, "rECB: r0 must be 8 bytes");
  }
  std::uint8_t x[16] = {};
  std::memcpy(x, r0.data(), 8);
  Bytes unit(kUnitRaw);
  unit[0] = 0;  // header unit carries no characters
  aes.encrypt_block(ByteView(x, 16), MutByteView(unit.data() + 1, 16));
  return unit;
}

Bytes recb_open_header_unit(const crypto::Aes128Engine& aes, ByteView unit) {
  if (unit.size() != kUnitRaw || unit[0] != 0) {
    throw ParseError("rECB: malformed header unit");
  }
  std::uint8_t x[16];
  aes.decrypt_block(unit.subspan(1), x);
  for (int i = 8; i < 16; ++i) {
    if (x[i] != 0) {
      throw CryptoError("rECB: wrong password or corrupted document");
    }
  }
  return Bytes(x, x + 8);
}

RecbScheme::RecbScheme(ContainerHeader header,
                       const crypto::DocumentKeys& keys,
                       std::unique_ptr<RandomSource> rng, BlockPolicy policy)
    : header_(std::move(header)),
      aes_(keys.content_key),
      rng_(std::move(rng)),
      store_(header_.block_chars, policy) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "RecbScheme: null rng");
  }
}

std::string RecbScheme::initialize(std::string_view plaintext) {
  r0_ = rng_->bytes(kNonceSize);
  header_unit_ = recb_header_unit(aes_, r0_);
  store_.reset(plaintext);

  ContainerWriter writer(header_);
  writer.add_unit(header_unit_);
  for (const Bytes& unit : encrypt_range(0, store_.block_count())) {
    writer.add_unit(unit);
  }
  stats_ = SchemeStats{};
  stats_.blocks_reencrypted = store_.block_count();
  return writer.str();
}

void RecbScheme::load(std::string_view ciphertext_doc) {
  ContainerReader reader(ciphertext_doc);
  if (reader.header().mode != header_.mode ||
      reader.header().block_chars != header_.block_chars) {
    throw ParseError("rECB: document header does not match scheme");
  }
  if (reader.unit_count() == 0) {
    throw ParseError("rECB: missing header unit");
  }
  header_unit_ = reader.unit(0);
  r0_ = recb_open_header_unit(aes_, header_unit_);

  std::vector<Block> blocks;
  blocks.reserve(reader.unit_count() - 1);
  for (std::size_t u = 1; u < reader.unit_count(); ++u) {
    Bytes unit = reader.unit(u);
    std::string plain =
        recb_decrypt_unit(aes_, r0_, unit, header_.block_chars);
    blocks.push_back(Block{std::move(plain), std::move(unit), 0});
  }
  store_.load_blocks(std::move(blocks));
  stats_ = SchemeStats{};
}

std::vector<Bytes> RecbScheme::encrypt_range(std::size_t first_elem,
                                             std::size_t count) {
  std::vector<Bytes> units;
  units.reserve(count);
  std::uint8_t nonces[8 * kRunBlocks];
  std::uint8_t xin[16 * kRunBlocks];
  std::uint8_t xout[16 * kRunBlocks];
  for (std::size_t done = 0; done < count;) {
    const std::size_t run = std::min(kRunBlocks, count - done);
    // One rng fill and one pipelined AES pass cover the whole run.
    rng_->fill(MutByteView(nonces, 8 * run));
    for (std::size_t b = 0; b < run; ++b) {
      const std::string& chars =
          store_.block(first_elem + done + b).plain;
      check_chars(chars, 8);
      const std::uint8_t* ri = nonces + 8 * b;
      std::uint8_t* x = xin + 16 * b;
      std::memset(x, 0, 16);
      for (int i = 0; i < 8; ++i) {
        x[i] = static_cast<std::uint8_t>(r0_[static_cast<std::size_t>(i)] ^
                                         ri[i]);
      }
      for (std::size_t i = 0; i < chars.size(); ++i) {
        x[8 + i] = static_cast<std::uint8_t>(chars[i]);
      }
      for (int i = 0; i < 8; ++i) {
        x[8 + i] = static_cast<std::uint8_t>(x[8 + i] ^ ri[i]);
      }
    }
    aes_.encrypt_blocks(ByteView(xin, 16 * run), MutByteView(xout, 16 * run),
                        run);
    for (std::size_t b = 0; b < run; ++b) {
      Bytes unit(kUnitRaw);
      unit[0] = static_cast<std::uint8_t>(
          store_.block(first_elem + done + b).plain.size());
      std::memcpy(unit.data() + 1, xout + 16 * b, 16);
      store_.set_unit(first_elem + done + b, unit, 0);
      units.push_back(std::move(unit));
    }
    done += run;
  }
  secure_wipe(MutByteView(nonces, sizeof(nonces)));
  secure_wipe(MutByteView(xin, sizeof(xin)));
  return units;
}

void RecbScheme::reencrypt_region(const RegionChange& change, SpliceLog& log) {
  std::vector<Bytes> new_units =
      encrypt_range(change.first_elem, change.new_count);
  stats_.blocks_reencrypted += change.new_count;
  // Data block e lives at unit index e + 1 (unit 0 is the header unit).
  log.replace(change.first_elem + 1,
              change.first_elem + 1 + change.old_count, std::move(new_units));
}

delta::Delta RecbScheme::transform_delta(const delta::Delta& pdelta) {
  const delta::Delta canon = pdelta.canonicalized();
  SpliceLog log;
  std::size_t pos = 0;
  const auto& ops = canon.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const delta::Op& op = ops[i];
    switch (op.kind) {
      case delta::OpKind::kRetain:
        pos += op.count;
        if (pos > store_.char_count()) {
          throw Error(ErrorCode::kInvalidArgument,
                      "transform_delta: retain past end of document");
        }
        break;
      case delta::OpKind::kDelete: {
        // Canonical form puts an insert right after a delete at the same
        // position; fold the pair into one region edit.
        std::string_view insert_text;
        if (i + 1 < ops.size() && ops[i + 1].kind == delta::OpKind::kInsert) {
          insert_text = ops[i + 1].text;
          ++i;
        }
        const RegionChange change =
            store_.replace_range(pos, op.count, insert_text);
        reencrypt_region(change, log);
        pos += insert_text.size();
        break;
      }
      case delta::OpKind::kInsert: {
        const RegionChange change = store_.replace_range(pos, 0, op.text);
        reencrypt_region(change, log);
        pos += op.count;
        break;
      }
    }
  }
  ++stats_.incremental_updates;
  return log.to_cdelta(header_.prefix_chars(), header_.unit_width(),
                       header_.codec);
}

std::string RecbScheme::plaintext() const { return store_.plaintext(); }

std::string RecbScheme::ciphertext_doc() const {
  ContainerWriter writer(header_);
  writer.add_unit(header_unit_);
  store_.for_each([&writer](const Block& b) { writer.add_unit(b.unit); });
  return writer.str();
}

SchemeStats RecbScheme::stats() const {
  SchemeStats s = stats_;
  s.plaintext_chars = store_.char_count();
  s.block_count = store_.block_count();
  s.ciphertext_chars =
      header_.prefix_chars() + (store_.block_count() + 1) * header_.unit_width();
  return s;
}

}  // namespace privedit::enc
