#pragma once
// SpliceLog — records unit-level rewrites during one IncE call and renders
// them as a ciphertext delta (cdelta) over the encoded document string.
//
// The difficulty it solves: while a plaintext delta is being applied, the
// unit sequence mutates, but the cdelta must be expressed against the *old*
// sequence the server currently holds. Edits also overlap (RPC rewrites the
// left chaining neighbour of every edit region; adjacent plaintext edits can
// touch the same block), so naive per-edit emission would double-delete old
// units. SpliceLog tracks replacements in *current* coordinates, merges
// overlapping/adjacent ones, and maintains the old-coordinate mapping.

#include <cstdint>
#include <vector>

#include "privedit/delta/delta.hpp"
#include "privedit/enc/types.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::enc {

class SpliceLog {
 public:
  struct Splice {
    std::size_t cur_start;  // in current unit coordinates
    std::size_t old_start;  // in pre-IncE unit coordinates
    std::size_t old_len;    // old units removed
    std::vector<Bytes> units;  // replacement units (raw bytes)

    std::size_t cur_len() const { return units.size(); }
  };

  /// Replaces current units [cur_start, cur_end) with `units`.
  /// May be called with ranges that overlap or touch earlier replacements;
  /// such calls coalesce. Within one call cur_start <= cur_end.
  void replace(std::size_t cur_start, std::size_t cur_end,
               std::vector<Bytes> units);

  /// All recorded splices, sorted by old_start, non-overlapping.
  const std::vector<Splice>& splices() const { return splices_; }

  bool empty() const { return splices_.empty(); }
  void clear() { splices_.clear(); }

  /// Renders the cdelta over the encoded document: prefix_chars of header,
  /// unit_width characters per unit, units encoded with `codec`.
  delta::Delta to_cdelta(std::size_t prefix_chars, std::size_t unit_width,
                         Codec codec) const;

 private:
  /// Maps a current position that lies outside every splice to the old
  /// coordinate space.
  std::size_t map_to_old(std::size_t cur_pos) const;

  std::vector<Splice> splices_;  // sorted by cur_start, disjoint
};

}  // namespace privedit::enc
