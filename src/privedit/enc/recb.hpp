#pragma once
// rECB — randomized ECB incremental encryption (§V-B, confidentiality only).
//
// Ciphertext layout per the paper:
//   unit 0 (header unit):  F_sk(r0 || 0^8)
//   unit i (data block):   [count byte, clear] || F_sk(r0⊕r_i || r_i⊕d_i)
// where r0, r_i are fresh 64-bit nonces and d_i is the block's payload
// (count chars, zero-padded to 8 bytes). Each data block decrypts
// independently given r0, which is what makes IncE touch only the edited
// blocks. The clear count byte is the paper's "block character counter"
// for variable-length blocks; block boundaries are revealed to the server
// regardless (it applies the cdelta), so the counter leaks nothing new.

#include <memory>
#include <vector>

#include "privedit/crypto/aes_engine.hpp"
#include "privedit/enc/block_store.hpp"
#include "privedit/enc/scheme.hpp"
#include "privedit/enc/splice_log.hpp"

namespace privedit::enc {

/// Encrypts one rECB data unit: count byte + AES(r0⊕ri || ri⊕payload).
Bytes recb_encrypt_unit(const crypto::Aes128Engine& aes, ByteView r0,
                        std::string_view chars, RandomSource& rng);

/// Decrypts one rECB data unit; throws ParseError on malformed padding.
std::string recb_decrypt_unit(const crypto::Aes128Engine& aes, ByteView r0,
                              ByteView unit, std::size_t max_chars);

/// Builds the header unit F(r0 || 0^8) with a zero count byte.
Bytes recb_header_unit(const crypto::Aes128Engine& aes, ByteView r0);

/// Recovers r0 from the header unit; throws CryptoError if the padding
/// check fails (wrong password or corrupted document).
Bytes recb_open_header_unit(const crypto::Aes128Engine& aes, ByteView unit);

class RecbScheme final : public IncrementalScheme {
 public:
  RecbScheme(ContainerHeader header, const crypto::DocumentKeys& keys,
             std::unique_ptr<RandomSource> rng, BlockPolicy policy = {});

  const ContainerHeader& header() const override { return header_; }
  std::string initialize(std::string_view plaintext) override;
  void load(std::string_view ciphertext_doc) override;
  delta::Delta transform_delta(const delta::Delta& pdelta) override;
  std::string plaintext() const override;
  std::string ciphertext_doc() const override;
  SchemeStats stats() const override;

 private:
  void reencrypt_region(const RegionChange& change, SpliceLog& log);

  /// Re-encrypts store blocks [first_elem, first_elem + count) through the
  /// engine batch path — one rng fill and one pipelined AES pass per run —
  /// installs the fresh units in the store, and returns them in order.
  std::vector<Bytes> encrypt_range(std::size_t first_elem, std::size_t count);

  ContainerHeader header_;
  crypto::Aes128Engine aes_;
  std::unique_ptr<RandomSource> rng_;
  BlockStore store_;
  Bytes r0_;
  Bytes header_unit_;
  SchemeStats stats_;
};

}  // namespace privedit::enc
