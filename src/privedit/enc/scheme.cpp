#include "privedit/enc/scheme.hpp"

#include "privedit/enc/coclo.hpp"
#include "privedit/enc/recb.hpp"
#include "privedit/enc/rpc.hpp"
#include "privedit/util/error.hpp"

namespace privedit::enc {

delta::Delta IncrementalScheme::compact() {
  const ContainerHeader& h = header();
  const std::string old_doc = ciphertext_doc();
  const std::string new_doc = initialize(plaintext());
  delta::Delta cdelta;
  cdelta.push(delta::Op::retain(h.prefix_chars()));
  cdelta.push(delta::Op::erase(old_doc.size() - h.prefix_chars()));
  cdelta.push(delta::Op::insert(new_doc.substr(h.prefix_chars())));
  return cdelta.canonicalized();
}

std::unique_ptr<IncrementalScheme> make_scheme(
    const ContainerHeader& header, const crypto::DocumentKeys& keys,
    std::unique_ptr<RandomSource> rng) {
  switch (header.mode) {
    case Mode::kRecb:
      return std::make_unique<RecbScheme>(header, keys, std::move(rng));
    case Mode::kRpc:
      return std::make_unique<RpcScheme>(header, keys, std::move(rng));
    case Mode::kCoClo:
      return std::make_unique<CoCloScheme>(header, keys, std::move(rng));
  }
  throw Error(ErrorCode::kInvalidArgument, "make_scheme: unknown mode");
}

ContainerHeader make_header(const SchemeConfig& config, RandomSource& rng) {
  ContainerHeader header;
  header.mode = config.mode;
  header.block_chars = config.block_chars;
  header.codec = config.codec;
  header.kdf_iterations = config.kdf_iterations;
  header.salt = rng.bytes(16);
  return header;
}

}  // namespace privedit::enc
