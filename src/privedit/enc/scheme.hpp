#pragma once
// IncrementalScheme — the paper's 4-tuple (K, Enc, Dec, IncE) as an object.
//
//   K    — key derivation happens outside (crypto::derive_document_keys);
//          a scheme is constructed from the derived key bundle.
//   Enc  — initialize(): encrypts a whole plaintext, (re)builds the
//          client-side state, returns the encoded ciphertext document.
//   Dec  — load() + plaintext(): restores state from a ciphertext document
//          (verifying integrity where the mode supports it).
//   IncE — transform_delta(): translates a plaintext delta into the
//          ciphertext delta (cdelta) the mediator sends to the server,
//          updating the client-side mirror as a side effect.

#include <memory>
#include <string>
#include <string_view>

#include "privedit/crypto/key_derivation.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/enc/types.hpp"
#include "privedit/util/random.hpp"

namespace privedit::enc {

class IncrementalScheme {
 public:
  virtual ~IncrementalScheme() = default;

  virtual const ContainerHeader& header() const = 0;

  /// Enc: encrypts `plaintext` from scratch. Returns the full encoded
  /// ciphertext document and resets the incremental state to match.
  virtual std::string initialize(std::string_view plaintext) = 0;

  /// Dec (state-building half): parses and decrypts `ciphertext_doc`,
  /// loading the incremental state. Throws CryptoError on a wrong password
  /// and IntegrityError when an authenticated mode detects tampering.
  virtual void load(std::string_view ciphertext_doc) = 0;

  /// IncE: applies a plaintext delta to the client-side mirror and returns
  /// the corresponding ciphertext delta over the encoded document string.
  virtual delta::Delta transform_delta(const delta::Delta& pdelta) = 0;

  /// Current plaintext (Dec's output when called after load()).
  virtual std::string plaintext() const = 0;

  /// Re-serialises the full encoded ciphertext document from state.
  /// O(document); used for verification and benches, never on the wire
  /// after the first save.
  virtual std::string ciphertext_doc() const = 0;

  virtual SchemeStats stats() const = 0;

  /// Maintenance: re-chunks the whole document into full blocks (fresh
  /// nonces throughout) and returns the ciphertext delta that replaces the
  /// stored body. Fragmentation from past edits (§V-C / Fig 7's
  /// ideal-vs-actual gap) is eliminated; intended for idle moments, as the
  /// cdelta is document-sized. Default: re-initialise and replace the body.
  virtual delta::Delta compact();
};

/// Builds the scheme instance described by `header`. `rng` supplies nonces
/// and padding; pass a seeded crypto::CtrDrbg for reproducible tests.
std::unique_ptr<IncrementalScheme> make_scheme(
    const ContainerHeader& header, const crypto::DocumentKeys& keys,
    std::unique_ptr<RandomSource> rng);

/// Convenience: header with fresh random salt from `config`.
ContainerHeader make_header(const SchemeConfig& config, RandomSource& rng);

}  // namespace privedit::enc
