#include "privedit/enc/rpc.hpp"

#include <cstring>

#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

constexpr std::size_t kUnitRaw = 32;
constexpr std::uint8_t kFlagData = 0x00;
constexpr std::uint8_t kFlagStart = 0x01;
constexpr std::uint8_t kFlagFinal = 0x02;

// α — the paper's arbitrary start marker.
constexpr std::uint8_t kAlpha[8] = {'R', 'P', 'C', 'S', 'T', 'A', 'R', 'T'};

// Batch tuple runs stay on the stack: 2 x 2 KiB raw/enc + 384 B pads.
constexpr std::size_t kRunBlocks = 64;

}  // namespace

RpcScheme::RpcScheme(ContainerHeader header, const crypto::DocumentKeys& keys,
                     std::unique_ptr<RandomSource> rng, BlockPolicy policy,
                     bool length_amendment)
    : header_(std::move(header)),
      wide_(keys.wide_key),
      rng_(std::move(rng)),
      store_(header_.block_chars, policy),
      length_amendment_(length_amendment),
      xor_payloads_(8, 0) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "RpcScheme: null rng");
  }
}

void RpcScheme::write_payload(std::string_view chars, std::uint8_t out[8]) {
  if (chars.size() > 8) {
    throw Error(ErrorCode::kInvalidArgument, "RPC: payload too long");
  }
  std::memset(out, 0, 8);
  std::memcpy(out, chars.data(), chars.size());
}

Bytes RpcScheme::seal(const Tuple& t) const {
  std::uint8_t raw[kUnitRaw];
  store_u64be(MutByteView(raw, 8), t.nonce);
  raw[8] = t.flag;
  raw[9] = static_cast<std::uint8_t>(t.count);
  std::memcpy(raw + 10, t.payload.data(), 8);
  std::memcpy(raw + 18, t.pad.data(), 6);
  store_u64be(MutByteView(raw + 24, 8), t.next);
  Bytes unit(kUnitRaw);
  wide_.encrypt_block(ByteView(raw, kUnitRaw), unit);
  secure_wipe(MutByteView(raw, kUnitRaw));
  return unit;
}

RpcScheme::Tuple RpcScheme::open(ByteView unit) const {
  if (unit.size() != kUnitRaw) {
    throw ParseError("RPC: unit has wrong size");
  }
  std::uint8_t raw[kUnitRaw];
  wide_.decrypt_block(unit, raw);
  Tuple t;
  t.nonce = load_u64be(ByteView(raw, 8));
  t.flag = raw[8];
  t.count = raw[9];
  std::memcpy(t.payload.data(), raw + 10, 8);
  std::memcpy(t.pad.data(), raw + 18, 6);
  t.next = load_u64be(ByteView(raw + 24, 8));
  secure_wipe(MutByteView(raw, kUnitRaw));
  return t;
}

std::uint64_t RpcScheme::fresh_nonce() { return rng_->next_u64(); }

std::uint64_t RpcScheme::nonce_after(std::size_t elem) const {
  // Successor nonce of data block `elem`: the next block's nonce, or r0
  // when `elem` is the last block (the chain loops back to the start).
  return (elem + 1 < store_.block_count()) ? store_.block(elem + 1).nonce
                                           : r0_;
}

Bytes RpcScheme::encrypt_data_block(std::string_view chars,
                                    std::uint64_t nonce, std::uint64_t next) {
  Tuple t;
  t.nonce = nonce;
  t.flag = kFlagData;
  t.count = chars.size();
  write_payload(chars, t.payload.data());
  rng_->fill(t.pad);
  t.next = next;
  return seal(t);
}

Bytes RpcScheme::encrypt_start_unit(std::uint64_t first_nonce) {
  Tuple t;
  t.nonce = r0_;
  t.flag = kFlagStart;
  t.count = 0;
  std::memcpy(t.payload.data(), kAlpha, 8);
  rng_->fill(t.pad);
  t.next = first_nonce;
  return seal(t);
}

Bytes RpcScheme::encrypt_final_unit() {
  Tuple t;
  t.nonce = r0_ ^ xor_nonces_;  // ⊕_{i=0..n} r_i
  t.flag = kFlagFinal;
  t.count = 0;
  std::memcpy(t.payload.data(), xor_payloads_.data(), 8);
  if (length_amendment_) {
    // u48be document length — the Wang et al. amendment.
    std::uint64_t len = store_.char_count();
    for (int i = 5; i >= 0; --i) {
      t.pad[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len & 0xff);
      len >>= 8;
    }
  } else {
    rng_->fill(t.pad);
  }
  t.next = xor_nonces_;  // ⊕_{i=1..n} r_i
  return seal(t);
}

std::vector<Bytes> RpcScheme::encrypt_data_range(
    std::size_t first_elem, const std::vector<std::uint64_t>& nonces,
    std::uint64_t tail_next) {
  const std::size_t count = nonces.size();
  std::vector<Bytes> units;
  units.reserve(count);
  std::uint8_t raw[kUnitRaw * kRunBlocks];
  std::uint8_t enc[kUnitRaw * kRunBlocks];
  std::uint8_t pads[6 * kRunBlocks];
  for (std::size_t done = 0; done < count;) {
    const std::size_t run = std::min(kRunBlocks, count - done);
    rng_->fill(MutByteView(pads, 6 * run));
    for (std::size_t i = 0; i < run; ++i) {
      const std::size_t idx = done + i;
      const std::string& chars = store_.block(first_elem + idx).plain;
      const std::uint64_t next =
          (idx + 1 < count) ? nonces[idx + 1] : tail_next;
      std::uint8_t* r = raw + kUnitRaw * i;
      store_u64be(MutByteView(r, 8), nonces[idx]);
      r[8] = kFlagData;
      r[9] = static_cast<std::uint8_t>(chars.size());
      write_payload(chars, r + 10);
      std::memcpy(r + 18, pads + 6 * i, 6);
      store_u64be(MutByteView(r + 24, 8), next);
      xor_nonces_ ^= nonces[idx];
      xor_into(xor_payloads_, ByteView(r + 10, 8));
    }
    // One pipelined wide-block pass covers the whole run.
    wide_.encrypt_blocks(ByteView(raw, kUnitRaw * run),
                         MutByteView(enc, kUnitRaw * run), run);
    for (std::size_t i = 0; i < run; ++i) {
      const std::size_t idx = done + i;
      Bytes unit(enc + kUnitRaw * i, enc + kUnitRaw * (i + 1));
      store_.set_unit(first_elem + idx, unit, nonces[idx]);
      units.push_back(std::move(unit));
    }
    done += run;
  }
  secure_wipe(MutByteView(raw, sizeof(raw)));
  secure_wipe(MutByteView(pads, sizeof(pads)));
  return units;
}

std::string RpcScheme::initialize(std::string_view plaintext) {
  r0_ = fresh_nonce();
  xor_nonces_ = 0;
  xor_payloads_.assign(8, 0);
  store_.reset(plaintext);

  // Assign nonces first so each block can point at its successor.
  std::vector<std::uint64_t> nonces(store_.block_count());
  for (auto& n : nonces) n = fresh_nonce();

  ContainerWriter writer(header_);
  start_unit_ =
      encrypt_start_unit(store_.block_count() > 0 ? nonces[0] : r0_);
  writer.add_unit(start_unit_);
  for (const Bytes& unit : encrypt_data_range(0, nonces, r0_)) {
    writer.add_unit(unit);
  }
  writer.add_unit(encrypt_final_unit());
  stats_ = SchemeStats{};
  stats_.blocks_reencrypted = store_.block_count();
  return writer.str();
}

void RpcScheme::load(std::string_view ciphertext_doc) {
  ContainerReader reader(ciphertext_doc);
  if (reader.header().mode != header_.mode ||
      reader.header().block_chars != header_.block_chars) {
    throw ParseError("RPC: document header does not match scheme");
  }
  if (reader.unit_count() < 2) {
    throw ParseError("RPC: document must contain START and FINAL units");
  }

  start_unit_ = reader.unit(0);
  const Tuple start = open(start_unit_);
  if (start.flag != kFlagStart ||
      std::memcmp(start.payload.data(), kAlpha, 8) != 0) {
    throw CryptoError("RPC: wrong password or corrupted document");
  }
  r0_ = start.nonce;

  std::uint64_t expected = start.next;
  std::uint64_t xr = 0;
  Bytes xp(8, 0);
  std::vector<Block> blocks;
  const std::size_t data_units = reader.unit_count() - 2;
  blocks.reserve(data_units);
  for (std::size_t u = 1; u <= data_units; ++u) {
    Bytes unit = reader.unit(u);
    const Tuple t = open(unit);
    if (t.flag != kFlagData) {
      throw IntegrityError("RPC: unexpected unit type in chain");
    }
    if (t.nonce != expected) {
      throw IntegrityError("RPC: nonce chain broken (block substituted, "
                           "reordered or replayed)");
    }
    if (t.count == 0 || t.count > header_.block_chars) {
      throw IntegrityError("RPC: block count out of range");
    }
    for (std::size_t i = t.count; i < 8; ++i) {
      if (t.payload[i] != 0) {
        throw IntegrityError("RPC: nonzero block padding");
      }
    }
    xr ^= t.nonce;
    xor_into(xp, t.payload);
    blocks.push_back(Block{
        std::string(reinterpret_cast<const char*>(t.payload.data()), t.count),
        std::move(unit), t.nonce});
    expected = t.next;
  }
  if (expected != r0_) {
    throw IntegrityError("RPC: chain does not close back to r0 (document "
                         "truncated or extended)");
  }

  const Tuple fin = open(reader.unit(reader.unit_count() - 1));
  if (fin.flag != kFlagFinal) {
    throw IntegrityError("RPC: final unit missing");
  }
  if (fin.nonce != (r0_ ^ xr) || fin.next != xr ||
      !ct_equal(fin.payload, xp)) {
    throw IntegrityError("RPC: checksum block mismatch");
  }
  if (length_amendment_) {
    std::uint64_t len = 0;
    for (std::size_t i = 0; i < 6; ++i) len = (len << 8) | fin.pad[i];
    std::size_t total = 0;
    for (const Block& b : blocks) total += b.plain.size();
    if (len != total) {
      throw IntegrityError("RPC: document length mismatch");
    }
  }

  store_.load_blocks(std::move(blocks));
  xor_nonces_ = xr;
  xor_payloads_ = xp;
  stats_ = SchemeStats{};
}

void RpcScheme::rewrite_predecessor(std::size_t elem, SpliceLog& log) {
  const std::uint64_t succ =
      (elem < store_.block_count()) ? store_.block(elem).nonce : r0_;
  if (elem == 0) {
    start_unit_ = encrypt_start_unit(succ);
    log.replace(0, 1, {start_unit_});
  } else {
    const std::size_t pred = elem - 1;
    const Block& p = store_.block(pred);
    Bytes unit = encrypt_data_block(p.plain, p.nonce, succ);
    store_.set_unit(pred, unit, p.nonce);
    log.replace(pred + 1, pred + 2, {unit});
  }
}

void RpcScheme::apply_region(const RegionChange& change, SpliceLog& log) {
  // Update the XOR aggregates for the removed blocks.
  std::uint8_t old_payload[8];
  for (const Block& old : change.removed) {
    xor_nonces_ ^= old.nonce;
    write_payload(old.plain, old_payload);
    xor_into(xor_payloads_, ByteView(old_payload, 8));
  }

  // Fresh nonces for the re-chunked blocks, then encrypt them. The block
  // after the region keeps its nonce, so no rewrite is needed on the right.
  std::vector<std::uint64_t> nonces(change.new_count);
  for (auto& n : nonces) n = fresh_nonce();
  const std::uint64_t tail_next =
      change.new_count > 0
          ? nonce_after(change.first_elem + change.new_count - 1)
          : r0_;
  std::vector<Bytes> new_units =
      encrypt_data_range(change.first_elem, nonces, tail_next);
  stats_.blocks_reencrypted += change.new_count;

  log.replace(change.first_elem + 1,
              change.first_elem + 1 + change.old_count, std::move(new_units));

  // The predecessor must point at the first re-chunked block (or, for a
  // pure deletion, at whatever now follows the hole).
  rewrite_predecessor(change.first_elem, log);
}

delta::Delta RpcScheme::transform_delta(const delta::Delta& pdelta) {
  const delta::Delta canon = pdelta.canonicalized();
  SpliceLog log;
  std::size_t pos = 0;
  bool dirty = false;
  const auto& ops = canon.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const delta::Op& op = ops[i];
    switch (op.kind) {
      case delta::OpKind::kRetain:
        pos += op.count;
        if (pos > store_.char_count()) {
          throw Error(ErrorCode::kInvalidArgument,
                      "transform_delta: retain past end of document");
        }
        break;
      case delta::OpKind::kDelete: {
        std::string_view insert_text;
        if (i + 1 < ops.size() && ops[i + 1].kind == delta::OpKind::kInsert) {
          insert_text = ops[i + 1].text;
          ++i;
        }
        const RegionChange change =
            store_.replace_range(pos, op.count, insert_text);
        apply_region(change, log);
        pos += insert_text.size();
        dirty = true;
        break;
      }
      case delta::OpKind::kInsert: {
        const RegionChange change = store_.replace_range(pos, 0, op.text);
        apply_region(change, log);
        pos += op.count;
        dirty = true;
        break;
      }
    }
  }
  if (dirty) {
    // FINAL is the last unit: current index = block_count + 1.
    const std::size_t final_idx = store_.block_count() + 1;
    log.replace(final_idx, final_idx + 1, {encrypt_final_unit()});
  }
  ++stats_.incremental_updates;
  return log.to_cdelta(header_.prefix_chars(), header_.unit_width(),
                       header_.codec);
}

std::string RpcScheme::plaintext() const { return store_.plaintext(); }

std::string RpcScheme::ciphertext_doc() const {
  ContainerWriter writer(header_);
  writer.add_unit(start_unit_);
  store_.for_each([&writer](const Block& b) { writer.add_unit(b.unit); });
  // NOTE: encrypt_final_unit() is const-incompatible because of rng pad;
  // with the amendment the pad is deterministic, so rebuild it here.
  Bytes raw(kUnitRaw);
  store_u64be(MutByteView(raw.data(), 8), r0_ ^ xor_nonces_);
  raw[8] = kFlagFinal;
  raw[9] = 0;
  std::memcpy(raw.data() + 10, xor_payloads_.data(), 8);
  std::uint64_t len = store_.char_count();
  for (int i = 5; i >= 0; --i) {
    raw[static_cast<std::size_t>(18 + i)] = static_cast<std::uint8_t>(len & 0xff);
    len >>= 8;
  }
  store_u64be(MutByteView(raw.data() + 24, 8), xor_nonces_);
  Bytes final_unit(kUnitRaw);
  wide_.encrypt_block(raw, final_unit);
  writer.add_unit(final_unit);
  return writer.str();
}

SchemeStats RpcScheme::stats() const {
  SchemeStats s = stats_;
  s.plaintext_chars = store_.char_count();
  s.block_count = store_.block_count();
  s.ciphertext_chars =
      header_.prefix_chars() + (store_.block_count() + 2) * header_.unit_width();
  return s;
}

}  // namespace privedit::enc
