#pragma once
// BlockStore — the client-side mirror of the blocked document.
//
// Maps plaintext edits (replace range [pos, pos+del) with `text`) onto the
// IndexedSkipList of blocks: finds the affected block range, re-chunks the
// region's characters under the block policy, and swaps the blocks out. The
// encryption schemes then re-encrypt exactly the returned region.
//
// Blocks hold the plaintext chars they cover (IncE "optionally takes the
// previous plaintext M" — we keep M blocked alongside C so IncE never has
// to decrypt), the current ciphertext unit bytes, and the RPC chaining
// nonce.

#include <cstdint>
#include <string>
#include <vector>

#include "privedit/ds/indexed_skip_list.hpp"
#include "privedit/enc/types.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::enc {

struct Block {
  std::string plain;      // 1..block_chars characters
  Bytes unit;             // current raw unit bytes (set by the scheme)
  std::uint64_t nonce = 0;  // RPC: this block's r_i; unused for rECB
};

/// Result of a region edit: blocks [first_elem, first_elem + new_count)
/// are freshly re-chunked and need (re-)encryption; old_count blocks were
/// removed at that position.
struct RegionChange {
  std::size_t first_elem = 0;
  std::size_t old_count = 0;
  std::size_t new_count = 0;
  std::vector<Block> removed;  // the replaced blocks (RPC needs their
                               // nonces/payloads to update XOR aggregates)
};

class BlockStore {
 public:
  BlockStore(std::size_t block_chars, BlockPolicy policy,
             std::uint64_t skiplist_seed = 0x51ee7ULL);

  std::size_t block_count() const { return list_.size(); }
  std::size_t char_count() const { return list_.total_weight(); }

  /// Rebuilds from plaintext (used by Enc). Blocks get empty units.
  void reset(std::string_view plaintext);

  /// Applies one edit region; throws if the range is out of bounds.
  RegionChange replace_range(std::size_t pos, std::size_t del_count,
                             std::string_view text);

  const Block& block(std::size_t elem) const { return list_.get(elem); }

  /// Sets the ciphertext unit (and optional nonce) of a block without
  /// touching its plaintext.
  void set_unit(std::size_t elem, Bytes unit, std::uint64_t nonce);

  /// Full plaintext (concatenation of all blocks).
  std::string plaintext() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    list_.for_each([&fn](const Block& b, std::size_t) { fn(b); });
  }

  /// Loads blocks directly (used by Dec when opening a document).
  void load_blocks(std::vector<Block> blocks);

  bool validate() const { return list_.validate(); }

  std::size_t block_chars() const { return block_chars_; }
  const BlockPolicy& policy() const { return policy_; }

 private:
  /// Re-chunks `text` under the policy into `out` (cleared first). Chunks
  /// are at most 8 chars, so the strings stay in SSO storage; the vector
  /// itself is the caller's reusable scratch.
  void chunk(std::string_view text, std::vector<std::string>& out) const;

  std::size_t block_chars_;
  BlockPolicy policy_;
  ds::IndexedSkipList<Block> list_;

  // Reused across edits so the steady-state replace_range path performs no
  // vector/string heap traffic (the skip list recycles nodes underneath).
  std::vector<std::string> chunk_scratch_;
  std::string region_scratch_;
};

}  // namespace privedit::enc
