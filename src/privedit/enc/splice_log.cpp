#include "privedit/enc/splice_log.hpp"

#include <algorithm>

#include "privedit/util/error.hpp"

namespace privedit::enc {

std::size_t SpliceLog::map_to_old(std::size_t cur_pos) const {
  std::int64_t shift = 0;
  for (const Splice& s : splices_) {
    if (s.cur_start + s.cur_len() <= cur_pos) {
      shift += static_cast<std::int64_t>(s.cur_len()) -
               static_cast<std::int64_t>(s.old_len);
    } else if (s.cur_start < cur_pos) {
      throw Error(ErrorCode::kState,
                  "SpliceLog: position maps inside an existing splice");
    }
  }
  return static_cast<std::size_t>(static_cast<std::int64_t>(cur_pos) - shift);
}

void SpliceLog::replace(std::size_t a, std::size_t b,
                        std::vector<Bytes> units) {
  if (a > b) {
    throw Error(ErrorCode::kInvalidArgument, "SpliceLog: inverted range");
  }
  // Find splices overlapping or adjacent to [a, b).
  std::size_t first = splices_.size(), last = 0;
  bool any = false;
  for (std::size_t i = 0; i < splices_.size(); ++i) {
    const Splice& s = splices_[i];
    const std::size_t s_end = s.cur_start + s.cur_len();
    const bool disjoint = (s_end < a) || (s.cur_start > b);
    if (!disjoint) {
      if (!any) first = i;
      last = i;
      any = true;
    }
  }

  const std::int64_t span_delta =
      static_cast<std::int64_t>(units.size()) - static_cast<std::int64_t>(b - a);

  if (!any) {
    const std::size_t old_a = map_to_old(a);
    Splice fresh{a, old_a, b - a, std::move(units)};
    // Insert keeping cur_start order, then shift later splices.
    auto it = std::find_if(splices_.begin(), splices_.end(),
                           [&](const Splice& s) { return s.cur_start > a; });
    for (auto later = it; later != splices_.end(); ++later) {
      later->cur_start = static_cast<std::size_t>(
          static_cast<std::int64_t>(later->cur_start) + span_delta);
    }
    splices_.insert(it, std::move(fresh));
    return;
  }

  Splice& left = splices_[first];
  Splice& right = splices_[last];
  const std::size_t right_end = right.cur_start + right.cur_len();

  // Replacement units: surviving prefix of `left`, the new units, and the
  // surviving suffix of `right`.
  std::vector<Bytes> merged_units;
  if (a > left.cur_start) {
    const std::size_t keep = std::min(a - left.cur_start, left.cur_len());
    merged_units.insert(merged_units.end(), left.units.begin(),
                        left.units.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  merged_units.insert(merged_units.end(),
                      std::make_move_iterator(units.begin()),
                      std::make_move_iterator(units.end()));
  if (b < right_end) {
    const std::size_t skip = b > right.cur_start ? b - right.cur_start : 0;
    merged_units.insert(
        merged_units.end(),
        right.units.begin() + static_cast<std::ptrdiff_t>(skip),
        right.units.end());
  }

  // Old coordinates of the merged splice.
  std::size_t old_start = left.old_start;
  if (a < left.cur_start) {
    // The range extends into unspliced territory left of `left`; those
    // positions map 1:1 (shifted by splices before `first`).
    old_start = left.old_start - (left.cur_start - a);
  }
  std::size_t old_end = right.old_start + right.old_len;
  if (b > right_end) {
    old_end += b - right_end;
  }

  const std::size_t merged_cur_start = std::min(a, left.cur_start);
  const std::size_t covered_span = std::max(b, right_end) - merged_cur_start;
  const std::int64_t total_delta =
      static_cast<std::int64_t>(merged_units.size()) -
      static_cast<std::int64_t>(covered_span);

  Splice merged{merged_cur_start, old_start, old_end - old_start,
                std::move(merged_units)};

  // Shift splices after `last`.
  for (std::size_t i = last + 1; i < splices_.size(); ++i) {
    splices_[i].cur_start = static_cast<std::size_t>(
        static_cast<std::int64_t>(splices_[i].cur_start) + total_delta);
  }
  splices_.erase(splices_.begin() + static_cast<std::ptrdiff_t>(first),
                 splices_.begin() + static_cast<std::ptrdiff_t>(last) + 1);
  splices_.insert(splices_.begin() + static_cast<std::ptrdiff_t>(first),
                  std::move(merged));
}

delta::Delta SpliceLog::to_cdelta(std::size_t prefix_chars,
                                  std::size_t unit_width, Codec codec) const {
  delta::Delta d;
  std::size_t cursor = 0;
  for (const Splice& s : splices_) {
    const std::size_t start_char = prefix_chars + s.old_start * unit_width;
    if (start_char < cursor) {
      throw Error(ErrorCode::kState, "SpliceLog: splices out of order");
    }
    if (start_char > cursor) {
      d.push(delta::Op::retain(start_char - cursor));
    }
    if (s.old_len > 0) {
      d.push(delta::Op::erase(s.old_len * unit_width));
    }
    if (!s.units.empty()) {
      std::string text;
      text.reserve(s.units.size() * unit_width);
      for (const Bytes& unit : s.units) {
        text += codec_encode(codec, unit);
      }
      d.push(delta::Op::insert(std::move(text)));
    }
    cursor = start_char + s.old_len * unit_width;
  }
  return d.canonicalized();
}

}  // namespace privedit::enc
