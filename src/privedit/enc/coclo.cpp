#include "privedit/enc/coclo.hpp"

#include "privedit/enc/recb.hpp"
#include "privedit/util/error.hpp"

namespace privedit::enc {

CoCloScheme::CoCloScheme(ContainerHeader header,
                         const crypto::DocumentKeys& keys,
                         std::unique_ptr<RandomSource> rng)
    : header_(std::move(header)),
      aes_(keys.content_key),
      rng_(std::move(rng)) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "CoCloScheme: null rng");
  }
}

std::string CoCloScheme::encode_body() {
  // Fresh r0 per (re-)encryption — CoClo has no state to preserve.
  const Bytes r0 = rng_->bytes(kNonceSize);
  std::string body = codec_encode(header_.codec, recb_header_unit(aes_, r0));
  const std::size_t b = header_.block_chars;
  std::size_t blocks = 0;
  for (std::size_t pos = 0; pos < plaintext_.size(); pos += b) {
    const std::string_view chars =
        std::string_view(plaintext_).substr(pos, b);
    body += codec_encode(header_.codec,
                         recb_encrypt_unit(aes_, r0, chars, *rng_));
    ++blocks;
  }
  stats_.blocks_reencrypted += blocks;
  return body;
}

std::string CoCloScheme::initialize(std::string_view plaintext) {
  plaintext_.assign(plaintext);
  stats_ = SchemeStats{};
  body_ = encode_body();
  std::string doc;
  doc.push_back(codec_tag(header_.codec));
  doc += codec_encode(header_.codec, header_.serialize());
  doc += body_;
  return doc;
}

void CoCloScheme::load(std::string_view ciphertext_doc) {
  ContainerReader reader(ciphertext_doc);
  if (reader.header().block_chars != header_.block_chars) {
    throw ParseError("CoClo: document header does not match scheme");
  }
  if (reader.unit_count() == 0) {
    throw ParseError("CoClo: missing header unit");
  }
  const Bytes r0 = recb_open_header_unit(aes_, reader.unit(0));
  std::string plain;
  for (std::size_t u = 1; u < reader.unit_count(); ++u) {
    plain += recb_decrypt_unit(aes_, r0, reader.unit(u), header_.block_chars);
  }
  plaintext_ = std::move(plain);
  body_ = std::string(ciphertext_doc.substr(header_.prefix_chars()));
  stats_ = SchemeStats{};
}

delta::Delta CoCloScheme::transform_delta(const delta::Delta& pdelta) {
  plaintext_ = pdelta.apply(plaintext_);
  const std::size_t old_body_chars = body_.size();
  body_ = encode_body();
  ++stats_.incremental_updates;

  delta::Delta cdelta;
  cdelta.push(delta::Op::retain(header_.prefix_chars()));
  cdelta.push(delta::Op::erase(old_body_chars));
  cdelta.push(delta::Op::insert(body_));
  return cdelta.canonicalized();
}

std::string CoCloScheme::plaintext() const { return plaintext_; }

std::string CoCloScheme::ciphertext_doc() const {
  std::string doc;
  doc.push_back(codec_tag(header_.codec));
  doc += codec_encode(header_.codec, header_.serialize());
  doc += body_;
  return doc;
}

SchemeStats CoCloScheme::stats() const {
  SchemeStats s = stats_;
  s.plaintext_chars = plaintext_.size();
  s.block_count = (plaintext_.size() + header_.block_chars - 1) /
                  header_.block_chars;
  s.ciphertext_chars = header_.prefix_chars() + body_.size();
  return s;
}

}  // namespace privedit::enc
