#include "privedit/enc/coclo.hpp"

#include <cstring>

#include "privedit/enc/recb.hpp"
#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

// CoClo re-encrypts the whole document per update, so its batch runs are
// wider than the region schemes' (stack cost: 2 KiB nonces + 8 KiB AES).
constexpr std::size_t kRunBlocks = 256;

}  // namespace

CoCloScheme::CoCloScheme(ContainerHeader header,
                         const crypto::DocumentKeys& keys,
                         std::unique_ptr<RandomSource> rng)
    : header_(std::move(header)),
      aes_(keys.content_key),
      rng_(std::move(rng)) {
  if (rng_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "CoCloScheme: null rng");
  }
}

std::string CoCloScheme::encode_body() {
  // Fresh r0 per (re-)encryption — CoClo has no state to preserve.
  const Bytes r0 = rng_->bytes(kNonceSize);
  std::string body = codec_encode(header_.codec, recb_header_unit(aes_, r0));
  const std::size_t b = header_.block_chars;
  const std::size_t blocks = (plaintext_.size() + b - 1) / b;
  const std::string_view plain(plaintext_);

  std::uint8_t nonces[8 * kRunBlocks];
  std::uint8_t xin[16 * kRunBlocks];
  std::uint8_t xout[16 * kRunBlocks];
  std::uint8_t unit[1 + 16];
  for (std::size_t done = 0; done < blocks;) {
    const std::size_t run = std::min(kRunBlocks, blocks - done);
    rng_->fill(MutByteView(nonces, 8 * run));
    for (std::size_t i = 0; i < run; ++i) {
      const std::string_view chars = plain.substr((done + i) * b, b);
      const std::uint8_t* ri = nonces + 8 * i;
      std::uint8_t* x = xin + 16 * i;
      std::memset(x, 0, 16);
      for (int j = 0; j < 8; ++j) {
        x[j] = static_cast<std::uint8_t>(r0[static_cast<std::size_t>(j)] ^
                                         ri[j]);
      }
      for (std::size_t j = 0; j < chars.size(); ++j) {
        x[8 + j] = static_cast<std::uint8_t>(chars[j]);
      }
      for (int j = 0; j < 8; ++j) {
        x[8 + j] = static_cast<std::uint8_t>(x[8 + j] ^ ri[j]);
      }
    }
    aes_.encrypt_blocks(ByteView(xin, 16 * run), MutByteView(xout, 16 * run),
                        run);
    for (std::size_t i = 0; i < run; ++i) {
      const std::size_t chars =
          std::min(b, plaintext_.size() - (done + i) * b);
      unit[0] = static_cast<std::uint8_t>(chars);
      std::memcpy(unit + 1, xout + 16 * i, 16);
      body += codec_encode(header_.codec, ByteView(unit, sizeof(unit)));
    }
    done += run;
  }
  secure_wipe(MutByteView(nonces, sizeof(nonces)));
  secure_wipe(MutByteView(xin, sizeof(xin)));
  stats_.blocks_reencrypted += blocks;
  return body;
}

std::string CoCloScheme::initialize(std::string_view plaintext) {
  plaintext_.assign(plaintext);
  stats_ = SchemeStats{};
  body_ = encode_body();
  std::string doc;
  doc.push_back(codec_tag(header_.codec));
  doc += codec_encode(header_.codec, header_.serialize());
  doc += body_;
  return doc;
}

void CoCloScheme::load(std::string_view ciphertext_doc) {
  ContainerReader reader(ciphertext_doc);
  if (reader.header().block_chars != header_.block_chars) {
    throw ParseError("CoClo: document header does not match scheme");
  }
  if (reader.unit_count() == 0) {
    throw ParseError("CoClo: missing header unit");
  }
  const Bytes r0 = recb_open_header_unit(aes_, reader.unit(0));
  std::string plain;
  for (std::size_t u = 1; u < reader.unit_count(); ++u) {
    plain += recb_decrypt_unit(aes_, r0, reader.unit(u), header_.block_chars);
  }
  plaintext_ = std::move(plain);
  body_ = std::string(ciphertext_doc.substr(header_.prefix_chars()));
  stats_ = SchemeStats{};
}

delta::Delta CoCloScheme::transform_delta(const delta::Delta& pdelta) {
  plaintext_ = pdelta.apply(plaintext_);
  const std::size_t old_body_chars = body_.size();
  body_ = encode_body();
  ++stats_.incremental_updates;

  delta::Delta cdelta;
  cdelta.push(delta::Op::retain(header_.prefix_chars()));
  cdelta.push(delta::Op::erase(old_body_chars));
  cdelta.push(delta::Op::insert(body_));
  return cdelta.canonicalized();
}

std::string CoCloScheme::plaintext() const { return plaintext_; }

std::string CoCloScheme::ciphertext_doc() const {
  std::string doc;
  doc.push_back(codec_tag(header_.codec));
  doc += codec_encode(header_.codec, header_.serialize());
  doc += body_;
  return doc;
}

SchemeStats CoCloScheme::stats() const {
  SchemeStats s = stats_;
  s.plaintext_chars = plaintext_.size();
  s.block_count = (plaintext_.size() + header_.block_chars - 1) /
                  header_.block_chars;
  s.ciphertext_chars = header_.prefix_chars() + body_.size();
  return s;
}

}  // namespace privedit::enc
