#pragma once
// Self-describing ciphertext container format.
//
// The cloud server stores the ciphertext document as an opaque *string*
// (the editors treat content as text), laid out as:
//
//   [codec tag: 1 clear char]['3' = Base32, '6' = base64url]
//   [header: fixed-size binary record, codec-encoded]
//   [unit 0][unit 1]...[unit k]      each unit codec-encoded, fixed width
//
// Every unit has the same raw byte size per mode, so the encoded document
// has *arithmetically predictable* unit boundaries: unit u spans encoded
// characters [P + u·W, P + (u+1)·W). This is what lets IncE express its
// output as a ciphertext delta over the stored string without any framing
// separators.
//
// Header record (28 bytes):
//   magic "PEDC" | version u8 | mode u8 | block_chars u8 | codec u8
//   | kdf_iterations u32be | salt[16]
//
// The salt and KDF parameters ride inside the document so that opening an
// existing encrypted document needs only the password (§IV-C).

#include <cstdint>
#include <string>
#include <string_view>

#include "privedit/enc/types.hpp"
#include "privedit/util/bytes.hpp"

namespace privedit::enc {

struct ContainerHeader {
  static constexpr std::size_t kRawSize = 28;
  static constexpr std::uint8_t kVersion = 1;

  /// Upper bound accepted when *parsing* a header. Without it, flipping a
  /// bit in the stored kdf_iterations field would make the victim's next
  /// open run PBKDF2 for ~2^32 iterations — a denial-of-service the
  /// mutation fuzzer caught.
  static constexpr std::uint32_t kMaxKdfIterations = 5'000'000;

  Mode mode = Mode::kRecb;
  std::size_t block_chars = 8;
  Codec codec = Codec::kBase32;
  std::uint32_t kdf_iterations = 10'000;
  Bytes salt;  // 16 bytes

  /// Serialises to the 28-byte record. Throws on invalid fields.
  Bytes serialize() const;

  /// Parses and validates a 28-byte record.
  static ContainerHeader parse(ByteView raw);

  /// Raw byte size of one unit for this mode (incl. any clear prefix).
  std::size_t unit_raw_size() const;

  /// Encoded width of one unit in characters.
  std::size_t unit_width() const;

  /// Encoded characters before unit 0 (codec tag + encoded header).
  std::size_t prefix_chars() const;
};

/// True if the string plausibly is a privedit container: a valid codec
/// tag whose decoded header prefix carries the "PEDC" magic. Lets the
/// mediator distinguish a legacy plaintext document (pass through) from a
/// container corrupted in transit or at the provider (fail loudly) —
/// without this, one flipped byte of ciphertext would be handed to the
/// client as if it were the document text.
bool looks_like_container(std::string_view encoded_doc);

/// Splits an encoded ciphertext document into (header, unit count) and
/// yields the raw bytes of each unit. Throws ParseError on any framing
/// violation (bad tag, non-integral unit count, undecodable text).
class ContainerReader {
 public:
  explicit ContainerReader(std::string_view encoded_doc);

  const ContainerHeader& header() const { return header_; }
  std::size_t unit_count() const { return unit_count_; }

  /// Raw bytes of unit u (decoded on demand).
  Bytes unit(std::size_t u) const;

 private:
  std::string_view doc_;
  ContainerHeader header_;
  std::size_t unit_count_ = 0;
  std::size_t body_offset_ = 0;
};

/// Incrementally builds an encoded ciphertext document.
class ContainerWriter {
 public:
  explicit ContainerWriter(const ContainerHeader& header);

  void add_unit(ByteView raw);

  /// Returns the complete encoded document.
  std::string str() const { return out_; }

  std::size_t units_written() const { return units_; }

 private:
  ContainerHeader header_;
  std::string out_;
  std::size_t units_ = 0;
};

}  // namespace privedit::enc
