#include "privedit/enc/stego.hpp"

#include <array>
#include <map>

#include "privedit/util/error.hpp"

namespace privedit::enc {
namespace {

// 256 distinct five-letter words: 16 onsets × 16 codas, chosen so every
// combination is pronounceable enough to pass a casual glance.
constexpr const char* kOnsets[16] = {"bal", "cor", "dan", "fel", "gam", "hon",
                                     "jun", "lam", "mer", "nov", "pol", "ras",
                                     "sel", "tam", "vor", "win"};
constexpr const char* kCodas[16] = {"da", "el", "in", "or", "us", "an",
                                    "ta", "es", "on", "ar", "il", "em",
                                    "ut", "ov", "ed", "ir"};

struct Dictionary {
  std::array<std::string, 256> words;
  std::map<std::string, std::uint8_t, std::less<>> reverse;

  Dictionary() {
    for (int hi = 0; hi < 16; ++hi) {
      for (int lo = 0; lo < 16; ++lo) {
        const auto value = static_cast<std::size_t>(hi * 16 + lo);
        words[value] = std::string(kOnsets[hi]) + kCodas[lo];
        reverse.emplace(words[value], static_cast<std::uint8_t>(value));
      }
    }
  }
};

const Dictionary& dictionary() {
  static const Dictionary dict;
  return dict;
}

}  // namespace

std::string_view stego_word(std::uint8_t value) {
  return dictionary().words[value];
}

std::string stego_encode(ByteView data) {
  std::string out;
  out.reserve(data.size() * kStegoCharsPerByte);
  for (std::uint8_t b : data) {
    out += dictionary().words[b];
    out.push_back(' ');
  }
  return out;
}

Bytes stego_decode(std::string_view text) {
  if (text.size() % kStegoCharsPerByte != 0) {
    throw ParseError("stego: length is not a whole number of words");
  }
  Bytes out;
  out.reserve(text.size() / kStegoCharsPerByte);
  for (std::size_t pos = 0; pos < text.size(); pos += kStegoCharsPerByte) {
    const std::string_view word = text.substr(pos, 5);
    if (text[pos + 5] != ' ') {
      throw ParseError("stego: missing word separator");
    }
    const auto it = dictionary().reverse.find(word);
    if (it == dictionary().reverse.end()) {
      throw ParseError("stego: unknown word '" + std::string(word) + "'");
    }
    out.push_back(it->second);
  }
  return out;
}

}  // namespace privedit::enc
