#pragma once
// CoClo baseline [D'Angelo, Vitali, Zacchiroli 2010] — the prior-work
// comparison point from the paper's introduction: a client-side privacy
// tool that "requires reencrypting and transmitting the entire document for
// every update". We model it with the same rECB unit layout, but IncE
// discards the old ciphertext body and re-encrypts everything with a fresh
// r0, producing a cdelta that replaces the whole body. This makes the
// incremental-vs-wholesale comparison apples-to-apples: the only difference
// is the update strategy.

#include <memory>

#include "privedit/crypto/aes_engine.hpp"
#include "privedit/enc/scheme.hpp"

namespace privedit::enc {

class CoCloScheme final : public IncrementalScheme {
 public:
  CoCloScheme(ContainerHeader header, const crypto::DocumentKeys& keys,
              std::unique_ptr<RandomSource> rng);

  const ContainerHeader& header() const override { return header_; }
  std::string initialize(std::string_view plaintext) override;
  void load(std::string_view ciphertext_doc) override;
  delta::Delta transform_delta(const delta::Delta& pdelta) override;
  std::string plaintext() const override;
  std::string ciphertext_doc() const override;
  SchemeStats stats() const override;

  /// CoClo has no fragmentation to remove — every update already rebuilds
  /// the whole body — so compaction is a no-op.
  delta::Delta compact() override { return delta::Delta{}; }

 private:
  /// Encrypts the current plaintext into an encoded body (all units).
  std::string encode_body();

  ContainerHeader header_;
  crypto::Aes128Engine aes_;
  std::unique_ptr<RandomSource> rng_;
  std::string plaintext_;
  std::string body_;  // current encoded unit sequence (after the header)
  SchemeStats stats_;
};

}  // namespace privedit::enc
