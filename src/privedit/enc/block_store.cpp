#include "privedit/enc/block_store.hpp"

#include "privedit/util/error.hpp"

namespace privedit::enc {

BlockStore::BlockStore(std::size_t block_chars, BlockPolicy policy,
                       std::uint64_t skiplist_seed)
    : block_chars_(block_chars), policy_(policy), list_(skiplist_seed) {
  if (block_chars_ == 0 || block_chars_ > kMaxBlockChars) {
    throw Error(ErrorCode::kInvalidArgument,
                "BlockStore: block_chars must be in [1,8]");
  }
}

void BlockStore::chunk(std::string_view text,
                       std::vector<std::string>& out) const {
  out.clear();
  if (text.empty()) return;
  if (policy_.split == BlockPolicy::Split::kEven) {
    const std::size_t k = (text.size() + block_chars_ - 1) / block_chars_;
    const std::size_t base = text.size() / k;
    std::size_t extra = text.size() % k;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t len = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      out.emplace_back(text.substr(pos, len));
      pos += len;
    }
  } else {  // kGreedy
    for (std::size_t pos = 0; pos < text.size(); pos += block_chars_) {
      out.emplace_back(text.substr(pos, block_chars_));
    }
  }
}

void BlockStore::reset(std::string_view plaintext) {
  list_.clear();
  chunk(plaintext, chunk_scratch_);
  std::size_t elem = 0;
  for (std::string& piece : chunk_scratch_) {
    const std::size_t weight = piece.size();
    list_.insert(elem++, Block{std::move(piece), {}, 0}, weight);
  }
  chunk_scratch_.clear();
}

RegionChange BlockStore::replace_range(std::size_t pos, std::size_t del_count,
                                       std::string_view text) {
  const std::size_t total = char_count();
  if (pos > total || del_count > total - pos) {
    throw Error(ErrorCode::kInvalidArgument,
                "BlockStore: edit range out of bounds");
  }
  if (del_count == 0 && text.empty()) {
    return RegionChange{};
  }

  // Determine the affected block range [first, last] and the chars kept
  // on each side of the edit within those blocks.
  std::size_t first = 0;
  std::string prefix, suffix;
  std::size_t last_plus_one = 0;  // exclusive

  if (list_.empty()) {
    first = 0;
    last_plus_one = 0;
  } else if (del_count > 0) {
    const auto start = list_.find(pos);
    first = start.element_index;
    prefix = list_.get(first).plain.substr(0, start.offset);
    const auto end = list_.find(pos + del_count - 1);
    last_plus_one = end.element_index + 1;
    suffix = list_.get(end.element_index).plain.substr(end.offset + 1);
  } else {
    // Pure insertion.
    if (pos == total) {
      // Append: grow the last block.
      first = list_.size() - 1;
      last_plus_one = list_.size();
      prefix = list_.get(first).plain;
    } else if (pos == 0) {
      first = 0;
      last_plus_one = 1;
      suffix = list_.get(0).plain;
    } else {
      const auto loc = list_.find(pos);
      if (loc.offset == 0) {
        // Boundary: extend the previous block (typing fills blocks).
        first = loc.element_index - 1;
        last_plus_one = loc.element_index;
        prefix = list_.get(first).plain;
      } else {
        first = loc.element_index;
        last_plus_one = loc.element_index + 1;
        prefix = list_.get(first).plain.substr(0, loc.offset);
        suffix = list_.get(first).plain.substr(loc.offset);
      }
    }
  }

  std::string& region = region_scratch_;
  region.clear();
  region += prefix;
  region += text;
  region += suffix;

  // Optional defragmentation: absorb the right neighbour when a deletion
  // leaves the region very short.
  if (policy_.merge_on_delete && del_count > 0 && !region.empty() &&
      region.size() < policy_.merge_threshold &&
      last_plus_one < list_.size()) {
    region += list_.get(last_plus_one).plain;
    ++last_plus_one;
  }

  chunk(region, chunk_scratch_);

  // Swap out the affected blocks.
  const std::size_t old_count = last_plus_one - first;
  std::vector<Block> removed;
  removed.reserve(old_count);
  for (std::size_t i = 0; i < old_count; ++i) {
    removed.push_back(list_.erase(first));
  }
  std::size_t elem = first;
  const std::size_t new_count = chunk_scratch_.size();
  for (std::string& piece : chunk_scratch_) {
    const std::size_t weight = piece.size();
    list_.insert(elem++, Block{std::move(piece), {}, 0}, weight);
  }
  chunk_scratch_.clear();

  return RegionChange{first, old_count, new_count, std::move(removed)};
}

void BlockStore::set_unit(std::size_t elem, Bytes unit, std::uint64_t nonce) {
  list_.update(elem, [&](Block& b) {
    b.unit = std::move(unit);
    b.nonce = nonce;
    return b.plain.size();
  });
}

std::string BlockStore::plaintext() const {
  std::string out;
  out.reserve(char_count());
  list_.for_each([&out](const Block& b, std::size_t) { out += b.plain; });
  return out;
}

void BlockStore::load_blocks(std::vector<Block> blocks) {
  list_.clear();
  std::size_t elem = 0;
  for (Block& b : blocks) {
    if (b.plain.empty() || b.plain.size() > block_chars_) {
      throw Error(ErrorCode::kInvalidArgument,
                  "BlockStore: loaded block size out of range");
    }
    const std::size_t weight = b.plain.size();
    list_.insert(elem++, std::move(b), weight);
  }
}

}  // namespace privedit::enc
