#include "privedit/client/file_clients.hpp"

#include "privedit/cloud/xml.hpp"
#include "privedit/util/error.hpp"

namespace privedit::client {

BespinClient::BespinClient(net::Channel* channel, std::string path)
    : channel_(channel), path_(std::move(path)) {
  if (channel_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BespinClient: null channel");
  }
}

void BespinClient::save() {
  net::HttpRequest req;
  req.method = "PUT";
  req.target = "/file/at/" + path_;
  req.body = text_;
  const net::HttpResponse resp = channel_->round_trip(req);
  if (!resp.ok()) {
    throw ProtocolError("bespin save failed: " + resp.body);
  }
}

void BespinClient::load() {
  net::HttpRequest req;
  req.method = "GET";
  req.target = "/file/at/" + path_;
  const net::HttpResponse resp = channel_->round_trip(req);
  if (!resp.ok()) {
    throw ProtocolError("bespin load failed: " + resp.body);
  }
  text_ = resp.body;
}

BuzzwordClient::BuzzwordClient(net::Channel* channel, std::string doc_id)
    : channel_(channel), doc_id_(std::move(doc_id)) {
  if (channel_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BuzzwordClient: null channel");
  }
}

std::string BuzzwordClient::to_xml() const {
  std::string xml = "<document>";
  for (const std::string& p : paragraphs_) {
    xml += "<p><textRun style=\"body\">";
    xml += cloud::xml_escape(p);
    xml += "</textRun></p>";
  }
  xml += "</document>";
  return xml;
}

void BuzzwordClient::save() {
  net::HttpRequest req;
  req.method = "POST";
  req.target = "/doc/" + doc_id_;
  req.headers.set("Content-Type", "application/xml");
  req.body = to_xml();
  const net::HttpResponse resp = channel_->round_trip(req);
  if (!resp.ok()) {
    throw ProtocolError("buzzword save failed: " + resp.body);
  }
}

void BuzzwordClient::load() {
  net::HttpRequest req;
  req.method = "GET";
  req.target = "/doc/" + doc_id_;
  const net::HttpResponse resp = channel_->round_trip(req);
  if (!resp.ok()) {
    throw ProtocolError("buzzword load failed: " + resp.body);
  }
  paragraphs_.clear();
  for (const cloud::TextRun& run : cloud::find_text_runs(resp.body)) {
    paragraphs_.push_back(run.text);
  }
}

}  // namespace privedit::client
