#include "privedit/client/gdocs_client.hpp"

#include "privedit/crypto/sha256.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::client {

GDocsClient::GDocsClient(net::Channel* channel, std::string doc_id)
    : channel_(channel), doc_id_(std::move(doc_id)) {
  if (channel_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "GDocsClient: null channel");
  }
}

net::HttpRequest GDocsClient::save_request(const std::string& form_body) const {
  return net::HttpRequest::post_form("/Doc?docID=" + percent_encode(doc_id_),
                                     form_body);
}

void GDocsClient::create() {
  FormData form;
  form.add("cmd", "create");
  const net::HttpResponse resp = channel_->round_trip(save_request(form.encode()));
  if (!resp.ok()) {
    throw ProtocolError("create failed: " + resp.body);
  }
  const FormData reply = FormData::parse(resp.body);
  session_ = reply.get("session").value_or("");
  text_.clear();
  last_saved_.clear();
  undo_stack_.clear();
  full_save_pending_ = true;
  rev_ = 0;
}

void GDocsClient::open() {
  FormData form;
  form.add("cmd", "open");
  const net::HttpResponse resp = channel_->round_trip(save_request(form.encode()));
  if (!resp.ok()) {
    throw ProtocolError("open failed: " + resp.body);
  }
  const FormData reply = FormData::parse(resp.body);
  text_ = reply.get("content").value_or("");
  last_saved_ = text_;
  undo_stack_.clear();
  session_ = reply.get("session").value_or("");
  rev_ = std::stoull(reply.get("rev").value_or("0"));
  // The session already has the authoritative content; subsequent saves
  // are incremental.
  full_save_pending_ = false;
}

void GDocsClient::insert(std::size_t pos, std::string_view text) {
  if (pos > text_.size()) {
    throw Error(ErrorCode::kInvalidArgument, "insert: position out of range");
  }
  delta::Delta d;
  if (pos > 0) d.push(delta::Op::retain(pos));
  d.push(delta::Op::insert(std::string(text)));
  undo_stack_.push_back(d.invert(text_));
  text_.insert(pos, text);
}

void GDocsClient::erase(std::size_t pos, std::size_t count) {
  if (pos + count > text_.size()) {
    throw Error(ErrorCode::kInvalidArgument, "erase: range out of bounds");
  }
  delta::Delta d;
  if (pos > 0) d.push(delta::Op::retain(pos));
  d.push(delta::Op::erase(count));
  undo_stack_.push_back(d.invert(text_));
  text_.erase(pos, count);
}

void GDocsClient::replace(std::size_t pos, std::size_t count,
                          std::string_view text) {
  if (pos + count > text_.size()) {
    throw Error(ErrorCode::kInvalidArgument, "replace: range out of bounds");
  }
  delta::Delta d;
  if (pos > 0) d.push(delta::Op::retain(pos));
  if (count > 0) d.push(delta::Op::erase(count));
  if (!text.empty()) d.push(delta::Op::insert(std::string(text)));
  undo_stack_.push_back(d.invert(text_));
  text_ = d.apply(text_);
}

bool GDocsClient::undo() {
  if (undo_stack_.empty()) return false;
  text_ = undo_stack_.back().apply(text_);
  undo_stack_.pop_back();
  return true;
}

void GDocsClient::queue_raw_delta(delta::Delta d) {
  raw_deltas_.push_back(std::move(d));
}

bool GDocsClient::tick(std::uint64_t now_us) {
  if (autosave_interval_us_ == 0 ||
      now_us - last_save_us_ < autosave_interval_us_) {
    return false;
  }
  const bool sent = save();
  last_save_us_ = now_us;
  return sent;
}

bool GDocsClient::save() {
  if (!session_) {
    throw Error(ErrorCode::kState, "save: no edit session (create/open first)");
  }
  if (text_ == last_saved_ && !full_save_pending_ && raw_deltas_.empty()) {
    return false;
  }

  FormData form;
  form.add("session", *session_);
  form.add("rev", std::to_string(rev_));
  if (full_save_pending_) {
    form.add("docContents", text_);
    raw_deltas_.clear();
  } else {
    delta::Delta d;
    if (!raw_deltas_.empty()) {
      // Batch the queued deltas into one update, as the real client does
      // between autosaves.
      d = std::move(raw_deltas_.front());
      for (std::size_t i = 1; i < raw_deltas_.size(); ++i) {
        d = delta::Delta::compose(d, raw_deltas_[i]);
      }
      raw_deltas_.clear();
      if (d.apply(last_saved_) != text_) {
        throw Error(ErrorCode::kInvalidArgument,
                    "save: queued raw deltas do not produce current text");
      }
    } else {
      d = delta::myers_diff(last_saved_, text_);
    }
    form.add("delta", d.to_wire());
  }

  const net::HttpResponse resp = channel_->round_trip(save_request(form.encode()));
  if (!resp.ok()) {
    throw ProtocolError("save failed: " + resp.body);
  }
  consume_ack(resp);
  last_saved_ = text_;
  full_save_pending_ = false;
  ++saves_;
  return true;
}

void GDocsClient::consume_ack(const net::HttpResponse& response) {
  const FormData ack = FormData::parse(response.body);
  const std::uint64_t expected = rev_ + 1;
  std::uint64_t got = expected;
  if (const auto rev = ack.get("rev")) {
    got = std::stoull(*rev);
  }
  rev_ = got;
  if (got == expected) {
    // No concurrent writer — single-user editing works even with blanked
    // ack fields, exactly as the paper observed.
    return;
  }
  // Someone else edited the document. Reconcile using the server's view.
  const auto hash = ack.get("contentFromServerHash");
  const auto content = ack.get("contentFromServer");
  const auto hash_of = [](std::string_view s) {
    return hex_encode(crypto::Sha256::hash(as_bytes(s))).substr(0, 16);
  };
  if (hash && *hash == hash_of(text_)) {
    return;  // we already converged
  }
  if (hash && content && *hash == hash_of(*content)) {
    // Authoritative merge: adopt the server's content. This is what the
    // real client does with plaintext documents. Local undo history no
    // longer applies to the merged text.
    text_ = *content;
    last_saved_ = text_;
    undo_stack_.clear();
    ++merges_;
    return;
  }
  // The extension blanked contentFromServer and zeroed the hash (it can't
  // produce plaintext-correct values), so the client cannot reconcile —
  // the "multiple people editing the same region" complaint of §VII-A.
  ++conflicts_;
}

std::vector<std::string> GDocsClient::spellcheck() {
  FormData form;
  form.add("cmd", "spellcheck");
  form.add("text", text_);
  const net::HttpResponse resp = channel_->round_trip(save_request(form.encode()));
  if (!resp.ok()) {
    throw ProtocolError("spellcheck unavailable: " + resp.body);
  }
  std::vector<std::string> out;
  const FormData reply = FormData::parse(resp.body);
  for (const auto& [k, v] : reply.fields()) {
    if (k == "misspelled") out.push_back(v);
  }
  return out;
}

std::string GDocsClient::export_txt() {
  FormData form;
  form.add("cmd", "export");
  form.add("format", "txt");
  const net::HttpResponse resp = channel_->round_trip(save_request(form.encode()));
  if (!resp.ok()) {
    throw ProtocolError("export unavailable: " + resp.body);
  }
  return resp.body;
}

}  // namespace privedit::client
