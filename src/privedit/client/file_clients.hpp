#pragma once
// Scripted clients for Bespin (whole-file PUT/GET) and Buzzword (whole-XML
// POST/GET). Both send the entire document on every save — which is why
// the paper's extensions for them are straightforward wrappers, and why
// Google Documents (incremental) is the interesting case.

#include <string>
#include <vector>

#include "privedit/net/transport.hpp"

namespace privedit::client {

class BespinClient {
 public:
  BespinClient(net::Channel* channel, std::string path);

  void set_text(std::string text) { text_ = std::move(text); }
  const std::string& text() const { return text_; }

  /// PUT the whole file.
  void save();

  /// GET the whole file into the local buffer.
  void load();

 private:
  net::Channel* channel_;
  std::string path_;
  std::string text_;
};

class BuzzwordClient {
 public:
  BuzzwordClient(net::Channel* channel, std::string doc_id);

  /// Paragraphs become <textRun> elements in the posted XML.
  void set_paragraphs(std::vector<std::string> paragraphs) {
    paragraphs_ = std::move(paragraphs);
  }
  const std::vector<std::string>& paragraphs() const { return paragraphs_; }

  /// POST the whole document as XML.
  void save();

  /// GET and re-extract paragraphs.
  void load();

  /// The XML the client would post (visible for tests).
  std::string to_xml() const;

 private:
  net::Channel* channel_;
  std::string doc_id_;
  std::vector<std::string> paragraphs_;
};

}  // namespace privedit::client
