#pragma once
// Scripted Google Documents editor client.
//
// Reproduces the message sequences §IV-A documents: opening a document
// starts an edit session; the first save of a session POSTs the entire
// content in docContents; every later save POSTs only the delta between the
// last-saved and current text. The client also consumes the server's Ack,
// comparing contentFromServerHash against its own view — the conflict
// complaints of §VII-A come from exactly this check.
//
// The client is *benign* by default: deltas are computed by diffing the two
// document versions. For the malicious-client threat model (§VI-B) a caller
// can queue hand-crafted deltas that encode covert information; the
// extension's canonicalisation/re-diff countermeasures are evaluated
// against those.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "privedit/delta/delta.hpp"
#include "privedit/net/transport.hpp"

namespace privedit::client {

class GDocsClient {
 public:
  GDocsClient(net::Channel* channel, std::string doc_id);

  /// cmd=create — new empty document + session.
  void create();

  /// cmd=open — fetches content, starts a session.
  void open();

  // ----- local edits (no traffic until save) -----
  void insert(std::size_t pos, std::string_view text);
  void erase(std::size_t pos, std::size_t count);
  void replace(std::size_t pos, std::size_t count, std::string_view text);

  /// Reverts the most recent local edit (insert/erase/replace). Undo
  /// history is per-session and client-side only; it survives saves (a
  /// save just means the undo becomes a fresh edit to send). Returns
  /// false if there is nothing to undo.
  bool undo();

  std::size_t undo_depth() const { return undo_stack_.size(); }

  /// Saves pending changes: full docContents on the first save of a
  /// session, delta afterwards. No-op if nothing changed. Returns true if
  /// a request was sent.
  bool save();

  /// Queues a hand-crafted delta for the next save instead of the diff
  /// (malicious-client simulation). Multiple queued deltas are composed
  /// into one update. The composition must transform the last-saved text
  /// into the current text.
  void queue_raw_delta(delta::Delta d);

  /// Periodic autosave (§IV-A: "Update deltas are periodically sent back
  /// to the server due to automatic save requests triggered by client side
  /// timeouts"). Call tick() with the simulated clock; a save fires when
  /// the interval has elapsed and there are unsaved edits.
  void set_autosave_interval(std::uint64_t interval_us) {
    autosave_interval_us_ = interval_us;
  }

  /// Returns true if an autosave was sent.
  bool tick(std::uint64_t now_us);

  /// Server-side features (expected casualties under encryption).
  std::vector<std::string> spellcheck();
  std::string export_txt();

  const std::string& text() const { return text_; }
  std::uint64_t revision() const { return rev_; }

  /// Concurrent edits the client reconciled from contentFromServer.
  std::size_t merges() const { return merges_; }

  /// Concurrent edits the client could NOT reconcile ("multiple people
  /// editing the same region", §VII-A) — nonzero only when the extension
  /// blanks the ack fields during simultaneous editing.
  std::size_t conflict_complaints() const { return conflicts_; }

  std::size_t saves_sent() const { return saves_; }

 private:
  net::HttpRequest save_request(const std::string& form_body) const;
  void consume_ack(const net::HttpResponse& response);

  net::Channel* channel_;
  std::string doc_id_;
  std::string text_;
  std::string last_saved_;
  std::optional<std::string> session_;
  bool full_save_pending_ = true;
  std::uint64_t rev_ = 0;
  std::size_t merges_ = 0;
  std::size_t conflicts_ = 0;
  std::size_t saves_ = 0;
  std::vector<delta::Delta> raw_deltas_;
  std::vector<delta::Delta> undo_stack_;
  std::uint64_t autosave_interval_us_ = 0;
  std::uint64_t last_save_us_ = 0;
};

}  // namespace privedit::client
