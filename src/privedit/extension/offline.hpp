#pragma once
// Disconnected operation: the mediator's offline edit queue.
//
// §II assumes the provider is at least *reachable*; in practice the cloud
// disappears for minutes at a time. The paper's architecture already gives
// the extension everything it needs to ride that out — it holds the full
// plaintext mirror and the ciphertext container locally — so losing the
// server must not lose edits or stall the editor.
//
// When an update exhausts its retry budget (or the circuit breaker is
// open), the mediator flips the document into offline mode:
//
//   * editor traffic keeps flowing: each edit is applied to the local
//     mirror, composed into ONE pending update via Delta::compose, and
//     acknowledged locally with a synthesized Ack;
//   * the composed update replaces the journal's pending entry, so a crash
//     while offline recovers through the existing WAL replay;
//   * opens are answered from the plaintext mirror;
//   * the queue is bounded: past `max_queued_edits` the editor receives an
//     explicit 503 + Retry-After — backpressure, never a silent drop;
//   * a circuit breaker gates reconnect probes to one wire request per
//     cool-down; the first successful probe flushes the composed update
//     under revision CAS, rebasing over concurrent server-side edits via
//     Delta::transform if the server advanced (replay-and-rebase).
//
// OfflineQueue is the pure bookkeeping half (composition, caps, rebase
// state); the protocol half (probing, flushing, ack synthesis) lives in
// GDocsMediator, which owns one queue per managed document.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "privedit/delta/delta.hpp"
#include "privedit/net/breaker.hpp"

namespace privedit::extension {

struct OfflineConfig {
  bool enabled = false;
  /// Edits queued per document before the editor sees backpressure (503).
  std::size_t max_queued_edits = 256;
  /// Per-endpoint circuit breaker; its cool-down bounds probe traffic.
  net::BreakerConfig breaker;
};

/// Per-document offline state: the composed pending update and the base it
/// applies to. Invariant while active: mirror == base_plain + pending_plain
/// (or mirror == the last full save when full_save is set), and the
/// document's journal holds exactly one pending entry — the composed one.
class OfflineQueue {
 public:
  bool active() const { return active_; }

  /// Enters offline mode at server revision `base_rev`, whose plaintext is
  /// `base_plain`. `target` is the request target flushes repost to.
  void enter(std::uint64_t base_rev, std::string base_plain,
             std::string target);

  /// Composes one more delta edit into the pending update. `plain` is the
  /// editor's plaintext delta, `cipher` the scheme's cdelta for it (both
  /// relative to the current mirror, which the caller has already advanced).
  void queue_delta(const delta::Delta& plain, const delta::Delta& cipher);

  /// A full save arrived while offline: it supersedes every queued delta —
  /// the flush sends the whole ciphertext container instead.
  void queue_full_save();

  /// The server advanced while we were away (flush got a 409): rebase onto
  /// its state. `new_base_plain` is the server's decrypted content at
  /// `new_rev`; `new_plain`/`new_cipher` are the pending update transformed
  /// to apply on top of it.
  void rebase(std::uint64_t new_rev, std::string new_base_plain,
              delta::Delta new_plain, delta::Delta new_cipher);

  /// Records the mirror plaintext a flush attempt is about to push. If an
  /// attempt is delivered but its ack is lost, a later flush's 409 carries
  /// server content equal to one of these snapshots — proof the server
  /// already has that attempt, so only the edits queued since need resending
  /// (the at-most-once half of replay-and-rebase). A *history* is kept, not
  /// just the latest: under an asymmetric outage several attempts can go out
  /// before any response returns, and the one that landed need not be the
  /// most recent. Matching only the last snapshot would misread our own
  /// delivered edits as concurrent server progress and rebase the pending
  /// update over them — duplicating every edit in the delivered attempt.
  void note_attempt(std::string mirror_plain);

  /// True when `plain` byte-matches a recorded flush-attempt snapshot, i.e.
  /// the server state is provably one of our own deliveries.
  bool attempted(const std::string& plain) const;

  /// Flush succeeded (or the server provably already has our edits):
  /// leaves offline mode and forgets the pending state.
  void clear();

  std::uint64_t base_rev() const { return base_rev_; }
  const std::string& base_plain() const { return base_plain_; }
  const std::string& target() const { return target_; }
  std::size_t queued() const { return queued_; }
  bool full_save() const { return full_save_; }
  const std::optional<delta::Delta>& pending_plain() const {
    return pending_plain_;
  }
  const std::optional<delta::Delta>& pending_cipher() const {
    return pending_cipher_;
  }

 private:
  bool active_ = false;
  std::uint64_t base_rev_ = 0;
  std::string base_plain_;
  std::string target_;
  std::size_t queued_ = 0;
  bool full_save_ = false;
  std::optional<delta::Delta> pending_plain_;
  std::optional<delta::Delta> pending_cipher_;
  /// Ring of recent flush-attempt snapshots, oldest first. The cap bounds
  /// memory; the breaker's one-probe-per-cool-down pacing keeps the number
  /// of in-doubt attempts far below it in practice.
  static constexpr std::size_t kMaxAttemptHistory = 32;
  std::vector<std::string> attempt_plains_;
};

}  // namespace privedit::extension
