#pragma once
// privedit-fsck — offline check & repair over a set of replica stores.
//
// Orchestrates the storage-integrity layers end to end:
//
//   1. Evidence: journal anchors (extension/journal.hpp) give the
//      last-acknowledged (rev, checksum) per document — the client-side
//      truth stored state must not contradict.
//   2. Detection: cloud/store_check.hpp walks every replica's store and
//      classifies findings (unreadable record, corrupt container, failed
//      decrypt, rollback, fork, missing).
//   3. Repair: damaged copies are healed from a healthy replica through
//      the SAME cmd=sync anti-entropy push ReplicatedChannel uses online
//      (extension/replication.*) — fsck boots a GDocsServer per store
//      directory and drives the repair through its HTTP handler, so the
//      repair path exercised offline is byte-for-byte the production one.
//   4. Quarantine: a document damaged on EVERY replica has no healthy
//      bytes anywhere; it is quarantined on each server (durable .quar
//      marker) so it is never served as plaintext garbage and writes are
//      refused until a valid copy arrives.
//
// When a password is supplied, repair is additionally verified through a
// ReplicatedChannel with the gdocs_open_validator — the identical
// validator the live extension uses — and repair_all() is given a chance
// to finish any budgeted laggards.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "privedit/cloud/store_check.hpp"
#include "privedit/extension/replication.hpp"

namespace privedit::extension {

struct FsckOptions {
  /// Document password. Non-empty enables full decrypt validation of every
  /// container and validator-verified repair; empty = structural + anchor
  /// checks only.
  std::string password;

  /// Directory of per-document journals (<hex(doc_id)>.wal). Empty = no
  /// anchors, so rollback/fork cannot be detected.
  std::string journal_dir;

  /// Attempt replica-driven repair (false = report only).
  bool repair = true;
};

struct FsckStoreReport {
  std::string directory;
  cloud::CheckReport before;  // findings as found
  cloud::CheckReport after;   // findings after repair (== before if !repair)
  std::size_t orphan_tmps_swept = 0;
};

struct FsckResult {
  std::vector<FsckStoreReport> stores;
  std::size_t docs = 0;              // distinct documents seen anywhere
  std::size_t dirty_docs = 0;        // documents with >=1 finding anywhere
  std::size_t repaired_docs = 0;     // dirty before, clean everywhere after
  std::size_t syncs_pushed = 0;      // cmd=sync repairs accepted by servers
  SyncPushStats sync_stats;          // delta-vs-full repair byte accounting
  std::size_t audit_restore_skipped = 0;  // sidecar records/links dropped at boot
  std::vector<std::string> unrecoverable;  // quarantined on every replica

  /// No findings anywhere before repair.
  bool clean_before() const;

  /// Every post-repair finding belongs to a quarantined (unrecoverable)
  /// document — i.e. everything repairable was repaired.
  bool healthy_after() const;
};

/// Scans `journal_dir` for per-document journals and returns their
/// last-acked anchors keyed by document id. Journals with no acked state
/// are skipped. Opening a journal truncates a torn tail (the documented
/// recovery), so the scan is not strictly read-only.
std::map<std::string, cloud::Anchor> load_journal_anchors(
    const std::string& journal_dir);

/// Checks (and, by default, repairs) the replica stores in `store_dirs`.
FsckResult run_fsck(const std::vector<std::string>& store_dirs,
                    const FsckOptions& options = {});

/// Renders a human-readable summary (the fsck tool's output).
std::string format_fsck_result(const FsckResult& result);

}  // namespace privedit::extension
