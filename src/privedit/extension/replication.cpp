#include "privedit/extension/replication.hpp"

#include "privedit/extension/session.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {

ReplicatedChannel::ReplicatedChannel(std::vector<net::Channel*> replicas,
                                     Validator read_validator)
    : replicas_(std::move(replicas)),
      read_validator_(std::move(read_validator)) {
  if (replicas_.empty()) {
    throw Error(ErrorCode::kInvalidArgument,
                "ReplicatedChannel: need at least one replica");
  }
  for (net::Channel* replica : replicas_) {
    if (replica == nullptr) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ReplicatedChannel: null replica");
    }
  }
}

bool ReplicatedChannel::is_read(const net::HttpRequest& request) {
  if (request.method == "GET") return true;
  if (request.method == "POST") {
    const FormData form = FormData::parse(request.body);
    const auto cmd = form.get("cmd");
    return cmd == "open" || cmd == "export";
  }
  return false;
}

net::HttpResponse ReplicatedChannel::round_trip(
    const net::HttpRequest& request) {
  if (is_read(request)) {
    ++counters_.reads;
    net::HttpResponse last = net::HttpResponse::make(500, "no replica");
    for (net::Channel* replica : replicas_) {
      try {
        net::HttpResponse resp = replica->round_trip(request);
        if (resp.ok() && (!read_validator_ || read_validator_(resp))) {
          return resp;
        }
        last = std::move(resp);
      } catch (const Error&) {
        // fall through to the next replica
      }
      ++counters_.read_failovers;
    }
    if (last.ok()) {
      // Every replica answered but none validated — surface it loudly.
      return net::HttpResponse::make(
          502, "replication: no replica returned verifiable content");
    }
    return last;
  }

  // Write path: broadcast; succeed if any replica accepted.
  ++counters_.writes_broadcast;
  net::HttpResponse first_ok = net::HttpResponse::make(500, "no replica");
  bool have_ok = false;
  for (net::Channel* replica : replicas_) {
    try {
      net::HttpResponse resp = replica->round_trip(request);
      if (resp.ok() && !have_ok) {
        first_ok = std::move(resp);
        have_ok = true;
      } else if (!resp.ok()) {
        ++counters_.write_replica_failures;
      }
    } catch (const Error&) {
      ++counters_.write_replica_failures;
    }
  }
  if (!have_ok) {
    return net::HttpResponse::make(502, "replication: all replicas failed");
  }
  return first_ok;
}

ReplicatedChannel::Validator gdocs_open_validator(std::string password) {
  return [password = std::move(password)](const net::HttpResponse& resp) {
    const FormData form = FormData::parse(resp.body);
    const auto content = form.get("content");
    if (!content || content->empty()) {
      return true;  // nothing to verify (new/empty document)
    }
    try {
      // Decrypt-and-verify is the acceptance test; the throwaway RNG is
      // never used for reading.
      DocumentSession::open(password, *content, seeded_rng_factory(0));
      return true;
    } catch (const Error&) {
      return false;
    }
  };
}

}  // namespace privedit::extension
