#include "privedit/extension/replication.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "privedit/delta/block_diff.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/breaker.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {

double ReplicaHealth::score() const {
  // Error rate dominates: a replica failing half its requests is worse
  // than any merely-slow one. Latency contributes in 10 ms steps — coarse
  // enough that micro-jitter between healthy replicas never reshuffles the
  // read order, fine enough to demote a browned-out (50 ms+) replica.
  return ewma_error * 100.0 + std::floor(ewma_latency_us / 10'000.0) * 0.01;
}

ReplicatedChannel::ReplicatedChannel(std::vector<net::Channel*> replicas,
                                     Validator read_validator,
                                     ReplicationConfig config,
                                     net::SimClock* clock)
    : replicas_(std::move(replicas)),
      read_validator_(std::move(read_validator)),
      config_(config),
      clock_(clock),
      health_(replicas_.size()) {
  if (replicas_.empty()) {
    throw Error(ErrorCode::kInvalidArgument,
                "ReplicatedChannel: need at least one replica");
  }
  for (net::Channel* replica : replicas_) {
    if (replica == nullptr) {
      throw Error(ErrorCode::kInvalidArgument,
                  "ReplicatedChannel: null replica");
    }
  }
}

std::uint64_t ReplicatedChannel::now_us() const {
  return clock_ != nullptr ? clock_->now_us() : net::now_steady_us();
}

void ReplicatedChannel::record_outcome(std::size_t replica, bool ok,
                                       std::uint64_t latency_us) {
  ReplicaHealth& h = health_[replica];
  const double a = config_.health_alpha;
  h.ewma_error = (1.0 - a) * h.ewma_error + (ok ? 0.0 : a);
  if (ok) {
    ++h.successes;
    h.ewma_latency_us =
        h.successes == 1 ? static_cast<double>(latency_us)
                         : (1.0 - a) * h.ewma_latency_us +
                               a * static_cast<double>(latency_us);
    h.latency.record(latency_us);
    if (h.quarantined) {
      // Probation passed: the replica is back in the healthy rotation.
      h.quarantined = false;
    }
    return;
  }
  ++h.failures;
  if (h.quarantined) {
    // Failed its probation (or failed as a last resort): restart the
    // quarantine clock — this is the damping that stops a flapping
    // replica from whipsawing the read order.
    h.quarantined_at_us = now_us();
    return;
  }
  if (h.successes + h.failures >= config_.health_min_samples &&
      h.ewma_error >= config_.quarantine_error_rate) {
    h.quarantined = true;
    h.quarantined_at_us = now_us();
    ++h.quarantine_trips;
    ++counters_.quarantines;
  }
}

std::vector<std::size_t> ReplicatedChannel::read_order() const {
  const std::uint64_t now = now_us();
  std::vector<std::size_t> healthy;
  std::vector<std::size_t> probation;
  std::vector<std::size_t> benched;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const ReplicaHealth& h = health_[i];
    if (!h.quarantined) {
      healthy.push_back(i);
    } else if (now - h.quarantined_at_us >= config_.probation_us) {
      probation.push_back(i);
    } else {
      benched.push_back(i);
    }
  }
  const auto by_score = [this](std::size_t a, std::size_t b) {
    const double sa = health_[a].score();
    const double sb = health_[b].score();
    return sa != sb ? sa < sb : a < b;  // deterministic tie-break
  };
  std::sort(healthy.begin(), healthy.end(), by_score);
  std::sort(probation.begin(), probation.end(), by_score);
  std::sort(benched.begin(), benched.end(), by_score);
  std::vector<std::size_t> order = std::move(healthy);
  order.insert(order.end(), probation.begin(), probation.end());
  // Still-quarantined replicas stay reachable as a last resort:
  // availability beats the score when nothing else answers.
  order.insert(order.end(), benched.begin(), benched.end());
  return order;
}

bool ReplicatedChannel::is_read(const net::HttpRequest& request) {
  if (request.method == "GET") return true;
  if (request.method == "POST") {
    const FormData form = FormData::parse(request.body);
    const auto cmd = form.get("cmd");
    return cmd == "open" || cmd == "export";
  }
  return false;
}

std::size_t ReplicatedChannel::quorum() const {
  const std::size_t n = replicas_.size();
  if (config_.write_quorum == 0) return n / 2 + 1;
  return std::min(config_.write_quorum, n);
}

void ReplicatedChannel::note_lag(
    const std::string& target, const std::vector<std::size_t>& replica_indices) {
  auto& lag = lagging_[target];
  for (const std::size_t idx : replica_indices) {
    // Replenish the budget on a fresh miss, but never mid-decay: a replica
    // that keeps failing the same document must eventually be given up on.
    if (lag.find(idx) == lag.end()) lag[idx] = config_.repair_budget;
  }
}

SyncAuditAttachment audit_from_reply(const FormData& reply) {
  SyncAuditAttachment audit;
  audit.chain = reply.get("achain").value_or("");
  for (const auto& [key, value] : reply.fields()) {
    if (key == "w") audit.witnesses.push_back(value);
  }
  return audit;
}

std::optional<ReplicatedChannel::Authoritative>
ReplicatedChannel::fetch_authoritative(const std::string& target,
                                       const std::map<std::size_t, int>& lag) {
  FormData form;
  form.add("cmd", "open");
  form.add("session", "anti-entropy");
  const net::HttpRequest open =
      net::HttpRequest::post_form(target, form.encode());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (lag.count(i) != 0) continue;  // a laggard cannot be authoritative
    try {
      net::HttpResponse resp = replicas_[i]->round_trip(open);
      if (!resp.ok()) continue;
      if (read_validator_ && !read_validator_(resp)) continue;
      const FormData reply = FormData::parse(resp.body);
      const std::string content = reply.get("content").value_or("");
      if (content.empty()) continue;  // nothing verified to propagate
      return Authoritative{content, reply.get("rev").value_or("0"),
                           audit_from_reply(reply)};
    } catch (const Error&) {
      // try the next replica
    }
  }
  return std::nullopt;
}

namespace {

net::HttpRequest sync_form(const std::string& target, const char* field,
                           const std::string& payload, const std::string& rev,
                           const SyncAuditAttachment* audit) {
  FormData form;
  form.add("cmd", "sync");
  form.add("session", "anti-entropy");
  form.add("rev", rev);
  form.add(field, payload);
  if (audit != nullptr) {
    if (!audit->chain.empty()) form.add("achain", audit->chain);
    for (const std::string& wire : audit->witnesses) form.add("w", wire);
  }
  return net::HttpRequest::post_form(target, form.encode());
}

}  // namespace

bool push_sync_over(net::Channel& channel, const std::string& target,
                    const std::string& content, const std::string& rev,
                    SyncPushStats* stats, const SyncAuditAttachment* audit) {
  SyncPushStats scratch;
  SyncPushStats& s = stats != nullptr ? *stats : scratch;

  // Probe the replica's block digests. Anything short of a well-formed
  // digest response — missing capability header, quarantined (its digests
  // describe rot, and quarantine only lifts for a full validated
  // container), document absent, malformed fields — selects the full push.
  std::string delta_wire;
  try {
    FormData probe;
    probe.add("cmd", "sync");
    probe.add("digests", "1");
    probe.add("session", "anti-entropy");
    const net::HttpResponse resp = channel.round_trip(
        net::HttpRequest::post_form(target, probe.encode()));
    ++s.probes;
    if (resp.ok() && resp.headers.get("X-Privedit-BDelta") == "1") {
      const FormData reply = FormData::parse(resp.body);
      const auto digests_field = reply.get("digests");
      if (digests_field && !reply.contains("missing") &&
          !reply.contains("quarantined")) {
        const auto size = std::stoull(reply.get("size").value_or(""));
        const auto bs = std::stoull(reply.get("bs").value_or(""));
        const auto crc = std::stoull(reply.get("crc").value_or(""));
        delta::BlockDelta bd = delta::block_diff_from_digests(
            enc::block_digests_from_wire(*digests_field), size, content,
            static_cast<std::size_t>(bs));
        bd.source_crc = static_cast<std::uint32_t>(crc);
        std::string wire = enc::block_delta_to_wire(bd);
        // The delta only rides when it actually saves bytes; an unrelated
        // container (nothing shared) encodes as one big Add and loses.
        if (wire.size() < content.size()) delta_wire = std::move(wire);
      }
    }
  } catch (const Error&) {
  } catch (const std::exception&) {
    // std::stoull rejecting a field — treat like any malformed probe reply.
  }

  if (!delta_wire.empty()) {
    try {
      const net::HttpResponse resp = channel.round_trip(
          sync_form(target, "bdelta", delta_wire, rev, audit));
      if (resp.ok()) {
        ++s.delta_pushes;
        s.bytes_delta += delta_wire.size();
        return true;
      }
    } catch (const Error&) {
    }
    // 412 (the replica's copy moved between probe and push) or a transport
    // fault: the full-content push below is the always-correct fallback.
    ++s.fallbacks;
  }

  try {
    const net::HttpResponse resp =
        channel.round_trip(sync_form(target, "content", content, rev, audit));
    if (resp.ok()) {
      ++s.full_pushes;
      s.bytes_full += content.size();
      return true;
    }
  } catch (const Error&) {
  }
  return false;
}

bool ReplicatedChannel::push_sync(net::Channel* replica,
                                  const std::string& target,
                                  const std::string& content,
                                  const std::string& rev,
                                  const SyncAuditAttachment& audit) {
  ++counters_.repairs_attempted;
  if (push_sync_over(*replica, target, content, rev, &sync_stats_,
                     audit.empty() ? nullptr : &audit)) {
    ++counters_.repairs_succeeded;
    return true;
  }
  return false;
}

void ReplicatedChannel::push_to_laggards(const std::string& target,
                                         const std::string& content,
                                         const std::string& rev,
                                         const SyncAuditAttachment& audit) {
  const auto lag_it = lagging_.find(target);
  if (lag_it == lagging_.end()) return;
  auto& lag = lag_it->second;
  for (auto it = lag.begin(); it != lag.end();) {
    if (it->second <= 0) {
      ++it;  // budget exhausted; repair_all() replenishes
      continue;
    }
    --it->second;
    if (push_sync(replicas_[it->first], target, content, rev, audit)) {
      it = lag.erase(it);
    } else {
      ++it;
    }
  }
  if (lag.empty()) lagging_.erase(lag_it);
}

void ReplicatedChannel::repair_target(const std::string& target) {
  const auto lag_it = lagging_.find(target);
  if (lag_it == lagging_.end()) return;
  const auto authoritative = fetch_authoritative(target, lag_it->second);
  if (!authoritative) return;  // nothing verified to push — try again later
  push_to_laggards(target, authoritative->content, authoritative->rev,
                   authoritative->audit);
}

std::size_t ReplicatedChannel::repair_all() {
  const std::size_t before = counters_.repairs_succeeded;
  std::vector<std::string> targets;
  targets.reserve(lagging_.size());
  for (auto& [target, lag] : lagging_) {
    targets.push_back(target);
    for (auto& [idx, budget] : lag) budget = config_.repair_budget;
  }
  for (const std::string& target : targets) repair_target(target);
  return counters_.repairs_succeeded - before;
}

net::HttpResponse ReplicatedChannel::round_trip(
    const net::HttpRequest& request) {
  if (is_read(request)) {
    ++counters_.reads;
    net::HttpResponse last = net::HttpResponse::make(500, "no replica");
    std::vector<std::size_t> failed;
    const std::vector<std::size_t> order = read_order();
    if (!order.empty() && order.front() != 0) ++counters_.health_reorders;
    for (const std::size_t i : order) {
      if (health_[i].quarantined) ++counters_.probations;
      const std::uint64_t start = now_us();
      try {
        net::HttpResponse resp = replicas_[i]->round_trip(request);
        if (resp.ok() && (!read_validator_ || read_validator_(resp))) {
          record_outcome(i, true, now_us() - start);
          if (!failed.empty()) {
            // The skipped replicas served nothing usable for this
            // document: remember them and (optionally) heal them from the
            // validated winner right away. An empty winner is never
            // propagated — it must not wipe a healthier replica.
            note_lag(request.target, failed);
            const FormData reply = FormData::parse(resp.body);
            const std::string content = reply.get("content").value_or("");
            if (config_.auto_repair && !content.empty()) {
              push_to_laggards(request.target, content,
                               reply.get("rev").value_or("0"),
                               audit_from_reply(reply));
            }
          }
          return resp;
        }
        last = std::move(resp);
      } catch (const Error&) {
        // fall through to the next replica
      }
      record_outcome(i, false, 0);
      failed.push_back(i);
      ++counters_.read_failovers;
    }
    if (last.ok()) {
      // Every replica answered but none validated — surface it loudly.
      return net::HttpResponse::make(
          502, "replication: no replica returned verifiable content");
    }
    return last;
  }

  // Write path: broadcast, quorum-gated.
  ++counters_.writes_broadcast;
  const std::size_t n = replicas_.size();
  const std::size_t needed = quorum();
  net::HttpResponse first_ok = net::HttpResponse::make(500, "no replica");
  bool have_ok = false;
  std::size_t acks = 0;
  std::vector<std::size_t> failed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t start = now_us();
    try {
      net::HttpResponse resp = replicas_[i]->round_trip(request);
      if (resp.ok()) {
        record_outcome(i, true, now_us() - start);
        ++acks;
        if (!have_ok) {
          first_ok = std::move(resp);
          have_ok = true;
        }
      } else {
        record_outcome(i, false, 0);
        ++counters_.write_replica_failures;
        failed.push_back(i);
      }
    } catch (const Error&) {
      record_outcome(i, false, 0);
      ++counters_.write_replica_failures;
      failed.push_back(i);
    }
  }
  if (!failed.empty()) note_lag(request.target, failed);
  if (acks < needed) {
    // Below quorum the write is reported as failed even though some
    // replicas may have applied it; the repair pass reconverges them on
    // whatever a healthy replica serves next.
    ++counters_.quorum_failures;
    return net::HttpResponse::make(
        502, "replication: write acknowledged by " + std::to_string(acks) +
                 " of " + std::to_string(n) + " replicas, quorum " +
                 std::to_string(needed));
  }
  if (acks < n) {
    ++counters_.partial_writes;
    if (config_.auto_repair) repair_target(request.target);
  }
  first_ok.headers.set("X-Replication-Acks",
                       std::to_string(acks) + "/" + std::to_string(n));
  return first_ok;
}

ReplicatedChannel::Validator gdocs_open_validator(std::string password) {
  return [password = std::move(password)](const net::HttpResponse& resp) {
    const FormData form = FormData::parse(resp.body);
    const auto content = form.get("content");
    if (!content || content->empty()) {
      return true;  // nothing to verify (new/empty document)
    }
    try {
      // Decrypt-and-verify is the acceptance test; the throwaway RNG is
      // never used for reading.
      DocumentSession::open(password, *content, seeded_rng_factory(0));
      return true;
    } catch (const Error&) {
      return false;
    }
  };
}

}  // namespace privedit::extension
