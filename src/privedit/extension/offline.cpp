#include "privedit/extension/offline.hpp"

#include <utility>

#include "privedit/util/error.hpp"

namespace privedit::extension {

void OfflineQueue::enter(std::uint64_t base_rev, std::string base_plain,
                         std::string target) {
  if (active_) {
    throw Error(ErrorCode::kState, "OfflineQueue: already offline");
  }
  active_ = true;
  base_rev_ = base_rev;
  base_plain_ = std::move(base_plain);
  target_ = std::move(target);
  queued_ = 0;
  full_save_ = false;
  pending_plain_.reset();
  pending_cipher_.reset();
  attempt_plains_.clear();
}

void OfflineQueue::queue_delta(const delta::Delta& plain,
                               const delta::Delta& cipher) {
  if (!active_) {
    throw Error(ErrorCode::kState, "OfflineQueue: not offline");
  }
  pending_plain_ = pending_plain_
                       ? delta::Delta::compose(*pending_plain_, plain)
                       : plain;
  pending_cipher_ = pending_cipher_
                        ? delta::Delta::compose(*pending_cipher_, cipher)
                        : cipher;
  ++queued_;
}

void OfflineQueue::queue_full_save() {
  if (!active_) {
    throw Error(ErrorCode::kState, "OfflineQueue: not offline");
  }
  // The whole container rides the flush; the composed deltas are moot.
  full_save_ = true;
  pending_plain_.reset();
  pending_cipher_.reset();
  ++queued_;
}

void OfflineQueue::rebase(std::uint64_t new_rev, std::string new_base_plain,
                          delta::Delta new_plain, delta::Delta new_cipher) {
  if (!active_) {
    throw Error(ErrorCode::kState, "OfflineQueue: not offline");
  }
  base_rev_ = new_rev;
  base_plain_ = std::move(new_base_plain);
  pending_plain_ = std::move(new_plain);
  pending_cipher_ = std::move(new_cipher);
}

void OfflineQueue::note_attempt(std::string mirror_plain) {
  if (!active_) {
    throw Error(ErrorCode::kState, "OfflineQueue: not offline");
  }
  if (!attempt_plains_.empty() && attempt_plains_.back() == mirror_plain) {
    return;  // re-probe of the same composed update; one snapshot suffices
  }
  if (attempt_plains_.size() == kMaxAttemptHistory) {
    attempt_plains_.erase(attempt_plains_.begin());
  }
  attempt_plains_.push_back(std::move(mirror_plain));
}

bool OfflineQueue::attempted(const std::string& plain) const {
  for (const auto& snapshot : attempt_plains_) {
    if (snapshot == plain) return true;
  }
  return false;
}

void OfflineQueue::clear() {
  active_ = false;
  base_rev_ = 0;
  base_plain_.clear();
  target_.clear();
  queued_ = 0;
  full_save_ = false;
  pending_plain_.reset();
  pending_cipher_.reset();
  attempt_plains_.clear();
}

}  // namespace privedit::extension
