#pragma once
// Replication across multiple cloud providers.
//
// §II: "a malicious or incompetent cloud provider can easily prevent users
// from accessing their documents. This could be addressed using replication
// with multiple cloud providers, but this is outside the scope of this
// paper." — implemented here as an extension feature.
//
// ReplicatedChannel fans every update out to all replicas and serves reads
// from the first replica whose response passes a caller-supplied validator
// (for encrypted documents: "does it decrypt and verify under the
// password?"). A provider that withholds, corrupts or rolls back data is
// skipped; availability holds as long as one replica is honest and
// reachable.
//
// Writes are quorum-gated: an update counts as accepted only when at least
// `write_quorum` replicas acknowledged it (default: a majority, n/2+1).
// Partial success is surfaced in the X-Replication-Acks response header
// ("k/n") and the partial_writes counter, and the lagging replicas are
// remembered for anti-entropy: a repair pass re-pushes the last verified
// ciphertext (fetched from a healthy replica, validated) to replicas that
// missed a write or served an invalid read, under a bounded per-replica
// retry budget. Repair runs opportunistically after partial writes and
// failed-over reads (auto_repair) and on demand via repair_all().
//
// Replica health (degraded-mode PR): every round trip feeds a per-replica
// score — an EWMA of the error rate plus an EWMA of latency, backed by a
// LatencyHistogram for percentiles. Reads try replicas in health order
// (healthiest first) instead of fixed order, so a flapping or slow replica
// stops being the first hop for every read. A replica whose error EWMA
// crosses quarantine_error_rate is quarantined: demoted to last resort
// until probation_us elapses, then given one probationary attempt —
// success restores it, failure re-quarantines. Writes still broadcast to
// every replica (replication requires it); their outcomes feed the scores.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "privedit/net/transport.hpp"
#include "privedit/util/histogram.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {

struct ReplicationConfig {
  /// Replicas that must acknowledge a write before it counts as accepted.
  /// 0 means majority (n/2 + 1); values above n are clamped to n. A
  /// quorum of 1 restores pre-quorum "any replica" availability mode.
  std::size_t write_quorum = 0;

  /// Repair lagging replicas opportunistically, right after the partial
  /// write or failed-over read that exposed them.
  bool auto_repair = true;

  /// Sync attempts per (document, replica) before giving up; repair_all()
  /// replenishes the budget.
  int repair_budget = 3;

  // ----- replica health scoring -----

  /// EWMA smoothing for per-replica latency and error rate. Higher reacts
  /// faster to a state change; lower damps flapping.
  double health_alpha = 0.2;

  /// Error-rate EWMA at or above which a replica is quarantined (skipped
  /// by reads except as a last resort). Needs health_min_samples
  /// observations first, so one unlucky request cannot quarantine.
  double quarantine_error_rate = 0.5;
  std::size_t health_min_samples = 3;

  /// Quarantine duration: after this many microseconds the replica gets
  /// ONE probationary attempt; success restores it, failure re-quarantines
  /// (this is what keeps a flapping replica from whipsawing the read
  /// order). Measured on the injected clock (SimClock when provided).
  std::uint64_t probation_us = 500'000;
};

/// Per-replica health state, exposed for tests, benches and operators.
struct ReplicaHealth {
  double ewma_latency_us = 0.0;
  double ewma_error = 0.0;  // 0 = perfect, 1 = always failing
  bool quarantined = false;
  std::uint64_t quarantined_at_us = 0;
  std::size_t successes = 0;
  std::size_t failures = 0;
  std::size_t quarantine_trips = 0;
  LatencyHistogram latency;

  /// Composite score, lower = healthier: the error EWMA dominates (a
  /// failing replica is worse than any slow one), latency breaks ties.
  double score() const;
};

/// Byte accounting for anti-entropy pushes (repair-traffic measurement —
/// the block-delta repair path exists to shrink bytes_full into
/// bytes_delta; see DESIGN.md §15).
struct SyncPushStats {
  std::size_t probes = 0;        // digest probes sent
  std::size_t delta_pushes = 0;  // repairs accepted as block deltas
  std::size_t full_pushes = 0;   // repairs pushed as full content
  std::size_t fallbacks = 0;     // delta attempted, refused (412) → full
  std::size_t bytes_delta = 0;   // block-delta wire bytes pushed
  std::size_t bytes_full = 0;    // full-content bytes pushed
};

/// Audit-chain payload riding along an anti-entropy push (DESIGN.md §16).
/// Repair that moves content without its chain leaves the receiver serving
/// a history clients cannot link to their committed heads — a self-made
/// fork — so every sync push carries the donor's chain and witness set.
struct SyncAuditAttachment {
  std::string chain;                   // encoded AuditChain wire ("" = none)
  std::vector<std::string> witnesses;  // encoded witness wires

  bool empty() const { return chain.empty() && witnesses.empty(); }
};

/// Extracts the audit attachment (achain + repeated w fields) from an open
/// reply, for forwarding with a repair push sourced from that replica.
SyncAuditAttachment audit_from_reply(const FormData& reply);

/// Anti-entropy push of (content, rev) to one replica, differential when
/// possible: probes the replica's rev-anchored block digests
/// (cmd=sync&digests=1), sends only the blocks that differ when that is
/// smaller, and falls back to the classic full-content cmd=sync when the
/// replica lacks the capability, is quarantined (quarantine exit must be a
/// full validated container), has no copy at all, or refuses the delta
/// anchor (412 — its copy moved between probe and push). Both
/// ReplicatedChannel repair and offline fsck push through this one helper,
/// so the wire behaviour is identical online and offline. `audit`, when
/// non-null, attaches the donor's audit chain and witnesses to whichever
/// push lands. Returns true when the replica accepted the content by
/// either route.
bool push_sync_over(net::Channel& channel, const std::string& target,
                    const std::string& content, const std::string& rev,
                    SyncPushStats* stats = nullptr,
                    const SyncAuditAttachment* audit = nullptr);

class ReplicatedChannel final : public net::Channel {
 public:
  /// Returns true if a read response is acceptable (decrypts/verifies).
  /// An empty validator accepts any 2xx response.
  using Validator = std::function<bool(const net::HttpResponse&)>;

  /// `clock` (optional) drives health timestamps and latency measurement
  /// deterministically; defaults to the process steady clock.
  ReplicatedChannel(std::vector<net::Channel*> replicas,
                    Validator read_validator = {},
                    ReplicationConfig config = {},
                    net::SimClock* clock = nullptr);

  net::HttpResponse round_trip(const net::HttpRequest& request) override;

  /// Anti-entropy sweep: for every document with known-lagging replicas,
  /// fetch the authoritative ciphertext from a healthy replica (validated)
  /// and push it to the laggards. Replenishes retry budgets first. Returns
  /// the number of (document, replica) repairs that succeeded.
  std::size_t repair_all();

  struct Counters {
    std::size_t writes_broadcast = 0;
    std::size_t write_replica_failures = 0;
    std::size_t reads = 0;
    std::size_t read_failovers = 0;   // replicas skipped before success
    std::size_t partial_writes = 0;   // quorum met but some replica missed
    std::size_t quorum_failures = 0;  // write acks below quorum → 502
    std::size_t repairs_attempted = 0;
    std::size_t repairs_succeeded = 0;
    std::size_t quarantines = 0;        // replicas demoted by error EWMA
    std::size_t probations = 0;         // probationary attempts granted
    std::size_t health_reorders = 0;    // reads whose first hop != replica 0
  };
  const Counters& counters() const { return counters_; }

  /// Health state for replica `i` (index into the constructor vector).
  const ReplicaHealth& health(std::size_t i) const { return health_.at(i); }

  /// Repair-traffic byte accounting across all push_sync calls.
  const SyncPushStats& sync_stats() const { return sync_stats_; }

  /// Replica indices in the order reads will try them right now:
  /// non-quarantined by ascending score, then probation-expired
  /// quarantined, then still-quarantined (last resort).
  std::vector<std::size_t> read_order() const;

 private:
  static bool is_read(const net::HttpRequest& request);

  std::uint64_t now_us() const;
  void record_outcome(std::size_t replica, bool ok, std::uint64_t latency_us);

  std::size_t quorum() const;
  void note_lag(const std::string& target,
                const std::vector<std::size_t>& replica_indices);
  /// Validated authoritative state for a document, plus the audit
  /// attachment the donor replica served with it.
  struct Authoritative {
    std::string content;
    std::string rev;
    SyncAuditAttachment audit;
  };

  /// Fetches validated authoritative state for `target` from the first
  /// healthy replica, skipping the indices in `lag`.
  std::optional<Authoritative> fetch_authoritative(
      const std::string& target, const std::map<std::size_t, int>& lag);
  bool push_sync(net::Channel* replica, const std::string& target,
                 const std::string& content, const std::string& rev,
                 const SyncAuditAttachment& audit);
  /// Pushes known-good (content, rev) to every budgeted laggard of
  /// `target`, clearing the ones that took it.
  void push_to_laggards(const std::string& target, const std::string& content,
                        const std::string& rev,
                        const SyncAuditAttachment& audit);
  void repair_target(const std::string& target);

  std::vector<net::Channel*> replicas_;
  Validator read_validator_;
  ReplicationConfig config_;
  net::SimClock* clock_;
  std::vector<ReplicaHealth> health_;
  // target → (replica index → remaining repair budget)
  std::map<std::string, std::map<std::size_t, int>> lagging_;
  Counters counters_;
  SyncPushStats sync_stats_;
};

/// Builds a read validator for encrypted Google-Documents responses: the
/// `content` field of an open reply must be absent/empty or decrypt and
/// verify under `password`.
ReplicatedChannel::Validator gdocs_open_validator(std::string password);

}  // namespace privedit::extension
