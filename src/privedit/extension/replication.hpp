#pragma once
// Replication across multiple cloud providers.
//
// §II: "a malicious or incompetent cloud provider can easily prevent users
// from accessing their documents. This could be addressed using replication
// with multiple cloud providers, but this is outside the scope of this
// paper." — implemented here as an extension feature.
//
// ReplicatedChannel fans every update out to all replicas and serves reads
// from the first replica whose response passes a caller-supplied validator
// (for encrypted documents: "does it decrypt and verify under the
// password?"). A provider that withholds, corrupts or rolls back data is
// skipped; availability holds as long as one replica is honest and
// reachable.

#include <functional>
#include <vector>

#include "privedit/net/transport.hpp"

namespace privedit::extension {

class ReplicatedChannel final : public net::Channel {
 public:
  /// Returns true if a read response is acceptable (decrypts/verifies).
  /// An empty validator accepts any 2xx response.
  using Validator = std::function<bool(const net::HttpResponse&)>;

  ReplicatedChannel(std::vector<net::Channel*> replicas,
                    Validator read_validator = {});

  net::HttpResponse round_trip(const net::HttpRequest& request) override;

  struct Counters {
    std::size_t writes_broadcast = 0;
    std::size_t write_replica_failures = 0;
    std::size_t reads = 0;
    std::size_t read_failovers = 0;  // replicas skipped before success
  };
  const Counters& counters() const { return counters_; }

 private:
  static bool is_read(const net::HttpRequest& request);

  std::vector<net::Channel*> replicas_;
  Validator read_validator_;
  Counters counters_;
};

/// Builds a read validator for encrypted Google-Documents responses: the
/// `content` field of an open reply must be absent/empty or decrypt and
/// verify under `password`.
ReplicatedChannel::Validator gdocs_open_validator(std::string password);

}  // namespace privedit::extension
