#pragma once
// EditJournal — the extension's durable write-ahead log for outgoing
// updates (one journal file per managed document).
//
// The crash window it closes: the mediator applies an edit to its local
// BlockStore mirror, sends the cdelta, and the machine dies before the
// server's ack arrives (or before it is recorded). Without a journal the
// edit exists nowhere the user controls — the server may or may not have
// applied it, and the next open silently adopts whichever happened. With
// the journal, every outgoing update is fsync'd to disk *before* it is
// sent, and recovery replays unacknowledged entries idempotently (revision
// CAS: resend only while the server is still at the entry's base
// revision).
//
// The journal also persists the last-acknowledged (revision, checksum)
// pair, which is the client-side evidence against the §II rollback
// adversary: a server that presents an older revision at open — or a
// different checksum at the same revision — is provably rolling the
// document back (RollbackError), not merely corrupting it.
//
// On-disk format: a sequence of length-and-CRC-framed records,
//
//   [magic u32 "PEWJ"] [payload_len u32 BE] [crc32(payload) u32 BE] [payload]
//
//   payload := type u8 ...
//     0x01 PENDING  u64 base_rev, u8 full_save, u16 checksum_len,
//                   checksum bytes, update bytes (cdelta wire or full
//                   ciphertext when full_save)
//     0x02 ACK      u64 rev, checksum bytes   — acks the oldest pending
//     0x03 BASE     u64 rev, checksum bytes   — last_acked snapshot
//                   (written by reset/compact as the first record)
//     0x04 DROP     (empty)                   — drops the oldest pending
//     0x05 BASESNAP u64 rev, u16 checksum_len, checksum bytes, container
//                   bytes — BASE plus the acknowledged ciphertext
//                   container itself (the durable base)
//     0x06 PENDING∆ same layout as PENDING (full_save is always 1) but the
//                   update field holds a block-delta wire form
//                   (enc/block_wire) against the BASESNAP container
//
// Appends are fsync'd; a crash mid-append leaves a torn tail record that
// load detects (short frame or CRC mismatch), truncates, and reports.
// Acknowledged prefixes are garbage-collected by compact(), which rewrites
// the file as BASE + still-pending records via the durable temp+fsync+
// rename sequence. When the acknowledged base container is known, compact
// writes it once as BASESNAP and stores each pending full save as a
// block-delta against it when that is smaller — pending full-state saves
// stop costing a whole container each (ROADMAP item 3); load reconstructs
// the full update, so pending() consumers never see a delta. The CRC is
// framing, not security: the journal lives on the user's own disk, inside
// the trust boundary.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

namespace privedit::extension {

struct JournalEntry {
  std::uint64_t base_rev = 0;  // server revision the update applies to
  bool full_save = false;      // payload is full ciphertext, not a cdelta
  std::string checksum;        // post-edit checksum of our ciphertext mirror
  std::string update;          // cdelta wire (or full ciphertext document)
};

class EditJournal {
 public:
  /// Opens (creating if absent) the journal at `path`, replaying its
  /// records into memory. A torn tail is truncated off the file and
  /// reported via recovered_torn_tail().
  explicit EditJournal(std::string path);
  ~EditJournal();

  EditJournal(const EditJournal&) = delete;
  EditJournal& operator=(const EditJournal&) = delete;

  /// Durably appends a pending update. Must be called BEFORE the update
  /// is sent — that ordering is the whole point of a write-ahead log.
  void append_pending(const JournalEntry& entry);

  /// The oldest pending update was acknowledged at server revision `rev`.
  void ack_front(std::uint64_t rev, const std::string& checksum);

  /// The oldest pending update is known NOT to have been applied (clean
  /// rejection) or is superseded — forget it.
  void drop_front();

  /// Replaces the whole journal with a fresh baseline (new document, or
  /// post-recovery convergence). Durable. `base_content`, when non-empty,
  /// is the acknowledged ciphertext container itself; compact() then
  /// stores pending full saves as block-deltas against it.
  void reset(std::uint64_t rev, const std::string& checksum,
             std::string base_content = {});

  /// Rewrites the file as BASE[SNAP] + pending records, discarding
  /// acknowledged history and delta-compressing pending full saves against
  /// the base container when that wins. Durable. No-op on in-memory state
  /// except fd_ churn; throws StorageError if the journal file cannot be
  /// reopened after the replace.
  void compact();

  const std::deque<JournalEntry>& pending() const { return pending_; }

  struct Acked {
    std::uint64_t rev = 0;
    std::string checksum;
  };
  const std::optional<Acked>& last_acked() const { return last_acked_; }

  /// True when load found (and truncated) a torn tail record.
  bool recovered_torn_tail() const { return recovered_torn_tail_; }

  /// Current on-disk size, for monitoring (offline-queue backpressure) and
  /// the recovery bench. nullopt when the size is UNKNOWN — the journal fd
  /// is gone or fstat failed — which is not the same as an empty file;
  /// backpressure callers must treat unknown as over-limit, not as zero.
  std::optional<std::uint64_t> bytes_on_disk() const;

  /// The acknowledged base container compact() deltas against; empty when
  /// no full-state baseline is known.
  const std::string& base_content() const { return base_content_; }

  const std::string& path() const { return path_; }

 private:
  void load();
  void append_frame(const std::string& payload);

  std::string path_;
  int fd_ = -1;
  std::deque<JournalEntry> pending_;
  std::optional<Acked> last_acked_;
  std::string base_content_;
  bool recovered_torn_tail_ = false;
};

}  // namespace privedit::extension
