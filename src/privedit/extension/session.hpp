#pragma once
// DocumentSession — per-document crypto state held by the extension.
//
// Binds a password to an IncrementalScheme: creating a session mints a
// fresh salt/header and derives keys; opening one reads the salt and KDF
// parameters out of the ciphertext document itself (§IV-C: the user only
// ever supplies the password).

#include <functional>
#include <memory>
#include <string>

#include "privedit/enc/scheme.hpp"

namespace privedit::extension {

/// Factory for the scheme's nonce source; swap in a seeded DRBG for
/// reproducible tests and benches.
using RngFactory = std::function<std::unique_ptr<RandomSource>()>;

/// Default: CtrDrbg seeded from the OS entropy pool.
RngFactory os_rng_factory();

/// Deterministic factory for tests (seed is advanced per call so distinct
/// sessions do not share nonce streams).
RngFactory seeded_rng_factory(std::uint64_t seed);

class DocumentSession {
 public:
  /// New encrypted document: fresh salt, keys from `password`.
  static DocumentSession create_new(const std::string& password,
                                    const enc::SchemeConfig& config,
                                    const RngFactory& rng_factory);

  /// Existing encrypted document: header (mode, salt, KDF cost) is parsed
  /// from `ciphertext_doc`; throws CryptoError on a wrong password and
  /// IntegrityError on tampering (RPC).
  static DocumentSession open(const std::string& password,
                              std::string_view ciphertext_doc,
                              const RngFactory& rng_factory);

  enc::IncrementalScheme& scheme() { return *scheme_; }
  const enc::IncrementalScheme& scheme() const { return *scheme_; }

  std::string encrypt_full(std::string_view plaintext) {
    return scheme_->initialize(plaintext);
  }
  delta::Delta transform_delta(const delta::Delta& pdelta) {
    return scheme_->transform_delta(pdelta);
  }
  std::string plaintext() const { return scheme_->plaintext(); }

 private:
  explicit DocumentSession(std::unique_ptr<enc::IncrementalScheme> scheme)
      : scheme_(std::move(scheme)) {}

  std::unique_ptr<enc::IncrementalScheme> scheme_;
};

/// Password rotation: re-encrypts the session's current plaintext under a
/// new password with a fresh salt (and fresh nonces throughout). Returns
/// the new session; its scheme().ciphertext_doc() is the replacement the
/// server should store. The old password can no longer open the result.
DocumentSession rotate_password(const DocumentSession& current,
                                const std::string& new_password,
                                const RngFactory& rng_factory);

}  // namespace privedit::extension
