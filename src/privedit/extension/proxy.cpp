#include "privedit/extension/proxy.hpp"

namespace privedit::extension {

MediatingProxy::MediatingProxy(std::uint16_t listen_port,
                               std::uint16_t upstream_port,
                               MediatorConfig config) {
  upstream_ = std::make_unique<net::TcpChannel>(upstream_port);
  mediator_ =
      std::make_unique<GDocsMediator>(upstream_.get(), std::move(config));
  server_ = std::make_unique<net::HttpServer>(
      listen_port, [this](const net::HttpRequest& request) {
        const std::lock_guard<std::mutex> lock(mediator_mutex_);
        return mediator_->round_trip(request);
      });
}

}  // namespace privedit::extension
