#pragma once
// Standalone mediating proxy — §III interception option 1.
//
// "Standalone proxy. This is the most general approach, which could work
// for even non-browser applications." The proxy listens on a local port;
// the editor client points at the proxy instead of the service; every
// request is mediated exactly as the browser-extension variant does
// (encrypt docContents, transform deltas, blank acks, drop unknowns) and
// forwarded to the real service over TCP.
//
// The paper notes the proxy approach struggles with TLS; like the 2011
// deployment reality it targets (§II footnote: many cloud servers ran
// plain HTTP), this proxy speaks cleartext HTTP on both legs.

#include <memory>
#include <mutex>

#include "privedit/extension/mediator.hpp"
#include "privedit/net/http_server.hpp"

namespace privedit::extension {

class MediatingProxy {
 public:
  /// Listens on 127.0.0.1:`listen_port` (0 = ephemeral) and forwards to
  /// 127.0.0.1:`upstream_port`.
  MediatingProxy(std::uint16_t listen_port, std::uint16_t upstream_port,
                 MediatorConfig config);

  std::uint16_t port() const { return server_->port(); }

  const GDocsMediator::Counters& counters() const {
    return mediator_->counters();
  }

  void stop() { server_->stop(); }

 private:
  std::unique_ptr<net::TcpChannel> upstream_;
  std::unique_ptr<GDocsMediator> mediator_;
  std::mutex mediator_mutex_;  // mediator state is not thread-safe
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace privedit::extension
