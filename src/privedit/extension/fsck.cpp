#include "privedit/extension/fsck.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>

#include "privedit/cloud/gdocs_server.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/replication.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {

namespace fs = std::filesystem;

namespace {

/// In-process Channel straight into a server's handler — fsck runs on the
/// operator's machine against local store directories, so there is no
/// transport to simulate.
class DirectChannel final : public net::Channel {
 public:
  explicit DirectChannel(cloud::GDocsServer* server) : server_(server) {}
  net::HttpResponse round_trip(const net::HttpRequest& request) override {
    return server_->handle(request);
  }

 private:
  cloud::GDocsServer* server_;
};

std::string target_for(const std::string& doc_id) {
  return "/Doc?docID=" + percent_encode(doc_id);
}

/// Loads the per-document audit chains from a store's `.audit` sidecar
/// directory, for keyless structural chain checks (kChainBreak). Absent
/// sidecar → no chain evidence; the directory is NOT created, so
/// report-only mode stays mutation-free.
std::map<std::string, std::string> load_audit_chains(const std::string& dir) {
  std::map<std::string, std::string> chains;
  const std::string audit_dir = dir + "/.audit";
  std::error_code ec;
  if (!fs::is_directory(audit_dir, ec)) return chains;
  cloud::FileStore sidecar(audit_dir);
  for (const std::string& id : sidecar.list_doc_ids()) {
    try {
      const auto record = sidecar.get(id);
      if (!record) continue;
      const FormData form = FormData::parse(record->content);
      if (const auto chain = form.get("chain"); chain && !chain->empty()) {
        chains[id] = *chain;
      }
    } catch (const Error&) {
      // An unreadable sidecar record yields no chain evidence; the main
      // record still gets every other check.
    }
  }
  return chains;
}

cloud::CheckConfig make_check_config(const FsckOptions& options,
                                     std::map<std::string, cloud::Anchor> anchors) {
  cloud::CheckConfig config;
  config.anchors = std::move(anchors);
  if (!options.password.empty()) {
    config.deep_validate = [password =
                                options.password](const std::string& content) {
      try {
        DocumentSession::open(password, content, seeded_rng_factory(0));
        return true;
      } catch (const Error&) {
        return false;
      }
    };
  }
  return config;
}

/// Pushes (content, rev) to `channel` through the same delta-aware
/// anti-entropy helper ReplicatedChannel::push_sync uses: block-delta when
/// the replica holds a divergent copy, full content otherwise. The donor's
/// audit chain rides along so the receiver's history stays linkable.
bool push_repair(net::Channel& channel, const std::string& doc_id,
                 const cloud::Store::Record& record,
                 const SyncAuditAttachment& audit, SyncPushStats* stats) {
  return push_sync_over(channel, target_for(doc_id), record.content,
                        std::to_string(record.rev), stats,
                        audit.empty() ? nullptr : &audit);
}

/// Audit attachment for `doc_id` as served by the donor replica's server —
/// an open reply carries achain + witnesses when the sidecar store holds
/// them. Empty (and harmless) when the document predates auditing.
SyncAuditAttachment donor_audit(net::Channel& channel,
                                const std::string& doc_id) {
  FormData form;
  form.add("cmd", "open");
  form.add("session", "anti-entropy");
  try {
    const net::HttpResponse resp = channel.round_trip(
        net::HttpRequest::post_form(target_for(doc_id), form.encode()));
    if (resp.ok()) return audit_from_reply(FormData::parse(resp.body));
  } catch (const Error&) {
  }
  return {};
}

}  // namespace

bool FsckResult::clean_before() const {
  return std::all_of(stores.begin(), stores.end(),
                     [](const FsckStoreReport& s) {
                       return s.before.store_clean();
                     });
}

bool FsckResult::healthy_after() const {
  const std::set<std::string> quarantined(unrecoverable.begin(),
                                          unrecoverable.end());
  for (const FsckStoreReport& s : stores) {
    for (const cloud::Finding& f : s.after.findings) {
      if (!quarantined.contains(f.doc_id)) return false;
    }
  }
  return true;
}

std::map<std::string, cloud::Anchor> load_journal_anchors(
    const std::string& journal_dir) {
  std::map<std::string, cloud::Anchor> anchors;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(journal_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 4 || name.substr(name.size() - 4) != ".wal") continue;
    std::string doc_id;
    try {
      doc_id = to_string(hex_decode(name.substr(0, name.size() - 4)));
    } catch (const Error&) {
      continue;  // not one of ours
    }
    try {
      EditJournal journal(entry.path().string());
      if (const auto& acked = journal.last_acked()) {
        anchors[doc_id] = cloud::Anchor{acked->rev, acked->checksum};
      }
    } catch (const Error&) {
      // An unreadable journal yields no anchor; the store still gets its
      // structural checks. The journal's own recovery story is separate.
    }
  }
  if (ec) {
    throw Error(ErrorCode::kState, "fsck: cannot list journal directory " +
                                       journal_dir + ": " + ec.message());
  }
  return anchors;
}

FsckResult run_fsck(const std::vector<std::string>& store_dirs,
                    const FsckOptions& options) {
  if (store_dirs.empty()) {
    throw Error(ErrorCode::kInvalidArgument, "fsck: no store directories");
  }

  FsckResult result;
  const cloud::CheckConfig config = make_check_config(
      options, options.journal_dir.empty()
                   ? std::map<std::string, cloud::Anchor>{}
                   : load_journal_anchors(options.journal_dir));

  // When repairing, boot one server per replica store — exactly what the
  // provider would run — with tolerant persistence: unreadable records are
  // quarantined, stale temps swept, readable state loaded. Report-only
  // mode opens the bare FileStore instead, so --check-only plants no
  // quarantine markers (the tmp sweep is the one documented mutation).
  std::vector<std::unique_ptr<cloud::GDocsServer>> servers;
  std::vector<std::unique_ptr<DirectChannel>> channels;
  std::vector<std::unique_ptr<cloud::FileStore>> bare_stores;
  std::vector<cloud::Store*> stores;
  // Chain evidence is per store (each replica carries its own sidecar).
  std::vector<cloud::CheckConfig> store_configs;
  for (const std::string& dir : store_dirs) {
    FsckStoreReport report;
    report.directory = dir;
    cloud::CheckConfig store_config = config;
    store_config.chains = load_audit_chains(dir);
    auto file_store = std::make_unique<cloud::FileStore>(dir);
    report.orphan_tmps_swept = file_store->tmp_swept();
    if (options.repair) {
      auto server = std::make_unique<cloud::GDocsServer>();
      server->enable_persistence(std::move(file_store));
      // The audit sidecar rides under the store directory; loading it here
      // lets repair pushes carry chains and lets donors serve them.
      server->enable_audit_persistence(
          std::make_unique<cloud::FileStore>(dir + "/.audit"));
      result.audit_restore_skipped += server->table().audit_restore_skipped();
      stores.push_back(server->store());
      channels.push_back(std::make_unique<DirectChannel>(server.get()));
      servers.push_back(std::move(server));
    } else {
      stores.push_back(file_store.get());
      bare_stores.push_back(std::move(file_store));
    }
    report.before = cloud::check_store(*stores.back(), store_config);
    result.stores.push_back(std::move(report));
    store_configs.push_back(std::move(store_config));
  }

  // Per-document status across replicas.
  std::set<std::string> all_docs;
  std::map<std::string, std::set<std::size_t>> dirty_at;
  for (std::size_t i = 0; i < result.stores.size(); ++i) {
    const cloud::CheckReport& before = result.stores[i].before;
    for (const std::string& id : stores[i]->list_doc_ids()) {
      all_docs.insert(id);
    }
    for (const std::string& id : before.dirty_docs()) {
      all_docs.insert(id);
      dirty_at[id].insert(i);
    }
    // Boot-quarantined docs may not appear in findings (their record never
    // loaded); treat any quarantined doc as dirty on that replica.
    for (const std::string& id : before.quarantined) {
      all_docs.insert(id);
      dirty_at[id].insert(i);
    }
  }
  result.docs = all_docs.size();
  result.dirty_docs = dirty_at.size();

  if (options.repair && !dirty_at.empty()) {
    for (const auto& [doc_id, dirty_replicas] : dirty_at) {
      // Donor: among replicas where the document checked clean, the one
      // holding the highest revision (replicas can legitimately trail).
      std::optional<cloud::Store::Record> donor;
      std::size_t donor_idx = 0;
      for (std::size_t i = 0; i < stores.size(); ++i) {
        if (dirty_replicas.contains(i)) continue;
        std::optional<cloud::Store::Record> record;
        try {
          record = stores[i]->get(doc_id);
        } catch (const Error&) {
          continue;
        }
        if (record && (!donor || record->rev > donor->rev)) {
          donor = std::move(record);
          donor_idx = i;
        }
      }
      if (!donor) continue;  // damaged everywhere — quarantine below
      const SyncAuditAttachment audit = donor_audit(*channels[donor_idx],
                                                    doc_id);
      for (const std::size_t i : dirty_replicas) {
        if (push_repair(*channels[i], doc_id, *donor, audit,
                        &result.sync_stats)) {
          ++result.syncs_pushed;
        }
      }
    }

    if (!options.password.empty()) {
      // Drive the damaged documents through ReplicatedChannel with the
      // live extension's validator: a replica still serving bad bytes
      // fails validation, is noted lagging, and auto-repair re-pushes the
      // verified ciphertext — the online anti-entropy machinery finishing
      // whatever the direct pass missed.
      std::vector<net::Channel*> raw;
      for (auto& ch : channels) raw.push_back(ch.get());
      ReplicationConfig rconfig;
      rconfig.write_quorum = 1;
      ReplicatedChannel replicated(raw, gdocs_open_validator(options.password),
                                   rconfig);
      FormData open_form;
      open_form.add("cmd", "open");
      open_form.add("session", "anti-entropy");
      for (const auto& [doc_id, dirty_replicas] : dirty_at) {
        try {
          (void)replicated.round_trip(net::HttpRequest::post_form(
              target_for(doc_id), open_form.encode()));
        } catch (const Error&) {
          // All replicas bad for this doc — handled by quarantine below.
        }
      }
      result.syncs_pushed += replicated.repair_all();
    }
  }

  // Re-check, then quarantine what repair could not recover. Repair pushes
  // rewrote sidecar chains along with content, so chain evidence is
  // re-loaded from disk for the after pass.
  for (std::size_t i = 0; i < result.stores.size(); ++i) {
    if (options.repair) {
      store_configs[i].chains = load_audit_chains(store_dirs[i]);
      result.stores[i].after = cloud::check_store(*stores[i], store_configs[i]);
    } else {
      result.stores[i].after = result.stores[i].before;
    }
  }
  for (const auto& [doc_id, dirty_replicas] : dirty_at) {
    bool clean_somewhere = false;
    bool dirty_somewhere = false;
    for (std::size_t i = 0; i < result.stores.size(); ++i) {
      const bool dirty =
          result.stores[i].after.dirty_docs().contains(doc_id) ||
          (!options.repair && dirty_replicas.contains(i));
      const bool present = [&] {
        try {
          return stores[i]->get(doc_id).has_value();
        } catch (const Error&) {
          return false;
        }
      }();
      if (dirty) {
        dirty_somewhere = true;
      } else if (present) {
        clean_somewhere = true;
      }
    }
    if (!dirty_somewhere) {
      ++result.repaired_docs;
      continue;
    }
    if (!clean_somewhere && options.repair) {
      // No healthy copy exists anywhere: fence the document on every
      // replica so damaged ciphertext is never mistaken for the document.
      for (auto& server : servers) server->quarantine(doc_id);
      result.unrecoverable.push_back(doc_id);
    }
  }

  return result;
}

std::string format_fsck_result(const FsckResult& result) {
  std::ostringstream out;
  out << "privedit-fsck: " << result.docs << " doc(s) across "
      << result.stores.size() << " store(s); " << result.dirty_docs
      << " dirty, " << result.repaired_docs << " repaired, "
      << result.unrecoverable.size() << " unrecoverable (quarantined), "
      << result.syncs_pushed << " sync push(es)";
  if (result.sync_stats.probes > 0 || result.sync_stats.delta_pushes > 0) {
    out << " (" << result.sync_stats.probes << " probe(s), "
        << result.sync_stats.delta_pushes << " differential, "
        << result.sync_stats.fallbacks << " fallback(s), "
        << result.sync_stats.bytes_delta << " delta byte(s) vs "
        << result.sync_stats.bytes_full << " full)";
  }
  out << '\n';
  if (result.audit_restore_skipped > 0) {
    out << "  audit sidecar: " << result.audit_restore_skipped
        << " stale record(s)/orphan link(s) dropped at boot\n";
  }
  for (const FsckStoreReport& store : result.stores) {
    out << "  store " << store.directory << ": " << store.before.docs_checked
        << " checked, " << store.before.findings.size() << " finding(s)";
    if (store.orphan_tmps_swept > 0) {
      out << ", " << store.orphan_tmps_swept << " orphan tmp(s) swept";
    }
    out << '\n';
    for (const cloud::Finding& f : store.before.findings) {
      out << "    [" << cloud::finding_kind_name(f.kind) << "] "
          << hex_encode(as_bytes(f.doc_id)) << ": " << f.detail << '\n';
    }
  }
  if (!result.unrecoverable.empty()) {
    out << "  quarantined:";
    for (const std::string& id : result.unrecoverable) {
      out << ' ' << hex_encode(as_bytes(id));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace privedit::extension
