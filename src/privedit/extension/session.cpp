#include "privedit/extension/session.hpp"

#include <atomic>

#include "privedit/crypto/ctr_drbg.hpp"
#include "privedit/util/error.hpp"

namespace privedit::extension {

RngFactory os_rng_factory() {
  return [] { return crypto::CtrDrbg::from_os_entropy(); };
}

RngFactory seeded_rng_factory(std::uint64_t seed) {
  auto counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [seed, counter] {
    return crypto::CtrDrbg::from_seed(seed + counter->fetch_add(1) * 0x9e3779b9ULL);
  };
}

DocumentSession DocumentSession::create_new(const std::string& password,
                                            const enc::SchemeConfig& config,
                                            const RngFactory& rng_factory) {
  auto header_rng = rng_factory();
  const enc::ContainerHeader header = enc::make_header(config, *header_rng);
  const crypto::DocumentKeys keys = crypto::derive_document_keys(
      password, header.salt, crypto::KdfParams{header.kdf_iterations});
  DocumentSession session(
      enc::make_scheme(header, keys, rng_factory()));
  // Start from an empty document so transform_delta is usable immediately.
  session.scheme_->initialize("");
  return session;
}

DocumentSession rotate_password(const DocumentSession& current,
                                const std::string& new_password,
                                const RngFactory& rng_factory) {
  const enc::ContainerHeader& old_header = current.scheme().header();
  enc::SchemeConfig config;
  config.mode = old_header.mode;
  config.block_chars = old_header.block_chars;
  config.codec = old_header.codec;
  config.kdf_iterations = old_header.kdf_iterations;
  DocumentSession fresh =
      DocumentSession::create_new(new_password, config, rng_factory);
  fresh.encrypt_full(current.plaintext());
  return fresh;
}

DocumentSession DocumentSession::open(const std::string& password,
                                      std::string_view ciphertext_doc,
                                      const RngFactory& rng_factory) {
  const enc::ContainerReader reader{ciphertext_doc};
  const enc::ContainerHeader& header = reader.header();
  const crypto::DocumentKeys keys = crypto::derive_document_keys(
      password, header.salt, crypto::KdfParams{header.kdf_iterations});
  DocumentSession session(enc::make_scheme(header, keys, rng_factory()));
  session.scheme_->load(ciphertext_doc);
  return session;
}

}  // namespace privedit::extension
