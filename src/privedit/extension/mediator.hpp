#pragma once
// GDocsMediator — the browser extension's request-mediation core (Fig 2).
//
// Sits between the editor client and the network as a net::Channel
// decorator. Outgoing requests containing docContents are replaced with the
// full ciphertext; requests containing delta are replaced with the
// transformed cdelta; *everything unrecognised is dropped* ("drop all
// unknown requests"). Incoming Acks have contentFromServer blanked and
// contentFromServerHash zeroed — the substitution §IV-A found the client
// tolerates; open responses are decrypted before the client sees them.
//
// Malicious-client countermeasures (§VI-B), all off by default except
// canonicalisation (which the transform performs inherently):
//   rediff        recompute the delta from the two document versions
//                 instead of trusting the client's op sequence
//   pad_bucket    quantise the outgoing body length to a bucket by
//                 appending no-op delta operations
//   random_delay  add uniform random delay to outgoing updates (charged to
//                 the simulated clock)

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "privedit/enc/types.hpp"
#include "privedit/extension/audit.hpp"
#include "privedit/extension/journal.hpp"
#include "privedit/extension/offline.hpp"
#include "privedit/extension/session.hpp"
#include "privedit/net/breaker.hpp"
#include "privedit/net/transport.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {

struct MediatorConfig {
  std::string password = "correct horse battery staple";
  enc::SchemeConfig scheme;
  RngFactory rng_factory = os_rng_factory();

  bool rediff = false;
  std::size_t pad_bucket = 0;          // 0 = off; else bytes
  std::uint64_t random_delay_us = 0;   // 0 = off; else uniform [0, max]

  /// Differential full saves (DESIGN.md §15): when the upstream advertises
  /// X-Privedit-BDelta, a docContents save is rewritten as a block delta
  /// against the container the server already holds. The new container is
  /// derived *incrementally* (transform of the plaintext diff) rather than
  /// re-encrypted from scratch, so unedited blocks stay byte-identical and
  /// the delta stays small; a 412 from the server (its copy is not what we
  /// thought) falls back to the plain full save. Off by default: the save
  /// path then behaves exactly as before this option existed. Note the
  /// trade-off the paper's §VI-B mitigations care about: a delta-sized
  /// message leaks more about the edit than a constant-size full save —
  /// combine with pad_bucket when that matters.
  bool block_delta_saves = false;

  /// Collaborative editing through the untrusted server — the capability
  /// §VII-A reports as broken and defers to SPORC. Requires the server's
  /// strict-revision (OCC) mode: when a save is rejected as stale, the
  /// mediator decrypts the authoritative ciphertext from the 409, rebases
  /// the local edit with Delta::transform, and retries; the final ack is
  /// rewritten with the merged *plaintext* (and a matching hash) so the
  /// unmodified client adopts it. The server still never sees plaintext.
  bool collaborative = false;
  int max_rebase_retries = 3;

  /// Durable write-ahead journal (extension/journal.hpp). When non-empty,
  /// every outgoing update is fsync'd to `<journal_dir>/<hex(doc)>.wal`
  /// before it is sent; on open the mediator replays unacknowledged
  /// entries (idempotent via revision CAS) and verifies the server has
  /// not rolled the document back past the last acknowledged revision
  /// (RollbackError otherwise). Empty = journaling off.
  std::string journal_dir;

  /// Client identity stamped on every upstream request as the
  /// X-Privedit-Client header — the key server-side admission buckets and
  /// the shard router's tenant accounting both meter. The label is pure
  /// routing metadata (it identifies an account, not the plaintext);
  /// empty = unlabeled (the server's shared "anon" bucket/tenant).
  std::string client_id;

  /// Fork-consistency audit chain (DESIGN.md §16): every save commits a
  /// keyed hash-chain link the server stores opaquely but cannot forge;
  /// opens verify the served chain against this client's committed head
  /// and classify any divergence — RollbackError (old-but-genuine state),
  /// ForkError (substituted or unverifiable history), EquivocationError
  /// (proof the server maintains different histories for different
  /// clients, via SUNDR-style signed chain-head witnesses exchanged
  /// through the server itself). When journal_dir is set the committed
  /// head is durable (`<journal_dir>/<hex(doc)>.achain`), so detection
  /// survives client crashes; without it the auditor is memory-only.
  bool audit = false;

  /// Publish our chain-head witness every Nth committed save (opens
  /// always re-publish when the head advanced). Bounds the audit
  /// overhead on the save path; 0 disables save-path publishing.
  int witness_interval = 8;

  /// Disconnected operation (extension/offline.hpp): when enabled, a save
  /// whose transport fails flips the document offline — edits keep flowing
  /// into the local mirror, are composed into one pending update, and are
  /// acknowledged locally; a circuit breaker gates reconnect probes; the
  /// first successful probe replays (and if needed rebases) the composed
  /// update. While enabled the mediator also owns the revision field on
  /// the wire, so the editor's view of revisions may run ahead of the
  /// server's during an outage. Costs one O(doc) plaintext snapshot per
  /// delta save (the rebase base), so it is opt-in.
  OfflineConfig offline;
};

class GDocsMediator final : public net::Channel {
 public:
  GDocsMediator(net::Channel* upstream, MediatorConfig config,
                net::SimClock* clock = nullptr);

  net::HttpResponse round_trip(const net::HttpRequest& request) override;

  struct Counters {
    std::size_t full_saves_encrypted = 0;
    std::size_t deltas_transformed = 0;
    std::size_t opens_decrypted = 0;
    std::size_t acks_blanked = 0;
    std::size_t requests_blocked = 0;
    std::size_t passthrough_unmanaged = 0;
    std::size_t rebases = 0;  // collaborative conflict rebases performed

    // Differential full saves (all zero unless block_delta_saves).
    std::size_t bdelta_saves = 0;      // saves accepted as block deltas
    std::size_t bdelta_fallbacks = 0;  // 412 → resent as plain full save
    std::size_t bdelta_bytes = 0;      // block-delta wire bytes sent
    std::size_t full_save_bytes = 0;   // full-container bytes sent
    std::size_t bdelta_renegotiations = 0;  // capability latch cleared after
                                            // a streak of 412 fallbacks

    // Fork-consistency audit (all zero unless audit).
    std::size_t audit_links_committed = 0;  // chain links acked or resolved
    std::size_t audit_chain_retries = 0;    // 412 areason=chain re-stages
    std::size_t audit_rollbacks = 0;        // RollbackError from the chain
    std::size_t audit_forks = 0;            // ForkError raised
    std::size_t audit_equivocations = 0;    // EquivocationError raised
    std::size_t witnesses_published = 0;    // cmd=witness stores acked
    std::size_t witness_suppressions = 0;   // our published witness vanished

    // Write-ahead journal & recovery (all zero when journal_dir is empty).
    std::size_t journal_appends = 0;     // updates journalled before send
    std::size_t journal_replays = 0;     // unacked entries resent at open
    std::size_t journal_drops = 0;       // entries found applied/rejected
    std::size_t torn_tails_recovered = 0;
    std::size_t rollbacks_detected = 0;  // RollbackError raised at open
    std::size_t ack_checksum_mismatches = 0;  // server hash != our mirror

    // Disconnected operation (all zero unless offline.enabled).
    std::size_t offline_entered = 0;       // docs flipped offline
    std::size_t offline_acks = 0;          // edits acknowledged locally
    std::size_t offline_backpressure = 0;  // 503s: queue cap reached
    std::size_t offline_flushes = 0;       // composed updates replayed
    std::size_t offline_flush_edits = 0;   // edits released by flushes
    std::size_t offline_dedupes = 0;       // flush found update applied
    std::size_t offline_rebases = 0;       // flush rebased over server edits
    std::size_t offline_opens_local = 0;   // opens served from the mirror
    std::size_t breaker_short_circuits = 0;  // sends refused by the breaker
  };
  const Counters& counters() const { return counters_; }

  /// The extension's plaintext mirror for a managed document.
  std::optional<std::string> managed_plaintext(const std::string& doc_id) const;

  /// The extension's ciphertext container for a managed document — the
  /// bytes a converged server must hold verbatim (the sim's delta-wire
  /// phase asserts exactly this after a quiesce).
  std::optional<std::string> managed_ciphertext(const std::string& doc_id) const;

  /// Scheme statistics for a managed document (blow-up, block counts, ...).
  std::optional<enc::SchemeStats> managed_stats(const std::string& doc_id) const;

  /// True while the document has a pending offline queue.
  bool offline_active(const std::string& doc_id) const;

  /// Edits currently queued offline for the document.
  std::size_t offline_queued(const std::string& doc_id) const;

  /// Reconnect probe: if the document is offline, attempts to replay the
  /// composed update (subject to the circuit breaker — at most one wire
  /// request per cool-down while the breaker is open). Returns true when
  /// the document is (back) online. Also invoked implicitly on every
  /// editor request for an offline document.
  bool try_flush(const std::string& doc_id);

  /// The upstream circuit breaker; nullptr unless offline.enabled.
  const net::CircuitBreaker* breaker() const { return breaker_.get(); }

 private:
  net::HttpResponse blocked(const std::string& why);
  void blank_ack_fields(net::HttpResponse& response);
  void apply_outgoing_mitigations(std::string& form_body);

  /// All upstream traffic funnels through here: applies the circuit
  /// breaker (when offline.enabled) so a dead endpoint is short-circuited
  /// locally instead of hammered.
  net::HttpResponse send_upstream(const net::HttpRequest& request);

  /// The document's offline queue; nullptr unless offline.enabled.
  OfflineQueue* offline_queue(const std::string& doc_id);

  /// Replaces the journal's pending entry with the current composed
  /// offline update (at most one offline entry is ever pending).
  void journal_offline_entry(const std::string& doc_id, const OfflineQueue& q);

  /// Lazily opens the document's journal; nullptr when journaling is off.
  EditJournal* journal_for(const std::string& doc_id);

  /// Crash recovery at open: rollback/fork detection against the journal's
  /// last-acknowledged (rev, checksum), then idempotent replay of pending
  /// entries (revision CAS), re-fetching the document if anything was
  /// replayed. Throws RollbackError on a §II rollback.
  net::HttpResponse recover_open(const std::string& doc_id,
                                 const net::HttpRequest& request,
                                 net::HttpResponse resp);

  /// Settles the oldest pending journal entry against a save response:
  /// ack on 2xx (recording the new revision), drop on a clean rejection.
  void settle_journal(EditJournal& journal, const net::HttpResponse& resp,
                      std::uint64_t base_rev, const std::string& checksum);

  /// Lazily constructs the document's auditor; nullptr when audit is off.
  /// The committed-head log lives next to the journal when journal_dir is
  /// set (memory-only otherwise).
  DocumentAuditor* auditor_for(const std::string& doc_id);

  /// Maps a non-kOk verdict to its typed error (counting it first).
  void raise_audit_verdict(const std::string& doc_id,
                           const DocumentAuditor::Verification& v);

  /// Verifies the chain a save rejection (409 / 412 areason=chain) served
  /// and fast-forwards the auditor — a retry's link must extend the NEW
  /// tip, or the whole chain becomes unverifiable for every client.
  void audit_adopt_served(const std::string& doc_id, DocumentAuditor& auditor,
                          const FormData& body);

  /// Open-time fork-consistency check: verifies the served chain against
  /// our committed head (first contact adopts after standalone
  /// verification), judges every served witness, detects suppression of
  /// our own, and re-publishes when our head advanced. Throws
  /// RollbackError / ForkError / EquivocationError.
  void audit_check_open(const std::string& doc_id, const std::string& target,
                        const FormData& reply, const std::string& content);

  /// Stores our signed chain-head witness at the server (best-effort).
  void publish_witness(const std::string& doc_id, const std::string& target,
                       DocumentAuditor& auditor);

  /// publish_witness, rate-limited to every witness_interval revisions.
  void maybe_publish_witness(const std::string& doc_id,
                             const std::string& target,
                             DocumentAuditor& auditor);

  net::Channel* upstream_;
  MediatorConfig config_;
  net::SimClock* clock_;
  std::unique_ptr<RandomSource> mitigation_rng_;
  std::map<std::string, DocumentSession> sessions_;
  std::map<std::string, std::unique_ptr<EditJournal>> journals_;
  std::set<std::string> unmanaged_;  // legacy plaintext docs, passed through
  std::unique_ptr<net::CircuitBreaker> breaker_;  // offline.enabled only
  std::map<std::string, OfflineQueue> offline_;
  std::map<std::string, std::uint64_t> server_rev_;  // truth from acks/opens
  std::map<std::string, std::uint64_t> editor_rev_;  // what the editor saw
  bool upstream_bdelta_ = false;  // upstream sent X-Privedit-BDelta: 1
  std::size_t bdelta_fallback_streak_ = 0;  // consecutive 412 fallbacks
  std::map<std::string, std::unique_ptr<DocumentAuditor>> auditors_;
  int audit_retry_depth_ = 0;  // bounds chain-412 re-stage recursion
  Counters counters_;
};

/// BespinMediator — wraps the PUT/GET whole-file protocol (§III): PUT
/// bodies are encrypted, GET responses decrypted. Unknown paths/methods
/// are dropped.
class BespinMediator final : public net::Channel {
 public:
  BespinMediator(net::Channel* upstream, MediatorConfig config);

  net::HttpResponse round_trip(const net::HttpRequest& request) override;

  std::size_t blocked_count() const { return blocked_; }

 private:
  net::Channel* upstream_;
  MediatorConfig config_;
  std::map<std::string, DocumentSession> sessions_;  // per file path
  std::size_t blocked_ = 0;
};

/// BuzzwordMediator — encrypts the text inside every <textRun> element of
/// POSTed XML and decrypts it again on GET (§III). The document structure
/// (markup) stays visible; only user text is protected, matching the
/// paper's description.
class BuzzwordMediator final : public net::Channel {
 public:
  BuzzwordMediator(net::Channel* upstream, MediatorConfig config);

  net::HttpResponse round_trip(const net::HttpRequest& request) override;

  std::size_t blocked_count() const { return blocked_; }

 private:
  net::Channel* upstream_;
  MediatorConfig config_;
  std::map<std::string, DocumentSession> sessions_;  // per doc id
  std::size_t blocked_ = 0;
};

}  // namespace privedit::extension
