#include "privedit/extension/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "privedit/delta/block_diff.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/util/bytes.hpp"
#include "privedit/util/crashpoint.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/durable_file.hpp"
#include "privedit/util/error.hpp"

namespace privedit::extension {
namespace {

constexpr std::uint32_t kMagic = 0x5045574Au;  // "PEWJ"
constexpr std::size_t kFrameHeader = 12;       // magic + len + crc

constexpr std::uint8_t kPending = 0x01;
constexpr std::uint8_t kAck = 0x02;
constexpr std::uint8_t kBase = 0x03;
constexpr std::uint8_t kDrop = 0x04;
constexpr std::uint8_t kBaseSnap = 0x05;
constexpr std::uint8_t kPendingDelta = 0x06;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 3]));
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(in, at)) << 32) |
         get_u32(in, at + 4);
}

std::string frame(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeader + payload.size());
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(as_bytes(payload)));
  out += payload;
  return out;
}

std::string encode_pending(const JournalEntry& e,
                           std::uint8_t type = kPending,
                           const std::string* update_override = nullptr) {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  put_u64(payload, e.base_rev);
  payload.push_back(e.full_save ? '\x01' : '\x00');
  payload.push_back(static_cast<char>(e.checksum.size() >> 8));
  payload.push_back(static_cast<char>(e.checksum.size()));
  payload += e.checksum;
  payload += update_override != nullptr ? *update_override : e.update;
  return payload;
}

std::string encode_base_snap(std::uint64_t rev, const std::string& checksum,
                             const std::string& content) {
  std::string payload;
  payload.push_back(static_cast<char>(kBaseSnap));
  put_u64(payload, rev);
  payload.push_back(static_cast<char>(checksum.size() >> 8));
  payload.push_back(static_cast<char>(checksum.size()));
  payload += checksum;
  payload += content;
  return payload;
}

std::string encode_acked(std::uint8_t type, std::uint64_t rev,
                         const std::string& checksum) {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  put_u64(payload, rev);
  payload += checksum;
  return payload;
}

[[noreturn]] void raise(const std::string& what) {
  throw Error(ErrorCode::kState, "EditJournal: " + what + ": " +
                                     std::strerror(errno));
}

}  // namespace

EditJournal::EditJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) raise("cannot open " + path_);
  load();
}

EditJournal::~EditJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void EditJournal::load() {
  std::string raw;
  {
    char buf[64 * 1024];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof buf)) > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
    }
    if (n < 0) raise("cannot read " + path_);
  }

  std::size_t good = 0;  // offset past the last intact record
  std::size_t at = 0;
  while (at + kFrameHeader <= raw.size()) {
    if (get_u32(raw, at) != kMagic) break;
    const std::size_t len = get_u32(raw, at + 4);
    if (at + kFrameHeader + len > raw.size()) break;  // short tail
    const std::string_view payload(raw.data() + at + kFrameHeader, len);
    if (get_u32(raw, at + 8) != crc32(as_bytes(payload)) || payload.empty()) {
      break;  // torn or rotted record — everything after it is suspect
    }
    const std::uint8_t type = static_cast<std::uint8_t>(payload[0]);
    bool parsed = true;
    switch (type) {
      case kPending:
      case kPendingDelta: {
        if (payload.size() < 12) { parsed = false; break; }
        JournalEntry e;
        e.base_rev = get_u64(payload, 1);
        e.full_save = payload[9] != '\x00';
        const std::size_t ck_len =
            (static_cast<std::size_t>(static_cast<unsigned char>(payload[10])) << 8) |
            static_cast<unsigned char>(payload[11]);
        if (payload.size() < 12 + ck_len) { parsed = false; break; }
        e.checksum = std::string(payload.substr(12, ck_len));
        e.update = std::string(payload.substr(12 + ck_len));
        if (type == kPendingDelta) {
          // Reconstruct the full update against the BASESNAP container so
          // pending() consumers never see the delta encoding. A record
          // that fails to apply is treated like a torn one: everything
          // from it on is suspect and truncated off.
          try {
            e.update = delta::apply_block_delta(
                enc::block_delta_from_wire(e.update), base_content_);
          } catch (const Error&) {
            parsed = false;
            break;
          }
        }
        pending_.push_back(std::move(e));
        break;
      }
      case kBaseSnap: {
        if (payload.size() < 11) { parsed = false; break; }
        const std::size_t ck_len =
            (static_cast<std::size_t>(static_cast<unsigned char>(payload[9])) << 8) |
            static_cast<unsigned char>(payload[10]);
        if (payload.size() < 11 + ck_len) { parsed = false; break; }
        last_acked_ = Acked{get_u64(payload, 1),
                            std::string(payload.substr(11, ck_len))};
        base_content_ = std::string(payload.substr(11 + ck_len));
        break;
      }
      case kAck:
      case kBase: {
        if (payload.size() < 9) { parsed = false; break; }
        Acked a;
        a.rev = get_u64(payload, 1);
        a.checksum = std::string(payload.substr(9));
        if (type == kAck && !pending_.empty()) pending_.pop_front();
        last_acked_ = std::move(a);
        break;
      }
      case kDrop:
        if (!pending_.empty()) pending_.pop_front();
        break;
      default:
        parsed = false;
        break;
    }
    if (!parsed) break;
    at += kFrameHeader + len;
    good = at;
  }

  if (good < raw.size()) {
    // Torn tail: truncate the file back to the last intact record so the
    // next append starts a clean frame.
    recovered_torn_tail_ = true;
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      raise("cannot truncate torn tail of " + path_);
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) raise("cannot seek " + path_);
}

void EditJournal::append_frame(const std::string& payload) {
  const std::string bytes = frame(payload);
  CrashPoints::reach("journal.append.before_write");
  // Two half-writes so an armed crash between them leaves a torn frame —
  // exactly what a power loss mid-append produces.
  const std::size_t half = bytes.size() / 2;
  std::size_t done = 0;
  auto write_span = [&](std::size_t upto) {
    while (done < upto) {
      const ssize_t n = ::write(fd_, bytes.data() + done, upto - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        raise("cannot append to " + path_);
      }
      done += static_cast<std::size_t>(n);
    }
  };
  write_span(half);
  CrashPoints::reach("journal.append.torn");
  write_span(bytes.size());
  CrashPoints::reach("journal.append.before_fsync");
  if (::fsync(fd_) != 0) raise("cannot fsync " + path_);
}

void EditJournal::append_pending(const JournalEntry& entry) {
  append_frame(encode_pending(entry));
  pending_.push_back(entry);
}

void EditJournal::ack_front(std::uint64_t rev, const std::string& checksum) {
  if (pending_.empty()) {
    throw Error(ErrorCode::kState, "EditJournal: ack with nothing pending");
  }
  append_frame(encode_acked(kAck, rev, checksum));
  // Callers may pass a reference into the front entry itself; take the
  // copy before pop_front() destroys it.
  Acked acked{rev, checksum};
  // An acknowledged full save is the new durable baseline the next
  // compact() deltas the remaining pendings against.
  if (pending_.front().full_save) {
    base_content_ = pending_.front().update;
  }
  pending_.pop_front();
  last_acked_ = std::move(acked);
}

void EditJournal::drop_front() {
  if (pending_.empty()) {
    throw Error(ErrorCode::kState, "EditJournal: drop with nothing pending");
  }
  append_frame(std::string(1, static_cast<char>(kDrop)));
  pending_.pop_front();
}

void EditJournal::reset(std::uint64_t rev, const std::string& checksum,
                        std::string base_content) {
  pending_.clear();
  last_acked_ = Acked{rev, checksum};
  base_content_ = std::move(base_content);
  compact();
}

void EditJournal::compact() {
  std::string contents;
  if (last_acked_) {
    contents += base_content_.empty()
                    ? frame(encode_acked(kBase, last_acked_->rev,
                                         last_acked_->checksum))
                    : frame(encode_base_snap(last_acked_->rev,
                                             last_acked_->checksum,
                                             base_content_));
  }
  for (const JournalEntry& e : pending_) {
    // A pending full save repeats a whole container; against a known base
    // it usually compacts to a block-delta a few percent of that. The
    // size guard keeps unrelated containers (or a stale base) harmless.
    if (e.full_save && !base_content_.empty()) {
      const std::string wire = enc::block_delta_to_wire(
          delta::block_diff(base_content_, e.update));
      if (wire.size() < e.update.size()) {
        contents += frame(encode_pending(e, kPendingDelta, &wire));
        continue;
      }
    }
    contents += frame(encode_pending(e));
  }
  // The append fd must not straddle the rename: close, replace, reopen.
  ::close(fd_);
  fd_ = -1;
  durable_replace_file(path_, contents, "journal.compact");
  // A transient open failure here would otherwise strand the journal with
  // fd_ == -1 while the in-memory state says everything is fine: retry,
  // then raise a typed storage error the offline queue can surface.
  for (int attempt = 0; attempt < 3 && fd_ < 0; ++attempt) {
    fd_ = ::open(path_.c_str(), O_RDWR | O_APPEND, 0644);
    if (fd_ < 0 && errno != EINTR && errno != EMFILE && errno != ENFILE) {
      break;
    }
  }
  if (fd_ < 0) {
    throw StorageError("EditJournal: cannot reopen " + path_ +
                           " after compact",
                       errno);
  }
}

std::optional<std::uint64_t> EditJournal::bytes_on_disk() const {
  struct stat st{};
  if (fd_ < 0 || ::fstat(fd_, &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace privedit::extension
