#include "privedit/extension/audit.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "privedit/util/crashpoint.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"

namespace privedit::extension {
namespace {

constexpr std::uint32_t kMagic = 0x50454143u;  // "PEAC"
constexpr std::size_t kFrameHeader = 12;       // magic + len + crc
constexpr std::size_t kHeadSize = 32;
constexpr std::size_t kWindowCap = 128;

constexpr std::uint8_t kCommit = 0x01;  // u64 rev, head
constexpr std::uint8_t kStage = 0x02;   // u64 rev, u32 crc, head
constexpr std::uint8_t kDrop = 0x03;    // (empty)

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 3]));
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(in, at)) << 32) |
         get_u32(in, at + 4);
}

std::string frame(const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeader + payload.size());
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(as_bytes(payload)));
  out += payload;
  return out;
}

[[noreturn]] void raise(const std::string& what) {
  throw Error(ErrorCode::kState,
              "DocumentAuditor: " + what + ": " + std::strerror(errno));
}

}  // namespace

std::string_view audit_verdict_name(AuditVerdict verdict) {
  switch (verdict) {
    case AuditVerdict::kOk:
      return "ok";
    case AuditVerdict::kRollback:
      return "rollback";
    case AuditVerdict::kFork:
      return "fork";
    case AuditVerdict::kEquivocation:
      return "equivocation";
  }
  return "unknown";
}

DocumentAuditor::DocumentAuditor(Bytes audit_key, std::string doc_id,
                                 std::string client_id, std::string log_path)
    : key_(std::move(audit_key)),
      doc_id_(std::move(doc_id)),
      client_id_(std::move(client_id)),
      log_path_(std::move(log_path)) {
  if (log_path_.empty()) return;
  fd_ = ::open(log_path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) raise("cannot open " + log_path_);
  load();
}

DocumentAuditor::~DocumentAuditor() {
  if (fd_ >= 0) ::close(fd_);
}

void DocumentAuditor::load() {
  std::string raw;
  {
    char buf[64 * 1024];
    ssize_t n;
    while ((n = ::read(fd_, buf, sizeof buf)) > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
    }
    if (n < 0) raise("cannot read " + log_path_);
  }

  std::size_t good = 0;
  std::size_t at = 0;
  while (at + kFrameHeader <= raw.size()) {
    if (get_u32(raw, at) != kMagic) break;
    const std::size_t len = get_u32(raw, at + 4);
    if (at + kFrameHeader + len > raw.size()) break;  // short tail
    const std::string_view payload(raw.data() + at + kFrameHeader, len);
    if (get_u32(raw, at + 8) != crc32(as_bytes(payload)) || payload.empty()) {
      break;  // torn or rotted record
    }
    const std::uint8_t type = static_cast<std::uint8_t>(payload[0]);
    bool parsed = true;
    switch (type) {
      case kCommit: {
        if (payload.size() != 1 + 8 + kHeadSize) { parsed = false; break; }
        committed_rev_ = get_u64(payload, 1);
        committed_head_.assign(payload.begin() + 9, payload.end());
        remember(committed_rev_, committed_head_);
        // A commit at or past the staged rev supersedes the stage.
        if (staged_ && staged_->rev <= committed_rev_) staged_.reset();
        break;
      }
      case kStage: {
        if (payload.size() != 1 + 8 + 4 + kHeadSize) { parsed = false; break; }
        enc::AuditLink link;
        link.rev = get_u64(payload, 1);
        link.crc = get_u32(payload, 9);
        link.client = client_id_;
        link.head.assign(payload.begin() + 13, payload.end());
        staged_ = std::move(link);
        break;
      }
      case kDrop:
        staged_.reset();
        break;
      default:
        parsed = false;
        break;
    }
    if (!parsed) break;
    at += kFrameHeader + len;
    good = at;
  }

  if (good < raw.size()) {
    recovered_torn_tail_ = true;
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      raise("cannot truncate torn tail of " + log_path_);
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) raise("cannot seek " + log_path_);
}

void DocumentAuditor::append_frame(const std::string& payload) {
  if (fd_ < 0) return;  // memory-only auditor
  const std::string bytes = frame(payload);
  CrashPoints::reach("audit.append.before_write");
  // Two half-writes so an armed crash between them leaves a torn frame.
  const std::size_t half = bytes.size() / 2;
  std::size_t done = 0;
  auto write_span = [&](std::size_t upto) {
    while (done < upto) {
      const ssize_t n = ::write(fd_, bytes.data() + done, upto - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        raise("cannot append to " + log_path_);
      }
      done += static_cast<std::size_t>(n);
    }
  };
  write_span(half);
  CrashPoints::reach("audit.append.torn");
  write_span(bytes.size());
  CrashPoints::reach("audit.append.before_fsync");
  if (::fsync(fd_) != 0) raise("cannot fsync " + log_path_);
}

void DocumentAuditor::log_commit(std::uint64_t rev, const Bytes& head) {
  std::string payload;
  payload.push_back(static_cast<char>(kCommit));
  put_u64(payload, rev);
  payload.append(head.begin(), head.end());
  append_frame(payload);
}

void DocumentAuditor::remember(std::uint64_t rev, const Bytes& head) {
  window_[rev] = head;
  while (window_.size() > kWindowCap) window_.erase(window_.begin());
}

void DocumentAuditor::reset(std::uint64_t rev) {
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
      raise("cannot reset " + log_path_);
    }
  }
  committed_rev_ = rev;
  committed_head_ = enc::genesis_head(key_, doc_id_);
  staged_.reset();
  window_.clear();
  peer_claims_.clear();
  published_rev_.reset();
  remember(committed_rev_, committed_head_);
  log_commit(committed_rev_, committed_head_);
}

void DocumentAuditor::adopt(std::uint64_t rev, ByteView head) {
  committed_rev_ = rev;
  committed_head_.assign(head.begin(), head.end());
  staged_.reset();
  remember(committed_rev_, committed_head_);
  log_commit(committed_rev_, committed_head_);
}

enc::AuditLink DocumentAuditor::stage_link(std::uint64_t rev,
                                           std::uint32_t crc) {
  if (!initialized()) {
    throw Error(ErrorCode::kState, "DocumentAuditor: stage before reset");
  }
  enc::AuditLink link;
  link.rev = rev;
  link.crc = crc;
  link.client = client_id_;
  link.head = enc::chain_head(key_, committed_head_, rev, crc, client_id_);

  std::string payload;
  payload.push_back(static_cast<char>(kStage));
  put_u64(payload, rev);
  put_u32(payload, crc);
  payload.append(link.head.begin(), link.head.end());
  append_frame(payload);

  staged_ = link;
  return link;
}

void DocumentAuditor::commit_staged() {
  if (!staged_) {
    throw Error(ErrorCode::kState, "DocumentAuditor: commit with no stage");
  }
  committed_rev_ = staged_->rev;
  committed_head_ = staged_->head;
  remember(committed_rev_, committed_head_);
  log_commit(committed_rev_, committed_head_);
  staged_.reset();
}

void DocumentAuditor::drop_staged() {
  if (!staged_) return;
  std::string payload(1, static_cast<char>(kDrop));
  append_frame(payload);
  staged_.reset();
}

DocumentAuditor::Verification DocumentAuditor::verify_served(
    const enc::AuditChain& chain, std::uint64_t served_rev,
    std::uint32_t served_crc) {
  Verification v;
  if (!initialized()) {
    throw Error(ErrorCode::kState, "DocumentAuditor: verify before reset");
  }

  if (!enc::verify_chain(key_, chain)) {
    v.verdict = AuditVerdict::kFork;
    v.detail = "audit chain fails verification (forged or spliced link)";
    return v;
  }

  // The chain must speak for exactly the state served with it.
  if (chain.tip_rev() != served_rev) {
    v.verdict = served_rev < committed_rev_ ? AuditVerdict::kRollback
                                            : AuditVerdict::kFork;
    v.detail = "served rev " + std::to_string(served_rev) +
               " but chain tip is " + std::to_string(chain.tip_rev());
    return v;
  }
  // crc 0 is the "unbound" sentinel: a journal replay of a delta entry
  // cannot know the resulting container's CRC. The link itself is still
  // MAC-protected — an attacker cannot *mint* an unbound link, only
  // replay one at its original chain position, which the rev checks and
  // the container's own crypto cover.
  if (!chain.links.empty() && chain.links.back().crc != 0 &&
      chain.links.back().crc != served_crc) {
    v.verdict = AuditVerdict::kFork;
    v.detail = "served container CRC does not match the chain tip";
    return v;
  }

  // Prefix compatibility with our committed head.
  if (chain.base_rev > committed_rev_) {
    v.verdict = AuditVerdict::kFork;
    v.detail = "chain pruned past our committed rev " +
               std::to_string(committed_rev_);
    return v;
  }
  const std::optional<Bytes> ours = chain.head_at(committed_rev_);
  if (!ours) {
    if (chain.tip_rev() < committed_rev_) {
      v.verdict = AuditVerdict::kRollback;
      v.detail = "chain ends at rev " + std::to_string(chain.tip_rev()) +
                 " before our committed rev " + std::to_string(committed_rev_);
    } else {
      v.verdict = AuditVerdict::kFork;
      v.detail = "chain skips our committed rev " +
                 std::to_string(committed_rev_);
    }
    return v;
  }
  if (*ours != committed_head_) {
    v.verdict = AuditVerdict::kFork;
    v.detail = "chain head at rev " + std::to_string(committed_rev_) +
               " differs from the head this client committed";
    return v;
  }

  // Resolve a staged (in-flight) link — the audit CAS replay: the save
  // landed iff the verified chain contains its exact head.
  if (staged_) {
    const std::optional<Bytes> at = chain.head_at(staged_->rev);
    if (at && *at == staged_->head) {
      v.staged_resolved = true;
      v.staged_landed = true;
      staged_.reset();  // fast-forward below commits it
    } else if (!at && chain.tip_rev() < staged_->rev) {
      drop_staged();  // save never landed; caller may re-stage on resend
      v.staged_resolved = true;
    } else {
      // The chain moved past (or replaced) the rev our save targeted
      // with someone else's link: our acknowledged-or-inflight write
      // was discarded from this history.
      v.verdict = AuditVerdict::kFork;
      v.detail = "chain covers rev " + std::to_string(staged_->rev) +
                 " with a different head than our in-flight save";
      return v;
    }
  }

  // Cross-check peer claims that were ahead of us when witnessed.
  for (auto it = peer_claims_.begin(); it != peer_claims_.end();) {
    const enc::AuditWitness& claim = it->second;
    if (claim.rev > chain.tip_rev()) {
      ++it;  // still ahead; keep waiting
      continue;
    }
    const std::optional<Bytes> at = chain.head_at(claim.rev);
    if (!at || *at != claim.head) {
      v.verdict = AuditVerdict::kEquivocation;
      v.detail = "peer " + claim.client + " witnessed rev " +
                 std::to_string(claim.rev) +
                 " with a head this history does not contain";
      return v;
    }
    it = peer_claims_.erase(it);
  }

  // Fast-forward through the verified links.
  for (const enc::AuditLink& link : chain.links) {
    if (link.rev > committed_rev_) remember(link.rev, link.head);
  }
  if (chain.tip_rev() > committed_rev_) {
    committed_rev_ = chain.tip_rev();
    committed_head_ = chain.links.empty() ? chain.base_head
                                          : chain.links.back().head;
    log_commit(committed_rev_, committed_head_);
  }
  return v;
}

DocumentAuditor::Verification DocumentAuditor::check_witness(
    const enc::AuditWitness& witness) {
  Verification v;
  if (!enc::verify_witness(key_, witness)) {
    v.detail = "witness MAC invalid (ignored)";
    return v;
  }
  if (witness.client == client_id_) return v;  // own witness: see suppressed
  if (witness.rev > committed_rev_) {
    // Peer is ahead of us; remember the freshest claim per peer and check
    // it against the next verified chain.
    auto [it, inserted] = peer_claims_.emplace(witness.client, witness);
    if (!inserted && witness.rev > it->second.rev) it->second = witness;
    return v;
  }
  const std::optional<Bytes> ours = head_at(witness.rev);
  if (!ours) {
    v.detail = "witness rev outside our evidence window (ignored)";
    return v;
  }
  if (*ours != witness.head) {
    v.verdict = AuditVerdict::kEquivocation;
    v.detail = "peer " + witness.client + " holds a different head at rev " +
               std::to_string(witness.rev) +
               " — the server is serving divergent histories";
  }
  return v;
}

enc::AuditWitness DocumentAuditor::own_witness() const {
  if (!initialized()) {
    throw Error(ErrorCode::kState, "DocumentAuditor: witness before reset");
  }
  return enc::make_witness(key_, client_id_, committed_rev_, committed_head_);
}

bool DocumentAuditor::witness_suppressed(
    const std::optional<enc::AuditWitness>& own_served) const {
  if (!published_rev_) return false;  // never published: nothing to expect
  if (!own_served) return true;
  if (!enc::verify_witness(key_, *own_served)) return true;  // tampered
  return own_served->rev < *published_rev_;
}

std::optional<Bytes> DocumentAuditor::head_at(std::uint64_t rev) const {
  const auto it = window_.find(rev);
  if (it == window_.end()) return std::nullopt;
  return it->second;
}

}  // namespace privedit::extension
