#include "privedit/extension/mediator.hpp"

#include <filesystem>

#include "privedit/cloud/xml.hpp"
#include "privedit/enc/block_wire.hpp"
#include "privedit/enc/container.hpp"
#include "privedit/crypto/sha256.hpp"
#include "privedit/delta/block_diff.hpp"
#include "privedit/delta/delta.hpp"
#include "privedit/net/admission.hpp"
#include "privedit/net/retry.hpp"
#include "privedit/util/crc32.hpp"
#include "privedit/util/error.hpp"
#include "privedit/util/hex.hpp"
#include "privedit/util/urlencode.hpp"

namespace privedit::extension {
namespace {

constexpr std::string_view kBespinPrefix = "/file/at/";
constexpr std::string_view kBuzzwordPrefix = "/doc/";

// Must match the hash the clients and the GDocs service compute.
std::string content_hash16(std::string_view content) {
  return hex_encode(crypto::Sha256::hash(as_bytes(content))).substr(0, 16);
}

std::uint64_t parse_rev(const std::optional<std::string>& rev) {
  if (!rev) return 0;
  try {
    return std::stoull(*rev);
  } catch (...) {
    return 0;
  }
}

/// The Ack the mediator synthesizes for an edit it queued offline. The
/// hash is "0" — the same blanked value the editor tolerates online — and
/// the revision continues the editor's own sequence so it keeps editing
/// without noticing the outage. `offline=1` is a diagnostic marker.
net::HttpResponse synth_offline_ack(std::uint64_t editor_rev) {
  FormData form;
  form.add("contentFromServerHash", "0");
  form.add("rev", std::to_string(editor_rev));
  form.add("offline", "1");
  return net::HttpResponse::make(200, form.encode(),
                                 "application/x-www-form-urlencoded");
}

/// Explicit backpressure: the offline queue is at capacity and the editor
/// must slow down (or the user must reconnect). Never a silent drop.
net::HttpResponse offline_backpressure_response() {
  net::HttpResponse resp = net::HttpResponse::make(
      503, "offline edit queue full; server unreachable");
  resp.headers.set("Retry-After", "1");
  return resp;
}

/// Rewrites the ack's revision to the editor's expected value. Needed when
/// the mediator owns the wire revision (offline mode): the server's real
/// revision lags the editor's virtual one after a composed flush.
void rewrite_ack_rev(net::HttpResponse& resp, std::uint64_t editor_rev) {
  FormData body = FormData::parse(resp.body);
  body.set("rev", std::to_string(editor_rev));
  resp.body = body.encode();
}

}  // namespace

GDocsMediator::GDocsMediator(net::Channel* upstream, MediatorConfig config,
                             net::SimClock* clock)
    : upstream_(upstream), config_(std::move(config)), clock_(clock) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "GDocsMediator: null upstream");
  }
  mitigation_rng_ = config_.rng_factory();
  if (config_.offline.enabled) {
    std::function<std::uint64_t()> now =
        clock_ != nullptr
            ? std::function<std::uint64_t()>(
                  [c = clock_] { return c->now_us(); })
            : net::now_steady_us;
    breaker_ = std::make_unique<net::CircuitBreaker>(config_.offline.breaker,
                                                     std::move(now));
  }
}

net::HttpResponse GDocsMediator::send_upstream(
    const net::HttpRequest& request) {
  if (!config_.client_id.empty() &&
      !request.headers.contains(net::kClientIdHeader)) {
    // Stamp the tenant identity once; recursing with the header present
    // falls straight through to the transport path below.
    net::HttpRequest labeled = request;
    labeled.headers.set(net::kClientIdHeader, config_.client_id);
    return send_upstream(labeled);
  }
  if (breaker_ == nullptr) {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (resp.headers.get("X-Privedit-BDelta") == "1") upstream_bdelta_ = true;
    return resp;
  }
  if (!breaker_->allow()) {
    ++counters_.breaker_short_circuits;
    throw net::TransportError(net::FaultKind::kConnect,
                              "mediator: circuit breaker open");
  }
  try {
    net::HttpResponse resp = upstream_->round_trip(request);
    breaker_->record_success();
    if (resp.headers.get("X-Privedit-BDelta") == "1") upstream_bdelta_ = true;
    return resp;
  } catch (const net::TransportError&) {
    breaker_->record_failure();
    throw;
  }
}

OfflineQueue* GDocsMediator::offline_queue(const std::string& doc_id) {
  if (!config_.offline.enabled) return nullptr;
  return &offline_[doc_id];
}

bool GDocsMediator::offline_active(const std::string& doc_id) const {
  const auto it = offline_.find(doc_id);
  return it != offline_.end() && it->second.active();
}

std::size_t GDocsMediator::offline_queued(const std::string& doc_id) const {
  const auto it = offline_.find(doc_id);
  return it == offline_.end() ? 0 : it->second.queued();
}

net::HttpResponse GDocsMediator::blocked(const std::string& why) {
  ++counters_.requests_blocked;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: " + why);
}

void GDocsMediator::blank_ack_fields(net::HttpResponse& response) {
  FormData body = FormData::parse(response.body);
  bool touched = false;
  if (body.contains("contentFromServer")) {
    body.set("contentFromServer", "");
    touched = true;
  }
  if (body.contains("contentFromServerHash")) {
    body.set("contentFromServerHash", "0");
    touched = true;
  }
  if (touched) {
    response.body = body.encode();
    ++counters_.acks_blanked;
  }
}

EditJournal* GDocsMediator::journal_for(const std::string& doc_id) {
  if (config_.journal_dir.empty()) return nullptr;
  auto it = journals_.find(doc_id);
  if (it == journals_.end()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.journal_dir, ec);
    if (ec) {
      throw Error(ErrorCode::kState,
                  "journal: cannot create " + config_.journal_dir + ": " +
                      ec.message());
    }
    auto journal = std::make_unique<EditJournal>(
        config_.journal_dir + "/" + hex_encode(as_bytes(doc_id)) + ".wal");
    if (journal->recovered_torn_tail()) ++counters_.torn_tails_recovered;
    it = journals_.emplace(doc_id, std::move(journal)).first;
  }
  return it->second.get();
}

void GDocsMediator::settle_journal(EditJournal& journal,
                                   const net::HttpResponse& resp,
                                   std::uint64_t base_rev,
                                   const std::string& checksum) {
  if (!resp.ok()) {
    // A clean rejection (409 stale, 400 malformed) means the server did
    // NOT apply the update — replaying it later would be wrong. Only a
    // transport failure (exception, no response at all) leaves the entry
    // pending for recovery, because only then is the outcome unknown.
    journal.drop_front();
    ++counters_.journal_drops;
    return;
  }
  const FormData ack = FormData::parse(resp.body);
  std::uint64_t acked_rev = base_rev + 1;
  if (const auto rev = ack.get("rev")) acked_rev = parse_rev(rev);
  if (const auto server_hash = ack.get("contentFromServerHash")) {
    // The server's claim about its post-update content vs our mirror.
    // A mismatch here is a concurrent (unmediated) writer or a lying
    // server; the next open settles which via rollback detection.
    if (*server_hash != checksum && *server_hash != "0") {
      ++counters_.ack_checksum_mismatches;
    }
  }
  journal.ack_front(acked_rev, checksum);
}

void GDocsMediator::journal_offline_entry(const std::string& doc_id,
                                          const OfflineQueue& q) {
  EditJournal* journal = journal_for(doc_id);
  if (journal == nullptr) return;
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return;
  // At most ONE offline entry is ever pending: the composed update. Each
  // newly queued edit replaces it (drop + append), so a crash while offline
  // recovers exactly the composed state through the normal WAL replay.
  while (!journal->pending().empty()) journal->drop_front();
  const std::string cipher_doc = it->second.scheme().ciphertext_doc();
  JournalEntry entry;
  entry.base_rev = q.base_rev();
  entry.full_save = q.full_save();
  entry.checksum = content_hash16(cipher_doc);
  entry.update = q.full_save() ? cipher_doc : q.pending_cipher()->to_wire();
  journal->append_pending(entry);
  ++counters_.journal_appends;
}

bool GDocsMediator::try_flush(const std::string& doc_id) {
  if (!config_.offline.enabled) return true;
  const auto oit = offline_.find(doc_id);
  if (oit == offline_.end() || !oit->second.active()) return true;
  OfflineQueue& q = oit->second;
  if (sessions_.find(doc_id) == sessions_.end()) {
    q.clear();  // document vanished under us; nothing left to replay
    return true;
  }
  DocumentAuditor* auditor = auditor_for(doc_id);
  for (int attempt = 0; attempt <= config_.max_rebase_retries; ++attempt) {
    DocumentSession& session = sessions_.find(doc_id)->second;
    FormData form;
    form.add("session", "offline-replay");
    form.add("rev", std::to_string(q.base_rev()));
    if (q.full_save()) {
      form.add("docContents", session.scheme().ciphertext_doc());
    } else {
      form.add("delta", q.pending_cipher()->to_wire());
    }
    if (auditor != nullptr && auditor->initialized()) {
      // The session mirror already holds the composed update, so its
      // container IS what the server will store — bind its CRC.
      const enc::AuditLink link = auditor->stage_link(
          auditor->committed_rev() + 1,
          crc32(as_bytes(session.scheme().ciphertext_doc())));
      form.add("alink", enc::encode_link(link));
      form.add("abase", hex_encode(auditor->committed_head()));
      form.add("abaserev", std::to_string(auditor->committed_rev()));
    }
    net::HttpRequest flush =
        net::HttpRequest::post_form(q.target(), form.encode());
    // One wire request per breaker cool-down: the probe marker makes every
    // retry layer below take exactly one attempt.
    flush.headers.set(net::kProbeHeader, "1");
    q.note_attempt(session.plaintext());
    net::HttpResponse resp;
    try {
      resp = send_upstream(flush);
    } catch (const net::TransportError&) {
      return false;  // still unreachable (or the breaker refused the probe)
    }
    if (resp.ok()) {
      const std::uint64_t acked =
          parse_rev(FormData::parse(resp.body).get("rev"));
      server_rev_[doc_id] = acked;
      if (EditJournal* journal = journal_for(doc_id)) {
        if (!journal->pending().empty()) {
          journal->ack_front(acked,
                             content_hash16(session.scheme().ciphertext_doc()));
        }
      }
      if (auditor != nullptr && auditor->has_staged()) {
        auditor->commit_staged();
        ++counters_.audit_links_committed;
      }
      ++counters_.offline_flushes;
      counters_.offline_flush_edits += q.queued();
      q.clear();
      return true;
    }
    if (resp.status != 409) {
      return false;  // alive but refusing (overload?); stay offline
    }
    // The server advanced while we were away — or our previous flush landed
    // and its ack was lost. Decrypt its authoritative state and decide.
    const FormData ack = FormData::parse(resp.body);
    const auto server_cipher = ack.get("contentFromServer");
    const auto server_rev = ack.get("rev");
    if (!server_cipher || !server_rev) return false;
    if (auditor != nullptr) {
      // Judge the conflict's chain and fast-forward before any re-stage.
      auditor->drop_staged();
      audit_adopt_served(doc_id, *auditor, ack);
    }
    DocumentSession fresh = DocumentSession::open(
        config_.password, *server_cipher, config_.rng_factory);
    const std::string server_plain = fresh.plaintext();
    const std::string mirror = session.plaintext();
    const std::uint64_t new_rev = parse_rev(server_rev);
    if (server_plain == mirror) {
      // Everything we queued is already there (a delivered flush whose ack
      // died): adopt the server's container, settle, go back online.
      // Resending would duplicate every queued edit.
      const std::string checksum =
          content_hash16(fresh.scheme().ciphertext_doc());
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id, std::move(fresh));
      server_rev_[doc_id] = new_rev;
      if (EditJournal* journal = journal_for(doc_id)) {
        if (!journal->pending().empty()) journal->ack_front(new_rev, checksum);
      }
      ++counters_.offline_dedupes;
      ++counters_.offline_flushes;
      counters_.offline_flush_edits += q.queued();
      q.clear();
      return true;
    }
    if (q.full_save()) {
      // A full save overwrites whatever the server holds; only the CAS
      // base needs refreshing. The mirror stays OUR content — it is the
      // payload — so the fresh session is discarded.
      server_rev_[doc_id] = new_rev;
      q.rebase(new_rev, server_plain, delta::Delta{}, delta::Delta{});
      journal_offline_entry(doc_id, q);
      continue;
    }
    delta::Delta remaining;
    if (q.attempted(server_plain)) {
      // An earlier flush attempt landed (ack lost) and more edits queued
      // since: only the difference still needs to go. Resending the whole
      // composed update would duplicate the half that landed. The history
      // check matters: under an asymmetric outage several attempts can be
      // in doubt at once, and the one the server holds need not be the
      // latest — misreading it as foreign progress would rebase our own
      // edits over themselves.
      remaining = delta::myers_diff(server_plain, mirror);
      ++counters_.offline_dedupes;
    } else {
      // Genuine concurrent server-side progress: rebase the composed
      // update over it, exactly like the collaborative 409 path.
      const delta::Delta theirs =
          delta::myers_diff(q.base_plain(), server_plain);
      remaining =
          delta::Delta::transform(*q.pending_plain(), theirs, /*a_wins=*/false);
      ++counters_.offline_rebases;
    }
    const delta::Delta new_cipher = fresh.transform_delta(remaining);
    sessions_.erase(doc_id);
    sessions_.emplace(doc_id, std::move(fresh));
    server_rev_[doc_id] = new_rev;
    q.rebase(new_rev, server_plain, remaining, new_cipher);
    journal_offline_entry(doc_id, q);
  }
  return false;
}

DocumentAuditor* GDocsMediator::auditor_for(const std::string& doc_id) {
  if (!config_.audit) return nullptr;
  auto it = auditors_.find(doc_id);
  if (it == auditors_.end()) {
    std::string log_path;
    if (!config_.journal_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(config_.journal_dir, ec);
      if (ec) {
        throw Error(ErrorCode::kState,
                    "audit: cannot create " + config_.journal_dir + ": " +
                        ec.message());
      }
      log_path =
          config_.journal_dir + "/" + hex_encode(as_bytes(doc_id)) + ".achain";
    }
    auto auditor = std::make_unique<DocumentAuditor>(
        enc::derive_audit_key(config_.password, doc_id), doc_id,
        config_.client_id.empty() ? "anon" : config_.client_id,
        std::move(log_path));
    if (auditor->recovered_torn_tail()) ++counters_.torn_tails_recovered;
    it = auditors_.emplace(doc_id, std::move(auditor)).first;
  }
  return it->second.get();
}

void GDocsMediator::raise_audit_verdict(
    const std::string& doc_id, const DocumentAuditor::Verification& v) {
  switch (v.verdict) {
    case AuditVerdict::kOk:
      return;
    case AuditVerdict::kRollback:
      ++counters_.audit_rollbacks;
      throw RollbackError("document '" + doc_id + "': " + v.detail);
    case AuditVerdict::kFork:
      ++counters_.audit_forks;
      throw ForkError("document '" + doc_id + "': " + v.detail);
    case AuditVerdict::kEquivocation:
      ++counters_.audit_equivocations;
      throw EquivocationError("document '" + doc_id + "': " + v.detail);
  }
}

void GDocsMediator::audit_adopt_served(const std::string& doc_id,
                                       DocumentAuditor& auditor,
                                       const FormData& body) {
  const auto chain_wire = body.get("achain");
  const auto content = body.get("contentFromServer");
  if (!chain_wire || !content) return;  // nothing to judge; open settles it
  enc::AuditChain chain;
  try {
    chain = enc::decode_chain(*chain_wire);
  } catch (const Error&) {
    ++counters_.audit_forks;
    throw ForkError("document '" + doc_id +
                    "': unparseable audit chain in save rejection");
  }
  const DocumentAuditor::Verification v = auditor.verify_served(
      chain, parse_rev(body.get("rev")), crc32(as_bytes(*content)));
  if (v.staged_landed) ++counters_.audit_links_committed;
  raise_audit_verdict(doc_id, v);
}

void GDocsMediator::publish_witness(const std::string& doc_id,
                                    const std::string& target,
                                    DocumentAuditor& auditor) {
  // Best-effort: a lost store is indistinguishable from suppression, and
  // suppression is exactly what the next open's witness check detects.
  FormData form;
  form.add("cmd", "witness");
  form.add("w", enc::encode_witness(auditor.own_witness()));
  try {
    const net::HttpResponse resp =
        send_upstream(net::HttpRequest::post_form(target, form.encode()));
    if (resp.ok()) {
      auditor.note_witness_published();
      ++counters_.witnesses_published;
    }
  } catch (const net::TransportError&) {
  }
}

void GDocsMediator::maybe_publish_witness(const std::string& doc_id,
                                          const std::string& target,
                                          DocumentAuditor& auditor) {
  if (config_.witness_interval <= 0) return;
  if (const auto& published = auditor.published_rev()) {
    if (auditor.committed_rev() <
        *published + static_cast<std::uint64_t>(config_.witness_interval)) {
      return;
    }
  }
  publish_witness(doc_id, target, auditor);
}

void GDocsMediator::audit_check_open(const std::string& doc_id,
                                     const std::string& target,
                                     const FormData& reply,
                                     const std::string& content) {
  DocumentAuditor* auditor = auditor_for(doc_id);
  if (auditor == nullptr) return;
  const std::uint64_t rev = parse_rev(reply.get("rev"));
  const std::uint32_t crc = crc32(as_bytes(content));
  const auto chain_wire = reply.get("achain");

  if (!chain_wire) {
    if (auditor->initialized() && auditor->committed_rev() > 0) {
      ++counters_.audit_forks;
      throw ForkError("document '" + doc_id +
                      "': server presented no audit chain despite history "
                      "acknowledged through rev " +
                      std::to_string(auditor->committed_rev()));
    }
    // Pre-chain document: baseline at the genesis head; the next save's
    // abase roots the server-side chain here.
    if (!auditor->initialized()) auditor->reset(rev);
    return;
  }

  enc::AuditChain chain;
  try {
    chain = enc::decode_chain(*chain_wire);
  } catch (const Error&) {
    ++counters_.audit_forks;
    throw ForkError("document '" + doc_id + "': unparseable audit chain");
  }

  if (!auditor->initialized()) {
    // First contact with an already-chained document: the base head is
    // trust-on-first-use, every link above it verifies under the key.
    if (!enc::verify_chain(auditor->key(), chain) ||
        chain.tip_rev() != rev ||
        (!chain.links.empty() && chain.links.back().crc != 0 &&
         chain.links.back().crc != crc)) {
      ++counters_.audit_forks;
      throw ForkError("document '" + doc_id +
                      "': served chain fails verification on first contact");
    }
    auditor->adopt(rev, chain.links.empty() ? chain.base_head
                                            : chain.links.back().head);
  } else {
    const DocumentAuditor::Verification v =
        auditor->verify_served(chain, rev, crc);
    if (v.staged_landed) ++counters_.audit_links_committed;
    raise_audit_verdict(doc_id, v);
  }

  // SUNDR-style cross-client detection: judge every witness the server
  // serves, then make sure our own published claim was not suppressed.
  std::optional<enc::AuditWitness> own;
  for (const auto& [key, value] : reply.fields()) {
    if (key != "w") continue;
    enc::AuditWitness w;
    try {
      w = enc::decode_witness(value);
    } catch (const Error&) {
      continue;  // server garbage; only a valid MAC proves anything
    }
    if (w.client == auditor->client_id()) {
      own = w;
      continue;
    }
    raise_audit_verdict(doc_id, auditor->check_witness(w));
  }
  if (auditor->witness_suppressed(own)) {
    ++counters_.witness_suppressions;
    ++counters_.audit_equivocations;
    throw EquivocationError(
        "document '" + doc_id +
        "': server suppressed this client's published chain-head witness");
  }
  if (!auditor->published_rev() ||
      *auditor->published_rev() < auditor->committed_rev()) {
    publish_witness(doc_id, target, *auditor);
  }
}

net::HttpResponse GDocsMediator::recover_open(const std::string& doc_id,
                                              const net::HttpRequest& request,
                                              net::HttpResponse resp) {
  EditJournal* journal = journal_for(doc_id);
  if (journal == nullptr) return resp;
  const FormData reply = FormData::parse(resp.body);
  const std::string content = reply.get("content").value_or("");
  std::uint64_t rev = parse_rev(reply.get("rev"));

  if (const auto& acked = journal->last_acked()) {
    // §II rollback adversary: the provider restored a backup (older rev)
    // or forked the history (same rev, different bytes). Either way the
    // server is contradicting an acknowledgement it already gave us.
    if (rev < acked->rev) {
      ++counters_.rollbacks_detected;
      throw RollbackError(
          "server rolled back document '" + doc_id + "': presented rev " +
          std::to_string(rev) + " older than acknowledged rev " +
          std::to_string(acked->rev));
    }
    if (rev == acked->rev && content_hash16(content) != acked->checksum) {
      ++counters_.rollbacks_detected;
      throw RollbackError("server forked document '" + doc_id +
                          "': content at acknowledged rev " +
                          std::to_string(rev) +
                          " differs from the acknowledged checksum");
    }
  }

  // Idempotent replay of unacknowledged updates. The CAS is the revision:
  // an entry is resent only while the server still sits at its base
  // revision; a server already past it applied the update before the
  // crash (ack lost in flight), so the entry is settled, not resent.
  bool replayed = false;
  while (!journal->pending().empty()) {
    const JournalEntry& entry = journal->pending().front();
    if (rev > entry.base_rev) {
      journal->drop_front();
      ++counters_.journal_drops;
      continue;
    }
    if (rev < entry.base_rev) break;  // gap — never replay out of order
    FormData form;
    form.add("session", "journal-recovery");
    form.add("rev", std::to_string(entry.base_rev));
    form.add(entry.full_save ? "docContents" : "delta", entry.update);
    DocumentAuditor* auditor = auditor_for(doc_id);
    if (auditor != nullptr && auditor->initialized()) {
      // The replayed save must extend the chain like the original send
      // would have; a surviving staged link (the crash hit between stage
      // and ack) is reused, otherwise one is staged fresh. Only a full
      // save knows its container bytes here — delta replays bind crc 0,
      // the auditor's "unbound" sentinel.
      if (!auditor->has_staged() ||
          auditor->staged()->rev != entry.base_rev + 1) {
        auditor->stage_link(entry.base_rev + 1,
                            entry.full_save ? crc32(as_bytes(entry.update))
                                            : 0);
      }
      form.add("alink", enc::encode_link(*auditor->staged()));
      form.add("abase", hex_encode(auditor->committed_head()));
      form.add("abaserev", std::to_string(auditor->committed_rev()));
    }
    const net::HttpResponse replay_resp = send_upstream(
        net::HttpRequest::post_form(request.target, form.encode()));
    if (!replay_resp.ok()) break;  // refused now; retried at the next open
    const FormData ack = FormData::parse(replay_resp.body);
    rev = ack.contains("rev") ? parse_rev(ack.get("rev"))
                              : entry.base_rev + 1;
    journal->ack_front(rev, entry.checksum);
    if (auditor != nullptr && auditor->has_staged()) {
      auditor->commit_staged();
      ++counters_.audit_links_committed;
    }
    ++counters_.journal_replays;
    replayed = true;
  }
  if (replayed) {
    // The authoritative content now includes the replayed edits.
    resp = send_upstream(request);
  }
  return resp;
}

void GDocsMediator::apply_outgoing_mitigations(std::string& form_body) {
  if (config_.pad_bucket > 0) {
    // Quantise the body length: every message becomes a multiple of the
    // bucket, so length leaks at bucket granularity only.
    const std::size_t base = form_body.size() + 5;  // "&pad="
    const std::size_t target =
        (base + config_.pad_bucket - 1) / config_.pad_bucket *
        config_.pad_bucket;
    form_body += "&pad=";
    form_body.append(target - base, 'x');
  }
  if (config_.random_delay_us > 0 && clock_ != nullptr) {
    clock_->advance_us(mitigation_rng_->below(config_.random_delay_us + 1));
  }
}

net::HttpResponse GDocsMediator::round_trip(const net::HttpRequest& request) {
  if (request.method != "POST" || request.path() != "/Doc") {
    return blocked("unknown endpoint");
  }
  const auto doc_id_opt = request.query_param("docID");
  if (!doc_id_opt) {
    return blocked("missing docID");
  }
  const std::string doc_id = *doc_id_opt;
  FormData form = FormData::parse(request.body);
  const auto cmd = form.get("cmd");
  const bool unmanaged = unmanaged_.count(doc_id) > 0;

  if (cmd == "create") {
    net::HttpRequest outgoing = request;
    DocumentAuditor* auditor = auditor_for(doc_id);
    if (auditor != nullptr) {
      // Root the server-side chain at our genesis head in the same
      // request, so the very first save already extends a stored chain.
      form.set("abase", hex_encode(enc::genesis_head(auditor->key(), doc_id)));
      outgoing.body = form.encode();
    }
    net::HttpResponse resp = send_upstream(outgoing);
    if (resp.ok()) {
      unmanaged_.erase(doc_id);
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id,
                        DocumentSession::create_new(config_.password,
                                                    config_.scheme,
                                                    config_.rng_factory));
      const std::uint64_t rev =
          parse_rev(FormData::parse(resp.body).get("rev"));
      if (auditor != nullptr) auditor->reset(rev);
      if (EditJournal* journal = journal_for(doc_id)) {
        // A create wipes server history; stale pending entries and the old
        // baseline must not outlive it.
        journal->reset(rev, content_hash16(""));
      }
      if (config_.offline.enabled) {
        offline_[doc_id].clear();
        server_rev_[doc_id] = rev;
        editor_rev_[doc_id] = rev;
      }
    }
    return resp;
  }

  if (cmd == "open") {
    if (offline_active(doc_id) && !try_flush(doc_id)) {
      // Still cut off: answer from the plaintext mirror so the user keeps
      // their document. The revision continues the editor's own sequence.
      const auto sess_it = sessions_.find(doc_id);
      if (sess_it != sessions_.end()) {
        FormData reply;
        reply.add("content", sess_it->second.plaintext());
        reply.add("rev", std::to_string(editor_rev_[doc_id]));
        reply.add("session", "offline");
        reply.add("offline", "1");
        ++counters_.offline_opens_local;
        return net::HttpResponse::make(200, reply.encode(),
                                       "application/x-www-form-urlencoded");
      }
    }
    net::HttpResponse resp = send_upstream(request);
    if (!resp.ok()) return resp;
    resp = recover_open(doc_id, request, std::move(resp));
    FormData reply = FormData::parse(resp.body);
    const std::string content = reply.get("content").value_or("");
    if (content.empty()) {
      // Fork consistency first: an empty reply for a document with
      // acknowledged chain history is the server denying that history.
      audit_check_open(doc_id, request.target, reply, content);
      // Empty document — start a fresh encrypted session for it.
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id,
                        DocumentSession::create_new(config_.password,
                                                    config_.scheme,
                                                    config_.rng_factory));
      if (EditJournal* journal = journal_for(doc_id)) {
        if (journal->pending().empty()) {
          journal->reset(parse_rev(reply.get("rev")), content_hash16(""));
        }
      }
      if (config_.offline.enabled) {
        server_rev_[doc_id] = parse_rev(reply.get("rev"));
        editor_rev_[doc_id] = server_rev_[doc_id];
      }
      return resp;
    }
    try {
      DocumentSession session = DocumentSession::open(
          config_.password, content, config_.rng_factory);
      // The container decrypted, so these are genuine client-written
      // bytes — now verify they are the HISTORY we were promised.
      audit_check_open(doc_id, request.target, reply, content);
      reply.set("content", session.plaintext());
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id, std::move(session));
      unmanaged_.erase(doc_id);
      resp.body = reply.encode();
      ++counters_.opens_decrypted;
      if (EditJournal* journal = journal_for(doc_id)) {
        // Converged with the server: adopt its (verified) state as the
        // new baseline. Entries the server refused to take stay pending
        // for the next open, so the baseline must not clobber them. The
        // container rides along as the durable base compact() will
        // delta-compress pending full saves against.
        if (journal->pending().empty()) {
          journal->reset(parse_rev(reply.get("rev")), content_hash16(content),
                         content);
        }
      }
      if (config_.offline.enabled) {
        // The editor now sees the server's real revision: the virtual
        // sequence (if any) reconverges here.
        server_rev_[doc_id] = parse_rev(reply.get("rev"));
        editor_rev_[doc_id] = server_rev_[doc_id];
      }
      return resp;
    } catch (const ParseError&) {
      // Unparseable content is either a legacy plaintext document (pass
      // through, stop mediating) or a *corrupted* container. If we already
      // hold a session for this document, or the bytes still carry the
      // container magic, it is corruption — in transit or at the provider
      // — and must fail loudly rather than reach the client as "text".
      if (sessions_.count(doc_id) != 0 || enc::looks_like_container(content)) {
        throw IntegrityError(
            "open: ciphertext container corrupted for document '" + doc_id +
            "'");
      }
      unmanaged_.insert(doc_id);
      ++counters_.passthrough_unmanaged;
      return resp;
    }
    // CryptoError (wrong password) and IntegrityError (tampering)
    // propagate to the caller: the user must know.
  }

  if (unmanaged) {
    ++counters_.passthrough_unmanaged;
    return upstream_->round_trip(request);
  }

  if (sessions_.find(doc_id) == sessions_.end()) {
    return blocked("document has no active encrypted session");
  }

  if (const auto contents = form.get("docContents")) {
    OfflineQueue* oq = offline_queue(doc_id);
    if (oq != nullptr && oq->active() && !try_flush(doc_id)) {
      // Still cut off: absorb the save locally — or push back at the cap.
      if (oq->queued() >= config_.offline.max_queued_edits) {
        ++counters_.offline_backpressure;
        return offline_backpressure_response();
      }
      sessions_.find(doc_id)->second.encrypt_full(*contents);
      oq->queue_full_save();
      journal_offline_entry(doc_id, *oq);
      ++counters_.full_saves_encrypted;
      ++counters_.offline_acks;
      return synth_offline_ack(++editor_rev_[doc_id]);
    }
    // try_flush may have swapped the session (dedupe/rebase adopt the
    // server's container) — re-resolve before touching the mirror.
    DocumentSession& live = sessions_.find(doc_id)->second;
    std::string ciphertext;
    std::string bdelta_wire;
    if (config_.block_delta_saves && upstream_bdelta_) {
      // Differential full save. encrypt_full re-randomises every block, so
      // two independent encryptions share nothing — the new container must
      // be derived *incrementally* (transform of the plaintext diff) for
      // the unedited blocks to stay byte-identical with what the server
      // holds. Our ciphertext mirror tracks the server's copy exactly (the
      // journal's checksum machinery depends on that already), so it is
      // the delta's anchor; if the server has diverged anyway, it answers
      // 412 and the fallback below resends the plain full save.
      const std::string previous = live.scheme().ciphertext_doc();
      try {
        live.transform_delta(delta::myers_diff(live.plaintext(), *contents));
        ciphertext = live.scheme().ciphertext_doc();
        std::string wire = enc::block_delta_to_wire(
            delta::block_diff(previous, ciphertext));
        if (wire.size() < ciphertext.size()) bdelta_wire = std::move(wire);
      } catch (const Error&) {
        ciphertext.clear();  // derivation refused; re-encrypt from scratch
      }
    }
    if (ciphertext.empty()) ciphertext = live.encrypt_full(*contents);
    if (bdelta_wire.empty()) {
      form.set("docContents", ciphertext);
    } else {
      form.remove("docContents");
      form.set("bdelta", bdelta_wire);
    }
    if (config_.offline.enabled) {
      // The mediator owns the wire revision: the editor's view may be a
      // virtual (offline) sequence running ahead of the server's.
      form.set("rev", std::to_string(server_rev_[doc_id]));
    }
    DocumentAuditor* auditor = auditor_for(doc_id);
    if (auditor != nullptr && auditor->initialized()) {
      // Stage the chain link — durable BEFORE the wire, the same
      // write-ahead discipline as the journal entry below.
      const enc::AuditLink link = auditor->stage_link(
          auditor->committed_rev() + 1, crc32(as_bytes(ciphertext)));
      form.set("alink", enc::encode_link(link));
      form.set("abase", hex_encode(auditor->committed_head()));
      form.set("abaserev", std::to_string(auditor->committed_rev()));
    }
    const std::uint64_t base_rev = parse_rev(form.get("rev"));
    const std::string checksum = content_hash16(ciphertext);
    EditJournal* journal = journal_for(doc_id);
    if (journal != nullptr) {
      // Write-ahead: durable before the wire. If the send dies below, the
      // entry is still pending at the next open and gets replayed.
      journal->append_pending({base_rev, /*full_save=*/true, checksum,
                               ciphertext});
      ++counters_.journal_appends;
    }
    std::string body = form.encode();
    apply_outgoing_mitigations(body);
    net::HttpResponse resp;
    try {
      resp = send_upstream(
          net::HttpRequest::post_form(request.target, std::move(body)));
    } catch (const net::TransportError&) {
      if (oq == nullptr) throw;
      // Retry budget exhausted (or breaker open): flip the document
      // offline. The mirror already holds the new content; the flush will
      // push the whole container when the server comes back.
      oq->enter(server_rev_[doc_id], *contents, request.target);
      oq->queue_full_save();
      journal_offline_entry(doc_id, *oq);
      ++counters_.offline_entered;
      ++counters_.full_saves_encrypted;
      ++counters_.offline_acks;
      return synth_offline_ack(++editor_rev_[doc_id]);
    }
    if (journal != nullptr) settle_journal(*journal, resp, base_rev, checksum);
    if (auditor != nullptr && resp.status == 412 &&
        FormData::parse(resp.body).get("areason") == "chain") {
      // Another writer advanced the chain past our staged link. Verify
      // the rejection's chain, fast-forward, and resend: round_trip
      // re-encrypts and re-stages against the new tip.
      auditor->drop_staged();
      audit_adopt_served(doc_id, *auditor, FormData::parse(resp.body));
      ++counters_.audit_chain_retries;
      if (audit_retry_depth_ < 2) {
        ++audit_retry_depth_;
        try {
          net::HttpResponse retry = round_trip(request);
          --audit_retry_depth_;
          return retry;
        } catch (...) {
          --audit_retry_depth_;
          throw;
        }
      }
      return resp;
    }
    if (!bdelta_wire.empty()) {
      counters_.bdelta_bytes += bdelta_wire.size();
      if (resp.status == 412) {
        // The server's container is not what our mirror says (lost save,
        // concurrent unmediated writer, provider tampering): the delta
        // cannot anchor. Resend as the plain full save, which is always
        // correct. settle_journal above already dropped the refused entry.
        ++counters_.bdelta_fallbacks;
        if (++bdelta_fallback_streak_ >= 3) {
          // The capability latch is stale — a migrated shard or replaced
          // upstream keeps refusing anchors. Clear it; the next response
          // advertising X-Privedit-BDelta re-latches (the re-probe).
          upstream_bdelta_ = false;
          bdelta_fallback_streak_ = 0;
          ++counters_.bdelta_renegotiations;
        }
        form.remove("bdelta");
        form.set("docContents", ciphertext);
        if (journal != nullptr) {
          journal->append_pending({base_rev, /*full_save=*/true, checksum,
                                   ciphertext});
          ++counters_.journal_appends;
        }
        std::string full_body = form.encode();
        apply_outgoing_mitigations(full_body);
        try {
          resp = send_upstream(
              net::HttpRequest::post_form(request.target,
                                          std::move(full_body)));
        } catch (const net::TransportError&) {
          if (oq == nullptr) throw;
          oq->enter(server_rev_[doc_id], *contents, request.target);
          oq->queue_full_save();
          journal_offline_entry(doc_id, *oq);
          ++counters_.offline_entered;
          ++counters_.full_saves_encrypted;
          ++counters_.offline_acks;
          return synth_offline_ack(++editor_rev_[doc_id]);
        }
        if (journal != nullptr) {
          settle_journal(*journal, resp, base_rev, checksum);
        }
        counters_.full_save_bytes += ciphertext.size();
      } else if (resp.ok()) {
        ++counters_.bdelta_saves;
        bdelta_fallback_streak_ = 0;
      }
    } else {
      counters_.full_save_bytes += ciphertext.size();
    }
    if (auditor != nullptr && auditor->has_staged()) {
      if (resp.ok()) {
        auditor->commit_staged();
        ++counters_.audit_links_committed;
        maybe_publish_witness(doc_id, request.target, *auditor);
      } else {
        // A clean rejection: the server did not apply the save, so the
        // staged link must not survive to poison the next verify.
        auditor->drop_staged();
      }
    }
    ++counters_.full_saves_encrypted;
    if (config_.offline.enabled && resp.ok()) {
      const bool drifted = editor_rev_[doc_id] != server_rev_[doc_id];
      server_rev_[doc_id] = parse_rev(FormData::parse(resp.body).get("rev"));
      if (drifted) {
        rewrite_ack_rev(resp, ++editor_rev_[doc_id]);
      } else {
        editor_rev_[doc_id] = server_rev_[doc_id];
      }
    }
    blank_ack_fields(resp);
    return resp;
  }

  if (const auto delta_wire = form.get("delta")) {
    OfflineQueue* oq = offline_queue(doc_id);
    if (oq != nullptr && oq->active() && !try_flush(doc_id)) {
      // Still cut off: compose the edit into the pending update — or push
      // back at the cap *before* the mirror moves.
      if (oq->queued() >= config_.offline.max_queued_edits) {
        ++counters_.offline_backpressure;
        return offline_backpressure_response();
      }
      DocumentSession& live = sessions_.find(doc_id)->second;
      delta::Delta pdelta = delta::Delta::parse(*delta_wire);
      if (config_.rediff) {
        const std::string before = live.plaintext();
        const std::string after = pdelta.apply(before);
        pdelta = delta::myers_diff(before, after);
      }
      const delta::Delta cdelta = live.transform_delta(pdelta);
      oq->queue_delta(pdelta, cdelta);
      journal_offline_entry(doc_id, *oq);
      ++counters_.deltas_transformed;
      ++counters_.offline_acks;
      return synth_offline_ack(++editor_rev_[doc_id]);
    }
    DocumentSession& fronted = sessions_.find(doc_id)->second;
    delta::Delta pdelta = delta::Delta::parse(*delta_wire);
    if (config_.rediff) {
      // Don't trust the client's op sequence: recompute a minimal delta
      // between the two document versions (§VI-B countermeasure).
      const std::string before = fronted.plaintext();
      const std::string after = pdelta.apply(before);
      pdelta = delta::myers_diff(before, after);
    }

    // Collaborative rebase loop: on a strict-revision 409, adopt the
    // server's (decrypted) state, transform our edit over the concurrent
    // one, and retry with the fresh revision. The base snapshot is only
    // needed for that rebase diff — don't pay O(doc) for it otherwise.
    // Offline mode needs it too: it is the rebase base if this very send
    // fails and the document flips offline.
    std::string base;
    if (config_.collaborative || config_.offline.enabled) {
      base = fronted.plaintext();
    }
    delta::Delta working = std::move(pdelta);
    bool rebased = false;
    net::HttpResponse resp;
    EditJournal* journal = journal_for(doc_id);
    DocumentAuditor* auditor = auditor_for(doc_id);
    for (int attempt = 0;; ++attempt) {
      DocumentSession& live = sessions_.find(doc_id)->second;
      const delta::Delta cdelta = live.transform_delta(working);
      form.set("delta", cdelta.to_wire());
      if (config_.offline.enabled) {
        form.set("rev", std::to_string(server_rev_[doc_id]));
      }
      const std::uint64_t base_rev = parse_rev(form.get("rev"));
      // The checksum exists for the journal's rollback check; serialising
      // and hashing the whole container per delta is pure waste without
      // one (it dominated the per-edit cost at small block sizes). The
      // audit chain needs the same serialisation: its link binds the
      // CRC-32 of the container this delta produces.
      const bool auditing = auditor != nullptr && auditor->initialized();
      std::string cipher_doc;
      if (journal != nullptr || auditing) {
        cipher_doc = live.scheme().ciphertext_doc();
      }
      std::string checksum;
      if (journal != nullptr) {
        checksum = content_hash16(cipher_doc);
        journal->append_pending({base_rev, /*full_save=*/false, checksum,
                                 cdelta.to_wire()});
        ++counters_.journal_appends;
      }
      if (auditing) {
        const enc::AuditLink link = auditor->stage_link(
            auditor->committed_rev() + 1, crc32(as_bytes(cipher_doc)));
        form.set("alink", enc::encode_link(link));
        form.set("abase", hex_encode(auditor->committed_head()));
        form.set("abaserev", std::to_string(auditor->committed_rev()));
      }
      std::string body = form.encode();
      apply_outgoing_mitigations(body);
      try {
        resp = send_upstream(
            net::HttpRequest::post_form(request.target, std::move(body)));
      } catch (const net::TransportError&) {
        if (oq == nullptr) throw;
        // Retry budget exhausted (or breaker open): flip the document
        // offline. The mirror already holds base+working (transform_delta
        // above advanced it), which is exactly the queue invariant.
        oq->enter(server_rev_[doc_id], base, request.target);
        oq->queue_delta(working, cdelta);
        journal_offline_entry(doc_id, *oq);
        ++counters_.offline_entered;
        ++counters_.deltas_transformed;
        ++counters_.offline_acks;
        return synth_offline_ack(++editor_rev_[doc_id]);
      }
      if (journal != nullptr) {
        // A 409 drops the entry (the server refused it); the rebase below
        // appends a fresh one for the transformed retry.
        settle_journal(*journal, resp, base_rev, checksum);
      }
      // A 412 areason=chain is retried like a conflict even without the
      // collaborative flag: the edit is fine, only the staged link
      // extended a stale head (a peer advanced the chain under us).
      const bool chain_retry =
          auditor != nullptr && resp.status == 412 &&
          FormData::parse(resp.body).get("areason") == "chain";
      if (chain_retry) ++counters_.audit_chain_retries;
      if (!chain_retry &&
          (resp.status != 409 || !config_.collaborative ||
           attempt >= config_.max_rebase_retries)) {
        break;
      }
      if (chain_retry && attempt >= config_.max_rebase_retries) break;
      const FormData ack = FormData::parse(resp.body);
      const auto server_cipher = ack.get("contentFromServer");
      const auto server_rev = ack.get("rev");
      if (!server_cipher || !server_rev) break;
      if (auditor != nullptr) {
        // Verify the rejection's chain and fast-forward BEFORE
        // re-staging: a link computed from a stale head would make the
        // whole chain unverifiable for every client.
        auditor->drop_staged();
        audit_adopt_served(doc_id, *auditor, ack);
      }

      DocumentSession fresh = DocumentSession::open(
          config_.password, *server_cipher, config_.rng_factory);
      const std::string server_plain = fresh.plaintext();
      // The other writers' net effect relative to our base, and our edit
      // transformed to apply after it (they committed first, they win
      // insert ties).
      const delta::Delta theirs = delta::myers_diff(base, server_plain);
      working = delta::Delta::transform(working, theirs, /*a_wins=*/false);
      sessions_.erase(doc_id);
      sessions_.emplace(doc_id, std::move(fresh));
      base = server_plain;
      form.set("rev", *server_rev);
      if (config_.offline.enabled) {
        // Keep the CAS base honest: the next iteration re-substitutes the
        // rev field from this map.
        server_rev_[doc_id] = parse_rev(server_rev);
      }
      rebased = true;
      if (!chain_retry) ++counters_.rebases;
    }
    if (auditor != nullptr && auditor->has_staged()) {
      if (resp.ok()) {
        auditor->commit_staged();
        ++counters_.audit_links_committed;
        maybe_publish_witness(doc_id, request.target, *auditor);
      } else {
        auditor->drop_staged();
      }
    }
    ++counters_.deltas_transformed;
    if (config_.offline.enabled && resp.ok()) {
      const bool drifted = editor_rev_[doc_id] != server_rev_[doc_id];
      server_rev_[doc_id] = parse_rev(FormData::parse(resp.body).get("rev"));
      if (drifted) {
        rewrite_ack_rev(resp, ++editor_rev_[doc_id]);
      } else {
        editor_rev_[doc_id] = server_rev_[doc_id];
      }
    }

    if (resp.ok() && rebased) {
      // Tell the client about the merged state in terms it can verify:
      // plaintext content plus a matching hash. It adopts both.
      const std::string merged =
          sessions_.find(doc_id)->second.plaintext();
      FormData ack = FormData::parse(resp.body);
      ack.set("contentFromServer", merged);
      ack.set("contentFromServerHash", content_hash16(merged));
      resp.body = ack.encode();
      return resp;
    }
    blank_ack_fields(resp);
    return resp;
  }

  // Anything else (spellcheck, export, future surprises) would carry or
  // fetch plaintext — drop it (Fig 2: "drop all unknown requests").
  return blocked("unrecognised request for encrypted document");
}

std::optional<std::string> GDocsMediator::managed_plaintext(
    const std::string& doc_id) const {
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.plaintext();
}

std::optional<std::string> GDocsMediator::managed_ciphertext(
    const std::string& doc_id) const {
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.scheme().ciphertext_doc();
}

std::optional<enc::SchemeStats> GDocsMediator::managed_stats(
    const std::string& doc_id) const {
  const auto it = sessions_.find(doc_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.scheme().stats();
}

// --------------------------------------------------------------- Bespin

BespinMediator::BespinMediator(net::Channel* upstream, MediatorConfig config)
    : upstream_(upstream), config_(std::move(config)) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BespinMediator: null upstream");
  }
}

net::HttpResponse BespinMediator::round_trip(const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBespinPrefix, 0) != 0) {
    ++blocked_;
    return net::HttpResponse::make(
        403, "blocked by private-editing extension: unknown endpoint");
  }
  const std::string file = path.substr(kBespinPrefix.size());

  if (request.method == "PUT") {
    auto it = sessions_.find(file);
    if (it == sessions_.end()) {
      it = sessions_
               .emplace(file, DocumentSession::create_new(
                                  config_.password, config_.scheme,
                                  config_.rng_factory))
               .first;
    }
    net::HttpRequest encrypted = request;
    encrypted.body = it->second.encrypt_full(request.body);
    return upstream_->round_trip(encrypted);
  }

  if (request.method == "GET") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (!resp.ok() || resp.body.empty()) return resp;
    DocumentSession session = DocumentSession::open(
        config_.password, resp.body, config_.rng_factory);
    resp.body = session.plaintext();
    sessions_.erase(file);
    sessions_.emplace(file, std::move(session));
    return resp;
  }

  ++blocked_;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: unsupported method");
}

// ------------------------------------------------------------- Buzzword

BuzzwordMediator::BuzzwordMediator(net::Channel* upstream,
                                   MediatorConfig config)
    : upstream_(upstream), config_(std::move(config)) {
  if (upstream_ == nullptr) {
    throw Error(ErrorCode::kInvalidArgument, "BuzzwordMediator: null upstream");
  }
}

net::HttpResponse BuzzwordMediator::round_trip(
    const net::HttpRequest& request) {
  const std::string path = request.path();
  if (path.rfind(kBuzzwordPrefix, 0) != 0) {
    ++blocked_;
    return net::HttpResponse::make(
        403, "blocked by private-editing extension: unknown endpoint");
  }

  if (request.method == "POST") {
    // Encrypt the text embedded in <textRun> tags (§III); every run is an
    // independent ciphertext container under the same password.
    net::HttpRequest encrypted = request;
    encrypted.body = cloud::rewrite_text_runs(
        request.body, [this](const std::string& text) {
          DocumentSession session = DocumentSession::create_new(
              config_.password, config_.scheme, config_.rng_factory);
          return session.encrypt_full(text);
        });
    return upstream_->round_trip(encrypted);
  }

  if (request.method == "GET") {
    net::HttpResponse resp = upstream_->round_trip(request);
    if (!resp.ok()) return resp;
    resp.body = cloud::rewrite_text_runs(
        resp.body, [this](const std::string& text) {
          if (text.empty()) return text;
          DocumentSession session = DocumentSession::open(
              config_.password, text, config_.rng_factory);
          return session.plaintext();
        });
    return resp;
  }

  ++blocked_;
  return net::HttpResponse::make(
      403, "blocked by private-editing extension: unsupported method");
}

}  // namespace privedit::extension
